/**
 * @file
 * The paper's headline numbers, measured on this reproduction:
 *
 *  - "VIP ... ~22% energy saving and ~15% improvement in QoS (frame
 *    drop rate) compared to just enabling IP-to-IP communication"
 *    (abstract), and "10% improvement in frame processing time"
 *    (conclusion), evaluated over the two-app workloads W1..W8.
 *  - FrameBurst's ~25% CPU-energy / ~40% instruction reduction
 *    (Fig 16) and ~3x interrupt growth with 4 apps (Fig 2b).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vip;
    using namespace vip::bench;

    parseBenchArgs(argc, argv); // honors --audit=strict (CI gate)
    double seconds = simSeconds(0.4);
    banner("Headline summary: paper claims vs this reproduction",
           "abstract + Section 6.2 + conclusion");

    std::vector<Workload> wls;
    for (int w = 1; w <= 8; ++w)
        wls.push_back(WorkloadCatalog::byIndex(w));

    double eBase = 0, eIp = 0, eVip = 0;
    double tBase = 0, tIp = 0, tVip = 0;
    double vBase = 0, vIp = 0, vIpFb = 0, vVip = 0;
    double irqBase = 0, irqVip = 0;
    double cpuBase = 0, cpuBurst = 0, insBase = 0, insBurst = 0;

    for (const auto &wl : wls) {
        auto b = runCell(SystemConfig::Baseline, wl, seconds);
        auto i = runCell(SystemConfig::IpToIp, wl, seconds);
        auto f = runCell(SystemConfig::FrameBurst, wl, seconds);
        auto ifb = runCell(SystemConfig::IpToIpBurst, wl, seconds);
        auto v = runCell(SystemConfig::VIP, wl, seconds);
        eBase += b.energyPerFrameMj;
        eIp += i.energyPerFrameMj;
        eVip += v.energyPerFrameMj;
        tBase += b.meanTransitMs;
        tIp += i.meanTransitMs;
        tVip += v.meanTransitMs;
        vBase += double(b.violations);
        vIp += double(i.violations);
        vIpFb += double(ifb.violations);
        vVip += double(v.violations);
        irqBase += b.interruptsPer100ms;
        irqVip += v.interruptsPer100ms;
        cpuBase += b.cpuEnergyMj;
        cpuBurst += f.cpuEnergyMj;
        insBase += double(b.instructions);
        insBurst += double(f.instructions);
    }

    auto pct = [](double from, double to) {
        return 100.0 * (1.0 - to / std::max(from, 1e-9));
    };

    std::printf("%-52s %10s %12s\n", "claim (two-app workloads W1..W8"
                " unless noted)", "paper", "measured");
    std::printf("%-52s %9s%% %11.1f%%\n",
                "VIP energy saving vs IP-to-IP", "~22",
                pct(eIp, eVip));
    std::printf("%-52s %9s%% %11.1f%%\n",
                "VIP energy saving vs Baseline", "~38",
                pct(eBase, eVip));
    std::printf("%-52s %9s%% %11.1f%%\n",
                "VIP transit-time improvement vs IP-to-IP", "~10",
                pct(tIp, tVip));
    std::printf("%-52s %9s%% %11.1f%%\n",
                "VIP transit-time improvement vs Baseline", "-",
                pct(tBase, tVip));
    std::printf("%-52s %9s%% %11.1f%%\n",
                "VIP QoS-violation reduction vs Baseline", "~15",
                pct(std::max(vBase, 1.0), vVip));
    std::printf("%-52s %9s%% %11.1f%%\n",
                "IP-to-IP QoS-violation reduction vs Baseline", "~5",
                pct(std::max(vBase, 1.0), vIp));
    std::printf("%-52s %9s %12.2f\n",
                "IP-to-IP+FB violations vs Baseline (x, HOL)", ">1x",
                vIpFb / std::max(vBase, 1.0));
    std::printf("%-52s %9s%% %11.1f%%\n",
                "FrameBurst CPU-energy reduction (Fig 16a)", "~25",
                pct(cpuBase, cpuBurst));
    std::printf("%-52s %9s%% %11.1f%%\n",
                "FrameBurst instruction reduction (Fig 16a)", "~40",
                pct(insBase, insBurst));
    std::printf("%-52s %9s %12.2f\n",
                "VIP interrupt rate vs Baseline (x)", "<<1x",
                irqVip / std::max(irqBase, 1e-9));

    // Perf-regression gate: dump per-cell stats.json files for
    // vip_stats_diff to compare against bench/baseline/.
    dumpStatsCells({std::begin(kAllConfigs), std::end(kAllConfigs)},
                   seconds);
    return 0;
}
