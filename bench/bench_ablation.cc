/**
 * @file
 * Ablation study of VIP's design choices (the decisions DESIGN.md
 * calls out):
 *
 *  1. Hardware lane scheduler: EDF (the paper's pick) vs FIFO vs RR.
 *  2. Number of buffer lanes per IP (1..4).
 *  3. Burst size (1..15 frames) on energy / interrupts / QoS.
 *  4. Game rollback on mid-burst input: enabled vs disabled.
 *  5. Context-switch penalty sensitivity.
 */

#include "bench_util.hh"

int
main()
{
    using namespace vip;
    using namespace vip::bench;

    double seconds = simSeconds(0.3);
    banner("Ablation: VIP design choices", "Sections 4.4 / 5.5");

    auto wl = WorkloadCatalog::byIndex(7); // camera + video: rich HOL

    // ---- 1. scheduler policy ----
    std::printf("1) Hardware scheduler (W7, VIP):\n");
    std::printf("%-14s %10s %10s %10s %12s\n", "policy", "mJ/frame",
                "flowMs", "violations", "ctxSwitch(VD)");
    for (auto pol : {SchedPolicy::FIFO, SchedPolicy::RoundRobin,
                     SchedPolicy::EDF}) {
        SocConfig cfg;
        cfg.system = SystemConfig::VIP;
        cfg.simSeconds = seconds;
        cfg.vipSched = pol;
        Simulation sim(cfg, wl);
        auto s = sim.run();
        const auto *dc = s.ip("DC");
        std::printf("%-14s %10.3f %10.3f %10llu %12llu\n",
                    schedPolicyName(pol), s.energyPerFrameMj,
                    s.meanFlowTimeMs,
                    static_cast<unsigned long long>(s.violations),
                    static_cast<unsigned long long>(
                        dc ? dc->contextSwitches : 0));
    }

    // ---- 2. lane count ----
    std::printf("\n2) Buffer lanes per IP (W4, VIP):\n");
    std::printf("%-8s %10s %10s %12s\n", "lanes", "mJ/frame",
                "violations", "fallbacks");
    for (std::uint32_t lanes = 1; lanes <= 4; ++lanes) {
        SocConfig cfg;
        cfg.system = SystemConfig::VIP;
        cfg.simSeconds = seconds;
        cfg.vipLanes = lanes;
        Simulation sim(cfg, WorkloadCatalog::byIndex(4));
        auto s = sim.run();
        int fallbacks = 0;
        for (const auto &f : sim.flows())
            fallbacks += f->vipFallback() ? 1 : 0;
        std::printf("%-8u %10.3f %10llu %12d\n", lanes,
                    s.energyPerFrameMj,
                    static_cast<unsigned long long>(s.violations),
                    fallbacks);
    }

    // ---- 3. burst size ----
    std::printf("\n3) Burst size (A5, VIP):\n");
    std::printf("%-8s %10s %12s %10s\n", "frames", "mJ/frame",
                "irq/100ms", "violations");
    for (std::uint32_t n : {1u, 2u, 5u, 10u, 15u}) {
        SocConfig cfg;
        cfg.system = SystemConfig::VIP;
        cfg.simSeconds = seconds;
        cfg.burstFrames = n;
        auto s = Simulation::run(cfg, WorkloadCatalog::single(5));
        std::printf("%-8u %10.3f %12.1f %10llu\n", n,
                    s.energyPerFrameMj, s.interruptsPer100ms,
                    static_cast<unsigned long long>(s.violations));
    }

    // ---- 4. game rollback ----
    std::printf("\n4) Mid-burst input rollback (A1 game, VIP):\n");
    std::printf("%-10s %10s %12s\n", "rollback", "mJ/frame",
                "cpuActiveMs");
    for (bool rb : {true, false}) {
        SocConfig cfg;
        cfg.system = SystemConfig::VIP;
        // Taps average ~0.8 s apart (Fig 5): a longer window is
        // needed to see the rollback cost.
        cfg.simSeconds = std::max(2.0, seconds);
        cfg.enableRollback = rb;
        auto s = Simulation::run(cfg, WorkloadCatalog::single(1));
        std::printf("%-10s %10.3f %12.1f\n", rb ? "on" : "off",
                    s.energyPerFrameMj, s.cpuActiveMs);
    }

    // ---- 5. context-switch penalty ----
    std::printf("\n5) Context-switch penalty (W1, VIP):\n");
    std::printf("%-10s %10s %10s\n", "penalty", "flowMs",
                "violations");
    for (double us : {0.0, 0.5, 2.0, 8.0}) {
        SocConfig cfg;
        cfg.system = SystemConfig::VIP;
        cfg.simSeconds = seconds;
        cfg.contextSwitchPenalty = fromUs(us);
        auto s = Simulation::run(cfg, WorkloadCatalog::byIndex(1));
        std::printf("%6.1fus %10.3f %10llu\n", us, s.meanFlowTimeMs,
                    static_cast<unsigned long long>(s.violations));
    }

    // ---- 6. lane overflow policy (Section 5.5 alternative) ----
    std::printf("\n6) Full-lane policy: stall producer (paper) vs"
                " spill to memory (W1, VIP):\n");
    std::printf("%-10s %10s %10s %12s %12s\n", "policy", "mJ/frame",
                "flowMs", "dramMJ", "memGB");
    for (bool spill : {false, true}) {
        SocConfig cfg;
        cfg.system = SystemConfig::VIP;
        cfg.simSeconds = seconds;
        cfg.overflowToMemory = spill;
        // A decoder that outruns the display controller makes the
        // full-lane policy matter.
        IpParams fastVd = defaultIpParams(IpKind::VD);
        fastVd.bytesPerCycle = 7.0; // ~4.9 GB/s vs DC's ~2.6
        cfg.ipOverrides[IpKind::VD] = fastVd;
        auto s = Simulation::run(cfg, WorkloadCatalog::byIndex(1));
        std::printf("%-10s %10.3f %10.3f %12.1f %12.3f\n",
                    spill ? "spill" : "stall", s.energyPerFrameMj,
                    s.meanFlowTimeMs, s.dramEnergyMj, s.memBytesGB);
    }

    // ---- 7. DVFS governor (extension) ----
    std::printf("\n7) CPU DVFS governor (A5):\n");
    std::printf("%-10s %-12s %10s %12s %10s\n", "governor",
                "config", "cpu mJ", "mJ/frame", "violations");
    for (auto sc : {SystemConfig::Baseline, SystemConfig::VIP}) {
        for (bool gov : {false, true}) {
            SocConfig cfg;
            cfg.system = sc;
            cfg.simSeconds = seconds;
            cfg.cpu.governor =
                gov ? CpuGovernor::OnDemand : CpuGovernor::None;
            auto s = Simulation::run(cfg, WorkloadCatalog::single(5));
            std::printf("%-10s %-12s %10.1f %12.3f %10llu\n",
                        gov ? "ondemand" : "fixed",
                        systemConfigName(sc), s.cpuEnergyMj,
                        s.energyPerFrameMj,
                        static_cast<unsigned long long>(
                            s.violations));
        }
    }

    std::printf("\nExpected: EDF minimizes violations; >=2 lanes"
                " avoid fallbacks on two-app\nworkloads; bigger"
                " bursts cut interrupts/energy; rollback costs CPU;"
                "\nlarger switch penalties stretch flow time; the"
                " memory-overflow policy re-adds\nthe DRAM traffic"
                " and energy that chaining eliminated (why the paper"
                " stalls).\n");
    return 0;
}
