/**
 * @file
 * Reproduces Figure 14: sizing the per-lane flow buffers.
 *
 * Fig 14a: increase in per-frame flow time (normalized to an ideal,
 *          effectively-unbounded buffer) as the per-lane buffer
 *          shrinks from 16 KB to 0.5 KB.
 * Fig 14b: CACTI-style dynamic read energy and area for buffer sizes
 *          0.5 KB .. 64 KB (via the analytical SramModel).
 */

#include "bench_util.hh"
#include "power/sram_model.hh"

int
main()
{
    using namespace vip;
    using namespace vip::bench;

    double seconds = simSeconds(0.3);
    banner("Figure 14: flow-buffer sizing", "Figs 14a and 14b");

    // ---- Fig 14a: flow time vs per-lane buffer size ----
    const std::uint32_t sizes[] = {512, 1024, 2048, 4096, 8192,
                                   16384};
    auto wl = WorkloadCatalog::byIndex(1); // two 4K players, VIP

    auto timeFor = [&](std::uint32_t lane_bytes) {
        SocConfig cfg;
        cfg.system = SystemConfig::VIP;
        cfg.simSeconds = seconds;
        cfg.laneBytes = lane_bytes;
        cfg.subframeBytes = std::min(lane_bytes / 2, 1024u);
        return Simulation::run(cfg, wl).meanFlowTimeMs;
    };

    double ideal = timeFor(1_MiB); // effectively unbounded
    std::printf("Fig 14a: normalized flow time vs per-lane buffer"
                " (ideal = %.3f ms)\n", ideal);
    std::printf("%-10s %12s %14s\n", "buffer", "flowTimeMs",
                "norm vs ideal");
    for (auto b : sizes) {
        double t = timeFor(b);
        std::printf("%6.1fKB %12.3f %14.3f\n", b / 1024.0, t,
                    normalized(t, ideal));
    }
    std::printf("%-10s %12.3f %14.3f\n", "Ideal", ideal, 1.0);
    std::printf("\nPaper shape: <= ~1.08x at 0.5 KB, converging to"
                " 1.0 by a few KB;\nthe paper picks 2 KB (32 cache"
                " lines) per lane.\n\n");

    // ---- Fig 14b: energy and area vs buffer size ----
    std::printf("Fig 14b: buffer read energy and area (SramModel,"
                " CACTI stand-in)\n");
    std::printf("%-10s %16s %12s %14s\n", "buffer", "readEnergy(nJ)",
                "area(mm^2)", "leakage(mW)");
    for (std::uint64_t kb = 1; kb <= 128; kb *= 2) {
        std::uint64_t bytes = kb * 512; // 0.5K, 1K, ... 64K
        auto est = SramModel::forCapacity(bytes);
        std::printf("%6.1fKB %16.4f %12.4f %14.3f\n", bytes / 1024.0,
                    est.readEnergyNj, est.areaMm2,
                    est.leakageWatts * 1e3);
    }
    std::printf("\nPaper shape: ~0.065 nJ and ~0.35 mm^2 at 64 KB,"
                " tiny at 0.5 KB.\n");
    return 0;
}
