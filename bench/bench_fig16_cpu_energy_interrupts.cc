/**
 * @file
 * Reproduces Figure 16: the CPU-side benefit of frame bursts.
 *
 * Fig 16a: % reduction in CPU energy and in executed instructions
 *          (FrameBurst vs Baseline) per workload.
 * Fig 16b: interrupts handled per 100 ms, Baseline vs FrameBurst.
 */

#include "bench_util.hh"

int
main()
{
    using namespace vip;
    using namespace vip::bench;

    double seconds = simSeconds();
    banner("Figure 16: CPU energy / instruction / interrupt savings "
           "from frame bursts",
           "Figs 16a and 16b");

    auto wls = evaluationMatrix();

    std::vector<double> cpuRed, instrRed, irqBase, irqBurst;
    for (const auto &wl : wls) {
        auto b = runCell(SystemConfig::Baseline, wl, seconds);
        auto f = runCell(SystemConfig::FrameBurst, wl, seconds);
        cpuRed.push_back(
            100.0 * (1.0 - normalized(f.cpuEnergyMj, b.cpuEnergyMj)));
        instrRed.push_back(
            100.0 * (1.0 - normalized(double(f.instructions),
                                      double(b.instructions))));
        irqBase.push_back(b.interruptsPer100ms);
        irqBurst.push_back(f.interruptsPer100ms);
    }

    std::printf("Fig 16a:\n");
    printHeader("metric", wls);
    printRow("%cpuEnergyRed", cpuRed);
    printRow("%instrRed", instrRed);

    std::printf("\nFig 16b: interrupts per 100 ms\n");
    printHeader("config", wls);
    printRow("Baseline", irqBase);
    printRow("FrameBurst", irqBurst);

    std::printf("\nPaper shape: ~25%% average CPU-energy reduction,"
                " ~40%% fewer instructions,\nand an order-of-"
                "magnitude interrupt reduction.\n");
    return 0;
}
