/**
 * @file
 * Shared helpers for the figure-reproduction benches: the standard
 * evaluation matrix (A1..A7 single apps, W1..W8 two-app workloads),
 * table printing, normalization with divide-by-zero guards, and the
 * simulated-duration knob (VIP_BENCH_SECONDS).
 */

#ifndef VIP_BENCH_BENCH_UTIL_HH
#define VIP_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/simulation.hh"

namespace vip
{
namespace bench
{

/** Simulated seconds per run (env VIP_BENCH_SECONDS overrides). */
inline double
simSeconds(double fallback = 0.25)
{
    if (const char *env = std::getenv("VIP_BENCH_SECONDS"))
        return std::atof(env);
    return fallback;
}

/** The paper's evaluation columns: A1..A7 then W1..W8. */
inline std::vector<Workload>
evaluationMatrix()
{
    std::vector<Workload> out;
    for (int a = 1; a <= 7; ++a)
        out.push_back(WorkloadCatalog::single(a));
    for (int w = 1; w <= 8; ++w)
        out.push_back(WorkloadCatalog::byIndex(w));
    return out;
}

/** Run one (config, workload) cell of the matrix. */
inline RunStats
runCell(SystemConfig config, const Workload &wl, double seconds,
        std::uint64_t seed = 1)
{
    SocConfig cfg;
    cfg.system = config;
    cfg.simSeconds = seconds;
    cfg.seed = seed;
    return Simulation::run(cfg, wl);
}

/** value/reference with a floor guarding zero references. */
inline double
normalized(double value, double reference, double floor_ref = 1e-9)
{
    return value / std::max(reference, floor_ref);
}

/** Geometric-free arithmetic mean. */
inline double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

/** Print a header row: label then one column per workload + AVG. */
inline void
printHeader(const char *label, const std::vector<Workload> &wls)
{
    std::printf("%-14s", label);
    for (const auto &w : wls)
        std::printf(" %8s", w.name.c_str());
    std::printf(" %8s\n", "AVG");
}

/** Print a series row with its AVG appended. */
inline void
printRow(const std::string &label, const std::vector<double> &vals)
{
    std::printf("%-14s", label.c_str());
    for (double v : vals)
        std::printf(" %8.3f", v);
    std::printf(" %8.3f\n", mean(vals));
}

inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("==================================================="
                "=========================\n");
    std::printf("%s\n  (reproduces %s)\n", what, paper_ref);
    std::printf("==================================================="
                "=========================\n");
}

} // namespace bench
} // namespace vip

#endif // VIP_BENCH_BENCH_UTIL_HH
