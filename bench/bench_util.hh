/**
 * @file
 * Shared helpers for the figure-reproduction benches: the standard
 * evaluation matrix (A1..A7 single apps, W1..W8 two-app workloads),
 * table printing, normalization with divide-by-zero guards, and the
 * simulated-duration knob (VIP_BENCH_SECONDS).
 */

#ifndef VIP_BENCH_BENCH_UTIL_HH
#define VIP_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/simulation.hh"
#include "obs/provenance.hh"

namespace vip
{
namespace bench
{

/**
 * Version stamped as "schemaVersion" into every bench JSON output.
 * Bump on any change to the JSON shape so downstream consumers
 * (CI comparisons, plotting scripts) can reject files they do not
 * understand.
 */
constexpr int kBenchSchemaVersion = 2;

/**
 * Emit the build/run provenance object shared by every bench JSON:
 *   "provenance": {"git": ..., "compiler": ..., "build": ...}
 * `indent` is the leading whitespace for the line; no trailing comma.
 */
template <typename Stream>
void
writeProvenanceJson(Stream &os, const char *indent = "  ")
{
    os << indent << "\"provenance\": {";
    bool first = true;
    for (const auto &[k, v] : provenanceFields()) {
        os << (first ? "" : ", ") << '"' << k << "\": \"" << v << '"';
        first = false;
    }
    os << "}";
}

/**
 * Emit one latency-breakdown object ("{\"n\": ..., \"p50Ms\": ...}")
 * for bench JSON output.
 */
template <typename Stream>
void
writeBreakdownJson(Stream &os, const LatencyBreakdown &b)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"n\": %llu, \"meanMs\": %.6f, \"p50Ms\": %.6f, "
                  "\"p95Ms\": %.6f, \"p99Ms\": %.6f, \"maxMs\": %.6f}",
                  static_cast<unsigned long long>(b.count), b.meanMs,
                  b.p50Ms, b.p95Ms, b.p99Ms, b.maxMs);
    os << buf;
}

/** Simulated seconds per run (env VIP_BENCH_SECONDS overrides). */
inline double
simSeconds(double fallback = 0.25)
{
    if (const char *env = std::getenv("VIP_BENCH_SECONDS"))
        return std::atof(env);
    return fallback;
}

/** Audit mode applied to every runCell() (default off). */
inline AuditConfig &
auditConfig()
{
    static AuditConfig cfg;
    return cfg;
}

/**
 * Directory for per-cell stats.json dumps (--stats-dir).  Empty
 * (the default) disables them; CI points this at a scratch dir and
 * gates the files against bench/baseline/ with vip_stats_diff.
 */
inline std::string &
statsDir()
{
    static std::string dir;
    return dir;
}

/** Workloads to dump stats for (--stats-workloads, default W4). */
inline std::vector<std::string> &
statsWorkloads()
{
    static std::vector<std::string> wls{"W4"};
    return wls;
}

/**
 * Consume shared bench flags — "--audit <mode>" into auditConfig(),
 * "--stats-dir <dir>" into statsDir(), "--stats-workloads <W4,W7>"
 * into statsWorkloads() (every flag also accepts --flag=value) — and
 * return the first other argument (the benches' positional output
 * path), or nullptr.  CI uses --audit=strict for the invariant gate
 * and --stats-dir for the perf-regression gate.
 */
inline const char *
parseBenchArgs(int argc, char **argv)
{
    auto splitList = [](const std::string &csv) {
        std::vector<std::string> out;
        std::size_t start = 0;
        while (start <= csv.size()) {
            auto comma = csv.find(',', start);
            if (comma == std::string::npos)
                comma = csv.size();
            if (comma > start)
                out.push_back(csv.substr(start, comma - start));
            start = comma + 1;
        }
        return out;
    };
    const char *positional = nullptr;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--audit" && i + 1 < argc) {
            auditConfig() = AuditConfig::parse(argv[++i]);
        } else if (arg.rfind("--audit=", 0) == 0) {
            auditConfig() = AuditConfig::parse(arg.substr(8));
        } else if (arg == "--stats-dir" && i + 1 < argc) {
            statsDir() = argv[++i];
        } else if (arg.rfind("--stats-dir=", 0) == 0) {
            statsDir() = arg.substr(12);
        } else if (arg == "--stats-workloads" && i + 1 < argc) {
            statsWorkloads() = splitList(argv[++i]);
        } else if (arg.rfind("--stats-workloads=", 0) == 0) {
            statsWorkloads() = splitList(arg.substr(18));
        } else if (!positional) {
            positional = argv[i];
        }
    }
    return positional;
}

/** The paper's evaluation columns: A1..A7 then W1..W8. */
inline std::vector<Workload>
evaluationMatrix()
{
    std::vector<Workload> out;
    for (int a = 1; a <= 7; ++a)
        out.push_back(WorkloadCatalog::single(a));
    for (int w = 1; w <= 8; ++w)
        out.push_back(WorkloadCatalog::byIndex(w));
    return out;
}

/** Run one (config, workload) cell of the matrix. */
inline RunStats
runCell(SystemConfig config, const Workload &wl, double seconds,
        std::uint64_t seed = 1)
{
    SocConfig cfg;
    cfg.system = config;
    cfg.simSeconds = seconds;
    cfg.seed = seed;
    cfg.audit = auditConfig();
    return Simulation::run(cfg, wl);
}

/**
 * Re-run the (config, workload) cells selected by --stats-workloads
 * and write each run's stats registry to
 * <statsDir()>/<config>-<workload>.stats.json — the files the CI
 * perf-regression gate diffs against bench/baseline/.  No-op unless
 * --stats-dir was given.
 */
inline void
dumpStatsCells(const std::vector<SystemConfig> &configs, double seconds)
{
    if (statsDir().empty())
        return;
    for (const std::string &wname : statsWorkloads()) {
        Workload wl = wname.size() >= 2 && (wname[0] | 0x20) == 'a'
                          ? WorkloadCatalog::single(
                                std::atoi(wname.c_str() + 1))
                          : WorkloadCatalog::byIndex(
                                std::atoi(wname.c_str() + 1));
        for (SystemConfig config : configs) {
            SocConfig cfg;
            cfg.system = config;
            cfg.simSeconds = seconds;
            cfg.audit = auditConfig();
            Simulation sim(cfg, wl);
            sim.run();
            // CLI-style config names keep the filenames shell-safe
            // ("IP-to-IP+FB" would glob badly).
            const char *cname =
                config == SystemConfig::Baseline     ? "baseline"
                : config == SystemConfig::FrameBurst ? "frameburst"
                : config == SystemConfig::IpToIp     ? "iptoip"
                : config == SystemConfig::IpToIpBurst ? "iptoip-fb"
                                                      : "vip";
            std::string path = statsDir() + "/" + cname + "-" + wname +
                               ".stats.json";
            std::ofstream out(path);
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n", path.c_str());
                std::exit(1);
            }
            sim.writeStatsJson(out);
            std::printf("stats: %s (%zu stats)\n", path.c_str(),
                        sim.statsRegistry().size());
        }
    }
}

/** value/reference with a floor guarding zero references. */
inline double
normalized(double value, double reference, double floor_ref = 1e-9)
{
    return value / std::max(reference, floor_ref);
}

/** Geometric-free arithmetic mean. */
inline double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

/** Print a header row: label then one column per workload + AVG. */
inline void
printHeader(const char *label, const std::vector<Workload> &wls)
{
    std::printf("%-14s", label);
    for (const auto &w : wls)
        std::printf(" %8s", w.name.c_str());
    std::printf(" %8s\n", "AVG");
}

/** Print a series row with its AVG appended. */
inline void
printRow(const std::string &label, const std::vector<double> &vals)
{
    std::printf("%-14s", label.c_str());
    for (double v : vals)
        std::printf(" %8.3f", v);
    std::printf(" %8.3f\n", mean(vals));
}

inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("==================================================="
                "=========================\n");
    std::printf("%s\n  (reproduces %s)\n", what, paper_ref);
    std::printf("==================================================="
                "=========================\n");
}

} // namespace bench
} // namespace vip

#endif // VIP_BENCH_BENCH_UTIL_HH
