/**
 * @file
 * Reproduces Figure 15: normalized energy per frame for the five
 * system configurations across A1..A7 and W1..W8 (plus AVG).
 */

#include "bench_util.hh"

int
main()
{
    using namespace vip;
    using namespace vip::bench;

    double seconds = simSeconds();
    banner("Figure 15: energy per frame, normalized to Baseline",
           "Fig 15 (5 configurations x A1..A7, W1..W8, AVG)");

    auto wls = evaluationMatrix();
    printHeader("config", wls);

    std::vector<double> baseline;
    baseline.reserve(wls.size());
    for (const auto &wl : wls) {
        baseline.push_back(
            runCell(SystemConfig::Baseline, wl, seconds)
                .energyPerFrameMj);
    }

    for (auto c : kAllConfigs) {
        std::vector<double> row;
        row.reserve(wls.size());
        for (std::size_t i = 0; i < wls.size(); ++i) {
            double e = c == SystemConfig::Baseline
                ? baseline[i]
                : runCell(c, wls[i], seconds).energyPerFrameMj;
            row.push_back(normalized(e, baseline[i]));
        }
        printRow(systemConfigName(c), row);
    }

    std::printf("\nPaper shape: FrameBurst ~0.9x, IP-to-IP family"
                " substantially lower, VIP lowest\n(~22%% below"
                " IP-to-IP on average; ~38%% below Baseline).\n");
    return 0;
}
