/**
 * @file
 * Reproduces Figure 5: the distribution of time between successive
 * user taps in FlappyBird, sampled from the encoded 20-user study
 * model that drives the game burst policy.
 */

#include <cstdio>

#include "app/user_input.hh"
#include "bench_util.hh"

int
main()
{
    using namespace vip;
    using namespace vip::bench;

    banner("Figure 5: FlappyBird tap-interval distribution",
           "Fig 5 (percentage of taps per interval bin)");

    FlappyTapModel model;
    Random rng(1);
    const int n = 200000;

    // The paper's histogram: 0.05 s bins from <0.15 to 1.25+, plus a
    // long tail.
    constexpr int bins = 23;
    std::vector<int> hist(bins + 1, 0);
    double above_half = 0, min_gap = 1e9;
    for (int i = 0; i < n; ++i) {
        double gap = toSec(model.nextGap(rng));
        min_gap = std::min(min_gap, gap);
        if (gap > 0.5)
            ++above_half;
        int b = static_cast<int>((gap - 0.10) / 0.05);
        if (b < 0)
            b = 0;
        if (b > bins)
            b = bins;
        ++hist[b];
    }

    std::printf("%-12s %10s\n", "interval(s)", "% of taps");
    for (int b = 0; b <= bins; ++b) {
        double lo = 0.10 + 0.05 * b;
        char label[32];
        if (b == 0)
            std::snprintf(label, sizeof label, "<0.15");
        else if (b == bins)
            std::snprintf(label, sizeof label, ">%.2f", lo);
        else
            std::snprintf(label, sizeof label, "%.2f", lo + 0.05);
        std::printf("%-12s %9.2f%%  %s\n", label,
                    100.0 * hist[b] / n,
                    std::string(static_cast<std::size_t>(
                        300.0 * hist[b] / n), '#')
                        .c_str());
    }
    std::printf("\nminimum gap: %.3f s  (paper: rapid taps >= 0.15 s"
                " apart)\n", min_gap);
    std::printf("gaps > 0.5 s: %.1f%%  (paper: >60%%)\n",
                100.0 * above_half / n);
    std::printf("mean gap: %.3f s -> ~%.0f frames of burst headroom"
                " at 60 FPS\n", model.distribution().mean(),
                model.distribution().mean() * 60.0);
    return 0;
}
