/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * event-queue throughput, DRAM transaction service, stream-engine
 * unit processing and a whole-platform frames-per-wall-second figure.
 * These guard the simulator's own performance (a full Fig 15 matrix
 * is 75 platform runs).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>

#include "bench_util.hh"
#include "core/simulation.hh"
#include "ip/ip_core.hh"

namespace
{

using namespace vip;

void
BM_EventQueueScheduleService(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sink = 0;
        for (int i = 0; i < 1024; ++i)
            eq.schedule((i * 37) % 4096, [&] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleService);

void
BM_DramTransactions(benchmark::State &state)
{
    for (auto _ : state) {
        System sys(1);
        EnergyLedger ledger;
        MemoryController mem(sys, "b.mem", DramConfig{}, ledger);
        int done = 0;
        for (int i = 0; i < 512; ++i) {
            MemRequest req;
            req.addr = static_cast<Addr>(i) * 1024;
            req.bytes = 1024;
            req.onComplete = [&] { ++done; };
            mem.access(std::move(req));
        }
        sys.run(fromMs(1));
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_DramTransactions);

void
BM_StreamChainFrame(benchmark::State &state)
{
    const std::uint64_t bytes = state.range(0);
    for (auto _ : state) {
        System sys(1);
        EnergyLedger ledger;
        DramConfig dc;
        dc.ideal = true;
        MemoryController mem(sys, "b.mem", dc, ledger);
        SystemAgent sa(sys, "b.sa", SaConfig{}, mem, ledger);
        IpParams p = defaultIpParams(IpKind::VD);
        p.clockHz = 1e9;
        p.bytesPerCycle = 4.0;
        IpCore prod(sys, "b.prod", p, sa, ledger);
        IpCore sink(sys, "b.sink", defaultIpParams(IpKind::DC), sa,
                    ledger);
        int pl = prod.bindLane(1);
        int sl = sink.bindLane(1);
        prod.connectLane(pl, &sink, sl);
        bool done = false;
        sink.makeLaneSink(sl, [&](FlowId, std::uint64_t) {
            done = true;
        });
        prod.announceFrame(pl, 0, bytes, bytes, MaxTick, true);
        sink.announceFrame(sl, 0, bytes, 0, MaxTick, true);
        prod.feedFrame(pl, 0, bytes, 0, false);
        sys.run(fromSec(1));
        benchmark::DoNotOptimize(done);
    }
    state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_StreamChainFrame)->Arg(64 * 1024)->Arg(1024 * 1024);

void
BM_FullPlatformVipRun(benchmark::State &state)
{
    for (auto _ : state) {
        SocConfig cfg;
        cfg.system = SystemConfig::VIP;
        cfg.simSeconds = 0.05;
        auto s = Simulation::run(cfg, WorkloadCatalog::byIndex(4));
        benchmark::DoNotOptimize(s.framesCompleted);
    }
}
BENCHMARK(BM_FullPlatformVipRun)->Unit(benchmark::kMillisecond);

/**
 * Same platform run with the tracer enabled, so tracing overhead is
 * measured rather than assumed.  Two points on the cost curve:
 * everything-on records per-unit execution spans (hundreds of
 * thousands of events per run, tens of percent overhead), while the
 * frame-lifecycle mask used for QoS triage stays within a few percent
 * of untraced.  With tracing off the System's tracer pointer is null
 * and every emission site is a single branch (~0%).
 */
void
BM_FullPlatformVipRunTraced(benchmark::State &state,
                            std::uint32_t categories)
{
    for (auto _ : state) {
        SocConfig cfg;
        cfg.system = SystemConfig::VIP;
        cfg.simSeconds = 0.05;
        // Any non-empty path constructs the tracer; nothing is
        // written unless the caller asks for it after the run.
        cfg.trace.out = "(buffer)";
        cfg.trace.categories = categories;
        auto s = Simulation::run(cfg, WorkloadCatalog::byIndex(4));
        benchmark::DoNotOptimize(s.framesCompleted);
    }
}
BENCHMARK_CAPTURE(BM_FullPlatformVipRunTraced, AllCats, kAllTraceCats)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FullPlatformVipRunTraced, FrameLifecycle,
                  static_cast<std::uint32_t>(TraceCat::Frame)
                      | static_cast<std::uint32_t>(TraceCat::Sched)
                      | static_cast<std::uint32_t>(TraceCat::Fault))
    ->Unit(benchmark::kMillisecond);

/**
 * --sim-throughput: the simulator-speed trajectory behind fleet
 * capacity planning.  One W4 run per system configuration, reporting
 * how fast the simulator itself executes — millions of simulated
 * ticks (ps) per wall second, serviced events per wall second, and
 * the headline "simulated ms per wall second" a sweep scheduler
 * multiplies out to size a fleet.  Each configuration then reruns
 * with the --prof hot-path profiler armed (default sampling), and
 * again with the --ts time-series plane armed (full-glob selection),
 * so the report tracks both observers' wall-time overhead — the
 * numbers the <5% overhead budget in CI gates on.  Results land in a
 * schemaVersion'd JSON (default BENCH_microbench.json) whose
 * checked-in copy records the trajectory across PRs.
 */
int
simThroughputReport(const char *outPath)
{
    const double seconds = bench::simSeconds(0.1);
    const char *path = outPath ? outPath : "BENCH_microbench.json";

    struct Row
    {
        const char *config;
        double simMs = 0.0;
        double wallMs = 0.0;
        double wallProfMs = 0.0;
        double profOverheadPct = 0.0;
        double wallTsMs = 0.0;
        double tsOverheadPct = 0.0;
        std::uint64_t events = 0;
        std::uint64_t ticks = 0;
    };
    std::vector<Row> rows;
    std::printf("%-10s %9s %9s %12s %12s %14s %9s %9s\n", "config",
                "sim-ms", "wall-ms", "MTicks/s", "Mevents/s",
                "sim-ms/wall-s", "prof-ovh%", "ts-ovh%");
    for (auto sc : kAllConfigs) {
        Row r;
        r.config = systemConfigName(sc);
        SocConfig cfg;
        cfg.system = sc;
        cfg.simSeconds = seconds;

        // Interleaved off/on pairs, overhead = the *median* of the
        // per-pair wall ratios: single passes can't resolve a <5%
        // budget on a shared machine, and even a best-of-N min is
        // defeated by slow frequency / load drift.  Back-to-back
        // pairs see the same machine state, so their ratio cancels
        // the drift; the median discards the pairs a neighbor
        // disturbed.  The prof path only arms the instrumentation —
        // nothing is written unless writeProfJson() is called — so
        // the ratio is pure hot-path overhead.
        constexpr int kReps = 5;
        r.wallMs = 1e300;
        r.wallProfMs = 1e300;
        r.wallTsMs = 1e300;
        std::vector<double> ratios;
        std::vector<double> tsRatios;
        for (int rep = 0; rep < kReps; ++rep) {
            const auto t0 = std::chrono::steady_clock::now();
            Simulation sim(cfg, WorkloadCatalog::byIndex(4));
            sim.run();
            const auto t1 = std::chrono::steady_clock::now();
            const double wall =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
            r.wallMs = std::min(r.wallMs, wall);
            if (rep == 0) {
                r.simMs = toMs(sim.system().curTick());
                r.events = sim.system().eventq().servicedEvents();
                r.ticks = sim.system().curTick();
            }

            SocConfig pcfg = cfg;
            pcfg.prof.out = "(unwritten)";
            const auto p0 = std::chrono::steady_clock::now();
            Simulation psim(pcfg, WorkloadCatalog::byIndex(4));
            psim.run();
            const auto p1 = std::chrono::steady_clock::now();
            const double pwall =
                std::chrono::duration<double, std::milli>(p1 - p0)
                    .count();
            r.wallProfMs = std::min(r.wallProfMs, pwall);
            ratios.push_back(pwall / wall);

            // Third leg of the pair trick: the time-series plane
            // with the worst-case full-glob selection, rows kept in
            // memory only (no ts.out), same machine state as its
            // bare sibling.
            SocConfig tcfg = cfg;
            tcfg.ts.armed = true;
            const auto s0 = std::chrono::steady_clock::now();
            Simulation tsim(tcfg, WorkloadCatalog::byIndex(4));
            tsim.run();
            const auto s1 = std::chrono::steady_clock::now();
            const double twall =
                std::chrono::duration<double, std::milli>(s1 - s0)
                    .count();
            r.wallTsMs = std::min(r.wallTsMs, twall);
            tsRatios.push_back(twall / wall);
        }
        std::sort(ratios.begin(), ratios.end());
        r.profOverheadPct = (ratios[ratios.size() / 2] - 1.0) * 100.0;
        std::sort(tsRatios.begin(), tsRatios.end());
        r.tsOverheadPct =
            (tsRatios[tsRatios.size() / 2] - 1.0) * 100.0;

        const double wallS = r.wallMs / 1e3;
        std::printf("%-10s %9.1f %9.1f %12.0f %12.2f %14.1f %9.2f "
                    "%9.2f\n",
                    r.config, r.simMs, r.wallMs,
                    static_cast<double>(r.ticks) / wallS / 1e6,
                    static_cast<double>(r.events) / wallS / 1e6,
                    r.simMs / wallS, r.profOverheadPct,
                    r.tsOverheadPct);
        rows.push_back(r);
    }

    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    os << "{\n  \"schemaVersion\": "
       << bench::kBenchSchemaVersion << ",\n"
       << "  \"kind\": \"vip-bench-microbench\",\n";
    bench::writeProvenanceJson(os);
    os << ",\n  \"workload\": \"W4\",\n  \"seconds\": " << seconds
       << ",\n  \"throughput\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        const double wallS = r.wallMs / 1e3;
        char buf[440];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"config\": \"%s\", \"sim_ms\": %.3f, "
            "\"wall_ms\": %.1f, \"events\": %llu, "
            "\"mticks_per_s\": %.0f, \"mevents_per_s\": %.3f, "
            "\"sim_ms_per_wall_s\": %.1f, "
            "\"wall_prof_ms\": %.1f, \"prof_overhead_pct\": %.2f, "
            "\"wall_ts_ms\": %.1f, \"ts_overhead_pct\": %.2f}",
            r.config, r.simMs, r.wallMs,
            static_cast<unsigned long long>(r.events),
            static_cast<double>(r.ticks) / wallS / 1e6,
            static_cast<double>(r.events) / wallS / 1e6,
            r.simMs / wallS, r.wallProfMs, r.profOverheadPct,
            r.wallTsMs, r.tsOverheadPct);
        os << buf << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
    std::printf("throughput report written to %s\n", path);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // The throughput trajectory is a plain report, not a
    // google-benchmark: a single pass per configuration is the
    // figure fleet planning consumes.
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sim-throughput") == 0) {
            const char *out =
                i + 1 < argc ? argv[i + 1] : nullptr;
            return simThroughputReport(out);
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
