/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * event-queue throughput, DRAM transaction service, stream-engine
 * unit processing and a whole-platform frames-per-wall-second figure.
 * These guard the simulator's own performance (a full Fig 15 matrix
 * is 75 platform runs).
 */

#include <benchmark/benchmark.h>

#include "core/simulation.hh"
#include "ip/ip_core.hh"

namespace
{

using namespace vip;

void
BM_EventQueueScheduleService(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sink = 0;
        for (int i = 0; i < 1024; ++i)
            eq.schedule((i * 37) % 4096, [&] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleService);

void
BM_DramTransactions(benchmark::State &state)
{
    for (auto _ : state) {
        System sys(1);
        EnergyLedger ledger;
        MemoryController mem(sys, "b.mem", DramConfig{}, ledger);
        int done = 0;
        for (int i = 0; i < 512; ++i) {
            MemRequest req;
            req.addr = static_cast<Addr>(i) * 1024;
            req.bytes = 1024;
            req.onComplete = [&] { ++done; };
            mem.access(std::move(req));
        }
        sys.run(fromMs(1));
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_DramTransactions);

void
BM_StreamChainFrame(benchmark::State &state)
{
    const std::uint64_t bytes = state.range(0);
    for (auto _ : state) {
        System sys(1);
        EnergyLedger ledger;
        DramConfig dc;
        dc.ideal = true;
        MemoryController mem(sys, "b.mem", dc, ledger);
        SystemAgent sa(sys, "b.sa", SaConfig{}, mem, ledger);
        IpParams p = defaultIpParams(IpKind::VD);
        p.clockHz = 1e9;
        p.bytesPerCycle = 4.0;
        IpCore prod(sys, "b.prod", p, sa, ledger);
        IpCore sink(sys, "b.sink", defaultIpParams(IpKind::DC), sa,
                    ledger);
        int pl = prod.bindLane(1);
        int sl = sink.bindLane(1);
        prod.connectLane(pl, &sink, sl);
        bool done = false;
        sink.makeLaneSink(sl, [&](FlowId, std::uint64_t) {
            done = true;
        });
        prod.announceFrame(pl, 0, bytes, bytes, MaxTick, true);
        sink.announceFrame(sl, 0, bytes, 0, MaxTick, true);
        prod.feedFrame(pl, 0, bytes, 0, false);
        sys.run(fromSec(1));
        benchmark::DoNotOptimize(done);
    }
    state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_StreamChainFrame)->Arg(64 * 1024)->Arg(1024 * 1024);

void
BM_FullPlatformVipRun(benchmark::State &state)
{
    for (auto _ : state) {
        SocConfig cfg;
        cfg.system = SystemConfig::VIP;
        cfg.simSeconds = 0.05;
        auto s = Simulation::run(cfg, WorkloadCatalog::byIndex(4));
        benchmark::DoNotOptimize(s.framesCompleted);
    }
}
BENCHMARK(BM_FullPlatformVipRun)->Unit(benchmark::kMillisecond);

/**
 * Same platform run with the tracer enabled, so tracing overhead is
 * measured rather than assumed.  Two points on the cost curve:
 * everything-on records per-unit execution spans (hundreds of
 * thousands of events per run, tens of percent overhead), while the
 * frame-lifecycle mask used for QoS triage stays within a few percent
 * of untraced.  With tracing off the System's tracer pointer is null
 * and every emission site is a single branch (~0%).
 */
void
BM_FullPlatformVipRunTraced(benchmark::State &state,
                            std::uint32_t categories)
{
    for (auto _ : state) {
        SocConfig cfg;
        cfg.system = SystemConfig::VIP;
        cfg.simSeconds = 0.05;
        // Any non-empty path constructs the tracer; nothing is
        // written unless the caller asks for it after the run.
        cfg.trace.out = "(buffer)";
        cfg.trace.categories = categories;
        auto s = Simulation::run(cfg, WorkloadCatalog::byIndex(4));
        benchmark::DoNotOptimize(s.framesCompleted);
    }
}
BENCHMARK_CAPTURE(BM_FullPlatformVipRunTraced, AllCats, kAllTraceCats)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FullPlatformVipRunTraced, FrameLifecycle,
                  static_cast<std::uint32_t>(TraceCat::Frame)
                      | static_cast<std::uint32_t>(TraceCat::Sched)
                      | static_cast<std::uint32_t>(TraceCat::Fault))
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
