/**
 * @file
 * Reproduces Figure 18: QoS violations (frames missing their display
 * deadline), normalized to Baseline, for all five configurations.
 *
 * When a workload's baseline shows zero violations in the simulated
 * window, the absolute counts are printed and the normalized row
 * falls back to a one-frame floor (the paper's device always misses
 * some frames; our simulated window may not).
 */

#include "bench_util.hh"

int
main()
{
    using namespace vip;
    using namespace vip::bench;

    double seconds = simSeconds(0.4);
    banner("Figure 18: QoS violations, normalized to Baseline",
           "Fig 18 (5 configurations x A1..A7, W1..W8, AVG)");

    auto wls = evaluationMatrix();

    // Absolute violation counts first.
    std::vector<std::vector<double>> abs(
        std::size(kAllConfigs), std::vector<double>());
    for (const auto &wl : wls) {
        for (std::size_t c = 0; c < std::size(kAllConfigs); ++c) {
            auto s = runCell(kAllConfigs[c], wl, seconds);
            abs[c].push_back(static_cast<double>(s.violations));
        }
    }

    std::printf("Absolute QoS violations (frames past deadline)\n");
    printHeader("config", wls);
    for (std::size_t c = 0; c < std::size(kAllConfigs); ++c)
        printRow(systemConfigName(kAllConfigs[c]), abs[c]);

    std::printf("\nNormalized to Baseline (floor of 1 frame guards"
                " zero-violation columns)\n");
    printHeader("config", wls);
    for (std::size_t c = 0; c < std::size(kAllConfigs); ++c) {
        std::vector<double> row;
        for (std::size_t i = 0; i < wls.size(); ++i)
            row.push_back(normalized(abs[c][i],
                                     std::max(abs[0][i], 1.0)));
        printRow(systemConfigName(kAllConfigs[c]), row);
    }

    std::printf("\nPaper shape: FrameBurst and IP-to-IP+FB *degrade*"
                " QoS on multi-app workloads\n(head-of-line blocking,"
                " up to ~2x); VIP ends below Baseline (~0.85x),\n"
                "i.e. ~15%% fewer violations/drops.\n");
    return 0;
}
