/**
 * @file
 * Graceful degradation under faults: deadline-miss rates of the five
 * system configurations under one fixed fault plan.
 *
 * Every configuration runs the same workload twice with the identical
 * plan and seed -- the pair must produce bit-identical fault counters
 * (the injector is deterministic) -- plus once fault-free as the
 * reference.  The table then shows how much QoS each system gives up
 * when the platform misbehaves: chained modes re-cover corrupted
 * sub-frames inside the pipeline, while job modes pay the full
 * DRAM round-trip again on every retry.
 */

#include "bench_util.hh"

namespace
{

vip::RunStats
runWithPlan(vip::SystemConfig config, const vip::Workload &wl,
            double seconds, const vip::FaultPlan &plan)
{
    vip::SocConfig cfg;
    cfg.system = config;
    cfg.simSeconds = seconds;
    cfg.fault = plan;
    return vip::Simulation::run(cfg, wl);
}

} // namespace

int
main()
{
    using namespace vip;

    const double seconds = bench::simSeconds(0.25);
    const Workload wl = WorkloadCatalog::byIndex(4);
    FaultPlan plan = FaultPlan::preset("moderate");
    plan.seed = 42;

    bench::banner("Fault degradation: QoS under a fixed fault plan",
                  "the robustness extension (no paper figure)");
    std::printf("workload %s, %.2f s, plan: %s\n\n", wl.name.c_str(),
                seconds, plan.describe().c_str());

    std::printf("%-14s %10s %10s %10s %8s %8s %8s %10s\n", "config",
                "viol%", "viol%flt", "degraded", "resets",
                "retries", "xferRtx", "recov(ms)");

    bool deterministic = true;
    for (auto c : kAllConfigs) {
        RunStats clean = bench::runCell(c, wl, seconds);
        RunStats a = runWithPlan(c, wl, seconds, plan);
        RunStats b = runWithPlan(c, wl, seconds, plan);

        // Same plan + seed must reproduce the identical fault
        // sequence and recovery outcome, bit for bit.
        if (!(a.faults == b.faults) ||
            a.framesCompleted != b.framesCompleted ||
            a.violations != b.violations) {
            std::printf("  !! %s: same-seed runs diverged\n",
                        systemConfigName(c));
            deterministic = false;
        }

        const FaultStats &f = a.faults;
        std::printf("%-14s %9.2f%% %9.2f%% %10llu %8llu %8llu "
                    "%8llu %10.3f\n",
                    systemConfigName(c),
                    clean.violationRate * 100.0,
                    a.violationRate * 100.0,
                    static_cast<unsigned long long>(f.framesDegraded),
                    static_cast<unsigned long long>(f.watchdogResets),
                    static_cast<unsigned long long>(f.unitRetries),
                    static_cast<unsigned long long>(f.transferRetries),
                    f.meanRecoveryMs());
    }

    std::printf("\nsame-seed determinism: %s\n",
                deterministic ? "PASS (both runs bit-identical)"
                              : "FAIL");
    return deterministic ? 0 : 1;
}
