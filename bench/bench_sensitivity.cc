/**
 * @file
 * Sensitivity studies around the Table 3 platform: how the headline
 * comparison moves when the platform itself changes.  These are the
 * "what if" analyses a designer would run on top of the paper:
 *
 *  1. Memory channels (1..8): how much DRAM parallelism the baseline
 *     needs vs how indifferent the chained modes are.
 *  2. CPU core count (1..4): whether the software stack bottlenecks
 *     the baseline on small clusters.
 *  3. QoS deadline (1.0..2.0 periods): where each configuration's
 *     violation cliff sits.
 *  4. Video resolution (720p..4K): where IP-to-IP's energy win starts
 *     paying for its chain-setup overhead.
 */

#include "bench_util.hh"

int
main()
{
    using namespace vip;
    using namespace vip::bench;

    double seconds = simSeconds(0.3);
    banner("Sensitivity: platform scaling around Table 3",
           "designer what-if studies (beyond the paper)");

    auto wl = WorkloadCatalog::byIndex(1);

    // ---- 1. memory channels ----
    std::printf("1) DRAM channels (W1):\n");
    std::printf("%-9s | %22s | %22s\n", "", "Baseline", "VIP");
    std::printf("%-9s | %10s %11s | %10s %11s\n", "channels",
                "mJ/frame", "violations", "mJ/frame", "violations");
    for (std::uint32_t ch : {1u, 2u, 4u, 8u}) {
        SocConfig cfg;
        cfg.simSeconds = seconds;
        cfg.dram.channels = ch;
        cfg.system = SystemConfig::Baseline;
        auto b = Simulation::run(cfg, wl);
        cfg.system = SystemConfig::VIP;
        auto v = Simulation::run(cfg, wl);
        std::printf("%-9u | %10.3f %11llu | %10.3f %11llu\n", ch,
                    b.energyPerFrameMj,
                    static_cast<unsigned long long>(b.violations),
                    v.energyPerFrameMj,
                    static_cast<unsigned long long>(v.violations));
    }
    std::printf("Expected: the baseline needs the channel parallelism"
                " (its frames stage\nthrough DRAM); VIP barely"
                " notices.\n\n");

    // ---- 2. CPU cores ----
    std::printf("2) CPU cores (W1):\n");
    std::printf("%-7s | %22s | %22s\n", "", "Baseline", "VIP");
    std::printf("%-7s | %10s %11s | %10s %11s\n", "cores",
                "cpuMs", "violations", "cpuMs", "violations");
    for (std::uint32_t cores : {1u, 2u, 4u}) {
        SocConfig cfg;
        cfg.simSeconds = seconds;
        cfg.cpuCores = cores;
        cfg.system = SystemConfig::Baseline;
        auto b = Simulation::run(cfg, wl);
        cfg.system = SystemConfig::VIP;
        auto v = Simulation::run(cfg, wl);
        std::printf("%-7u | %10.1f %11llu | %10.1f %11llu\n", cores,
                    b.cpuActiveMs,
                    static_cast<unsigned long long>(b.violations),
                    v.cpuActiveMs,
                    static_cast<unsigned long long>(v.violations));
    }
    std::printf("Expected: per-frame orchestration saturates small"
                " clusters in the baseline;\nburst scheduling is"
                " nearly core-count independent.\n\n");

    // ---- 3. deadline policy ----
    std::printf("3) QoS deadline in frame periods (W2):\n");
    std::printf("%-9s %10s %12s %8s\n", "deadline", "Baseline",
                "IP-to-IP+FB", "VIP");
    for (double d : {1.0, 1.25, 1.5, 2.0}) {
        std::printf("%-9.2f", d);
        for (auto c : {SystemConfig::Baseline,
                       SystemConfig::IpToIpBurst, SystemConfig::VIP}) {
            SocConfig cfg;
            cfg.simSeconds = seconds;
            cfg.system = c;
            cfg.deadlineFrames = d;
            auto s = Simulation::run(cfg,
                                     WorkloadCatalog::byIndex(2));
            std::printf(" %10llu",
                        static_cast<unsigned long long>(s.violations));
        }
        std::printf("\n");
    }
    std::printf("Expected: +FB's blocking shows up first as deadlines"
                " tighten; VIP holds out\nthe longest.\n\n");

    // ---- 4. video resolution ----
    std::printf("4) Video resolution (2 players @60FPS):\n");
    std::printf("%-9s | %10s %10s %12s\n", "res", "Base mJ/f",
                "VIP mJ/f", "VIP saving");
    struct Res { const char *name; Resolution r; };
    const Res resv[] = {{"720p", resolutions::r720p},
                        {"1080p", resolutions::r1080p},
                        {"4K", resolutions::r4k}};
    for (const auto &rv : resv) {
        Workload w;
        w.name = rv.name;
        for (int i = 0; i < 2; ++i) {
            auto app = AppCatalog::videoPlayer(rv.r, 60.0,
                std::string("Play") + rv.name);
            for (auto &f : app.flows)
                f.name.append("#").append(std::to_string(i));
            w.apps.push_back(std::move(app));
        }
        SocConfig cfg;
        cfg.simSeconds = seconds;
        cfg.system = SystemConfig::Baseline;
        auto b = Simulation::run(cfg, w);
        cfg.system = SystemConfig::VIP;
        auto v = Simulation::run(cfg, w);
        std::printf("%-9s | %10.3f %10.3f %11.1f%%\n", rv.name,
                    b.energyPerFrameMj, v.energyPerFrameMj,
                    100.0 * (1.0 - v.energyPerFrameMj /
                                       b.energyPerFrameMj));
    }
    std::printf("Expected: the bigger the frames, the more DRAM"
                " staging the chained modes\neliminate — VIP's saving"
                " grows with resolution.\n");
    return 0;
}
