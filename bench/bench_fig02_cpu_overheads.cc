/**
 * @file
 * Reproduces Figure 2: CPU active time, estimated energy per frame
 * and interrupt counts when 1..4 instances of the instrumented
 * Grafika video player run concurrently on the baseline system.
 *
 * Fig 2a: total CPU active time (ms, all cores) to display one frame
 *         for 24-FPS and 60-FPS playback, plus energy per frame.
 * Fig 2b: number of CPU interrupts (normalized to 1 app) and the
 *         achieved FPS.
 */

#include "bench_util.hh"

namespace
{

vip::Workload
nPlayers(int n, double fps)
{
    vip::Workload w;
    w.name = std::to_string(n) + "app";
    w.useCase = "concurrent Grafika video playback";
    for (int i = 0; i < n; ++i) {
        auto app = vip::AppCatalog::grafikaPlayer(
            vip::resolutions::r4k, fps,
            "Grafika" + std::to_string(i));
        for (auto &f : app.flows)
            f.name.append("#").append(std::to_string(i));
        w.apps.push_back(std::move(app));
    }
    return w;
}


vip::SocConfig
motivationConfig(double seconds)
{
    // The motivation platform: IPs fast enough that *memory* is the
    // binding constraint (the paper's point in Fig 3) -- with ideal
    // memory even 4 concurrent players fit their deadline.
    vip::SocConfig cfg;
    cfg.system = vip::SystemConfig::Baseline;
    cfg.simSeconds = seconds;
    auto fast = [&cfg](vip::IpKind k, double bpc) {
        vip::IpParams p = vip::defaultIpParams(k);
        p.bytesPerCycle = bpc;
        cfg.ipOverrides[k] = p;
    };
    fast(vip::IpKind::VD, 14.0);  // ~9.8 GB/s
    fast(vip::IpKind::GPU, 20.0); // ~10.4 GB/s
    fast(vip::IpKind::DC, 25.0);  // ~10.0 GB/s
    return cfg;
}

} // namespace

int
main()
{
    using namespace vip;
    using namespace vip::bench;

    double seconds = simSeconds(0.3);
    banner("Figure 2: CPU cost of per-frame orchestration (Baseline)",
           "Fig 2a (CPU time & energy/frame) and Fig 2b (interrupts)");

    std::printf("%-6s | %12s %12s | %12s | %12s %8s\n", "apps",
                "cpuMs/frame", "cpuMs/frame", "mJ/frame",
                "interrupts", "FPS");
    std::printf("%-6s | %12s %12s | %12s | %12s %8s\n", "",
                "(24-FPS)", "(60-FPS)", "(60-FPS)", "(norm, 60)", "");

    double irq1 = 0.0;
    for (int n = 1; n <= 4; ++n) {
        auto cfg = motivationConfig(seconds);
        auto s24 = Simulation::run(cfg, nPlayers(n, 24.0));
        auto s60 = Simulation::run(cfg, nPlayers(n, 60.0));
        if (n == 1)
            irq1 = static_cast<double>(s60.interrupts);
        std::printf("%-6d | %12.2f %12.2f | %12.2f | %12.2f %8.1f\n",
                    n, s24.cpuActiveMsPerFrame,
                    s60.cpuActiveMsPerFrame, s60.energyPerFrameMj,
                    normalized(static_cast<double>(s60.interrupts),
                               irq1),
                    s60.achievedFps);
    }
    std::printf("\nPaper shape: CPU time per frame and interrupts grow"
                " with the app count\n(~3x interrupts at 4 apps); "
                "achieved FPS degrades.\n");
    return 0;
}
