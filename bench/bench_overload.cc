/**
 * @file
 * Overload sweep: deadline-miss rate vs offered load under the
 * Degrade overload policy.
 *
 * Scales every flow's frame rate by a load factor (0.5x .. 2.0x of
 * nominal) and runs all five system configurations.  The bench is
 * also the overload-protection acceptance gate: every cell must
 * conserve frames per flow (generated == completed + shed + still in
 * flight), honor lane credits (zero lane overflows), and terminate
 * without tripping the no-progress guard.  For the VIP config the
 * miss rate must grow monotonically (within noise) with offered load
 * and stay bounded -- shedding converts unbounded queueing into a
 * bounded, graceful QoS loss.
 *
 * When given a file path argument the bench additionally writes the
 * full result table as fixed-precision JSON; CI runs it twice and
 * byte-compares the two files as a same-seed determinism check.
 */

#include "bench_util.hh"

#include <cmath>
#include <cstring>
#include <fstream>

namespace
{

/** Scale every flow's target FPS by `factor`. */
vip::Workload
scaleLoad(vip::Workload wl, double factor)
{
    for (auto &app : wl.apps) {
        for (auto &f : app.flows)
            f.fps *= factor;
    }
    return wl;
}

struct Cell
{
    const char *config = "";
    double load = 0.0;
    double missRate = 0.0;
    std::uint64_t generated = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t violations = 0;
    std::uint64_t laneOverflows = 0;
    std::uint32_t downRated = 0;
    bool conserved = true;
    vip::LatencySummary latency;
};

/** Deadline misses: frames late at the display plus frames shed. */
double
missRate(const vip::RunStats &r)
{
    if (r.framesGenerated == 0)
        return 0.0;
    return static_cast<double>(r.violations + r.framesShed) /
           static_cast<double>(r.framesGenerated);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vip;

    const char *jsonPath = bench::parseBenchArgs(argc, argv);
    const double seconds = bench::simSeconds(0.25);
    const Workload base = WorkloadCatalog::byIndex(4);
    const double loads[] = {0.5, 0.75, 1.0, 1.25, 1.5, 2.0};

    bench::banner("Overload sweep: miss rate vs offered load (Degrade)",
                  "the overload-protection extension (no paper figure)");
    std::printf("workload %s, %.2f s per cell, policy=degrade\n\n",
                base.name.c_str(), seconds);
    std::printf("%-14s %6s %9s %9s %9s %7s %7s %9s %6s\n", "config",
                "load", "gen", "done", "shed", "viol", "ovfl",
                "miss%", "dnrt");

    std::vector<Cell> cells;
    bool pass = true;

    for (auto c : kAllConfigs) {
        double prevMiss = -1.0;
        for (double load : loads) {
            SocConfig cfg;
            cfg.system = c;
            cfg.simSeconds = seconds;
            cfg.seed = 1;
            cfg.overloadPolicy = OverloadPolicy::Degrade;
            cfg.audit = bench::auditConfig();

            RunStats r;
            try {
                r = Simulation::run(cfg, scaleLoad(base, load));
            } catch (const SimFatal &e) {
                std::printf("  !! %s @%.2fx: fatal: %s\n",
                            systemConfigName(c), load, e.what());
                pass = false;
                continue;
            }

            Cell cell;
            cell.config = systemConfigName(c);
            cell.load = load;
            cell.missRate = missRate(r);
            cell.generated = r.framesGenerated;
            cell.completed = r.framesCompleted;
            cell.shed = r.framesShed;
            cell.violations = r.violations;
            cell.laneOverflows = r.laneOverflows;
            cell.downRated = r.flowsDownRated;
            cell.latency = r.latency;

            // Frame conservation, per flow: every generated frame is
            // accounted for as completed, shed, or still in flight.
            for (const auto &f : r.flows) {
                if (f.generated != f.completed + f.shed + f.inFlight) {
                    std::printf("  !! %s @%.2fx: flow %s leaks frames "
                                "(%llu != %llu + %llu + %llu)\n",
                                cell.config, load, f.name.c_str(),
                                (unsigned long long)f.generated,
                                (unsigned long long)f.completed,
                                (unsigned long long)f.shed,
                                (unsigned long long)f.inFlight);
                    cell.conserved = false;
                    pass = false;
                }
            }

            // Credit protocol: reservations never exceed lane space.
            if (cell.laneOverflows != 0) {
                std::printf("  !! %s @%.2fx: %llu lane overflows\n",
                            cell.config, load,
                            (unsigned long long)cell.laneOverflows);
                pass = false;
            }

            // Degrade must never silently reject a flow outright.
            if (r.flowsRejected != 0) {
                std::printf("  !! %s @%.2fx: %u flows rejected under "
                            "degrade\n",
                            cell.config, load, r.flowsRejected);
                pass = false;
            }

            // VIP + degrade: graceful degradation means the miss rate
            // grows with load (within 5% measurement noise) and never
            // saturates into total loss.
            if (c == SystemConfig::VIP) {
                if (cell.missRate < prevMiss - 0.05) {
                    std::printf("  !! VIP miss rate not monotone: "
                                "%.4f @%.2fx after %.4f\n",
                                cell.missRate, load, prevMiss);
                    pass = false;
                }
                if (cell.missRate > 0.95) {
                    std::printf("  !! VIP miss rate unbounded: %.4f "
                                "@%.2fx\n", cell.missRate, load);
                    pass = false;
                }
                prevMiss = std::max(prevMiss, cell.missRate);
            }

            std::printf("%-14s %5.2fx %9llu %9llu %9llu %7llu %7llu "
                        "%8.2f%% %6u\n",
                        cell.config, load,
                        (unsigned long long)cell.generated,
                        (unsigned long long)cell.completed,
                        (unsigned long long)cell.shed,
                        (unsigned long long)cell.violations,
                        (unsigned long long)cell.laneOverflows,
                        cell.missRate * 100.0, cell.downRated);
            cells.push_back(cell);
        }
        std::printf("\n");
    }

    if (jsonPath) {
        std::ofstream os(jsonPath);
        if (!os) {
            std::printf("cannot write %s\n", jsonPath);
            return 1;
        }
        char buf[256];
        os << "{\n  \"schemaVersion\": " << bench::kBenchSchemaVersion
           << ",\n";
        bench::writeProvenanceJson(os);
        os << ",\n  \"seed\": 1,\n  \"workload\": \"" << base.name
           << "\",\n  \"policy\": \"degrade\",\n  \"cells\": [\n";
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const Cell &c = cells[i];
            std::snprintf(buf, sizeof(buf),
                          "    {\"config\": \"%s\", \"load\": %.2f, "
                          "\"generated\": %llu, \"completed\": %llu, "
                          "\"shed\": %llu, \"violations\": %llu, "
                          "\"laneOverflows\": %llu, \"downRated\": %u, "
                          "\"missRate\": %.6f,\n",
                          c.config, c.load,
                          (unsigned long long)c.generated,
                          (unsigned long long)c.completed,
                          (unsigned long long)c.shed,
                          (unsigned long long)c.violations,
                          (unsigned long long)c.laneOverflows,
                          c.downRated, c.missRate);
            os << buf;
            os << "     \"latency\": {\"endToEnd\": ";
            bench::writeBreakdownJson(os, c.latency.endToEnd);
            os << ", \"transit\": ";
            bench::writeBreakdownJson(os, c.latency.transit);
            os << ",\n                 \"stages\": {";
            for (std::size_t s = 0; s < c.latency.stages.size(); ++s) {
                const auto &st = c.latency.stages[s];
                os << (s ? ", " : "") << '"' << st.stage
                   << "\": {\"total\": ";
                bench::writeBreakdownJson(os, st.total);
                os << ", \"wait\": ";
                bench::writeBreakdownJson(os, st.wait);
                os << ", \"compute\": ";
                bench::writeBreakdownJson(os, st.compute);
                os << ", \"blocked\": ";
                bench::writeBreakdownJson(os, st.blocked);
                os << "}";
            }
            os << "}}}" << (i + 1 < cells.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
        std::printf("wrote %s\n", jsonPath);
    }

    std::printf("overload gate: %s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
}
