/**
 * @file
 * Reproduces Figure 3: memory as the bottleneck when 1..4 video
 * players run on the baseline system.
 *
 * Fig 3a: total IP (video decoder) active time per frame, with the
 *         4-app ideal-memory reference point.
 * Fig 3b: IP utilization (active / busy) vs app count + ideal.
 * Fig 3c: average memory bandwidth consumed.
 * Fig 3d: distribution of time spent at each bandwidth level.
 */

#include "bench_util.hh"

namespace
{

vip::Workload
nPlayers(int n)
{
    vip::Workload w;
    w.name = std::to_string(n) + "app";
    for (int i = 0; i < n; ++i) {
        auto app = vip::AppCatalog::grafikaPlayer(
            vip::resolutions::r4k, 60.0,
            "Grafika" + std::to_string(i));
        for (auto &f : app.flows)
            f.name.append("#").append(std::to_string(i));
        w.apps.push_back(std::move(app));
    }
    return w;
}


vip::SocConfig
motivationConfig(double seconds)
{
    // The motivation platform: IPs fast enough that *memory* is the
    // binding constraint (the paper's point in Fig 3) -- with ideal
    // memory even 4 concurrent players fit their deadline.
    vip::SocConfig cfg;
    cfg.system = vip::SystemConfig::Baseline;
    cfg.simSeconds = seconds;
    auto fast = [&cfg](vip::IpKind k, double bpc) {
        vip::IpParams p = vip::defaultIpParams(k);
        p.bytesPerCycle = bpc;
        cfg.ipOverrides[k] = p;
    };
    fast(vip::IpKind::VD, 14.0);  // ~9.8 GB/s
    fast(vip::IpKind::GPU, 20.0); // ~10.4 GB/s
    fast(vip::IpKind::DC, 25.0);  // ~10.0 GB/s
    return cfg;
}

} // namespace

int
main()
{
    using namespace vip;
    using namespace vip::bench;

    double seconds = simSeconds(0.3);
    banner("Figure 3: memory-system bottleneck (Baseline, n players)",
           "Figs 3a-3d");

    std::printf("%-10s | %10s %8s | %8s %8s | %10s %10s\n", "apps",
                "VDact ms", "VDutil", "DCutil", "rowHit%",
                "avgBW GB/s", ">80% time");

    std::vector<RunStats> runs;
    for (int n = 1; n <= 4; ++n) {
        auto cfg = motivationConfig(seconds);
        Simulation sim(cfg, nPlayers(n));
        auto s = sim.run();
        runs.push_back(s);
        const auto *vd = s.ip("VD");
        const auto *dc = s.ip("DC");
        double framesPerIp =
            std::max<double>(1.0, static_cast<double>(
                s.framesCompleted));
        std::printf("%-10d | %10.2f %8.2f | %8.2f %8.1f | %10.2f"
                    " %10.2f\n",
                    n, vd ? vd->activeMs / framesPerIp * n : 0.0,
                    vd ? vd->utilization : 0.0,
                    dc ? dc->utilization : 0.0,
                    s.memRowHitRate * 100.0, s.avgMemBandwidthGBps,
                    s.fracTimeAbove80PctBw);
    }

    // The Fig 3a/3b "Ideal" reference: 4 apps with zero-latency,
    // infinite-bandwidth memory.
    {
        auto cfg = motivationConfig(seconds);
        cfg.dram.ideal = true;
        auto s = Simulation::run(cfg, nPlayers(4));
        const auto *vd = s.ip("VD");
        std::printf("%-10s | %10.2f %8.2f | %8s %8s | %10s %10s\n",
                    "Ideal(4)",
                    vd ? vd->activeMs /
                             std::max<double>(1.0, double(
                                 s.framesCompleted)) * 4 : 0.0,
                    vd ? vd->utilization : 0.0, "-", "-", "-", "-");
    }

    std::printf("\nFig 3d: time-at-bandwidth distribution "
                "(%% of samples per %%-of-peak bin)\n%-10s",
                "apps");
    for (int b = 0; b < 10; ++b)
        std::printf(" %5d-%-3d", b * 10, (b + 1) * 10);
    std::printf("\n");
    for (int n = 1; n <= 4; ++n) {
        std::printf("%-10d", n);
        const auto &s = runs[n - 1];
        (void)s;
        // Re-run to access the histogram through the live controller.
        auto cfg = motivationConfig(seconds);
        Simulation sim(cfg, nPlayers(n));
        sim.run();
        const auto &h = sim.memory().bwHistogram();
        for (std::size_t b = 0; b < h.numBins(); ++b)
            std::printf(" %8.1f%%", h.binFraction(b) * 100.0);
        std::printf("\n");
    }

    std::printf("\nPaper shape: utilization collapses and bandwidth "
                "approaches peak as apps\nare added; ideal memory "
                "restores ~100%% utilization (Fig 3b).\n");
    return 0;
}
