/**
 * @file
 * Reproduces Figure 6: FruitNinja flick behaviour.
 *
 * Fig 6a: fraction of frames that can / cannot be frame-burst
 *         (frames inside a flick cannot).
 * Fig 6b: distribution of the maximum number of frames available to
 *         one burst between flicks (60 FPS).
 */

#include <cstdio>
#include <map>

#include "app/user_input.hh"
#include "bench_util.hh"

int
main()
{
    using namespace vip;
    using namespace vip::bench;

    banner("Figure 6: FruitNinja flick gaps and burstable frames",
           "Fig 6a (burstable fraction) and Fig 6b (burst sizes)");

    FruitFlickModel model;
    Random rng(1);
    const int sessions = 100000;

    double burstable_time = 0.0, flick_time = 0.0;
    std::map<int, int> burstHist; // 3-frame buckets
    std::uint64_t gaps_over_1s = 0, gaps_over_2s = 0;

    for (int i = 0; i < sessions; ++i) {
        double gap = toSec(model.nextGap(rng));
        double flick = toSec(model.inputDuration(rng));
        burstable_time += gap;
        flick_time += flick;
        int frames = static_cast<int>(gap * 60.0);
        burstHist[frames / 3 * 3] += 1;
        if (gap > 1.0)
            ++gaps_over_1s;
        if (gap > 2.0)
            ++gaps_over_2s;
    }

    double total = burstable_time + flick_time;
    std::printf("Fig 6a: %% of frames that CAN frame-burst:    %5.1f%%"
                "  (paper: ~60%%)\n",
                100.0 * burstable_time / total);
    std::printf("        %% of frames that CANNOT frame-burst: %5.1f%%"
                "  (paper: ~40%%)\n\n",
                100.0 * flick_time / total);

    std::printf("Fig 6b: max frames available per burst (3-frame"
                " buckets)\n%-12s %10s\n", "frames", "% of gaps");
    int shown = 0;
    for (const auto &[bucket, count] : burstHist) {
        double pct = 100.0 * count / sessions;
        if (pct < 0.3 && shown > 12)
            continue;
        std::printf("%3d-%-8d %9.2f%%  %s\n", bucket, bucket + 3, pct,
                    std::string(static_cast<std::size_t>(pct * 3),
                                '#')
                        .c_str());
        ++shown;
    }
    std::printf("\ngaps > 1 s (60+ frames): %.1f%%   gaps > 2 s: "
                "%.1f%%\n",
                100.0 * gaps_over_1s / sessions,
                100.0 * gaps_over_2s / sessions);
    std::printf("Paper shape: long-tailed distribution, e.g. ~7%% of"
                " burstable periods allow\n27-30 frame bursts; tails"
                " past 200 frames exist.\n");
    return 0;
}
