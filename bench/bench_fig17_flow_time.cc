/**
 * @file
 * Reproduces Figure 17: per-frame flow (processing) time, normalized
 * to Baseline, for FrameBurst, IP-to-IP with FrameBurst and VIP.
 */

#include "bench_util.hh"

int
main()
{
    using namespace vip;
    using namespace vip::bench;

    double seconds = simSeconds();
    banner("Figure 17: flow time per frame, normalized to Baseline",
           "Fig 17 (Baseline / FrameBurst / IP-to-IP+FB / VIP)");

    auto wls = evaluationMatrix();
    const SystemConfig shown[] = {
        SystemConfig::Baseline,
        SystemConfig::FrameBurst,
        SystemConfig::IpToIpBurst,
        SystemConfig::VIP,
    };

    // Collect both latency views in one pass.
    std::vector<std::vector<double>> flow(std::size(shown)),
        transit(std::size(shown));
    for (const auto &wl : wls) {
        for (std::size_t c = 0; c < std::size(shown); ++c) {
            auto s = runCell(shown[c], wl, seconds);
            flow[c].push_back(s.meanFlowTimeMs);
            transit[c].push_back(s.meanTransitMs);
        }
    }

    std::printf("(a) latency from nominal frame generation\n");
    printHeader("config", wls);
    for (std::size_t c = 0; c < std::size(shown); ++c) {
        std::vector<double> row;
        for (std::size_t i = 0; i < wls.size(); ++i)
            row.push_back(normalized(flow[c][i], flow[0][i]));
        printRow(systemConfigName(shown[c]), row);
    }

    std::printf("\n(b) pipeline transit (first stage -> sink,"
                " queueing included)\n");
    printHeader("config", wls);
    for (std::size_t c = 0; c < std::size(shown); ++c) {
        std::vector<double> row;
        for (std::size_t i = 0; i < wls.size(); ++i)
            row.push_back(normalized(transit[c][i], transit[0][i]));
        printRow(systemConfigName(shown[c]), row);
    }

    std::printf("\nPaper shape: IP-to-IP cuts flow time sharply (no"
                " DRAM staging); bursts help\nfurther on single-app"
                " columns; VIP gives up a little vs the burst mode"
                "\n(context switching) but never the QoS.\n");
    return 0;
}
