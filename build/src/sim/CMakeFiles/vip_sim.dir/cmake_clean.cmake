file(REMOVE_RECURSE
  "CMakeFiles/vip_sim.dir/event_queue.cc.o"
  "CMakeFiles/vip_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/vip_sim.dir/logging.cc.o"
  "CMakeFiles/vip_sim.dir/logging.cc.o.d"
  "CMakeFiles/vip_sim.dir/sim_object.cc.o"
  "CMakeFiles/vip_sim.dir/sim_object.cc.o.d"
  "CMakeFiles/vip_sim.dir/system.cc.o"
  "CMakeFiles/vip_sim.dir/system.cc.o.d"
  "libvip_sim.a"
  "libvip_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
