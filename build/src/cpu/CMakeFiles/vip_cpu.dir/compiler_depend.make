# Empty compiler generated dependencies file for vip_cpu.
# This may be replaced when dependencies are built.
