file(REMOVE_RECURSE
  "CMakeFiles/vip_cpu.dir/cpu_cluster.cc.o"
  "CMakeFiles/vip_cpu.dir/cpu_cluster.cc.o.d"
  "CMakeFiles/vip_cpu.dir/cpu_core.cc.o"
  "CMakeFiles/vip_cpu.dir/cpu_core.cc.o.d"
  "libvip_cpu.a"
  "libvip_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
