file(REMOVE_RECURSE
  "libvip_cpu.a"
)
