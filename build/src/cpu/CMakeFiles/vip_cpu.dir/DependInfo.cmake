
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/cpu_cluster.cc" "src/cpu/CMakeFiles/vip_cpu.dir/cpu_cluster.cc.o" "gcc" "src/cpu/CMakeFiles/vip_cpu.dir/cpu_cluster.cc.o.d"
  "/root/repo/src/cpu/cpu_core.cc" "src/cpu/CMakeFiles/vip_cpu.dir/cpu_core.cc.o" "gcc" "src/cpu/CMakeFiles/vip_cpu.dir/cpu_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vip_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vip_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/vip_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
