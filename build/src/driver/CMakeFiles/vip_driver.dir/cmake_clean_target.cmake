file(REMOVE_RECURSE
  "libvip_driver.a"
)
