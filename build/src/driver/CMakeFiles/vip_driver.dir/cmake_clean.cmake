file(REMOVE_RECURSE
  "CMakeFiles/vip_driver.dir/software_stack.cc.o"
  "CMakeFiles/vip_driver.dir/software_stack.cc.o.d"
  "libvip_driver.a"
  "libvip_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
