# Empty dependencies file for vip_driver.
# This may be replaced when dependencies are built.
