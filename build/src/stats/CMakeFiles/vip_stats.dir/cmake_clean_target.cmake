file(REMOVE_RECURSE
  "libvip_stats.a"
)
