# Empty dependencies file for vip_stats.
# This may be replaced when dependencies are built.
