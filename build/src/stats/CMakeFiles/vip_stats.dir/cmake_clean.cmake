file(REMOVE_RECURSE
  "CMakeFiles/vip_stats.dir/stats.cc.o"
  "CMakeFiles/vip_stats.dir/stats.cc.o.d"
  "libvip_stats.a"
  "libvip_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
