file(REMOVE_RECURSE
  "CMakeFiles/vip_power.dir/sram_model.cc.o"
  "CMakeFiles/vip_power.dir/sram_model.cc.o.d"
  "libvip_power.a"
  "libvip_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
