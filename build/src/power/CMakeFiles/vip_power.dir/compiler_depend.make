# Empty compiler generated dependencies file for vip_power.
# This may be replaced when dependencies are built.
