file(REMOVE_RECURSE
  "libvip_power.a"
)
