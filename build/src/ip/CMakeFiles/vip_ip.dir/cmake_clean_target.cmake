file(REMOVE_RECURSE
  "libvip_ip.a"
)
