# Empty dependencies file for vip_ip.
# This may be replaced when dependencies are built.
