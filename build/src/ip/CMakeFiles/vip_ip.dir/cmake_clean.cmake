file(REMOVE_RECURSE
  "CMakeFiles/vip_ip.dir/ip_core.cc.o"
  "CMakeFiles/vip_ip.dir/ip_core.cc.o.d"
  "CMakeFiles/vip_ip.dir/ip_types.cc.o"
  "CMakeFiles/vip_ip.dir/ip_types.cc.o.d"
  "libvip_ip.a"
  "libvip_ip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
