file(REMOVE_RECURSE
  "libvip_core.a"
)
