# Empty compiler generated dependencies file for vip_core.
# This may be replaced when dependencies are built.
