file(REMOVE_RECURSE
  "CMakeFiles/vip_core.dir/burst_policy.cc.o"
  "CMakeFiles/vip_core.dir/burst_policy.cc.o.d"
  "CMakeFiles/vip_core.dir/chain_manager.cc.o"
  "CMakeFiles/vip_core.dir/chain_manager.cc.o.d"
  "CMakeFiles/vip_core.dir/flow_runtime.cc.o"
  "CMakeFiles/vip_core.dir/flow_runtime.cc.o.d"
  "CMakeFiles/vip_core.dir/header_packet.cc.o"
  "CMakeFiles/vip_core.dir/header_packet.cc.o.d"
  "CMakeFiles/vip_core.dir/run_stats.cc.o"
  "CMakeFiles/vip_core.dir/run_stats.cc.o.d"
  "CMakeFiles/vip_core.dir/simulation.cc.o"
  "CMakeFiles/vip_core.dir/simulation.cc.o.d"
  "libvip_core.a"
  "libvip_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
