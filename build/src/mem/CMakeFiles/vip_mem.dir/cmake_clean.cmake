file(REMOVE_RECURSE
  "CMakeFiles/vip_mem.dir/memory_controller.cc.o"
  "CMakeFiles/vip_mem.dir/memory_controller.cc.o.d"
  "libvip_mem.a"
  "libvip_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
