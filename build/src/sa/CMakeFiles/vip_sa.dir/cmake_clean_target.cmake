file(REMOVE_RECURSE
  "libvip_sa.a"
)
