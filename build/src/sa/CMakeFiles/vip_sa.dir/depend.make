# Empty dependencies file for vip_sa.
# This may be replaced when dependencies are built.
