file(REMOVE_RECURSE
  "CMakeFiles/vip_sa.dir/system_agent.cc.o"
  "CMakeFiles/vip_sa.dir/system_agent.cc.o.d"
  "libvip_sa.a"
  "libvip_sa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_sa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
