file(REMOVE_RECURSE
  "CMakeFiles/vip_app.dir/application.cc.o"
  "CMakeFiles/vip_app.dir/application.cc.o.d"
  "CMakeFiles/vip_app.dir/flow.cc.o"
  "CMakeFiles/vip_app.dir/flow.cc.o.d"
  "CMakeFiles/vip_app.dir/trace.cc.o"
  "CMakeFiles/vip_app.dir/trace.cc.o.d"
  "CMakeFiles/vip_app.dir/trace_analysis.cc.o"
  "CMakeFiles/vip_app.dir/trace_analysis.cc.o.d"
  "CMakeFiles/vip_app.dir/user_input.cc.o"
  "CMakeFiles/vip_app.dir/user_input.cc.o.d"
  "CMakeFiles/vip_app.dir/workload.cc.o"
  "CMakeFiles/vip_app.dir/workload.cc.o.d"
  "libvip_app.a"
  "libvip_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
