# Empty compiler generated dependencies file for vip_app.
# This may be replaced when dependencies are built.
