file(REMOVE_RECURSE
  "libvip_app.a"
)
