file(REMOVE_RECURSE
  "CMakeFiles/vip_sim_cli.dir/vip_sim.cc.o"
  "CMakeFiles/vip_sim_cli.dir/vip_sim.cc.o.d"
  "vip_sim"
  "vip_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
