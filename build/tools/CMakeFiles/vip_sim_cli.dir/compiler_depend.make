# Empty compiler generated dependencies file for vip_sim_cli.
# This may be replaced when dependencies are built.
