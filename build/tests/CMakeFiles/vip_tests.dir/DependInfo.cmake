
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_app_catalog.cc" "tests/CMakeFiles/vip_tests.dir/test_app_catalog.cc.o" "gcc" "tests/CMakeFiles/vip_tests.dir/test_app_catalog.cc.o.d"
  "/root/repo/tests/test_burst_policy.cc" "tests/CMakeFiles/vip_tests.dir/test_burst_policy.cc.o" "gcc" "tests/CMakeFiles/vip_tests.dir/test_burst_policy.cc.o.d"
  "/root/repo/tests/test_chain_manager.cc" "tests/CMakeFiles/vip_tests.dir/test_chain_manager.cc.o" "gcc" "tests/CMakeFiles/vip_tests.dir/test_chain_manager.cc.o.d"
  "/root/repo/tests/test_coverage.cc" "tests/CMakeFiles/vip_tests.dir/test_coverage.cc.o" "gcc" "tests/CMakeFiles/vip_tests.dir/test_coverage.cc.o.d"
  "/root/repo/tests/test_cpu.cc" "tests/CMakeFiles/vip_tests.dir/test_cpu.cc.o" "gcc" "tests/CMakeFiles/vip_tests.dir/test_cpu.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/vip_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/vip_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/vip_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/vip_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_header_packet.cc" "tests/CMakeFiles/vip_tests.dir/test_header_packet.cc.o" "gcc" "tests/CMakeFiles/vip_tests.dir/test_header_packet.cc.o.d"
  "/root/repo/tests/test_ip_job.cc" "tests/CMakeFiles/vip_tests.dir/test_ip_job.cc.o" "gcc" "tests/CMakeFiles/vip_tests.dir/test_ip_job.cc.o.d"
  "/root/repo/tests/test_ip_stream.cc" "tests/CMakeFiles/vip_tests.dir/test_ip_stream.cc.o" "gcc" "tests/CMakeFiles/vip_tests.dir/test_ip_stream.cc.o.d"
  "/root/repo/tests/test_memory.cc" "tests/CMakeFiles/vip_tests.dir/test_memory.cc.o" "gcc" "tests/CMakeFiles/vip_tests.dir/test_memory.cc.o.d"
  "/root/repo/tests/test_misc_models.cc" "tests/CMakeFiles/vip_tests.dir/test_misc_models.cc.o" "gcc" "tests/CMakeFiles/vip_tests.dir/test_misc_models.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/vip_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/vip_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_random.cc" "tests/CMakeFiles/vip_tests.dir/test_random.cc.o" "gcc" "tests/CMakeFiles/vip_tests.dir/test_random.cc.o.d"
  "/root/repo/tests/test_random_workloads.cc" "tests/CMakeFiles/vip_tests.dir/test_random_workloads.cc.o" "gcc" "tests/CMakeFiles/vip_tests.dir/test_random_workloads.cc.o.d"
  "/root/repo/tests/test_sim_core.cc" "tests/CMakeFiles/vip_tests.dir/test_sim_core.cc.o" "gcc" "tests/CMakeFiles/vip_tests.dir/test_sim_core.cc.o.d"
  "/root/repo/tests/test_simulation.cc" "tests/CMakeFiles/vip_tests.dir/test_simulation.cc.o" "gcc" "tests/CMakeFiles/vip_tests.dir/test_simulation.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/vip_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/vip_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_system_agent.cc" "tests/CMakeFiles/vip_tests.dir/test_system_agent.cc.o" "gcc" "tests/CMakeFiles/vip_tests.dir/test_system_agent.cc.o.d"
  "/root/repo/tests/test_trace_analysis.cc" "tests/CMakeFiles/vip_tests.dir/test_trace_analysis.cc.o" "gcc" "tests/CMakeFiles/vip_tests.dir/test_trace_analysis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/vip_app.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/vip_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/vip_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/vip_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/sa/CMakeFiles/vip_sa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vip_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vip_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/vip_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vip_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
