# Empty dependencies file for vip_tests.
# This may be replaced when dependencies are built.
