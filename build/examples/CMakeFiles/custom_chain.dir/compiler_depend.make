# Empty compiler generated dependencies file for custom_chain.
# This may be replaced when dependencies are built.
