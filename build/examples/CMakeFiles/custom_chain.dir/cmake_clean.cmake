file(REMOVE_RECURSE
  "CMakeFiles/custom_chain.dir/custom_chain.cpp.o"
  "CMakeFiles/custom_chain.dir/custom_chain.cpp.o.d"
  "custom_chain"
  "custom_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
