# Empty dependencies file for multiapp_qos.
# This may be replaced when dependencies are built.
