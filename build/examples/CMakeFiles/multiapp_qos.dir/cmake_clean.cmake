file(REMOVE_RECURSE
  "CMakeFiles/multiapp_qos.dir/multiapp_qos.cpp.o"
  "CMakeFiles/multiapp_qos.dir/multiapp_qos.cpp.o.d"
  "multiapp_qos"
  "multiapp_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiapp_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
