
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig02_cpu_overheads.cc" "bench/CMakeFiles/bench_fig02_cpu_overheads.dir/bench_fig02_cpu_overheads.cc.o" "gcc" "bench/CMakeFiles/bench_fig02_cpu_overheads.dir/bench_fig02_cpu_overheads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vip_core.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/vip_app.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/vip_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/vip_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/vip_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/sa/CMakeFiles/vip_sa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vip_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vip_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/vip_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vip_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
