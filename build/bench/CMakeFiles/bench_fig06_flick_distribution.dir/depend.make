# Empty dependencies file for bench_fig06_flick_distribution.
# This may be replaced when dependencies are built.
