file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_flick_distribution.dir/bench_fig06_flick_distribution.cc.o"
  "CMakeFiles/bench_fig06_flick_distribution.dir/bench_fig06_flick_distribution.cc.o.d"
  "bench_fig06_flick_distribution"
  "bench_fig06_flick_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_flick_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
