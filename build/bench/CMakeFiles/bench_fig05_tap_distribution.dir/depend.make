# Empty dependencies file for bench_fig05_tap_distribution.
# This may be replaced when dependencies are built.
