# Empty dependencies file for bench_fig14_buffer_sizing.
# This may be replaced when dependencies are built.
