file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_memory_bottleneck.dir/bench_fig03_memory_bottleneck.cc.o"
  "CMakeFiles/bench_fig03_memory_bottleneck.dir/bench_fig03_memory_bottleneck.cc.o.d"
  "bench_fig03_memory_bottleneck"
  "bench_fig03_memory_bottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_memory_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
