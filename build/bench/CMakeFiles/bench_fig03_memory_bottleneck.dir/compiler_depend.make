# Empty compiler generated dependencies file for bench_fig03_memory_bottleneck.
# This may be replaced when dependencies are built.
