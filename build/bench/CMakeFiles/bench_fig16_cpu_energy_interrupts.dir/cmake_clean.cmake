file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_cpu_energy_interrupts.dir/bench_fig16_cpu_energy_interrupts.cc.o"
  "CMakeFiles/bench_fig16_cpu_energy_interrupts.dir/bench_fig16_cpu_energy_interrupts.cc.o.d"
  "bench_fig16_cpu_energy_interrupts"
  "bench_fig16_cpu_energy_interrupts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_cpu_energy_interrupts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
