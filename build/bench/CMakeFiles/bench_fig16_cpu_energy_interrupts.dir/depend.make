# Empty dependencies file for bench_fig16_cpu_energy_interrupts.
# This may be replaced when dependencies are built.
