file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_qos.dir/bench_fig18_qos.cc.o"
  "CMakeFiles/bench_fig18_qos.dir/bench_fig18_qos.cc.o.d"
  "bench_fig18_qos"
  "bench_fig18_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
