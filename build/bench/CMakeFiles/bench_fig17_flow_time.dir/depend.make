# Empty dependencies file for bench_fig17_flow_time.
# This may be replaced when dependencies are built.
