/**
 * @file
 * Example: building a custom application and virtual IP chain with
 * the public API — the programmer-facing story of Section 5.
 *
 * Defines a hypothetical "video analytics" app that was not in the
 * paper's Table 1 (camera -> imaging -> video encoder -> storage,
 * plus a preview flow), registers it as a workload, opens its VIP
 * chains, sweeps burst sizes, and dumps the resulting frame trace to
 * CSV — demonstrating that the framework generalizes beyond the
 * built-in catalog.
 *
 * Usage: custom_chain [seconds] [trace.csv]
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/header_packet.hh"
#include "core/simulation.hh"

namespace
{

vip::AppSpec
videoAnalytics()
{
    using K = vip::IpKind;
    vip::AppSpec app;
    app.name = "Analytics";
    app.cls = vip::AppClass::VideoEncode;

    const auto cam = vip::resolutions::camera;

    // Full-rate capture: CAM -> IMG (ISP) -> VE -> MMC.
    vip::FlowSpec capture;
    capture.name = "Analytics.capture";
    capture.stages = {K::CAM, K::IMG, K::VE, K::MMC};
    capture.fps = 30.0;
    capture.edgeBytes = {cam.yuvBytes(), cam.yuvBytes(),
                         cam.yuvBytes(), cam.yuvBytes() / 20};
    capture.appInstrPerFrame = 1'200'000;

    // Low-rate on-screen preview: CAM -> IMG -> DC.
    vip::FlowSpec preview;
    preview.name = "Analytics.preview";
    preview.stages = {K::CAM, K::IMG, K::DC};
    preview.fps = 15.0;
    preview.edgeBytes = {cam.yuvBytes() / 4, cam.yuvBytes() / 4,
                         vip::resolutions::panel.rgbaBytes()};
    preview.appInstrPerFrame = 600'000;

    app.flows = {capture, preview};
    app.validate();
    return app;
}

} // namespace

int
main(int argc, char **argv)
{
    double seconds = argc > 1 ? std::atof(argv[1]) : 0.4;
    const char *csv = argc > 2 ? argv[2] : nullptr;

    vip::Workload wl;
    wl.name = "Custom";
    wl.useCase = "video analytics alongside 4K playback";
    wl.apps = {videoAnalytics(), vip::AppCatalog::videoPlayer()};

    // Show what the hardware sees: the header packet for the capture
    // chain (Fig 12).
    {
        vip::HeaderPacket hp;
        hp.setIps({vip::IpKind::CAM, vip::IpKind::IMG,
                   vip::IpKind::VE, vip::IpKind::MMC});
        hp.setFrameSizeKb(static_cast<std::uint32_t>(
            vip::resolutions::camera.yuvBytes() / 1024));
        hp.setBurstSize(5);
        hp.setFrameRate(3); // 30 FPS code
        std::printf("capture-chain header packet: %u bytes "
                    "(%zu-stage chain)\n",
                    hp.sizeBytes(), hp.ips().size());
    }

    std::printf("\nburst-size sweep under VIP:\n");
    std::printf("%-8s %10s %12s %10s %10s\n", "burst", "mJ/frame",
                "irq/100ms", "violations", "flowMs");
    for (std::uint32_t burst : {1u, 5u, 10u}) {
        vip::SocConfig cfg;
        cfg.system = vip::SystemConfig::VIP;
        cfg.simSeconds = seconds;
        cfg.burstFrames = burst;
        cfg.recordTrace = burst == 5 && csv;
        vip::Simulation sim(cfg, wl);
        auto s = sim.run();
        std::printf("%-8u %10.3f %12.1f %10llu %10.3f\n", burst,
                    s.energyPerFrameMj, s.interruptsPer100ms,
                    static_cast<unsigned long long>(s.violations),
                    s.meanFlowTimeMs);
        if (cfg.recordTrace) {
            std::ofstream out(csv);
            s.trace.dumpCsv(out);
            std::printf("  (frame trace for burst=5 written to %s)\n",
                        csv);
        }
    }

    std::printf("\nper-IP view (VIP, burst=5):\n");
    {
        vip::SocConfig cfg;
        cfg.system = vip::SystemConfig::VIP;
        cfg.simSeconds = seconds;
        vip::Simulation sim(cfg, wl);
        auto s = sim.run();
        std::printf("%-6s %10s %10s %8s %12s\n", "IP", "activeMs",
                    "stallMs", "util", "ctxSwitches");
        for (const auto &ip : s.ips) {
            std::printf("%-6s %10.2f %10.2f %8.2f %12llu\n",
                        ip.name.c_str(), ip.activeMs, ip.stallMs,
                        ip.utilization,
                        static_cast<unsigned long long>(
                            ip.contextSwitches));
        }
    }
    return 0;
}
