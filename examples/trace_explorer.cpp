/**
 * @file
 * Example: record a frame trace and explore it offline.
 *
 * Runs one workload under two configurations, then uses the
 * TraceAnalysis toolkit to print per-flow latency percentiles and
 * jank bursts, and re-judges the same trace under a sweep of deadline
 * policies — the GemDroid-style "simulate once, analyze many times"
 * workflow.
 *
 * Usage: trace_explorer [workload 1..8] [seconds]
 */

#include <cstdio>
#include <cstdlib>

#include "app/trace_analysis.hh"
#include "core/simulation.hh"

namespace
{

void
explore(vip::SystemConfig config, const vip::Workload &wl,
        double seconds)
{
    vip::SocConfig cfg;
    cfg.system = config;
    cfg.simSeconds = seconds;
    cfg.recordTrace = true;
    vip::Simulation sim(cfg, wl);
    auto s = sim.run();

    std::printf("\n===== %s: %zu frames traced =====\n",
                vip::systemConfigName(config), s.trace.size());

    vip::TraceAnalysis ta(s.trace);
    std::printf("%-28s %7s %6s %6s %8s %8s %8s %6s\n", "flow",
                "frames", "viol", "drop", "mean ms", "p95 ms",
                "p99 ms", "jank");
    for (const auto &[name, fs] : ta.perFlow()) {
        std::printf("%-28s %7llu %6llu %6llu %8.2f %8.2f %8.2f"
                    " %6u\n",
                    name.c_str(),
                    static_cast<unsigned long long>(fs.frames),
                    static_cast<unsigned long long>(fs.violations),
                    static_cast<unsigned long long>(fs.drops),
                    fs.meanFlowTimeMs, fs.p95FlowTimeMs,
                    fs.p99FlowTimeMs, fs.worstJankRun);
    }
    std::printf("overall p50/p95/p99: %.2f / %.2f / %.2f ms, "
                "jank bursts (>=2): %llu\n",
                ta.flowTimePercentileMs(0.50),
                ta.flowTimePercentileMs(0.95),
                ta.flowTimePercentileMs(0.99),
                static_cast<unsigned long long>(ta.jankEvents(2)));

    std::printf("deadline-policy sweep (re-judged offline, no "
                "re-simulation):\n");
    std::printf("  %-18s %10s %8s\n", "deadline (periods)",
                "violations", "drops");
    for (double p : {0.75, 1.0, 1.25, 1.5, 2.0}) {
        auto [v, d] = ta.rejudge(p);
        std::printf("  %-18.2f %10llu %8llu\n", p,
                    static_cast<unsigned long long>(v),
                    static_cast<unsigned long long>(d));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    int wli = argc > 1 ? std::atoi(argv[1]) : 2;
    double seconds = argc > 2 ? std::atof(argv[2]) : 0.4;

    vip::Workload wl = vip::WorkloadCatalog::byIndex(wli);
    std::printf("Workload %s: %s\n", wl.name.c_str(),
                wl.useCase.c_str());

    explore(vip::SystemConfig::IpToIpBurst, wl, seconds);
    explore(vip::SystemConfig::VIP, wl, seconds);

    std::printf("\nWhat to look for: under IP-to-IP+FB the victim "
                "flow's p95/p99 and jank\nbursts blow up; under VIP "
                "they settle near the mean.  The deadline sweep\n"
                "shows how far each configuration is from the cliff."
                "\n");
    return 0;
}
