/**
 * @file
 * Quickstart: run one workload under all five system configurations
 * and print the headline metrics the paper compares (energy per
 * frame, flow time, frame drops, interrupts).
 *
 * Usage: quickstart [workload-index 1..8] [seconds]
 */

#include <cstdio>
#include <cstdlib>

#include "core/simulation.hh"

int
main(int argc, char **argv)
{
    int wli = argc > 1 ? std::atoi(argv[1]) : 4;
    double seconds = argc > 2 ? std::atof(argv[2]) : 0.4;

    vip::Workload wl = vip::WorkloadCatalog::byIndex(wli);
    std::printf("Workload %s: %s\n", wl.name.c_str(),
                wl.useCase.c_str());
    for (const auto &app : wl.apps) {
        std::printf("  app %-14s (%s)\n", app.name.c_str(),
                    vip::appClassName(app.cls));
        for (const auto &f : app.flows) {
            std::printf("    flow %-26s ", f.name.c_str());
            for (auto s : f.stages)
                std::printf("%s-", vip::ipKindName(s));
            std::printf("  @%.0f FPS\n", f.fps);
        }
    }

    std::printf("\n%-12s %9s %9s %6s %6s %9s %8s | %7s %7s %7s %7s %7s\n",
                "config", "mJ/frame", "flowMs", "viol", "drop",
                "irq/100ms", "memGBps", "cpu mJ", "dram", "sa", "ip",
                "buf");
    for (auto c : vip::kAllConfigs) {
        vip::SocConfig cfg;
        cfg.system = c;
        cfg.simSeconds = seconds;
        vip::RunStats s = vip::Simulation::run(cfg, wl);
        std::printf("%-12s %9.3f %9.3f %3llu/%-3llu %3llu %9.1f %8.2f |"
                    " %7.1f %7.1f %7.1f %7.1f %7.1f\n",
                    s.configName.c_str(), s.energyPerFrameMj,
                    s.meanFlowTimeMs,
                    static_cast<unsigned long long>(s.violations),
                    static_cast<unsigned long long>(s.framesCompleted),
                    static_cast<unsigned long long>(s.drops),
                    s.interruptsPer100ms, s.avgMemBandwidthGBps,
                    s.cpuEnergyMj, s.dramEnergyMj, s.saEnergyMj,
                    s.ipEnergyMj, s.bufferEnergyMj);
    }
    return 0;
}
