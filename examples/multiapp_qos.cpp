/**
 * @file
 * Example: the head-of-line blocking story of the paper, end to end.
 *
 * Runs the "watching a video while recording another" scenario (W7 —
 * a camera-paced preview flow and a 4K playback flow share the
 * display controller) under the three chained configurations and
 * prints a per-flow QoS report plus a per-frame timeline excerpt, so
 * you can watch IP-to-IP+FrameBurst starve the other application and
 * VIP's EDF lanes fix it.
 *
 * Usage: multiapp_qos [workload-index 1..8] [seconds]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/simulation.hh"

namespace
{

void
report(const char *title, const vip::RunStats &s)
{
    std::printf("\n--- %s ---\n", title);
    std::printf("%-30s %6s %6s %6s %6s %9s %8s\n", "flow", "gen",
                "done", "viol", "drop", "flowMs", "fps");
    for (const auto &f : s.flows) {
        if (!f.qosCritical)
            continue;
        std::printf("%-30s %6llu %6llu %6llu %6llu %9.2f %8.1f\n",
                    f.name.c_str(),
                    static_cast<unsigned long long>(f.generated),
                    static_cast<unsigned long long>(f.completed),
                    static_cast<unsigned long long>(f.violations),
                    static_cast<unsigned long long>(f.drops),
                    f.meanFlowTimeMs, f.achievedFps);
    }
    std::printf("energy %.1f mJ (%.2f mJ/frame), irq %.1f/100ms\n",
                s.totalEnergyMj, s.energyPerFrameMj,
                s.interruptsPer100ms);
}

void
timeline(const vip::RunStats &s, std::size_t max_rows)
{
    std::printf("\nper-frame timeline excerpt (worst completions "
                "first):\n");
    auto events = s.trace.events();
    std::sort(events.begin(), events.end(),
              [](const vip::FrameEvent &a, const vip::FrameEvent &b) {
                  auto lateA = a.completed > a.deadline
                      ? a.completed - a.deadline : 0;
                  auto lateB = b.completed > b.deadline
                      ? b.completed - b.deadline : 0;
                  return lateA > lateB;
              });
    std::printf("%-30s %6s %10s %10s %10s %6s\n", "flow", "frame",
                "gen(ms)", "done(ms)", "dead(ms)", "late?");
    for (std::size_t i = 0;
         i < std::min(max_rows, events.size()); ++i) {
        const auto &e = events[i];
        std::printf("%-30s %6llu %10.2f %10.2f %10.2f %6s\n",
                    e.flowName.c_str(),
                    static_cast<unsigned long long>(e.frameId),
                    vip::toMs(e.generated), vip::toMs(e.completed),
                    vip::toMs(e.deadline),
                    e.dropped ? "DROP"
                              : (e.violated ? "MISS" : ""));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    int wli = argc > 1 ? std::atoi(argv[1]) : 7;
    double seconds = argc > 2 ? std::atof(argv[2]) : 0.4;

    vip::Workload wl = vip::WorkloadCatalog::byIndex(wli);
    std::printf("Scenario %s: %s\n", wl.name.c_str(),
                wl.useCase.c_str());

    const vip::SystemConfig configs[] = {
        vip::SystemConfig::IpToIp,
        vip::SystemConfig::IpToIpBurst,
        vip::SystemConfig::VIP,
    };
    for (auto c : configs) {
        vip::SocConfig cfg;
        cfg.system = c;
        cfg.simSeconds = seconds;
        cfg.recordTrace = true;
        vip::Simulation sim(cfg, wl);
        auto s = sim.run();
        report(vip::systemConfigName(c), s);
        if (c == vip::SystemConfig::IpToIpBurst ||
            c == vip::SystemConfig::VIP) {
            timeline(s, 6);
        }
    }

    std::printf("\nWhat to look for: under IP-to-IP+FB one app's "
                "bursts hold the shared IPs\nfor tens of ms and the "
                "other app's frames go late; under VIP both flows\n"
                "progress at their own rate (Fig 4d / Fig 8).\n");
    return 0;
}
