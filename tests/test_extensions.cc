/**
 * @file
 * Tests for the extension features: the CPU DVFS governor, vsync-
 * aligned QoS judging, the overflow-to-memory lane policy at the
 * platform level, and the stats dump facility.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/simulation.hh"

namespace vip
{
namespace
{

// ------------------------------------------------------------------
// DVFS governor
// ------------------------------------------------------------------

class DvfsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sys = std::make_unique<System>(1);
        ledger = std::make_unique<EnergyLedger>();
    }

    CpuCore &
    makeCore(CpuConfig cfg)
    {
        core = std::make_unique<CpuCore>(*sys, "t.cpu", cfg, *ledger);
        return *core;
    }

    static CpuConfig
    governed()
    {
        CpuConfig cfg;
        cfg.freqHz = 1e9;
        cfg.governor = CpuGovernor::OnDemand;
        cfg.freqSteps = {0.5, 1.0, 1.5};
        cfg.governorPeriod = fromMs(5);
        return cfg;
    }

    std::unique_ptr<System> sys;
    std::unique_ptr<EnergyLedger> ledger;
    std::unique_ptr<CpuCore> core;
};

TEST_F(DvfsTest, StartsAtNominalStep)
{
    auto &c = makeCore(governed());
    EXPECT_DOUBLE_EQ(c.currentFreqHz(), 1e9);
}

TEST_F(DvfsTest, SaturatedCoreClocksUp)
{
    auto &c = makeCore(governed());
    // 50 ms of back-to-back work saturates the governor window.
    for (int i = 0; i < 50; ++i) {
        CpuTask t;
        t.instructions = 1'000'000; // ~1 ms each at nominal
        c.dispatch(std::move(t));
    }
    sys->run(fromMs(30));
    EXPECT_GT(c.currentFreqHz(), 1e9);
    EXPECT_GT(c.dvfsTransitions(), 0u);
}

TEST_F(DvfsTest, IdleCoreClocksDown)
{
    auto &c = makeCore(governed());
    sys->run(fromMs(30)); // no work at all
    EXPECT_LT(c.currentFreqHz(), 1e9);
}

TEST_F(DvfsTest, HigherFrequencyShortensTasks)
{
    // A step table whose only entry is 2x nominal pins the governed
    // core at 2 GHz, so task duration halves deterministically.
    CpuConfig cfg = governed();
    cfg.freqSteps = {2.0};
    auto &c = makeCore(cfg);
    ASSERT_DOUBLE_EQ(c.currentFreqHz(), 2e9);

    Tick done = 0;
    CpuTask t;
    t.instructions = 2'000'000;
    t.onComplete = [&] { done = sys->curTick(); };
    c.dispatch(std::move(t));
    sys->run(fromMs(50));
    // 2 M instr at 2 GIPS = 1 ms (vs 2 ms at nominal).
    EXPECT_NEAR(toMs(done), 1.0, 0.01);
}

TEST_F(DvfsTest, FixedGovernorNeverChangesFrequency)
{
    CpuConfig cfg;
    cfg.freqHz = 1e9;
    auto &c = makeCore(cfg);
    for (int i = 0; i < 50; ++i) {
        CpuTask t;
        t.instructions = 1'000'000;
        c.dispatch(std::move(t));
    }
    sys->run(fromMs(100));
    EXPECT_DOUBLE_EQ(c.currentFreqHz(), 1e9);
    EXPECT_EQ(c.dvfsTransitions(), 0u);
}

TEST(DvfsPlatform, GovernorSavesCpuEnergyOnLightLoad)
{
    // A lightly-loaded CPU (audio playback) sits below the governor's
    // down-threshold, so ondemand settles at a low step and cuts CPU
    // energy vs fixed frequency.
    SocConfig fixed;
    fixed.system = SystemConfig::VIP;
    fixed.simSeconds = 0.25;
    SocConfig gov = fixed;
    gov.cpu.governor = CpuGovernor::OnDemand;

    auto a = Simulation::run(fixed, WorkloadCatalog::single(3));
    auto b = Simulation::run(gov, WorkloadCatalog::single(3));
    EXPECT_LT(b.cpuEnergyMj, a.cpuEnergyMj);
    EXPECT_GE(b.framesCompleted + 1, a.framesCompleted);
}

TEST(DvfsPlatform, GovernorKeepsHeavyWorkloadLive)
{
    SocConfig gov;
    gov.system = SystemConfig::VIP;
    gov.simSeconds = 0.25;
    gov.cpu.governor = CpuGovernor::OnDemand;
    auto fixed = gov;
    fixed.cpu.governor = CpuGovernor::None;

    auto a = Simulation::run(fixed, WorkloadCatalog::byIndex(1));
    auto b = Simulation::run(gov, WorkloadCatalog::byIndex(1));
    EXPECT_GT(b.framesCompleted, a.framesCompleted * 8 / 10);
}

// ------------------------------------------------------------------
// Vsync-aligned QoS
// ------------------------------------------------------------------

TEST(Vsync, AlignmentOnlyAddsViolations)
{
    SocConfig plain;
    plain.system = SystemConfig::Baseline;
    plain.simSeconds = 0.2;
    SocConfig vs = plain;
    vs.vsyncAligned = true;

    auto a = Simulation::run(plain, WorkloadCatalog::byIndex(1));
    auto b = Simulation::run(vs, WorkloadCatalog::byIndex(1));
    // Judging at the next scanout can only round completion times up.
    EXPECT_GE(b.violations, a.violations);
    EXPECT_EQ(a.framesCompleted, b.framesCompleted);
}

// ------------------------------------------------------------------
// Overflow-to-memory at platform level
// ------------------------------------------------------------------

TEST(OverflowPolicy, SpillRestoresDramTraffic)
{
    SocConfig stall;
    stall.system = SystemConfig::VIP;
    stall.simSeconds = 0.2;
    // Make the decoder outrun the display so lanes actually fill.
    IpParams fastVd = defaultIpParams(IpKind::VD);
    fastVd.bytesPerCycle = 7.0;
    stall.ipOverrides[IpKind::VD] = fastVd;

    SocConfig spill = stall;
    spill.overflowToMemory = true;

    auto a = Simulation::run(stall, WorkloadCatalog::byIndex(1));
    auto b = Simulation::run(spill, WorkloadCatalog::byIndex(1));
    EXPECT_GT(b.memBytesGB, a.memBytesGB * 2.0);
    EXPECT_GT(b.dramEnergyMj, a.dramEnergyMj * 2.0);
}

// ------------------------------------------------------------------
// Stats dump
// ------------------------------------------------------------------

TEST(StatsDump, ContainsEveryComponent)
{
    SocConfig cfg;
    cfg.system = SystemConfig::VIP;
    cfg.simSeconds = 0.1;
    Simulation sim(cfg, WorkloadCatalog::byIndex(4));
    sim.run();

    std::ostringstream os;
    sim.dumpStats(os);
    std::string text = os.str();
    for (const char *needle :
         {"sim.seconds", "sim.events", "soc.mem.reads",
          "soc.mem.latencyNs", "soc.sa.peerTransfers",
          "soc.cpu.core0.tasks", "soc.cpu.core3.interrupts",
          "soc.ip.VD.subframes", "soc.ip.DC.ctxSwitches",
          "energy.cpu", "energy.dram", "energy.total"}) {
        EXPECT_NE(text.find(needle), std::string::npos)
            << "missing stat: " << needle;
    }
}

TEST(StatsDump, DramLowPowerEngagesInChainedModes)
{
    // IP-to-IP communication leaves DRAM idle; the LPDDR low-power
    // machine must spend real time in power-down / self-refresh.
    SocConfig cfg;
    cfg.system = SystemConfig::VIP;
    cfg.simSeconds = 0.2;
    Simulation sim(cfg, WorkloadCatalog::single(5));
    sim.run();
    Tick lp = sim.memory().powerDownTicks() +
              sim.memory().selfRefreshTicks();
    EXPECT_GT(toMs(lp), 50.0); // most of the run

    SocConfig base;
    base.system = SystemConfig::Baseline;
    base.simSeconds = 0.2;
    Simulation sim2(base, WorkloadCatalog::single(5));
    sim2.run();
    Tick lp2 = sim2.memory().powerDownTicks() +
               sim2.memory().selfRefreshTicks();
    EXPECT_LT(lp2, lp); // staging traffic keeps DRAM awake
}


// ------------------------------------------------------------------
// Dynamic app lifecycle
// ------------------------------------------------------------------

TEST(AppLifecycle, StoppedAppFreesItsLanes)
{
    SocConfig cfg;
    cfg.system = SystemConfig::VIP;
    cfg.simSeconds = 0.3;
    Simulation sim(cfg, WorkloadCatalog::byIndex(1));
    // Close the second player a third of the way in.
    sim.stopAppAt("VideoPlay#1", fromMs(100));
    auto s = sim.run();

    // Its lanes were released: one video flow remains bound at VD/DC.
    ASSERT_NE(sim.ip(IpKind::VD), nullptr);
    EXPECT_EQ(sim.ip(IpKind::VD)->boundLanes(), 1u);

    // The survivor kept running for the whole window; the stopped app
    // generated roughly a third of the survivor's frames.
    const FlowResult *alive = nullptr, *stopped = nullptr;
    for (const auto &f : s.flows) {
        if (f.name == "VideoPlay.video#0.video#0")
            alive = &f;
        if (f.name == "VideoPlay.video#1.video#1")
            stopped = &f;
    }
    // Names are "<app>#i" instances: fall back to scanning.
    if (!alive || !stopped) {
        for (const auto &f : s.flows) {
            if (f.name.find("video#0") != std::string::npos &&
                f.name.find(".video") != std::string::npos)
                alive = &f;
            if (f.name.find("video#1") != std::string::npos &&
                f.name.find(".video") != std::string::npos)
                stopped = &f;
        }
    }
    ASSERT_NE(alive, nullptr);
    ASSERT_NE(stopped, nullptr);
    EXPECT_GT(alive->generated, stopped->generated * 2);
    EXPECT_GT(stopped->completed, 0u);
}

TEST(AppLifecycle, StopWorksInEveryConfiguration)
{
    for (auto c : kAllConfigs) {
        SocConfig cfg;
        cfg.system = c;
        cfg.simSeconds = 0.2;
        Simulation sim(cfg, WorkloadCatalog::byIndex(4));
        sim.stopAppAt("Skype#0", fromMs(80));
        auto s = sim.run();
        EXPECT_GT(s.framesCompleted, 0u) << systemConfigName(c);
    }
}

TEST(AppLifecycle, UnknownAppIsFatal)
{
    SocConfig cfg;
    cfg.simSeconds = 0.05;
    Simulation sim(cfg, WorkloadCatalog::single(5));
    EXPECT_THROW(sim.stopAppAt("NoSuchApp", fromMs(1)), SimFatal);
}

} // namespace
} // namespace vip
