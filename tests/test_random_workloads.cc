/**
 * @file
 * Randomized-workload stress: generate random (but valid) application
 * flows — random chain shapes, edge sizes and frame rates — and check
 * that every system configuration simulates them without violating
 * the platform invariants.  This is the fuzz layer above the
 * hand-written property sweeps.
 */

#include <gtest/gtest.h>

#include "core/simulation.hh"

namespace vip
{
namespace
{

/** Build a random valid flow using @p rng. */
FlowSpec
randomFlow(Random &rng, int id)
{
    static const IpKind mids[] = {IpKind::VD, IpKind::VE, IpKind::GPU,
                                  IpKind::AD, IpKind::AE, IpKind::IMG};
    static const IpKind sinks[] = {IpKind::DC, IpKind::NW, IpKind::SND,
                                   IpKind::MMC};
    static const IpKind sources[] = {IpKind::CAM, IpKind::MIC};

    FlowSpec f;
    f.name = "fuzz.flow" + std::to_string(id);

    bool fromSensor = rng.chance(0.3);
    if (fromSensor)
        f.stages.push_back(sources[rng.uniformInt(0, 1)]);
    else if (rng.chance(0.5))
        f.stages.push_back(IpKind::CPU);

    std::uint32_t midCount =
        static_cast<std::uint32_t>(rng.uniformInt(1, 3));
    std::set<IpKind> used; // a chain may not visit an IP twice
    for (std::uint32_t i = 0; i < midCount; ++i) {
        IpKind k = mids[rng.uniformInt(0, std::size(mids) - 1)];
        if (used.insert(k).second)
            f.stages.push_back(k);
    }
    f.stages.push_back(sinks[rng.uniformInt(0, std::size(sinks) - 1)]);

    f.fps = static_cast<double>(rng.uniformInt(5, 60));
    std::size_t hw = f.hwStages().size();
    for (std::size_t i = 0; i < hw; ++i) {
        // 4 KiB .. ~4 MiB per edge.
        f.edgeBytes.push_back(rng.uniformInt(4, 4096) * 1024);
    }
    f.appInstrPerFrame = rng.uniformInt(100'000, 3'000'000);
    f.qosCritical = rng.chance(0.7);
    f.validate();
    return f;
}

Workload
randomWorkload(std::uint64_t seed)
{
    Random rng(seed);
    Workload w;
    w.name = "fuzz" + std::to_string(seed);
    std::uint32_t apps = static_cast<std::uint32_t>(
        rng.uniformInt(1, 3));
    for (std::uint32_t a = 0; a < apps; ++a) {
        AppSpec app;
        app.name = "fuzzApp" + std::to_string(a);
        app.cls = static_cast<AppClass>(rng.uniformInt(0, 3));
        std::uint32_t flows = static_cast<std::uint32_t>(
            rng.uniformInt(1, 3));
        for (std::uint32_t fl = 0; fl < flows; ++fl) {
            app.flows.push_back(
                randomFlow(rng, static_cast<int>(a * 10 + fl)));
        }
        w.apps.push_back(std::move(app));
    }
    return w;
}

using FuzzParam = std::tuple<SystemConfig, std::uint64_t>;

class RandomWorkloadFuzz : public ::testing::TestWithParam<FuzzParam>
{
};

TEST_P(RandomWorkloadFuzz, InvariantsHoldOnRandomChains)
{
    SystemConfig config = std::get<0>(GetParam());
    std::uint64_t seed = std::get<1>(GetParam());

    SocConfig cfg;
    cfg.system = config;
    cfg.simSeconds = 0.08;
    cfg.seed = seed;
    Simulation sim(cfg, randomWorkload(seed));
    auto s = sim.run();

    // Liveness + accounting invariants, regardless of chain shape.
    EXPECT_GT(s.framesCompleted, 0u);
    EXPECT_LE(s.framesCompleted, s.framesGenerated);
    EXPECT_LE(s.drops, s.violations);
    EXPECT_GT(s.totalEnergyMj, 0.0);
    double sum = s.cpuEnergyMj + s.dramEnergyMj + s.saEnergyMj +
                 s.ipEnergyMj + s.bufferEnergyMj;
    EXPECT_NEAR(sum, s.totalEnergyMj, 1e-6 * s.totalEnergyMj);
    for (const auto &ip : s.ips) {
        EXPECT_GE(ip.utilization, 0.0);
        EXPECT_LE(ip.utilization, 1.0);
    }
}

std::string
fuzzName(const ::testing::TestParamInfo<FuzzParam> &info)
{
    std::string name = systemConfigName(std::get<0>(info.param));
    for (auto &ch : name) {
        if (!isalnum(static_cast<unsigned char>(ch)))
            ch = '_';
    }
    return name + "_seed" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, RandomWorkloadFuzz,
    ::testing::Combine(::testing::ValuesIn(kAllConfigs),
                       ::testing::Values(11u, 23u, 37u, 58u, 71u)),
    fuzzName);

/**
 * Oversubscription soak: random workloads cranked well past platform
 * capacity must still terminate (no no-progress trip, no deadlock),
 * and under the Degrade policy every flow must conserve frames:
 * generated == completed + shed + still-in-flight at run end.
 */
class OverloadSoak : public ::testing::TestWithParam<FuzzParam>
{
};

TEST_P(OverloadSoak, OversubscribedDegradeTerminatesAndConserves)
{
    SystemConfig config = std::get<0>(GetParam());
    std::uint64_t seed = std::get<1>(GetParam());

    Random rng(seed * 977 + 13);
    Workload w;
    w.name = "soak" + std::to_string(seed);
    AppSpec app;
    app.name = "soakApp";
    std::uint32_t flows =
        static_cast<std::uint32_t>(rng.uniformInt(2, 6));
    for (std::uint32_t fl = 0; fl < flows; ++fl) {
        FlowSpec f = randomFlow(rng, static_cast<int>(fl));
        // Push the mix well past capacity: high rates, big frames.
        f.fps = static_cast<double>(rng.uniformInt(60, 240));
        for (auto &e : f.edgeBytes)
            e = std::max<std::uint64_t>(e, 2048 * 1024);
        app.flows.push_back(std::move(f));
    }
    w.apps.push_back(std::move(app));

    SocConfig cfg;
    cfg.system = config;
    cfg.simSeconds = 0.08;
    cfg.seed = seed;
    cfg.overloadPolicy = OverloadPolicy::Degrade;
    Simulation sim(cfg, w);

    // Terminates without tripping the no-progress guard (a trip is a
    // SimFatal) even though the offered load exceeds capacity.
    RunStats s;
    ASSERT_NO_THROW(s = sim.run());

    EXPECT_GT(s.framesGenerated, 0u);
    EXPECT_EQ(s.flowsRejected, 0u); // degrade never rejects outright
    EXPECT_EQ(s.laneOverflows, 0u); // credits always honored
    for (const auto &f : s.flows) {
        EXPECT_EQ(f.generated, f.completed + f.shed + f.inFlight)
            << "flow " << f.name << " leaks frames";
        EXPECT_LE(f.fps, f.nominalFps); // only ever down-rated
    }
}

INSTANTIATE_TEST_SUITE_P(
    Soak, OverloadSoak,
    ::testing::Combine(::testing::ValuesIn(kAllConfigs),
                       ::testing::Values(3u, 19u, 42u)),
    fuzzName);

TEST(RandomWorkloadFuzz, GeneratorProducesValidVariety)
{
    // The generator itself must emit valid, varied flows.
    std::set<std::size_t> chainLengths;
    std::set<std::string> sinks;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        auto w = randomWorkload(seed);
        for (const auto &app : w.apps) {
            EXPECT_NO_THROW(app.validate());
            for (const auto &f : app.flows) {
                chainLengths.insert(f.hwStages().size());
                sinks.insert(ipKindName(f.hwStages().back()));
            }
        }
    }
    EXPECT_GE(chainLengths.size(), 3u);
    EXPECT_GE(sinks.size(), 3u);
}

} // namespace
} // namespace vip
