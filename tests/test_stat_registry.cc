/**
 * @file
 * Tests for the unified stats registry, the stats.json round trip
 * through vip_stats_diff's comparison library, and the postmortem
 * flight recorder.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "core/simulation.hh"
#include "obs/flight_recorder.hh"
#include "obs/stats_io.hh"

namespace vip
{
namespace
{

namespace fs = std::filesystem;

TEST(StatRegistry, CounterHandleUpdatesRegisteredStat)
{
    StatRegistry r;
    CounterHandle c = r.counter("x.count", "a counter", "events");
    ASSERT_TRUE(c.valid());
    c += 3;
    ++c;
    EXPECT_DOUBLE_EQ(c.value(), 4.0);
    c.set(10.0);

    auto snap = r.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].first, "x.count");
    EXPECT_DOUBLE_EQ(snap[0].second, 10.0);
}

TEST(StatRegistry, NullHandleIsSafe)
{
    CounterHandle c;
    EXPECT_FALSE(c.valid());
    c += 5; // must not crash
    ++c;
    c.set(1.0);
    EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

TEST(StatRegistry, DuplicatePathPanics)
{
    StatRegistry r;
    r.addExact("a.b", "first", "", [] { return 1.0; });
    EXPECT_THROW(r.addExact("a.b", "second", "", [] { return 2.0; }),
                 SimPanic);
    EXPECT_THROW(r.counter("a.b", "third", ""), SimPanic);
    EXPECT_TRUE(r.has("a.b"));
    EXPECT_EQ(r.size(), 1u);
}

TEST(StatRegistry, WriteJsonRoundTripsThroughParser)
{
    StatRegistry r;
    r.addExact("z.last", "sorted last", "events", [] { return 7.0; });
    r.addTiming("a.first", "sorted first", "ms", [] { return 1.5; });

    std::ostringstream os;
    r.writeJson(os, {{"workload", "T"}, {"seed", "1"}});

    std::istringstream is(os.str());
    StatsFile f = parseStatsJson(is);
    EXPECT_EQ(f.schemaVersion, StatRegistry::kStatsSchemaVersion);
    EXPECT_EQ(f.run.at("workload"), "T");
    ASSERT_EQ(f.stats.size(), 2u);
    // Dump order is sorted by path, independent of insert order.
    EXPECT_EQ(f.stats[0].path, "a.first");
    EXPECT_EQ(f.stats[0].tol, "pct:5");
    EXPECT_EQ(f.stats[0].unit, "ms");
    EXPECT_EQ(f.stats[1].path, "z.last");
    EXPECT_EQ(f.stats[1].tol, "exact");
    EXPECT_EQ(f.stats[1].desc, "sorted last");
    EXPECT_DOUBLE_EQ(f.stats[1].value, 7.0);
}

TEST(StatsDiff, SelfComparisonHasZeroViolations)
{
    StatRegistry r;
    r.addExact("a", "x", "", [] { return 3.0; });
    r.addTiming("b", "y", "ms", [] { return 0.25; });
    std::ostringstream os;
    r.writeJson(os, {{"seed", "1"}});

    std::istringstream i1(os.str()), i2(os.str());
    auto cmp = compareStats(parseStatsJson(i1), parseStatsJson(i2));
    EXPECT_TRUE(cmp.ok);
    EXPECT_EQ(cmp.compared, 2u);
    EXPECT_TRUE(cmp.violations.empty());
}

TEST(StatsDiff, ViolationNamesTheOffendingPath)
{
    StatsFile base, cand;
    base.schemaVersion = cand.schemaVersion = 1;
    base.stats.push_back({"ip.vd.jobs", 100.0, "jobs", "exact", ""});
    cand.stats.push_back({"ip.vd.jobs", 101.0, "jobs", "exact", ""});

    auto cmp = compareStats(base, cand);
    EXPECT_FALSE(cmp.ok);
    ASSERT_EQ(cmp.violations.size(), 1u);
    EXPECT_NE(cmp.violations[0].find("ip.vd.jobs"),
              std::string::npos);
}

TEST(StatsDiff, PercentBandAllowsDriftWithinTolerance)
{
    EXPECT_TRUE(valuesWithinTolerance("pct:5", 100.0, 104.0));
    EXPECT_FALSE(valuesWithinTolerance("pct:5", 100.0, 106.0));
    // Near-zero values sit under the absolute floor.
    EXPECT_TRUE(valuesWithinTolerance("pct:5", 0.0, 1e-12));
    EXPECT_TRUE(valuesWithinTolerance("exact", 2.0, 2.0));
    EXPECT_FALSE(valuesWithinTolerance("exact", 2.0, 2.0000001));
}

TEST(StatsDiff, MissingAndExtraStatsAreViolations)
{
    StatsFile base, cand;
    base.schemaVersion = cand.schemaVersion = 1;
    base.stats.push_back({"gone", 1.0, "", "exact", ""});
    cand.stats.push_back({"new", 1.0, "", "exact", ""});

    auto cmp = compareStats(base, cand);
    EXPECT_FALSE(cmp.ok);
    EXPECT_EQ(cmp.violations.size(), 2u);
}

TEST(StatsDiff, OverridesPreferLongestMatch)
{
    StatsFile base, cand;
    base.schemaVersion = cand.schemaVersion = 1;
    base.stats.push_back({"dram.bytes", 100.0, "B", "exact", ""});
    cand.stats.push_back({"dram.bytes", 103.0, "B", "exact", ""});

    // Prefix override relaxes the whole subsystem...
    ToleranceOverrides o1{{"dram.*", "pct:5"}};
    EXPECT_TRUE(compareStats(base, cand, o1).ok);
    // ...but an exact-path override beats the prefix.
    ToleranceOverrides o2{{"dram.*", "pct:5"},
                          {"dram.bytes", "exact"}};
    EXPECT_FALSE(compareStats(base, cand, o2).ok);
}

TEST(StatsDiff, RunContextMismatchIsAViolation)
{
    StatsFile base, cand;
    base.schemaVersion = cand.schemaVersion = 1;
    base.run["workload"] = "W4";
    cand.run["workload"] = "W7";
    auto cmp = compareStats(base, cand);
    EXPECT_FALSE(cmp.ok);
}

TEST(StatRegistry, FullRunCoversEverySubsystem)
{
    SocConfig cfg;
    cfg.system = SystemConfig::VIP;
    cfg.simSeconds = 0.05;
    Simulation sim(cfg, WorkloadCatalog::byIndex(4));
    sim.run();

    std::ostringstream os;
    sim.writeStatsJson(os);
    std::istringstream is(os.str());
    StatsFile f = parseStatsJson(is);

    std::set<std::string> roots;
    for (const auto &s : f.stats) {
        roots.insert(s.path.substr(0, s.path.find('.')));
        EXPECT_FALSE(s.tol.empty()) << s.path;
        EXPECT_FALSE(s.desc.empty()) << s.path;
    }
    for (const char *want :
         {"ip", "sa", "dram", "cpu", "flow", "fault", "overload",
          "power", "latency", "sim", "audit"})
        EXPECT_TRUE(roots.count(want)) << "missing subsystem " << want;

    // Spot-check the paths named in the design doc.
    EXPECT_TRUE(f.find("ip.vd.busy_ms"));
    EXPECT_TRUE(f.find("dram.ch0.row_hits"));
    EXPECT_TRUE(f.find("sa.bytes_forwarded"));
    EXPECT_TRUE(f.find("cpu.core0.instructions"));

    // The dump round-trips with zero self-diffs.
    std::istringstream i1(os.str()), i2(os.str());
    auto cmp = compareStats(parseStatsJson(i1), parseStatsJson(i2));
    EXPECT_TRUE(cmp.ok);
    EXPECT_GE(cmp.compared, 100u);
}

TEST(StatRegistry, RegistryAndStatsOutAreDigestNeutral)
{
    auto digestOf = [](bool observability) {
        SocConfig cfg;
        cfg.system = SystemConfig::VIP;
        cfg.simSeconds = 0.05;
        cfg.audit = AuditConfig::parse("periodic:5");
        if (observability) {
            cfg.statsOut = "unused-by-the-library"; // vip_sim writes it
            cfg.postmortemDir =
                (fs::path(::testing::TempDir()) / "pm-neutral")
                    .string();
        }
        Simulation sim(cfg, WorkloadCatalog::byIndex(4));
        auto r = sim.run();
        std::ostringstream os;
        sim.writeStatsJson(os);
        return r.digestStreamHash;
    };
    EXPECT_EQ(digestOf(false), digestOf(true));
}

TEST(FlightRecorder, WedgedRunLeavesACompleteCrashBundle)
{
    fs::path dir = fs::path(::testing::TempDir()) / "vip-crash-bundle";
    fs::remove_all(dir);

    SocConfig cfg;
    cfg.system = SystemConfig::VIP;
    cfg.simSeconds = 0.2;
    cfg.noProgressSec = 0.05;
    cfg.postmortemDir = dir.string();
    // Hang every engine with no watchdog: the no-progress guard must
    // abort the run and the flight recorder must capture it.
    cfg.fault.engineHangProb = 1.0;
    cfg.fault.watchdogTimeout = 0;

    Simulation sim(cfg, WorkloadCatalog::byIndex(4));
    EXPECT_THROW(sim.run(), SimFatal);

    ASSERT_TRUE(fs::exists(dir / "crash.json"));
    ASSERT_TRUE(fs::exists(dir / "stats.json"));
    ASSERT_TRUE(fs::exists(dir / "trace-tail.json"));

    // stats.json is a valid dump with the run's counters at death.
    std::ifstream sin(dir / "stats.json");
    StatsFile f = parseStatsJson(sin);
    ASSERT_TRUE(f.find("fault.engine_hangs"));
    EXPECT_GT(f.find("fault.engine_hangs")->value, 0.0);
    EXPECT_EQ(f.run.at("workload"), "W4");

    // crash.json names the failure kind and a nonzero state digest.
    std::ifstream cin(dir / "crash.json");
    std::stringstream buf;
    buf << cin.rdbuf();
    EXPECT_NE(buf.str().find("\"kind\": \"fatal\""),
              std::string::npos);
    EXPECT_NE(buf.str().find("no progress"), std::string::npos);
    EXPECT_NE(buf.str().find("\"stateDigest\": \"0x"),
              std::string::npos);
    fs::remove_all(dir);
}

TEST(FlightRecorder, MetricsStreamSurvivesTheCrash)
{
    fs::path dir = fs::path(::testing::TempDir()) / "vip-crash-metrics";
    fs::remove_all(dir);
    fs::create_directories(dir);
    std::string csv = (dir / "metrics.csv").string();

    SocConfig cfg;
    cfg.system = SystemConfig::VIP;
    cfg.simSeconds = 0.2;
    cfg.noProgressSec = 0.05;
    cfg.postmortemDir = dir.string();
    cfg.metrics.out = csv;
    cfg.metrics.intervalMs = 1.0;
    cfg.fault.engineHangProb = 1.0;
    cfg.fault.watchdogTimeout = 0;

    Simulation sim(cfg, WorkloadCatalog::byIndex(4));
    EXPECT_THROW(sim.run(), SimFatal);

    // Rows were flushed per-sample, so the series is on disk even
    // though the run died before any end-of-run rewrite.
    std::ifstream in(csv);
    ASSERT_TRUE(in.good());
    std::string line;
    std::size_t rows = 0;
    bool header = false;
    while (std::getline(in, line)) {
        if (line.rfind("tick_ms", 0) == 0)
            header = true;
        else if (!line.empty() && line[0] != '#')
            ++rows;
    }
    EXPECT_TRUE(header);
    EXPECT_GT(rows, 10u);

    // crash.json points back at the streamed CSV.
    std::ifstream cin(dir / "crash.json");
    std::stringstream buf;
    buf << cin.rdbuf();
    EXPECT_NE(buf.str().find(csv), std::string::npos);
    fs::remove_all(dir);
}

} // namespace
} // namespace vip
