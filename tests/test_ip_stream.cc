/**
 * @file
 * Unit tests for IpCore in stream (chained) mode: lanes, feeds,
 * forwarding, credits, scheduling policies and switch granularity.
 */

#include <gtest/gtest.h>

#include "ip/ip_core.hh"
#include "test_util.hh"

namespace vip
{
namespace
{

using test::PlatformFixture;

class IpStreamTest : public PlatformFixture
{
  protected:
    void
    SetUp() override
    {
        buildPlatform(/*ideal_memory=*/true);
    }

    IpCore &
    makeIp(const std::string &name, IpParams p)
    {
        ips.push_back(
            std::make_unique<IpCore>(*sys, name, p, *sa, *ledger));
        return *ips.back();
    }

    static IpParams
    fastParams(IpKind kind = IpKind::VD, std::uint32_t lanes = 2)
    {
        IpParams p = defaultIpParams(kind);
        p.clockHz = 1e9;
        p.bytesPerCycle = 4.0;
        p.numLanes = lanes;
        p.laneBytes = 2048;
        p.subframeBytes = 1024;
        return p;
    }

    /** Build a 2-stage chain PROD -> SINK on fresh lanes. */
    struct MiniChain
    {
        IpCore *prod;
        IpCore *sink;
        int prodLane;
        int sinkLane;
    };

    MiniChain
    makeChain(IpParams pp, IpParams sp,
              IpCore::FrameExitFn on_exit = nullptr)
    {
        auto &prod = makeIp("t.prod" + std::to_string(ips.size()), pp);
        auto &sink = makeIp("t.sink" + std::to_string(ips.size()), sp);
        int pl = prod.bindLane(1);
        int sl = sink.bindLane(1);
        EXPECT_GE(pl, 0);
        EXPECT_GE(sl, 0);
        prod.connectLane(pl, &sink, sl);
        sink.makeLaneSink(sl, std::move(on_exit));
        return {&prod, &sink, pl, sl};
    }

    /** Announce + feed one frame through a chain. */
    void
    sendFrame(MiniChain &c, std::uint64_t id, std::uint64_t in_bytes,
              std::uint64_t out_bytes, Tick deadline = MaxTick,
              bool txn_end = true)
    {
        c.prod->announceFrame(c.prodLane, id, in_bytes, out_bytes,
                              deadline, txn_end);
        c.sink->announceFrame(c.sinkLane, id, out_bytes, 0, deadline,
                              txn_end);
        c.prod->feedFrame(c.prodLane, id, in_bytes, 0, false);
    }

    std::vector<std::unique_ptr<IpCore>> ips;
};

TEST_F(IpStreamTest, LaneBindingLifecycle)
{
    auto &ip = makeIp("t.ip", fastParams(IpKind::VD, 2));
    int a = ip.bindLane(1);
    int b = ip.bindLane(2);
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    EXPECT_EQ(ip.boundLanes(), 2u);
    EXPECT_EQ(ip.bindLane(3), -1); // exhausted
    ip.unbindLane(a);
    EXPECT_EQ(ip.boundLanes(), 1u);
    EXPECT_EQ(ip.bindLane(3), 0); // reuses freed lane
}

TEST_F(IpStreamTest, UnbindingActiveLanePanics)
{
    auto &ip = makeIp("t.ip", fastParams());
    int l = ip.bindLane(1);
    ip.announceFrame(l, 0, 4096, 0, MaxTick, true);
    ip.makeLaneSink(l, nullptr);
    ip.feedFrame(l, 0, 4096, 0, false);
    EXPECT_THROW(ip.unbindLane(l), SimPanic);
    run();
    EXPECT_NO_THROW(ip.unbindLane(l));
}

TEST_F(IpStreamTest, FrameFlowsThroughChainToSink)
{
    std::vector<std::pair<FlowId, std::uint64_t>> exits;
    auto chain = makeChain(fastParams(), fastParams(IpKind::DC),
                           [&](FlowId f, std::uint64_t k) {
                               exits.emplace_back(f, k);
                           });
    sendFrame(chain, 7, 64_KiB, 128_KiB);
    run();
    ASSERT_EQ(exits.size(), 1u);
    EXPECT_EQ(exits[0].first, 1u);
    EXPECT_EQ(exits[0].second, 7u);
    EXPECT_EQ(chain.prod->framesExited(), 0u);
    EXPECT_EQ(chain.sink->framesExited(), 1u);
}

TEST_F(IpStreamTest, DataBypassesDram)
{
    auto chain = makeChain(fastParams(), fastParams(IpKind::DC));
    sendFrame(chain, 0, 64_KiB, 64_KiB);
    run();
    // Only the head feed touches memory; the hop is peer traffic.
    EXPECT_EQ(mem->bytesRead(), 64_KiB + 0u);
    EXPECT_EQ(mem->bytesWritten(), 0u);
    EXPECT_GE(sa->peerBytes(), 64_KiB + 0u);
}

TEST_F(IpStreamTest, OutputScalingDeliversExpandedBytes)
{
    // Producer expands 16 KiB input into 64 KiB output (like a video
    // decoder): the sink must consume ~64 KiB.
    auto chain = makeChain(fastParams(), fastParams(IpKind::DC));
    sendFrame(chain, 0, 16_KiB, 64_KiB);
    run();
    EXPECT_NEAR(static_cast<double>(sa->peerBytes()),
                static_cast<double>(64_KiB), 2048.0);
}

TEST_F(IpStreamTest, CompressionDeliversReducedBytes)
{
    // Encoder-style 64 KiB -> 4 KiB.
    auto chain = makeChain(fastParams(), fastParams(IpKind::NW));
    sendFrame(chain, 0, 64_KiB, 4_KiB);
    run();
    EXPECT_NEAR(static_cast<double>(sa->peerBytes()),
                static_cast<double>(4_KiB), 1100.0);
}

TEST_F(IpStreamTest, FramesExitInOrder)
{
    std::vector<std::uint64_t> exits;
    auto chain = makeChain(fastParams(), fastParams(IpKind::DC),
                           [&](FlowId, std::uint64_t k) {
                               exits.push_back(k);
                           });
    for (std::uint64_t k = 0; k < 5; ++k)
        sendFrame(chain, k, 32_KiB, 32_KiB);
    run();
    ASSERT_EQ(exits.size(), 5u);
    for (std::uint64_t k = 0; k < 5; ++k)
        EXPECT_EQ(exits[k], k);
}

TEST_F(IpStreamTest, BackpressureBoundsInputOccupancy)
{
    // A fast producer into a very slow sink: the producer's output is
    // throttled by the sink's 2 KiB lane, so the sink's input buffer
    // never overflows (credit-based flow control).
    IpParams slow = fastParams(IpKind::DC);
    slow.bytesPerCycle = 0.01; // 10 MB/s
    auto chain = makeChain(fastParams(), slow);
    sendFrame(chain, 0, 8_KiB, 8_KiB);
    // Step the simulation and check the invariant along the way.
    for (int i = 0; i < 50; ++i) {
        run(fromUs(20));
        EXPECT_TRUE(chain.sink->laneHasSpace(chain.sinkLane, 0));
    }
    run();
    EXPECT_EQ(chain.sink->framesExited(), 1u);
}

TEST_F(IpStreamTest, GeneratedFeedPacesDataOverSpan)
{
    // A camera-style generated frame spread over 1 ms must not
    // complete much earlier than its readout span.
    Tick done = 0;
    auto chain = makeChain(fastParams(IpKind::CAM),
                           fastParams(IpKind::DC),
                           [&](FlowId, std::uint64_t) {
                               done = sys->curTick();
                           });
    chain.prod->announceFrame(chain.prodLane, 0, 64_KiB, 64_KiB,
                              MaxTick, true);
    chain.sink->announceFrame(chain.sinkLane, 0, 64_KiB, 0, MaxTick,
                              true);
    chain.prod->feedFrame(chain.prodLane, 0, 64_KiB, 0,
                          /*generate=*/true, fromMs(1));
    run();
    EXPECT_GE(done, fromMs(0.9));
    EXPECT_EQ(mem->bytesRead(), 0u); // sensors do not touch DRAM
}

TEST_F(IpStreamTest, EdfPicksEarliestDeadlineLane)
{
    // Two lanes on one producer, distinct sinks; the later-announced
    // but earlier-deadline frame must finish first.
    IpParams pp = fastParams(IpKind::VD, 2);
    pp.sched = SchedPolicy::EDF;
    pp.bytesPerCycle = 0.5; // slow enough to expose ordering
    auto &prod = makeIp("t.prod", pp);
    std::vector<int> exits;
    auto &sinkA = makeIp("t.sinkA", fastParams(IpKind::DC, 1));
    auto &sinkB = makeIp("t.sinkB", fastParams(IpKind::NW, 1));
    int la = prod.bindLane(1);
    int lb = prod.bindLane(2);
    int sa_ = sinkA.bindLane(1);
    int sb = sinkB.bindLane(2);
    prod.connectLane(la, &sinkA, sa_);
    prod.connectLane(lb, &sinkB, sb);
    sinkA.makeLaneSink(sa_, [&](FlowId, std::uint64_t) {
        exits.push_back(1);
    });
    sinkB.makeLaneSink(sb, [&](FlowId, std::uint64_t) {
        exits.push_back(2);
    });

    // Lane A: late deadline; lane B: early deadline.
    prod.announceFrame(la, 0, 32_KiB, 32_KiB, fromMs(100), true);
    sinkA.announceFrame(sa_, 0, 32_KiB, 0, fromMs(100), true);
    prod.announceFrame(lb, 0, 32_KiB, 32_KiB, fromMs(1), true);
    sinkB.announceFrame(sb, 0, 32_KiB, 0, fromMs(1), true);
    prod.feedFrame(la, 0, 32_KiB, 0, false);
    prod.feedFrame(lb, 0, 32_KiB, 1_MiB, false);
    run();
    ASSERT_EQ(exits.size(), 2u);
    EXPECT_EQ(exits[0], 2); // earliest deadline exits first
    EXPECT_GT(prod.contextSwitches(), 0u);
}

TEST_F(IpStreamTest, FrameGranularityBlocksOtherLaneMidFrame)
{
    // Single-context IP (Frame granularity): while a slow camera-
    // paced frame dribbles in on lane A, an urgent frame on lane B
    // must wait for A to finish (the Fig 7 effect).
    IpParams pp = fastParams(IpKind::IMG, 2);
    pp.switchGranularity = SwitchGranularity::Frame;
    pp.sched = SchedPolicy::FIFO;
    auto &prod = makeIp("t.prod", pp);
    auto &sinkA = makeIp("t.sinkA", fastParams(IpKind::DC, 1));
    auto &sinkB = makeIp("t.sinkB", fastParams(IpKind::NW, 1));
    Tick exitA = 0, exitB = 0;
    int la = prod.bindLane(1);
    int lb = prod.bindLane(2);
    int sa_ = sinkA.bindLane(1);
    int sb = sinkB.bindLane(2);
    prod.connectLane(la, &sinkA, sa_);
    prod.connectLane(lb, &sinkB, sb);
    sinkA.makeLaneSink(sa_, [&](FlowId, std::uint64_t) {
        exitA = sys->curTick();
    });
    sinkB.makeLaneSink(sb, [&](FlowId, std::uint64_t) {
        exitB = sys->curTick();
    });

    // Lane A: generated frame spread over 2 ms (slow sensor).
    prod.announceFrame(la, 0, 64_KiB, 8_KiB, MaxTick, true);
    sinkA.announceFrame(sa_, 0, 8_KiB, 0, MaxTick, true);
    prod.feedFrame(la, 0, 64_KiB, 0, true, fromMs(2));
    // Let A's first chunks arrive so the engine commits to lane A.
    run(fromUs(100));
    // Lane B: a tiny urgent frame.
    prod.announceFrame(lb, 0, 4_KiB, 4_KiB, 0, true);
    sinkB.announceFrame(sb, 0, 4_KiB, 0, 0, true);
    prod.feedFrame(lb, 0, 4_KiB, 0, false);
    run();
    EXPECT_GT(exitA, fromMs(1.8));
    // B exits only after A's whole frame, despite being tiny.
    EXPECT_GT(exitB, exitA);
}

TEST_F(IpStreamTest, SubframeGranularityInterleavesLanes)
{
    // Virtualized IP: the urgent lane-B frame overtakes the slow
    // camera-paced lane-A frame.
    IpParams pp = fastParams(IpKind::IMG, 2);
    pp.switchGranularity = SwitchGranularity::Subframe;
    pp.sched = SchedPolicy::EDF;
    auto &prod = makeIp("t.prod", pp);
    auto &sinkA = makeIp("t.sinkA", fastParams(IpKind::DC, 1));
    auto &sinkB = makeIp("t.sinkB", fastParams(IpKind::NW, 1));
    Tick exitA = 0, exitB = 0;
    int la = prod.bindLane(1);
    int lb = prod.bindLane(2);
    int sa_ = sinkA.bindLane(1);
    int sb = sinkB.bindLane(2);
    prod.connectLane(la, &sinkA, sa_);
    prod.connectLane(lb, &sinkB, sb);
    sinkA.makeLaneSink(sa_, [&](FlowId, std::uint64_t) {
        exitA = sys->curTick();
    });
    sinkB.makeLaneSink(sb, [&](FlowId, std::uint64_t) {
        exitB = sys->curTick();
    });

    prod.announceFrame(la, 0, 64_KiB, 8_KiB, fromMs(10), true);
    sinkA.announceFrame(sa_, 0, 8_KiB, 0, fromMs(10), true);
    prod.feedFrame(la, 0, 64_KiB, 0, true, fromMs(2));
    run(fromUs(100));
    prod.announceFrame(lb, 0, 4_KiB, 4_KiB, 0, true);
    sinkB.announceFrame(sb, 0, 4_KiB, 0, 0, true);
    prod.feedFrame(lb, 0, 4_KiB, 0, false);
    run();
    EXPECT_LT(exitB, exitA); // urgent frame overtook
}

TEST_F(IpStreamTest, TransactionGranularityBlocksAcrossBurst)
{
    // Transaction granularity: a 3-frame burst on lane A (only the
    // last closes the txn) keeps lane B blocked past all of A's
    // frames.
    IpParams pp = fastParams(IpKind::VD, 2);
    pp.switchGranularity = SwitchGranularity::Transaction;
    pp.bytesPerCycle = 0.2;
    auto &prod = makeIp("t.prod", pp);
    auto &sinkA = makeIp("t.sinkA", fastParams(IpKind::DC, 1));
    auto &sinkB = makeIp("t.sinkB", fastParams(IpKind::NW, 1));
    std::vector<int> exits;
    int la = prod.bindLane(1);
    int lb = prod.bindLane(2);
    int sa_ = sinkA.bindLane(1);
    int sb = sinkB.bindLane(2);
    prod.connectLane(la, &sinkA, sa_);
    prod.connectLane(lb, &sinkB, sb);
    sinkA.makeLaneSink(sa_, [&](FlowId, std::uint64_t) {
        exits.push_back(1);
    });
    sinkB.makeLaneSink(sb, [&](FlowId, std::uint64_t) {
        exits.push_back(2);
    });

    // Burst of 3 frames on lane A; txn closes on the last only.
    for (std::uint64_t k = 0; k < 3; ++k) {
        prod.announceFrame(la, k, 16_KiB, 16_KiB, fromMs(50),
                           /*txn_end=*/k == 2);
        sinkA.announceFrame(sa_, k, 16_KiB, 0, fromMs(50), k == 2);
        prod.feedFrame(la, k, 16_KiB, k * 1_MiB, false);
    }
    run(fromUs(50)); // engine commits to lane A
    prod.announceFrame(lb, 0, 4_KiB, 4_KiB, 0, true);
    sinkB.announceFrame(sb, 0, 4_KiB, 0, 0, true);
    prod.feedFrame(lb, 0, 4_KiB, 8_MiB, false);
    run();
    ASSERT_EQ(exits.size(), 4u);
    // All three burst frames exit before the urgent B frame.
    EXPECT_EQ(exits[0], 1);
    EXPECT_EQ(exits[1], 1);
    EXPECT_EQ(exits[2], 1);
    EXPECT_EQ(exits[3], 2);
}

TEST_F(IpStreamTest, FrameStartCallbackFiresOnFirstChunk)
{
    auto chain = makeChain(fastParams(), fastParams(IpKind::DC));
    std::vector<std::uint64_t> starts;
    chain.prod->setLaneFrameStartCb(
        chain.prodLane,
        [&](FlowId, std::uint64_t k) { starts.push_back(k); });
    sendFrame(chain, 3, 16_KiB, 16_KiB);
    sendFrame(chain, 4, 16_KiB, 16_KiB);
    run();
    EXPECT_EQ(starts, (std::vector<std::uint64_t>{3, 4}));
}

TEST_F(IpStreamTest, BufferEnergyAccrues)
{
    auto chain = makeChain(fastParams(), fastParams(IpKind::DC));
    sendFrame(chain, 0, 64_KiB, 64_KiB);
    run();
    ledger->closeAll(sys->curTick());
    EXPECT_GT(ledger->categoryNj("buffer"), 0.0);
}

TEST_F(IpStreamTest, AnnounceValidation)
{
    auto &ip = makeIp("t.ip", fastParams());
    EXPECT_THROW(ip.announceFrame(0, 0, 4096, 0, MaxTick, true),
                 SimPanic); // unbound lane
    int l = ip.bindLane(1);
    EXPECT_THROW(ip.announceFrame(l, 0, 0, 0, MaxTick, true),
                 SimPanic); // zero input
}


TEST_F(IpStreamTest, OverflowToMemorySpillsInsteadOfStalling)
{
    // Fast producer, crawling sink: with overflowToMemory the
    // producer's engine finishes its frame quickly, the overflow
    // detours through DRAM, and the sink still consumes every byte.
    IpParams pp = fastParams();
    pp.overflowToMemory = true;
    IpParams slow = fastParams(IpKind::DC);
    slow.bytesPerCycle = 0.05;
    Tick prodDone = 0, sinkDone = 0;
    auto &prod = makeIp("t.prod", pp);
    auto &sink = makeIp("t.sink", slow);
    int pl = prod.bindLane(1);
    int sl = sink.bindLane(1);
    prod.connectLane(pl, &sink, sl);
    sink.makeLaneSink(sl, [&](FlowId, std::uint64_t) {
        sinkDone = sys->curTick();
    });
    prod.announceFrame(pl, 0, 64_KiB, 64_KiB, MaxTick, true);
    sink.announceFrame(sl, 0, 64_KiB, 0, MaxTick, true);
    prod.feedFrame(pl, 0, 64_KiB, 0, false);

    // Watch for when the producer's compute finishes (active ticks
    // stop growing) by sampling.
    run(fromMs(0.2));
    prodDone = prod.activeTicks();
    run(fromSec(2));
    EXPECT_EQ(sink.framesExited(), 1u);
    EXPECT_GT(prod.bytesSpilled(), 0u);
    // The spill detour shows up as DRAM write+read traffic.
    EXPECT_GE(mem->bytesWritten(), prod.bytesSpilled());
    EXPECT_GE(mem->bytesRead(), 64_KiB + prod.bytesSpilled());
    // Producer compute was (nearly) done long before the sink.
    EXPECT_NEAR(static_cast<double>(prodDone),
                static_cast<double>(prod.activeTicks()),
                static_cast<double>(prod.activeTicks()) * 0.05);
    EXPECT_GT(sinkDone, fromMs(1));
}

TEST_F(IpStreamTest, OverflowPreservesByteCount)
{
    IpParams pp = fastParams();
    pp.overflowToMemory = true;
    IpParams slow = fastParams(IpKind::DC);
    slow.bytesPerCycle = 0.2;
    auto &prod = makeIp("t.prod", pp);
    auto &sink = makeIp("t.sink", slow);
    int pl = prod.bindLane(1);
    int sl = sink.bindLane(1);
    prod.connectLane(pl, &sink, sl);
    std::vector<std::uint64_t> exits;
    sink.makeLaneSink(sl, [&](FlowId, std::uint64_t k) {
        exits.push_back(k);
    });
    for (std::uint64_t k = 0; k < 3; ++k) {
        prod.announceFrame(pl, k, 16_KiB, 32_KiB, MaxTick, true);
        sink.announceFrame(sl, k, 32_KiB, 0, MaxTick, true);
        prod.feedFrame(pl, k, 16_KiB, k * 1_MiB, false);
    }
    run(fromSec(2));
    // All frames exit, in order, despite the memory detour.
    EXPECT_EQ(exits, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST_F(IpStreamTest, WatchdogResetReturnsLaneCreditsOnce)
{
    // Regression: a watchdog reset mid-unit must NOT return the
    // unit's input reservation early (the retry recomputes from that
    // same input), and the eventual unit completion must return it
    // exactly once.  A double release would let a later frame reserve
    // past lane capacity; a leak would wedge the lane full.
    FaultPlan plan;
    plan.engineHangProb = 0.5; // every other unit hangs once
    plan.watchdogTimeout = fromUs(5);
    plan.resetPenalty = fromUs(1);
    plan.maxRetries = 10; // generous: no frame is ever given up
    plan.seed = 7;
    FaultInjector faults(plan);

    ips.push_back(std::make_unique<IpCore>(
        *sys, "t.prod", fastParams(), *sa, *ledger, &faults));
    IpCore &prod = *ips.back();
    ips.push_back(std::make_unique<IpCore>(
        *sys, "t.sink", fastParams(IpKind::DC), *sa, *ledger, &faults));
    IpCore &sink = *ips.back();
    int pl = prod.bindLane(1);
    int sl = sink.bindLane(1);
    prod.connectLane(pl, &sink, sl);
    sink.makeLaneSink(sl, nullptr);

    for (std::uint64_t k = 0; k < 6; ++k) {
        prod.announceFrame(pl, k, 32_KiB, 32_KiB, MaxTick, true);
        sink.announceFrame(sl, k, 32_KiB, 0, MaxTick, true);
        prod.feedFrame(pl, k, 32_KiB, 0, false);
    }
    run(fromSec(2));

    // Recovery actually happened (the plan is aggressive enough)...
    EXPECT_GT(prod.watchdogResets() + sink.watchdogResets(), 0u);
    EXPECT_EQ(sink.framesExited(), 6u);
    // ...and the drained lanes hold no stuck reservations: every
    // credit consumed at unit start came back at unit finish, once.
    for (const IpCore *ip : {&prod, &sink}) {
        for (int l : {pl, sl}) {
            if (l >= static_cast<int>(ip->params().numLanes))
                continue;
            EXPECT_EQ(ip->laneOccupancy(l), 0u)
                << ip->name() << " lane " << l << " leaked occupancy";
            EXPECT_EQ(ip->laneInAvail(l), 0u)
                << ip->name() << " lane " << l << " leaked input";
        }
    }
    EXPECT_EQ(prod.laneOverflows(), 0u);
    EXPECT_EQ(sink.laneOverflows(), 0u);
}

} // namespace
} // namespace vip
