/**
 * @file
 * Fleet supervision tests: the scheduler's retry/backoff state
 * machine under a fake clock, worker argv construction, the stats
 * merge, and whole-fleet runs with in-process thread workers —
 * including graceful degradation (failed jobs never abort a sweep)
 * and bit-identical thread-shard output.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulation.hh"
#include "fleet/supervisor.hh"
#include "obs/stats_merge.hh"
#include "sim/logging.hh"

namespace vip
{
namespace fleet
{
namespace
{

namespace fs = std::filesystem;

FleetJob
job(const std::string &config, const std::string &workload,
    std::uint64_t seed)
{
    FleetJob j;
    j.config = config;
    j.workload = workload;
    j.seed = seed;
    j.id = config + "-" + workload + "-s" + std::to_string(seed);
    return j;
}

/** Fresh scratch directory per test, removed on teardown. */
class FleetTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _dir = fs::temp_directory_path() /
               ("vip-fleet-" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(_dir);
        fs::create_directories(_dir);
    }

    void TearDown() override { fs::remove_all(_dir); }

    std::string
    path(const std::string &name) const
    {
        return (_dir / name).string();
    }

    fs::path _dir;
};

std::string
readFile(const std::string &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

// ---------------------------------------------------------------
// Scheduler state machine (fake clock, no processes involved).
// ---------------------------------------------------------------

TEST(FleetScheduler, ClaimsPendingJobsInSpecOrder)
{
    FleetPolicy pol;
    pol.maxAttempts = 3;
    FleetScheduler s({job("vip", "A1", 1), job("vip", "A1", 2)}, pol);
    const std::size_t a = s.claimNext(0.0);
    const std::size_t b = s.claimNext(0.0);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(s.claimNext(0.0), FleetScheduler::npos);
    EXPECT_EQ(s.job(0).attempts, 1);
    EXPECT_EQ(s.job(0).state, JobState::Running);
    EXPECT_EQ(s.runningCount(), 2u);
    EXPECT_FALSE(s.allSettled());
}

TEST(FleetScheduler, FailureBacksOffExponentiallyThenRetries)
{
    FleetPolicy pol;
    pol.maxAttempts = 3;
    pol.backoffBaseMs = 100.0;
    pol.backoffCapMs = 1000.0;
    FleetScheduler s({job("vip", "A1", 1)}, pol);

    ASSERT_EQ(s.claimNext(0.0), 0u);
    s.onFailure(0, 10.0, 10.0, "exit code 1", false);
    EXPECT_EQ(s.job(0).state, JobState::Backoff);
    EXPECT_DOUBLE_EQ(s.job(0).readyAtMs, 110.0); // 10 + 100*2^0
    EXPECT_DOUBLE_EQ(s.nextReadyMs(), 110.0);

    // Not eligible until the delay elapses.
    EXPECT_EQ(s.claimNext(50.0), FleetScheduler::npos);
    EXPECT_EQ(s.claimNext(109.9), FleetScheduler::npos);
    ASSERT_EQ(s.claimNext(110.0), 0u);
    EXPECT_EQ(s.job(0).attempts, 2);

    // Second failure doubles the delay.
    s.onFailure(0, 120.0, 10.0, "exit code 1", false);
    EXPECT_DOUBLE_EQ(s.job(0).readyAtMs, 320.0); // 120 + 100*2^1
    ASSERT_EQ(s.claimNext(320.0), 0u);

    // Third failure hits the attempt cap: terminal, sweep settles.
    s.onFailure(0, 330.0, 10.0, "exit code 1", false);
    EXPECT_EQ(s.job(0).state, JobState::Failed);
    EXPECT_EQ(s.failedCount(), 1u);
    EXPECT_TRUE(s.allSettled());
    EXPECT_EQ(s.claimNext(1e9), FleetScheduler::npos);
    ASSERT_EQ(s.job(0).history.size(), 3u);
    EXPECT_EQ(s.job(0).history[0], "attempt 1: exit code 1");
}

TEST(FleetScheduler, ResumableFailureMarksNextAttempt)
{
    FleetPolicy pol;
    pol.maxAttempts = 3;
    pol.backoffBaseMs = 0.0; // retry immediately
    FleetScheduler s({job("vip", "A1", 1)}, pol);

    ASSERT_EQ(s.claimNext(0.0), 0u);
    s.onFailure(0, 1.0, 1.0, "chaos SIGKILL", true);
    EXPECT_TRUE(s.job(0).resumeNext);
    ASSERT_EQ(s.claimNext(1.0), 0u);
    s.onSuccess(0, 5.0);
    EXPECT_EQ(s.job(0).state, JobState::Done);
    EXPECT_TRUE(s.job(0).everResumed);
    EXPECT_FALSE(s.job(0).resumeNext);
    EXPECT_DOUBLE_EQ(s.job(0).wallMs, 6.0); // both attempts counted
    EXPECT_TRUE(s.allSettled());
}

TEST(FleetScheduler, PolicyCanForbidResume)
{
    FleetPolicy pol;
    pol.resume = false;
    pol.backoffBaseMs = 0.0;
    FleetScheduler s({job("vip", "A1", 1)}, pol);
    ASSERT_EQ(s.claimNext(0.0), 0u);
    s.onFailure(0, 1.0, 1.0, "killed by signal 9", true);
    EXPECT_FALSE(s.job(0).resumeNext); // checkpoint exists, policy no
}

TEST(FleetScheduler, PendingJobsWinOverEligibleBackoffs)
{
    FleetPolicy pol;
    pol.backoffBaseMs = 0.0;
    FleetScheduler s({job("vip", "A1", 1), job("vip", "A1", 2)}, pol);
    ASSERT_EQ(s.claimNext(0.0), 0u);
    s.onFailure(0, 1.0, 1.0, "x", false);
    // Job 0 is eligible again, but fresh job 1 goes first.
    EXPECT_EQ(s.claimNext(2.0), 1u);
    EXPECT_EQ(s.claimNext(2.0), 0u);
}

// ---------------------------------------------------------------
// Worker argv and shard layout.
// ---------------------------------------------------------------

TEST(FleetWorkerArgs, RetryArgsAreFirstAttemptArgsPlusRestore)
{
    // Checkpoint identity covers audit spec and metrics interval, so
    // a retry MUST repeat the first attempt's flags exactly.
    JobSpec spec;
    spec.seconds = 0.25;
    spec.audit = "periodic:1";
    spec.fleet.digests = true;
    spec.fleet.heartbeatIntervalMs = 2.0;
    spec.fleet.checkpointEveryMs = 25.0;
    FleetJob j = job("vip", "W4", 7);
    j.faultPlan = "light";
    const ShardPaths p = shardPaths("out", j.id);

    const auto fresh = workerArgs(spec, j, p, false);
    const auto retry = workerArgs(spec, j, p, true);
    ASSERT_EQ(retry.size(), fresh.size() + 2u);
    for (std::size_t i = 0; i < fresh.size(); ++i)
        EXPECT_EQ(fresh[i], retry[i]) << "flag " << i;
    EXPECT_EQ(retry[fresh.size()], "--restore");
    EXPECT_EQ(retry[fresh.size() + 1], p.checkpoint);

    auto has = [&fresh](const std::string &flag,
                        const std::string &val) {
        for (std::size_t i = 0; i + 1 < fresh.size(); ++i)
            if (fresh[i] == flag && fresh[i + 1] == val)
                return true;
        return false;
    };
    EXPECT_TRUE(has("--workload", "W4"));
    EXPECT_TRUE(has("--config", "vip"));
    EXPECT_TRUE(has("--seed", "7"));
    EXPECT_TRUE(has("--seconds", "0.25"));
    EXPECT_TRUE(has("--fault-plan", "light"));
    EXPECT_TRUE(has("--audit", "periodic:1"));
    EXPECT_TRUE(has("--digest-out", p.digest));
    EXPECT_TRUE(has("--metrics-out", p.metricsCsv));
    EXPECT_TRUE(has("--metrics-interval-ms", "2"));
    EXPECT_TRUE(has("--stats-out", p.statsJson));
    EXPECT_TRUE(has("--postmortem-dir", p.pmDir));
    EXPECT_TRUE(has("--checkpoint-every-ms", "25"));
}

TEST(FleetWorkerArgs, OptionalFlagsStayOffWhenUnconfigured)
{
    JobSpec spec;
    spec.fleet.digests = false;
    spec.fleet.heartbeatIntervalMs = 0.0;
    const FleetJob j = job("baseline", "A1", 1);
    const auto args =
        workerArgs(spec, j, shardPaths("out", j.id), false);
    for (const auto &a : args) {
        EXPECT_NE(a, "--digest-out");
        EXPECT_NE(a, "--metrics-out");
        EXPECT_NE(a, "--audit");
        EXPECT_NE(a, "--fault-plan");
        EXPECT_NE(a, "--restore");
    }
}

TEST(FleetWorkerArgs, ShardLayoutIsPerJob)
{
    const ShardPaths p = shardPaths("runs/x", "vip-A1-s1");
    EXPECT_EQ(p.dir, "runs/x/shards/vip-A1-s1");
    EXPECT_EQ(p.statsJson, "runs/x/shards/vip-A1-s1/stats.json");
    EXPECT_EQ(p.checkpoint,
              "runs/x/shards/vip-A1-s1/pm/checkpoint.vips");
    EXPECT_NE(shardPaths("runs/x", "a").dir,
              shardPaths("runs/x", "b").dir);
}

// ---------------------------------------------------------------
// Stats merge.
// ---------------------------------------------------------------

TEST(StatsMerge, NearestRankPercentiles)
{
    const std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    EXPECT_DOUBLE_EQ(percentileSorted(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 25.0), 3.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 50.0), 5.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 90.0), 9.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 99.0), 10.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 100.0), 10.0);
    EXPECT_DOUBLE_EQ(percentileSorted({42.0}, 50.0), 42.0);
}

TEST(StatsMerge, AggregatesUnionOfHeterogeneousShards)
{
    StatsFile a, b, c;
    a.stats.push_back({"sim.frames", 100.0, "frames", "exact", ""});
    a.stats.push_back({"ip.gpu.util", 0.5, "ratio", "pct:5", ""});
    b.stats.push_back({"sim.frames", 200.0, "frames", "exact", ""});
    // Shard c lacks ip.gpu.util (different config builds fewer IPs).
    c.stats.push_back({"sim.frames", 300.0, "frames", "exact", ""});

    const auto agg = aggregateStats({&a, &b, &c});
    ASSERT_EQ(agg.size(), 2u);
    const StatAggregate &f = agg.at("sim.frames");
    EXPECT_EQ(f.count, 3u);
    EXPECT_DOUBLE_EQ(f.min, 100.0);
    EXPECT_DOUBLE_EQ(f.max, 300.0);
    EXPECT_DOUBLE_EQ(f.mean, 200.0);
    EXPECT_DOUBLE_EQ(f.p50, 200.0);
    EXPECT_EQ(f.unit, "frames");
    // The sparse path aggregates over contributors only.
    EXPECT_EQ(agg.at("ip.gpu.util").count, 1u);
    EXPECT_DOUBLE_EQ(agg.at("ip.gpu.util").mean, 0.5);

    EXPECT_TRUE(aggregateStats({}).empty());
}

TEST(StatsMerge, JsonWriterEmitsEveryPath)
{
    StatsFile a;
    a.stats.push_back({"x.y", 1.0, "u", "exact", ""});
    std::ostringstream os;
    writeAggregateJson(os, aggregateStats({&a}));
    EXPECT_NE(os.str().find("\"x.y\""), std::string::npos);
    EXPECT_NE(os.str().find("\"count\": 1"), std::string::npos);
}

// ---------------------------------------------------------------
// Whole-fleet runs (thread workers; process workers are exercised
// by the CI smoke script, which needs the installed binaries).
// ---------------------------------------------------------------

JobSpec
threadSpec(double seconds)
{
    JobSpec spec;
    spec.name = "unit";
    spec.seconds = seconds;
    spec.audit = "periodic:1";
    spec.fleet.workers = 2;
    spec.fleet.maxAttempts = 2;
    spec.fleet.backoffBaseMs = 1.0;
    spec.fleet.backoffCapMs = 2.0;
    spec.fleet.heartbeatDeadlineMs = 0.0; // no watchdog in units
    spec.fleet.heartbeatIntervalMs = 1.0;
    spec.fleet.checkpointEveryMs = 20.0;
    return spec;
}

TEST_F(FleetTest, ThreadFleetShardMatchesDirectRunBitForBit)
{
    JobSpec spec = threadSpec(0.05);
    spec.jobs = {job("vip", "A1", 1), job("baseline", "A1", 1)};

    FleetOptions opt;
    opt.outDir = path("out");
    opt.mode = WorkerMode::Thread;
    opt.verbose = false;
    FleetSupervisor sup(spec, opt);
    const FleetOutcome out = sup.run();
    EXPECT_EQ(out.exitCode(), 0);
    EXPECT_EQ(out.done, 2u);
    EXPECT_EQ(out.failed, 0u);
    EXPECT_TRUE(fs::exists(out.reportPath));

    // Mirror the worker's exact configuration in this process; the
    // shard's stats dump must be byte-identical.
    SocConfig cfg;
    cfg.simSeconds = 0.05;
    cfg.seed = 1;
    cfg.system = SystemConfig::VIP;
    cfg.audit = AuditConfig::parse("periodic:1");
    cfg.metrics.out = path("mirror.csv");
    cfg.metrics.intervalMs = 1.0;
    cfg.statsOut = path("mirror-stats.json");
    cfg.postmortemDir = path("mirror-pm");
    cfg.checkpointEveryMs = 20.0;
    Simulation sim(cfg, WorkloadCatalog::single(1));
    sim.run();
    std::ostringstream want;
    sim.writeStatsJson(want);

    const std::string got = readFile(
        shardPaths(opt.outDir, "vip-A1-s1").statsJson);
    EXPECT_EQ(got, want.str());
}

TEST_F(FleetTest, FailingJobsDegradeGracefullyIntoTheReport)
{
    // /bin/false crashes every attempt: the sweep must still finish,
    // exhaust the attempt cap, and report the failures -- never abort.
    JobSpec spec = threadSpec(0.05);
    spec.jobs = {job("vip", "A1", 1), job("vip", "A1", 2)};

    FleetOptions opt;
    opt.outDir = path("out");
    opt.mode = WorkerMode::Process;
    opt.vipSimPath = "/bin/false";
    opt.verbose = false;
    FleetSupervisor sup(spec, opt);
    const FleetOutcome out = sup.run();

    EXPECT_EQ(out.exitCode(), 1); // completed *with* failures
    EXPECT_EQ(out.done, 0u);
    EXPECT_EQ(out.failed, 2u);
    EXPECT_EQ(out.retries, 2u); // one retry each before the cap
    ASSERT_EQ(out.jobs.size(), 2u);
    for (const JobProgress &p : out.jobs) {
        EXPECT_EQ(p.state, JobState::Failed);
        EXPECT_EQ(p.attempts, 2);
        EXPECT_EQ(p.lastError, "exit code 1");
        ASSERT_EQ(p.history.size(), 2u);
    }

    const std::string report = readFile(out.reportPath);
    EXPECT_NE(report.find("\"vip-fleet-report\""), std::string::npos);
    EXPECT_NE(report.find("\"failed\": 2"), std::string::npos);
    EXPECT_NE(report.find("\"exit code 1\""), std::string::npos);
}

TEST_F(FleetTest, StopFlagInterruptsTheSweepButStillWritesTheReport)
{
    JobSpec spec = threadSpec(0.05);
    spec.jobs = {job("vip", "A1", 1)};

    std::atomic<int> stop{2}; // as if SIGINT already arrived
    FleetOptions opt;
    opt.outDir = path("out");
    opt.mode = WorkerMode::Thread;
    opt.stopFlag = &stop;
    opt.verbose = false;
    FleetSupervisor sup(spec, opt);
    const FleetOutcome out = sup.run();
    EXPECT_TRUE(out.interrupted);
    EXPECT_EQ(out.exitCode(), 2);
    EXPECT_EQ(out.done, 0u);
    ASSERT_EQ(out.jobs.size(), 1u);
    EXPECT_EQ(out.jobs[0].state, JobState::Pending); // never started
    EXPECT_TRUE(fs::exists(out.reportPath));
    EXPECT_NE(readFile(out.reportPath).find("\"interrupted\": true"),
              std::string::npos);
}

TEST_F(FleetTest, MissingWorkerBinaryIsASetupError)
{
    JobSpec spec = threadSpec(0.05);
    spec.jobs = {job("vip", "A1", 1)};
    FleetOptions opt;
    opt.outDir = path("out");
    opt.mode = WorkerMode::Process;
    opt.vipSimPath = path("no-such-binary");
    opt.verbose = false;
    FleetSupervisor sup(spec, opt);
    EXPECT_THROW(sup.run(), SimFatal);
}

} // namespace
} // namespace fleet
} // namespace vip
