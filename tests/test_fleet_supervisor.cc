/**
 * @file
 * Fleet supervision tests: the scheduler's lease-fenced retry state
 * machine under a fake clock (expiry, zombie rejection and rescue,
 * duplicate suppression), decorrelated-jitter backoff, worker argv
 * construction, the stats merge, and whole-fleet runs with in-process
 * thread workers — including graceful degradation (failed jobs never
 * abort a sweep), host quarantine and recovery under injected
 * transport faults, lease-expiry reassignment across hosts, the
 * all-hosts-dead terminal error, and bit-identical thread-shard
 * output.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulation.hh"
#include "fleet/backoff.hh"
#include "fleet/hosts.hh"
#include "fleet/supervisor.hh"
#include "obs/stats_merge.hh"
#include "sim/logging.hh"

namespace vip
{
namespace fleet
{
namespace
{

namespace fs = std::filesystem;

FleetJob
job(const std::string &config, const std::string &workload,
    std::uint64_t seed)
{
    FleetJob j;
    j.config = config;
    j.workload = workload;
    j.seed = seed;
    j.id = config + "-" + workload + "-s" + std::to_string(seed);
    return j;
}

/** Fresh scratch directory per test, removed on teardown. */
class FleetTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _dir = fs::temp_directory_path() /
               ("vip-fleet-" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(_dir);
        fs::create_directories(_dir);
    }

    void TearDown() override { fs::remove_all(_dir); }

    std::string
    path(const std::string &name) const
    {
        return (_dir / name).string();
    }

    fs::path _dir;
};

std::string
readFile(const std::string &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

// ---------------------------------------------------------------
// Scheduler state machine (fake clock, no processes involved).
// ---------------------------------------------------------------

TEST(FleetScheduler, ClaimsPendingJobsInSpecOrder)
{
    FleetPolicy pol;
    pol.maxAttempts = 3;
    FleetScheduler s({job("vip", "A1", 1), job("vip", "A1", 2)}, pol);
    const std::size_t a = s.claimNext(0.0);
    const std::size_t b = s.claimNext(0.0);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(s.claimNext(0.0), FleetScheduler::npos);
    EXPECT_EQ(s.job(0).attempts, 1);
    EXPECT_EQ(s.job(0).state, JobState::Running);
    EXPECT_EQ(s.runningCount(), 2u);
    EXPECT_FALSE(s.allSettled());
}

TEST(FleetScheduler, FailureBacksOffExponentiallyThenRetries)
{
    FleetPolicy pol;
    pol.maxAttempts = 3;
    pol.backoffBaseMs = 100.0;
    pol.backoffCapMs = 1000.0;
    pol.backoffJitter = false; // exact ladder, no jitter
    FleetScheduler s({job("vip", "A1", 1)}, pol);

    ASSERT_EQ(s.claimNext(0.0), 0u);
    s.onFailure(0, 10.0, 10.0, "exit code 1", false);
    EXPECT_EQ(s.job(0).state, JobState::Backoff);
    EXPECT_DOUBLE_EQ(s.job(0).readyAtMs, 110.0); // 10 + 100*2^0
    EXPECT_DOUBLE_EQ(s.nextReadyMs(), 110.0);

    // Not eligible until the delay elapses.
    EXPECT_EQ(s.claimNext(50.0), FleetScheduler::npos);
    EXPECT_EQ(s.claimNext(109.9), FleetScheduler::npos);
    ASSERT_EQ(s.claimNext(110.0), 0u);
    EXPECT_EQ(s.job(0).attempts, 2);

    // Second failure doubles the delay.
    s.onFailure(0, 120.0, 10.0, "exit code 1", false);
    EXPECT_DOUBLE_EQ(s.job(0).readyAtMs, 320.0); // 120 + 100*2^1
    ASSERT_EQ(s.claimNext(320.0), 0u);

    // Third failure hits the attempt cap: terminal, sweep settles.
    s.onFailure(0, 330.0, 10.0, "exit code 1", false);
    EXPECT_EQ(s.job(0).state, JobState::Failed);
    EXPECT_EQ(s.failedCount(), 1u);
    EXPECT_TRUE(s.allSettled());
    EXPECT_EQ(s.claimNext(1e9), FleetScheduler::npos);
    ASSERT_EQ(s.job(0).history.size(), 3u);
    EXPECT_EQ(s.job(0).history[0], "attempt 1: exit code 1");
}

TEST(FleetScheduler, ResumableFailureMarksNextAttempt)
{
    FleetPolicy pol;
    pol.maxAttempts = 3;
    pol.backoffBaseMs = 0.0; // retry immediately
    FleetScheduler s({job("vip", "A1", 1)}, pol);

    ASSERT_EQ(s.claimNext(0.0), 0u);
    s.onFailure(0, 1.0, 1.0, "chaos SIGKILL", true);
    EXPECT_TRUE(s.job(0).resumeNext);
    ASSERT_EQ(s.claimNext(1.0), 0u);
    s.onSuccess(0, 5.0);
    EXPECT_EQ(s.job(0).state, JobState::Done);
    EXPECT_TRUE(s.job(0).everResumed);
    EXPECT_FALSE(s.job(0).resumeNext);
    EXPECT_DOUBLE_EQ(s.job(0).wallMs, 6.0); // both attempts counted
    EXPECT_TRUE(s.allSettled());
}

TEST(FleetScheduler, PolicyCanForbidResume)
{
    FleetPolicy pol;
    pol.resume = false;
    pol.backoffBaseMs = 0.0;
    FleetScheduler s({job("vip", "A1", 1)}, pol);
    ASSERT_EQ(s.claimNext(0.0), 0u);
    s.onFailure(0, 1.0, 1.0, "killed by signal 9", true);
    EXPECT_FALSE(s.job(0).resumeNext); // checkpoint exists, policy no
}

TEST(FleetScheduler, PendingJobsWinOverEligibleBackoffs)
{
    FleetPolicy pol;
    pol.backoffBaseMs = 0.0;
    FleetScheduler s({job("vip", "A1", 1), job("vip", "A1", 2)}, pol);
    ASSERT_EQ(s.claimNext(0.0), 0u);
    s.onFailure(0, 1.0, 1.0, "x", false);
    // Job 0 is eligible again, but fresh job 1 goes first.
    EXPECT_EQ(s.claimNext(2.0), 1u);
    EXPECT_EQ(s.claimNext(2.0), 0u);
}

// ---------------------------------------------------------------
// Lease-fenced ownership: expiry, zombies, duplicate suppression.
// ---------------------------------------------------------------

TEST(FleetLease, ExpiryReassignsUnderANewerFencingToken)
{
    FleetPolicy pol;
    pol.maxAttempts = 3;
    pol.backoffBaseMs = 0.0;
    pol.leaseMs = 100.0;
    FleetScheduler s({job("vip", "A1", 1)}, pol);

    ASSERT_EQ(s.claimNext(0.0, "h1"), 0u);
    const std::uint64_t t1 = s.job(0).token;
    EXPECT_FALSE(s.leaseExpired(0, 99.0));
    s.renewLease(0, 99.0);
    EXPECT_FALSE(s.leaseExpired(0, 150.0)); // renewed to 199
    EXPECT_TRUE(s.leaseExpired(0, 199.1));

    // Mid-Running expiry: the attempt is written off, the job goes
    // back into rotation, and its history records why.
    s.onLeaseExpired(0, 200.0, 200.0, "lease expired on h1", true);
    EXPECT_EQ(s.job(0).state, JobState::Backoff);
    EXPECT_TRUE(s.job(0).resumeNext);
    EXPECT_EQ(s.job(0).leaseExpiries, 1);
    EXPECT_EQ(s.leaseExpiries(), 1);
    EXPECT_NE(s.job(0).history.back().find("lease expired"),
              std::string::npos);

    // The retry runs under a strictly newer token on another host.
    ASSERT_EQ(s.claimNext(200.0, "h2"), 0u);
    const std::uint64_t t2 = s.job(0).token;
    EXPECT_GT(t2, t1);
    EXPECT_EQ(s.job(0).host, "h2");

    // The zombie's late success carries the stale token: rejected,
    // counted, never merged.
    EXPECT_FALSE(s.acceptSuccess(0, t1, 500.0));
    EXPECT_EQ(s.job(0).state, JobState::Running);
    EXPECT_EQ(s.zombieRejects(), 1);
    EXPECT_EQ(s.job(0).zombieRejects, 1);

    // The live attempt's success under the current token lands.
    EXPECT_TRUE(s.acceptSuccess(0, t2, 50.0));
    EXPECT_EQ(s.job(0).state, JobState::Done);
    EXPECT_FALSE(s.job(0).rescued);
}

TEST(FleetLease, ZombieIsRescuedWhenNoNewerAttemptWasIssued)
{
    FleetPolicy pol;
    pol.backoffBaseMs = 1000.0; // retry not yet eligible
    pol.backoffJitter = false;
    pol.leaseMs = 100.0;
    FleetScheduler s({job("vip", "A1", 1)}, pol);

    ASSERT_EQ(s.claimNext(0.0, "h1"), 0u);
    const std::uint64_t t1 = s.job(0).token;
    s.onLeaseExpired(0, 101.0, 101.0, "lease expired", false);
    EXPECT_EQ(s.job(0).state, JobState::Backoff);

    // The attempt outlived its lease but nothing re-claimed the job:
    // its (fence-current) result is still good.  Rescue it.
    EXPECT_TRUE(s.acceptSuccess(0, t1, 150.0));
    EXPECT_EQ(s.job(0).state, JobState::Done);
    EXPECT_TRUE(s.job(0).rescued);
    EXPECT_EQ(s.zombieRescues(), 1);
    EXPECT_TRUE(s.allSettled());
    EXPECT_EQ(s.claimNext(1e9), FleetScheduler::npos);
}

TEST(FleetLease, DuplicateDeliveryNeverMergesTwice)
{
    FleetPolicy pol;
    pol.leaseMs = 100.0;
    FleetScheduler s({job("vip", "A1", 1)}, pol);
    ASSERT_EQ(s.claimNext(0.0), 0u);
    const std::uint64_t t1 = s.job(0).token;
    EXPECT_TRUE(s.acceptSuccess(0, t1, 10.0));
    // Same token, redelivered (duplicated fetch): refused.
    EXPECT_FALSE(s.acceptSuccess(0, t1, 10.0));
    EXPECT_EQ(s.zombieRejects(), 1);
    EXPECT_DOUBLE_EQ(s.job(0).wallMs, 10.0); // counted once
}

TEST(FleetLease, StaleFailureReportsAreIgnored)
{
    FleetPolicy pol;
    pol.backoffBaseMs = 0.0;
    pol.leaseMs = 100.0;
    FleetScheduler s({job("vip", "A1", 1)}, pol);
    ASSERT_EQ(s.claimNext(0.0, "h1"), 0u);
    const std::uint64_t t1 = s.job(0).token;
    s.onLeaseExpired(0, 101.0, 101.0, "lease expired", false);
    ASSERT_EQ(s.claimNext(101.0, "h2"), 0u);

    // The zombie dies late: its failure is already accounted by the
    // expiry, and must not burn the live attempt.
    EXPECT_FALSE(s.acceptFailure(0, t1, 150.0, 150.0, "late crash",
                                 false));
    EXPECT_EQ(s.job(0).state, JobState::Running);
    EXPECT_EQ(s.job(0).attempts, 2);
}

TEST(FleetLease, ReleasedClaimBurnsNothingAndAcceptsNothing)
{
    FleetPolicy pol;
    pol.leaseMs = 100.0;
    FleetScheduler s({job("vip", "A1", 1)}, pol);
    ASSERT_EQ(s.claimNext(0.0, "h1"), 0u);
    const std::uint64_t t1 = s.job(0).token;
    // Launch failed: the worker never existed.
    s.releaseClaim(0);
    EXPECT_EQ(s.job(0).state, JobState::Pending);
    EXPECT_EQ(s.job(0).attempts, 0);
    // A result under the released token is impossible in practice;
    // the fence still refuses it (Pending accepts nothing).
    EXPECT_FALSE(s.acceptSuccess(0, t1, 1.0));
    // The next claim issues a fresh token and attempt 1 again.
    ASSERT_EQ(s.claimNext(1.0, "h2"), 0u);
    EXPECT_EQ(s.job(0).attempts, 1);
    EXPECT_GT(s.job(0).token, t1);
}

TEST(FleetLease, ExpiryAtTheAttemptCapIsTerminal)
{
    FleetPolicy pol;
    pol.maxAttempts = 1;
    pol.leaseMs = 50.0;
    FleetScheduler s({job("vip", "A1", 1)}, pol);
    ASSERT_EQ(s.claimNext(0.0), 0u);
    const std::uint64_t t1 = s.job(0).token;
    s.onLeaseExpired(0, 51.0, 51.0, "lease expired", false);
    EXPECT_EQ(s.job(0).state, JobState::Failed);
    EXPECT_EQ(s.failedCount(), 1u);
    // ... but a late zombie success under the still-current token
    // can still rescue the job from the Failed column.
    EXPECT_TRUE(s.acceptSuccess(0, t1, 80.0));
    EXPECT_EQ(s.job(0).state, JobState::Done);
    EXPECT_TRUE(s.job(0).rescued);
}

TEST(FleetLease, FailAllUnsettledIsTheTerminalPath)
{
    FleetPolicy pol;
    pol.leaseMs = 0.0; // unleased
    FleetScheduler s({job("vip", "A1", 1), job("vip", "A1", 2),
                      job("vip", "A1", 3)},
                     pol);
    ASSERT_EQ(s.claimNext(0.0), 0u);
    s.onSuccess(0, 1.0);
    ASSERT_EQ(s.claimNext(1.0), 1u);
    EXPECT_EQ(s.failAllUnsettled("all hosts dead"), 2u);
    EXPECT_EQ(s.doneCount(), 1u); // completed work survives
    EXPECT_EQ(s.failedCount(), 2u);
    EXPECT_TRUE(s.allSettled());
    EXPECT_EQ(s.job(1).history.back(), "abandoned: all hosts dead");
}

TEST(FleetLease, ZeroLeaseNeverExpires)
{
    FleetPolicy pol;
    pol.leaseMs = 0.0;
    FleetScheduler s({job("vip", "A1", 1)}, pol);
    ASSERT_EQ(s.claimNext(0.0), 0u);
    EXPECT_FALSE(s.leaseExpired(0, 1e12));
}

// ---------------------------------------------------------------
// Decorrelated-jitter backoff.
// ---------------------------------------------------------------

TEST(FleetBackoff, JitterIsDeterministicBoundedAndDecorrelated)
{
    FleetPolicy pol;
    pol.backoffBaseMs = 100.0;
    pol.backoffCapMs = 1000.0;
    for (int k = 1; k <= 8; ++k) {
        const double d = retryDelayMs(pol, "vip-A1-s1", k);
        EXPECT_EQ(d, retryDelayMs(pol, "vip-A1-s1", k)); // pure
        EXPECT_GE(d, pol.backoffBaseMs);
        EXPECT_LE(d, pol.backoffCapMs);
    }
    // Different jobs failing on the same attempt spread out rather
    // than retrying in lockstep.
    bool differs = false;
    for (std::uint64_t seed = 1; seed <= 8 && !differs; ++seed)
        differs = retryDelayMs(pol, "vip-A1-s" + std::to_string(seed),
                               2) !=
                  retryDelayMs(pol, "vip-A1-s" +
                               std::to_string(seed + 1), 2);
    EXPECT_TRUE(differs);
    // Unit draws live in [0, 1).
    for (int k = 1; k <= 64; ++k) {
        const double u = backoffUnitDraw("j", k);
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(FleetBackoff, JitterOffReproducesTheLegacyLadderExactly)
{
    FleetPolicy pol;
    pol.backoffBaseMs = 100.0;
    pol.backoffCapMs = 1000.0;
    pol.backoffJitter = false;
    for (int k = 1; k <= 8; ++k)
        EXPECT_DOUBLE_EQ(retryDelayMs(pol, "any", k),
                         backoffDelayMs(pol, k));
}

// ---------------------------------------------------------------
// Worker argv and shard layout.
// ---------------------------------------------------------------

TEST(FleetWorkerArgs, ArgsAreAttemptRelativeAndHostIndependent)
{
    // Artifact paths in the argv are attempt-relative names: the
    // transport picks the working directory, so the same argv runs
    // locally, on a thread, or on any ssh host.  Checkpoint identity
    // covers audit spec and metrics interval, so every attempt (and
    // any reference rerun) MUST repeat the same flags; --restore is
    // appended by the transport after it stages the checkpoint.
    JobSpec spec;
    spec.seconds = 0.25;
    spec.audit = "periodic:1";
    spec.fleet.digests = true;
    spec.fleet.heartbeatIntervalMs = 2.0;
    spec.fleet.checkpointEveryMs = 25.0;
    FleetJob j = job("vip", "W4", 7);
    j.faultPlan = "light";

    const auto args = workerArgs(spec, j);
    auto has = [&args](const std::string &flag,
                       const std::string &val) {
        for (std::size_t i = 0; i + 1 < args.size(); ++i)
            if (args[i] == flag && args[i + 1] == val)
                return true;
        return false;
    };
    EXPECT_TRUE(has("--workload", "W4"));
    EXPECT_TRUE(has("--config", "vip"));
    EXPECT_TRUE(has("--seed", "7"));
    EXPECT_TRUE(has("--seconds", "0.25"));
    EXPECT_TRUE(has("--fault-plan", "light"));
    EXPECT_TRUE(has("--audit", "periodic:1"));
    EXPECT_TRUE(has("--digest-out", attempt_files::kDigest));
    EXPECT_TRUE(has("--metrics-out", attempt_files::kMetrics));
    EXPECT_TRUE(has("--metrics-interval-ms", "2"));
    EXPECT_TRUE(has("--stats-out", attempt_files::kStats));
    EXPECT_TRUE(has("--postmortem-dir", attempt_files::kPmDir));
    EXPECT_TRUE(has("--checkpoint-every-ms", "25"));
    for (const auto &a : args) {
        EXPECT_NE(a, "--restore"); // the transport's job
        EXPECT_EQ(a.find('/'), std::string::npos)
            << "host-dependent path in argv: " << a;
    }
}

TEST(FleetWorkerArgs, OptionalFlagsStayOffWhenUnconfigured)
{
    JobSpec spec;
    spec.fleet.digests = false;
    spec.fleet.heartbeatIntervalMs = 0.0;
    const FleetJob j = job("baseline", "A1", 1);
    const auto args = workerArgs(spec, j);
    for (const auto &a : args) {
        EXPECT_NE(a, "--digest-out");
        EXPECT_NE(a, "--metrics-out");
        EXPECT_NE(a, "--audit");
        EXPECT_NE(a, "--fault-plan");
        EXPECT_NE(a, "--restore");
    }
}

TEST(FleetWorkerArgs, ShardLayoutIsPerJob)
{
    const ShardPaths p = shardPaths("runs/x", "vip-A1-s1");
    EXPECT_EQ(p.dir, "runs/x/shards/vip-A1-s1");
    EXPECT_EQ(p.statsJson, "runs/x/shards/vip-A1-s1/stats.json");
    EXPECT_EQ(p.checkpoint,
              "runs/x/shards/vip-A1-s1/pm/checkpoint.vips");
    EXPECT_NE(shardPaths("runs/x", "a").dir,
              shardPaths("runs/x", "b").dir);
    // Attempts stage under the shard, keyed by fencing token, so two
    // attempts of one job can never collide.
    EXPECT_EQ(attemptDir("runs/x", "vip-A1-s1", 7),
              "runs/x/shards/vip-A1-s1/a7");
    EXPECT_NE(attemptDir("runs/x", "j", 1),
              attemptDir("runs/x", "j", 2));
}

// ---------------------------------------------------------------
// Stats merge.
// ---------------------------------------------------------------

TEST(StatsMerge, NearestRankPercentiles)
{
    const std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    EXPECT_DOUBLE_EQ(percentileSorted(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 25.0), 3.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 50.0), 5.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 90.0), 9.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 99.0), 10.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 100.0), 10.0);
    EXPECT_DOUBLE_EQ(percentileSorted({42.0}, 50.0), 42.0);
}

TEST(StatsMerge, AggregatesUnionOfHeterogeneousShards)
{
    StatsFile a, b, c;
    a.stats.push_back({"sim.frames", 100.0, "frames", "exact", ""});
    a.stats.push_back({"ip.gpu.util", 0.5, "ratio", "pct:5", ""});
    b.stats.push_back({"sim.frames", 200.0, "frames", "exact", ""});
    // Shard c lacks ip.gpu.util (different config builds fewer IPs).
    c.stats.push_back({"sim.frames", 300.0, "frames", "exact", ""});

    const auto agg = aggregateStats({&a, &b, &c});
    ASSERT_EQ(agg.size(), 2u);
    const StatAggregate &f = agg.at("sim.frames");
    EXPECT_EQ(f.count, 3u);
    EXPECT_DOUBLE_EQ(f.min, 100.0);
    EXPECT_DOUBLE_EQ(f.max, 300.0);
    EXPECT_DOUBLE_EQ(f.mean, 200.0);
    EXPECT_DOUBLE_EQ(f.p50, 200.0);
    EXPECT_EQ(f.unit, "frames");
    // The sparse path aggregates over contributors only.
    EXPECT_EQ(agg.at("ip.gpu.util").count, 1u);
    EXPECT_DOUBLE_EQ(agg.at("ip.gpu.util").mean, 0.5);

    EXPECT_TRUE(aggregateStats({}).empty());
}

TEST(StatsMerge, JsonWriterEmitsEveryPath)
{
    StatsFile a;
    a.stats.push_back({"x.y", 1.0, "u", "exact", ""});
    std::ostringstream os;
    writeAggregateJson(os, aggregateStats({&a}));
    EXPECT_NE(os.str().find("\"x.y\""), std::string::npos);
    EXPECT_NE(os.str().find("\"count\": 1"), std::string::npos);
}

// ---------------------------------------------------------------
// Whole-fleet runs (thread workers; process workers are exercised
// by the CI smoke script, which needs the installed binaries).
// ---------------------------------------------------------------

JobSpec
threadSpec(double seconds)
{
    JobSpec spec;
    spec.name = "unit";
    spec.seconds = seconds;
    spec.audit = "periodic:1";
    spec.fleet.workers = 2;
    spec.fleet.maxAttempts = 2;
    spec.fleet.backoffBaseMs = 1.0;
    spec.fleet.backoffCapMs = 2.0;
    spec.fleet.heartbeatDeadlineMs = 0.0; // no watchdog in units
    spec.fleet.heartbeatIntervalMs = 1.0;
    spec.fleet.checkpointEveryMs = 20.0;
    return spec;
}

TEST_F(FleetTest, ThreadFleetShardMatchesDirectRunBitForBit)
{
    JobSpec spec = threadSpec(0.05);
    spec.jobs = {job("vip", "A1", 1), job("baseline", "A1", 1)};

    FleetOptions opt;
    opt.outDir = path("out");
    opt.mode = WorkerMode::Thread;
    opt.verbose = false;
    FleetSupervisor sup(spec, opt);
    const FleetOutcome out = sup.run();
    EXPECT_EQ(out.exitCode(), 0);
    EXPECT_EQ(out.done, 2u);
    EXPECT_EQ(out.failed, 0u);
    EXPECT_TRUE(fs::exists(out.reportPath));

    // Mirror the worker's exact configuration in this process; the
    // shard's stats dump must be byte-identical.
    SocConfig cfg;
    cfg.simSeconds = 0.05;
    cfg.seed = 1;
    cfg.system = SystemConfig::VIP;
    cfg.audit = AuditConfig::parse("periodic:1");
    cfg.metrics.out = path("mirror.csv");
    cfg.metrics.intervalMs = 1.0;
    cfg.statsOut = path("mirror-stats.json");
    cfg.postmortemDir = path("mirror-pm");
    cfg.checkpointEveryMs = 20.0;
    Simulation sim(cfg, WorkloadCatalog::single(1));
    sim.run();
    std::ostringstream want;
    sim.writeStatsJson(want);

    const std::string got = readFile(
        shardPaths(opt.outDir, "vip-A1-s1").statsJson);
    EXPECT_EQ(got, want.str());
}

TEST_F(FleetTest, FailingJobsDegradeGracefullyIntoTheReport)
{
    // /bin/false crashes every attempt: the sweep must still finish,
    // exhaust the attempt cap, and report the failures -- never abort.
    JobSpec spec = threadSpec(0.05);
    spec.jobs = {job("vip", "A1", 1), job("vip", "A1", 2)};

    FleetOptions opt;
    opt.outDir = path("out");
    opt.mode = WorkerMode::Process;
    opt.vipSimPath = "/bin/false";
    opt.verbose = false;
    FleetSupervisor sup(spec, opt);
    const FleetOutcome out = sup.run();

    EXPECT_EQ(out.exitCode(), 1); // completed *with* failures
    EXPECT_EQ(out.done, 0u);
    EXPECT_EQ(out.failed, 2u);
    EXPECT_EQ(out.retries, 2u); // one retry each before the cap
    ASSERT_EQ(out.jobs.size(), 2u);
    for (const JobProgress &p : out.jobs) {
        EXPECT_EQ(p.state, JobState::Failed);
        EXPECT_EQ(p.attempts, 2);
        EXPECT_EQ(p.lastError, "exit code 1");
        ASSERT_EQ(p.history.size(), 2u);
    }

    const std::string report = readFile(out.reportPath);
    EXPECT_NE(report.find("\"vip-fleet-report\""), std::string::npos);
    EXPECT_NE(report.find("\"failed\": 2"), std::string::npos);
    EXPECT_NE(report.find("\"exit code 1\""), std::string::npos);
}

TEST_F(FleetTest, StopFlagInterruptsTheSweepButStillWritesTheReport)
{
    JobSpec spec = threadSpec(0.05);
    spec.jobs = {job("vip", "A1", 1)};

    std::atomic<int> stop{2}; // as if SIGINT already arrived
    FleetOptions opt;
    opt.outDir = path("out");
    opt.mode = WorkerMode::Thread;
    opt.stopFlag = &stop;
    opt.verbose = false;
    FleetSupervisor sup(spec, opt);
    const FleetOutcome out = sup.run();
    EXPECT_TRUE(out.interrupted);
    EXPECT_EQ(out.exitCode(), 2);
    EXPECT_EQ(out.done, 0u);
    ASSERT_EQ(out.jobs.size(), 1u);
    EXPECT_EQ(out.jobs[0].state, JobState::Pending); // never started
    EXPECT_TRUE(fs::exists(out.reportPath));
    EXPECT_NE(readFile(out.reportPath).find("\"interrupted\": true"),
              std::string::npos);
}

TEST_F(FleetTest, MissingWorkerBinaryIsASetupError)
{
    JobSpec spec = threadSpec(0.05);
    spec.jobs = {job("vip", "A1", 1)};
    FleetOptions opt;
    opt.outDir = path("out");
    opt.mode = WorkerMode::Process;
    opt.vipSimPath = path("no-such-binary");
    opt.verbose = false;
    FleetSupervisor sup(spec, opt);
    EXPECT_THROW(sup.run(), SimFatal);
}

// ---------------------------------------------------------------
// Whole-fleet robustness: quarantine, reassignment, terminal death
// (thread transports under deterministic fault injection — no
// processes, no network).
// ---------------------------------------------------------------

HostSpec
threadHost(const std::string &name, int slots,
           const std::string &fault)
{
    HostSpec h;
    h.name = name;
    h.transport = "thread";
    h.slots = slots;
    h.faultSpec = fault;
    return h;
}

TEST_F(FleetTest, QuarantinedHostRecoversThroughAProbe)
{
    JobSpec spec = threadSpec(0.05);
    // Two jobs, one slot: the second job can only start after the
    // quarantined host is probed back to health, so the sweep cannot
    // finish unless quarantine -> probe -> re-admission works.
    spec.jobs = {job("vip", "A1", 1), job("vip", "A1", 2)};
    spec.fleet.quarantineAfter = 1;
    spec.fleet.probeIntervalMs = 2.0;
    spec.fleet.maxProbes = 50;
    spec.fleet.maxQuarantines = 50;

    FleetOptions opt;
    opt.outDir = path("out");
    opt.mode = WorkerMode::Thread;
    opt.verbose = false;
    opt.pollMs = 2.0;
    // Ops 1..3 after the launch fail: the first poll quarantines the
    // host, a probe inside the window fails, a later probe succeeds
    // and re-admits it; the first attempt keeps running throughout.
    opt.hosts = {threadHost("flaky", 1, "partition@1+3")};
    FleetSupervisor sup(spec, opt);
    const FleetOutcome out = sup.run();

    EXPECT_EQ(out.exitCode(), 0);
    EXPECT_EQ(out.done, 2u);
    EXPECT_GE(out.hostsQuarantined, 1);
    EXPECT_EQ(out.hostsDead, 0);
    ASSERT_EQ(out.hosts.size(), 1u);
    EXPECT_EQ(out.hosts[0].state, "healthy");
    EXPECT_GE(out.hosts[0].quarantines, 1);
    EXPECT_TRUE(out.hosts[0].faulty);

    const std::string report = readFile(out.reportPath);
    EXPECT_NE(report.find("\"quarantined_hosts\": [\"flaky\"]"),
              std::string::npos);
}

TEST_F(FleetTest, ExpiredLeaseMovesTheJobToASurvivingHost)
{
    JobSpec spec = threadSpec(0.05);
    spec.jobs = {job("vip", "A1", 1)};
    spec.fleet.maxAttempts = 3;
    spec.fleet.leaseMs = 40.0;
    spec.fleet.quarantineAfter = 1000; // isolate lease behavior
    spec.fleet.fetchRetries = 1;

    FleetOptions opt;
    opt.outDir = path("out");
    opt.mode = WorkerMode::Thread;
    opt.verbose = false;
    opt.pollMs = 2.0;
    opt.zombieGraceMs = 50.0;
    // Host "dark" answers the launch, then every op fails forever:
    // no liveness evidence ever arrives, the lease expires, and the
    // retry must land on "good".  The zombie's artifacts are
    // unfetchable and get discarded.
    opt.hosts = {threadHost("dark", 1, "partition@1+100000"),
                 threadHost("good", 1, "")};
    FleetSupervisor sup(spec, opt);
    const FleetOutcome out = sup.run();

    EXPECT_EQ(out.exitCode(), 0);
    EXPECT_EQ(out.done, 1u);
    EXPECT_EQ(out.leaseExpiries, 1);
    ASSERT_EQ(out.jobs.size(), 1u);
    EXPECT_EQ(out.jobs[0].state, JobState::Done);
    EXPECT_EQ(out.jobs[0].host, "good");
    EXPECT_EQ(out.jobs[0].leaseExpiries, 1);
    EXPECT_NE(out.jobs[0].history.back().find("lease expired"),
              std::string::npos);

    const std::string report = readFile(out.reportPath);
    EXPECT_NE(report.find("\"reassigned_jobs\": [\"vip-A1-s1\"]"),
              std::string::npos);
    EXPECT_NE(report.find("\"lease_expiries\": 1"),
              std::string::npos);
}

TEST_F(FleetTest, AllHostsDeadIsTerminalButStillReports)
{
    JobSpec spec = threadSpec(0.05);
    spec.jobs = {job("vip", "A1", 1), job("vip", "A1", 2)};
    spec.fleet.quarantineAfter = 1;
    spec.fleet.probeIntervalMs = 1.0;
    spec.fleet.maxProbes = 1;
    spec.fleet.maxQuarantines = 1;

    FleetOptions opt;
    opt.outDir = path("out");
    opt.mode = WorkerMode::Thread;
    opt.verbose = false;
    opt.pollMs = 2.0;
    // The host dies on its very first op: launches fail, the one
    // re-admission probe fails, and the sweep has nowhere left to
    // run — the one terminal error, reported, exit code 2.
    opt.hosts = {threadHost("doomed", 2, "die@0")};
    FleetSupervisor sup(spec, opt);
    const FleetOutcome out = sup.run();

    EXPECT_EQ(out.exitCode(), 2);
    EXPECT_FALSE(out.fatal.empty());
    EXPECT_EQ(out.done, 0u);
    EXPECT_EQ(out.failed, 2u);
    EXPECT_EQ(out.hostsDead, 1);
    ASSERT_EQ(out.hosts.size(), 1u);
    EXPECT_EQ(out.hosts[0].state, "dead");
    for (const JobProgress &p : out.jobs) {
        EXPECT_EQ(p.state, JobState::Failed);
        EXPECT_NE(p.lastError.find("all hosts dead"),
                  std::string::npos);
    }
    const std::string report = readFile(out.reportPath);
    EXPECT_NE(report.find("\"fatal\""), std::string::npos);
    EXPECT_NE(report.find("\"hosts_dead\": 1"), std::string::npos);
}

TEST_F(FleetTest, MultiHostSweepSpreadsWorkAndMergesEveryShard)
{
    JobSpec spec = threadSpec(0.05);
    spec.jobs = {job("vip", "A1", 1), job("vip", "A1", 2),
                 job("baseline", "A1", 1), job("baseline", "A1", 2)};

    FleetOptions opt;
    opt.outDir = path("out");
    opt.mode = WorkerMode::Thread;
    opt.verbose = false;
    opt.hosts = {threadHost("h1", 2, ""), threadHost("h2", 2, "")};
    FleetSupervisor sup(spec, opt);
    const FleetOutcome out = sup.run();

    EXPECT_EQ(out.exitCode(), 0);
    EXPECT_EQ(out.done, 4u);
    std::size_t perHost = 0;
    for (const HostReport &h : out.hosts)
        perHost += h.jobsDone;
    EXPECT_EQ(perHost, 4u);
    for (const JobProgress &p : out.jobs)
        EXPECT_TRUE(fs::exists(
            shardPaths(opt.outDir, p.job.id).statsJson));
    // The standalone aggregate document rides along with the report.
    const std::string agg = readFile(path("out/aggregate.json"));
    EXPECT_NE(agg.find("\"vip-fleet-aggregate\""), std::string::npos);
    EXPECT_NE(agg.find("\"shards\": 4"), std::string::npos);
}

} // namespace
} // namespace fleet
} // namespace vip
