/**
 * @file
 * Shared fixtures/helpers for the unit tests: a minimal platform
 * (System + EnergyLedger + MemoryController + SystemAgent) that IP and
 * driver tests can build on.
 */

#ifndef VIP_TESTS_TEST_UTIL_HH
#define VIP_TESTS_TEST_UTIL_HH

#include <gtest/gtest.h>

#include <memory>

#include "mem/memory_controller.hh"
#include "power/energy_account.hh"
#include "sa/system_agent.hh"
#include "sim/system.hh"

namespace vip
{
namespace test
{

/** A bare platform skeleton for component tests. */
class PlatformFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        buildPlatform(/*ideal_memory=*/false);
    }

    /**
     * The default DRAM configuration for unit tests: most tests
     * assert exact timings, so the LPDDR low-power state machine
     * (exit penalties, row-state loss on self-refresh) is off unless
     * a test passes its own DramConfig with it enabled.
     */
    static DramConfig
    testDram()
    {
        DramConfig d;
        d.enableLowPower = false;
        return d;
    }

    /** (Re)build the platform; call early in a test to customize. */
    void
    buildPlatform(bool ideal_memory,
                  DramConfig dram = testDram(),
                  SaConfig sa_cfg = SaConfig{})
    {
        sa.reset();
        mem.reset();
        sys = std::make_unique<System>(42);
        ledger = std::make_unique<EnergyLedger>();
        dram.ideal = ideal_memory;
        mem = std::make_unique<MemoryController>(*sys, "t.mem", dram,
                                                 *ledger);
        sa = std::make_unique<SystemAgent>(*sys, "t.sa", sa_cfg, *mem,
                                           *ledger);
    }

    /**
     * Run the event loop for @p duration simulated time from now.
     * Periodic monitors (the DRAM bandwidth sampler) re-arm
     * themselves forever, so "run until the queue drains" would never
     * return; one simulated second comfortably completes everything a
     * unit test issues.
     */
    Tick
    run(Tick duration = fromSec(1))
    {
        return sys->run(sys->curTick() + duration);
    }

    std::unique_ptr<System> sys;
    std::unique_ptr<EnergyLedger> ledger;
    std::unique_ptr<MemoryController> mem;
    std::unique_ptr<SystemAgent> sa;
};

} // namespace test
} // namespace vip

#endif // VIP_TESTS_TEST_UTIL_HH
