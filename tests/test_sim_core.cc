/**
 * @file
 * Unit tests for System / SimObject / ClockDomain / logging / types.
 */

#include <gtest/gtest.h>

#include "sim/clocked.hh"
#include "sim/logging.hh"
#include "sim/system.hh"
#include "sim/types.hh"

namespace vip
{
namespace
{

TEST(Types, UnitConversionsRoundTrip)
{
    EXPECT_EQ(oneSec, 1'000'000'000'000ull);
    EXPECT_EQ(fromNs(12), 12'000ull);
    EXPECT_EQ(fromUs(1.5), 1'500'000ull);
    EXPECT_EQ(fromMs(16.66), Tick(16.66 * 1e9));
    EXPECT_DOUBLE_EQ(toSec(oneSec), 1.0);
    EXPECT_DOUBLE_EQ(toMs(fromMs(7.0)), 7.0);
    EXPECT_DOUBLE_EQ(toNs(fromNs(3.0)), 3.0);
}

TEST(Types, ByteLiterals)
{
    EXPECT_EQ(2_KiB, 2048u);
    EXPECT_EQ(1_MiB, 1048576u);
    EXPECT_EQ(1_GiB, 1073741824u);
}

TEST(Types, FrequencyToPeriod)
{
    EXPECT_EQ(periodFromFreq(1e9), 1000u);      // 1 GHz -> 1 ns
    EXPECT_EQ(periodFromFreq(1.3e9), 769u);     // truncated ps
}

TEST(Logging, PanicAndFatalThrowDistinctTypes)
{
    EXPECT_THROW(panic("bug ", 42), SimPanic);
    EXPECT_THROW(fatal("bad config ", "x"), SimFatal);
}

TEST(Logging, AssertMacro)
{
    EXPECT_NO_THROW(vip_assert(1 + 1 == 2, "fine"));
    EXPECT_THROW(vip_assert(false, "nope"), SimPanic);
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    logging::setVerbosity(0);
    EXPECT_NO_THROW(warn("w"));
    EXPECT_NO_THROW(inform("i"));
    logging::setVerbosity(1);
}

class Probe : public SimObject
{
  public:
    using SimObject::SimObject;
    int startups = 0;
    int finalizes = 0;
    void startup() override { ++startups; }
    void finalize() override { ++finalizes; }
};

TEST(System, RegistryFindsObjectsByName)
{
    System sys;
    Probe a(sys, "soc.a");
    Probe b(sys, "soc.b");
    EXPECT_EQ(sys.find("soc.a"), &a);
    EXPECT_EQ(sys.find("soc.b"), &b);
    EXPECT_EQ(sys.find("soc.c"), nullptr);
    EXPECT_EQ(sys.objects().size(), 2u);
}

TEST(System, DuplicateNameIsFatal)
{
    System sys;
    Probe a(sys, "soc.dup");
    EXPECT_THROW(Probe(sys, "soc.dup"), SimFatal);
}

TEST(System, UnregistersOnDestruction)
{
    System sys;
    {
        Probe a(sys, "soc.tmp");
        EXPECT_NE(sys.find("soc.tmp"), nullptr);
    }
    EXPECT_EQ(sys.find("soc.tmp"), nullptr);
}

TEST(System, RunCallsStartupOnceAndFinalizeEachRun)
{
    System sys;
    Probe a(sys, "soc.p");
    sys.run(100);
    sys.run(200);
    EXPECT_EQ(a.startups, 1);
    EXPECT_EQ(a.finalizes, 2);
    EXPECT_EQ(sys.curTick(), 200u);
}

TEST(SimObject, SchedulesOnSystemQueue)
{
    System sys;
    Probe a(sys, "soc.p");
    Tick seen = 0;
    a.scheduleIn(fromNs(5), [&] { seen = a.curTick(); });
    sys.run(fromNs(10));
    EXPECT_EQ(seen, fromNs(5));
}

TEST(ClockDomain, CycleTickConversions)
{
    ClockDomain clk(1e9); // 1 GHz
    EXPECT_EQ(clk.period(), 1000u);
    EXPECT_EQ(clk.cyclesToTicks(7), 7000u);
    EXPECT_EQ(clk.ticksToCycles(7999), 7u);
}

TEST(ClockDomain, RejectsNonPositiveFrequency)
{
    EXPECT_THROW(ClockDomain(0.0), SimPanic);
}

class ClockedProbe : public ClockedObject
{
  public:
    using ClockedObject::ClockedObject;
};

TEST(ClockedObject, StreamTimeRoundsUpToCycles)
{
    System sys;
    ClockedProbe c(sys, "soc.c", ClockDomain(1e9));
    // 10 bytes at 4 B/cycle -> ceil(2.5) = 3 cycles = 3000 ticks.
    EXPECT_EQ(c.streamTime(10, 4.0), 3000u);
    // Exact multiples don't round up.
    EXPECT_EQ(c.streamTime(8, 4.0), 2000u);
    // Zero bytes still take no time.
    EXPECT_EQ(c.streamTime(0, 4.0), 0u);
}

} // namespace
} // namespace vip
