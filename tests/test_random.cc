/**
 * @file
 * Unit tests for the deterministic RNG and empirical distributions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/audit.hh"
#include "sim/random.hh"

namespace vip
{
namespace
{

TEST(Random, DeterministicForSameSeed)
{
    Random a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Random, DifferentSeedsDiverge)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next64() == b.next64() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Random, UniformInUnitInterval)
{
    Random r(3);
    double lo = 1.0, hi = 0.0, sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        lo = std::min(lo, u);
        hi = std::max(hi, u);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
    EXPECT_LT(lo, 0.01);
    EXPECT_GT(hi, 0.99);
}

TEST(Random, UniformRange)
{
    Random r(4);
    for (int i = 0; i < 1000; ++i) {
        double v = r.uniform(5.0, 9.0);
        ASSERT_GE(v, 5.0);
        ASSERT_LT(v, 9.0);
    }
}

TEST(Random, UniformIntInclusiveBounds)
{
    Random r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        auto v = r.uniformInt(3, 7);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 7u);
        saw_lo |= v == 3;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, ExponentialHasRequestedMean)
{
    Random r(6);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Random, NormalMoments)
{
    Random r(7);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        double v = r.normal(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Random, ChanceProbability)
{
    Random r(8);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Random, StateRoundTripResumesStream)
{
    // Saving and restoring the raw engine state must resume the
    // stream exactly (the fault injector digests its RNG state, so
    // any drift here would show up as a digest divergence).
    Random a(42);
    for (int i = 0; i < 17; ++i)
        a.next64();
    const auto snap = a.state();

    Random b(999);          // any seed: setState overrides it
    b.setState(snap);
    Random c(42);
    for (int i = 0; i < 17; ++i)
        c.next64();

    for (int i = 0; i < 100; ++i) {
        auto expect = c.next64();
        EXPECT_EQ(a.next64(), expect);
        EXPECT_EQ(b.next64(), expect);
    }
}

TEST(Random, DigestOfStreamStableAcrossReseedRoundTrip)
{
    // Digesting (state, draw) pairs must be reproducible when the
    // engine is snapshotted and restored mid-stream.
    auto digestRun = [](Random &r, int n) {
        StateDigest d;
        for (int i = 0; i < n; ++i) {
            d.add(r.state());
            d.add(r.next64());
        }
        return d.value();
    };

    Random a(11);
    auto first = digestRun(a, 50);
    const auto snap = a.state();
    auto second = digestRun(a, 50);

    Random b(11);
    EXPECT_EQ(digestRun(b, 50), first);
    b.setState(snap);
    EXPECT_EQ(digestRun(b, 50), second);
}

TEST(EmpiricalDistribution, RequiresPoints)
{
    EmpiricalDistribution d;
    EXPECT_TRUE(d.empty());
    EXPECT_THROW(d.setPoints({}), SimPanic);
}

TEST(EmpiricalDistribution, RejectsNegativeWeight)
{
    EmpiricalDistribution d;
    EXPECT_THROW(d.setPoints({{1.0, -1.0}}), SimPanic);
}

TEST(EmpiricalDistribution, SamplesWithinSupport)
{
    EmpiricalDistribution d({{1.0, 1.0}, {2.0, 2.0}, {4.0, 1.0}});
    Random r(9);
    for (int i = 0; i < 2000; ++i) {
        double v = d.sample(r);
        ASSERT_GE(v, 0.9 * 1.0); // first bin interpolates from 0.9*v
        ASSERT_LE(v, 4.0);
    }
}

TEST(EmpiricalDistribution, WeightedMean)
{
    EmpiricalDistribution d({{2.0, 1.0}, {6.0, 3.0}});
    EXPECT_DOUBLE_EQ(d.mean(), (2.0 + 18.0) / 4.0);
}

TEST(EmpiricalDistribution, HeavyBinDominatesSampling)
{
    EmpiricalDistribution d({{1.0, 99.0}, {100.0, 1.0}});
    Random r(10);
    int low = 0;
    for (int i = 0; i < 2000; ++i)
        low += d.sample(r) < 50.0 ? 1 : 0;
    EXPECT_GT(low, 1900);
}

} // namespace
} // namespace vip
