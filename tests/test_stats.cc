/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/latency.hh"
#include "stats/stats.hh"

namespace vip
{
namespace stats
{
namespace
{

TEST(Scalar, AccumulatesAndResets)
{
    Group g("t");
    Scalar s(g, "s", "a scalar");
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.set(10.0);
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stat, NameIsPrefixedWithGroup)
{
    Group g("soc.mem");
    Scalar s(g, "reads", "x");
    EXPECT_EQ(s.name(), "soc.mem.reads");
    EXPECT_EQ(g.all().size(), 1u);
}

TEST(TimeWeighted, ExactPiecewiseAverage)
{
    Group g("t");
    TimeWeighted w(g, "u", "util");
    w.set(1.0, 0);     // 1.0 from 0
    w.set(0.0, 100);   // 0.0 from 100
    w.close(400);      // -> avg = (1*100 + 0*300)/400
    EXPECT_DOUBLE_EQ(w.average(), 0.25);
    EXPECT_DOUBLE_EQ(w.timeAbove(), 100.0);
}

TEST(TimeWeighted, CurrentValueSurvivesReset)
{
    Group g("t");
    TimeWeighted w(g, "u", "util");
    w.set(2.0, 0);
    w.close(10);
    w.reset();
    EXPECT_DOUBLE_EQ(w.current(), 2.0);
}

TEST(TimeWeighted, TimeBackwardsPanics)
{
    Group g("t");
    TimeWeighted w(g, "u", "util");
    w.set(1.0, 100);
    EXPECT_THROW(w.set(2.0, 50), SimPanic);
}

TEST(Accumulator, MomentsAndExtremes)
{
    Group g("t");
    Accumulator a(g, "lat", "latency");
    for (double v : {2.0, 4.0, 6.0, 8.0})
        a.sample(v);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 8.0);
    EXPECT_DOUBLE_EQ(a.sum(), 20.0);
    EXPECT_NEAR(a.stddev(), std::sqrt(5.0), 1e-9);
}

TEST(Accumulator, EmptyIsZero)
{
    Group g("t");
    Accumulator a(g, "lat", "latency");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
}

TEST(Accumulator, ConstantInputsHaveZeroStddev)
{
    // The naive E[x^2]-E[x]^2 form reports nonzero stddev here from
    // catastrophic cancellation; Welford's update must not.
    Group g("t");
    Accumulator a(g, "lat", "latency");
    for (int i = 0; i < 1000; ++i)
        a.sample(1e9 + 0.1);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(a.mean(), 1e9 + 0.1);
}

TEST(Accumulator, VarianceSurvivesLargeOffset)
{
    // Small spread on a huge mean: the double sum-of-squares form
    // loses all variance bits (1e18 + 1 == 1e18); Welford keeps them.
    Group g("t");
    Accumulator a(g, "lat", "latency");
    for (double v : {1e9, 1e9 + 1.0, 1e9 + 2.0})
        a.sample(v);
    EXPECT_NEAR(a.stddev(), std::sqrt(2.0 / 3.0), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), 1e9);
    EXPECT_DOUBLE_EQ(a.max(), 1e9 + 2.0);
}

TEST(Accumulator, SingleSampleStddevIsZero)
{
    Group g("t");
    Accumulator a(g, "lat", "latency");
    a.sample(42.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(a.mean(), 42.0);
}

TEST(TimeWeighted, ZeroElapsedReportsCurrent)
{
    // close() at the same tick as set(): no time has passed, so the
    // average degrades to the only value ever seen, not 0/0.
    Group g("t");
    TimeWeighted w(g, "u", "util");
    w.set(3.0, 0);
    w.close(0);
    EXPECT_DOUBLE_EQ(w.average(), 3.0);
    EXPECT_DOUBLE_EQ(w.timeAbove(), 0.0);
}

TEST(Histogram, BinPlacementAndFractions)
{
    Group g("t");
    Histogram h(g, "h", "hist", 0.0, 100.0, 10);
    h.sample(5.0);    // bin 0
    h.sample(15.0);   // bin 1
    h.sample(15.0);   // bin 1
    h.sample(99.0);   // bin 9
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 2u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_DOUBLE_EQ(h.binFraction(1), 0.5);
    EXPECT_DOUBLE_EQ(h.binLo(1), 10.0);
    EXPECT_DOUBLE_EQ(h.binHi(1), 20.0);
}

TEST(Histogram, ClampsOutOfRangeSamples)
{
    Group g("t");
    Histogram h(g, "h", "hist", 0.0, 10.0, 5);
    h.sample(-5.0);
    h.sample(50.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
}

TEST(Histogram, RangeEdgesLandInEndBins)
{
    // Exactly lo goes to the first bin, exactly hi to the last; the
    // bin arithmetic must not index one past the end at v == hi.
    Group g("t");
    Histogram h(g, "h", "hist", 0.0, 10.0, 5);
    h.sample(0.0);
    h.sample(10.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.total(), 2u);
}

TEST(LogHistogram, EmptyPercentilesAreZero)
{
    LogHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50.0), Tick{0});
    EXPECT_EQ(h.percentile(99.0), Tick{0});
    EXPECT_EQ(h.min(), Tick{0});
    EXPECT_EQ(h.max(), Tick{0});
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LogHistogram, PercentilesBracketSamples)
{
    LogHistogram h;
    for (Tick t = 1; t <= 100; ++t)
        h.sample(t * 1000);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.min(), Tick{1000});
    EXPECT_EQ(h.max(), Tick{100000});
    // Log-linear buckets: the percentile is a bucket midpoint, so it
    // is approximate but must stay within the sampled range and be
    // monotone in p.
    Tick p50 = h.percentile(50.0);
    Tick p99 = h.percentile(99.0);
    EXPECT_GE(p50, h.min());
    EXPECT_LE(p99, h.max() * 2);
    EXPECT_LE(p50, p99);
}

TEST(Histogram, WeightedSamples)
{
    Group g("t");
    Histogram h(g, "h", "hist", 0.0, 10.0, 2);
    h.sample(1.0, 7);
    EXPECT_EQ(h.total(), 7u);
    EXPECT_EQ(h.binCount(0), 7u);
}

TEST(Histogram, BadShapePanics)
{
    Group g("t");
    EXPECT_THROW(Histogram(g, "h", "x", 5.0, 5.0, 4), SimPanic);
    EXPECT_THROW(Histogram(g, "h2", "x", 0.0, 1.0, 0), SimPanic);
}

TEST(Group, PrintsAndResetsAll)
{
    Group g("soc");
    Scalar s(g, "a", "desc-a");
    Accumulator acc(g, "b", "desc-b");
    s += 3;
    acc.sample(2.0);

    std::ostringstream os;
    g.print(os);
    auto text = os.str();
    EXPECT_NE(text.find("soc.a"), std::string::npos);
    EXPECT_NE(text.find("desc-a"), std::string::npos);
    EXPECT_NE(text.find("soc.b.mean"), std::string::npos);

    g.resetAll();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_EQ(acc.count(), 0u);
}

} // namespace
} // namespace stats
} // namespace vip
