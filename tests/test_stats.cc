/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

namespace vip
{
namespace stats
{
namespace
{

TEST(Scalar, AccumulatesAndResets)
{
    Group g("t");
    Scalar s(g, "s", "a scalar");
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.set(10.0);
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stat, NameIsPrefixedWithGroup)
{
    Group g("soc.mem");
    Scalar s(g, "reads", "x");
    EXPECT_EQ(s.name(), "soc.mem.reads");
    EXPECT_EQ(g.all().size(), 1u);
}

TEST(TimeWeighted, ExactPiecewiseAverage)
{
    Group g("t");
    TimeWeighted w(g, "u", "util");
    w.set(1.0, 0);     // 1.0 from 0
    w.set(0.0, 100);   // 0.0 from 100
    w.close(400);      // -> avg = (1*100 + 0*300)/400
    EXPECT_DOUBLE_EQ(w.average(), 0.25);
    EXPECT_DOUBLE_EQ(w.timeAbove(), 100.0);
}

TEST(TimeWeighted, CurrentValueSurvivesReset)
{
    Group g("t");
    TimeWeighted w(g, "u", "util");
    w.set(2.0, 0);
    w.close(10);
    w.reset();
    EXPECT_DOUBLE_EQ(w.current(), 2.0);
}

TEST(TimeWeighted, TimeBackwardsPanics)
{
    Group g("t");
    TimeWeighted w(g, "u", "util");
    w.set(1.0, 100);
    EXPECT_THROW(w.set(2.0, 50), SimPanic);
}

TEST(Accumulator, MomentsAndExtremes)
{
    Group g("t");
    Accumulator a(g, "lat", "latency");
    for (double v : {2.0, 4.0, 6.0, 8.0})
        a.sample(v);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 8.0);
    EXPECT_DOUBLE_EQ(a.sum(), 20.0);
    EXPECT_NEAR(a.stddev(), std::sqrt(5.0), 1e-9);
}

TEST(Accumulator, EmptyIsZero)
{
    Group g("t");
    Accumulator a(g, "lat", "latency");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
}

TEST(Histogram, BinPlacementAndFractions)
{
    Group g("t");
    Histogram h(g, "h", "hist", 0.0, 100.0, 10);
    h.sample(5.0);    // bin 0
    h.sample(15.0);   // bin 1
    h.sample(15.0);   // bin 1
    h.sample(99.0);   // bin 9
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 2u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_DOUBLE_EQ(h.binFraction(1), 0.5);
    EXPECT_DOUBLE_EQ(h.binLo(1), 10.0);
    EXPECT_DOUBLE_EQ(h.binHi(1), 20.0);
}

TEST(Histogram, ClampsOutOfRangeSamples)
{
    Group g("t");
    Histogram h(g, "h", "hist", 0.0, 10.0, 5);
    h.sample(-5.0);
    h.sample(50.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
}

TEST(Histogram, WeightedSamples)
{
    Group g("t");
    Histogram h(g, "h", "hist", 0.0, 10.0, 2);
    h.sample(1.0, 7);
    EXPECT_EQ(h.total(), 7u);
    EXPECT_EQ(h.binCount(0), 7u);
}

TEST(Histogram, BadShapePanics)
{
    Group g("t");
    EXPECT_THROW(Histogram(g, "h", "x", 5.0, 5.0, 4), SimPanic);
    EXPECT_THROW(Histogram(g, "h2", "x", 0.0, 1.0, 0), SimPanic);
}

TEST(Group, PrintsAndResetsAll)
{
    Group g("soc");
    Scalar s(g, "a", "desc-a");
    Accumulator acc(g, "b", "desc-b");
    s += 3;
    acc.sample(2.0);

    std::ostringstream os;
    g.print(os);
    auto text = os.str();
    EXPECT_NE(text.find("soc.a"), std::string::npos);
    EXPECT_NE(text.find("desc-a"), std::string::npos);
    EXPECT_NE(text.find("soc.b.mean"), std::string::npos);

    g.resetAll();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_EQ(acc.count(), 0u);
}

} // namespace
} // namespace stats
} // namespace vip
