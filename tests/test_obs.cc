/**
 * @file
 * Tests for the execution-observability subsystem: tracer ring
 * semantics, trace JSON well-formedness and span nesting across all
 * configurations, same-seed trace determinism, histogram percentile
 * math, the periodic metrics sampler, frame lifecycles reconstructed
 * from spans alone, and the zero-perturbation guarantee (tracing on
 * vs off leaves the audit digest stream bit-identical).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "core/simulation.hh"
#include "obs/trace_check.hh"

namespace vip
{
namespace
{

SocConfig
tracedConfig(SystemConfig system)
{
    SocConfig cfg;
    cfg.system = system;
    cfg.simSeconds = 0.02;
    cfg.trace.out = "(buffer)";
    return cfg;
}

std::string
traceJson(Simulation &sim)
{
    std::ostringstream os;
    sim.tracer()->writeJson(os, {{"workload", "test"}});
    return os.str();
}

TEST(LogHistogramTest, ExactBelowSubBucketRange)
{
    LogHistogram h;
    for (Tick v = 0; v < 16; ++v)
        h.sample(v);
    EXPECT_EQ(h.count(), 16u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 15u);
    // Values below 2^kSubBits land in exact buckets.
    EXPECT_EQ(h.percentile(0.0), 0u);
    EXPECT_EQ(h.percentile(100.0), 15u);
}

TEST(LogHistogramTest, PercentilesWithinRelativeErrorBound)
{
    LogHistogram h;
    for (Tick v = 1; v <= 10000; ++v)
        h.sample(v);
    // Log-linear buckets bound relative error by 2^-kSubBits.
    const double tol = 1.0 / (1u << LogHistogram::kSubBits);
    EXPECT_NEAR(static_cast<double>(h.percentile(50.0)), 5000.0,
                5000.0 * tol);
    EXPECT_NEAR(static_cast<double>(h.percentile(95.0)), 9500.0,
                9500.0 * tol);
    EXPECT_NEAR(static_cast<double>(h.percentile(99.0)), 9900.0,
                9900.0 * tol);
    EXPECT_NEAR(h.mean(), 5000.5, 1.0);
}

TEST(LogHistogramTest, SingleSampleAllPercentilesAgree)
{
    LogHistogram h;
    h.sample(fromMs(7));
    for (double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
        EXPECT_NEAR(static_cast<double>(h.percentile(p)),
                    static_cast<double>(fromMs(7)),
                    static_cast<double>(fromMs(7))
                        / (1u << LogHistogram::kSubBits));
    }
}

TEST(TracerTest, RingDropsOldestBeyondCapacity)
{
    // Capacity is rounded up to whole blocks; fill past it.
    Tracer tr(kAllTraceCats, 1);
    const std::size_t cap = tr.capacity();
    auto trk = tr.intern("t");
    auto nm = tr.intern("n");
    for (std::size_t i = 0; i < cap + 100; ++i)
        tr.instant(TraceCat::Ip, trk, nm, i);
    EXPECT_EQ(tr.size(), cap);
    EXPECT_EQ(tr.dropped(), 100u);
    // Oldest-first iteration starts at the first surviving event.
    Tick expect = 100;
    tr.forEach([&](const TraceEvent &ev) { EXPECT_EQ(ev.ts, expect++); });
    EXPECT_EQ(expect, cap + 100);
}

TEST(TracerTest, CategoryFilteringAndInternStability)
{
    Tracer tr(static_cast<std::uint32_t>(TraceCat::Frame), 4096);
    EXPECT_TRUE(tr.enabled(TraceCat::Frame));
    EXPECT_FALSE(tr.enabled(TraceCat::Ip));
    EXPECT_EQ(tr.intern("alpha"), tr.intern("alpha"));
    EXPECT_NE(tr.intern("alpha"), tr.intern("beta"));
    EXPECT_NE(tr.intern("alpha"), 0u);
}

TEST(TraceCatTest, ParseRoundTrips)
{
    EXPECT_EQ(parseTraceCats("all"), kAllTraceCats);
    EXPECT_EQ(parseTraceCats(""), kAllTraceCats);
    std::uint32_t m = parseTraceCats("ip,frame,fault");
    EXPECT_EQ(m, static_cast<std::uint32_t>(TraceCat::Ip)
                     | static_cast<std::uint32_t>(TraceCat::Frame)
                     | static_cast<std::uint32_t>(TraceCat::Fault));
    EXPECT_EQ(parseTraceCats(traceCatsToString(m)), m);
    EXPECT_THROW(parseTraceCats("bogus"), SimFatal);
}

/** Trace JSON parses and every span/async pairing is well-formed. */
class TraceWellFormed : public ::testing::TestWithParam<SystemConfig>
{
};

TEST_P(TraceWellFormed, SpansNestAndPairAcrossChain)
{
    Simulation sim(tracedConfig(GetParam()),
                   WorkloadCatalog::byIndex(4));
    sim.run();
    ASSERT_NE(sim.tracer(), nullptr);
    EXPECT_GT(sim.tracer()->size(), 0u);

    std::istringstream in(traceJson(sim));
    TraceFile f = parseTraceJson(in);
    EXPECT_EQ(f.droppedEvents, 0u);
    EXPECT_EQ(f.otherData.at("workload"), "test");
    EXPECT_FALSE(f.otherData.at("git").empty());

    auto r = checkTrace(f);
    EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors.front());
    EXPECT_EQ(r.events, f.events.size());
    EXPECT_GT(r.spans, 0u);
    // An engine busy/stall span may be cut off by the end of the
    // run; that is in-flight state, not a nesting violation.
    EXPECT_LE(r.openAtEof, f.threadNames.size());
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, TraceWellFormed,
                         ::testing::ValuesIn(kAllConfigs),
                         [](const auto &info) {
                             std::string n = systemConfigName(info.param);
                             for (char &c : n)
                                 if (!std::isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             return n;
                         });

TEST(TraceDeterminism, SameSeedSameTraceBytes)
{
    auto once = [] {
        Simulation sim(tracedConfig(SystemConfig::VIP),
                       WorkloadCatalog::byIndex(4));
        sim.run();
        return traceJson(sim);
    };
    std::string a = once();
    std::string b = once();
    EXPECT_GT(a.size(), 0u);
    EXPECT_EQ(a, b);
}

TEST(TraceFrameLifecycle, ReproducesRunStatsLatencyFromSpansAlone)
{
    SocConfig cfg = tracedConfig(SystemConfig::VIP);
    cfg.recordTrace = true;
    Simulation sim(cfg, WorkloadCatalog::byIndex(4));
    RunStats stats = sim.run();

    std::istringstream in(traceJson(sim));
    TraceFile f = parseTraceJson(in);
    auto frames = frameLifecycles(f);
    ASSERT_FALSE(frames.empty());

    // Every completed frame in the authoritative FrameTrace must be
    // reconstructible from the trace events with the exact same
    // end-to-end tick count the QoS clock measured.
    std::size_t matched = 0;
    for (const FrameEvent &ev : stats.trace.events()) {
        if (ev.completed == 0)
            continue;
        const FrameLifecycle *lc = nullptr;
        for (const auto &x : frames) {
            if (x.flow == static_cast<std::int64_t>(ev.flowId)
                && x.frame == static_cast<std::int64_t>(ev.frameId))
                lc = &x;
        }
        ASSERT_NE(lc, nullptr)
            << "frame " << ev.flowId << ":" << ev.frameId
            << " missing from trace";
        if (!lc->complete)
            continue;
        Tick start = std::max(ev.generated, ev.started);
        Tick e2e = ev.completed >= start ? ev.completed - start : 0;
        EXPECT_EQ(lc->endToEndTicks(), e2e)
            << "frame " << ev.flowId << ":" << ev.frameId;
        ++matched;
    }
    EXPECT_GT(matched, 0u);

    // Lifecycles carry per-stage marks from at least two distinct
    // chain stages (announce/done pairs threaded through the chain).
    std::size_t multiStage = 0;
    for (const auto &lc : frames) {
        std::set<std::string> stages;
        for (const auto &[tick, nm] : lc.stageMarks) {
            auto sep = nm.rfind(':');
            if (sep != std::string::npos)
                stages.insert(nm.substr(0, sep));
        }
        if (stages.size() >= 2)
            ++multiStage;
    }
    EXPECT_GT(multiStage, 0u);
}

TEST(LatencySummaryTest, RunStatsCarriesPerStageBreakdowns)
{
    SocConfig cfg;
    cfg.system = SystemConfig::VIP;
    cfg.simSeconds = 0.02;
    RunStats stats = Simulation::run(cfg, WorkloadCatalog::byIndex(4));

    EXPECT_GT(stats.latency.endToEnd.count, 0u);
    // Burst-scheduled frames can complete before their nominal
    // generation tick and clamp to zero, so only the upper end of the
    // distribution is guaranteed positive.
    EXPECT_GT(stats.latency.endToEnd.maxMs, 0.0);
    EXPECT_GE(stats.latency.endToEnd.p95Ms,
              stats.latency.endToEnd.p50Ms);
    EXPECT_GE(stats.latency.endToEnd.p99Ms,
              stats.latency.endToEnd.p95Ms);
    EXPECT_GE(stats.latency.endToEnd.maxMs,
              stats.latency.endToEnd.p99Ms);

    ASSERT_FALSE(stats.latency.stages.empty());
    for (const auto &st : stats.latency.stages) {
        EXPECT_FALSE(st.stage.empty());
        EXPECT_EQ(st.total.count, st.wait.count);
        EXPECT_EQ(st.total.count, st.compute.count);
        EXPECT_EQ(st.total.count, st.blocked.count);
        // wait + compute + blocked decompose total (mean identity
        // holds exactly; percentiles are per-histogram).
        EXPECT_NEAR(st.wait.meanMs + st.compute.meanMs
                        + st.blocked.meanMs,
                    st.total.meanMs, st.total.meanMs * 0.13 + 1e-9);
    }
}

TEST(MetricsSamplerTest, RowCountMatchesInterval)
{
    SocConfig cfg;
    cfg.system = SystemConfig::VIP;
    cfg.simSeconds = 0.02;
    cfg.metrics.out = "(buffer)";
    cfg.metrics.intervalMs = 1.0;
    Simulation sim(cfg, WorkloadCatalog::byIndex(4));
    sim.run();
    ASSERT_NE(sim.metrics(), nullptr);
    // 20 ms of simulated time at a 1 ms interval: first sample fires
    // one interval in, last at t=20ms.
    EXPECT_EQ(sim.metrics()->rows(), 20u);
    EXPECT_GT(sim.metrics()->probes(), 0u);
    EXPECT_EQ(sim.metrics()->interval(), fromMs(1.0));

    std::ostringstream os;
    sim.metrics()->writeCsv(os);
    std::string csv = os.str();
    // Provenance header plus one line per row plus the column header.
    std::size_t lines = 0;
    for (char c : csv)
        lines += c == '\n';
    EXPECT_GE(lines, sim.metrics()->rows() + 1);
    EXPECT_NE(csv.find("tick_ms"), std::string::npos);
}

TEST(MetricsSamplerTest, HalfMillisecondIntervalDoublesRows)
{
    SocConfig cfg;
    cfg.system = SystemConfig::VIP;
    cfg.simSeconds = 0.02;
    cfg.metrics.out = "(buffer)";
    cfg.metrics.intervalMs = 0.5;
    Simulation sim(cfg, WorkloadCatalog::byIndex(4));
    sim.run();
    ASSERT_NE(sim.metrics(), nullptr);
    EXPECT_EQ(sim.metrics()->rows(), 40u);
}

/**
 * The zero-perturbation guarantee: enabling the tracer must leave the
 * architectural state digests bit-identical, because it never
 * schedules events, consumes randomness, or contributes to any
 * component digest.  (The metrics sampler is excluded: it schedules
 * real sampling events, which is why it is only constructed when
 * --metrics-out is given.)
 */
TEST(TraceZeroPerturbation, DigestStreamIdenticalTracedVsUntraced)
{
    auto digests = [](bool traced) {
        SocConfig cfg;
        cfg.system = SystemConfig::VIP;
        cfg.simSeconds = 0.02;
        cfg.audit.mode = AuditMode::Periodic;
        cfg.audit.periodMs = 1.0;
        if (traced)
            cfg.trace.out = "(buffer)";
        Simulation sim(cfg, WorkloadCatalog::byIndex(4));
        sim.run();
        EXPECT_GT(sim.auditor().stream().records.size(), 0u);
        return sim.auditor().streamDigest();
    };
    EXPECT_EQ(digests(false), digests(true));
}

} // namespace
} // namespace vip
