/**
 * @file
 * Run-state isolation tests: the library keeps every piece of
 * mutable run state inside System/Simulation (the only process-wide
 * global is the logging verbosity, which is deliberate and atomic),
 * so multiple simulations in one process — alive at once, sequential,
 * or on concurrent threads — must produce digest streams and stats
 * bit-identical to the same runs executed alone.  This property is
 * what lets vip_fleet run thread-backed workers at all.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>

#include "core/simulation.hh"

namespace vip
{
namespace
{

SocConfig
cfgFor(SystemConfig sc, std::uint64_t seed)
{
    SocConfig cfg;
    cfg.system = sc;
    cfg.simSeconds = 0.05;
    cfg.seed = seed;
    cfg.audit.mode = AuditMode::Periodic;
    cfg.audit.periodMs = 1.0;
    return cfg;
}

/** Digest-stream hash + full stats dump of one finished run. */
struct Fingerprint
{
    std::uint64_t digest = 0;
    std::string stats;

    bool
    operator==(const Fingerprint &o) const
    {
        return digest == o.digest && stats == o.stats;
    }
};

Fingerprint
fingerprint(Simulation &sim)
{
    Fingerprint f;
    f.digest = sim.auditor().streamDigest();
    std::ostringstream os;
    sim.writeStatsJson(os);
    f.stats = os.str();
    return f;
}

/** Run one isolated simulation and fingerprint it. */
Fingerprint
soloRun(SystemConfig sc, std::uint64_t seed)
{
    Simulation sim(cfgFor(sc, seed), WorkloadCatalog::single(1));
    sim.run();
    return fingerprint(sim);
}

TEST(Isolation, TwoLiveInstancesMatchSoloRunsBitForBit)
{
    const Fingerprint wantA = soloRun(SystemConfig::VIP, 1);
    const Fingerprint wantB = soloRun(SystemConfig::Baseline, 2);
    ASSERT_NE(wantA.digest, 0u);
    ASSERT_NE(wantA.digest, wantB.digest);

    // Both instances alive at once, runs interleaved with the other
    // instance constructed: any hidden global (RNG, event ids, stat
    // registries, allocators) would skew one of the digest streams.
    Simulation a(cfgFor(SystemConfig::VIP, 1),
                 WorkloadCatalog::single(1));
    Simulation b(cfgFor(SystemConfig::Baseline, 2),
                 WorkloadCatalog::single(1));
    a.run();
    b.run();
    EXPECT_TRUE(fingerprint(a) == wantA);
    EXPECT_TRUE(fingerprint(b) == wantB);
}

TEST(Isolation, RepeatedRunsInOneProcessAreIdentical)
{
    const Fingerprint first = soloRun(SystemConfig::VIP, 1);
    const Fingerprint second = soloRun(SystemConfig::VIP, 1);
    EXPECT_TRUE(first == second);
}

TEST(Isolation, ConcurrentThreadsMatchSoloRunsBitForBit)
{
    const Fingerprint wantA = soloRun(SystemConfig::VIP, 1);
    const Fingerprint wantB = soloRun(SystemConfig::FrameBurst, 3);

    // The thread-mode fleet in miniature: two full platforms running
    // simultaneously on different threads.  Each must be oblivious to
    // the other.
    Fingerprint gotA, gotB;
    std::thread ta([&gotA] {
        Simulation sim(cfgFor(SystemConfig::VIP, 1),
                       WorkloadCatalog::single(1));
        sim.run();
        gotA = fingerprint(sim);
    });
    std::thread tb([&gotB] {
        Simulation sim(cfgFor(SystemConfig::FrameBurst, 3),
                       WorkloadCatalog::single(1));
        sim.run();
        gotB = fingerprint(sim);
    });
    ta.join();
    tb.join();
    EXPECT_TRUE(gotA == wantA);
    EXPECT_TRUE(gotB == wantB);
}

} // namespace
} // namespace vip
