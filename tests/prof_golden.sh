#!/bin/sh
# vip_prof golden-output test: the report for a checked-in prof.json
# fixture must match the checked-in expected text byte for byte.
# The fixture is a real W4/vip --prof capture; the point is that
# vip_prof's parsing, estimation math, sorting, and formatting stay
# deterministic, so any intentional output change shows up in review
# as a diff of the .expected file.
#
# Usage: tests/prof_golden.sh [build-dir] [work-dir]
set -eu

BUILD=${1:-build}
WORK=${2:-prof-golden-out}
SRCDIR=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
VIP_PROF="$BUILD/tools/vip_prof"

[ -x "$VIP_PROF" ] || { echo "missing binary: $VIP_PROF" >&2; exit 2; }
case "$VIP_PROF" in /*) ;; *) VIP_PROF="$(pwd)/$VIP_PROF";; esac

rm -rf "$WORK"
mkdir -p "$WORK"
# Run against a bare filename so the "profile :" header line is
# machine-independent.
cp "$SRCDIR/data/prof-golden.json" "$WORK/prof-golden.json"
cd "$WORK"
"$VIP_PROF" --top 5 prof-golden.json > got.txt
if ! diff -u "$SRCDIR/data/prof-golden.expected" got.txt; then
    echo "vip_prof output diverged from golden expectation" >&2
    exit 1
fi
echo "vip_prof golden output: PASS"
