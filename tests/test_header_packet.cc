/**
 * @file
 * Unit tests for the Fig 12 header packet layout.
 */

#include <gtest/gtest.h>

#include "core/header_packet.hh"
#include "sim/logging.hh"

namespace vip
{
namespace
{

TEST(HeaderPacket, FixedFieldBytesMatchFig12)
{
    // 32b IPs + 16b frame size + 4b rate + 4b burst + 2 x 32b addrs
    // = 120 bits = 15 bytes.
    EXPECT_EQ(HeaderPacket::fixedBytes(), 15u);
}

TEST(HeaderPacket, SizeGrowsByOneKbPerIp)
{
    HeaderPacket h;
    h.setIps({IpKind::VD, IpKind::DC});
    EXPECT_EQ(h.sizeBytes(), 15u + 2 * 1024u);
    h.setIps({IpKind::CAM, IpKind::VE, IpKind::NW});
    EXPECT_EQ(h.sizeBytes(), 15u + 3 * 1024u);
}

TEST(HeaderPacket, FourIpFlowIsAboutFourKb)
{
    // Section 5.4: "the longest app flow has about 4 IPs ... we
    // expect the header packet to be about 4 KB".
    HeaderPacket h;
    h.setIps({IpKind::VD, IpKind::GPU, IpKind::DC, IpKind::SND});
    EXPECT_NEAR(h.sizeBytes(), 4096.0, 64.0);
}

TEST(HeaderPacket, SerializeDeserializeRoundTrip)
{
    HeaderPacket h;
    h.setIps({IpKind::VD, IpKind::GPU, IpKind::DC});
    h.setFrameSizeKb(12288); // a 4K YUV frame
    h.setFrameRate(6);       // 60 FPS code
    h.setBurstSize(5);
    h.setSrcAddr(0xdeadb000);
    h.setDestAddr(0xbeef0000);

    auto bytes = h.serialize();
    EXPECT_EQ(bytes.size(), h.sizeBytes());
    HeaderPacket back = HeaderPacket::deserialize(bytes);
    EXPECT_TRUE(back == h);
    EXPECT_EQ(back.ips().size(), 3u);
    EXPECT_EQ(back.ips()[1], IpKind::GPU);
    EXPECT_EQ(back.frameSizeKb(), 12288u);
    EXPECT_EQ(back.burstSize(), 5u);
    EXPECT_EQ(back.srcAddr(), 0xdeadb000u);
}

TEST(HeaderPacket, EmptyChainRoundTrips)
{
    HeaderPacket h;
    auto bytes = h.serialize();
    EXPECT_EQ(bytes.size(), 15u);
    HeaderPacket back = HeaderPacket::deserialize(bytes);
    EXPECT_TRUE(back == h);
}

TEST(HeaderPacket, FieldLimitsAreEnforced)
{
    HeaderPacket h;
    EXPECT_THROW(h.setFrameSizeKb(1u << 16), SimFatal);
    EXPECT_THROW(h.setFrameRate(16), SimFatal);
    EXPECT_THROW(h.setBurstSize(16), SimFatal);
    EXPECT_NO_THROW(h.setBurstSize(15));
}

TEST(HeaderPacket, AtMostEightIps)
{
    HeaderPacket h;
    std::vector<IpKind> nine(9, IpKind::VD);
    EXPECT_THROW(h.setIps(nine), SimFatal);
    std::vector<IpKind> eight(8, IpKind::VD);
    EXPECT_NO_THROW(h.setIps(eight));
}

TEST(HeaderPacket, CpuIsNotEncodable)
{
    HeaderPacket h;
    EXPECT_THROW(h.setIps({IpKind::CPU, IpKind::DC}), SimFatal);
}

TEST(HeaderPacket, TruncatedBufferRejected)
{
    std::vector<std::uint8_t> junk(7, 0);
    EXPECT_THROW(HeaderPacket::deserialize(junk), SimFatal);
}

TEST(HeaderPacket, SizeMismatchRejected)
{
    HeaderPacket h;
    h.setIps({IpKind::VD});
    auto bytes = h.serialize();
    bytes.push_back(0); // stray byte
    EXPECT_THROW(HeaderPacket::deserialize(bytes), SimFatal);
}

TEST(HeaderPacket, HeaderIsNegligibleVsPayload)
{
    // The argument of Section 5.4: one header per burst is small
    // against the burst's frame payload.
    HeaderPacket h;
    h.setIps({IpKind::VD, IpKind::DC});
    double header = h.sizeBytes();
    double payload = 5.0 * 3840 * 2160 * 1.5; // 5-frame 4K burst
    EXPECT_LT(header / payload, 0.001);
}

} // namespace
} // namespace vip
