/**
 * @file
 * Tests for the application catalog (Table 1), workload catalog
 * (Table 2), flow specs, GOP model and user-input models (Figs 5/6).
 */

#include <gtest/gtest.h>

#include "app/application.hh"
#include "app/user_input.hh"
#include "app/workload.hh"

namespace vip
{
namespace
{

std::vector<IpKind>
stagesOf(const AppSpec &a, std::size_t flow)
{
    return a.flows.at(flow).stages;
}

TEST(Table1, A1Game1Flows)
{
    auto a = AppCatalog::byIndex(1);
    EXPECT_EQ(a.name, "Game-1");
    ASSERT_EQ(a.flows.size(), 2u);
    EXPECT_EQ(stagesOf(a, 0),
              (std::vector<IpKind>{IpKind::GPU, IpKind::DC}));
    EXPECT_EQ(stagesOf(a, 1),
              (std::vector<IpKind>{IpKind::AD, IpKind::SND}));
}

TEST(Table1, A2ArGameFlows)
{
    auto a = AppCatalog::byIndex(2);
    ASSERT_EQ(a.flows.size(), 4u);
    EXPECT_EQ(stagesOf(a, 0),
              (std::vector<IpKind>{IpKind::GPU, IpKind::DC}));
    EXPECT_EQ(stagesOf(a, 1),
              (std::vector<IpKind>{IpKind::CPU, IpKind::VE,
                                   IpKind::NW}));
    EXPECT_EQ(stagesOf(a, 3),
              (std::vector<IpKind>{IpKind::MIC, IpKind::AE,
                                   IpKind::NW}));
}

TEST(Table1, A4SkypeFlows)
{
    auto a = AppCatalog::byIndex(4);
    ASSERT_EQ(a.flows.size(), 4u);
    EXPECT_EQ(stagesOf(a, 0),
              (std::vector<IpKind>{IpKind::CPU, IpKind::VD,
                                   IpKind::DC}));
    EXPECT_EQ(stagesOf(a, 1),
              (std::vector<IpKind>{IpKind::CAM, IpKind::VE,
                                   IpKind::NW}));
    EXPECT_EQ(a.cls, AppClass::VideoEncode);
}

TEST(Table1, A5VideoPlayerUses4kPerTable3)
{
    auto a = AppCatalog::byIndex(5);
    EXPECT_EQ(stagesOf(a, 0),
              (std::vector<IpKind>{IpKind::CPU, IpKind::VD,
                                   IpKind::DC}));
    // Table 3: Vid.Frame 4K (3840x2160) at 60 FPS.
    EXPECT_EQ(a.flows[0].edgeBytes[1],
              std::uint64_t(3840) * 2160 * 3 / 2);
    EXPECT_DOUBLE_EQ(a.flows[0].fps, 60.0);
}

TEST(Table1, A6VideoRecordFlows)
{
    auto a = AppCatalog::byIndex(6);
    ASSERT_EQ(a.flows.size(), 3u);
    EXPECT_EQ(stagesOf(a, 0),
              (std::vector<IpKind>{IpKind::CAM, IpKind::IMG,
                                   IpKind::DC}));
    EXPECT_EQ(stagesOf(a, 1),
              (std::vector<IpKind>{IpKind::CAM, IpKind::VE,
                                   IpKind::MMC}));
    // Table 3: camera frame 2560x1620.
    EXPECT_EQ(a.flows[0].edgeBytes[0],
              std::uint64_t(2560) * 1620 * 3 / 2);
}

TEST(Table1, EveryAppValidates)
{
    for (int i = 1; i <= 7; ++i)
        EXPECT_NO_THROW(AppCatalog::byIndex(i).validate()) << "A" << i;
    EXPECT_THROW(AppCatalog::byIndex(8), SimFatal);
}

TEST(Table1, EveryFlowEndsInASink)
{
    for (int i = 1; i <= 7; ++i) {
        for (const auto &f : AppCatalog::byIndex(i).flows)
            EXPECT_TRUE(ipIsSink(f.hwStages().back())) << f.name;
    }
}

TEST(Table2, WorkloadComposition)
{
    auto w1 = WorkloadCatalog::byIndex(1);
    EXPECT_EQ(w1.apps.size(), 2u); // 2 video players
    auto w2 = WorkloadCatalog::byIndex(2);
    EXPECT_EQ(w2.apps.size(), 3u); // 1 HD + 2 video
    auto w4 = WorkloadCatalog::byIndex(4);
    EXPECT_EQ(w4.apps[0].name.substr(0, 5), "Skype");
    auto w6 = WorkloadCatalog::byIndex(6);
    EXPECT_EQ(w6.apps[0].cls, AppClass::Game);
    EXPECT_EQ(w6.apps[1].cls, AppClass::AudioOnly);
    EXPECT_EQ(WorkloadCatalog::all().size(), 8u);
    EXPECT_THROW(WorkloadCatalog::byIndex(9), SimFatal);
}

TEST(Table2, InstanceNamesAreUnique)
{
    for (const auto &w : WorkloadCatalog::all()) {
        std::set<std::string> names;
        for (const auto &a : w.apps) {
            for (const auto &f : a.flows)
                EXPECT_TRUE(names.insert(f.name).second)
                    << w.name << ": duplicate flow " << f.name;
        }
    }
}

TEST(FlowSpec, PeriodFromFps)
{
    FlowSpec f;
    f.fps = 60.0;
    EXPECT_EQ(f.period(), fromSec(1.0 / 60.0));
}

TEST(FlowSpec, HwStagesDropCpu)
{
    auto a = AppCatalog::byIndex(5);
    auto hw = a.flows[0].hwStages();
    ASSERT_EQ(hw.size(), 2u);
    EXPECT_EQ(hw[0], IpKind::VD);
}

TEST(FlowSpec, ValidationCatchesBadShapes)
{
    FlowSpec f;
    f.name = "bad";
    f.stages = {IpKind::VD, IpKind::DC};
    f.edgeBytes = {1024}; // wrong arity
    EXPECT_THROW(f.validate(), SimFatal);

    f.edgeBytes = {1024, 0}; // zero edge
    EXPECT_THROW(f.validate(), SimFatal);

    f.stages = {IpKind::DC, IpKind::VD}; // sink mid-chain
    f.edgeBytes = {1024, 1024};
    EXPECT_THROW(f.validate(), SimFatal);

    f.stages = {IpKind::VD, IpKind::VD}; // no sink at the end
    EXPECT_THROW(f.validate(), SimFatal);
}

TEST(GopModel, IndependentFramesEveryGop)
{
    GopParams g;
    g.gopSize = 16;
    EXPECT_TRUE(g.isIndependent(0));
    EXPECT_FALSE(g.isIndependent(1));
    EXPECT_TRUE(g.isIndependent(32));
}

TEST(GopModel, IFramesAreLargerThanPFrames)
{
    GopParams g;
    std::uint64_t raw = 12_MiB;
    auto iSize = g.compressedBytes(raw, 0);
    auto pSize = g.compressedBytes(raw, 1);
    EXPECT_GT(iSize, pSize);
    EXPECT_NEAR(static_cast<double>(raw) / iSize, g.iCompression, 0.1);
    EXPECT_NEAR(static_cast<double>(raw) / pSize, g.pCompression, 0.1);
}

TEST(FlowSpec, FrameEdgesVaryWithGop)
{
    auto a = AppCatalog::byIndex(5);
    const auto &f = a.flows[0];
    auto i_edges = f.frameEdges(0);
    auto p_edges = f.frameEdges(1);
    EXPECT_GT(i_edges[0], p_edges[0]);
    EXPECT_EQ(i_edges[1], p_edges[1]); // decoded size constant
}

TEST(FlowSpec, BaselineMemBytesCountsStagingTraffic)
{
    FlowSpec f;
    f.name = "t";
    f.stages = {IpKind::CPU, IpKind::VD, IpKind::DC};
    f.edgeBytes = {100, 1000};
    // read 100 (VD in) + write 1000 (VD out) + read 1000 (DC in).
    EXPECT_EQ(f.baselineMemBytesPerFrame(), 100u + 2000u);
}

TEST(UserInput, FlappyGapsRespectPaperBounds)
{
    FlappyTapModel m;
    Random rng(11);
    int above_half = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        Tick gap = m.nextGap(rng);
        // "rapid successive clicks will be at least 0.15 sec apart"
        ASSERT_GE(gap, fromSec(0.13));
        above_half += gap > fromSec(0.5) ? 1 : 0;
    }
    // "most touches (>60%) above 0.5 seconds"
    EXPECT_GT(static_cast<double>(above_half) / n, 0.55);
}

TEST(UserInput, FlappyTapsAreInstant)
{
    FlappyTapModel m;
    Random rng(1);
    EXPECT_EQ(m.inputDuration(rng), 0u);
}

TEST(UserInput, FruitFlickGapsCoverLongTail)
{
    FruitFlickModel m;
    Random rng(12);
    bool sawLong = false;
    for (int i = 0; i < 5000; ++i) {
        Tick gap = m.nextGap(rng);
        ASSERT_GE(gap, fromSec(6.0 / 60.0)); // >= 6 frames
        if (gap > fromSec(2.0))
            sawLong = true; // >120-frame pauses exist (Fig 6b)
    }
    EXPECT_TRUE(sawLong);
}

TEST(UserInput, FruitFlicksTakeTime)
{
    FruitFlickModel m;
    Random rng(13);
    for (int i = 0; i < 100; ++i) {
        Tick d = m.inputDuration(rng);
        EXPECT_GE(d, fromSec(0.19));
        EXPECT_LE(d, fromSec(0.61));
    }
}

TEST(UserInput, FactorySelectsByAppName)
{
    EXPECT_STREQ(makeTouchModel("AR-Game.render")->name(),
                 "fruit-flick");
    EXPECT_STREQ(makeTouchModel("Game-1.render")->name(),
                 "flappy-tap");
}

} // namespace
} // namespace vip
