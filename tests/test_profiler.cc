/**
 * @file
 * Profiler (--prof) tests: the digest-neutrality contract across
 * every system configuration, dispatch accounting against the event
 * queue's own counters, kind-table merging, the bounded occupancy
 * timeline, and the prof.json document vip_prof consumes.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/simulation.hh"
#include "obs/json.hh"
#include "obs/profiler.hh"

using namespace vip;

namespace
{

SocConfig
auditedCfg(SystemConfig sc, double seconds = 0.2)
{
    SocConfig cfg;
    cfg.system = sc;
    cfg.simSeconds = seconds;
    cfg.audit.mode = AuditMode::Periodic;
    cfg.audit.periodMs = 1.0;
    return cfg;
}

} // namespace

TEST(Profiler, DigestNeutralAcrossAllConfigs)
{
    // The contract --prof is useless without: an armed profiler must
    // not change one bit of simulated behavior.  Audit every 1 ms
    // and require the full digest stream — not just the final state
    // hash — to match an unprofiled run, for every configuration.
    auto wl = WorkloadCatalog::byIndex(4);
    for (auto sc : kAllConfigs) {
        SCOPED_TRACE(systemConfigName(sc));

        Simulation ref(auditedCfg(sc), wl);
        ref.run();

        SocConfig cfg = auditedCfg(sc);
        cfg.prof.out = "(armed)";
        Simulation prof(cfg, wl);
        prof.run();

        ASSERT_NE(prof.profiler(), nullptr);
        EXPECT_EQ(ref.auditor().streamDigest(),
                  prof.auditor().streamDigest());
        EXPECT_EQ(ref.system().curTick(), prof.system().curTick());
        EXPECT_EQ(ref.system().eventq().servicedEvents(),
                  prof.system().eventq().servicedEvents());
    }
}

TEST(Profiler, CountsEveryDispatchAndSamplesOnSchedule)
{
    SocConfig cfg = auditedCfg(SystemConfig::VIP);
    cfg.prof.out = "(armed)";
    cfg.prof.sampleEvery = 64;
    Simulation sim(cfg, WorkloadCatalog::byIndex(4));
    sim.run();

    const Profiler *p = sim.profiler();
    ASSERT_NE(p, nullptr);
    // Every serviced event is attributed to exactly one kind.
    EXPECT_EQ(p->dispatches(),
              sim.system().eventq().servicedEvents());
    // Sampling cadence: one wall-timed dispatch per sampleEvery.
    EXPECT_EQ(p->sampledDispatches(), p->dispatches() / 64);

    // The rows cover the dispatch total exactly, with no kind
    // outside the fixed catalog (untagged events fold into "other").
    std::uint64_t total = 0;
    for (const auto &r : sim.profiler()->rows()) {
        total += r.count;
        bool inCatalog = false;
        for (std::size_t i = 0; i < kProfKindCatalogSize; ++i)
            inCatalog |= r.kind == kProfKindCatalog[i];
        EXPECT_TRUE(inCatalog) << "uncataloged kind " << r.kind;
    }
    EXPECT_EQ(total, p->dispatches());

    // A VIP W4 run exercises the stream engines and the DRAM model;
    // their tags must show up with real counts.
    EXPECT_GT(p->countFor("ip.unit"), 0.0);
    EXPECT_GT(p->countFor("dram.burst"), 0.0);
}

TEST(Profiler, TimelineStaysBoundedAndOrdered)
{
    SocConfig cfg = auditedCfg(SystemConfig::VIP, 0.4);
    cfg.prof.out = "(armed)";
    cfg.prof.sampleEvery = 4; // force decimation
    Simulation sim(cfg, WorkloadCatalog::byIndex(4));
    sim.run();

    const Profiler *p = sim.profiler();
    ASSERT_NE(p, nullptr);
    const auto &tl = p->timeline();
    ASSERT_FALSE(tl.empty());
    EXPECT_LE(tl.size(), 2048u);
    EXPECT_GE(p->timelineStride(), 4u);
    for (std::size_t i = 1; i < tl.size(); ++i)
        EXPECT_LE(tl[i - 1].tick, tl[i].tick);
    std::uint32_t peak = 0;
    for (const auto &s : tl) {
        EXPECT_LE(s.pending, s.heap);
        peak = std::max(peak, s.pending);
    }
    EXPECT_LE(peak, p->maxPending());
    EXPECT_GT(p->maxHeap(), 0u);
}

TEST(Profiler, WriteJsonParsesAndBalances)
{
    SocConfig cfg = auditedCfg(SystemConfig::VIP);
    cfg.prof.out = "prof.json";
    Simulation sim(cfg, WorkloadCatalog::byIndex(4));
    sim.run();

    std::ostringstream os;
    sim.writeProfJson(os);
    std::istringstream in(os.str());
    auto root = json::parse(in);

    EXPECT_EQ(json::strField(root, "kind"), "vip-prof");
    EXPECT_EQ(json::numField(root, "schemaVersion"),
              Profiler::kSchemaVersion);
    EXPECT_GT(json::numField(root, "sim_ms"), 0.0);
    EXPECT_GT(json::numField(root, "wall_ms"), 0.0);

    const auto *kinds = root.find("kinds");
    ASSERT_NE(kinds, nullptr);
    double total = 0;
    for (const auto &k : kinds->arr)
        total += json::numField(k, "count");
    EXPECT_EQ(total, json::numField(root, "events"));

    const auto *eq = root.find("eventq");
    ASSERT_NE(eq, nullptr);
    EXPECT_GT(json::numField(*eq, "max_pending"), 0.0);
    const auto *tl = eq->find("timeline");
    ASSERT_NE(tl, nullptr);
    EXPECT_FALSE(tl->arr.empty());
}

TEST(Profiler, StatsRegistryExposesProfNamespace)
{
    SocConfig cfg = auditedCfg(SystemConfig::VIP);
    cfg.prof.out = "(armed)";
    Simulation sim(cfg, WorkloadCatalog::byIndex(4));
    sim.run();

    std::ostringstream os;
    sim.writeStatsJson(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("\"prof.events\""), std::string::npos);
    EXPECT_NE(s.find("\"prof.kind.ip.unit.count\""),
              std::string::npos);
    // The logical live-set gauge is unconditional (profiler or not);
    // the physical heap internals ride along with --prof only.
    EXPECT_NE(s.find("\"sim.eventq.live\""), std::string::npos);
    EXPECT_NE(s.find("\"sim.eventq.compactions\""),
              std::string::npos);

    Simulation off(auditedCfg(SystemConfig::VIP),
                   WorkloadCatalog::byIndex(4));
    off.run();
    std::ostringstream os2;
    off.writeStatsJson(os2);
    EXPECT_EQ(os2.str().find("\"prof."), std::string::npos);
    EXPECT_NE(os2.str().find("\"sim.eventq.live\""),
              std::string::npos);
    // Physical execution-history gauges diverge across restore, so
    // they must stay out of baseline (profiler-off) stats.
    EXPECT_EQ(os2.str().find("\"sim.eventq.heap\""),
              std::string::npos);
    EXPECT_EQ(os2.str().find("\"sim.eventq.compactions\""),
              std::string::npos);
}
