/**
 * @file
 * Checkpoint/restore tests: bit-identical resume across every system
 * configuration, rejection of skewed or damaged snapshots, and the
 * metrics CSV append-resume path.
 *
 * The gold standard everywhere: a run restored from a mid-run
 * snapshot must finish with a digest stream and a stats dump that are
 * byte-for-byte those of the uninterrupted run.  No tolerances.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulation.hh"
#include "sim/snapshot.hh"

namespace vip
{
namespace
{

namespace fs = std::filesystem;

/** Fresh scratch directory per test, removed on teardown. */
class SnapshotTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _dir = fs::temp_directory_path() /
               ("vip-snapshot-" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(_dir);
        fs::create_directories(_dir);
    }

    void TearDown() override { fs::remove_all(_dir); }

    std::string
    path(const std::string &name) const
    {
        return (_dir / name).string();
    }

    fs::path _dir;
};

SocConfig
auditedCfg(SystemConfig sc, double seconds = 0.4)
{
    SocConfig cfg;
    cfg.system = sc;
    cfg.simSeconds = seconds;
    cfg.audit.mode = AuditMode::Periodic;
    cfg.audit.periodMs = 1.0;
    return cfg;
}

/** Final stats dump + digest-stream digest of a finished run. */
struct RunOutput
{
    std::string statsJson;
    std::uint64_t streamDigest = 0;
};

RunOutput
outputs(Simulation &sim)
{
    RunOutput o;
    std::ostringstream os;
    sim.writeStatsJson(os);
    o.statsJson = os.str();
    o.streamDigest = sim.auditor().streamDigest();
    return o;
}

std::string
readFile(const std::string &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST_F(SnapshotTest, RoundTripBitIdenticalAllConfigs)
{
    // W4 (Skype + video playback) under every system configuration:
    // checkpoint at three mid-run points, restore each, and require
    // the final digest stream and stats dump to be byte-identical to
    // the uninterrupted run's.
    // All five configurations are busy (never quiescent) for long
    // stretches of the 0.4 s run; this window has quiescent points
    // under every one of them (see the VIP_QUIESCENCE_PROBE env var).
    const Tick points[] = {fromMs(270), fromMs(300), fromMs(330)};
    for (auto sc : kAllConfigs) {
        SCOPED_TRACE(systemConfigName(sc));
        auto wl = WorkloadCatalog::byIndex(4);

        Simulation ref(auditedCfg(sc), wl);
        ref.run();
        RunOutput want = outputs(ref);

        std::vector<std::string> snaps;
        {
            Simulation writer(auditedCfg(sc), wl);
            for (std::size_t i = 0; i < std::size(points); ++i) {
                snaps.push_back(path(std::string(systemConfigName(sc)) +
                                     "-" + std::to_string(i) +
                                     ".vips"));
                writer.checkpointAt(points[i], snaps.back());
            }
            writer.run();
            // All three quiescent points must have been found, and
            // the checkpoint writes must not have perturbed the run.
            EXPECT_EQ(writer.checkpointsWritten(), std::size(points));
            RunOutput got = outputs(writer);
            EXPECT_EQ(got.statsJson, want.statsJson);
            EXPECT_EQ(got.streamDigest, want.streamDigest);
        }

        for (const auto &snap : snaps) {
            SCOPED_TRACE(snap);
            auto meta = SnapshotReader::readMeta(snap);
            EXPECT_GT(meta.tick, 0u);

            SocConfig cfg = auditedCfg(sc);
            cfg.restorePath = snap;
            Simulation resumed(cfg, wl);
            resumed.run();
            RunOutput got = outputs(resumed);
            EXPECT_EQ(got.statsJson, want.statsJson);
            EXPECT_EQ(got.streamDigest, want.streamDigest);
        }
    }
}

TEST_F(SnapshotTest, RejectsVersionSkew)
{
    auto snap = path("a.vips");
    {
        Simulation sim(auditedCfg(SystemConfig::Baseline, 0.2),
                       WorkloadCatalog::byIndex(4));
        sim.checkpointAt(fromMs(100), snap);
        sim.run();
        ASSERT_EQ(sim.checkpointsWritten(), 1u);
    }

    // Bump the format version field (bytes 4..7, after the magic).
    auto bytes = readFile(snap);
    ASSERT_GT(bytes.size(), 8u);
    bytes[4] = static_cast<char>(bytes[4] + 1);
    auto skewed = path("skewed.vips");
    std::ofstream(skewed, std::ios::binary) << bytes;

    EXPECT_THROW(SnapshotReader::readMeta(skewed), SimFatal);

    SocConfig cfg = auditedCfg(SystemConfig::Baseline, 0.2);
    cfg.restorePath = skewed;
    Simulation sim(cfg, WorkloadCatalog::byIndex(4));
    EXPECT_THROW(sim.run(), SimFatal);
}

TEST_F(SnapshotTest, RejectsTruncatedFile)
{
    auto snap = path("a.vips");
    {
        Simulation sim(auditedCfg(SystemConfig::Baseline, 0.2),
                       WorkloadCatalog::byIndex(4));
        sim.checkpointAt(fromMs(100), snap);
        sim.run();
        ASSERT_EQ(sim.checkpointsWritten(), 1u);
    }

    auto bytes = readFile(snap);
    auto truncated = path("truncated.vips");
    std::ofstream(truncated, std::ios::binary)
        << bytes.substr(0, bytes.size() / 2);

    SocConfig cfg = auditedCfg(SystemConfig::Baseline, 0.2);
    cfg.restorePath = truncated;
    Simulation sim(cfg, WorkloadCatalog::byIndex(4));
    EXPECT_THROW(sim.run(), SimFatal);
}

TEST_F(SnapshotTest, RejectsIdentitySkew)
{
    auto snap = path("a.vips");
    {
        Simulation sim(auditedCfg(SystemConfig::Baseline, 0.2),
                       WorkloadCatalog::byIndex(4));
        sim.checkpointAt(fromMs(100), snap);
        sim.run();
        ASSERT_EQ(sim.checkpointsWritten(), 1u);
    }

    // Wrong system configuration.
    {
        SocConfig cfg = auditedCfg(SystemConfig::VIP, 0.2);
        cfg.restorePath = snap;
        Simulation sim(cfg, WorkloadCatalog::byIndex(4));
        EXPECT_THROW(sim.run(), SimFatal);
    }
    // Wrong seed.
    {
        SocConfig cfg = auditedCfg(SystemConfig::Baseline, 0.2);
        cfg.seed = 99;
        cfg.restorePath = snap;
        Simulation sim(cfg, WorkloadCatalog::byIndex(4));
        EXPECT_THROW(sim.run(), SimFatal);
    }
    // Wrong workload.
    {
        SocConfig cfg = auditedCfg(SystemConfig::Baseline, 0.2);
        cfg.restorePath = snap;
        Simulation sim(cfg, WorkloadCatalog::byIndex(1));
        EXPECT_THROW(sim.run(), SimFatal);
    }
    // Wrong duration.
    {
        SocConfig cfg = auditedCfg(SystemConfig::Baseline, 0.3);
        cfg.restorePath = snap;
        Simulation sim(cfg, WorkloadCatalog::byIndex(4));
        EXPECT_THROW(sim.run(), SimFatal);
    }
}

TEST_F(SnapshotTest, MetricsCsvResumesWithoutDuplicateHeader)
{
    auto wl = WorkloadCatalog::byIndex(4);
    auto refCsv = path("ref.csv");
    auto csv = path("resume.csv");
    auto snap = path("a.vips");

    SocConfig base = auditedCfg(SystemConfig::Baseline, 0.2);
    base.metrics.intervalMs = 1.0;

    // Uninterrupted reference CSV.
    {
        SocConfig cfg = base;
        cfg.metrics.out = refCsv;
        Simulation sim(cfg, wl);
        sim.run();
    }
    // Checkpointed run writing the CSV that will be "interrupted".
    {
        SocConfig cfg = base;
        cfg.metrics.out = csv;
        Simulation sim(cfg, wl);
        sim.checkpointAt(fromMs(100), snap);
        sim.run();
        ASSERT_EQ(sim.checkpointsWritten(), 1u);
    }

    // Simulate a kill right at the checkpoint: drop every data row
    // sampled after the snapshot tick.
    double ckptMs = toMs(SnapshotReader::readMeta(snap).tick);
    std::vector<std::string> kept;
    {
        std::ifstream in(csv);
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#' ||
                line.rfind("tick_ms", 0) == 0) {
                kept.push_back(line);
                continue;
            }
            if (std::stod(line) <= ckptMs)
                kept.push_back(line);
        }
    }
    {
        std::ofstream out(csv, std::ios::trunc);
        for (const auto &l : kept)
            out << l << "\n";
    }

    // Resume: the sampler must append to the CSV, not rewrite it.
    {
        SocConfig cfg = base;
        cfg.metrics.out = csv;
        cfg.restorePath = snap;
        Simulation sim(cfg, wl);
        sim.run();
    }

    std::ifstream ref(refCsv), res(csv);
    std::string rline, sline;
    std::size_t headers = 0;
    bool sawResumeStamp = false;
    std::vector<std::string> refRows, resRows;
    while (std::getline(ref, rline)) {
        if (rline.empty() || rline[0] == '#')
            continue;
        if (rline.rfind("tick_ms", 0) == 0)
            continue;
        refRows.push_back(rline);
    }
    while (std::getline(res, sline)) {
        if (sline.rfind("# resumed-at-tick=", 0) == 0) {
            sawResumeStamp = true;
            continue;
        }
        if (sline.empty() || sline[0] == '#')
            continue;
        if (sline.rfind("tick_ms", 0) == 0) {
            ++headers;
            continue;
        }
        resRows.push_back(sline);
    }
    EXPECT_EQ(headers, 1u);
    EXPECT_TRUE(sawResumeStamp);
    // Killed-at-checkpoint rows + resumed rows == uninterrupted rows.
    EXPECT_EQ(resRows, refRows);
}

} // namespace
} // namespace vip
