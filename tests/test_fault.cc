/**
 * @file
 * Fault-injection subsystem tests: plan parsing/validation, injector
 * determinism, watchdog recovery, degraded-frame accounting, and the
 * no-progress guard that terminates a deliberately wedged platform.
 */

#include <gtest/gtest.h>

#include "core/simulation.hh"
#include "fault/fault_injector.hh"

namespace vip
{
namespace
{

SocConfig
faultCfg(SystemConfig sc, const FaultPlan &plan, double seconds = 0.15)
{
    SocConfig cfg;
    cfg.system = sc;
    cfg.simSeconds = seconds;
    cfg.fault = plan;
    return cfg;
}

// ---------------------------------------------------------------
// FaultPlan parsing and validation
// ---------------------------------------------------------------

TEST(FaultPlan, DefaultIsDisabled)
{
    FaultPlan p;
    EXPECT_FALSE(p.enabled());
    EXPECT_NO_THROW(p.validate());
}

TEST(FaultPlan, ParsePresetNames)
{
    EXPECT_FALSE(FaultPlan::parse("none").enabled());
    FaultPlan heavy = FaultPlan::parse("heavy");
    EXPECT_TRUE(heavy.enabled());
    EXPECT_GT(heavy.engineHangProb,
              FaultPlan::parse("light").engineHangProb);
}

TEST(FaultPlan, ParseKeyValueList)
{
    FaultPlan p = FaultPlan::parse(
        "hang=0.25,corrupt=0.5,xfer=0.125,ecc=1e-3,ecc-fatal=1e-4,"
        "watchdog-us=50,retries=7,reset-us=5,xfer-retries=2,seed=99");
    EXPECT_DOUBLE_EQ(p.engineHangProb, 0.25);
    EXPECT_DOUBLE_EQ(p.subframeCorruptProb, 0.5);
    EXPECT_DOUBLE_EQ(p.transferErrorProb, 0.125);
    EXPECT_DOUBLE_EQ(p.eccCorrectableProb, 1e-3);
    EXPECT_DOUBLE_EQ(p.eccUncorrectableProb, 1e-4);
    EXPECT_EQ(p.watchdogTimeout, fromUs(50));
    EXPECT_EQ(p.maxRetries, 7u);
    EXPECT_EQ(p.resetPenalty, fromUs(5));
    EXPECT_EQ(p.maxTransferRetries, 2u);
    EXPECT_EQ(p.seed, 99u);
}

TEST(FaultPlan, RejectsBadInput)
{
    EXPECT_THROW(FaultPlan::parse("hang=1.5").validate(), SimFatal);
    EXPECT_THROW(FaultPlan::parse("bogus-key=1"), SimFatal);
    EXPECT_THROW(FaultPlan::preset("unknown"), SimFatal);
    FaultPlan p;
    p.eccCorrectableProb = 0.7;
    p.eccUncorrectableProb = 0.7; // sum > 1: not a distribution
    EXPECT_THROW(p.validate(), SimFatal);
}

// ---------------------------------------------------------------
// Injector determinism
// ---------------------------------------------------------------

TEST(FaultInjector, SameSeedSameDecisions)
{
    FaultPlan p = FaultPlan::preset("heavy");
    FaultInjector a(p), b(p);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_EQ(a.injectEngineHang(), b.injectEngineHang());
        EXPECT_EQ(a.injectEccEvent(), b.injectEccEvent());
    }
    EXPECT_TRUE(a.stats() == b.stats());
    EXPECT_GT(a.stats().engineHangs, 0u);
}

TEST(FaultInjector, SeedChangesSequence)
{
    FaultPlan p = FaultPlan::preset("moderate");
    FaultInjector a(p);
    p.seed = 2;
    FaultInjector b(p);
    int diff = 0;
    for (int i = 0; i < 10000; ++i)
        diff += a.injectSubframeCorruption() !=
                b.injectSubframeCorruption();
    EXPECT_GT(diff, 0);
}

// ---------------------------------------------------------------
// End-to-end: recovery keeps every configuration running, and two
// same-seed runs are bit-identical.
// ---------------------------------------------------------------

TEST(FaultRecovery, AllConfigsSurviveModerateFaults)
{
    FaultPlan plan = FaultPlan::preset("moderate");
    plan.seed = 7;
    for (auto c : kAllConfigs) {
        auto s = Simulation::run(faultCfg(c, plan, 0.1),
                                 WorkloadCatalog::byIndex(4));
        EXPECT_GT(s.framesCompleted, 0u) << systemConfigName(c);
        EXPECT_GT(s.faults.injected(), 0u) << systemConfigName(c);
    }
}

TEST(FaultRecovery, SameSeedRunsAreBitIdentical)
{
    FaultPlan plan = FaultPlan::preset("moderate");
    plan.seed = 42;
    auto cfg = faultCfg(SystemConfig::VIP, plan);
    auto a = Simulation::run(cfg, WorkloadCatalog::byIndex(4));
    auto b = Simulation::run(cfg, WorkloadCatalog::byIndex(4));
    EXPECT_TRUE(a.faults == b.faults);
    EXPECT_EQ(a.framesCompleted, b.framesCompleted);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.drops, b.drops);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_DOUBLE_EQ(a.totalEnergyMj, b.totalEnergyMj);
    EXPECT_DOUBLE_EQ(a.meanFlowTimeMs, b.meanFlowTimeMs);
    for (std::size_t i = 0; i < a.ips.size(); ++i) {
        EXPECT_EQ(a.ips[i].watchdogResets, b.ips[i].watchdogResets);
        EXPECT_EQ(a.ips[i].unitRetries, b.ips[i].unitRetries);
        EXPECT_EQ(a.ips[i].framesDegraded, b.ips[i].framesDegraded);
    }
}

TEST(FaultRecovery, WatchdogRecoversEveryHang)
{
    // Hangs only (no corruption): every injected hang must produce a
    // watchdog reset, and with a generous retry budget no frame is
    // lost outright unless hangs repeat past the budget.
    FaultPlan plan;
    plan.engineHangProb = 0.02;
    plan.maxRetries = 10;
    plan.seed = 3;
    auto s = Simulation::run(faultCfg(SystemConfig::VIP, plan),
                             WorkloadCatalog::byIndex(1));
    EXPECT_GT(s.faults.engineHangs, 0u);
    // One reset per hang, except hangs whose watchdog was still
    // pending when simulated time ran out (at most one per engine).
    EXPECT_LE(s.faults.watchdogResets, s.faults.engineHangs);
    EXPECT_LE(s.faults.engineHangs - s.faults.watchdogResets,
              s.ips.size());
    EXPECT_GT(s.framesCompleted, 0u);
    EXPECT_GT(s.faults.recoveries, 0u);
    EXPECT_GT(s.faults.recoverySumMs, 0.0);
}

TEST(FaultRecovery, ExhaustedRetriesDegradeAndMissDeadlines)
{
    // Corrupt every unit: the retry budget always runs out, so every
    // completed frame is degraded and judged a deadline miss, but the
    // pipeline keeps resynchronizing instead of wedging.
    FaultPlan plan;
    plan.subframeCorruptProb = 1.0;
    plan.maxRetries = 1;
    auto s = Simulation::run(
        faultCfg(SystemConfig::VIP, plan, 0.1),
        WorkloadCatalog::single(5));
    EXPECT_GT(s.framesCompleted, 0u);
    EXPECT_GT(s.faults.framesDegraded, 0u);
    EXPECT_EQ(s.violations, s.framesCompleted);
    EXPECT_EQ(s.drops, s.framesCompleted);
}

TEST(FaultRecovery, FaultFreePlanChangesNothing)
{
    // A Simulation carrying an all-zero plan must be bit-identical to
    // one with no plan at all (no injector is even instantiated).
    SocConfig cfg;
    cfg.system = SystemConfig::IpToIpBurst;
    cfg.simSeconds = 0.1;
    auto a = Simulation::run(cfg, WorkloadCatalog::byIndex(2));
    cfg.fault = FaultPlan::preset("none");
    auto b = Simulation::run(cfg, WorkloadCatalog::byIndex(2));
    EXPECT_EQ(a.framesCompleted, b.framesCompleted);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_DOUBLE_EQ(a.totalEnergyMj, b.totalEnergyMj);
    EXPECT_EQ(a.faults.injected(), 0u);
}

// ---------------------------------------------------------------
// No-progress guard
// ---------------------------------------------------------------

TEST(NoProgressGuard, WedgedChainTerminates)
{
    // Certain hang with the watchdog disabled: the first compute unit
    // wedges its engine forever.  The run must abort via the guard
    // with a diagnostic, not spin to the time limit (and certainly
    // not hang this test).
    FaultPlan plan;
    plan.engineHangProb = 1.0;
    plan.watchdogTimeout = 0; // watchdog off: nothing recovers
    SocConfig cfg = faultCfg(SystemConfig::VIP, plan, 0.5);
    cfg.noProgressSec = 0.02;
    Simulation sim(cfg, WorkloadCatalog::single(5));
    try {
        sim.run();
        FAIL() << "wedged platform was not detected";
    } catch (const SimFatal &e) {
        EXPECT_NE(std::string(e.what()).find("no progress"),
                  std::string::npos);
        // The diagnostic names the wedged engine state.
        EXPECT_NE(std::string(e.what()).find("wedged"),
                  std::string::npos);
    }
}

TEST(NoProgressGuard, HealthyRunNeverTrips)
{
    // An aggressive guard interval on a fault-free run: plenty of
    // checks happen, none may fire.
    SocConfig cfg;
    cfg.system = SystemConfig::Baseline;
    cfg.simSeconds = 0.2;
    cfg.noProgressSec = 0.05;
    EXPECT_NO_THROW(
        Simulation::run(cfg, WorkloadCatalog::byIndex(1)));
}

TEST(NoProgressGuard, EventQueueLivelockPanics)
{
    // A zero-latency self-rescheduling event never advances time; the
    // same-tick cap must catch it.
    EventQueue eq;
    eq.setMaxEventsPerTick(1000);
    std::function<void()> spin = [&] { eq.scheduleIn(0, spin); };
    eq.scheduleIn(0, spin);
    EXPECT_THROW(eq.run(), SimPanic);
}

} // namespace
} // namespace vip
