/**
 * @file
 * Additional coverage: IP taxonomy, configuration traits, RunStats
 * helpers, allocator behaviour, and cross-cutting platform checks
 * that don't fit the per-module files.
 */

#include <gtest/gtest.h>

#include "core/simulation.hh"
#include "mem/mem_types.hh"

namespace vip
{
namespace
{

TEST(IpTaxonomy, NamesAreStableAndUnique)
{
    std::set<std::string> seen;
    for (int i = 0; i < static_cast<int>(IpKind::NumKinds); ++i) {
        std::string n = ipKindName(static_cast<IpKind>(i));
        EXPECT_NE(n, "?");
        EXPECT_TRUE(seen.insert(n).second) << "duplicate name " << n;
    }
}

TEST(IpTaxonomy, SourcesAndSinksAreDisjoint)
{
    for (int i = 0; i < static_cast<int>(IpKind::NumKinds); ++i) {
        auto k = static_cast<IpKind>(i);
        EXPECT_FALSE(ipIsSource(k) && ipIsSink(k)) << ipKindName(k);
    }
    EXPECT_TRUE(ipIsSource(IpKind::CAM));
    EXPECT_TRUE(ipIsSource(IpKind::MIC));
    EXPECT_TRUE(ipIsSink(IpKind::DC));
    EXPECT_TRUE(ipIsSink(IpKind::NW));
    EXPECT_TRUE(ipIsSink(IpKind::SND));
    EXPECT_TRUE(ipIsSink(IpKind::MMC));
}

TEST(IpTaxonomy, DefaultParamsExistForEveryHardwareKind)
{
    for (int i = 1; i < static_cast<int>(IpKind::NumKinds); ++i) {
        auto k = static_cast<IpKind>(i);
        IpParams p = defaultIpParams(k);
        EXPECT_GT(p.clockHz, 0.0) << ipKindName(k);
        EXPECT_GT(p.bytesPerCycle, 0.0) << ipKindName(k);
        EXPECT_GE(p.numLanes, 1u);
    }
    EXPECT_THROW(defaultIpParams(IpKind::CPU), SimPanic);
}

TEST(IpTaxonomy, EnumHelpersNameEverything)
{
    EXPECT_STREQ(schedPolicyName(SchedPolicy::EDF), "edf");
    EXPECT_STREQ(schedPolicyName(SchedPolicy::FIFO), "fifo");
    EXPECT_STREQ(schedPolicyName(SchedPolicy::RoundRobin), "rr");
    EXPECT_STREQ(switchGranularityName(SwitchGranularity::Subframe),
                 "subframe");
    EXPECT_STREQ(switchGranularityName(SwitchGranularity::Frame),
                 "frame");
    EXPECT_STREQ(
        switchGranularityName(SwitchGranularity::Transaction),
        "transaction");
}

TEST(ConfigTraits, MatchTheFiveSystems)
{
    auto t = traitsOf(SystemConfig::Baseline);
    EXPECT_FALSE(t.ipToIp || t.frameBurst || t.virtualized);
    t = traitsOf(SystemConfig::FrameBurst);
    EXPECT_TRUE(!t.ipToIp && t.frameBurst && !t.virtualized);
    t = traitsOf(SystemConfig::IpToIp);
    EXPECT_TRUE(t.ipToIp && !t.frameBurst && !t.virtualized);
    t = traitsOf(SystemConfig::IpToIpBurst);
    EXPECT_TRUE(t.ipToIp && t.frameBurst && !t.virtualized);
    t = traitsOf(SystemConfig::VIP);
    EXPECT_TRUE(t.ipToIp && t.frameBurst && t.virtualized);
    EXPECT_EQ(std::size(kAllConfigs), 5u);
}

TEST(ConfigTraits, IpParamsFollowTheConfiguration)
{
    SocConfig cfg;
    cfg.system = SystemConfig::Baseline;
    EXPECT_EQ(cfg.ipParamsFor(IpKind::VD).numLanes, 1u);

    cfg.system = SystemConfig::IpToIp;
    auto p = cfg.ipParamsFor(IpKind::VD);
    EXPECT_EQ(p.numLanes, cfg.vipLanes);
    EXPECT_EQ(p.switchGranularity, SwitchGranularity::Frame);
    EXPECT_EQ(p.sched, SchedPolicy::FIFO);

    cfg.system = SystemConfig::IpToIpBurst;
    EXPECT_EQ(cfg.ipParamsFor(IpKind::VD).switchGranularity,
              SwitchGranularity::Transaction);

    cfg.system = SystemConfig::VIP;
    p = cfg.ipParamsFor(IpKind::VD);
    EXPECT_EQ(p.switchGranularity, SwitchGranularity::Subframe);
    EXPECT_EQ(p.sched, SchedPolicy::EDF);
}

TEST(ConfigTraits, OverridesAreRespected)
{
    SocConfig cfg;
    cfg.system = SystemConfig::VIP;
    IpParams fast = defaultIpParams(IpKind::VD);
    fast.bytesPerCycle = 99.0;
    cfg.ipOverrides[IpKind::VD] = fast;
    EXPECT_DOUBLE_EQ(cfg.ipParamsFor(IpKind::VD).bytesPerCycle, 99.0);
    // Virtualization plumbing still applies on top of the override.
    EXPECT_EQ(cfg.ipParamsFor(IpKind::VD).sched, SchedPolicy::EDF);
}

TEST(FrameAllocator, AlignsAndWraps)
{
    FrameAllocator alloc(1 << 20); // 1 MiB window
    Addr a = alloc.allocate(100);
    Addr b = alloc.allocate(100);
    EXPECT_EQ(a % 4096, 0u);
    EXPECT_EQ(b % 4096, 0u);
    EXPECT_EQ(b - a, 4096u);
    // Exhaust the window: the allocator wraps instead of failing.
    for (int i = 0; i < 300; ++i)
        alloc.allocate(8192);
    Addr c = alloc.allocate(64);
    EXPECT_LT(c, Addr(1) << 20);
}

TEST(RunStatsHelpers, SummaryAndIpLookup)
{
    SocConfig cfg;
    cfg.system = SystemConfig::Baseline;
    cfg.simSeconds = 0.08;
    auto s = Simulation::run(cfg, WorkloadCatalog::single(5));
    EXPECT_NE(s.ip("VD"), nullptr);
    EXPECT_NE(s.ip("DC"), nullptr);
    EXPECT_EQ(s.ip("GPU"), nullptr); // A5 has no GPU stage
    auto text = s.summary();
    EXPECT_NE(text.find("A5"), std::string::npos);
    EXPECT_NE(text.find("Baseline"), std::string::npos);
    EXPECT_NE(text.find("mJ"), std::string::npos);
}

TEST(Platform, OnlyRequiredIpsAreInstantiated)
{
    SocConfig cfg;
    cfg.simSeconds = 0.05;
    Simulation sim(cfg, WorkloadCatalog::single(3)); // Audio-Play
    EXPECT_NE(sim.ip(IpKind::AD), nullptr);
    EXPECT_NE(sim.ip(IpKind::SND), nullptr);
    EXPECT_NE(sim.ip(IpKind::DC), nullptr);
    EXPECT_EQ(sim.ip(IpKind::VD), nullptr);
    EXPECT_EQ(sim.ip(IpKind::CAM), nullptr);
}

TEST(Platform, ThreeAppWorkloadSharesOneDecoder)
{
    // W2 runs three video players; they must contend for a single VD
    // instance (the paper's shared-IP premise), not get one each.
    SocConfig cfg;
    cfg.system = SystemConfig::VIP;
    cfg.simSeconds = 0.15;
    Simulation sim(cfg, WorkloadCatalog::byIndex(2));
    auto s = sim.run();
    ASSERT_NE(sim.ip(IpKind::VD), nullptr);
    EXPECT_EQ(sim.ip(IpKind::VD)->boundLanes(), 3u);
    EXPECT_GT(s.framesCompleted, 0u);
}

TEST(Platform, HeavierWorkloadsUseMoreEnergy)
{
    SocConfig cfg;
    cfg.simSeconds = 0.1;
    auto one = Simulation::run(cfg, WorkloadCatalog::single(5));
    auto three = Simulation::run(cfg, WorkloadCatalog::byIndex(2));
    EXPECT_GT(three.totalEnergyMj, one.totalEnergyMj);
    EXPECT_GT(three.avgMemBandwidthGBps, one.avgMemBandwidthGBps);
}

TEST(Platform, IdealMemoryNeverSlowsAnythingDown)
{
    for (auto c : {SystemConfig::Baseline, SystemConfig::VIP}) {
        SocConfig cfg;
        cfg.system = c;
        cfg.simSeconds = 0.12;
        auto real = Simulation::run(cfg, WorkloadCatalog::byIndex(1));
        cfg.dram.ideal = true;
        auto ideal = Simulation::run(cfg, WorkloadCatalog::byIndex(1));
        EXPECT_LE(ideal.meanFlowTimeMs, real.meanFlowTimeMs * 1.05)
            << systemConfigName(c);
        EXPECT_LE(ideal.violations, real.violations + 1)
            << systemConfigName(c);
    }
}

TEST(Platform, ChainedModesSlashInterruptsPerFrame)
{
    SocConfig cfg;
    cfg.simSeconds = 0.2;
    cfg.system = SystemConfig::Baseline;
    auto base = Simulation::run(cfg, WorkloadCatalog::single(5));
    cfg.system = SystemConfig::VIP;
    auto vip = Simulation::run(cfg, WorkloadCatalog::single(5));
    double basePerFrame = static_cast<double>(base.interrupts) /
                          std::max<double>(1, base.framesCompleted);
    double vipPerFrame = static_cast<double>(vip.interrupts) /
                         std::max<double>(1, vip.framesCompleted);
    // Baseline: >= one interrupt per stage per frame; VIP: one per
    // burst (5 frames).
    EXPECT_GT(basePerFrame, 1.5);
    EXPECT_LT(vipPerFrame, 0.7);
}

TEST(Platform, MemoryTrafficAttributionSumsToTotal)
{
    // Per-IP DRAM attribution must account for (nearly) all traffic:
    // in the baseline every byte is moved by some IP's DMA engine.
    SocConfig cfg;
    cfg.system = SystemConfig::Baseline;
    cfg.simSeconds = 0.1;
    Simulation sim(cfg, WorkloadCatalog::byIndex(1));
    auto s = sim.run();
    std::uint64_t attributed = 0;
    for (const auto &ip : s.ips)
        attributed += ip.memBytes;
    std::uint64_t total =
        sim.memory().bytesRead() + sim.memory().bytesWritten();
    EXPECT_EQ(attributed, total);
    // The decoder and display dominate a video workload.
    ASSERT_NE(s.ip("VD"), nullptr);
    ASSERT_NE(s.ip("DC"), nullptr);
    EXPECT_GT(s.ip("VD")->memBytes, 10u * 1024 * 1024);
    EXPECT_GT(s.ip("DC")->memBytes, 10u * 1024 * 1024);
}

TEST(Platform, ChainedModeAttributionShrinksToHeadReads)
{
    SocConfig cfg;
    cfg.system = SystemConfig::VIP;
    cfg.simSeconds = 0.1;
    Simulation sim(cfg, WorkloadCatalog::byIndex(1));
    auto s = sim.run();
    // Only the chain heads (VD, AD) read their compressed inputs;
    // the display controller no longer touches DRAM at all.
    ASSERT_NE(s.ip("DC"), nullptr);
    EXPECT_EQ(s.ip("DC")->memBytes, 0u);
    EXPECT_GT(s.ip("VD")->memBytes, 0u);
}

TEST(Platform, SleepFractionRisesWithBursts)
{
    SocConfig cfg;
    cfg.simSeconds = 0.25;
    cfg.system = SystemConfig::Baseline;
    auto base = Simulation::run(cfg, WorkloadCatalog::single(5));
    cfg.system = SystemConfig::VIP;
    auto vip = Simulation::run(cfg, WorkloadCatalog::single(5));
    EXPECT_GT(vip.cpuSleepFraction, base.cpuSleepFraction);
}

} // namespace
} // namespace vip
