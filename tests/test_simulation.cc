/**
 * @file
 * Integration tests: whole-platform runs under every system
 * configuration, checking the invariants and the qualitative results
 * the paper reports.
 */

#include <gtest/gtest.h>

#include "core/simulation.hh"

namespace vip
{
namespace
{

SocConfig
quickCfg(SystemConfig sc, double seconds = 0.15)
{
    SocConfig cfg;
    cfg.system = sc;
    cfg.simSeconds = seconds;
    return cfg;
}

TEST(Simulation, SingleAppBaselineCompletesFrames)
{
    auto s = Simulation::run(quickCfg(SystemConfig::Baseline),
                             WorkloadCatalog::single(5));
    EXPECT_GT(s.framesCompleted, 0u);
    EXPECT_GT(s.framesGenerated, 0u);
    EXPECT_GT(s.totalEnergyMj, 0.0);
    EXPECT_GT(s.interrupts, 0u);
    EXPECT_GT(s.cpuActiveMs, 0.0);
    EXPECT_GT(s.avgMemBandwidthGBps, 0.0);
}

TEST(Simulation, EveryConfigRunsEveryWorkload)
{
    // Smoke coverage: all 5 configs x (one single app + one multi-app)
    // finish without panics and complete frames.
    for (auto c : kAllConfigs) {
        for (auto &wl : {WorkloadCatalog::single(1),
                         WorkloadCatalog::byIndex(4)}) {
            auto s = Simulation::run(quickCfg(c, 0.1), wl);
            EXPECT_GT(s.framesCompleted, 0u)
                << systemConfigName(c) << "/" << wl.name;
        }
    }
}

TEST(Simulation, EnergyCategoriesSumToTotal)
{
    auto s = Simulation::run(quickCfg(SystemConfig::VIP),
                             WorkloadCatalog::byIndex(1));
    double sum = s.cpuEnergyMj + s.dramEnergyMj + s.saEnergyMj +
                 s.ipEnergyMj + s.bufferEnergyMj;
    EXPECT_NEAR(sum, s.totalEnergyMj, s.totalEnergyMj * 1e-9);
}

TEST(Simulation, DeterministicForSameSeed)
{
    auto a = Simulation::run(quickCfg(SystemConfig::VIP),
                             WorkloadCatalog::byIndex(4));
    auto b = Simulation::run(quickCfg(SystemConfig::VIP),
                             WorkloadCatalog::byIndex(4));
    EXPECT_EQ(a.framesCompleted, b.framesCompleted);
    EXPECT_EQ(a.interrupts, b.interrupts);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_DOUBLE_EQ(a.totalEnergyMj, b.totalEnergyMj);
    EXPECT_DOUBLE_EQ(a.meanFlowTimeMs, b.meanFlowTimeMs);
}

TEST(Simulation, SeedChangesJitterButNotStructure)
{
    auto cfg = quickCfg(SystemConfig::Baseline);
    auto a = Simulation::run(cfg, WorkloadCatalog::byIndex(1));
    cfg.seed = 99;
    auto b = Simulation::run(cfg, WorkloadCatalog::byIndex(1));
    EXPECT_NE(a.totalEnergyMj, b.totalEnergyMj);
    EXPECT_NEAR(static_cast<double>(a.framesCompleted),
                static_cast<double>(b.framesCompleted),
                4.0);
}

TEST(Simulation, ChainedModesBypassDram)
{
    // IP-to-IP communication must cut DRAM traffic drastically
    // (the Section 4.2 claim).
    auto base = Simulation::run(quickCfg(SystemConfig::Baseline),
                                WorkloadCatalog::byIndex(1));
    auto chained = Simulation::run(quickCfg(SystemConfig::IpToIp),
                                   WorkloadCatalog::byIndex(1));
    EXPECT_LT(chained.memBytesGB, base.memBytesGB * 0.2);
    EXPECT_LT(chained.dramEnergyMj, base.dramEnergyMj * 0.5);
}

TEST(Simulation, BurstsCutInterruptsAndCpuTime)
{
    // Fig 16: frame bursts slash the interrupt rate and CPU activity.
    auto base = Simulation::run(quickCfg(SystemConfig::Baseline),
                                WorkloadCatalog::byIndex(1));
    auto burst = Simulation::run(quickCfg(SystemConfig::FrameBurst),
                                 WorkloadCatalog::byIndex(1));
    EXPECT_LT(burst.interruptsPer100ms,
              base.interruptsPer100ms * 0.4);
    EXPECT_LT(burst.cpuActiveMs, base.cpuActiveMs);
    EXPECT_LT(burst.instructions, base.instructions);
}

TEST(Simulation, VipReducesEnergyVsBaseline)
{
    auto base = Simulation::run(quickCfg(SystemConfig::Baseline),
                                WorkloadCatalog::byIndex(1));
    auto vip = Simulation::run(quickCfg(SystemConfig::VIP),
                               WorkloadCatalog::byIndex(1));
    EXPECT_LT(vip.energyPerFrameMj, base.energyPerFrameMj);
}

TEST(Simulation, VipBeatsNonVirtualizedBurstsOnQoS)
{
    // The headline claim: with multiple applications sharing IPs,
    // IP-to-IP + FrameBurst suffers head-of-line blocking that VIP's
    // virtualized EDF scheduling removes.
    auto cfg_fb = quickCfg(SystemConfig::IpToIpBurst, 0.3);
    auto cfg_vip = quickCfg(SystemConfig::VIP, 0.3);
    std::uint64_t fbViol = 0, vipViol = 0;
    for (int w : {1, 2, 7}) {
        fbViol +=
            Simulation::run(cfg_fb, WorkloadCatalog::byIndex(w))
                .violations;
        vipViol +=
            Simulation::run(cfg_vip, WorkloadCatalog::byIndex(w))
                .violations;
    }
    EXPECT_LT(vipViol, fbViol);
}

TEST(Simulation, InterruptRateOrdering)
{
    // Baseline interrupts per frame per stage; IP-to-IP one per
    // frame; burst modes one per burst.
    auto wl = WorkloadCatalog::single(5);
    auto base = Simulation::run(quickCfg(SystemConfig::Baseline), wl);
    auto chained = Simulation::run(quickCfg(SystemConfig::IpToIp), wl);
    auto vip = Simulation::run(quickCfg(SystemConfig::VIP), wl);
    EXPECT_GT(base.interruptsPer100ms, chained.interruptsPer100ms);
    EXPECT_GT(chained.interruptsPer100ms, vip.interruptsPer100ms);
}

TEST(Simulation, IdealMemoryRaisesIpUtilization)
{
    // Fig 3b: with ideal memory, IP utilization approaches 100%.
    auto cfg = quickCfg(SystemConfig::Baseline);
    auto real = Simulation::run(cfg, WorkloadCatalog::byIndex(2));
    cfg.dram.ideal = true;
    auto ideal = Simulation::run(cfg, WorkloadCatalog::byIndex(2));
    const auto *vd_r = real.ip("VD");
    const auto *vd_i = ideal.ip("VD");
    ASSERT_NE(vd_r, nullptr);
    ASSERT_NE(vd_i, nullptr);
    EXPECT_GT(vd_i->utilization, vd_r->utilization);
    EXPECT_GT(vd_i->utilization, 0.9);
}

TEST(Simulation, TraceRecordsEveryCompletedFrame)
{
    auto cfg = quickCfg(SystemConfig::Baseline);
    cfg.recordTrace = true;
    Simulation sim(cfg, WorkloadCatalog::single(5));
    auto s = sim.run();
    std::uint64_t all = 0;
    for (const auto &f : s.flows)
        all += f.completed;
    EXPECT_EQ(s.trace.size(), all);
    for (const auto &e : s.trace.events()) {
        EXPECT_LE(e.started, e.completed);
        EXPECT_GE(e.deadline, e.generated);
        if (e.dropped) {
            EXPECT_TRUE(e.violated);
        }
    }
}

TEST(Simulation, PerFlowResultsAreConsistent)
{
    Simulation sim(quickCfg(SystemConfig::VIP),
                   WorkloadCatalog::byIndex(4));
    auto s = sim.run();
    std::uint64_t qos_completed = 0;
    for (const auto &f : s.flows) {
        EXPECT_LE(f.completed, f.generated);
        EXPECT_LE(f.drops, f.violations); // a drop is also a miss
        EXPECT_LE(f.violations, f.completed);
        if (f.qosCritical)
            qos_completed += f.completed;
    }
    EXPECT_EQ(qos_completed, s.framesCompleted);
}

TEST(Simulation, RunTwiceIsFatal)
{
    // Calling run() twice is an API misuse a user can commit, not an
    // internal invariant violation: it must surface as SimFatal.
    Simulation sim(quickCfg(SystemConfig::Baseline, 0.05),
                   WorkloadCatalog::single(3));
    sim.run();
    EXPECT_THROW(sim.run(), SimFatal);
}

TEST(Simulation, AudioOnlyAppIsCheap)
{
    auto audio = Simulation::run(quickCfg(SystemConfig::Baseline),
                                 WorkloadCatalog::single(3));
    auto video = Simulation::run(quickCfg(SystemConfig::Baseline),
                                 WorkloadCatalog::single(5));
    EXPECT_LT(audio.totalEnergyMj, video.totalEnergyMj);
    EXPECT_LT(audio.avgMemBandwidthGBps, video.avgMemBandwidthGBps);
}

TEST(Simulation, GameAppProcessesTouchInput)
{
    // Game workloads must keep completing frames with the touch model
    // active under burst scheduling (hybrid policy).
    auto s = Simulation::run(quickCfg(SystemConfig::VIP, 0.5),
                             WorkloadCatalog::single(1));
    EXPECT_GT(s.framesCompleted, 20u);
    EXPECT_GT(s.achievedFps, 30.0);
}

} // namespace
} // namespace vip
