/**
 * @file
 * Tests for the invariant auditor and the deterministic state-digest
 * subsystem: digest primitives, --audit parsing, stream round-trips,
 * divergence triage, determinism-by-digest across the system
 * configurations, and the end-to-end detection of an injected
 * accounting bug.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/simulation.hh"
#include "sim/audit.hh"

namespace vip
{
namespace
{

// --------------------------------------------------------------------
// StateDigest primitives
// --------------------------------------------------------------------

TEST(StateDigest, OrderSensitive)
{
    StateDigest a, b;
    a.add(std::uint64_t{1});
    a.add(std::uint64_t{2});
    b.add(std::uint64_t{2});
    b.add(std::uint64_t{1});
    EXPECT_NE(a.value(), b.value());
}

TEST(StateDigest, StringsAreLengthPrefixed)
{
    // "ab" + "c" must not collide with "a" + "bc".
    StateDigest a, b;
    a.add(std::string("ab"));
    a.add(std::string("c"));
    b.add(std::string("a"));
    b.add(std::string("bc"));
    EXPECT_NE(a.value(), b.value());
}

TEST(StateDigest, NegativeZeroNormalized)
{
    StateDigest a, b;
    a.add(0.0);
    b.add(-0.0);
    EXPECT_EQ(a.value(), b.value());
}

// --------------------------------------------------------------------
// AuditConfig parsing
// --------------------------------------------------------------------

TEST(AuditConfig, ParseModes)
{
    EXPECT_EQ(AuditConfig::parse("off").mode, AuditMode::Off);
    EXPECT_EQ(AuditConfig::parse("final").mode, AuditMode::Final);
    EXPECT_EQ(AuditConfig::parse("strict").mode, AuditMode::Strict);
    auto p = AuditConfig::parse("periodic");
    EXPECT_EQ(p.mode, AuditMode::Periodic);
    EXPECT_DOUBLE_EQ(p.periodMs, 1.0);
    auto p5 = AuditConfig::parse("periodic:0.5");
    EXPECT_EQ(p5.mode, AuditMode::Periodic);
    EXPECT_DOUBLE_EQ(p5.periodMs, 0.5);
    EXPECT_FALSE(AuditConfig::parse("off").enabled());
    EXPECT_TRUE(AuditConfig::parse("strict").strict());
    EXPECT_TRUE(AuditConfig::parse("strict").periodic());
    EXPECT_FALSE(AuditConfig::parse("final").periodic());
}

TEST(AuditConfig, ParseRejectsJunk)
{
    EXPECT_THROW(AuditConfig::parse("bogus"), SimFatal);
    EXPECT_THROW(AuditConfig::parse("periodic:nope"), SimFatal);
    EXPECT_THROW(AuditConfig::parse("periodic:-1"), SimFatal);
    EXPECT_THROW(AuditConfig::parse(""), SimFatal);
}

// --------------------------------------------------------------------
// Digest stream round-trip and divergence triage
// --------------------------------------------------------------------

DigestStream
makeStream(std::vector<DigestRecord> recs)
{
    DigestStream s;
    s.components = {"eventq", "mem", "flow.x"};
    s.records = std::move(recs);
    return s;
}

TEST(DigestStream, WriteLoadRoundTrip)
{
    Auditor a;
    // Build a stream by hand through the loader: write text, load it,
    // write again, and require byte-identical output.
    std::string text =
        "# vip-digest v1\n"
        "# schemaVersion=1\n"
        "# meta workload=W4\n"
        "1000000 eventq 00000000deadbeef\n"
        "1000000 soc.mem 0123456789abcdef\n"
        "2000000 eventq ffffffffffffffff\n";
    std::istringstream in(text);
    DigestStream s = Auditor::loadDigestStream(in);
    ASSERT_EQ(s.records.size(), 3u);
    EXPECT_EQ(s.components.size(), 2u);
    EXPECT_EQ(s.componentName(s.records[0].component), "eventq");
    EXPECT_EQ(s.componentName(s.records[1].component), "soc.mem");
    EXPECT_EQ(s.records[0].tick, 1000000u);
    EXPECT_EQ(s.records[0].digest, 0xdeadbeefull);
    EXPECT_EQ(s.records[1].digest, 0x0123456789abcdefull);
    EXPECT_EQ(s.records[2].tick, 2000000u);
}

TEST(DigestStream, FirstDivergenceIdentical)
{
    auto a = makeStream({{100, 0, 1}, {100, 1, 2}, {200, 0, 3}});
    auto b = makeStream({{100, 0, 1}, {100, 1, 2}, {200, 0, 3}});
    auto d = Auditor::firstDivergence(a, b);
    EXPECT_FALSE(d.diverged);
}

TEST(DigestStream, FirstDivergenceLocalizes)
{
    auto a = makeStream({{100, 0, 1}, {100, 1, 2}, {200, 0, 3}});
    auto b = makeStream({{100, 0, 1}, {100, 1, 9}, {200, 0, 3}});
    auto d = Auditor::firstDivergence(a, b);
    ASSERT_TRUE(d.diverged);
    EXPECT_FALSE(d.truncated);
    EXPECT_EQ(d.record, 1u);
    EXPECT_EQ(d.tick, 100u);
    EXPECT_EQ(d.component, "mem");
    EXPECT_EQ(d.digestA, 2u);
    EXPECT_EQ(d.digestB, 9u);
}

TEST(DigestStream, FirstDivergenceTruncation)
{
    auto a = makeStream({{100, 0, 1}, {100, 1, 2}});
    auto b = makeStream({{100, 0, 1}});
    auto d = Auditor::firstDivergence(a, b);
    ASSERT_TRUE(d.diverged);
    EXPECT_TRUE(d.truncated);
    EXPECT_EQ(d.record, 1u);
}

// --------------------------------------------------------------------
// Whole-simulation determinism by digest
// --------------------------------------------------------------------

SocConfig
auditedConfig(SystemConfig sys, std::uint64_t seed, const char *mode)
{
    SocConfig cfg;
    cfg.system = sys;
    cfg.simSeconds = 0.05;
    cfg.seed = seed;
    cfg.audit = AuditConfig::parse(mode);
    return cfg;
}

/** Run and return a copy of the digest stream. */
DigestStream
runForStream(SystemConfig sys, std::uint64_t seed,
             const Workload &wl)
{
    Simulation sim(auditedConfig(sys, seed, "periodic:1"), wl);
    sim.run();
    return sim.auditor().stream();
}

TEST(AuditDeterminism, SameSeedSameDigestsAllConfigs)
{
    const Workload wl = WorkloadCatalog::byIndex(4);
    for (auto sys : kAllConfigs) {
        auto a = runForStream(sys, 1, wl);
        auto b = runForStream(sys, 1, wl);
        ASSERT_GT(a.records.size(), 0u)
            << systemConfigName(sys);
        auto d = Auditor::firstDivergence(a, b);
        EXPECT_FALSE(d.diverged)
            << systemConfigName(sys) << " diverged at tick " << d.tick
            << " in " << d.component;
    }
}

TEST(AuditDeterminism, SameSeedSameDigestsUnderFaultPlan)
{
    const Workload wl = WorkloadCatalog::byIndex(4);
    auto runFaulty = [&] {
        auto cfg = auditedConfig(SystemConfig::VIP, 1, "periodic:1");
        cfg.fault = FaultPlan::parse("moderate");
        Simulation sim(cfg, wl);
        sim.run();
        return sim.auditor().stream();
    };
    auto a = runFaulty();
    auto b = runFaulty();
    auto d = Auditor::firstDivergence(a, b);
    EXPECT_FALSE(d.diverged)
        << "fault plan broke determinism at tick " << d.tick << " in "
        << d.component;
}

TEST(AuditDeterminism, DifferentSeedDivergenceIsLocalized)
{
    const Workload wl = WorkloadCatalog::byIndex(4);
    auto a = runForStream(SystemConfig::VIP, 1, wl);
    auto b = runForStream(SystemConfig::VIP, 2, wl);
    auto d = Auditor::firstDivergence(a, b);
    ASSERT_TRUE(d.diverged);
    EXPECT_FALSE(d.component.empty());
    EXPECT_GT(d.tick, 0u); // first audit pass is at the first period
}

TEST(AuditDeterminism, StreamSurvivesTextRoundTrip)
{
    const Workload wl = WorkloadCatalog::single(5);
    Simulation sim(auditedConfig(SystemConfig::VIP, 1, "periodic:1"),
                   wl);
    sim.run();
    std::ostringstream out;
    sim.auditor().writeDigestStream(out, {"workload=A5"});
    std::istringstream in(out.str());
    auto loaded = Auditor::loadDigestStream(in);
    auto d = Auditor::firstDivergence(sim.auditor().stream(), loaded);
    EXPECT_FALSE(d.diverged);
    EXPECT_EQ(loaded.records.size(),
              sim.auditor().stream().records.size());
}

TEST(AuditDeterminism, AuditIsAPureObserver)
{
    // Enabling audits must not change simulated behavior, only
    // observe it.
    const Workload wl = WorkloadCatalog::byIndex(4);
    auto plain = Simulation::run(
        auditedConfig(SystemConfig::VIP, 1, "off"), wl);
    auto audited = Simulation::run(
        auditedConfig(SystemConfig::VIP, 1, "strict"), wl);
    EXPECT_EQ(plain.framesGenerated, audited.framesGenerated);
    EXPECT_EQ(plain.framesCompleted, audited.framesCompleted);
    EXPECT_EQ(plain.violations, audited.violations);
    EXPECT_EQ(plain.interrupts, audited.interrupts);
    EXPECT_DOUBLE_EQ(plain.totalEnergyMj, audited.totalEnergyMj);
}

// --------------------------------------------------------------------
// Strict audits across the evaluation matrix (smoke subset; the full
// A1..A7 x W1..W8 x config sweep runs as the CI audit-strict gate)
// --------------------------------------------------------------------

TEST(AuditStrict, CleanRunsPassAllConfigs)
{
    for (auto sys : kAllConfigs) {
        for (int w : {1, 4, 7}) {
            auto cfg = auditedConfig(sys, 1, "strict");
            RunStats r;
            ASSERT_NO_THROW(
                r = Simulation::run(cfg, WorkloadCatalog::byIndex(w)))
                << systemConfigName(sys) << " W" << w;
            EXPECT_EQ(r.auditViolations, 0u);
            EXPECT_GT(r.auditPasses, 0u);
            EXPECT_GT(r.auditRecords, 0u);
            EXPECT_NE(r.digestStreamHash, 0u);
        }
    }
}

TEST(AuditStrict, CleanUnderFaultInjection)
{
    // The fault path exercises watchdog resets, retries and
    // retransmissions; the ledgers must still balance.
    auto cfg = auditedConfig(SystemConfig::VIP, 1, "strict");
    cfg.fault = FaultPlan::parse("moderate");
    RunStats r;
    ASSERT_NO_THROW(
        r = Simulation::run(cfg, WorkloadCatalog::byIndex(4)));
    EXPECT_EQ(r.auditViolations, 0u);
    EXPECT_GT(r.faults.injected(), 0u);
}

TEST(AuditStrict, FinalModeRunsExactlyOnePass)
{
    auto cfg = auditedConfig(SystemConfig::Baseline, 1, "final");
    auto r = Simulation::run(cfg, WorkloadCatalog::single(1));
    EXPECT_EQ(r.auditPasses, 1u);
    EXPECT_EQ(r.auditViolations, 0u);
}

TEST(AuditStrict, OffModeRecordsNothing)
{
    auto cfg = auditedConfig(SystemConfig::Baseline, 1, "off");
    auto r = Simulation::run(cfg, WorkloadCatalog::single(1));
    EXPECT_EQ(r.auditPasses, 0u);
    EXPECT_EQ(r.auditRecords, 0u);
    EXPECT_EQ(r.digestStreamHash, 0u);
}

// --------------------------------------------------------------------
// Injected accounting bug: caught and localized
// --------------------------------------------------------------------

TEST(AuditBugDetection, StrictAbortsOnAccountingBug)
{
    auto cfg = auditedConfig(SystemConfig::VIP, 1, "strict");
    Simulation sim(cfg, WorkloadCatalog::byIndex(4));
    ASSERT_FALSE(sim.flows().empty());
    sim.flows().front()->corruptAccountingForTest();
    try {
        sim.run();
        FAIL() << "strict audit missed the corrupted ledger";
    } catch (const SimFatal &e) {
        // The report names the component and the invariant id.
        EXPECT_NE(std::string(e.what()).find("flow."),
                  std::string::npos) << e.what();
        EXPECT_NE(std::string(e.what()).find("flow.conservation"),
                  std::string::npos) << e.what();
    }
}

TEST(AuditBugDetection, PeriodicReportsComponentAndInvariant)
{
    auto cfg = auditedConfig(SystemConfig::VIP, 1, "periodic:1");
    Simulation sim(cfg, WorkloadCatalog::byIndex(4));
    ASSERT_FALSE(sim.flows().empty());
    FlowRuntime &flow = *sim.flows().front();
    flow.corruptAccountingForTest();
    auto r = sim.run();
    EXPECT_GT(r.auditViolations, 0u);
    ASSERT_FALSE(sim.auditor().violations().empty());
    const AuditViolation &v = sim.auditor().violations().front();
    EXPECT_EQ(v.invariant, "flow.conservation");
    EXPECT_EQ(v.component, "flow." + flow.spec().name);
    EXPECT_GT(v.tick, 0u);
    EXPECT_EQ(v.lhs, v.rhs + 1); // one phantom generated frame
}

} // namespace
} // namespace vip
