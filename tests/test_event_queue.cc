/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace vip
{
namespace
{

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, ServicesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&] { order.push_back(3); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 300u);
}

TEST(EventQueue, SameTickUsesInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(50, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PriorityBreaksTieBeforeInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(50, [&] { order.push_back(1); },
                EventPriority::Default);
    eq.schedule(50, [&] { order.push_back(0); },
                EventPriority::ClockTick);
    eq.schedule(50, [&] { order.push_back(2); },
                EventPriority::Stats);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleIn(50, [&] { seen = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [&] {
        EXPECT_THROW(eq.schedule(50, [] {}), SimPanic);
    });
    eq.run();
}

TEST(EventQueue, DescheduleCancelsEvent)
{
    EventQueue eq;
    bool ran = false;
    EventId id = eq.schedule(100, [&] { ran = true; });
    eq.deschedule(id);
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, DescheduleIsIdempotentAndSafeAfterRun)
{
    EventQueue eq;
    int runs = 0;
    EventId id = eq.schedule(10, [&] { ++runs; });
    eq.run();
    EXPECT_EQ(runs, 1);
    eq.deschedule(id); // already ran: harmless
    eq.deschedule(id);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, CancelledEventDoesNotAdvanceTime)
{
    EventQueue eq;
    EventId id = eq.schedule(1000, [] {});
    eq.schedule(2000, [] {});
    eq.deschedule(id);
    eq.serviceOne();
    EXPECT_EQ(eq.curTick(), 2000u);
}

TEST(EventQueue, RunUntilStopsAtLimitAndAdvancesTime)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(100, [&] { ++ran; });
    eq.schedule(300, [&] { ++ran; });
    Tick t = eq.runUntil(200);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(t, 200u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.runUntil(400);
    EXPECT_EQ(ran, 2);
}

TEST(EventQueue, EventExactlyAtLimitRuns)
{
    EventQueue eq;
    bool ran = false;
    eq.schedule(200, [&] { ran = true; });
    eq.runUntil(200);
    EXPECT_TRUE(ran);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> recur = [&] {
        if (++depth < 100)
            eq.scheduleIn(1, recur);
    };
    eq.schedule(0, recur);
    eq.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.curTick(), 99u);
    EXPECT_EQ(eq.servicedEvents(), 100u);
}

TEST(EventQueue, PendingTracksLiveEvents)
{
    EventQueue eq;
    EventId a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.deschedule(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, CancelledEntriesDoNotAccumulate)
{
    // Regression: descheduling used to leave a tombstone per
    // cancelled id forever.  Schedule/deschedule 100k events and
    // check the heap stays bounded by the live population (the
    // compactor's 2x slack plus its minimum working size).
    EventQueue eq;
    std::vector<EventId> live;
    for (int i = 0; i < 100'000; ++i) {
        EventId id = eq.schedule(1'000'000 + i, [] {});
        if (i % 10 == 9) {
            live.push_back(id); // keep 10% alive
        } else {
            eq.deschedule(id);
        }
        ASSERT_LE(eq.heapSize(),
                  std::max<std::size_t>(2 * eq.pending(), 64))
            << "after " << i << " schedules";
    }
    EXPECT_EQ(eq.pending(), live.size());
    EXPECT_LE(eq.deadEntries(), eq.pending() + 64);

    // Draining by cancellation alone must also shrink the heap.
    for (EventId id : live)
        eq.deschedule(id);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_LE(eq.heapSize(), 64u);
}

TEST(EventQueue, ServicingAlsoCompactsDeadEntries)
{
    // Dead entries can come to dominate without any further
    // deschedule() call when serviceOne() shrinks the live set.
    EventQueue eq;
    std::vector<EventId> doomed;
    for (int i = 0; i < 500; ++i)
        eq.schedule(10'000 + i, [] {});
    for (int i = 0; i < 400; ++i)
        doomed.push_back(eq.schedule(20'000 + i, [] {}));
    for (EventId id : doomed)
        eq.deschedule(id);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_LE(eq.heapSize(), 64u);
}

TEST(EventQueue, AuditInvariantsHoldUnderChurn)
{
    EventQueue eq;
    std::vector<AuditViolation> sink;
    std::vector<EventId> ids;
    for (int i = 0; i < 10'000; ++i)
        ids.push_back(eq.schedule(100 + i, [] {}));
    for (std::size_t i = 0; i < ids.size(); i += 3)
        eq.deschedule(ids[i]);
    AuditContext ctx("eventq", eq.curTick(), /*strict=*/true, sink);
    eq.auditInvariants(ctx); // strict: throws on violation
    EXPECT_TRUE(sink.empty());

    StateDigest a, b;
    eq.stateDigest(a);
    eq.stateDigest(b);
    EXPECT_EQ(a.value(), b.value());
}

TEST(EventQueue, DigestReflectsProgress)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    StateDigest before;
    eq.stateDigest(before);
    eq.run();
    StateDigest after;
    eq.stateDigest(after);
    EXPECT_NE(before.value(), after.value());
}

TEST(EventQueue, ManyEventsStressDeterminism)
{
    // Two identical queues fed the same schedule must service events
    // identically (the whole simulator depends on this).
    auto runOnce = [] {
        EventQueue eq;
        std::vector<std::uint64_t> log;
        for (std::uint64_t i = 0; i < 1000; ++i) {
            Tick when = (i * 7919) % 4096;
            eq.schedule(when, [&log, i] { log.push_back(i); });
        }
        eq.run();
        return log;
    };
    EXPECT_EQ(runOnce(), runOnce());
}

} // namespace
} // namespace vip
