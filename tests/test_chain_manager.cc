/**
 * @file
 * Unit tests for ChainManager: chain construction, persistent and
 * transactional binding, FIFO-with-passing arbitration, feeding.
 */

#include <gtest/gtest.h>

#include "core/chain_manager.hh"
#include "test_util.hh"

namespace vip
{
namespace
{

using test::PlatformFixture;

class ChainTest : public PlatformFixture
{
  protected:
    void
    SetUp() override
    {
        buildPlatform(true);
    }

    IpCore &
    makeIp(const std::string &name, IpKind kind,
           std::uint32_t lanes = 1)
    {
        IpParams p = defaultIpParams(kind);
        p.clockHz = 1e9;
        p.bytesPerCycle = 4.0;
        p.numLanes = lanes;
        ips.push_back(
            std::make_unique<IpCore>(*sys, name, p, *sa, *ledger));
        return *ips.back();
    }

    ChainManager mgr;
    std::vector<std::unique_ptr<IpCore>> ips;
};

TEST_F(ChainTest, CreateRejectsDuplicateIps)
{
    auto &vd = makeIp("t.vd", IpKind::VD);
    EXPECT_THROW(mgr.create(1, {&vd, &vd}, {1024, 1024}, nullptr,
                            nullptr),
                 SimFatal);
}

TEST_F(ChainTest, CreateRejectsMismatchedEdges)
{
    auto &vd = makeIp("t.vd", IpKind::VD);
    auto &dc = makeIp("t.dc", IpKind::DC);
    EXPECT_THROW(mgr.create(1, {&vd, &dc}, {1024}, nullptr, nullptr),
                 SimPanic);
}

TEST_F(ChainTest, PersistentBindTakesLanesAtEveryStage)
{
    auto &vd = makeIp("t.vd", IpKind::VD, 2);
    auto &dc = makeIp("t.dc", IpKind::DC, 2);
    ChainId c = mgr.create(1, {&vd, &dc}, {1024, 4096}, nullptr,
                           nullptr);
    EXPECT_FALSE(mgr.bound(c));
    EXPECT_TRUE(mgr.bindPersistent(c));
    EXPECT_TRUE(mgr.bound(c));
    EXPECT_EQ(vd.boundLanes(), 1u);
    EXPECT_EQ(dc.boundLanes(), 1u);
}

TEST_F(ChainTest, PersistentBindFailsWhenLanesExhausted)
{
    auto &vd = makeIp("t.vd", IpKind::VD, 1);
    auto &dc = makeIp("t.dc", IpKind::DC, 2);
    ChainId a = mgr.create(1, {&vd, &dc}, {1024, 4096}, nullptr,
                           nullptr);
    ChainId b = mgr.create(2, {&vd, &dc}, {1024, 4096}, nullptr,
                           nullptr);
    EXPECT_TRUE(mgr.bindPersistent(a));
    EXPECT_FALSE(mgr.bindPersistent(b)); // VD has a single lane
    // All-or-nothing: the failed bind must not hold DC's lane.
    EXPECT_EQ(dc.boundLanes(), 1u);
}

TEST_F(ChainTest, AcquireGrantsImmediatelyWhenFree)
{
    auto &vd = makeIp("t.vd", IpKind::VD);
    auto &dc = makeIp("t.dc", IpKind::DC);
    ChainId c = mgr.create(1, {&vd, &dc}, {1024, 4096}, nullptr,
                           nullptr);
    bool granted = false;
    mgr.acquire(c, [&] { granted = true; });
    EXPECT_TRUE(granted);
    EXPECT_EQ(mgr.waiters(), 0u);
}

TEST_F(ChainTest, SecondAcquireWaitsForRelease)
{
    auto &vd = makeIp("t.vd", IpKind::VD);
    auto &dc = makeIp("t.dc", IpKind::DC);
    ChainId a = mgr.create(1, {&vd, &dc}, {1024, 4096}, nullptr,
                           nullptr);
    ChainId b = mgr.create(2, {&vd, &dc}, {1024, 4096}, nullptr,
                           nullptr);
    bool gotA = false, gotB = false;
    mgr.acquire(a, [&] { gotA = true; });
    mgr.acquire(b, [&] { gotB = true; });
    EXPECT_TRUE(gotA);
    EXPECT_FALSE(gotB);
    EXPECT_EQ(mgr.waiters(), 1u);
    mgr.release(a);
    EXPECT_TRUE(gotB);
    EXPECT_EQ(mgr.waiters(), 0u);
}

TEST_F(ChainTest, SameChainReacquireQueues)
{
    auto &vd = makeIp("t.vd", IpKind::VD);
    auto &dc = makeIp("t.dc", IpKind::DC);
    ChainId a = mgr.create(1, {&vd, &dc}, {1024, 4096}, nullptr,
                           nullptr);
    int grants = 0;
    mgr.acquire(a, [&] { ++grants; });
    mgr.acquire(a, [&] { ++grants; }); // next frame of the same flow
    EXPECT_EQ(grants, 1);
    mgr.release(a);
    EXPECT_EQ(grants, 2);
}

TEST_F(ChainTest, DisjointChainPassesBlockedWaiter)
{
    // Audio chain (AD-SND) must not wait behind a video waiter
    // (VD-DC) when their IPs do not overlap.
    auto &vd = makeIp("t.vd", IpKind::VD);
    auto &dc = makeIp("t.dc", IpKind::DC);
    auto &ad = makeIp("t.ad", IpKind::AD);
    auto &snd = makeIp("t.snd", IpKind::SND);
    ChainId v1 = mgr.create(1, {&vd, &dc}, {1024, 4096}, nullptr,
                            nullptr);
    ChainId v2 = mgr.create(2, {&vd, &dc}, {1024, 4096}, nullptr,
                            nullptr);
    ChainId au = mgr.create(3, {&ad, &snd}, {1024, 4096}, nullptr,
                            nullptr);
    bool gotV2 = false, gotAu = false;
    mgr.acquire(v1, [] {});
    mgr.acquire(v2, [&] { gotV2 = true; });
    EXPECT_FALSE(gotV2);
    mgr.acquire(au, [&] { gotAu = true; });
    EXPECT_TRUE(gotAu); // disjoint: granted despite the v2 waiter
}

TEST_F(ChainTest, OverlappingLateAcquireQueuesBehindWaiter)
{
    auto &vd = makeIp("t.vd", IpKind::VD);
    auto &dc = makeIp("t.dc", IpKind::DC);
    auto &gpu = makeIp("t.gpu", IpKind::GPU);
    ChainId v1 = mgr.create(1, {&vd, &dc}, {1024, 4096}, nullptr,
                            nullptr);
    ChainId v2 = mgr.create(2, {&vd, &dc}, {1024, 4096}, nullptr,
                            nullptr);
    // Game chain overlaps v2 only at the DC.
    ChainId g = mgr.create(3, {&gpu, &dc}, {1024, 4096}, nullptr,
                           nullptr);
    bool gotV2 = false, gotG = false;
    mgr.acquire(v1, [] {});
    mgr.acquire(v2, [&] { gotV2 = true; });
    mgr.acquire(g, [&] { gotG = true; });
    // g overlaps the queued v2 at DC, so it must queue even though
    // GPU and DC are currently free... DC is busy anyway via v1.
    EXPECT_FALSE(gotG);
    mgr.release(v1);
    EXPECT_TRUE(gotV2);
    // v2 holds VD+DC; g still waits.
    EXPECT_FALSE(gotG);
    mgr.release(v2);
    EXPECT_TRUE(gotG);
}

TEST_F(ChainTest, FeedAnnouncesToEveryStageAndMovesData)
{
    auto &vd = makeIp("t.vd", IpKind::VD, 2);
    auto &dc = makeIp("t.dc", IpKind::DC, 2);
    std::uint64_t exited = 0;
    ChainId c = mgr.create(
        1, {&vd, &dc}, {16_KiB, 64_KiB},
        [&](FlowId, std::uint64_t k) { exited = k + 100; }, nullptr);
    ASSERT_TRUE(mgr.bindPersistent(c));
    mgr.feed(c, 5, {16_KiB, 64_KiB}, 0, MaxTick, 0, true);
    run();
    EXPECT_EQ(exited, 105u);
    // Expansion ratio honoured: ~64 KiB crossed the SA as peer data.
    EXPECT_NEAR(static_cast<double>(sa->peerBytes()),
                static_cast<double>(64_KiB), 2048.0);
}

TEST_F(ChainTest, FeedRejectsUnboundChain)
{
    auto &vd = makeIp("t.vd", IpKind::VD);
    auto &dc = makeIp("t.dc", IpKind::DC);
    ChainId c = mgr.create(1, {&vd, &dc}, {1024, 4096}, nullptr,
                           nullptr);
    EXPECT_THROW(mgr.feed(c, 0, {1024, 4096}, 0, MaxTick, 0, true),
                 SimPanic);
}

TEST_F(ChainTest, StagesAccessor)
{
    auto &vd = makeIp("t.vd", IpKind::VD);
    auto &dc = makeIp("t.dc", IpKind::DC);
    ChainId c = mgr.create(1, {&vd, &dc}, {1024, 4096}, nullptr,
                           nullptr);
    ASSERT_EQ(mgr.stages(c).size(), 2u);
    EXPECT_EQ(mgr.stages(c)[0], &vd);
    EXPECT_EQ(mgr.stages(c)[1], &dc);
}

// --------------------------------------------------------------------
// Admission control (overload protection)
// --------------------------------------------------------------------
// Fixture IPs run at 1 GHz x 4 B/cycle = 4e9 engine bytes/second.

TEST_F(ChainTest, StageDemandIsWorkOverCapacity)
{
    auto &vd = makeIp("t.vd", IpKind::VD);
    // Demand is driven by the wider of input and output.
    EXPECT_DOUBLE_EQ(
        ChainManager::stageDemand(vd, 4'000'000, 8'000'000, 100.0),
        100.0 * 8e6 / 4e9);
    EXPECT_DOUBLE_EQ(
        ChainManager::stageDemand(vd, 8'000'000, 2'000'000, 100.0),
        100.0 * 8e6 / 4e9);
    // Degenerate zero-byte stage still costs at least one byte/frame.
    EXPECT_GT(ChainManager::stageDemand(vd, 0, 0, 100.0), 0.0);
}

TEST_F(ChainTest, AdmissionBoundaryIsExact)
{
    auto &vd = makeIp("t.vd", IpKind::VD);
    std::vector<IpCore *> chain{&vd};
    std::vector<std::uint64_t> edges{4'000'000};
    // 950 FPS x 4 MB / 4e9 B/s = 0.95 = exactly the 5%-headroom
    // limit: admitted.  One frame more tips it over.
    auto at = mgr.checkAdmission(chain, edges, 950.0, 0.05);
    EXPECT_TRUE(at.feasible);
    EXPECT_DOUBLE_EQ(at.worstLoad, 0.95);
    EXPECT_EQ(at.bottleneck, &vd);
    auto over = mgr.checkAdmission(chain, edges, 951.0, 0.05);
    EXPECT_FALSE(over.feasible);
}

TEST_F(ChainTest, AdmissionBottleneckIsWidestStage)
{
    auto &vd = makeIp("t.vd", IpKind::VD);
    auto &dc = makeIp("t.dc", IpKind::DC);
    std::vector<IpCore *> chain{&vd, &dc};
    // VD: max(1 MB in, 8 MB out); DC: 8 MB in -> DC and VD tie on
    // bytes, but VD sees the 8 MB as output too, so both carry
    // 8 MB/frame; worstLoad reports the first-seen maximum (VD).
    auto r = mgr.checkAdmission(chain, {1'000'000, 8'000'000}, 60.0,
                                0.05);
    EXPECT_TRUE(r.feasible);
    EXPECT_DOUBLE_EQ(r.worstLoad, 60.0 * 8e6 / 4e9);
    EXPECT_EQ(r.bottleneck, &vd);
}

TEST_F(ChainTest, FeasibleAloneButInfeasibleCombined)
{
    auto &vd = makeIp("t.vd", IpKind::VD);
    std::vector<IpCore *> chain{&vd};
    std::vector<std::uint64_t> edges{4'000'000};
    // Each flow alone loads VD to 0.6; together they'd need 1.2.
    EXPECT_TRUE(mgr.checkAdmission(chain, edges, 600.0, 0.05).feasible);
    mgr.recordAdmission(chain, edges, 600.0);
    EXPECT_DOUBLE_EQ(mgr.ipLoad(&vd), 0.6);
    auto second = mgr.checkAdmission(chain, edges, 600.0, 0.05);
    EXPECT_FALSE(second.feasible);
    EXPECT_DOUBLE_EQ(second.worstLoad, 1.2);
    // A half-rate second flow fits in the remaining headroom.
    EXPECT_TRUE(mgr.checkAdmission(chain, edges, 300.0, 0.05).feasible);
}

TEST_F(ChainTest, ReleaseRefundsTheLedger)
{
    auto &vd = makeIp("t.vd", IpKind::VD);
    auto &dc = makeIp("t.dc", IpKind::DC);
    std::vector<IpCore *> chain{&vd, &dc};
    std::vector<std::uint64_t> edges{4'000'000, 4'000'000};
    mgr.recordAdmission(chain, edges, 300.0);
    EXPECT_GT(mgr.ipLoad(&vd), 0.0);
    EXPECT_GT(mgr.ipLoad(&dc), 0.0);
    mgr.releaseAdmission(chain, edges, 300.0);
    EXPECT_DOUBLE_EQ(mgr.ipLoad(&vd), 0.0);
    EXPECT_DOUBLE_EQ(mgr.ipLoad(&dc), 0.0);
    // After the refund the full budget is available again.
    EXPECT_TRUE(mgr.checkAdmission(chain, edges, 900.0, 0.05).feasible);
}

} // namespace
} // namespace vip
