/**
 * @file
 * Unit tests for ChainManager: chain construction, persistent and
 * transactional binding, FIFO-with-passing arbitration, feeding.
 */

#include <gtest/gtest.h>

#include "core/chain_manager.hh"
#include "test_util.hh"

namespace vip
{
namespace
{

using test::PlatformFixture;

class ChainTest : public PlatformFixture
{
  protected:
    void
    SetUp() override
    {
        buildPlatform(true);
    }

    IpCore &
    makeIp(const std::string &name, IpKind kind,
           std::uint32_t lanes = 1)
    {
        IpParams p = defaultIpParams(kind);
        p.clockHz = 1e9;
        p.bytesPerCycle = 4.0;
        p.numLanes = lanes;
        ips.push_back(
            std::make_unique<IpCore>(*sys, name, p, *sa, *ledger));
        return *ips.back();
    }

    ChainManager mgr;
    std::vector<std::unique_ptr<IpCore>> ips;
};

TEST_F(ChainTest, CreateRejectsDuplicateIps)
{
    auto &vd = makeIp("t.vd", IpKind::VD);
    EXPECT_THROW(mgr.create(1, {&vd, &vd}, {1024, 1024}, nullptr,
                            nullptr),
                 SimFatal);
}

TEST_F(ChainTest, CreateRejectsMismatchedEdges)
{
    auto &vd = makeIp("t.vd", IpKind::VD);
    auto &dc = makeIp("t.dc", IpKind::DC);
    EXPECT_THROW(mgr.create(1, {&vd, &dc}, {1024}, nullptr, nullptr),
                 SimPanic);
}

TEST_F(ChainTest, PersistentBindTakesLanesAtEveryStage)
{
    auto &vd = makeIp("t.vd", IpKind::VD, 2);
    auto &dc = makeIp("t.dc", IpKind::DC, 2);
    ChainId c = mgr.create(1, {&vd, &dc}, {1024, 4096}, nullptr,
                           nullptr);
    EXPECT_FALSE(mgr.bound(c));
    EXPECT_TRUE(mgr.bindPersistent(c));
    EXPECT_TRUE(mgr.bound(c));
    EXPECT_EQ(vd.boundLanes(), 1u);
    EXPECT_EQ(dc.boundLanes(), 1u);
}

TEST_F(ChainTest, PersistentBindFailsWhenLanesExhausted)
{
    auto &vd = makeIp("t.vd", IpKind::VD, 1);
    auto &dc = makeIp("t.dc", IpKind::DC, 2);
    ChainId a = mgr.create(1, {&vd, &dc}, {1024, 4096}, nullptr,
                           nullptr);
    ChainId b = mgr.create(2, {&vd, &dc}, {1024, 4096}, nullptr,
                           nullptr);
    EXPECT_TRUE(mgr.bindPersistent(a));
    EXPECT_FALSE(mgr.bindPersistent(b)); // VD has a single lane
    // All-or-nothing: the failed bind must not hold DC's lane.
    EXPECT_EQ(dc.boundLanes(), 1u);
}

TEST_F(ChainTest, AcquireGrantsImmediatelyWhenFree)
{
    auto &vd = makeIp("t.vd", IpKind::VD);
    auto &dc = makeIp("t.dc", IpKind::DC);
    ChainId c = mgr.create(1, {&vd, &dc}, {1024, 4096}, nullptr,
                           nullptr);
    bool granted = false;
    mgr.acquire(c, [&] { granted = true; });
    EXPECT_TRUE(granted);
    EXPECT_EQ(mgr.waiters(), 0u);
}

TEST_F(ChainTest, SecondAcquireWaitsForRelease)
{
    auto &vd = makeIp("t.vd", IpKind::VD);
    auto &dc = makeIp("t.dc", IpKind::DC);
    ChainId a = mgr.create(1, {&vd, &dc}, {1024, 4096}, nullptr,
                           nullptr);
    ChainId b = mgr.create(2, {&vd, &dc}, {1024, 4096}, nullptr,
                           nullptr);
    bool gotA = false, gotB = false;
    mgr.acquire(a, [&] { gotA = true; });
    mgr.acquire(b, [&] { gotB = true; });
    EXPECT_TRUE(gotA);
    EXPECT_FALSE(gotB);
    EXPECT_EQ(mgr.waiters(), 1u);
    mgr.release(a);
    EXPECT_TRUE(gotB);
    EXPECT_EQ(mgr.waiters(), 0u);
}

TEST_F(ChainTest, SameChainReacquireQueues)
{
    auto &vd = makeIp("t.vd", IpKind::VD);
    auto &dc = makeIp("t.dc", IpKind::DC);
    ChainId a = mgr.create(1, {&vd, &dc}, {1024, 4096}, nullptr,
                           nullptr);
    int grants = 0;
    mgr.acquire(a, [&] { ++grants; });
    mgr.acquire(a, [&] { ++grants; }); // next frame of the same flow
    EXPECT_EQ(grants, 1);
    mgr.release(a);
    EXPECT_EQ(grants, 2);
}

TEST_F(ChainTest, DisjointChainPassesBlockedWaiter)
{
    // Audio chain (AD-SND) must not wait behind a video waiter
    // (VD-DC) when their IPs do not overlap.
    auto &vd = makeIp("t.vd", IpKind::VD);
    auto &dc = makeIp("t.dc", IpKind::DC);
    auto &ad = makeIp("t.ad", IpKind::AD);
    auto &snd = makeIp("t.snd", IpKind::SND);
    ChainId v1 = mgr.create(1, {&vd, &dc}, {1024, 4096}, nullptr,
                            nullptr);
    ChainId v2 = mgr.create(2, {&vd, &dc}, {1024, 4096}, nullptr,
                            nullptr);
    ChainId au = mgr.create(3, {&ad, &snd}, {1024, 4096}, nullptr,
                            nullptr);
    bool gotV2 = false, gotAu = false;
    mgr.acquire(v1, [] {});
    mgr.acquire(v2, [&] { gotV2 = true; });
    EXPECT_FALSE(gotV2);
    mgr.acquire(au, [&] { gotAu = true; });
    EXPECT_TRUE(gotAu); // disjoint: granted despite the v2 waiter
}

TEST_F(ChainTest, OverlappingLateAcquireQueuesBehindWaiter)
{
    auto &vd = makeIp("t.vd", IpKind::VD);
    auto &dc = makeIp("t.dc", IpKind::DC);
    auto &gpu = makeIp("t.gpu", IpKind::GPU);
    ChainId v1 = mgr.create(1, {&vd, &dc}, {1024, 4096}, nullptr,
                            nullptr);
    ChainId v2 = mgr.create(2, {&vd, &dc}, {1024, 4096}, nullptr,
                            nullptr);
    // Game chain overlaps v2 only at the DC.
    ChainId g = mgr.create(3, {&gpu, &dc}, {1024, 4096}, nullptr,
                           nullptr);
    bool gotV2 = false, gotG = false;
    mgr.acquire(v1, [] {});
    mgr.acquire(v2, [&] { gotV2 = true; });
    mgr.acquire(g, [&] { gotG = true; });
    // g overlaps the queued v2 at DC, so it must queue even though
    // GPU and DC are currently free... DC is busy anyway via v1.
    EXPECT_FALSE(gotG);
    mgr.release(v1);
    EXPECT_TRUE(gotV2);
    // v2 holds VD+DC; g still waits.
    EXPECT_FALSE(gotG);
    mgr.release(v2);
    EXPECT_TRUE(gotG);
}

TEST_F(ChainTest, FeedAnnouncesToEveryStageAndMovesData)
{
    auto &vd = makeIp("t.vd", IpKind::VD, 2);
    auto &dc = makeIp("t.dc", IpKind::DC, 2);
    std::uint64_t exited = 0;
    ChainId c = mgr.create(
        1, {&vd, &dc}, {16_KiB, 64_KiB},
        [&](FlowId, std::uint64_t k) { exited = k + 100; }, nullptr);
    ASSERT_TRUE(mgr.bindPersistent(c));
    mgr.feed(c, 5, {16_KiB, 64_KiB}, 0, MaxTick, 0, true);
    run();
    EXPECT_EQ(exited, 105u);
    // Expansion ratio honoured: ~64 KiB crossed the SA as peer data.
    EXPECT_NEAR(static_cast<double>(sa->peerBytes()),
                static_cast<double>(64_KiB), 2048.0);
}

TEST_F(ChainTest, FeedRejectsUnboundChain)
{
    auto &vd = makeIp("t.vd", IpKind::VD);
    auto &dc = makeIp("t.dc", IpKind::DC);
    ChainId c = mgr.create(1, {&vd, &dc}, {1024, 4096}, nullptr,
                           nullptr);
    EXPECT_THROW(mgr.feed(c, 0, {1024, 4096}, 0, MaxTick, 0, true),
                 SimPanic);
}

TEST_F(ChainTest, StagesAccessor)
{
    auto &vd = makeIp("t.vd", IpKind::VD);
    auto &dc = makeIp("t.dc", IpKind::DC);
    ChainId c = mgr.create(1, {&vd, &dc}, {1024, 4096}, nullptr,
                           nullptr);
    ASSERT_EQ(mgr.stages(c).size(), 2u);
    EXPECT_EQ(mgr.stages(c)[0], &vd);
    EXPECT_EQ(mgr.stages(c)[1], &dc);
}

} // namespace
} // namespace vip
