/**
 * @file
 * Fleet job-spec parser tests: every malformed input must die with a
 * crisp SimFatal at submit time — never UB, never a half-parsed sweep
 * that fails attempts deep into a long run — and the retry/backoff
 * arithmetic must be exact.
 */

#include <gtest/gtest.h>

#include <string>

#include "fleet/backoff.hh"
#include "fleet/job_spec.hh"
#include "sim/logging.hh"

namespace vip
{
namespace fleet
{
namespace
{

/** A minimal valid spec the failure cases below mutate. */
const char *kGood = R"({
  "name": "t",
  "seconds": 0.1,
  "configs": ["vip", "baseline"],
  "workloads": ["A1", "W4"],
  "seeds": [1, 2],
  "fleet": {"workers": 3, "max_attempts": 2}
})";

TEST(FleetSpec, ExpandsCrossProductInSpecOrder)
{
    JobSpec s = JobSpec::parse(kGood);
    EXPECT_EQ(s.name, "t");
    EXPECT_DOUBLE_EQ(s.seconds, 0.1);
    EXPECT_EQ(s.fleet.workers, 3);
    EXPECT_EQ(s.fleet.maxAttempts, 2);
    ASSERT_EQ(s.jobs.size(), 8u); // 2 configs x 2 workloads x 2 seeds
    EXPECT_EQ(s.jobs[0].id, "vip-A1-s1");
    EXPECT_EQ(s.jobs[1].id, "vip-A1-s2");
    EXPECT_EQ(s.jobs[2].id, "vip-W4-s1");
    EXPECT_EQ(s.jobs[7].id, "baseline-W4-s2");
    EXPECT_EQ(s.jobs[7].config, "baseline");
    EXPECT_EQ(s.jobs[7].workload, "W4");
    EXPECT_EQ(s.jobs[7].seed, 2u);
    EXPECT_TRUE(s.jobs[0].faultPlan.empty());
}

TEST(FleetSpec, DefaultsApplyWhenOptionalFieldsAreAbsent)
{
    JobSpec s = JobSpec::parse(
        R"({"configs": ["vip"], "workloads": ["A1"]})");
    ASSERT_EQ(s.jobs.size(), 1u); // implicit seed axis = [1]
    EXPECT_EQ(s.jobs[0].seed, 1u);
    FleetPolicy d;
    EXPECT_EQ(s.fleet.workers, d.workers);
    EXPECT_EQ(s.fleet.maxAttempts, d.maxAttempts);
    EXPECT_DOUBLE_EQ(s.fleet.backoffBaseMs, d.backoffBaseMs);
    EXPECT_EQ(s.fleet.resume, d.resume);
}

TEST(FleetSpec, FaultPlanAxisExpandsAndSanitizesIds)
{
    JobSpec s = JobSpec::parse(R"({
      "configs": ["vip"], "workloads": ["A1"],
      "fault_plans": ["none", "hang=0.01,seed=7"]
    })");
    ASSERT_EQ(s.jobs.size(), 2u);
    EXPECT_TRUE(s.jobs[0].faultPlan.empty()); // "none" -> fault-free
    EXPECT_EQ(s.jobs[1].faultPlan, "hang=0.01,seed=7");
    // '=' and ',' are shell/file hostile; ids keep only safe chars.
    EXPECT_EQ(s.jobs[1].id, "vip-A1-s1-hang_0.01_seed_7");
}

TEST(FleetSpec, MalformedJsonIsFatal)
{
    EXPECT_THROW(JobSpec::parse("{\"configs\": [\"vip\""), SimFatal);
    EXPECT_THROW(JobSpec::parse(""), SimFatal);
    EXPECT_THROW(JobSpec::parse("[1, 2]"), SimFatal);
}

TEST(FleetSpec, UnknownAxisValuesAreFatalAtSubmitTime)
{
    EXPECT_THROW(JobSpec::parse(R"({
      "configs": ["vip", "turbo"], "workloads": ["A1"]})"),
                 SimFatal);
    EXPECT_THROW(JobSpec::parse(R"({
      "configs": ["vip"], "workloads": ["Z9"]})"),
                 SimFatal);
    EXPECT_THROW(JobSpec::parse(R"({
      "configs": ["vip"], "workloads": ["A1"],
      "fault_plans": ["totally-bogus"]})"),
                 SimFatal);
    EXPECT_THROW(JobSpec::parse(R"({
      "configs": ["vip"], "workloads": ["A1"],
      "audit": "sometimes"})"),
                 SimFatal);
}

TEST(FleetSpec, EmptyOrMissingAxesAreFatal)
{
    EXPECT_THROW(JobSpec::parse(R"({"workloads": ["A1"]})"), SimFatal);
    EXPECT_THROW(JobSpec::parse(R"({"configs": ["vip"]})"), SimFatal);
    EXPECT_THROW(JobSpec::parse(R"({
      "configs": [], "workloads": ["A1"]})"),
                 SimFatal);
    EXPECT_THROW(JobSpec::parse(R"({
      "configs": ["vip"], "workloads": ["A1"], "seeds": []})"),
                 SimFatal);
    EXPECT_THROW(JobSpec::parse(R"({
      "configs": ["vip"], "workloads": ["A1"],
      "fault_plans": []})"),
                 SimFatal);
}

TEST(FleetSpec, WrongTypesAreFatal)
{
    EXPECT_THROW(JobSpec::parse(R"({
      "configs": [1], "workloads": ["A1"]})"),
                 SimFatal);
    EXPECT_THROW(JobSpec::parse(R"({
      "configs": ["vip"], "workloads": ["A1"],
      "seeds": [1.5]})"),
                 SimFatal);
    EXPECT_THROW(JobSpec::parse(R"({
      "configs": ["vip"], "workloads": ["A1"],
      "seeds": [-1]})"),
                 SimFatal);
    EXPECT_THROW(JobSpec::parse(R"({
      "configs": ["vip"], "workloads": ["A1"],
      "seconds": "fast"})"),
                 SimFatal);
    EXPECT_THROW(JobSpec::parse(R"({
      "configs": ["vip"], "workloads": ["A1"], "fleet": 3})"),
                 SimFatal);
}

TEST(FleetSpec, DuplicateJobIdsAreFatal)
{
    // The same seed twice collapses two cells onto one id.
    EXPECT_THROW(JobSpec::parse(R"({
      "configs": ["vip"], "workloads": ["A1"],
      "seeds": [1, 1]})"),
                 SimFatal);
    EXPECT_THROW(JobSpec::parse(R"({
      "configs": ["vip", "vip"], "workloads": ["A1"]})"),
                 SimFatal);
}

TEST(FleetSpec, PolicyRangeChecks)
{
    auto withFleet = [](const std::string &fleet) {
        return std::string(R"({"configs": ["vip"],
                               "workloads": ["A1"], "fleet": )") +
               fleet + "}";
    };
    EXPECT_THROW(JobSpec::parse(withFleet(R"({"workers": 0})")),
                 SimFatal);
    EXPECT_THROW(JobSpec::parse(withFleet(R"({"max_attempts": 0})")),
                 SimFatal);
    EXPECT_THROW(JobSpec::parse(withFleet(
                     R"({"backoff_base_ms": -1})")),
                 SimFatal);
    // Cap below base would make the delay sequence nonsense.
    EXPECT_THROW(JobSpec::parse(withFleet(
                     R"({"backoff_base_ms": 100, "backoff_cap_ms": 10})")),
                 SimFatal);
    // A hang deadline without a heartbeat stream can never fire.
    EXPECT_THROW(JobSpec::parse(withFleet(
                     R"({"heartbeat_deadline_ms": 1000,
                         "heartbeat_interval_ms": 0})")),
                 SimFatal);
    EXPECT_THROW(JobSpec::parse(withFleet(R"({"resume": "yes"})")),
                 SimFatal);
}

TEST(FleetSpec, SecondsMustBePositiveAndSane)
{
    EXPECT_THROW(JobSpec::parse(R"({
      "configs": ["vip"], "workloads": ["A1"], "seconds": 0})"),
                 SimFatal);
    EXPECT_THROW(JobSpec::parse(R"({
      "configs": ["vip"], "workloads": ["A1"], "seconds": 1e9})"),
                 SimFatal);
}

TEST(FleetSpec, ParseFileRejectsMissingFile)
{
    EXPECT_THROW(JobSpec::parseFile("/nonexistent/sweep.json"),
                 SimFatal);
}

TEST(FleetBackoff, ExponentialWithCap)
{
    FleetPolicy p;
    p.backoffBaseMs = 250.0;
    p.backoffCapMs = 10000.0;
    EXPECT_DOUBLE_EQ(backoffDelayMs(p, 1), 250.0);
    EXPECT_DOUBLE_EQ(backoffDelayMs(p, 2), 500.0);
    EXPECT_DOUBLE_EQ(backoffDelayMs(p, 3), 1000.0);
    EXPECT_DOUBLE_EQ(backoffDelayMs(p, 6), 8000.0);
    EXPECT_DOUBLE_EQ(backoffDelayMs(p, 7), 10000.0); // 16000 clamped
    EXPECT_DOUBLE_EQ(backoffDelayMs(p, 100), 10000.0);
}

TEST(FleetBackoff, DegenerateInputs)
{
    FleetPolicy p;
    p.backoffBaseMs = 250.0;
    p.backoffCapMs = 10000.0;
    EXPECT_DOUBLE_EQ(backoffDelayMs(p, 0), 0.0);
    EXPECT_DOUBLE_EQ(backoffDelayMs(p, -3), 0.0);
    p.backoffBaseMs = 0.0; // retry immediately
    EXPECT_DOUBLE_EQ(backoffDelayMs(p, 5), 0.0);
    // Absurd failure counts must not overflow: saturates at the cap.
    p.backoffBaseMs = 1.0;
    p.backoffCapMs = 1e9;
    EXPECT_DOUBLE_EQ(backoffDelayMs(p, 10000), 1e9);
}

TEST(FleetBackoff, CapEqualToBasePinsEveryDelay)
{
    FleetPolicy p;
    p.backoffBaseMs = 42.0;
    p.backoffCapMs = 42.0;
    EXPECT_DOUBLE_EQ(backoffDelayMs(p, 1), 42.0);
    EXPECT_DOUBLE_EQ(backoffDelayMs(p, 9), 42.0);
}

} // namespace
} // namespace fleet
} // namespace vip
