/**
 * @file
 * Unit tests for the Section 4.3 frame-burst sizing policies.
 */

#include <gtest/gtest.h>

#include "core/burst_policy.hh"

namespace vip
{
namespace
{

TEST(FixedBurst, ConstantSize)
{
    FixedBurstPolicy p(5);
    EXPECT_EQ(p.nextBurst(0, 0, MaxTick), 5u);
    EXPECT_EQ(p.nextBurst(123, fromMs(50), 0), 5u);
}

TEST(FixedBurst, ClampsToAtLeastOne)
{
    FixedBurstPolicy p(0);
    EXPECT_EQ(p.nextBurst(0, 0, MaxTick), 1u);
}

TEST(GopBurst, NeverCrossesAnIndependentFrame)
{
    GopParams gop;
    gop.gopSize = 16;
    GopBurstPolicy p(gop, 8);
    std::uint64_t frame = 0;
    for (int burst = 0; burst < 100; ++burst) {
        std::uint32_t n = p.nextBurst(frame, 0, MaxTick);
        ASSERT_GE(n, 1u);
        ASSERT_LE(n, 8u);
        // No frame strictly inside (frame, frame+n) may be an
        // I-frame boundary.
        for (std::uint64_t k = frame + 1; k < frame + n; ++k)
            ASSERT_NE(k % gop.gopSize, 0u) << "burst crossed a GOP";
        frame += n;
    }
}

TEST(GopBurst, AlignsToGopRemainder)
{
    GopParams gop;
    gop.gopSize = 16;
    GopBurstPolicy p(gop, 8);
    // 2 frames before the next I-frame: the burst shrinks to 2.
    EXPECT_EQ(p.nextBurst(14, 0, MaxTick), 2u);
    EXPECT_EQ(p.nextBurst(16, 0, MaxTick), 8u);
}

TEST(GameHybridBurst, FullBurstWhenNoInputExpected)
{
    GameHybridBurstPolicy p(60.0, 9);
    EXPECT_EQ(p.nextBurst(0, 0, MaxTick), 9u);
}

TEST(GameHybridBurst, SingleFrameWhileInputActive)
{
    GameHybridBurstPolicy p(60.0, 9);
    // Input is happening right now (next_input <= now).
    EXPECT_EQ(p.nextBurst(0, fromMs(100), fromMs(100)), 1u);
    EXPECT_EQ(p.nextBurst(0, fromMs(100), fromMs(50)), 1u);
}

TEST(GameHybridBurst, ScalesBurstToInputGap)
{
    GameHybridBurstPolicy p(60.0, 9);
    // 100 ms until next input at 60 FPS = 6 frames of slack.
    EXPECT_EQ(p.nextBurst(0, 0, fromMs(100)), 6u);
    // 50 ms -> 3 frames.
    EXPECT_EQ(p.nextBurst(0, 0, fromMs(50)), 3u);
    // A whole second: capped at 9 (< 10 frames per Section 4.3).
    EXPECT_EQ(p.nextBurst(0, 0, fromSec(1)), 9u);
}

TEST(MakeBurstPolicy, GameClassGetsHybrid)
{
    FlowSpec f;
    f.fps = 60.0;
    auto p = makeBurstPolicy(AppClass::Game, f, 5, 9);
    EXPECT_STREQ(p->name(), "game-hybrid");
}

TEST(MakeBurstPolicy, GopVideoGetsGopPolicy)
{
    FlowSpec f;
    f.fps = 60.0;
    f.hasGop = true;
    f.gop.gopSize = 16;
    auto p = makeBurstPolicy(AppClass::VideoPlayback, f, 5, 9);
    EXPECT_STREQ(p->name(), "gop");
}

TEST(MakeBurstPolicy, AudioGetsFixed)
{
    FlowSpec f;
    f.fps = 12.0;
    auto p = makeBurstPolicy(AppClass::AudioOnly, f, 5, 9);
    EXPECT_STREQ(p->name(), "fixed");
}

TEST(MakeBurstPolicy, BurstsFitHeaderField)
{
    // The header packet's burst-size field is 4 bits; every policy
    // the factory builds must stay below 16 frames.
    FlowSpec f;
    f.fps = 60.0;
    f.hasGop = true;
    f.gop.gopSize = 64; // larger than the field allows
    auto p = makeBurstPolicy(AppClass::VideoPlayback, f, 64, 64);
    for (std::uint64_t k = 0; k < 256; k += 7)
        EXPECT_LE(p->nextBurst(k, 0, MaxTick), 15u);
}

} // namespace
} // namespace vip
