/**
 * @file
 * Tests for the SRAM (CACTI-stand-in) model, energy accounting,
 * frame tracing and the software stack.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "app/trace.hh"
#include "driver/software_stack.hh"
#include "power/energy_account.hh"
#include "power/sram_model.hh"
#include "test_util.hh"

namespace vip
{
namespace
{

TEST(SramModel, EnergyAndAreaGrowWithCapacity)
{
    double prevE = 0.0, prevA = 0.0;
    for (std::uint64_t kb = 1; kb <= 64; kb *= 2) {
        auto est = SramModel::forCapacity(kb * 1024);
        EXPECT_GT(est.readEnergyNj, prevE);
        EXPECT_GT(est.areaMm2, prevA);
        EXPECT_GT(est.leakageWatts, 0.0);
        prevE = est.readEnergyNj;
        prevA = est.areaMm2;
    }
}

TEST(SramModel, MatchesFig14bEndpoints)
{
    // Fig 14b plots ~0.065 nJ / ~0.35 mm^2 at 64 KB and well under
    // 0.01 nJ / 0.01 mm^2 at 0.5 KB.
    auto big = SramModel::forCapacity(64_KiB);
    EXPECT_NEAR(big.readEnergyNj, 0.065, 0.01);
    EXPECT_NEAR(big.areaMm2, 0.35, 0.05);
    auto small = SramModel::forCapacity(512);
    EXPECT_LT(small.readEnergyNj, 0.012);
    EXPECT_LT(small.areaMm2, 0.01);
}

TEST(SramModel, WritesCostSlightlyMoreThanReads)
{
    auto est = SramModel::forCapacity(2048);
    EXPECT_GT(est.writeEnergyNj, est.readEnergyNj);
    EXPECT_LT(est.writeEnergyNj, est.readEnergyNj * 1.5);
}

TEST(SramModel, AccessEnergyScalesWithBytes)
{
    double one = SramModel::readEnergyNj(2048, 64);
    double many = SramModel::readEnergyNj(2048, 1024);
    EXPECT_NEAR(many / one, 16.0, 0.01);
}

TEST(EnergyAccount, IntegratesPowerOverTime)
{
    EnergyAccount acc("t");
    acc.setPower(2.0, 0);            // 2 W from t=0
    acc.setPower(0.0, fromSec(1));   // off after 1 s
    acc.close(fromSec(2));
    // 2 W * 1 s = 2 J = 2e9 nJ.
    EXPECT_DOUBLE_EQ(acc.staticNj(), 2e9);
}

TEST(EnergyAccount, DynamicEventsAccumulate)
{
    EnergyAccount acc("t");
    acc.addDynamicNj(5.0);
    acc.addDynamicNj(7.0);
    EXPECT_DOUBLE_EQ(acc.dynamicNj(), 12.0);
    EXPECT_DOUBLE_EQ(acc.totalNj(), 12.0);
}

TEST(EnergyLedger, CategoriesSumToTotal)
{
    EnergyLedger ledger;
    ledger.account("cpu", "c0").addDynamicNj(10.0);
    ledger.account("cpu", "c1").addDynamicNj(20.0);
    ledger.account("dram", "m").addDynamicNj(5.0);
    EXPECT_DOUBLE_EQ(ledger.categoryNj("cpu"), 30.0);
    EXPECT_DOUBLE_EQ(ledger.categoryNj("dram"), 5.0);
    EXPECT_DOUBLE_EQ(ledger.categoryNj("nope"), 0.0);
    EXPECT_DOUBLE_EQ(ledger.totalNj(), 35.0);
    EXPECT_EQ(ledger.categories().size(), 2u);
}

TEST(EnergyLedger, AccountIsStable)
{
    EnergyLedger ledger;
    auto &a = ledger.account("ip", "vd");
    auto &b = ledger.account("ip", "vd");
    EXPECT_EQ(&a, &b);
}

TEST(FrameTrace, AggregatesViolationsAndDrops)
{
    FrameTrace t;
    FrameEvent e;
    e.started = fromMs(1);
    e.completed = fromMs(5);
    t.record(e);
    e.violated = true;
    t.record(e);
    e.dropped = true;
    t.record(e);
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t.countViolations(), 2u);
    EXPECT_EQ(t.countDrops(), 1u);
    EXPECT_DOUBLE_EQ(t.meanFlowTimeMs(), 4.0);
}

TEST(FrameTrace, CsvRoundTrip)
{
    FrameTrace t;
    for (int i = 0; i < 5; ++i) {
        FrameEvent e;
        e.flowId = 3;
        e.flowName = "VideoPlay.video#0";
        e.frameId = i;
        e.generated = fromMs(i * 16.0);
        e.started = e.generated + fromMs(1);
        e.completed = e.started + fromMs(10);
        e.deadline = e.generated + fromMs(20);
        e.violated = i % 2 == 0;
        e.dropped = i == 4;
        t.record(e);
    }
    std::stringstream ss;
    t.dumpCsv(ss);
    FrameTrace back = FrameTrace::loadCsv(ss);
    ASSERT_EQ(back.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(back.events()[i].frameId, t.events()[i].frameId);
        EXPECT_EQ(back.events()[i].completed, t.events()[i].completed);
        EXPECT_EQ(back.events()[i].violated, t.events()[i].violated);
        EXPECT_EQ(back.events()[i].flowName, t.events()[i].flowName);
    }
    EXPECT_EQ(back.countDrops(), 1u);
}

TEST(FrameTrace, EmptyCsvGivesEmptyTrace)
{
    std::stringstream ss;
    EXPECT_TRUE(FrameTrace::loadCsv(ss).empty());
}

class StackTest : public test::PlatformFixture
{
  protected:
    void
    SetUp() override
    {
        buildPlatform(true);
        cluster = std::make_unique<CpuCluster>(*sys, "t.cpu",
                                               CpuConfig{}, 2, *ledger);
        stack = std::make_unique<SoftwareStack>(*cluster,
                                                DriverCosts{});
    }

    std::unique_ptr<CpuCluster> cluster;
    std::unique_ptr<SoftwareStack> stack;
};

TEST_F(StackTest, RunTaskConsumesCpuTime)
{
    Tick done = 0;
    stack->runTask(1'300'000, [&] { done = sys->curTick(); });
    run();
    // 1.3 M instr at 1.3 GHz = 1 ms.
    EXPECT_NEAR(toMs(done), 1.0, 0.01);
}

TEST_F(StackTest, InterruptChargesIsrCost)
{
    Tick done = 0;
    stack->raiseInterrupt([&] { done = sys->curTick(); });
    run();
    EXPECT_GT(done, 0u);
    EXPECT_EQ(cluster->totalInterrupts(), 1u);
}

TEST_F(StackTest, SubmitWithRetryDrainsInOrder)
{
    IpParams p = defaultIpParams(IpKind::VD);
    p.clockHz = 1e9;
    p.bytesPerCycle = 4.0;
    p.hwQueueDepth = 2;
    IpCore ip(*sys, "t.ip", p, *sa, *ledger);

    std::vector<int> order;
    for (int i = 0; i < 6; ++i) {
        StageJob j;
        j.inputBytes = 64_KiB;
        j.outputBytes = 0;
        j.readsMemory = false;
        j.writesMemory = false;
        j.onComplete = [&order, i] { order.push_back(i); };
        stack->submitWithRetry(ip, std::move(j));
    }
    // Hardware queue holds 2 + 1 running; the rest wait in software.
    EXPECT_GT(stack->softwareQueueLength(ip), 0u);
    run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
    EXPECT_EQ(stack->softwareQueueLength(ip), 0u);
}

} // namespace
} // namespace vip
