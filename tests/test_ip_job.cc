/**
 * @file
 * Unit tests for IpCore in job (memory-staged) mode.
 */

#include <gtest/gtest.h>

#include "ip/ip_core.hh"
#include "test_util.hh"

namespace vip
{
namespace
{

using test::PlatformFixture;

class IpJobTest : public PlatformFixture
{
  protected:
    IpCore &
    makeIp(IpParams p, bool ideal_mem = true)
    {
        buildPlatform(ideal_mem);
        ip = std::make_unique<IpCore>(*sys, "t.ip", p, *sa, *ledger);
        return *ip;
    }

    static IpParams
    basicParams()
    {
        IpParams p = defaultIpParams(IpKind::VD);
        p.clockHz = 1e9;
        p.bytesPerCycle = 1.0; // 1 GB/s
        return p;
    }

    std::unique_ptr<IpCore> ip;
};

TEST_F(IpJobTest, SingleJobComputeBoundTiming)
{
    auto &c = makeIp(basicParams());
    Tick done = 0;
    StageJob j;
    j.inputBytes = 64_KiB;
    j.outputBytes = 64_KiB;
    j.readsMemory = false; // isolate compute path
    j.writesMemory = false;
    j.onComplete = [&] { done = sys->curTick(); };
    EXPECT_TRUE(c.submitJob(std::move(j)));
    run();
    // 64 KiB at 1 B/cycle @ 1 GHz = 65.536 us of compute.
    EXPECT_GE(done, fromUs(65.5));
    EXPECT_LT(done, fromUs(67.0));
    EXPECT_EQ(c.jobsCompleted(), 1u);
}

TEST_F(IpJobTest, QueueDepthIsEnforced)
{
    IpParams p = basicParams();
    p.hwQueueDepth = 7; // the Nexus 7 observation
    auto &c = makeIp(p);
    int accepted = 0;
    for (int i = 0; i < 10; ++i) {
        StageJob j;
        j.inputBytes = 1_MiB;
        j.outputBytes = 1_MiB;
        j.readsMemory = false;
        j.writesMemory = false;
        accepted += c.submitJob(std::move(j)) ? 1 : 0;
    }
    // One started immediately (leaving the queue), then 7 queued.
    EXPECT_EQ(accepted, 8);
    EXPECT_TRUE(c.queueFull());
    run();
    EXPECT_EQ(c.jobsCompleted(), 8u);
    EXPECT_FALSE(c.queueFull());
}

TEST_F(IpJobTest, DrainCallbackFiresOnCompletion)
{
    auto &c = makeIp(basicParams());
    int drains = 0;
    c.setQueueDrainCb([&] { ++drains; });
    for (int i = 0; i < 3; ++i) {
        StageJob j;
        j.inputBytes = 4096;
        j.outputBytes = 4096;
        j.readsMemory = false;
        j.writesMemory = false;
        c.submitJob(std::move(j));
    }
    run();
    EXPECT_EQ(drains, 3);
}

TEST_F(IpJobTest, JobsCompleteFifoByDefault)
{
    auto &c = makeIp(basicParams());
    std::vector<int> order;
    for (int i = 0; i < 3; ++i) {
        StageJob j;
        j.inputBytes = 4096;
        j.outputBytes = 0;
        j.readsMemory = false;
        j.writesMemory = false;
        j.deadline = fromMs(10 - i); // reverse deadlines
        j.onComplete = [&order, i] { order.push_back(i); };
        c.submitJob(std::move(j));
    }
    run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_F(IpJobTest, EdfPolicyReordersQueuedJobs)
{
    IpParams p = basicParams();
    p.sched = SchedPolicy::EDF;
    auto &c = makeIp(p);
    std::vector<int> order;
    for (int i = 0; i < 3; ++i) {
        StageJob j;
        j.inputBytes = 64_KiB;
        j.outputBytes = 0;
        j.readsMemory = false;
        j.writesMemory = false;
        j.deadline = fromMs(10 - i); // job 2 most urgent
        j.onComplete = [&order, i] { order.push_back(i); };
        c.submitJob(std::move(j));
    }
    run();
    // Job 0 starts immediately (queue empty), then EDF picks 2, 1.
    EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST_F(IpJobTest, MemoryReadsGateCompute)
{
    // With a slow link, the memory-bound job takes longer than its
    // pure compute time and the IP records stall time.
    IpParams p = basicParams();
    SaConfig slow;
    slow.bytesPerNs = 0.1; // 100 MB/s
    buildPlatform(false, DramConfig{}, slow);
    ip = std::make_unique<IpCore>(*sys, "t.ip", p, *sa, *ledger);

    Tick done = 0;
    StageJob j;
    j.inputBytes = 256_KiB;
    j.outputBytes = 256_KiB;
    j.readsMemory = true;
    j.writesMemory = true;
    j.onComplete = [&] { done = sys->curTick(); };
    ip->submitJob(std::move(j));
    run();
    // Compute alone would be ~262 us; the 100 MB/s link needs ~2.6 ms
    // per direction.
    EXPECT_GT(done, fromMs(2.0));
    EXPECT_GT(ip->stallTicks(), 0u);
    EXPECT_LT(ip->utilization(), 0.5);
}

TEST_F(IpJobTest, IdealMemoryGivesNearFullUtilization)
{
    auto &c = makeIp(basicParams(), /*ideal_mem=*/true);
    StageJob j;
    j.inputBytes = 1_MiB;
    j.outputBytes = 1_MiB;
    j.onComplete = nullptr;
    c.submitJob(std::move(j));
    run();
    // Fig 3b: with ideal memory utilization approaches 100%.
    EXPECT_GT(c.utilization(), 0.9);
}

TEST_F(IpJobTest, SourceJobNeedsNoReads)
{
    auto &c = makeIp(basicParams());
    Tick done = 0;
    StageJob j;
    j.inputBytes = 128_KiB; // sensor data, materializes internally
    j.outputBytes = 128_KiB;
    j.readsMemory = false;
    j.writesMemory = true;
    j.onComplete = [&] { done = sys->curTick(); };
    c.submitJob(std::move(j));
    run();
    EXPECT_GT(done, 0u);
    EXPECT_EQ(mem->bytesRead(), 0u);
    EXPECT_EQ(mem->bytesWritten(), 128_KiB + 0u);
}

TEST_F(IpJobTest, SinkJobWritesNothing)
{
    auto &c = makeIp(basicParams());
    StageJob j;
    j.inputBytes = 128_KiB;
    j.outputBytes = 0;
    j.readsMemory = true;
    j.writesMemory = false;
    c.submitJob(std::move(j));
    run();
    EXPECT_EQ(mem->bytesWritten(), 0u);
    EXPECT_EQ(mem->bytesRead(), 128_KiB + 0u);
}

TEST_F(IpJobTest, OnStartFiresBeforeOnComplete)
{
    auto &c = makeIp(basicParams());
    std::vector<int> order;
    StageJob j;
    j.inputBytes = 4096;
    j.outputBytes = 0;
    j.readsMemory = false;
    j.writesMemory = false;
    j.onStart = [&] { order.push_back(1); };
    j.onComplete = [&] { order.push_back(2); };
    c.submitJob(std::move(j));
    run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(IpJobTest, EnergyFollowsActivity)
{
    auto &c = makeIp(basicParams());
    StageJob j;
    j.inputBytes = 1_MiB;
    j.outputBytes = 1_MiB;
    j.readsMemory = false;
    j.writesMemory = false;
    c.submitJob(std::move(j));
    run(fromMs(5)); // short horizon keeps idle energy negligible
    ledger->closeAll(sys->curTick());
    double nj = ledger->categoryNj("ip");
    double expect =
        c.params().power.activeWatts * toSec(c.activeTicks()) * 1e9;
    EXPECT_NEAR(nj, expect, expect * 0.2);
}

} // namespace
} // namespace vip
