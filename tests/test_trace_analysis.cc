/**
 * @file
 * Tests for the offline trace-analysis toolkit and the stats Formula.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "app/trace_analysis.hh"
#include "core/simulation.hh"
#include "stats/stats.hh"

namespace vip
{
namespace
{

FrameTrace
syntheticTrace()
{
    // Two flows at 60 FPS; flow B misses frames 2-4 (a jank burst)
    // and drops frame 4.
    FrameTrace t;
    for (int flow = 0; flow < 2; ++flow) {
        for (int k = 0; k < 8; ++k) {
            FrameEvent e;
            e.flowId = flow;
            e.flowName = flow == 0 ? "video" : "preview";
            e.frameId = k;
            e.generated = fromMs(k * 16.0);
            e.started = e.generated + fromMs(1);
            e.deadline = e.generated + fromMs(20);
            bool miss = flow == 1 && k >= 2 && k <= 4;
            e.completed =
                e.started + (miss ? fromMs(30) : fromMs(10));
            e.violated = miss;
            e.dropped = flow == 1 && k == 4;
            t.record(e);
        }
    }
    return t;
}

TEST(TraceAnalysis, PerFlowAggregates)
{
    auto trace = syntheticTrace();
    TraceAnalysis ta(trace);
    auto stats = ta.perFlow();
    ASSERT_EQ(stats.size(), 2u);

    const auto &video = stats.at("video");
    EXPECT_EQ(video.frames, 8u);
    EXPECT_EQ(video.violations, 0u);
    EXPECT_DOUBLE_EQ(video.meanFlowTimeMs, 10.0);
    EXPECT_EQ(video.worstJankRun, 0u);

    const auto &prev = stats.at("preview");
    EXPECT_EQ(prev.violations, 3u);
    EXPECT_EQ(prev.drops, 1u);
    EXPECT_EQ(prev.worstJankRun, 3u);
    EXPECT_GT(prev.p95FlowTimeMs, video.p95FlowTimeMs);
    EXPECT_DOUBLE_EQ(prev.maxFlowTimeMs, 30.0);
}

TEST(TraceAnalysis, Percentiles)
{
    auto trace = syntheticTrace();
    TraceAnalysis ta(trace);
    // 13 of 16 frames at 10 ms, 3 at 30 ms.
    EXPECT_DOUBLE_EQ(ta.flowTimePercentileMs(0.5), 10.0);
    EXPECT_DOUBLE_EQ(ta.flowTimePercentileMs(1.0), 30.0);
    EXPECT_THROW(ta.flowTimePercentileMs(0.0), SimPanic);
}

TEST(TraceAnalysis, RejudgeWithLooserDeadline)
{
    auto trace = syntheticTrace();
    TraceAnalysis ta(trace);
    // Original policy (20 ms ~ 1.25 periods): 3 misses.  A 3-period
    // (48 ms) policy forgives all of them; a 0.5-period (8 ms) policy
    // condemns every frame (completion is 11 ms at best).
    auto strict = ta.rejudge(0.5);
    auto loose = ta.rejudge(3.0);
    EXPECT_EQ(loose.first, 0u);
    EXPECT_EQ(strict.first, 16u);
    EXPECT_GE(strict.second, 3u); // the 30 ms frames drop too
}

TEST(TraceAnalysis, JankEventsCountBursts)
{
    auto trace = syntheticTrace();
    TraceAnalysis ta(trace);
    EXPECT_EQ(ta.jankEvents(2), 1u); // one burst of 3
    EXPECT_EQ(ta.jankEvents(1), 1u);
    EXPECT_EQ(ta.jankEvents(4), 0u);
}

TEST(TraceAnalysis, WorksOnRealSimulationTrace)
{
    SocConfig cfg;
    cfg.system = SystemConfig::IpToIpBurst;
    cfg.simSeconds = 0.25;
    cfg.recordTrace = true;
    Simulation sim(cfg, WorkloadCatalog::byIndex(7));
    auto s = sim.run();
    TraceAnalysis ta(s.trace);
    auto per = ta.perFlow();
    EXPECT_GE(per.size(), 2u);
    std::uint64_t frames = 0;
    for (const auto &[name, fs] : per)
        frames += fs.frames;
    EXPECT_EQ(frames, s.trace.size());
    // Re-judging with the same 1.25-period policy the platform used
    // must reproduce the recorded violation count.
    auto re = ta.rejudge(1.25);
    EXPECT_EQ(re.first, s.trace.countViolations());
}

TEST(Formula, EvaluatesAtPrintTime)
{
    stats::Group g("t");
    stats::Scalar hits(g, "hits", "h");
    stats::Scalar total(g, "total", "t");
    stats::Formula rate(g, "hitRate", "hits / total", [&] {
        return total.value() > 0 ? hits.value() / total.value() : 0.0;
    });

    hits += 3;
    total += 4;
    EXPECT_DOUBLE_EQ(rate.value(), 0.75);
    hits += 1;
    EXPECT_DOUBLE_EQ(rate.value(), 1.0);

    std::ostringstream os;
    g.print(os);
    EXPECT_NE(os.str().find("t.hitRate"), std::string::npos);
}

TEST(Formula, RequiresCallable)
{
    stats::Group g("t");
    EXPECT_THROW(stats::Formula(g, "bad", "x", nullptr), SimPanic);
}

} // namespace
} // namespace vip
