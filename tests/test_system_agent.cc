/**
 * @file
 * Unit tests for the System Agent interconnect model.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace vip
{
namespace
{

using test::PlatformFixture;

class SaTest : public PlatformFixture
{
};

TEST_F(SaTest, PeerTransferTakesBandwidthPlusHop)
{
    SaConfig cfg;
    cfg.bytesPerNs = 32.0;
    cfg.hopLatency = fromNs(40);
    buildPlatform(true, DramConfig{}, cfg);

    Tick done = 0;
    sa->peerTransfer(3200, [&] { done = sys->curTick(); });
    run();
    EXPECT_EQ(done, fromNs(3200 / 32.0) + fromNs(40));
    EXPECT_EQ(sa->peerBytes(), 3200u);
}

TEST_F(SaTest, TransfersSerializeOnTheLink)
{
    SaConfig cfg;
    cfg.bytesPerNs = 32.0;
    cfg.hopLatency = 0;
    buildPlatform(true, DramConfig{}, cfg);

    Tick first = 0, second = 0;
    sa->peerTransfer(3200, [&] { first = sys->curTick(); });
    sa->peerTransfer(3200, [&] { second = sys->curTick(); });
    run();
    EXPECT_EQ(first, fromNs(100));
    EXPECT_EQ(second, fromNs(200)); // queued behind the first
}

TEST_F(SaTest, SignalsHaveLatencyButNoOccupancy)
{
    SaConfig cfg;
    cfg.signalLatency = fromNs(20);
    buildPlatform(true, DramConfig{}, cfg);

    Tick a = 0, b = 0;
    sa->signal([&] { a = sys->curTick(); });
    sa->signal([&] { b = sys->curTick(); });
    run();
    EXPECT_EQ(a, fromNs(20));
    EXPECT_EQ(b, fromNs(20)); // no serialization
    EXPECT_EQ(sa->signalsSent(), 2u);
    EXPECT_EQ(sa->bytesMoved(), 0u);
}

TEST_F(SaTest, MemoryAccessRoutesThroughDram)
{
    buildPlatform(/*ideal=*/true);
    Tick done = 0;
    MemRequest req;
    req.addr = 0;
    req.bytes = 1024;
    req.onComplete = [&] { done = sys->curTick(); };
    sa->memoryAccess(std::move(req));
    run();
    // SA occupancy + hop + ideal DRAM latency.
    SaConfig sc;
    DramConfig dc;
    Tick expect = fromNs(1024 / sc.bytesPerNs) + sc.hopLatency +
                  dc.idealLatency;
    EXPECT_EQ(done, expect);
    EXPECT_EQ(mem->bytesRead(), 1024u);
}

TEST_F(SaTest, UtilizationReflectsBusyTime)
{
    SaConfig cfg;
    cfg.bytesPerNs = 1.0; // slow link
    cfg.hopLatency = 0;
    buildPlatform(true, DramConfig{}, cfg);
    sa->peerTransfer(1000, [] {});
    run(fromNs(2000));
    EXPECT_NEAR(sa->utilization(), 0.5, 0.01);
}

TEST_F(SaTest, EnergyPerByteAccrues)
{
    buildPlatform(true);
    double before = ledger->categoryNj("sa");
    sa->peerTransfer(1_MiB, [] {});
    run();
    ledger->closeAll(sys->curTick());
    SaConfig sc;
    EXPECT_GE(ledger->categoryNj("sa") - before,
              sc.power.energyPerByteNj * 1_MiB);
}

} // namespace
} // namespace vip
