#!/bin/sh
# Fleet chaos matrix: run the same small sweep under deterministic
# transport fault injection -- dropped/delayed/duplicated ops, lying
# fetch checksums, a partition long enough to expire leases and
# reassign work, a mid-sweep host death with a surviving host, and a
# full ssh-transport round trip through the fake_ssh stub -- and gate
# every scenario on the merged outputs being bit-identical to an
# uninjected run.  Faults may cost retries and reassignments; they
# must never change a byte of the results.
#
# Usage: tests/fleet_chaos.sh [build-dir] [work-dir]
set -eu

BUILD=${1:-build}
WORK=${2:-fleet-chaos-out}
VIP_SIM="$BUILD/tools/vip_sim"
VIP_FLEET="$BUILD/tools/vip_fleet"
STATS_DIFF="$BUILD/tools/vip_stats_diff"
SRCDIR=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
FAKE_SSH="$SRCDIR/fake_ssh.sh"

for bin in "$VIP_SIM" "$VIP_FLEET" "$STATS_DIFF"; do
    [ -x "$bin" ] || { echo "missing binary: $bin" >&2; exit 2; }
done
[ -x "$FAKE_SSH" ] || { echo "missing $FAKE_SSH" >&2; exit 2; }

# Absolute paths: ssh-transport attempt dirs are resolved remotely.
case "$VIP_SIM" in /*) ;; *) VIP_SIM="$(pwd)/$VIP_SIM";; esac
case "$WORK" in /*) ;; *) WORK="$(pwd)/$WORK";; esac

rm -rf "$WORK"
mkdir -p "$WORK"

# quarantine_after is high on purpose: the probability scenarios
# inject failures continuously, and this matrix gates *result
# integrity* under flakiness, not the quarantine path (the host-death
# scenario and the unit tests cover that).  fetch_retries absorbs
# corrupt-checksum streaks; lease_ms is short enough that a partition
# provably expires a lease.
cat > "$WORK/spec.json" <<'EOF'
{
  "name": "chaos-matrix",
  "seconds": 0.3,
  "configs": ["vip"],
  "workloads": ["A1", "W1"],
  "seeds": [1, 2],
  "audit": "periodic:1",
  "fleet": {
    "workers": 2,
    "max_attempts": 4,
    "backoff_base_ms": 20,
    "backoff_cap_ms": 200,
    "heartbeat_deadline_ms": 30000,
    "heartbeat_interval_ms": 1.0,
    "checkpoint_every_ms": 20,
    "resume": true,
    "digests": true,
    "lease_ms": 600,
    "quarantine_after": 1000,
    "fetch_retries": 6
  }
}
EOF

JOBS="vip-A1-s1 vip-A1-s2 vip-W1-s1 vip-W1-s2"

# gate <run-dir> : every job done, nothing failed, and every shard's
# stats + digest stream (and the merged aggregate) bit-identical to
# the clean run.
gate() {
    run=$1
    python3 - "$run/report.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
s = r["summary"]
assert s["jobs"] == 4 and s["done"] == 4, s
assert s["failed"] == 0, s
assert not r.get("fatal"), r.get("fatal")
print("report: 4/4 done (retries=%d lease_expiries=%d "
      "zombie_rejects=%d zombie_rescues=%d)"
      % (s["retries"], s["lease_expiries"], s["zombie_rejects"],
         s["zombie_rescues"]))
EOF
    for j in $JOBS; do
        "$STATS_DIFF" "$WORK/clean/shards/$j/stats.json" \
            "$run/shards/$j/stats.json"
        cmp "$WORK/clean/shards/$j/digest.dig" \
            "$run/shards/$j/digest.dig"
    done
    cmp "$WORK/clean/aggregate.json" "$run/aggregate.json"
}

echo "== clean reference sweep"
"$VIP_FLEET" --spec "$WORK/spec.json" --out "$WORK/clean" \
    --vip-sim "$VIP_SIM" --heartbeat-grace-ms 500 --quiet
test -s "$WORK/clean/report.json"
test -s "$WORK/clean/aggregate.json"

echo "== chaos: dropped + delayed + duplicated ops"
"$VIP_FLEET" --spec "$WORK/spec.json" --out "$WORK/flaky" \
    --vip-sim "$VIP_SIM" --fault 'seed=7,drop=0.2,delay=0.2,dup=0.2' \
    --quiet
gate "$WORK/flaky"

echo "== chaos: corrupted fetch checksums"
"$VIP_FLEET" --spec "$WORK/spec.json" --out "$WORK/corrupt" \
    --vip-sim "$VIP_SIM" --fault 'seed=11,corrupt=0.25' --quiet
gate "$WORK/corrupt"

echo "== chaos: partition expires a lease and reassigns the job"
"$VIP_FLEET" --spec "$WORK/spec.json" --out "$WORK/partition" \
    --vip-sim "$VIP_SIM" --fault 'partition@1+250' --quiet
gate "$WORK/partition"
python3 - "$WORK/partition/report.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
s = r["summary"]
assert s["lease_expiries"] >= 1, s
assert r["reassigned_jobs"], "no reassigned work enumerated"
assert s["zombie_rejects"] + s["zombie_rescues"] >= 0
print("partition: lease_expiries=%d reassigned=%s"
      % (s["lease_expiries"], ",".join(r["reassigned_jobs"])))
EOF

echo "== chaos: one host dies mid-sweep, the survivor finishes"
cat > "$WORK/die-hosts.json" <<'EOF'
{ "hosts": [
    { "name": "mortal", "transport": "process", "slots": 1,
      "fault": "dieMs=350" },
    { "name": "survivor", "transport": "process", "slots": 1 } ] }
EOF
"$VIP_FLEET" --spec "$WORK/spec.json" --out "$WORK/die" \
    --vip-sim "$VIP_SIM" --hosts "$WORK/die-hosts.json" --quiet
gate "$WORK/die"

echo "== ssh transport round trip (fake_ssh, no network)"
cat > "$WORK/ssh-hosts.json" <<EOF
{ "hosts": [
    { "name": "pseudo-remote", "transport": "ssh", "slots": 2,
      "ssh": ["$FAKE_SSH", "pseudo-remote"],
      "remote_dir": "$WORK/ssh-remote",
      "vip_sim": "$VIP_SIM",
      "op_timeout_ms": 60000, "op_retries": 3 } ] }
EOF
"$VIP_FLEET" --spec "$WORK/spec.json" --out "$WORK/ssh" \
    --vip-sim "$VIP_SIM" --hosts "$WORK/ssh-hosts.json" --quiet
gate "$WORK/ssh"

echo "fleet chaos matrix: PASS"
