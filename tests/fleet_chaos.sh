#!/bin/sh
# Fleet chaos matrix: run the same small sweep under deterministic
# transport fault injection -- dropped/delayed/duplicated ops, lying
# fetch checksums, a partition long enough to expire leases and
# reassign work, a mid-sweep host death with a surviving host, and a
# full ssh-transport round trip through the fake_ssh stub -- and gate
# every scenario on the merged outputs being bit-identical to an
# uninjected run.  Faults may cost retries and reassignments; they
# must never change a byte of the results.
#
# Usage: tests/fleet_chaos.sh [build-dir] [work-dir]
set -eu

BUILD=${1:-build}
WORK=${2:-fleet-chaos-out}
VIP_SIM="$BUILD/tools/vip_sim"
VIP_FLEET="$BUILD/tools/vip_fleet"
STATS_DIFF="$BUILD/tools/vip_stats_diff"
SRCDIR=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
FAKE_SSH="$SRCDIR/fake_ssh.sh"

for bin in "$VIP_SIM" "$VIP_FLEET" "$STATS_DIFF"; do
    [ -x "$bin" ] || { echo "missing binary: $bin" >&2; exit 2; }
done
[ -x "$FAKE_SSH" ] || { echo "missing $FAKE_SSH" >&2; exit 2; }

# Absolute paths: ssh-transport attempt dirs are resolved remotely.
case "$VIP_SIM" in /*) ;; *) VIP_SIM="$(pwd)/$VIP_SIM";; esac
case "$WORK" in /*) ;; *) WORK="$(pwd)/$WORK";; esac

rm -rf "$WORK"
mkdir -p "$WORK"

# quarantine_after is high on purpose: the probability scenarios
# inject failures continuously, and this matrix gates *result
# integrity* under flakiness, not the quarantine path (the host-death
# scenario and the unit tests cover that).  fetch_retries absorbs
# corrupt-checksum streaks; lease_ms is short enough that a partition
# provably expires a lease.
cat > "$WORK/spec.json" <<'EOF'
{
  "name": "chaos-matrix",
  "seconds": 0.3,
  "configs": ["vip"],
  "workloads": ["A1", "W1"],
  "seeds": [1, 2],
  "audit": "periodic:1",
  "fleet": {
    "workers": 2,
    "max_attempts": 4,
    "backoff_base_ms": 20,
    "backoff_cap_ms": 200,
    "heartbeat_deadline_ms": 30000,
    "heartbeat_interval_ms": 1.0,
    "checkpoint_every_ms": 20,
    "resume": true,
    "digests": true,
    "lease_ms": 600,
    "quarantine_after": 1000,
    "fetch_retries": 6
  }
}
EOF

JOBS="vip-A1-s1 vip-A1-s2 vip-W1-s1 vip-W1-s2"

# journal_gate <run-dir> : the supervisor's journal.jsonl is
# well-formed (every line parses, seq strictly increasing from 0,
# wall_ms nondecreasing, sweep_start first / sweep_end last) and its
# ownership story is coherent: per-job launch tokens strictly
# increase, every commit cites a token that was actually launched,
# every job commits exactly once, and no launch reuses a token whose
# lease already expired.  The final fleet-status.json must agree with
# the spec's job count.
journal_gate() {
    python3 - "$1" <<'EOF'
import json, sys, collections
run = sys.argv[1]
recs = []
for line in open(run + "/journal.jsonl"):
    recs.append(json.loads(line))
assert recs, "empty journal"
assert [r["seq"] for r in recs] == list(range(len(recs))), \
    "seq not dense-monotonic"
walls = [r["wall_ms"] for r in recs]
assert all(a <= b for a, b in zip(walls, walls[1:])), \
    "wall_ms went backwards"
assert recs[0]["type"] == "sweep_start", recs[0]
assert recs[-1]["type"] == "sweep_end", recs[-1]

launches = collections.defaultdict(list)
commits = collections.defaultdict(list)
expired = set()
for r in recs:
    t = r["type"]
    if t == "launch":
        assert not launches[r["job"]] or \
            r["token"] > launches[r["job"]][-1], \
            ("token not increasing", r)
        assert (r["job"], r["token"]) not in expired, \
            ("relaunched an expired token", r)
        launches[r["job"]].append(r["token"])
    elif t in ("commit", "zombie_rescue"):
        # A rescue is the commit path for a post-expiry attempt whose
        # job was never reissued; either way the job settles once.
        assert r["token"] in launches[r["job"]], ("orphan commit", r)
        commits[r["job"]].append(r["token"])
    elif t == "lease_expiry":
        expired.add((r["job"], r["token"]))

summ = json.load(open(run + "/report.json"))["summary"]
for j, c in commits.items():
    assert len(c) == 1, ("job committed twice", j, c)
assert len(commits) == summ["done"], (len(commits), summ["done"])
exp = sum(1 for r in recs if r["type"] == "lease_expiry")
assert exp == summ["lease_expiries"], (exp, summ["lease_expiries"])

st = json.load(open(run + "/fleet-status.json"))
assert st["kind"] == "vip-fleet-status" and st["final"], st
jb = st["jobs"]
assert jb["pending"] + jb["running"] + jb["backoff"] + jb["done"] \
    + jb["failed"] == jb["total"] == summ["jobs"], jb
print("journal: %d records, %d launches, %d commits, %d expiries"
      % (len(recs), sum(map(len, launches.values())),
         len(commits), exp))
EOF
}

# gate <run-dir> : every job done, nothing failed, the journal and
# status snapshot are coherent, and every shard's stats + digest
# stream (and the merged aggregate) bit-identical to the clean run.
gate() {
    run=$1
    python3 - "$run/report.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
s = r["summary"]
assert s["jobs"] == 4 and s["done"] == 4, s
assert s["failed"] == 0, s
assert not r.get("fatal"), r.get("fatal")
print("report: 4/4 done (retries=%d lease_expiries=%d "
      "zombie_rejects=%d zombie_rescues=%d)"
      % (s["retries"], s["lease_expiries"], s["zombie_rejects"],
         s["zombie_rescues"]))
EOF
    journal_gate "$run"
    for j in $JOBS; do
        "$STATS_DIFF" "$WORK/clean/shards/$j/stats.json" \
            "$run/shards/$j/stats.json"
        cmp "$WORK/clean/shards/$j/digest.dig" \
            "$run/shards/$j/digest.dig"
    done
    cmp "$WORK/clean/aggregate.json" "$run/aggregate.json"
}

echo "== clean reference sweep"
"$VIP_FLEET" --spec "$WORK/spec.json" --out "$WORK/clean" \
    --vip-sim "$VIP_SIM" --heartbeat-grace-ms 500 --quiet
test -s "$WORK/clean/report.json"
test -s "$WORK/clean/aggregate.json"
journal_gate "$WORK/clean"

echo "== chaos: dropped + delayed + duplicated ops"
"$VIP_FLEET" --spec "$WORK/spec.json" --out "$WORK/flaky" \
    --vip-sim "$VIP_SIM" --fault 'seed=7,drop=0.2,delay=0.2,dup=0.2' \
    --quiet
gate "$WORK/flaky"

echo "== chaos: corrupted fetch checksums"
"$VIP_FLEET" --spec "$WORK/spec.json" --out "$WORK/corrupt" \
    --vip-sim "$VIP_SIM" --fault 'seed=11,corrupt=0.25' --quiet
gate "$WORK/corrupt"

echo "== chaos: partition expires a lease and reassigns the job"
"$VIP_FLEET" --spec "$WORK/spec.json" --out "$WORK/partition" \
    --vip-sim "$VIP_SIM" --fault 'partition@1+250' --quiet
gate "$WORK/partition"
python3 - "$WORK/partition" <<'EOF'
import json, sys
run = sys.argv[1]
r = json.load(open(run + "/report.json"))
s = r["summary"]
assert s["lease_expiries"] >= 1, s
assert r["reassigned_jobs"], "no reassigned work enumerated"
assert s["zombie_rejects"] + s["zombie_rescues"] >= 0
# The journal must tell the same reassignment story: after every
# lease_expiry the job relaunches under a strictly newer token, and
# any zombie_reject cites the expired (stale) token.
recs = [json.loads(l) for l in open(run + "/journal.jsonl")]
for i, e in enumerate(recs):
    if e["type"] != "lease_expiry":
        continue
    later = [x for x in recs[i + 1:]
             if x["type"] == "launch" and x["job"] == e["job"]]
    # ... unless the orphaned attempt itself finished first and was
    # rescued (no newer token was ever issued).
    rescued = [x for x in recs[i + 1:]
               if x["type"] == "zombie_rescue"
               and x["job"] == e["job"]]
    done = [x for x in recs[:i]
            if x["type"] == "commit" and x["job"] == e["job"]]
    assert later or rescued or done, \
        ("expired lease never reassigned", e)
    assert all(x["token"] > e["token"] for x in later), (e, later)
stale = {(z["job"], z["token"]) for z in recs
         if z["type"] == "zombie_reject"}
exp = {(e["job"], e["token"]) for e in recs
       if e["type"] == "lease_expiry"}
assert stale <= exp, ("zombie_reject without lease_expiry",
                      stale - exp)
print("partition: lease_expiries=%d reassigned=%s"
      % (s["lease_expiries"], ",".join(r["reassigned_jobs"])))
EOF

echo "== chaos: one host dies mid-sweep, the survivor finishes"
cat > "$WORK/die-hosts.json" <<'EOF'
{ "hosts": [
    { "name": "mortal", "transport": "process", "slots": 1,
      "fault": "dieMs=350" },
    { "name": "survivor", "transport": "process", "slots": 1 } ] }
EOF
"$VIP_FLEET" --spec "$WORK/spec.json" --out "$WORK/die" \
    --vip-sim "$VIP_SIM" --hosts "$WORK/die-hosts.json" --quiet
gate "$WORK/die"

echo "== chaos: quarantine journal (dead host scored out at 2 strikes)"
# Same mortal/survivor roster, but a hair-trigger quarantine_after so
# the dying host walks the full health state machine — quarantine,
# re-admission probes, dead — and the journal records every step.
python3 - "$WORK/spec.json" "$WORK/spec-quar.json" <<'EOF'
import json, sys
spec = json.load(open(sys.argv[1]))
spec["fleet"]["quarantine_after"] = 2
json.dump(spec, open(sys.argv[2], "w"))
EOF
"$VIP_FLEET" --spec "$WORK/spec-quar.json" --out "$WORK/quar" \
    --vip-sim "$VIP_SIM" --hosts "$WORK/die-hosts.json" --quiet
gate "$WORK/quar"
python3 - "$WORK/quar/journal.jsonl" <<'EOF'
import json, sys
recs = [json.loads(l) for l in open(sys.argv[1])]
quars = [r for r in recs if r["type"] == "quarantine"]
assert quars, "no quarantine record for the dying host"
assert all(r["host"] == "mortal" for r in quars), quars
end = recs[-1]
assert end["hosts_quarantined"] >= 1, end
# Once the journal declares the host dead, it must never launch
# another attempt there.
dead_at = [r["seq"] for r in recs if r["type"] == "host_dead"]
if dead_at:
    after = [r for r in recs if r["seq"] > dead_at[0]
             and r["type"] == "launch" and r["host"] == "mortal"]
    assert not after, ("launch on a dead host", after)
probes = [r for r in recs if r["type"] == "probe"]
print("quarantine journal: %d quarantines, %d probes, dead=%s"
      % (len(quars), len(probes), bool(dead_at)))
EOF
cat > "$WORK/ssh-hosts.json" <<EOF
{ "hosts": [
    { "name": "pseudo-remote", "transport": "ssh", "slots": 2,
      "ssh": ["$FAKE_SSH", "pseudo-remote"],
      "remote_dir": "$WORK/ssh-remote",
      "vip_sim": "$VIP_SIM",
      "op_timeout_ms": 60000, "op_retries": 3 } ] }
EOF
"$VIP_FLEET" --spec "$WORK/spec.json" --out "$WORK/ssh" \
    --vip-sim "$VIP_SIM" --hosts "$WORK/ssh-hosts.json" --quiet
gate "$WORK/ssh"

echo "fleet chaos matrix: PASS"
