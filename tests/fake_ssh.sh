#!/bin/sh
# Hermetic ssh stand-in for RemoteTransport tests: behaves like
# `ssh [options] <host> <command>` but ignores everything except the
# final argument (the remote command) and runs it locally through
# /bin/sh.  stdin/stdout/stderr and the exit code pass through, which
# is all the transport relies on -- so the full stage-out / launch /
# fetch-back / checksum-verify path is exercisable with no network,
# no keys, and no sshd.
for arg in "$@"; do cmd="$arg"; done
[ -n "$cmd" ] || exit 255
exec /bin/sh -c "$cmd"
