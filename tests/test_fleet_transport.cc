/**
 * @file
 * Fleet transport tests: artifact integrity helpers (FNV-1a, atomic
 * writes, checksum-verified copies, local manifests), bounded
 * subprocess capture, the FaultSpec grammar, deterministic fault
 * injection through FaultyTransport, the host health state machine,
 * the --hosts roster parser, and a hermetic RemoteTransport probe
 * through a fake-ssh stub.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "fleet/health.hh"
#include "fleet/hosts.hh"
#include "fleet/transport/artifact.hh"
#include "fleet/transport/faulty_transport.hh"
#include "fleet/transport/remote_transport.hh"
#include "fleet/transport/subprocess.hh"

namespace vip
{
namespace fleet
{
namespace
{

namespace fs = std::filesystem;

class TransportTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _dir = fs::temp_directory_path() /
               ("vip-transport-" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(_dir);
        fs::create_directories(_dir);
    }

    void TearDown() override { fs::remove_all(_dir); }

    std::string
    path(const std::string &name) const
    {
        return (_dir / name).string();
    }

    std::string
    write(const std::string &name, const std::string &content) const
    {
        const std::string p = path(name);
        fs::create_directories(fs::path(p).parent_path());
        std::ofstream(p, std::ios::binary) << content;
        return p;
    }

    fs::path _dir;
};

std::string
readFile(const std::string &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

// ---------------------------------------------------------------
// FNV-1a and atomic publication.
// ---------------------------------------------------------------

TEST(ArtifactFnv, MatchesKnownVectors)
{
    EXPECT_EQ(fnv1aBytes("", 0), kFnvOffsetBasis);
    EXPECT_EQ(fnv1aBytes("a", 1), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1aBytes("foobar", 6), 0x85944171f73967e8ull);
    // Incremental hashing equals one-shot hashing.
    std::uint64_t h = kFnvOffsetBasis;
    h = fnv1aAccum(h, "foo", 3);
    h = fnv1aAccum(h, "bar", 3);
    EXPECT_EQ(h, fnv1aBytes("foobar", 6));
}

TEST(ArtifactFnv, HexRoundTripsAndRejectsGarbage)
{
    const std::uint64_t h = 0x85944171f73967e8ull;
    EXPECT_EQ(fnvHex(h), "85944171f73967e8");
    std::uint64_t back = 0;
    ASSERT_TRUE(parseFnvHex(fnvHex(h), &back));
    EXPECT_EQ(back, h);
    EXPECT_TRUE(parseFnvHex("0000000000000000", &back));
    EXPECT_FALSE(parseFnvHex("", &back));
    EXPECT_FALSE(parseFnvHex("85944171f73967e", &back));   // short
    EXPECT_FALSE(parseFnvHex("85944171f73967e8a", &back)); // long
    EXPECT_FALSE(parseFnvHex("8594417_f73967e8", &back));  // bad char
}

TEST_F(TransportTest, FnvFileReportsUnreadable)
{
    bool ok = true;
    EXPECT_EQ(fnv1aFile(path("nope"), &ok), kFnvOffsetBasis);
    EXPECT_FALSE(ok);
    const std::string p = write("x", "foobar");
    EXPECT_EQ(fnv1aFile(p, &ok), fnv1aBytes("foobar", 6));
    EXPECT_TRUE(ok);
}

TEST_F(TransportTest, AtomicWriteLeavesNoTmpAndOverwrites)
{
    const std::string p = path("report.json");
    std::string err;
    ASSERT_TRUE(writeFileAtomic(p, "first", &err)) << err;
    EXPECT_EQ(readFile(p), "first");
    ASSERT_TRUE(writeFileAtomic(p, "second", &err)) << err;
    EXPECT_EQ(readFile(p), "second");
    EXPECT_FALSE(fs::exists(p + ".tmp"));
    // Unwritable target directory fails cleanly instead of tearing.
    EXPECT_FALSE(writeFileAtomic(path("no/such/dir/f"), "x", &err));
    EXPECT_FALSE(err.empty());
}

TEST_F(TransportTest, VerifiedCopyRefusesChecksumMismatch)
{
    const std::string src = write("src", "payload");
    const std::string dst = path("dst");
    std::string err;
    ASSERT_TRUE(copyFileAtomicVerified(src, dst,
                                       fnv1aBytes("payload", 7),
                                       &err))
        << err;
    EXPECT_EQ(readFile(dst), "payload");

    // A manifest lie (corruption in transit) must not publish.
    const std::string dst2 = path("dst2");
    EXPECT_FALSE(copyFileAtomicVerified(src, dst2, 0xdeadbeefull,
                                        &err));
    EXPECT_FALSE(fs::exists(dst2));
    EXPECT_NE(err.find("checksum"), std::string::npos);
}

TEST_F(TransportTest, LocalManifestChecksumsPresentArtifacts)
{
    write("a1/stats.json", "{}");
    write("a1/pm/checkpoint.vips", "ring");
    ArtifactManifest m;
    std::string err;
    ASSERT_TRUE(localManifest(path("a1"), &m, &err)) << err;

    const Artifact *stats = findArtifact(m, attempt_files::kStats);
    ASSERT_NE(stats, nullptr);
    EXPECT_TRUE(stats->present);
    EXPECT_EQ(stats->fnv, fnv1aBytes("{}", 2));
    EXPECT_EQ(stats->localPath, path("a1") + "/stats.json");

    const Artifact *ckpt =
        findArtifact(m, attempt_files::kCheckpoint);
    ASSERT_NE(ckpt, nullptr);
    EXPECT_TRUE(ckpt->present);

    const Artifact *digest = findArtifact(m, attempt_files::kDigest);
    ASSERT_NE(digest, nullptr);
    EXPECT_FALSE(digest->present); // never produced

    EXPECT_EQ(findArtifact(m, "no-such-artifact"), nullptr);
}

// ---------------------------------------------------------------
// Bounded subprocess capture.
// ---------------------------------------------------------------

TEST(Subprocess, CapturesOutputAndExitCode)
{
    const RunResult r =
        runCapture({"/bin/sh", "-c", "echo hi; exit 3"}, "", 5000.0);
    EXPECT_TRUE(r.started);
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.exitCode, 3);
    EXPECT_EQ(r.out, "hi\n");
}

TEST(Subprocess, TimeoutKillsTheChild)
{
    const RunResult r =
        runCapture({"/bin/sh", "-c", "sleep 30"}, "", 100.0);
    EXPECT_TRUE(r.started);
    EXPECT_TRUE(r.timedOut);
    EXPECT_FALSE(r.ok());
}

TEST(Subprocess, MissingBinaryReportsNotStarted)
{
    const RunResult r = runCapture({"/no/such/binary"}, "", 1000.0);
    EXPECT_FALSE(r.ok());
}

TEST(Subprocess, ShellQuoteSurvivesHostileStrings)
{
    const std::string hostile = "a b'c\"d$e`f;g";
    const RunResult r = runCapture(
        {"/bin/sh", "-c", "printf %s " + shellQuote(hostile)}, "",
        5000.0);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.out, hostile);
}

// ---------------------------------------------------------------
// FaultSpec grammar.
// ---------------------------------------------------------------

TEST(FaultSpecParse, ParsesTheFullGrammar)
{
    FaultSpec f;
    std::string err;
    ASSERT_TRUE(FaultSpec::parse(
        "seed=7,drop=0.25,delay=0.5,dup=0.1,corrupt=0.05,"
        "partition@40+25,die@90",
        &f, &err))
        << err;
    EXPECT_EQ(f.seed, 7u);
    EXPECT_DOUBLE_EQ(f.drop, 0.25);
    EXPECT_DOUBLE_EQ(f.delay, 0.5);
    EXPECT_DOUBLE_EQ(f.dup, 0.1);
    EXPECT_DOUBLE_EQ(f.corrupt, 0.05);
    EXPECT_EQ(f.partitionAtOp, 40);
    EXPECT_EQ(f.partitionOps, 25);
    EXPECT_EQ(f.dieAtOp, 90);

    FaultSpec t;
    ASSERT_TRUE(FaultSpec::parse("partitionMs=100+50,dieMs=400", &t,
                                 &err))
        << err;
    EXPECT_DOUBLE_EQ(t.partitionAtMs, 100.0);
    EXPECT_DOUBLE_EQ(t.partitionMs, 50.0);
    EXPECT_DOUBLE_EQ(t.dieAtMs, 400.0);

    FaultSpec empty;
    ASSERT_TRUE(FaultSpec::parse("", &empty, &err));
    EXPECT_EQ(empty.dieAtOp, -1);
}

TEST(FaultSpecParse, RejectsMalformedSpecs)
{
    FaultSpec f;
    std::string err;
    EXPECT_FALSE(FaultSpec::parse("bogus=1", &f, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(FaultSpec::parse("drop=2.0", &f, &err)); // not a prob
    EXPECT_FALSE(FaultSpec::parse("drop=x", &f, &err));
    EXPECT_FALSE(FaultSpec::parse("partition@", &f, &err));
    EXPECT_FALSE(FaultSpec::parse("partition@5", &f, &err)); // no +M
    EXPECT_FALSE(FaultSpec::parse("die@-1", &f, &err));
}

// ---------------------------------------------------------------
// Deterministic fault injection.
// ---------------------------------------------------------------

/** Minimal always-healthy inner transport that counts calls. */
class StubTransport : public WorkerTransport
{
  public:
    struct StubHandle : WorkerHandle
    {
        bool killed = false;
    };

    const char *kind() const override { return "stub"; }

    std::unique_ptr<WorkerHandle>
    launch(const LaunchRequest &, std::string *) override
    {
        ++launches;
        return std::make_unique<StubHandle>();
    }

    PollResult
    poll(WorkerHandle &h) override
    {
        ++polls;
        PollResult r;
        auto &sh = static_cast<StubHandle &>(h);
        if (sh.killed) {
            r.state = WorkerState::Exited;
            r.termSignal = 9;
            r.error = "killed by signal 9";
        } else {
            r.state = WorkerState::Running;
        }
        return r;
    }

    bool
    heartbeat(WorkerHandle &, HeartbeatInfo *info,
              std::string *) override
    {
        ++heartbeats;
        info->size = 1;
        return true;
    }

    void interrupt(WorkerHandle &) override {}
    void
    forceKill(WorkerHandle &h) override
    {
        static_cast<StubHandle &>(h).killed = true;
    }

    bool
    fetch(WorkerHandle &, ArtifactManifest *out,
          std::string *) override
    {
        ++fetches;
        Artifact a;
        a.name = attempt_files::kStats;
        a.localPath = "unused";
        a.fnv = 0x1234u;
        a.present = true;
        out->assign(1, a);
        return true;
    }

    bool
    probe(std::string *) override
    {
        ++probes;
        return true;
    }

    int launches = 0, polls = 0, heartbeats = 0, fetches = 0,
        probes = 0;
};

FaultyTransport
makeFaulty(StubTransport *&stubOut, const std::string &spec)
{
    auto stub = std::make_unique<StubTransport>();
    stubOut = stub.get();
    FaultSpec f;
    std::string err;
    EXPECT_TRUE(FaultSpec::parse(spec, &f, &err)) << err;
    return FaultyTransport(std::move(stub), f);
}

TEST(FaultyTransportTest, SameSeedSameFaultsDifferentSeedDiffers)
{
    auto sequence = [](const std::string &spec) {
        StubTransport *stub = nullptr;
        FaultyTransport t = makeFaulty(stub, spec);
        std::vector<bool> seq;
        std::string err;
        for (int i = 0; i < 64; ++i)
            seq.push_back(t.probe(&err));
        return seq;
    };
    const auto a = sequence("seed=42,drop=0.5");
    const auto b = sequence("seed=42,drop=0.5");
    const auto c = sequence("seed=43,drop=0.5");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    // The coin is actually biased ~0.5, not stuck.
    int fails = 0;
    for (bool ok : a)
        fails += ok ? 0 : 1;
    EXPECT_GT(fails, 8);
    EXPECT_LT(fails, 56);
}

TEST(FaultyTransportTest, PartitionWindowFailsExactlyThoseOps)
{
    StubTransport *stub = nullptr;
    // Ops 0.. : op0 clean, ops 1-2 partitioned, op3+ clean.
    FaultyTransport t = makeFaulty(stub, "partition@1+2");
    std::string err;
    EXPECT_TRUE(t.probe(&err));  // op 0
    EXPECT_FALSE(t.probe(&err)); // op 1
    EXPECT_NE(err.find("partitioned"), std::string::npos);
    EXPECT_FALSE(t.probe(&err)); // op 2
    EXPECT_TRUE(t.probe(&err));  // op 3
    EXPECT_EQ(t.counters().partitioned, 2);
    EXPECT_EQ(stub->probes, 2); // faulted ops never reach the inner
}

TEST(FaultyTransportTest, DieKillsLiveWorkersAndStaysDead)
{
    StubTransport *stub = nullptr;
    FaultyTransport t = makeFaulty(stub, "die@2");
    std::string err;
    LaunchRequest req;
    auto h = t.launch(req, &err); // op 0
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(t.poll(*h).state, WorkerState::Running); // op 1
    EXPECT_FALSE(t.probe(&err)); // op 2: the host dies here
    EXPECT_NE(err.find("host dead"), std::string::npos);
    EXPECT_TRUE(t.counters().died);
    // The crash killed the live worker underneath...
    EXPECT_EQ(t.poll(*h).state, WorkerState::Unreachable);
    // ...and the host never comes back.
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(t.probe(&err));
    EXPECT_EQ(t.launch(req, &err), nullptr);
}

TEST(FaultyTransportTest, CorruptLiesAboutAFetchChecksum)
{
    StubTransport *stub = nullptr;
    FaultyTransport t = makeFaulty(stub, "corrupt=1.0");
    std::string err;
    LaunchRequest req;
    auto h = t.launch(req, &err);
    ASSERT_NE(h, nullptr);
    ArtifactManifest m;
    ASSERT_TRUE(t.fetch(*h, &m, &err)); // "succeeds"...
    const Artifact *a = findArtifact(m, attempt_files::kStats);
    ASSERT_NE(a, nullptr);
    EXPECT_NE(a->fnv, 0x1234u); // ...but the manifest lies
    EXPECT_GE(t.counters().corrupts, 1);
}

TEST(FaultyTransportTest, DupRunsTheInnerOpTwice)
{
    StubTransport *stub = nullptr;
    FaultyTransport t = makeFaulty(stub, "dup=1.0");
    std::string err;
    EXPECT_TRUE(t.probe(&err));
    EXPECT_EQ(stub->probes, 2); // duplicated delivery
    EXPECT_GE(t.counters().dups, 1);
}

TEST(FaultyTransportTest, LaunchIsExemptFromProbabilityFaults)
{
    StubTransport *stub = nullptr;
    FaultyTransport t = makeFaulty(stub, "drop=1.0");
    std::string err;
    LaunchRequest req;
    EXPECT_NE(t.launch(req, &err), nullptr); // never dropped
    EXPECT_EQ(stub->launches, 1);
    EXPECT_FALSE(t.probe(&err)); // probes are fair game
}

// ---------------------------------------------------------------
// Host health state machine (fake clock).
// ---------------------------------------------------------------

HealthPolicy
tightPolicy()
{
    HealthPolicy hp;
    hp.quarantineAfter = 2;
    hp.probeIntervalMs = 100.0;
    hp.maxProbes = 2;
    hp.maxQuarantines = 2;
    return hp;
}

TEST(HostHealthTest, ConsecutiveFailuresQuarantineSuccessResets)
{
    HostHealth h(tightPolicy());
    EXPECT_TRUE(h.usable());
    EXPECT_FALSE(h.onOpFailure(0.0, "e1"));
    h.onOpSuccess(); // streak broken
    EXPECT_FALSE(h.onOpFailure(1.0, "e2"));
    EXPECT_TRUE(h.usable());
    EXPECT_TRUE(h.onOpFailure(2.0, "e3")); // 2nd consecutive: tips
    EXPECT_EQ(h.state(), HostState::Quarantined);
    EXPECT_FALSE(h.usable());
    EXPECT_EQ(h.quarantines(), 1);
    EXPECT_EQ(h.opFailures(), 3);
    EXPECT_EQ(h.lastError(), "e3");
}

TEST(HostHealthTest, ProbeScheduleWidensAndRecovers)
{
    HostHealth h(tightPolicy());
    h.onOpFailure(0.0, "x");
    h.onOpFailure(0.0, "x"); // quarantined at t=0
    EXPECT_FALSE(h.probeDue(50.0));
    EXPECT_TRUE(h.probeDue(100.0)); // first probe after interval
    EXPECT_FALSE(h.onProbeFailure(100.0, "still down"));
    EXPECT_FALSE(h.probeDue(250.0)); // interval doubled to 200
    EXPECT_TRUE(h.probeDue(300.0));
    h.onProbeSuccess();
    EXPECT_EQ(h.state(), HostState::Healthy);
    EXPECT_TRUE(h.usable());
}

TEST(HostHealthTest, ExhaustedProbesAreFatal)
{
    HostHealth h(tightPolicy());
    h.onOpFailure(0.0, "x");
    h.onOpFailure(0.0, "x");
    EXPECT_FALSE(h.onProbeFailure(100.0, "p1"));
    EXPECT_TRUE(h.onProbeFailure(300.0, "p2")); // maxProbes = 2
    EXPECT_EQ(h.state(), HostState::Dead);
    EXPECT_FALSE(h.probeDue(1e12)); // the dead are not probed
}

TEST(HostHealthTest, FlappingPastMaxQuarantinesIsFatal)
{
    HostHealth h(tightPolicy());
    // Quarantine #1, recover.
    h.onOpFailure(0.0, "x");
    h.onOpFailure(0.0, "x");
    h.onProbeSuccess();
    // Quarantine #2, recover.
    h.onOpFailure(10.0, "x");
    h.onOpFailure(10.0, "x");
    EXPECT_EQ(h.quarantines(), 2);
    h.onProbeSuccess();
    // A third quarantine exceeds maxQuarantines: straight to dead.
    h.onOpFailure(20.0, "x");
    EXPECT_TRUE(h.onOpFailure(20.0, "flapped out"));
    EXPECT_EQ(h.state(), HostState::Dead);
    EXPECT_EQ(std::string(h.stateName()), "dead");
}

// ---------------------------------------------------------------
// Host roster parsing and transport construction.
// ---------------------------------------------------------------

TEST_F(TransportTest, HostsFileParsesEveryField)
{
    const std::string p = write("hosts.json", R"({"hosts": [
      {"name": "local", "transport": "process", "slots": 4},
      {"name": "node7", "transport": "ssh", "slots": 8,
       "ssh": ["ssh", "-oBatchMode=yes", "node7"],
       "remote_dir": "/tmp/vip-fleet", "vip_sim": "/opt/vip/vip_sim",
       "op_timeout_ms": 1500, "op_retries": 5},
      {"name": "flaky", "transport": "thread", "slots": 2,
       "fault": "seed=7,drop=0.1"}]})");
    std::vector<HostSpec> hosts;
    std::string err;
    ASSERT_TRUE(parseHostsFile(p, &hosts, &err)) << err;
    ASSERT_EQ(hosts.size(), 3u);
    EXPECT_EQ(hosts[0].name, "local");
    EXPECT_EQ(hosts[0].transport, "process");
    EXPECT_EQ(hosts[0].slots, 4);
    EXPECT_EQ(hosts[1].transport, "ssh");
    ASSERT_EQ(hosts[1].remote.sshCmd.size(), 3u);
    EXPECT_EQ(hosts[1].remote.sshCmd[1], "-oBatchMode=yes");
    EXPECT_EQ(hosts[1].remote.remoteDir, "/tmp/vip-fleet");
    EXPECT_EQ(hosts[1].remote.vipSim, "/opt/vip/vip_sim");
    EXPECT_DOUBLE_EQ(hosts[1].remote.opTimeoutMs, 1500.0);
    EXPECT_EQ(hosts[1].remote.opRetries, 5);
    EXPECT_EQ(hosts[2].faultSpec, "seed=7,drop=0.1");
}

TEST_F(TransportTest, HostsFileRejectsDuplicatesAndBadInput)
{
    std::vector<HostSpec> hosts;
    std::string err;
    EXPECT_FALSE(parseHostsFile(path("missing.json"), &hosts, &err));

    const std::string dup = write("dup.json", R"({"hosts": [
      {"name": "a"}, {"name": "a"}]})");
    EXPECT_FALSE(parseHostsFile(dup, &hosts, &err));
    EXPECT_NE(err.find("duplicate"), std::string::npos);

    const std::string bad =
        write("bad.json", R"({"hosts": [{"name": "x",
              "transport": "carrier-pigeon"}]})");
    std::vector<HostSpec> h2;
    if (parseHostsFile(bad, &h2, &err)) {
        // Unknown kinds may also surface at transport construction.
        ASSERT_EQ(h2.size(), 1u);
        EXPECT_EQ(makeTransport(h2[0], "/bin/true", "", &err),
                  nullptr);
    }
    EXPECT_FALSE(err.empty());
}

TEST_F(TransportTest, MakeTransportWrapsFaultyHosts)
{
    HostSpec plain;
    plain.name = "plain";
    plain.transport = "thread";
    std::string err;
    auto t = makeTransport(plain, "", "", &err);
    ASSERT_NE(t, nullptr) << err;
    EXPECT_STREQ(t->kind(), "thread");
    EXPECT_EQ(dynamic_cast<FaultyTransport *>(t.get()), nullptr);

    HostSpec flaky = plain;
    flaky.name = "flaky";
    flaky.faultSpec = "drop=0.5";
    auto ft = makeTransport(flaky, "", "", &err);
    ASSERT_NE(ft, nullptr) << err;
    EXPECT_NE(dynamic_cast<FaultyTransport *>(ft.get()), nullptr);

    // The global --fault spec wraps hosts without their own.
    auto gt = makeTransport(plain, "", "seed=3,drop=0.1", &err);
    ASSERT_NE(gt, nullptr) << err;
    EXPECT_NE(dynamic_cast<FaultyTransport *>(gt.get()), nullptr);

    HostSpec broken = plain;
    broken.faultSpec = "not-a-spec";
    EXPECT_EQ(makeTransport(broken, "", "", &err), nullptr);
    EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------
// RemoteTransport probe through the fake-ssh seam (no vip_sim
// needed; the full launch/fetch path runs in tests/fleet_chaos.sh
// where the real binaries exist).
// ---------------------------------------------------------------

TEST_F(TransportTest, RemoteProbeThroughFakeSsh)
{
    const std::string fake = write("fake_ssh.sh",
                                   "#!/bin/sh\n"
                                   "for a in \"$@\"; do c=\"$a\"; "
                                   "done\nexec /bin/sh -c \"$c\"\n");
    ::chmod(fake.c_str(), 0755);

    RemoteHostOptions opt;
    opt.name = "fake";
    opt.sshCmd = {fake, "nohost"};
    opt.remoteDir = path("remote");
    opt.vipSim = "/bin/true";
    opt.opTimeoutMs = 5000.0;
    opt.opRetries = 1;
    RemoteTransport t(opt);
    std::string err;
    EXPECT_TRUE(t.probe(&err)) << err;

    // An ssh command that cannot connect reports transport failure.
    RemoteHostOptions down = opt;
    down.sshCmd = {"/bin/false"};
    down.retryBaseMs = 1.0;
    down.retryCapMs = 2.0;
    RemoteTransport td(down);
    EXPECT_FALSE(td.probe(&err));
    EXPECT_FALSE(err.empty());
}

} // namespace
} // namespace fleet
} // namespace vip
