/**
 * @file
 * Unit tests for the CPU core / cluster model.
 */

#include <gtest/gtest.h>

#include "cpu/cpu_cluster.hh"
#include "sim/system.hh"

namespace vip
{
namespace
{

class CpuTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sys = std::make_unique<System>(1);
        ledger = std::make_unique<EnergyLedger>();
    }

    CpuCore &
    makeCore(CpuConfig cfg = CpuConfig{})
    {
        core = std::make_unique<CpuCore>(*sys, "t.cpu", cfg, *ledger);
        return *core;
    }

    std::unique_ptr<System> sys;
    std::unique_ptr<EnergyLedger> ledger;
    std::unique_ptr<CpuCore> core;
};

TEST_F(CpuTest, TaskDurationMatchesInstructions)
{
    CpuConfig cfg;
    cfg.freqHz = 1e9;
    cfg.ipc = 1.0;
    auto &c = makeCore(cfg);

    Tick done = 0;
    CpuTask t;
    t.instructions = 1'000'000; // 1 M instr @ 1 GIPS -> 1 ms
    t.onComplete = [&] { done = sys->curTick(); };
    c.dispatch(std::move(t));
    sys->run(fromMs(10));
    EXPECT_EQ(done, fromMs(1.0));
    EXPECT_EQ(c.instructions(), 1'000'000u);
}

TEST_F(CpuTest, TasksRunFifo)
{
    auto &c = makeCore();
    std::vector<int> order;
    for (int i = 0; i < 3; ++i) {
        CpuTask t;
        t.instructions = 1000;
        t.onComplete = [&order, i] { order.push_back(i); };
        c.dispatch(std::move(t));
    }
    sys->run(fromMs(1));
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_F(CpuTest, IsrPreemptsQueuedTasks)
{
    auto &c = makeCore();
    std::vector<int> order;
    CpuTask a;
    a.instructions = 100'000;
    a.onComplete = [&] { order.push_back(0); };
    CpuTask b;
    b.instructions = 1000;
    b.onComplete = [&] { order.push_back(1); };
    CpuTask isr;
    isr.instructions = 1000;
    isr.onComplete = [&] { order.push_back(2); };
    c.dispatch(std::move(a));
    c.dispatch(std::move(b));
    c.interrupt(std::move(isr)); // goes ahead of b, behind running a
    sys->run(fromMs(5));
    EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
    EXPECT_EQ(c.interrupts(), 1u);
}

TEST_F(CpuTest, EntersSleepAfterThreshold)
{
    CpuConfig cfg;
    cfg.sleepThreshold = fromUs(100);
    auto &c = makeCore(cfg);
    CpuTask t;
    t.instructions = 1000;
    c.dispatch(std::move(t));
    sys->run(fromUs(50));
    EXPECT_NE(c.state(), CpuCore::State::Sleep);
    sys->run(fromMs(1));
    EXPECT_EQ(c.state(), CpuCore::State::Sleep);
    EXPECT_GT(c.sleepTicks(), 0u);
}

TEST_F(CpuTest, WakeLatencyDelaysTaskAfterSleep)
{
    CpuConfig cfg;
    cfg.freqHz = 1e9;
    cfg.sleepThreshold = fromUs(10);
    cfg.wakeLatency = fromUs(60);
    auto &c = makeCore(cfg);

    // Let the core fall asleep.
    sys->run(fromUs(100));
    EXPECT_EQ(c.state(), CpuCore::State::Sleep);

    Tick done = 0;
    sys->eventq().schedule(fromUs(100), [&] {
        CpuTask t;
        t.instructions = 1000; // 1 us @ 1 GIPS
        t.onComplete = [&] { done = sys->curTick(); };
        c.dispatch(std::move(t));
    });
    sys->run(fromMs(1));
    EXPECT_EQ(done, fromUs(100) + cfg.wakeLatency + fromUs(1));
}

TEST_F(CpuTest, PendingWorkCancelsSleepEntry)
{
    CpuConfig cfg;
    cfg.sleepThreshold = fromUs(100);
    auto &c = makeCore(cfg);
    // Keep dispatching short tasks every 50 us: the core must never
    // reach deep sleep.
    for (int i = 0; i < 20; ++i) {
        sys->eventq().schedule(fromUs(50) * i, [&] {
            CpuTask t;
            t.instructions = 1000;
            c.dispatch(std::move(t));
        });
    }
    sys->run(fromUs(50) * 19 + fromUs(10));
    EXPECT_EQ(c.sleepTicks(), 0u);
}

TEST_F(CpuTest, EnergyTracksActiveAndSleepStates)
{
    CpuConfig cfg;
    cfg.freqHz = 1e9;
    cfg.sleepThreshold = fromUs(50);
    auto &c = makeCore(cfg);
    CpuTask t;
    t.instructions = 10'000'000; // 10 ms busy
    c.dispatch(std::move(t));
    sys->run(fromMs(100));
    ledger->closeAll(sys->curTick());
    double nj = ledger->categoryNj("cpu");
    // Lower bound: 10 ms at active power; upper bound: 100 ms active.
    double active_only = cfg.power.activeWatts * 0.010 * 1e9;
    double all_active = cfg.power.activeWatts * 0.100 * 1e9;
    EXPECT_GT(nj, active_only);
    EXPECT_LT(nj, all_active);
    EXPECT_GT(c.activeTicks(), fromMs(9.9));
    EXPECT_GT(c.sleepTicks(), fromMs(80));
}

TEST_F(CpuTest, LoadCountsQueuedAndRunning)
{
    auto &c = makeCore();
    EXPECT_EQ(c.load(), 0u);
    for (int i = 0; i < 3; ++i) {
        CpuTask t;
        t.instructions = 100'000;
        c.dispatch(std::move(t));
    }
    EXPECT_EQ(c.load(), 3u);
    sys->run(fromMs(10));
    EXPECT_EQ(c.load(), 0u);
}

TEST(CpuCluster, SpreadsTasksAcrossCores)
{
    System sys(1);
    EnergyLedger ledger;
    CpuCluster cluster(sys, "t.cpu", CpuConfig{}, 4, ledger);
    int done = 0;
    for (int i = 0; i < 4; ++i) {
        CpuTask t;
        t.instructions = 1'300'000; // ~1 ms each
        t.onComplete = [&] { ++done; };
        cluster.dispatch(std::move(t));
    }
    sys.run(fromMs(2));
    EXPECT_EQ(done, 4);
    // All four ran in parallel: every core has instructions.
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_EQ(cluster.core(i).instructions(), 1'300'000u);
}

TEST(CpuCluster, InterruptPrefersAwakeCore)
{
    System sys(1);
    EnergyLedger ledger;
    CpuConfig cfg;
    cfg.sleepThreshold = fromUs(10);
    CpuCluster cluster(sys, "t.cpu", cfg, 2, ledger);

    // Keep core busy-ish via a long task on one core, let the other
    // sleep, then interrupt: the awake (busy) core should take it to
    // avoid wake latency.
    CpuTask longTask;
    longTask.instructions = 13'000'000; // ~10 ms
    cluster.dispatch(std::move(longTask));
    sys.run(fromMs(5));

    cluster.interrupt(CpuTask{1000, true, nullptr});
    sys.run(fromMs(20));
    EXPECT_EQ(cluster.totalInterrupts(), 1u);
    // The sleeping core must not have been woken for it.
    bool core0_took = cluster.core(0).interrupts() == 1;
    bool core1_took = cluster.core(1).interrupts() == 1;
    EXPECT_NE(core0_took, core1_took);
}

TEST(CpuCluster, AggregatesAcrossCores)
{
    System sys(1);
    EnergyLedger ledger;
    CpuCluster cluster(sys, "t.cpu", CpuConfig{}, 2, ledger);
    for (int i = 0; i < 2; ++i) {
        CpuTask t;
        t.instructions = 500'000;
        cluster.dispatch(std::move(t));
    }
    sys.run(fromMs(5));
    EXPECT_EQ(cluster.totalInstructions(), 1'000'000u);
    EXPECT_GT(cluster.totalActiveTicks(), 0u);
}

} // namespace
} // namespace vip
