/**
 * @file
 * Time-series plane (--ts) tests: digest neutrality across every
 * system configuration, byte-identical series output for identical
 * runs (decimation included), stat-export gating, glob selection,
 * steady-state detection on every configuration, and the
 * --checkpoint-on-steady snapshot restoring to a byte-identical
 * series.json and digest stream.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/simulation.hh"
#include "obs/timeseries.hh"
#include "sim/snapshot.hh"

using namespace vip;

namespace
{

SocConfig
auditedCfg(SystemConfig sc, double seconds = 0.2)
{
    SocConfig cfg;
    cfg.system = sc;
    cfg.simSeconds = seconds;
    cfg.audit.mode = AuditMode::Periodic;
    cfg.audit.periodMs = 1.0;
    return cfg;
}

std::string
seriesOf(const Simulation &sim)
{
    std::ostringstream os;
    sim.writeSeriesJson(os);
    return os.str();
}

std::string
statsOf(const Simulation &sim)
{
    std::ostringstream os;
    sim.writeStatsJson(os);
    return os.str();
}

/** Fresh scratch directory per test, removed on teardown. */
class TimeSeriesSnapshotTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        namespace fs = std::filesystem;
        _dir = fs::temp_directory_path() /
               ("vip-ts-" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(_dir);
        fs::create_directories(_dir);
    }

    void TearDown() override { std::filesystem::remove_all(_dir); }

    std::string
    path(const std::string &name) const
    {
        return (_dir / name).string();
    }

    std::filesystem::path _dir;
};

} // namespace

TEST(TimeSeriesGlob, MatchesStarQuestionAndAlternatives)
{
    EXPECT_TRUE(TimeSeries::globMatch("*", "anything.at.all"));
    EXPECT_TRUE(TimeSeries::globMatch("flow.*", "flow.3.completed"));
    EXPECT_FALSE(TimeSeries::globMatch("flow.*", "sim.eventq.live"));
    EXPECT_TRUE(
        TimeSeries::globMatch("flow.*.completed", "flow.12.completed"));
    EXPECT_FALSE(
        TimeSeries::globMatch("flow.*.completed", "flow.12.deadline"));
    EXPECT_TRUE(TimeSeries::globMatch("flow.?.completed",
                                      "flow.3.completed"));
    EXPECT_FALSE(TimeSeries::globMatch("flow.?.completed",
                                       "flow.12.completed"));
    EXPECT_TRUE(TimeSeries::globMatch("a,b", "b"));
    EXPECT_TRUE(TimeSeries::globMatch("flow.*,sim.eventq.live",
                                      "sim.eventq.live"));
    EXPECT_FALSE(TimeSeries::globMatch("flow.*,sim.eventq.live",
                                       "dram.reads"));
    EXPECT_FALSE(TimeSeries::globMatch("", "x"));
    EXPECT_TRUE(TimeSeries::globMatch("**", ""));
}

TEST(TimeSeriesPlane, DigestNeutralAcrossAllConfigs)
{
    // Same contract as --prof, one layer up: an armed time-series
    // plane must not change one bit of simulated behavior.  Audit
    // every 1 ms and require the full digest stream to match a bare
    // run, for every configuration.
    auto wl = WorkloadCatalog::byIndex(4);
    for (auto sc : kAllConfigs) {
        SCOPED_TRACE(systemConfigName(sc));

        Simulation ref(auditedCfg(sc), wl);
        ref.run();

        SocConfig cfg = auditedCfg(sc);
        cfg.ts.armed = true;
        Simulation armed(cfg, wl);
        armed.run();

        ASSERT_NE(armed.timeseries(), nullptr);
        EXPECT_GT(armed.timeseries()->rows(), 0u);
        EXPECT_EQ(ref.auditor().streamDigest(),
                  armed.auditor().streamDigest());
        EXPECT_EQ(ref.system().curTick(), armed.system().curTick());
        EXPECT_EQ(ref.system().eventq().servicedEvents(),
                  armed.system().eventq().servicedEvents());
    }
}

TEST(TimeSeriesPlane, StatsExportGatedOnArming)
{
    // ts.* and sim.steady.tick ride along only when --ts is armed,
    // so baseline (disarmed) stats dumps stay comparable across
    // tooling that diffs them bit for bit.
    SocConfig cfg = auditedCfg(SystemConfig::VIP);
    cfg.ts.armed = true;
    Simulation armed(cfg, WorkloadCatalog::byIndex(4));
    armed.run();
    const std::string on = statsOf(armed);
    EXPECT_NE(on.find("\"ts.samples\""), std::string::npos);
    EXPECT_NE(on.find("\"ts.rows\""), std::string::npos);
    EXPECT_NE(on.find("\"ts.stride\""), std::string::npos);
    EXPECT_NE(on.find("\"sim.steady.tick\""), std::string::npos);

    Simulation off(auditedCfg(SystemConfig::VIP),
                   WorkloadCatalog::byIndex(4));
    off.run();
    const std::string bare = statsOf(off);
    EXPECT_EQ(bare.find("\"ts."), std::string::npos);
    EXPECT_EQ(bare.find("\"sim.steady."), std::string::npos);
    EXPECT_EQ(off.timeseries(), nullptr);
}

TEST(TimeSeriesPlane, GlobSelectsSubsetAndSeriesReflectsIt)
{
    SocConfig cfg = auditedCfg(SystemConfig::VIP, 0.1);
    cfg.ts.armed = true;
    cfg.ts.glob = "flow.*";
    Simulation sim(cfg, WorkloadCatalog::byIndex(4));
    sim.run();

    const TimeSeries *ts = sim.timeseries();
    ASSERT_NE(ts, nullptr);
    EXPECT_GT(ts->selected(), 0u);

    SocConfig all = auditedCfg(SystemConfig::VIP, 0.1);
    all.ts.armed = true;
    Simulation simAll(all, WorkloadCatalog::byIndex(4));
    simAll.run();
    ASSERT_NE(simAll.timeseries(), nullptr);
    EXPECT_LT(ts->selected(), simAll.timeseries()->selected());

    const std::string doc = seriesOf(sim);
    EXPECT_NE(doc.find("\"flow."), std::string::npos);
    EXPECT_EQ(doc.find("\"path\": \"dram."), std::string::npos);
}

TEST(TimeSeriesPlane, SeriesBytesDeterministicUnderDecimation)
{
    // 0.3 simulated s sampled every 0.1 ms is ~3000 boundaries
    // against a 512-row ring: the keep-stride must have doubled, and
    // two identical runs must still dump byte-identical series.json
    // (no wall-clock content, no iteration-order leaks).
    SocConfig cfg = auditedCfg(SystemConfig::VIP, 0.3);
    cfg.metrics.intervalMs = 0.1;
    cfg.ts.armed = true;

    Simulation a(cfg, WorkloadCatalog::byIndex(4));
    a.run();
    Simulation b(cfg, WorkloadCatalog::byIndex(4));
    b.run();

    const TimeSeries *ts = a.timeseries();
    ASSERT_NE(ts, nullptr);
    EXPECT_GT(ts->samplesSeen(), TimeSeries::kRowCap);
    EXPECT_GT(ts->stride(), 1u);
    EXPECT_LE(ts->rows(), TimeSeries::kRowCap);
    EXPECT_GT(ts->rows(), 0u);

    EXPECT_EQ(seriesOf(a), seriesOf(b));
}

TEST(TimeSeriesPlane, SteadyDetectedOnAllConfigs)
{
    // The shipped detector defaults must find steady state for the
    // W4 reference workload on every paper configuration, after the
    // warmup and before the run ends (~150-270 simulated ms).
    auto wl = WorkloadCatalog::byIndex(4);
    for (auto sc : kAllConfigs) {
        SCOPED_TRACE(systemConfigName(sc));
        SocConfig cfg = auditedCfg(sc, 0.35);
        cfg.ts.armed = true;
        Simulation sim(cfg, wl);
        sim.run();

        const TimeSeries *ts = sim.timeseries();
        ASSERT_NE(ts, nullptr);
        EXPECT_TRUE(ts->steadyDetected());
        EXPECT_GE(ts->steadyTickMs(), cfg.ts.steadyWarmupMs);
        EXPECT_LT(ts->steadyTickMs(), 350.0);
    }
}

TEST_F(TimeSeriesSnapshotTest, SteadyCheckpointRestoresByteIdentical)
{
    // The warm-start contract end to end: --checkpoint-on-steady
    // writes one snapshot at the first quiescent point after
    // detection, and a run restored from it finishes with a digest
    // stream, stats dump AND series.json byte-identical to the
    // uninterrupted run's — rows resume mid-ring, the detector
    // verdict survives, and the one-shot plan never re-arms.
    auto wl = WorkloadCatalog::byIndex(4);
    const std::string snap = path("steady.vips");

    SocConfig base = auditedCfg(SystemConfig::VIP, 0.4);
    base.ts.armed = true;

    Simulation ref(base, wl);
    ref.run();
    ASSERT_NE(ref.timeseries(), nullptr);
    ASSERT_TRUE(ref.timeseries()->steadyDetected());
    const std::string wantSeries = seriesOf(ref);
    const std::string wantStats = statsOf(ref);

    SocConfig wcfg = base;
    wcfg.ts.checkpointOnSteady = snap;
    Simulation writer(wcfg, wl);
    writer.run();
    // Exactly the one steady snapshot, written past the detection
    // tick, and the write must not have perturbed the run.
    EXPECT_EQ(writer.checkpointsWritten(), 1u);
    ASSERT_TRUE(std::filesystem::exists(snap));
    auto meta = SnapshotReader::readMeta(snap);
    EXPECT_GE(toMs(meta.tick),
              writer.timeseries()->steadyTickMs());
    EXPECT_EQ(writer.auditor().streamDigest(),
              ref.auditor().streamDigest());
    EXPECT_EQ(seriesOf(writer), wantSeries);

    SocConfig rcfg = wcfg; // identical flags on resume
    rcfg.restorePath = snap;
    Simulation resumed(rcfg, wl);
    resumed.run();
    // The restored plan state says "already written": no second
    // steady snapshot may appear.
    EXPECT_EQ(resumed.checkpointsWritten(), 0u);
    ASSERT_NE(resumed.timeseries(), nullptr);
    EXPECT_TRUE(resumed.timeseries()->steadyDetected());
    EXPECT_EQ(resumed.timeseries()->steadyTickMs(),
              ref.timeseries()->steadyTickMs());
    EXPECT_EQ(seriesOf(resumed), wantSeries);
    EXPECT_EQ(statsOf(resumed), wantStats);
    EXPECT_EQ(resumed.auditor().streamDigest(),
              ref.auditor().streamDigest());
}

TEST_F(TimeSeriesSnapshotTest, ArmingMustMatchAcrossRestore)
{
    // Arming is excluded from checkpoint *identity* but the series
    // rows live in the snapshot: restoring a ts-armed snapshot into
    // a bare run (or vice versa) must fail crisply, not desync.
    auto wl = WorkloadCatalog::byIndex(4);
    const std::string snap = path("mid.vips");

    SocConfig wcfg = auditedCfg(SystemConfig::VIP, 0.4);
    wcfg.ts.armed = true;
    Simulation writer(wcfg, wl);
    writer.checkpointAt(fromMs(300), snap);
    writer.run();
    ASSERT_EQ(writer.checkpointsWritten(), 1u);

    SocConfig bare = auditedCfg(SystemConfig::VIP, 0.4);
    bare.restorePath = snap;
    Simulation resumed(bare, wl);
    EXPECT_THROW(resumed.run(), SimFatal);
}
