/**
 * @file
 * Unit tests for FlatIdSet, the event queue's live-id tracker.
 * Backward-shift deletion is the subtle part, so the suite leans on
 * a randomized differential check against std::unordered_set.
 */

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "sim/flat_id_set.hh"
#include "sim/random.hh"

namespace vip
{
namespace
{

TEST(FlatIdSet, StartsEmpty)
{
    FlatIdSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.size(), 0u);
    EXPECT_FALSE(s.contains(1));
    EXPECT_FALSE(s.erase(1));
}

TEST(FlatIdSet, InsertEraseContains)
{
    FlatIdSet s;
    EXPECT_TRUE(s.insert(7));
    EXPECT_FALSE(s.insert(7)); // duplicate
    EXPECT_TRUE(s.contains(7));
    EXPECT_EQ(s.size(), 1u);
    EXPECT_TRUE(s.erase(7));
    EXPECT_FALSE(s.erase(7));
    EXPECT_FALSE(s.contains(7));
    EXPECT_TRUE(s.empty());
}

TEST(FlatIdSet, RejectsZero)
{
    FlatIdSet s;
    EXPECT_THROW(s.insert(0), SimPanic);
}

TEST(FlatIdSet, SequentialIdsSurviveGrowth)
{
    // Event ids are sequential; push enough to force several rehashes.
    FlatIdSet s;
    for (std::uint64_t i = 1; i <= 10'000; ++i)
        ASSERT_TRUE(s.insert(i));
    EXPECT_EQ(s.size(), 10'000u);
    for (std::uint64_t i = 1; i <= 10'000; ++i)
        ASSERT_TRUE(s.contains(i)) << i;
    // Erase the odd half; the even half must stay reachable through
    // any shifted probe chains.
    for (std::uint64_t i = 1; i <= 10'000; i += 2)
        ASSERT_TRUE(s.erase(i));
    EXPECT_EQ(s.size(), 5'000u);
    for (std::uint64_t i = 1; i <= 10'000; ++i)
        ASSERT_EQ(s.contains(i), i % 2 == 0) << i;
}

TEST(FlatIdSet, ForEachVisitsExactlyMembers)
{
    FlatIdSet s;
    for (std::uint64_t i = 1; i <= 100; ++i)
        s.insert(i * 3);
    std::unordered_set<std::uint64_t> seen;
    s.forEach([&](std::uint64_t v) {
        EXPECT_TRUE(seen.insert(v).second) << "visited twice: " << v;
    });
    EXPECT_EQ(seen.size(), 100u);
    for (std::uint64_t i = 1; i <= 100; ++i)
        EXPECT_TRUE(seen.count(i * 3));
}

TEST(FlatIdSet, DifferentialFuzzAgainstUnorderedSet)
{
    FlatIdSet s;
    std::unordered_set<std::uint64_t> ref;
    Random rng(123);
    for (int step = 0; step < 200'000; ++step) {
        std::uint64_t id = rng.uniformInt(1, 2'000);
        switch (rng.uniformInt(0, 2)) {
          case 0:
            ASSERT_EQ(s.insert(id), ref.insert(id).second);
            break;
          case 1:
            ASSERT_EQ(s.erase(id), ref.erase(id) > 0);
            break;
          default:
            ASSERT_EQ(s.contains(id), ref.count(id) > 0);
            break;
        }
        ASSERT_EQ(s.size(), ref.size());
    }
    // Full-membership sweep at the end.
    for (std::uint64_t id = 1; id <= 2'000; ++id)
        ASSERT_EQ(s.contains(id), ref.count(id) > 0) << id;
}

} // namespace
} // namespace vip
