#!/bin/sh
# Fleet kill-resume smoke: run a small sweep under vip_fleet, SIGKILL
# one worker mid-run via chaos injection, and gate on the recovered
# shard being bit-identical (stats + digest stream) to an
# uninterrupted vip_sim run with the same flags.
#
# Usage: tests/fleet_smoke.sh [build-dir] [work-dir]
set -eu

BUILD=${1:-build}
WORK=${2:-fleet-smoke-out}
VIP_SIM="$BUILD/tools/vip_sim"
VIP_FLEET="$BUILD/tools/vip_fleet"
STATS_DIFF="$BUILD/tools/vip_stats_diff"

for bin in "$VIP_SIM" "$VIP_FLEET" "$STATS_DIFF"; do
    [ -x "$bin" ] || { echo "missing binary: $bin" >&2; exit 2; }
done

rm -rf "$WORK"
mkdir -p "$WORK"

# A1 is quiescent every few ms (max dry gap ~36 ms), so a 20 ms ring
# cadence guarantees a checkpoint exists well before the kill point.
# W4-style streaming workloads are NOT suitable here: they can run
# hundreds of ms without a quiescent point, leaving the ring empty.
cat > "$WORK/spec.json" <<'EOF'
{
  "name": "kill-resume-smoke",
  "seconds": 0.5,
  "configs": ["vip"],
  "workloads": ["A1", "W1"],
  "seeds": [1, 2],
  "audit": "periodic:1",
  "fleet": {
    "workers": 2,
    "max_attempts": 3,
    "backoff_base_ms": 50,
    "backoff_cap_ms": 1000,
    "heartbeat_deadline_ms": 30000,
    "heartbeat_interval_ms": 1.0,
    "checkpoint_every_ms": 20,
    "resume": true,
    "digests": true
  }
}
EOF

# Chaos injection: SIGKILL vip-A1-s1's first attempt once its
# heartbeat crosses 300 simulated ms.  Keyed on simulated time (the
# metrics CSV), not wall time, so the kill always lands after a ring
# snapshot was written -- no races on slow CI machines.
echo "== fleet sweep with injected SIGKILL"
"$VIP_FLEET" --spec "$WORK/spec.json" --out "$WORK/run" \
    --vip-sim "$VIP_SIM" --kill vip-A1-s1@300

REPORT="$WORK/run/report.json"
test -s "$REPORT"

echo "== report asserts"
python3 - "$REPORT" <<'EOF'
import json, sys

r = json.load(open(sys.argv[1]))
assert r["kind"] == "vip-fleet-report", r["kind"]
s = r["summary"]
assert s["jobs"] == 4 and s["done"] == 4, s
assert s["failed"] == 0, s
assert s["retries"] >= 1, s
assert s["resumes"] >= 1, "killed shard restarted from scratch: %s" % s
killed = next(j for j in r["jobs"] if j["id"] == "vip-A1-s1")
assert killed["state"] == "done", killed
assert killed["attempts"] >= 2, killed
assert killed["resumed"] is True, killed
assert any("chaos SIGKILL" in h for h in killed.get("history", [])), killed
print("report: vip-A1-s1 killed, resumed from checkpoint, done")
EOF

# Uninterrupted reference run with IDENTICAL flags.  Checkpoint
# identity covers config/workload/seed/seconds/audit/metrics
# interval, so every knob the fleet threads into workers must be
# repeated here for the comparison to be meaningful.
echo "== uninterrupted reference run"
REF="$WORK/ref"
mkdir -p "$REF"
"$VIP_SIM" --workload A1 --config vip --seed 1 --seconds 0.5 \
    --audit periodic:1 --digest-out "$REF/digest.dig" \
    --metrics-out "$REF/metrics.csv" --metrics-interval-ms 1 \
    --stats-out "$REF/stats.json" --postmortem-dir "$REF/pm" \
    --checkpoint-every-ms 20

echo "== gate: recovered shard == uninterrupted reference"
SHARD="$WORK/run/shards/vip-A1-s1"
"$STATS_DIFF" "$REF/stats.json" "$SHARD/stats.json"
cmp "$REF/digest.dig" "$SHARD/digest.dig"

echo "fleet kill-resume smoke: PASS"
