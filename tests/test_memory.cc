/**
 * @file
 * Unit tests for the LPDDR3 memory controller model.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace vip
{
namespace
{

using test::PlatformFixture;

class MemoryTest : public PlatformFixture
{
  protected:
    /**
     * Issue a request directly to the controller (bypassing the SA)
     * and return its service latency.
     */
    Tick
    access(Addr addr, std::uint32_t bytes, bool write)
    {
        Tick issued = sys->curTick();
        Tick done = 0;
        MemRequest req;
        req.addr = addr;
        req.bytes = bytes;
        req.write = write;
        req.onComplete = [&done, this] { done = sys->curTick(); };
        mem->access(std::move(req));
        run();
        return done - issued;
    }
};

TEST_F(MemoryTest, IdealModeHasFixedLatency)
{
    DramConfig cfg = testDram();
    cfg.idealLatency = fromNs(10);
    buildPlatform(/*ideal=*/true, cfg);
    EXPECT_EQ(access(0, 1024, false), fromNs(10));
    EXPECT_EQ(access(123456, 64, true), fromNs(10));
}

TEST_F(MemoryTest, FirstAccessPaysActivatePlusCasPlusBurst)
{
    // Row miss on a closed bank: tRCD + tCL + bytes/bw.
    DramConfig cfg = testDram(); // 12/12/12 ns, 4 B/ns per channel
    buildPlatform(false, cfg);
    Tick expect = fromNs(12 + 12) + fromNs(1024 / 4.0);
    EXPECT_EQ(access(0, 1024, false), expect);
    EXPECT_EQ(mem->rowMisses(), 1u);
    EXPECT_EQ(mem->rowHits(), 0u);
}

TEST_F(MemoryTest, RowHitSkipsActivate)
{
    buildPlatform(false);
    access(0, 1024, false); // opens the row
    // Same row, same bank, same channel: only CAS + burst.
    // Channel stride is 1 KB x 4 channels, bank stride 4 KB x 8
    // banks, so +32 KB stays on channel 0 / bank 0 / row 0.
    Tick second = access(32768, 1024, false);
    EXPECT_EQ(second, fromNs(12) + fromNs(1024 / 4.0));
    EXPECT_EQ(mem->rowHits(), 1u);
}

TEST_F(MemoryTest, ConflictingRowPaysPrecharge)
{
    DramConfig cfg = testDram();
    buildPlatform(false, cfg);
    access(0, 1024, false); // opens a row
    // Same bank, different row: tRP + tRCD + tCL + burst.
    Addr far = Addr(cfg.rowBytes) * cfg.channels *
               cfg.banksPerRank * 8;
    Tick second = access(far, 1024, false);
    EXPECT_EQ(second, fromNs(12 + 12 + 12) + fromNs(1024 / 4.0));
    EXPECT_EQ(mem->rowMisses(), 2u);
}

TEST_F(MemoryTest, ChannelsServiceInParallel)
{
    // Two 1 KB requests on different channels finish at the same
    // time; on the same channel they serialize.
    buildPlatform(false);
    Tick t_par = 0;
    int done = 0;
    for (int i = 0; i < 2; ++i) {
        MemRequest req;
        req.addr = static_cast<Addr>(i) * 1024; // distinct channels
        req.bytes = 1024;
        req.onComplete = [&] {
            ++done;
            t_par = sys->curTick();
        };
        mem->access(std::move(req));
    }
    run();
    EXPECT_EQ(done, 2);
    Tick one = fromNs(24) + fromNs(256);
    EXPECT_EQ(t_par, one); // parallel channels: same as single access

    buildPlatform(false);
    done = 0;
    Tick t_ser = 0;
    for (int i = 0; i < 2; ++i) {
        MemRequest req;
        req.addr = static_cast<Addr>(i) * 4096; // same channel (4ch)
        req.bytes = 1024;
        req.onComplete = [&] {
            ++done;
            t_ser = sys->curTick();
        };
        mem->access(std::move(req));
    }
    run();
    EXPECT_EQ(done, 2);
    EXPECT_GT(t_ser, one);
}

TEST_F(MemoryTest, FrFcfsPrefersRowHits)
{
    // Queue: [missA-row1, hitB-row0] while row0 is open; the hit
    // should be served first.
    buildPlatform(false);
    // Open row 0 on channel 0 / bank 0.
    access(0, 64, false);

    std::vector<int> order;
    DramConfig cfg;
    Addr conflict = Addr(cfg.rowBytes) * cfg.channels *
                    cfg.banksPerRank * 8; // same bank, other row
    MemRequest a;
    a.addr = conflict;
    a.bytes = 64;
    a.onComplete = [&] { order.push_back(1); };
    MemRequest b;
    b.addr = 64; // row 0, open
    b.bytes = 64;
    b.onComplete = [&] { order.push_back(2); };
    // Occupy the channel so both queue behind an in-flight request.
    MemRequest busy;
    busy.addr = 128;
    busy.bytes = 1024;
    mem->access(std::move(busy));
    mem->access(std::move(a));
    mem->access(std::move(b));
    run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 2); // row hit first (FR-FCFS)
    EXPECT_EQ(order[1], 1);
}

TEST_F(MemoryTest, CountsBytesAndRequests)
{
    buildPlatform(false);
    access(0, 1024, false);
    access(8192, 512, true);
    EXPECT_EQ(mem->bytesRead(), 1024u);
    EXPECT_EQ(mem->bytesWritten(), 512u);
}

TEST_F(MemoryTest, ZeroByteRequestPanics)
{
    buildPlatform(false);
    MemRequest req;
    req.addr = 0;
    req.bytes = 0;
    EXPECT_THROW(mem->access(std::move(req)), SimPanic);
}

TEST_F(MemoryTest, QueueFullReflectsDepth)
{
    DramConfig cfg = testDram();
    cfg.queueDepth = 4;
    buildPlatform(false, cfg);
    EXPECT_FALSE(mem->queueFull(0));
    for (int i = 0; i < 8; ++i) {
        MemRequest req;
        req.addr = 0; // all on channel 0
        req.bytes = 64;
        mem->access(std::move(req));
    }
    EXPECT_TRUE(mem->queueFull(0));
    EXPECT_FALSE(mem->queueFull(1024)); // other channel empty
    run();
    EXPECT_FALSE(mem->queueFull(0));
}

TEST_F(MemoryTest, AverageBandwidthMatchesTraffic)
{
    buildPlatform(false);
    // Move 4 MB; at 16 GB/s peak this takes ~0.26 ms of burst time.
    const int n = 4096;
    int done = 0;
    Tick last = 0;
    for (int i = 0; i < n; ++i) {
        MemRequest req;
        req.addr = static_cast<Addr>(i) * 1024;
        req.bytes = 1024;
        req.onComplete = [&] {
            ++done;
            last = sys->curTick();
        };
        mem->access(std::move(req));
    }
    run();
    EXPECT_EQ(done, n);
    double gb = static_cast<double>(n) * 1024;
    double expect = gb / static_cast<double>(sys->curTick()) * 1000.0;
    EXPECT_NEAR(mem->averageBandwidthGBps(), expect, 1e-6);
    // Saturating traffic drains near peak (16 GB/s) modulo
    // activate/CAS overheads, measured over the actual busy window.
    double busyGBps = gb / static_cast<double>(last) * 1000.0;
    EXPECT_GT(busyGBps, 10.0);
}

TEST_F(MemoryTest, BandwidthHistogramPopulatesUnderLoad)
{
    DramConfig cfg = testDram();
    cfg.bwWindow = fromUs(10);
    buildPlatform(false, cfg);
    for (int i = 0; i < 2048; ++i) {
        MemRequest req;
        req.addr = static_cast<Addr>(i) * 1024;
        req.bytes = 1024;
        mem->access(std::move(req));
    }
    run(fromUs(200));
    EXPECT_GT(mem->bwHistogram().total(), 0u);
    EXPECT_GT(mem->fractionOfTimeAbove(0.5), 0.0);
    EXPECT_LE(mem->fractionOfTimeAbove(0.0), 1.0);
}

TEST_F(MemoryTest, DramEnergyAccrues)
{
    buildPlatform(false);
    access(0, 1024, false);
    EXPECT_GT(ledger->categoryNj("dram"), 0.0);
}


class MemoryLowPowerTest : public PlatformFixture
{
  protected:
    void
    SetUp() override
    {
        DramConfig cfg;
        cfg.enableLowPower = true;
        cfg.powerDownDelay = fromUs(3);
        cfg.selfRefreshDelay = fromUs(150);
        buildPlatform(false, cfg);
    }

    Tick
    latency(Addr addr)
    {
        Tick issued = sys->curTick();
        Tick done = 0;
        MemRequest req;
        req.addr = addr;
        req.bytes = 64;
        req.onComplete = [&done, this] { done = sys->curTick(); };
        mem->access(std::move(req));
        run(fromUs(2)); // just past the access; stays Active
        return done - issued;
    }
};

TEST_F(MemoryLowPowerTest, EntersPowerDownAfterIdleDelay)
{
    MemRequest req;
    req.addr = 0;
    req.bytes = 64;
    mem->access(std::move(req));
    run(fromUs(1)); // request done, idle < powerDownDelay
    EXPECT_EQ(mem->lpState(), MemoryController::LpState::Active);
    run(fromUs(10)); // idle > powerDownDelay
    EXPECT_EQ(mem->lpState(), MemoryController::LpState::PowerDown);
}

TEST_F(MemoryLowPowerTest, DeepensIntoSelfRefresh)
{
    latency(0);
    run(fromMs(1));
    EXPECT_EQ(mem->lpState(), MemoryController::LpState::SelfRefresh);
    EXPECT_GT(mem->powerDownTicks(), 0u);
    EXPECT_GE(mem->lpEntries(), 2u);
}

TEST_F(MemoryLowPowerTest, PowerDownExitChargesTxp)
{
    Tick awake = latency(0);
    run(fromUs(10)); // -> power-down
    DramConfig cfg;
    // Row is still open across power-down: same access now pays the
    // exit penalty but hits the row.
    Tick woken = latency(64);
    EXPECT_EQ(woken, awake - fromNs(12) + cfg.tXP);
    EXPECT_EQ(mem->lpState(), MemoryController::LpState::Active);
}

TEST_F(MemoryLowPowerTest, SelfRefreshExitClosesRowsAndChargesTxs)
{
    Tick first = latency(0);
    run(fromMs(1)); // -> self-refresh
    // Same address: the row was closed by self-refresh, so the access
    // pays activate again plus the tXS exit penalty.
    DramConfig cfg;
    Tick woken = latency(64);
    EXPECT_EQ(woken, first + cfg.tXS);
}

TEST_F(MemoryLowPowerTest, BackgroundEnergyDropsWhileAsleep)
{
    // Compare ~100 ms of mostly-idle DRAM against the always-active
    // background energy: the sleep states must save most of it.
    latency(0);
    run(fromMs(100));
    ledger->closeAll(sys->curTick());
    DramConfig cfg;
    double always = cfg.power.backgroundWattsPerChannel *
                    cfg.channels * 0.1 * 1e9; // nJ over 100 ms
    EXPECT_LT(ledger->categoryNj("dram"), 0.3 * always);
}

TEST_F(MemoryLowPowerTest, TrafficKeepsDramAwake)
{
    // Requests every 1 us (below the power-down delay) must keep the
    // device in Active the whole time.
    for (int i = 0; i < 100; ++i) {
        sys->eventq().schedule(fromUs(i), [this, i] {
            MemRequest req;
            req.addr = static_cast<Addr>(i) * 64;
            req.bytes = 64;
            mem->access(std::move(req));
        });
    }
    run(fromUs(100));
    EXPECT_EQ(mem->powerDownTicks(), 0u);
    EXPECT_EQ(mem->lpState(), MemoryController::LpState::Active);
}

} // namespace
} // namespace vip
