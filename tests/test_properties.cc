/**
 * @file
 * Property-style parameterized sweeps (TEST_P) over configurations,
 * workloads and hardware knobs: invariants that must hold everywhere.
 */

#include <gtest/gtest.h>

#include "core/simulation.hh"

namespace vip
{
namespace
{

// ---------------------------------------------------------------
// Invariants over every (config, workload) combination
// ---------------------------------------------------------------

using ConfigWorkload = std::tuple<SystemConfig, int>;

class ConfigWorkloadSweep
    : public ::testing::TestWithParam<ConfigWorkload>
{
};

TEST_P(ConfigWorkloadSweep, PlatformInvariantsHold)
{
    SystemConfig config = std::get<0>(GetParam());
    int wli = std::get<1>(GetParam());
    SocConfig cfg;
    cfg.system = config;
    cfg.simSeconds = 0.12;
    Workload wl = wli <= 0 ? WorkloadCatalog::single(-wli)
                           : WorkloadCatalog::byIndex(wli);
    auto s = Simulation::run(cfg, wl);

    // Liveness: frames complete under every configuration.
    EXPECT_GT(s.framesCompleted, 0u);
    EXPECT_LE(s.framesCompleted, s.framesGenerated);
    // Energy sanity.
    EXPECT_GT(s.totalEnergyMj, 0.0);
    double sum = s.cpuEnergyMj + s.dramEnergyMj + s.saEnergyMj +
                 s.ipEnergyMj + s.bufferEnergyMj;
    EXPECT_NEAR(sum, s.totalEnergyMj, 1e-6 * s.totalEnergyMj + 1e-9);
    // QoS counters are ordered.
    EXPECT_LE(s.drops, s.violations);
    EXPECT_LE(s.violations, s.framesCompleted);
    // Rates derive from counters.
    if (s.framesCompleted > 0) {
        EXPECT_NEAR(s.dropRate,
                    double(s.drops) / double(s.framesCompleted), 1e-12);
    }
    // IP utilization is a fraction; busy time below elapsed time.
    for (const auto &ip : s.ips) {
        EXPECT_GE(ip.utilization, 0.0);
        EXPECT_LE(ip.utilization, 1.0);
        EXPECT_LE(ip.activeMs + ip.stallMs,
                  cfg.simSeconds * 1000.0 * 1.001);
    }
    // CPU time bounded by cores x wall time.
    EXPECT_LE(s.cpuActiveMs,
              cfg.simSeconds * 1000.0 * cfg.cpuCores * 1.001);
    // Memory bandwidth below configured peak.
    EXPECT_LE(s.avgMemBandwidthGBps, cfg.dram.peakGBps() * 1.001);
}

std::string
sweepName(const ::testing::TestParamInfo<ConfigWorkload> &info)
{
    SystemConfig c = std::get<0>(info.param);
    int w = std::get<1>(info.param);
    std::string name = systemConfigName(c);
    for (auto &ch : name) {
        if (!isalnum(static_cast<unsigned char>(ch)))
            ch = '_';
    }
    name += w <= 0 ? "_A" + std::to_string(-w)
                   : "_W" + std::to_string(w);
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigsKeyWorkloads, ConfigWorkloadSweep,
    ::testing::Combine(::testing::ValuesIn(kAllConfigs),
                       ::testing::Values(-1, -5, -6, 1, 4, 6, 7)),
    sweepName);

// ---------------------------------------------------------------
// Buffer-size sweep (the Fig 14a experiment as a property)
// ---------------------------------------------------------------

class BufferSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(BufferSweep, ChainedModeWorksAtAnyBufferSize)
{
    SocConfig cfg;
    cfg.system = SystemConfig::VIP;
    cfg.simSeconds = 0.1;
    cfg.laneBytes = GetParam();
    cfg.subframeBytes = std::min(GetParam(), 1024u);
    auto s = Simulation::run(cfg, WorkloadCatalog::single(5));
    EXPECT_GT(s.framesCompleted, 0u);
    EXPECT_GT(s.meanFlowTimeMs, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Fig14Sizes, BufferSweep,
                         ::testing::Values(512u, 1024u, 2048u, 4096u,
                                           8192u, 16384u));

// ---------------------------------------------------------------
// Lane-count sweep
// ---------------------------------------------------------------

class LaneSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(LaneSweep, VipDegradesGracefullyWithFewLanes)
{
    SocConfig cfg;
    cfg.system = SystemConfig::VIP;
    cfg.simSeconds = 0.12;
    cfg.vipLanes = GetParam();
    // W4 has up to 2 flows per IP: with 1 lane some flows fall back
    // to transactional acquisition but everything still completes.
    auto s = Simulation::run(cfg, WorkloadCatalog::byIndex(4));
    EXPECT_GT(s.framesCompleted, 0u);
}

INSTANTIATE_TEST_SUITE_P(Lanes, LaneSweep,
                         ::testing::Values(1u, 2u, 3u, 4u));

// ---------------------------------------------------------------
// Scheduling-policy sweep
// ---------------------------------------------------------------

class PolicySweep : public ::testing::TestWithParam<SchedPolicy>
{
};

TEST_P(PolicySweep, VipRunsUnderEveryHardwareScheduler)
{
    SocConfig cfg;
    cfg.system = SystemConfig::VIP;
    cfg.simSeconds = 0.12;
    cfg.vipSched = GetParam();
    auto s = Simulation::run(cfg, WorkloadCatalog::byIndex(1));
    EXPECT_GT(s.framesCompleted, 0u);
    EXPECT_LE(s.drops, s.framesCompleted);
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicySweep,
                         ::testing::Values(SchedPolicy::FIFO,
                                           SchedPolicy::RoundRobin,
                                           SchedPolicy::EDF));

// ---------------------------------------------------------------
// Burst-size sweep
// ---------------------------------------------------------------

class BurstSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(BurstSweep, LargerBurstsNeverRaiseInterruptRate)
{
    SocConfig cfg;
    cfg.system = SystemConfig::VIP;
    cfg.simSeconds = 0.2;
    cfg.burstFrames = GetParam();
    auto s = Simulation::run(cfg, WorkloadCatalog::single(5));
    // Interrupt rate is roughly fps/burst per flow; it must decrease
    // (weakly) in the burst size.
    SocConfig one = cfg;
    one.burstFrames = 1;
    auto s1 = Simulation::run(one, WorkloadCatalog::single(5));
    EXPECT_LE(s.interruptsPer100ms, s1.interruptsPer100ms * 1.05);
    EXPECT_GT(s.framesCompleted, 0u);
}

INSTANTIATE_TEST_SUITE_P(Bursts, BurstSweep,
                         ::testing::Values(1u, 2u, 5u, 10u, 15u));

// ---------------------------------------------------------------
// Seed sweep: determinism and liveness under different user input
// ---------------------------------------------------------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, GameWorkloadLivenessUnderAnySeed)
{
    SocConfig cfg;
    cfg.system = SystemConfig::VIP;
    cfg.simSeconds = 0.2;
    cfg.seed = GetParam();
    auto s = Simulation::run(cfg, WorkloadCatalog::byIndex(6));
    EXPECT_GT(s.framesCompleted, 0u);
    EXPECT_LE(s.drops, s.framesCompleted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 7u, 42u, 1234u,
                                           987654321u));


// ---------------------------------------------------------------
// Deadline-policy sweep: looser deadlines never add violations
// ---------------------------------------------------------------

class DeadlineSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(DeadlineSweep, ViolationsShrinkWithLooserDeadlines)
{
    SocConfig tight;
    tight.system = SystemConfig::IpToIpBurst;
    tight.simSeconds = 0.15;
    tight.deadlineFrames = 1.0;
    SocConfig loose = tight;
    loose.deadlineFrames = GetParam();
    auto a = Simulation::run(tight, WorkloadCatalog::byIndex(1));
    auto b = Simulation::run(loose, WorkloadCatalog::byIndex(1));
    // Identical seed and schedule: only the judging changes.
    EXPECT_EQ(a.framesCompleted, b.framesCompleted);
    EXPECT_LE(b.violations, a.violations);
    EXPECT_LE(b.drops, a.drops);
}

INSTANTIATE_TEST_SUITE_P(Policies, DeadlineSweep,
                         ::testing::Values(1.25, 1.5, 2.0, 3.0));

// ---------------------------------------------------------------
// Memory-channel sweep: more channels never hurt
// ---------------------------------------------------------------

class ChannelSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(ChannelSweep, PlatformScalesWithChannels)
{
    SocConfig cfg;
    cfg.system = SystemConfig::Baseline;
    cfg.simSeconds = 0.1;
    cfg.dram.channels = GetParam();
    auto s = Simulation::run(cfg, WorkloadCatalog::byIndex(1));
    EXPECT_GT(s.framesCompleted, 0u);
    EXPECT_LE(s.avgMemBandwidthGBps, cfg.dram.peakGBps() * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Channels, ChannelSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

// ---------------------------------------------------------------
// Overflow-policy sweep across chained configurations
// ---------------------------------------------------------------

class OverflowSweep
    : public ::testing::TestWithParam<std::tuple<SystemConfig, bool>>
{
};

TEST_P(OverflowSweep, ChainedModesCompleteUnderEitherLanePolicy)
{
    SocConfig cfg;
    cfg.system = std::get<0>(GetParam());
    cfg.overflowToMemory = std::get<1>(GetParam());
    cfg.simSeconds = 0.12;
    auto s = Simulation::run(cfg, WorkloadCatalog::byIndex(4));
    EXPECT_GT(s.framesCompleted, 0u);
    EXPECT_LE(s.drops, s.violations);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, OverflowSweep,
    ::testing::Combine(::testing::Values(SystemConfig::IpToIp,
                                         SystemConfig::IpToIpBurst,
                                         SystemConfig::VIP),
                       ::testing::Bool()));

// ---------------------------------------------------------------
// Subframe-size sweep
// ---------------------------------------------------------------

class SubframeSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SubframeSweep, ForwardingGranularityIsTransparent)
{
    SocConfig cfg;
    cfg.system = SystemConfig::VIP;
    cfg.simSeconds = 0.1;
    cfg.subframeBytes = GetParam();
    cfg.laneBytes = std::max(2 * GetParam(), 2048u);
    auto s = Simulation::run(cfg, WorkloadCatalog::single(5));
    EXPECT_GT(s.framesCompleted, 0u);
    // Data conservation: the SA carried at least the decoded frames.
    EXPECT_GT(s.totalEnergyMj, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SubframeSweep,
                         ::testing::Values(256u, 512u, 1024u, 2048u,
                                           4096u));

} // namespace
} // namespace vip
