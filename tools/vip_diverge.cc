/**
 * @file
 * vip_diverge: locate the first difference between two digest streams.
 *
 * Feed it two files written by vip_sim --digest-out (or by the bench
 * drivers).  Identical streams mean the two runs marched through
 * bit-identical architectural state at every audit point; otherwise
 * the tool names the first divergent tick and component, which is
 * where to start bisecting a nondeterminism or a behavior regression.
 *
 *   vip_sim --workload W4 --config vip --audit=periodic:1 \
 *           --digest-out a.dig
 *   vip_sim --workload W4 --config vip --audit=periodic:1 \
 *           --digest-out b.dig
 *   vip_diverge a.dig b.dig
 *
 * Exit status: 0 identical, 1 diverged, 2 usage/load error,
 * 3 one stream is a strict prefix of the other (truncation — e.g. a
 * run that aborted mid-way); the truncation point is reported as the
 * divergence.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "sim/audit.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace
{

void
usage()
{
    std::printf(
        "usage: vip_diverge [-q] <a.dig> <b.dig>\n"
        "  compares two digest streams written by vip_sim"
        " --digest-out\n"
        "  -q  only set the exit status (0 identical, 1 diverged,\n"
        "      3 truncated: one stream is a prefix of the other)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool quiet = false;
    std::string pathA, pathB;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-q") == 0) {
            quiet = true;
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            usage();
            return 0;
        } else if (pathA.empty()) {
            pathA = argv[i];
        } else if (pathB.empty()) {
            pathB = argv[i];
        } else {
            usage();
            return 2;
        }
    }
    if (pathA.empty() || pathB.empty()) {
        usage();
        return 2;
    }

    try {
        auto a = vip::Auditor::loadDigestFile(pathA);
        auto b = vip::Auditor::loadDigestFile(pathB);
        auto d = vip::Auditor::firstDivergence(a, b);
        if (!d.diverged) {
            if (!quiet) {
                std::printf("identical: %zu records, %zu components\n",
                            a.records.size(), a.components.size());
            }
            return 0;
        }
        if (quiet)
            return d.truncated ? 3 : 1;
        if (d.truncated) {
            std::printf(
                "truncated: stream lengths differ (%zu vs %zu "
                "records); first missing record #%zu",
                a.records.size(), b.records.size(), d.record);
            if (!d.component.empty()) {
                std::printf(" (tick %llu, %s)",
                            static_cast<unsigned long long>(d.tick),
                            d.component.c_str());
            }
            std::printf("\n");
            return 3;
        }
        std::printf(
            "diverged at record #%zu: tick %llu (%.3f ms), "
            "component %s\n  a: %016llx\n  b: %016llx\n",
            d.record, static_cast<unsigned long long>(d.tick),
            vip::toMs(d.tick), d.component.c_str(),
            static_cast<unsigned long long>(d.digestA),
            static_cast<unsigned long long>(d.digestB));
        return 1;
    } catch (const vip::SimFatal &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
