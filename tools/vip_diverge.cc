/**
 * @file
 * vip_diverge: locate the first difference between two digest streams.
 *
 * Feed it two files written by vip_sim --digest-out (or by the bench
 * drivers).  Identical streams mean the two runs marched through
 * bit-identical architectural state at every audit point; otherwise
 * the tool names the first divergent tick and component, which is
 * where to start bisecting a nondeterminism or a behavior regression.
 *
 *   vip_sim --workload W4 --config vip --audit=periodic:1 \
 *           --digest-out a.dig
 *   vip_sim --workload W4 --config vip --audit=periodic:1 \
 *           --digest-out b.dig
 *   vip_diverge a.dig b.dig
 *
 * With --bisect --checkpoints <dir> the tool additionally bisects the
 * divergence against the snapshots in <dir> (written by vip_sim
 * --checkpoint-out / --checkpoint-every-ms or the flight-recorder
 * ring): it binary-searches the checkpoint ticks for the newest
 * snapshot strictly before the first diverging tick (the last
 * known-good restore point) and prints the vip_sim command that
 * replays just the divergence window from it, instead of the whole
 * run from tick zero.
 *
 * Exit status: 0 identical, 1 diverged, 2 usage/load error,
 * 3 one stream is a strict prefix of the other (truncation — e.g. a
 * run that aborted mid-way); the truncation point is reported as the
 * divergence.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/audit.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace
{

void
usage()
{
    std::printf(
        "usage: vip_diverge [-q] [--bisect --checkpoints <dir>]"
        " <a.dig> <b.dig>\n"
        "  compares two digest streams written by vip_sim"
        " --digest-out\n"
        "  -q  only set the exit status (0 identical, 1 diverged,\n"
        "      3 truncated: one stream is a prefix of the other)\n"
        "  --bisect            locate the divergence against the\n"
        "                      checkpoints in --checkpoints <dir>:\n"
        "                      report the newest snapshot before the\n"
        "                      first diverging tick and the command\n"
        "                      that replays the divergence window\n"
        "  --checkpoints <dir> directory of .vips snapshots\n");
}

/**
 * Snapshot headers stamp the display name from systemConfigName();
 * map it back to the spelling vip_sim --config accepts.
 */
std::string
cliConfigName(const std::string &display)
{
    if (display == "Baseline")
        return "baseline";
    if (display == "FrameBurst")
        return "frameburst";
    if (display == "IP-to-IP")
        return "iptoip";
    if (display == "IP-to-IP+FB")
        return "iptoip-fb";
    if (display == "VIP")
        return "vip";
    return display;
}

/** One checkpoint candidate for the bisection. */
struct Candidate
{
    std::string path;
    vip::SnapshotMeta meta;
};

/**
 * Collect every readable snapshot in @p dir (non-recursive; both
 * live files and the rotated .prev generation), sorted by capture
 * tick.  Unreadable or foreign files are skipped with a note.
 */
std::vector<Candidate>
collectCheckpoints(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::vector<Candidate> out;
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(dir, ec)) {
        if (!e.is_regular_file())
            continue;
        auto name = e.path().filename().string();
        if (name.find(".vips") == std::string::npos)
            continue;
        try {
            Candidate c;
            c.path = e.path().string();
            c.meta = vip::SnapshotReader::readMeta(c.path);
            out.push_back(std::move(c));
        } catch (const vip::SimFatal &err) {
            std::fprintf(stderr, "note: skipping %s: %s\n",
                         e.path().string().c_str(), err.what());
        }
    }
    if (ec) {
        std::fprintf(stderr, "error: cannot read %s: %s\n",
                     dir.c_str(), ec.message().c_str());
    }
    std::sort(out.begin(), out.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.meta.tick < b.meta.tick;
              });
    return out;
}

/**
 * Binary-search @p cands (sorted by tick) around the diverging tick
 * and report the replay window.  Returns false when no checkpoint
 * precedes the divergence (replay must start from tick zero).
 */
bool
reportBisection(const std::vector<Candidate> &cands,
                const vip::Divergence &d)
{
    if (cands.empty()) {
        std::printf("bisect: no readable checkpoints\n");
        return false;
    }
    // First checkpoint at or after the diverging tick: it already
    // contains post-divergence state, so it cannot seed a replay.
    auto bad = std::lower_bound(
        cands.begin(), cands.end(), d.tick,
        [](const Candidate &c, vip::Tick t) { return c.meta.tick < t; });
    if (bad == cands.begin()) {
        std::printf(
            "bisect: all %zu checkpoints are at or after the "
            "diverging tick; replay from tick 0\n", cands.size());
        return false;
    }
    const Candidate &good = *(bad - 1);
    std::printf(
        "bisect: last checkpoint before divergence: %s\n"
        "  captured at tick %llu (%.3f ms), %.3f ms before the "
        "divergence\n",
        good.path.c_str(),
        static_cast<unsigned long long>(good.meta.tick),
        vip::toMs(good.meta.tick), vip::toMs(d.tick - good.meta.tick));
    if (bad != cands.end()) {
        std::printf(
            "  first post-divergence checkpoint: %s (tick %llu)\n",
            bad->path.c_str(),
            static_cast<unsigned long long>(bad->meta.tick));
    }
    const auto &m = good.meta;
    std::printf(
        "  replay the divergence window with:\n"
        "    vip_sim --workload %s --config %s --seconds %g"
        " --seed %llu \\\n"
        "            --restore %s \\\n"
        "            --audit periodic:1 --digest-out replay.dig\n",
        m.workloadName.c_str(), cliConfigName(m.configName).c_str(),
        m.simSeconds,
        static_cast<unsigned long long>(m.seed), good.path.c_str());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quiet = false;
    bool bisect = false;
    std::string checkpointDir;
    std::string pathA, pathB;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-q") == 0) {
            quiet = true;
        } else if (std::strcmp(argv[i], "--bisect") == 0) {
            bisect = true;
        } else if (std::strcmp(argv[i], "--checkpoints") == 0 &&
                   i + 1 < argc) {
            checkpointDir = argv[++i];
        } else if (std::strncmp(argv[i], "--checkpoints=", 14) == 0) {
            checkpointDir = argv[i] + 14;
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            usage();
            return 0;
        } else if (pathA.empty()) {
            pathA = argv[i];
        } else if (pathB.empty()) {
            pathB = argv[i];
        } else {
            usage();
            return 2;
        }
    }
    if (pathA.empty() || pathB.empty()) {
        usage();
        return 2;
    }
    if (bisect && checkpointDir.empty()) {
        std::fprintf(stderr,
                     "error: --bisect requires --checkpoints <dir>\n");
        return 2;
    }

    try {
        auto a = vip::Auditor::loadDigestFile(pathA);
        auto b = vip::Auditor::loadDigestFile(pathB);
        auto d = vip::Auditor::firstDivergence(a, b);
        if (!d.diverged) {
            if (!quiet) {
                std::printf("identical: %zu records, %zu components\n",
                            a.records.size(), a.components.size());
            }
            return 0;
        }
        if (quiet)
            return d.truncated ? 3 : 1;
        if (d.truncated) {
            std::printf(
                "truncated: stream lengths differ (%zu vs %zu "
                "records); first missing record #%zu",
                a.records.size(), b.records.size(), d.record);
            if (!d.component.empty()) {
                std::printf(" (tick %llu, %s)",
                            static_cast<unsigned long long>(d.tick),
                            d.component.c_str());
            }
            std::printf("\n");
            if (bisect)
                reportBisection(collectCheckpoints(checkpointDir), d);
            return 3;
        }
        std::printf(
            "diverged at record #%zu: tick %llu (%.3f ms), "
            "component %s\n  a: %016llx\n  b: %016llx\n",
            d.record, static_cast<unsigned long long>(d.tick),
            vip::toMs(d.tick), d.component.c_str(),
            static_cast<unsigned long long>(d.digestA),
            static_cast<unsigned long long>(d.digestB));
        if (bisect)
            reportBisection(collectCheckpoints(checkpointDir), d);
        return 1;
    } catch (const vip::SimFatal &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
