/**
 * @file
 * vip_top: live terminal dashboard over the fleet's status plane and
 * the simulator's time-series artifacts.
 *
 * Three sources, one renderer:
 *
 *   vip_top <fleet-out-dir>          jobs by state, per-host health,
 *                                    per-shard throughput sparklines,
 *                                    steady/transient flags, ETA
 *                                    (reads <dir>/fleet-status.json)
 *   vip_top --series series.json     a vip_sim --ts-out report:
 *                                    steady verdict plus sparklines
 *                                    of the detector-tracked series
 *   vip_top --metrics metrics.csv    tail sparklines of a metrics
 *                                    stream's most active columns
 *
 * --watch re-renders every --interval seconds (ANSI clear); in fleet
 * mode it exits on its own when the status file turns "final".  A
 * one-shot render of the same input is deterministic.
 */

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hh"
#include "sim/logging.hh"

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: vip_top [--watch] [--interval <s>] <fleet-out-dir>\n"
        "       vip_top [--watch] [--interval <s>] --series <file>\n"
        "       vip_top [--watch] [--interval <s>] --metrics <file>\n"
        "\n"
        "  Render a terminal dashboard from a fleet's rolling\n"
        "  fleet-status.json, a vip_sim --ts-out series report, or a\n"
        "  metrics CSV stream.\n"
        "\n"
        "  --watch          re-render until interrupted (fleet mode\n"
        "                   exits when the status file turns final)\n"
        "  --interval <s>   refresh period (default 1)\n"
        "  --rows <n>       series/metrics rows to chart (default 60)\n");
}

/** ASCII sparkline: one glyph per value, darker = larger. */
std::string
sparkline(const std::vector<double> &vals)
{
    static const char ramp[] = " .:-=+*#%@";
    constexpr int kLevels = static_cast<int>(sizeof(ramp)) - 2;
    if (vals.empty())
        return "";
    double lo = vals[0], hi = vals[0];
    for (double v : vals) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    std::string out;
    out.reserve(vals.size());
    for (double v : vals) {
        int lvl = hi > lo ? static_cast<int>(std::lround(
                                (v - lo) / (hi - lo) * kLevels))
                          : 0;
        lvl = std::clamp(lvl, 0, kLevels);
        out.push_back(ramp[lvl]);
    }
    return out;
}

/** Keep at most @p n values, evenly subsampled, newest kept. */
std::vector<double>
thin(const std::vector<double> &v, std::size_t n)
{
    if (v.size() <= n)
        return v;
    std::vector<double> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(v[i * (v.size() - 1) / (n - 1)]);
    return out;
}

std::string
fmtMs(double ms)
{
    char buf[64];
    if (ms < 0.0)
        return "?";
    if (ms >= 60000.0)
        std::snprintf(buf, sizeof(buf), "%.1f min", ms / 60000.0);
    else if (ms >= 1000.0)
        std::snprintf(buf, sizeof(buf), "%.1f s", ms / 1000.0);
    else
        std::snprintf(buf, sizeof(buf), "%.0f ms", ms);
    return buf;
}

double
numOr(const vip::json::JsonValue &obj, const char *key, double dflt)
{
    const vip::json::JsonValue *v = obj.find(key);
    return v && v->kind == vip::json::JsonValue::Kind::Number
               ? v->num
               : dflt;
}

/** @return true when the status file says the sweep is over. */
bool
renderFleet(const std::string &dir)
{
    const std::string path = dir + "/fleet-status.json";
    std::ifstream in(path);
    if (!in) {
        std::printf("waiting for %s ...\n", path.c_str());
        return false;
    }
    vip::json::JsonValue doc = vip::json::parse(in);
    if (vip::json::strField(doc, "kind") != "vip-fleet-status")
        vip::fatal(path, " is not a vip-fleet-status file");

    const bool final =
        doc.find("final") && doc.find("final")->b;
    std::printf("sweep %s  %s  wall %s\n",
                vip::json::strField(doc, "name").c_str(),
                final ? "[final]" : "[running]",
                fmtMs(numOr(doc, "wall_ms", -1.0)).c_str());

    if (const vip::json::JsonValue *j = doc.find("jobs")) {
        std::printf("jobs : %.0f total | %.0f pending, %.0f running, "
                    "%.0f backoff, %.0f done, %.0f failed\n",
                    numOr(*j, "total", 0), numOr(*j, "pending", 0),
                    numOr(*j, "running", 0), numOr(*j, "backoff", 0),
                    numOr(*j, "done", 0), numOr(*j, "failed", 0));
    }
    if (const vip::json::JsonValue *t = doc.find("throughput")) {
        const double target =
            numOr(*t, "sim_target_ms_per_job", 0.0);
        std::printf("sim  : %.0f of %.0f ms done | %.0f sim ms per "
                    "wall s | ETA %s\n",
                    numOr(*t, "sim_ms_done", 0),
                    target * (doc.find("jobs")
                                  ? numOr(*doc.find("jobs"), "total",
                                          0)
                                  : 0),
                    numOr(*t, "sim_ms_per_wall_s", 0),
                    fmtMs(numOr(*t, "eta_ms", -1.0)).c_str());
    }

    if (const vip::json::JsonValue *jd = doc.find("job_detail")) {
        std::printf("%-14s %-8s %3s %9s  %-16s %s\n", "job", "state",
                    "try", "sim_ms", "rate window", "steady");
        for (const vip::json::JsonValue &row : jd->arr) {
            std::vector<double> w;
            if (const vip::json::JsonValue *rw =
                    row.find("rate_window")) {
                for (const vip::json::JsonValue &v : rw->arr)
                    w.push_back(v.num);
            }
            const vip::json::JsonValue *st =
                row.find("steady_tick_ms");
            const vip::json::JsonValue *rs =
                row.find("rate_steady");
            std::string steady;
            if (st)
                steady = "steady@" + fmtMs(st->num);
            else if (rs)
                steady = rs->b ? "steady" : "transient";
            std::printf("%-14s %-8s %3.0f %9.1f  %-16s %s\n",
                        vip::json::strField(row, "id").c_str(),
                        vip::json::strField(row, "state").c_str(),
                        numOr(row, "attempts", 0),
                        numOr(row, "sim_ms", 0),
                        sparkline(thin(w, 16)).c_str(),
                        steady.c_str());
        }
    }
    if (const vip::json::JsonValue *hosts = doc.find("hosts")) {
        std::printf("%-14s %-12s %4s %5s %5s\n", "host", "state",
                    "done", "quar", "opfail");
        for (const vip::json::JsonValue &h : hosts->arr) {
            std::printf("%-14s %-12s %4.0f %5.0f %5.0f\n",
                        vip::json::strField(h, "name").c_str(),
                        vip::json::strField(h, "state").c_str(),
                        numOr(h, "jobs_done", 0),
                        numOr(h, "quarantines", 0),
                        numOr(h, "op_failures", 0));
        }
    }
    return final;
}

void
renderSeries(const std::string &file, std::size_t chartRows)
{
    std::ifstream in(file);
    if (!in)
        vip::fatal("cannot read ", file);
    vip::json::JsonValue doc = vip::json::parse(in);
    if (vip::json::strField(doc, "kind") != "vip-series")
        vip::fatal(file, " is not a vip-series report");

    const vip::json::JsonValue *run = doc.find("run");
    std::printf("series %s  %s/%s  %.0f samples, %.0f rows "
                "(stride %.0f)\n",
                file.c_str(),
                run ? vip::json::strField(*run, "workload").c_str()
                    : "?",
                run ? vip::json::strField(*run, "config").c_str()
                    : "?",
                numOr(doc, "samples", 0), numOr(doc, "rows", 0),
                numOr(doc, "stride", 1));
    const vip::json::JsonValue *steady = doc.find("steady");
    std::vector<std::string> tracked;
    if (steady) {
        if (steady->find("detected") &&
            steady->find("detected")->b) {
            std::printf("steady : detected at %s\n",
                        fmtMs(numOr(*steady, "tick_ms", -1.0))
                            .c_str());
        } else {
            std::printf("steady : not reached\n");
        }
        if (const vip::json::JsonValue *t = steady->find("tracked"))
            for (const vip::json::JsonValue &p : t->arr)
                tracked.push_back(p.str);
    }

    // Chart the detector-tracked series (the run's vital signs);
    // counters chart their derived rate, gauges their raw value.
    const vip::json::JsonValue *series = doc.find("series");
    if (!series)
        return;
    for (const vip::json::JsonValue &s : series->arr) {
        const std::string path = vip::json::strField(s, "path");
        if (!tracked.empty() &&
            std::find(tracked.begin(), tracked.end(), path) ==
                tracked.end())
            continue;
        const vip::json::JsonValue *vals = s.find("rate_per_s");
        const char *what = "rate/s";
        if (!vals) {
            vals = s.find("values");
            what = "value";
        }
        if (!vals || vals->arr.empty())
            continue;
        std::vector<double> v;
        v.reserve(vals->arr.size());
        for (const vip::json::JsonValue &x : vals->arr)
            v.push_back(x.num);
        double lo = v[0], hi = v[0];
        for (double x : v) {
            lo = std::min(lo, x);
            hi = std::max(hi, x);
        }
        std::printf("%-28s %-6s [%s] %.6g..%.6g\n", path.c_str(),
                    what, sparkline(thin(v, chartRows)).c_str(), lo,
                    hi);
    }
}

void
renderMetrics(const std::string &file, std::size_t chartRows)
{
    std::ifstream in(file);
    if (!in)
        vip::fatal("cannot read ", file);
    std::string line;
    std::vector<std::string> cols;
    std::vector<std::vector<double>> data;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::stringstream ss(line);
        std::string cell;
        if (cols.empty()) {
            while (std::getline(ss, cell, ','))
                cols.push_back(cell);
            data.resize(cols.size());
            continue;
        }
        std::size_t c = 0;
        while (std::getline(ss, cell, ',') && c < data.size())
            data[c++].push_back(std::atof(cell.c_str()));
    }
    if (cols.empty())
        vip::fatal(file, " has no header row");

    std::printf("metrics %s  %zu rows x %zu columns\n", file.c_str(),
                data.empty() ? 0 : data[0].size(), cols.size());
    // Chart the busiest columns (widest dynamic range), skipping the
    // time axis itself.
    std::vector<std::size_t> order;
    for (std::size_t c = 1; c < cols.size(); ++c)
        order.push_back(c);
    auto range = [&](std::size_t c) {
        double lo = 0.0, hi = 0.0;
        if (!data[c].empty()) {
            lo = hi = data[c][0];
            for (double v : data[c]) {
                lo = std::min(lo, v);
                hi = std::max(hi, v);
            }
        }
        return hi - lo;
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return range(a) > range(b);
                     });
    const std::size_t kTop = 12;
    for (std::size_t i = 0; i < order.size() && i < kTop; ++i) {
        std::size_t c = order[i];
        if (range(c) <= 0.0)
            break;
        double lo = data[c][0], hi = data[c][0];
        for (double v : data[c]) {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        std::printf("%-28s [%s] %.6g..%.6g\n", cols[c].c_str(),
                    sparkline(thin(data[c], chartRows)).c_str(), lo,
                    hi);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string fleetDir, seriesFile, metricsFile;
    bool watch = false;
    double intervalSec = 1.0;
    long chartRows = 60;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--watch") {
            watch = true;
        } else if (arg == "--interval") {
            intervalSec = std::atof(next().c_str());
            if (!(intervalSec > 0.0))
                vip::fatal("--interval needs a positive period");
        } else if (arg == "--rows") {
            chartRows = std::atol(next().c_str());
            if (chartRows <= 0)
                vip::fatal("--rows needs a positive count");
        } else if (arg == "--series") {
            seriesFile = next();
        } else if (arg == "--metrics") {
            metricsFile = next();
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "vip_top: unknown option '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        } else if (fleetDir.empty()) {
            fleetDir = arg;
        } else {
            usage();
            return 2;
        }
    }
    const int sources = !fleetDir.empty() + !seriesFile.empty() +
                        !metricsFile.empty();
    if (sources != 1) {
        usage();
        return 2;
    }

    try {
        for (;;) {
            if (watch)
                std::printf("\033[H\033[2J");
            bool done = false;
            if (!fleetDir.empty())
                done = renderFleet(fleetDir);
            else if (!seriesFile.empty())
                renderSeries(seriesFile,
                             static_cast<std::size_t>(chartRows));
            else
                renderMetrics(metricsFile,
                              static_cast<std::size_t>(chartRows));
            std::fflush(stdout);
            if (!watch || done)
                break;
            std::this_thread::sleep_for(
                std::chrono::duration<double>(intervalSec));
        }
    } catch (const vip::SimFatal &e) {
        std::fprintf(stderr, "vip_top: %s\n", e.what());
        return 1;
    }
    return 0;
}
