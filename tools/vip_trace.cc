/**
 * @file
 * vip_trace: validate and analyze trace_event JSON from vip_sim.
 *
 *   vip_trace --check run.json          structural validation
 *   vip_trace --summary run.json        latency-breakdown summary
 *   vip_trace --summary crash-bundle/   postmortem: crash reason,
 *                                       counter snapshot, trace tail
 *   vip_trace --summary --stats s.json run.json   add the counter
 *                                       snapshot from a stats dump
 *   vip_trace --list-frames run.json    every frame lifecycle
 *   vip_trace --frame 0:12 run.json     one frame in depth: its
 *                                       lifecycle marks, per-stage
 *                                       compute, and the top stall
 *                                       contributors in its window
 *
 * A positional argument naming a directory is treated as a crash
 * bundle from --postmortem-dir: the trace is read from its
 * trace-tail.json, and --summary also prints crash.json and the
 * stats.json counter snapshot.  A *fleet shard* directory
 * (<out>/shards/<job>/, which stages attempts under a<token>/) also
 * works: the newest attempt's pm/ bundle is surfaced, with the
 * shard's committed stats.json preferred over the attempt snapshot.
 *
 * Exit codes: 0 ok, 1 validation errors / frame not found, 2 usage
 * or unparseable input.
 */

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/stats_io.hh"
#include "obs/trace_check.hh"
#include "sim/logging.hh"

namespace
{

void
usage()
{
    std::printf(
        "usage: vip_trace <mode> <trace.json | crash-bundle-dir>\n"
        "  --check              validate span nesting/async pairing\n"
        "  --summary            latency breakdown from spans; for a\n"
        "                       crash bundle also the crash reason and\n"
        "                       the counter snapshot\n"
        "  --stats <file>       with --summary: print this stats.json\n"
        "                       counter snapshot too\n"
        "  --list-frames        list reconstructed frame lifecycles\n"
        "  --frame <flow>:<k>   one frame: lifecycle, per-stage\n"
        "                       compute, top stall contributors\n");
}

double
ms(std::uint64_t ticks)
{
    return static_cast<double>(ticks) / 1e9;
}

/**
 * Crash bundles stamp the display name from systemConfigName();
 * map it back to the spelling vip_sim --config accepts.
 */
std::string
cliConfigName(const std::string &display)
{
    if (display == "Baseline")
        return "baseline";
    if (display == "FrameBurst")
        return "frameburst";
    if (display == "IP-to-IP")
        return "iptoip";
    if (display == "IP-to-IP+FB")
        return "iptoip-fb";
    if (display == "VIP")
        return "vip";
    return display;
}

/** A reconstructed span: X events and matched B/E pairs. */
struct Span
{
    long long tid = 0;
    std::string name;
    std::uint64_t start = 0;
    std::uint64_t end = 0;
    std::int64_t flow = -1;
    std::int64_t frame = -1;
};

std::vector<Span>
collectSpans(const vip::TraceFile &f)
{
    std::vector<Span> out;
    std::map<long long, std::vector<const vip::TraceEventView *>> open;
    for (const auto &e : f.events) {
        if (e.ph == "X") {
            Span s;
            s.tid = e.tid;
            s.name = e.name;
            s.start = e.tickArg("tick");
            s.end = s.start + e.tickArg("durTicks");
            auto fl = e.numArgs.find("flow");
            auto fr = e.numArgs.find("frame");
            if (fl != e.numArgs.end())
                s.flow = static_cast<std::int64_t>(fl->second);
            if (fr != e.numArgs.end())
                s.frame = static_cast<std::int64_t>(fr->second);
            out.push_back(std::move(s));
        } else if (e.ph == "B") {
            open[e.tid].push_back(&e);
        } else if (e.ph == "E") {
            auto &st = open[e.tid];
            if (!st.empty()) {
                const auto *b = st.back();
                st.pop_back();
                out.push_back(Span{e.tid, b->name, b->tickArg("tick"),
                                   e.tickArg("tick"), -1, -1});
            }
        }
    }
    return out;
}

std::string
trackName(const vip::TraceFile &f, long long tid)
{
    auto it = f.threadNames.find(tid);
    return it == f.threadNames.end() ? std::to_string(tid)
                                     : it->second;
}

int
doCheck(const vip::TraceFile &f)
{
    auto r = vip::checkTrace(f);
    std::printf("%zu events: %zu spans (%zu open at EOF), %zu "
                "instants, %zu counters, %zu async open\n",
                r.events, r.spans, r.openAtEof, r.instants,
                r.counters, r.asyncOpen);
    if (f.droppedEvents > 0) {
        std::printf("note: %llu events dropped by the ring buffer; "
                    "unmatched ends are not errors\n",
                    static_cast<unsigned long long>(f.droppedEvents));
    }
    for (const auto &e : r.errors)
        std::printf("error: %s\n", e.c_str());
    if (r.ok)
        std::printf("OK\n");
    else
        std::printf("FAILED (%zu errors)\n", r.errors.size());
    return r.ok ? 0 : 1;
}

int
doSummary(const vip::TraceFile &f)
{
    for (const auto &[k, v] : f.otherData)
        std::printf("# %s = %s\n", k.c_str(), v.c_str());

    auto frames = vip::frameLifecycles(f);
    std::uint64_t done = 0, misses = 0;
    double sum = 0, mx = 0;
    for (const auto &fr : frames) {
        if (!fr.complete)
            continue;
        ++done;
        double l = ms(fr.endToEndTicks());
        sum += l;
        mx = std::max(mx, l);
        if (fr.deadlineTick && fr.endTick > fr.deadlineTick)
            ++misses;
    }
    std::printf("frames      : %zu lifecycles, %llu complete, %llu "
                "deadline misses\n",
                frames.size(),
                static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(misses));
    if (done > 0) {
        std::printf("e2e latency : %.3f ms mean, %.3f ms max (from "
                    "spans alone)\n",
                    sum / static_cast<double>(done), mx);
    }

    // Per-stage announce -> done, averaged over frames.
    std::map<std::string, std::pair<double, std::uint64_t>> stages;
    for (const auto &fr : frames) {
        std::map<std::string, std::uint64_t> announce;
        for (const auto &[tick, nm] : fr.stageMarks) {
            auto sep = nm.rfind(':');
            if (sep == std::string::npos)
                continue;
            std::string stage = nm.substr(0, sep);
            std::string what = nm.substr(sep + 1);
            if (what == "announce") {
                if (!announce.count(stage))
                    announce[stage] = tick;
            } else if (what == "done" && announce.count(stage)) {
                auto &agg = stages[stage];
                agg.first += ms(tick - announce[stage]);
                ++agg.second;
            }
        }
    }
    if (!stages.empty()) {
        std::printf("per-stage announce->done (mean ms):\n");
        for (const auto &[stage, agg] : stages) {
            std::printf("  %-5s %8.3f  (n=%llu)\n", stage.c_str(),
                        agg.first / static_cast<double>(agg.second),
                        static_cast<unsigned long long>(agg.second));
        }
    }

    // Engine-state occupancy per track.
    std::map<std::string, std::map<std::string, double>> engines;
    for (const auto &s : collectSpans(f)) {
        std::string trk = trackName(f, s.tid);
        if (trk.size() > 7 &&
            trk.compare(trk.size() - 7, 7, ".engine") == 0)
            engines[trk][s.name] += ms(s.end - s.start);
    }
    if (!engines.empty()) {
        std::printf("engine state (ms):\n");
        for (const auto &[trk, by] : engines) {
            std::printf("  %-12s", trk.c_str());
            for (const auto &[nm, t] : by)
                std::printf("  %s %.2f", nm.c_str(), t);
            std::printf("\n");
        }
    }
    return 0;
}

/** Print crash.json from a postmortem bundle. */
void
printCrash(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return;
    auto root = vip::json::parse(in);
    const auto *crash = root.find("crash");
    if (!crash)
        return;
    std::printf("crash       : %s at tick %.0f (digest %s)\n",
                vip::json::strField(*crash, "kind").c_str(),
                vip::json::numField(*crash, "tick"),
                vip::json::strField(*crash, "stateDigest").c_str());
    std::printf("reason      : %s\n",
                vip::json::strField(*crash, "reason").c_str());
    const auto *plan = crash->find("faultPlan");
    if (plan && !plan->str.empty())
        std::printf("fault plan  : %s\n", plan->str.c_str());
    const auto *csv = crash->find("metricsCsv");
    if (csv && !csv->str.empty())
        std::printf("metrics csv : %s\n", csv->str.c_str());
    const auto *run = root.find("run");
    if (run) {
        std::printf("run         :");
        for (const auto &[k, v] : run->obj)
            std::printf(" %s=%s", k.c_str(), v.str.c_str());
        std::printf("\n");
    }
    // A bundle whose ring wrote at least one snapshot is resumable:
    // name the checkpoint and spell out the resume command.
    const auto *ckpt = crash->find("checkpoint");
    if (ckpt && !ckpt->str.empty()) {
        std::printf("checkpoint  : %s (tick %.0f, %.3f ms)\n",
                    ckpt->str.c_str(),
                    vip::json::numField(*crash, "checkpointTick"),
                    vip::json::numField(*crash, "checkpointTick") /
                        1e9);
        std::printf("resume with : vip_sim");
        if (run) {
            auto field = [&](const char *key, const char *flag) {
                const auto *v = run->find(key);
                if (v && !v->str.empty()) {
                    auto val = std::strcmp(key, "config") == 0
                                   ? cliConfigName(v->str)
                                   : v->str;
                    std::printf(" %s %s", flag, val.c_str());
                }
            };
            field("workload", "--workload");
            field("config", "--config");
            field("seconds", "--seconds");
            field("seed", "--seed");
        }
        std::printf(" --restore %s\n", ckpt->str.c_str());
        const auto *fp = crash->find("faultPlan");
        if (fp && !fp->str.empty()) {
            std::printf("              (plus the original --fault-* "
                        "flags: %s)\n", fp->str.c_str());
        }
    }
}

/** Print the counter snapshot from a stats.json dump. */
bool
printStats(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        return false;
    }
    auto f = vip::parseStatsJson(in);
    std::printf("counter snapshot (%zu stats):\n", f.stats.size());
    for (const auto &s : f.stats) {
        std::printf("  %-36s %14.9g %s\n", s.path.c_str(), s.value,
                    s.unit.c_str());
    }
    return true;
}

int
doListFrames(const vip::TraceFile &f)
{
    auto frames = vip::frameLifecycles(f);
    std::sort(frames.begin(), frames.end(),
              [](const vip::FrameLifecycle &a,
                 const vip::FrameLifecycle &b) {
                  return std::make_pair(a.flow, a.frame) <
                         std::make_pair(b.flow, b.frame);
              });
    for (const auto &fr : frames) {
        std::printf("%lld:%-6lld  gen %12.3f ms  e2e %8.3f ms  %s%s\n",
                    static_cast<long long>(fr.flow),
                    static_cast<long long>(fr.frame), ms(fr.genTick),
                    ms(fr.endToEndTicks()),
                    fr.complete ? "complete" : "in-flight",
                    fr.complete && fr.deadlineTick &&
                            fr.endTick > fr.deadlineTick
                        ? "  [deadline miss]"
                        : "");
    }
    std::printf("%zu frames\n", frames.size());
    return 0;
}

int
doFrame(const vip::TraceFile &f, const std::string &spec)
{
    auto sep = spec.find(':');
    if (sep == std::string::npos) {
        std::fprintf(stderr, "--frame wants <flow>:<frame>\n");
        return 2;
    }
    long long flow = std::atoll(spec.substr(0, sep).c_str());
    long long frame = std::atoll(spec.substr(sep + 1).c_str());

    auto frames = vip::frameLifecycles(f);
    const vip::FrameLifecycle *fr = nullptr;
    for (const auto &x : frames) {
        if (x.flow == flow && x.frame == frame)
            fr = &x;
    }
    if (!fr) {
        std::fprintf(stderr, "frame %lld:%lld not in trace\n", flow,
                     frame);
        return 1;
    }

    std::printf("frame %lld:%lld\n", flow, frame);
    std::printf("  generated %.6f ms, deadline %.6f ms\n",
                ms(fr->genTick), ms(fr->deadlineTick));
    if (fr->startTick)
        std::printf("  started   %.6f ms\n", ms(fr->startTick));
    for (const auto &[tick, nm] : fr->stageMarks)
        std::printf("  %-16s %.6f ms\n", nm.c_str(), ms(tick));
    if (fr->complete) {
        std::printf("  completed %.6f ms -> e2e %.6f ms (%llu "
                    "ticks)%s\n",
                    ms(fr->endTick), ms(fr->endToEndTicks()),
                    static_cast<unsigned long long>(
                        fr->endToEndTicks()),
                    fr->deadlineTick && fr->endTick > fr->deadlineTick
                        ? "  [deadline miss]"
                        : "");
    } else {
        std::printf("  never completed\n");
        return 0;
    }

    // Window of interest: the interval the e2e clock measures.
    std::uint64_t w0 = std::max(fr->genTick, fr->startTick);
    std::uint64_t w1 = fr->endTick;
    auto spans = collectSpans(f);

    // This frame's own compute, per exec track.
    std::map<std::string, double> compute;
    for (const auto &s : spans) {
        if (s.flow == flow && s.frame == frame)
            compute[trackName(f, s.tid)] += ms(s.end - s.start);
    }
    if (!compute.empty()) {
        std::printf("  per-stage unit time (ms):\n");
        for (const auto &[trk, t] : compute)
            std::printf("    %-12s %8.3f\n", trk.c_str(), t);
    }

    // Top stall contributors overlapping the frame's window.
    struct Contrib
    {
        std::string what;
        double overlapMs;
    };
    std::map<std::string, double> stalls;
    for (const auto &s : spans) {
        if (s.name != "stalled" && s.name != "backpressured")
            continue;
        std::uint64_t o0 = std::max(s.start, w0);
        std::uint64_t o1 = std::min(s.end, w1);
        if (o1 <= o0)
            continue;
        stalls[trackName(f, s.tid) + " " + s.name] += ms(o1 - o0);
    }
    std::vector<Contrib> top;
    for (const auto &[what, t] : stalls)
        top.push_back({what, t});
    std::sort(top.begin(), top.end(),
              [](const Contrib &a, const Contrib &b) {
                  return a.overlapMs > b.overlapMs;
              });
    if (!top.empty()) {
        std::printf("  top stall contributors in [%.3f, %.3f] ms:\n",
                    ms(w0), ms(w1));
        for (std::size_t i = 0; i < top.size() && i < 8; ++i) {
            std::printf("    %-28s %8.3f ms\n", top[i].what.c_str(),
                        top[i].overlapMs);
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string mode, frameSpec, file, statsFile;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--check" || arg == "--summary" ||
            arg == "--list-frames") {
            mode = arg;
        } else if (arg == "--frame") {
            mode = arg;
            if (i + 1 >= argc) {
                usage();
                return 2;
            }
            frameSpec = argv[++i];
        } else if (arg == "--stats") {
            if (i + 1 >= argc) {
                usage();
                return 2;
            }
            statsFile = argv[++i];
        } else if (arg.rfind("--stats=", 0) == 0) {
            statsFile = arg.substr(8);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 2;
        } else {
            file = arg;
        }
    }
    if (mode.empty() || file.empty()) {
        usage();
        return 2;
    }

    // A directory is a crash bundle from --postmortem-dir — or a
    // fleet shard directory whose attempts (a<token>/) each hold
    // their own pm/ bundle.  For a shard, surface the newest
    // attempt's bundle (highest fencing token = latest ownership);
    // the shard's committed stats.json, when present, beats the
    // attempt's crash snapshot.
    std::string crashFile;
    if (std::filesystem::is_directory(file)) {
        auto dir = std::filesystem::path(file);
        if (!std::filesystem::exists(dir / "trace-tail.json")) {
            std::uint64_t best = 0;
            std::filesystem::path bestPm;
            for (const auto &e :
                 std::filesystem::directory_iterator(dir)) {
                if (!e.is_directory())
                    continue;
                const std::string name = e.path().filename().string();
                if (name.size() < 2 || name[0] != 'a' ||
                    !std::isdigit(
                        static_cast<unsigned char>(name[1])))
                    continue;
                char *end = nullptr;
                const std::uint64_t token =
                    std::strtoull(name.c_str() + 1, &end, 10);
                if (*end != '\0')
                    continue;
                const auto pm = e.path() / "pm";
                if (std::filesystem::exists(pm / "trace-tail.json") &&
                    token >= best) {
                    best = token;
                    bestPm = pm;
                }
            }
            if (!bestPm.empty()) {
                std::printf("fleet shard %s: newest postmortem "
                            "bundle a%llu/pm\n",
                            dir.filename().string().c_str(),
                            static_cast<unsigned long long>(best));
                if (statsFile.empty() &&
                    std::filesystem::exists(dir / "stats.json"))
                    statsFile = (dir / "stats.json").string();
                dir = bestPm;
            } else if (mode == "--summary" &&
                       std::filesystem::exists(dir / "stats.json")) {
                // A shard whose attempts all ran clean leaves no
                // pm/ bundle; the committed counter snapshot is
                // still worth surfacing.
                std::printf("fleet shard %s: no postmortem bundle "
                            "(clean run); committed stats only\n",
                            dir.filename().string().c_str());
                if (statsFile.empty())
                    statsFile = (dir / "stats.json").string();
                return printStats(statsFile) ? 0 : 2;
            }
        }
        crashFile = (dir / "crash.json").string();
        if (statsFile.empty() &&
            std::filesystem::exists(dir / "stats.json"))
            statsFile = (dir / "stats.json").string();
        file = (dir / "trace-tail.json").string();
    }

    std::ifstream in(file);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n", file.c_str());
        return 2;
    }
    try {
        auto f = vip::parseTraceJson(in);
        if (mode == "--check")
            return doCheck(f);
        if (mode == "--summary") {
            if (!crashFile.empty())
                printCrash(crashFile);
            int rc = doSummary(f);
            if (!statsFile.empty() && !printStats(statsFile))
                rc = 2;
            return rc;
        }
        if (mode == "--list-frames")
            return doListFrames(f);
        return doFrame(f, frameSpec);
    } catch (const vip::SimFatal &e) {
        std::fprintf(stderr, "parse error: %s\n", e.what());
        return 2;
    }
}
