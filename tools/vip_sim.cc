/**
 * @file
 * vip_sim: the command-line front-end of the simulator.
 *
 * Runs one (workload, configuration) pair with every knob exposed as
 * a flag and emits the results as a human-readable report, an
 * optional full stats dump, and an optional per-frame CSV trace.
 *
 *   vip_sim --workload W4 --config vip --seconds 0.5
 *   vip_sim --workload A5 --config baseline --ideal-memory
 *   vip_sim --workload W7 --config iptoip-fb --frame-csv out.csv
 *   vip_sim --workload W4 --config vip --trace-out run.json \
 *           --trace ip,frame,sched --metrics-out run.csv
 *   vip_sim --list
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/simulation.hh"
#include "fleet/transport/artifact.hh"
#include "obs/provenance.hh"

namespace
{

/**
 * SIGINT/SIGTERM land here; the simulation polls the flag between
 * events and stops gracefully at the first quiescent point — final
 * checkpoint written, metrics rows already flushed, stats dumped on
 * the way out — so an interrupted run (or a fleet-killed worker)
 * always leaves a resumable trail.  main() exits 128+signal.
 */
std::atomic<int> gSignal{0};

extern "C" void
onSignal(int sig)
{
    gSignal.store(sig, std::memory_order_relaxed);
}

void
usage()
{
    std::printf(
        "usage: vip_sim [options]\n"
        "  --workload <A1..A7|W1..W8>   workload (default W4)\n"
        "  --config <name>              baseline | frameburst |\n"
        "                               iptoip | iptoip-fb | vip\n"
        "  --seconds <s>                simulated time (default 0.4)\n"
        "  --seed <n>                   RNG seed (default 1)\n"
        "  --burst <frames>             default burst size\n"
        "  --lanes <n>                  VIP buffer lanes per IP\n"
        "  --sched <fifo|rr|edf>        VIP hardware scheduler\n"
        "  --lane-bytes <n>             per-lane buffer bytes\n"
        "  --deadline <periods>         QoS deadline in frame periods\n"
        "  --ideal-memory               zero-latency DRAM (Fig 3)\n"
        "  --no-lowpower                disable DRAM sleep states\n"
        "  --dvfs                       ondemand CPU governor\n"
        "  --vsync                      judge QoS at vsync boundaries\n"
        "  --spill                      overflow full lanes to DRAM\n"
        "  --overload-policy <p>        reject | degrade | besteffort\n"
        "                               (admission control at open())\n"
        "  --admission-headroom <f>     IP capacity fraction admission\n"
        "                               keeps free (default 0.05)\n"
        "  --shed-after <frames>        degrade: shed a frame after N\n"
        "                               consecutive late frames\n"
        "  --fault-plan <spec>          fault plan: a preset name\n"
        "                               (none|light|moderate|heavy) or\n"
        "                               key=value pairs, e.g.\n"
        "                               hang=0.01,corrupt=0.01,seed=7\n"
        "  --fault-hang <p>             engine hang probability/unit\n"
        "  --fault-corrupt <p>          sub-frame corruption prob.\n"
        "  --fault-xfer <p>             SA transfer error probability\n"
        "  --fault-ecc <p>              correctable ECC prob./burst\n"
        "  --fault-ecc-fatal <p>        uncorrectable ECC probability\n"
        "  --fault-seed <n>             fault RNG seed (default 1)\n"
        "  --fault-watchdog-us <us>     IP watchdog timeout (0 = off)\n"
        "  --fault-retries <n>          per-unit retry budget\n"
        "  --guard-ms <ms>              no-progress guard interval\n"
        "                               (default 250, 0 disables)\n"
        "  --audit <mode>               invariant audits: off | final |\n"
        "                               periodic[:<ms>] | strict\n"
        "                               (default off)\n"
        "  --digest-out <file>          write the audit digest stream\n"
        "                               (for vip_diverge; implies\n"
        "                               --audit periodic:1 if off)\n"
        "  --stats                      dump component statistics\n"
        "  --frame-csv <file>           write the per-frame CSV trace\n"
        "  --trace-out <file>           write a Chrome/Perfetto\n"
        "                               trace_event JSON of the run\n"
        "  --trace <cat,...>            categories to record: ip,\n"
        "                               frame, sa, dram, cpu, sched,\n"
        "                               fault, power (default all)\n"
        "  --trace-buffer <events>      trace ring capacity\n"
        "                               (default 524288, drop-oldest)\n"
        "  --metrics-out <file>         periodic metrics CSV\n"
        "                               (streamed row-by-row; survives\n"
        "                               a killed run)\n"
        "  --metrics-interval-ms <ms>   sampling period (default 1)\n"
        "  --stats-out <file>           write every registered counter\n"
        "                               as self-describing JSON (the\n"
        "                               format vip_stats_diff reads)\n"
        "  --prof[=<file>]              profile the event-loop hot\n"
        "                               path (per-kind dispatch wall\n"
        "                               time, queue pressure) and\n"
        "                               write prof.json (or <file>);\n"
        "                               digest-neutral, <5%% overhead\n"
        "  --prof-sample-every <n>      steady_clock sampling stride\n"
        "                               (default 64)\n"
        "  --ts[=<glob>]                sample glob-selected stats at\n"
        "                               the metrics cadence into a\n"
        "                               bounded decimating series ring\n"
        "                               and run the steady-state\n"
        "                               detector (default glob *);\n"
        "                               digest-neutral\n"
        "  --ts-out <file>              write the sampled series plus\n"
        "                               derived rates/EWMA/min/max as\n"
        "                               self-describing JSON (the\n"
        "                               format vip_top renders);\n"
        "                               implies --ts\n"
        "  --checkpoint-on-steady[=<f>] write a one-shot snapshot at\n"
        "                               the first quiescent point\n"
        "                               after steady state is detected\n"
        "                               (default steady.vips; implies\n"
        "                               --ts); the warm-start seed for\n"
        "                               --restore\n"
        "  --postmortem-dir <dir>       on a fatal error write a crash\n"
        "                               bundle (crash.json, stats.json,\n"
        "                               trace-tail.json) there; also\n"
        "                               keeps a checkpoint ring so the\n"
        "                               run is resumable after a kill\n"
        "  --checkpoint-out <file>      write a snapshot at the end of\n"
        "                               the run (and at every cadence\n"
        "                               boundary with the flag below;\n"
        "                               the prior file rotates to\n"
        "                               <file>.prev)\n"
        "  --checkpoint-every-ms <ms>   checkpoint cadence in simulated\n"
        "                               ms; each snapshot lands at the\n"
        "                               first quiescent point after a\n"
        "                               boundary (0 = end only)\n"
        "  --restore <file>             resume from a snapshot; pass\n"
        "                               the same workload/config/seed\n"
        "                               flags as the original run (any\n"
        "                               skew is a fatal error).  The\n"
        "                               resumed run's digests and\n"
        "                               stats are bit-identical to an\n"
        "                               uninterrupted run\n"
        "  --fnv1a <file>               print the file's FNV-1a 64\n"
        "                               checksum (16 hex digits) and\n"
        "                               exit; exit 1 if unreadable.\n"
        "                               Used by the fleet's remote\n"
        "                               artifact verification\n"
        "  --list                       list workloads and exit\n");
}

vip::SystemConfig
parseConfig(const std::string &name)
{
    if (name == "baseline")
        return vip::SystemConfig::Baseline;
    if (name == "frameburst")
        return vip::SystemConfig::FrameBurst;
    if (name == "iptoip")
        return vip::SystemConfig::IpToIp;
    if (name == "iptoip-fb")
        return vip::SystemConfig::IpToIpBurst;
    if (name == "vip")
        return vip::SystemConfig::VIP;
    vip::fatal("unknown config '", name, "'");
}

vip::Workload
parseWorkload(const std::string &name)
{
    if (name.size() >= 2 && (name[0] == 'A' || name[0] == 'a'))
        return vip::WorkloadCatalog::single(std::atoi(&name[1]));
    if (name.size() >= 2 && (name[0] == 'W' || name[0] == 'w'))
        return vip::WorkloadCatalog::byIndex(std::atoi(&name[1]));
    vip::fatal("unknown workload '", name, "' (use A1..A7 or W1..W8)");
}

void
listWorkloads()
{
    std::printf("single applications (Table 1):\n");
    for (int i = 1; i <= 7; ++i) {
        auto a = vip::AppCatalog::byIndex(i);
        std::printf("  A%d  %-14s (%s)\n", i, a.name.c_str(),
                    vip::appClassName(a.cls));
        for (const auto &f : a.flows) {
            std::printf("      %-26s ", f.name.c_str());
            for (auto s : f.stages)
                std::printf("%s-", vip::ipKindName(s));
            std::printf(" @%.0f FPS\n", f.fps);
        }
    }
    std::printf("multi-app workloads (Table 2):\n");
    for (const auto &w : vip::WorkloadCatalog::all()) {
        std::printf("  %-3s %s\n", w.name.c_str(),
                    w.useCase.c_str());
    }
}

void
report(const vip::RunStats &s)
{
    std::printf("==== %s / %s: %.2f simulated seconds ====\n",
                s.workloadName.c_str(), s.configName.c_str(),
                s.seconds);
    std::printf("frames      : %llu completed / %llu generated "
                "(%.1f FPS displayed)\n",
                static_cast<unsigned long long>(s.framesCompleted),
                static_cast<unsigned long long>(s.framesGenerated),
                s.achievedFps);
    std::printf("QoS         : %llu violations, %llu drops "
                "(%.1f%% / %.1f%%)\n",
                static_cast<unsigned long long>(s.violations),
                static_cast<unsigned long long>(s.drops),
                s.violationRate * 100.0, s.dropRate * 100.0);
    std::printf("latency     : %.3f ms from generation, %.3f ms "
                "pipeline transit\n",
                s.meanFlowTimeMs, s.meanTransitMs);
    std::printf("energy      : %.1f mJ total, %.3f mJ/frame "
                "(cpu %.1f, dram %.1f, sa %.1f, ip %.1f, buf %.2f)\n",
                s.totalEnergyMj, s.energyPerFrameMj, s.cpuEnergyMj,
                s.dramEnergyMj, s.saEnergyMj, s.ipEnergyMj,
                s.bufferEnergyMj);
    std::printf("CPU         : %.1f ms active, %llu interrupts "
                "(%.1f per 100 ms), %.0fM instructions, %.0f%% "
                "asleep\n",
                s.cpuActiveMs,
                static_cast<unsigned long long>(s.interrupts),
                s.interruptsPer100ms,
                static_cast<double>(s.instructions) / 1e6,
                s.cpuSleepFraction * 100.0);
    std::printf("memory      : %.2f GB/s avg (%.3f GB moved), "
                "row-hit %.0f%%, >80%% peak %.0f%% of time\n",
                s.avgMemBandwidthGBps, s.memBytesGB,
                s.memRowHitRate * 100.0,
                s.fracTimeAbove80PctBw * 100.0);
    std::printf("system agent: %.1f%% utilized\n",
                s.saUtilization * 100.0);
    const auto &L = s.latency;
    if (L.endToEnd.count > 0) {
        auto row = [](const char *nm,
                      const vip::LatencyBreakdown &b) {
            if (b.count == 0)
                return;
            std::printf("  %-8s %8.3f %8.3f %8.3f %8.3f  (n=%llu)\n",
                        nm, b.p50Ms, b.p95Ms, b.p99Ms, b.maxMs,
                        static_cast<unsigned long long>(b.count));
        };
        std::printf("latency breakdown (p50/p95/p99/max ms):\n");
        row("e2e", L.endToEnd);
        row("transit", L.transit);
        row("sa-xfer", L.saTransfer);
        row("dram", L.dramBurst);
        for (const auto &st : L.stages) {
            std::printf("  stage %-4s total %.3f/%.3f/%.3f ms  "
                        "mean wait %.3f  compute %.3f  blocked "
                        "%.3f ms\n",
                        st.stage.c_str(), st.total.p50Ms,
                        st.total.p95Ms, st.total.p99Ms,
                        st.wait.meanMs, st.compute.meanMs,
                        st.blocked.meanMs);
        }
    }
    if (s.faults.injected() > 0) {
        const auto &f = s.faults;
        std::printf("faults      : %llu injected (hang %llu, "
                    "corrupt %llu, xfer %llu, ecc %llu+%llu)\n",
                    static_cast<unsigned long long>(f.injected()),
                    static_cast<unsigned long long>(f.engineHangs),
                    static_cast<unsigned long long>(f.corruptions),
                    static_cast<unsigned long long>(f.transferErrors),
                    static_cast<unsigned long long>(f.eccCorrectable),
                    static_cast<unsigned long long>(
                        f.eccUncorrectable));
        std::printf("recovery    : %llu watchdog resets, %llu unit "
                    "retries, %llu retransmits, %llu frames "
                    "degraded, %.3f ms mean / %.3f ms max recovery\n",
                    static_cast<unsigned long long>(f.watchdogResets),
                    static_cast<unsigned long long>(f.unitRetries),
                    static_cast<unsigned long long>(
                        f.transferRetries),
                    static_cast<unsigned long long>(f.framesDegraded),
                    f.meanRecoveryMs(), f.recoveryMaxMs);
    }
    if (s.framesShed > 0 || s.flowsRejected > 0 ||
        s.flowsDownRated > 0 || s.laneOverflows > 0) {
        std::printf("overload    : %llu frames shed (%.1f%%), %u "
                    "flows rejected, %u down-rated, %llu lane "
                    "overflows\n",
                    static_cast<unsigned long long>(s.framesShed),
                    s.shedRate * 100.0, s.flowsRejected,
                    s.flowsDownRated,
                    static_cast<unsigned long long>(s.laneOverflows));
    }
    std::printf("per-flow:\n");
    for (const auto &f : s.flows) {
        std::printf("  %-28s %4llu/%llu frames, %llu viol, "
                    "%.2f ms, %.1f FPS%s%s\n",
                    f.name.c_str(),
                    static_cast<unsigned long long>(f.completed),
                    static_cast<unsigned long long>(f.generated),
                    static_cast<unsigned long long>(f.violations),
                    f.meanFlowTimeMs, f.achievedFps,
                    f.qosCritical ? "" : "  (non-critical)",
                    !f.admitted ? "  [rejected]"
                                : (f.fps != f.nominalFps
                                       ? "  [down-rated]"
                                       : ""));
        if (f.shed > 0) {
            std::printf("  %-28s %4llu frames shed at the chain "
                        "head\n", "",
                        static_cast<unsigned long long>(f.shed));
        }
    }
    std::printf("per-IP:\n");
    for (const auto &ip : s.ips) {
        std::printf("  %-5s active %7.2f ms, stall %7.2f ms, "
                    "util %.2f, %6.1f MB DRAM, %llu ctx switches\n",
                    ip.name.c_str(), ip.activeMs, ip.stallMs,
                    ip.utilization,
                    static_cast<double>(ip.memBytes) / 1e6,
                    static_cast<unsigned long long>(
                        ip.contextSwitches));
    }
}

/** Write the trace JSON and metrics CSV, when requested. */
bool
traceJson(vip::Simulation &sim, const vip::SocConfig &cfg,
          const std::string &workload, const std::string &config)
{
    if (cfg.trace.enabled()) {
        std::ofstream out(cfg.trace.out);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         cfg.trace.out.c_str());
            return false;
        }
        sim.tracer()->writeJson(
            out, {{"workload", workload},
                  {"config", config},
                  {"seed", std::to_string(cfg.seed)}});
        std::printf("trace written to %s (%zu events, %llu "
                    "dropped)\n",
                    cfg.trace.out.c_str(), sim.tracer()->size(),
                    static_cast<unsigned long long>(
                        sim.tracer()->dropped()));
    }
    if (cfg.metrics.enabled()) {
        // Rows were streamed (and flushed) as they were sampled;
        // rewrite only if the incremental stream could not be opened.
        if (!sim.metrics()->streaming()) {
            std::ofstream out(cfg.metrics.out);
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n",
                             cfg.metrics.out.c_str());
                return false;
            }
            sim.metrics()->writeCsv(out);
        }
        std::printf("metrics written to %s (%zu rows, %zu probes)\n",
                    cfg.metrics.out.c_str(), sim.metrics()->rows(),
                    sim.metrics()->probes());
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "W4";
    std::string config = "vip";
    std::string traceFile;
    std::string digestFile;
    bool wantStats = false;
    vip::SocConfig cfg;
    cfg.simSeconds = 0.4;

    try {
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                vip::fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--fnv1a") {
            // Checksum-and-exit mode: lets a bare remote host verify
            // staged/produced artifacts with no tooling beyond the
            // worker binary itself.
            const std::string path = next();
            bool ok = false;
            const std::uint64_t h = vip::fleet::fnv1aFile(path, &ok);
            if (!ok)
                return 1;
            std::printf("%s\n", vip::fleet::fnvHex(h).c_str());
            return 0;
        } else if (arg == "--workload") {
            workload = next();
        } else if (arg == "--config") {
            config = next();
        } else if (arg == "--seconds") {
            cfg.simSeconds = std::atof(next().c_str());
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--burst") {
            cfg.burstFrames = std::atoi(next().c_str());
        } else if (arg == "--lanes") {
            cfg.vipLanes = std::atoi(next().c_str());
        } else if (arg == "--sched") {
            auto v = next();
            cfg.vipSched = v == "fifo" ? vip::SchedPolicy::FIFO
                : v == "rr" ? vip::SchedPolicy::RoundRobin
                : vip::SchedPolicy::EDF;
        } else if (arg == "--lane-bytes") {
            cfg.laneBytes = std::atoi(next().c_str());
        } else if (arg == "--deadline") {
            cfg.deadlineFrames = std::atof(next().c_str());
        } else if (arg == "--ideal-memory") {
            cfg.dram.ideal = true;
        } else if (arg == "--no-lowpower") {
            cfg.dram.enableLowPower = false;
        } else if (arg == "--dvfs") {
            cfg.cpu.governor = vip::CpuGovernor::OnDemand;
        } else if (arg == "--vsync") {
            cfg.vsyncAligned = true;
        } else if (arg == "--spill") {
            cfg.overflowToMemory = true;
        } else if (arg == "--overload-policy") {
            auto v = next();
            if (v == "reject")
                cfg.overloadPolicy = vip::OverloadPolicy::Reject;
            else if (v == "degrade")
                cfg.overloadPolicy = vip::OverloadPolicy::Degrade;
            else if (v == "besteffort")
                cfg.overloadPolicy = vip::OverloadPolicy::BestEffort;
            else
                vip::fatal("unknown overload policy '", v, "'");
        } else if (arg == "--admission-headroom") {
            cfg.admissionHeadroom = std::atof(next().c_str());
        } else if (arg == "--shed-after") {
            cfg.shedAfterLateFrames = std::atoi(next().c_str());
        } else if (arg == "--fault-plan") {
            cfg.fault = vip::FaultPlan::parse(next());
        } else if (arg == "--fault-hang") {
            cfg.fault.engineHangProb = std::atof(next().c_str());
        } else if (arg == "--fault-corrupt") {
            cfg.fault.subframeCorruptProb = std::atof(next().c_str());
        } else if (arg == "--fault-xfer") {
            cfg.fault.transferErrorProb = std::atof(next().c_str());
        } else if (arg == "--fault-ecc") {
            cfg.fault.eccCorrectableProb = std::atof(next().c_str());
        } else if (arg == "--fault-ecc-fatal") {
            cfg.fault.eccUncorrectableProb =
                std::atof(next().c_str());
        } else if (arg == "--fault-seed") {
            cfg.fault.seed =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--fault-watchdog-us") {
            cfg.fault.watchdogTimeout =
                vip::fromUs(std::atof(next().c_str()));
        } else if (arg == "--fault-retries") {
            cfg.fault.maxRetries = std::atoi(next().c_str());
        } else if (arg == "--guard-ms") {
            cfg.noProgressSec = std::atof(next().c_str()) / 1000.0;
        } else if (arg == "--audit") {
            cfg.audit = vip::AuditConfig::parse(next());
        } else if (arg.rfind("--audit=", 0) == 0) {
            cfg.audit = vip::AuditConfig::parse(arg.substr(8));
        } else if (arg == "--digest-out") {
            digestFile = next();
        } else if (arg.rfind("--digest-out=", 0) == 0) {
            digestFile = arg.substr(13);
        } else if (arg == "--stats") {
            wantStats = true;
        } else if (arg == "--frame-csv") {
            traceFile = next();
            cfg.recordTrace = true;
        } else if (arg == "--trace-out") {
            cfg.trace.out = next();
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            cfg.trace.out = arg.substr(12);
        } else if (arg == "--trace") {
            cfg.trace.categories = vip::parseTraceCats(next());
        } else if (arg.rfind("--trace=", 0) == 0) {
            cfg.trace.categories =
                vip::parseTraceCats(arg.substr(8));
        } else if (arg == "--trace-buffer") {
            const std::string v = next();
            char *end = nullptr;
            cfg.trace.bufferEvents =
                std::strtoull(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0'
                || cfg.trace.bufferEvents == 0)
                vip::fatal("--trace-buffer needs a positive event "
                           "count, got '", v, "'");
        } else if (arg == "--metrics-out") {
            cfg.metrics.out = next();
        } else if (arg.rfind("--metrics-out=", 0) == 0) {
            cfg.metrics.out = arg.substr(14);
        } else if (arg == "--stats-out") {
            cfg.statsOut = next();
        } else if (arg.rfind("--stats-out=", 0) == 0) {
            cfg.statsOut = arg.substr(12);
        } else if (arg == "--prof") {
            cfg.prof.out = "prof.json";
        } else if (arg.rfind("--prof=", 0) == 0) {
            cfg.prof.out = arg.substr(7);
            if (cfg.prof.out.empty())
                vip::fatal("--prof= needs a file name");
        } else if (arg == "--prof-sample-every" ||
                   arg.rfind("--prof-sample-every=", 0) == 0) {
            std::string v = arg[19] == '=' ? arg.substr(20) : next();
            char *end = nullptr;
            cfg.prof.sampleEvery = std::strtoull(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0'
                || cfg.prof.sampleEvery == 0)
                vip::fatal("--prof-sample-every needs a positive "
                           "count, got '", v, "'");
        } else if (arg == "--ts") {
            cfg.ts.armed = true;
        } else if (arg.rfind("--ts=", 0) == 0) {
            cfg.ts.armed = true;
            cfg.ts.glob = arg.substr(5);
            if (cfg.ts.glob.empty())
                vip::fatal("--ts= needs a stat glob");
        } else if (arg == "--ts-out") {
            cfg.ts.out = next();
            cfg.ts.armed = true;
        } else if (arg.rfind("--ts-out=", 0) == 0) {
            cfg.ts.out = arg.substr(9);
            cfg.ts.armed = true;
            if (cfg.ts.out.empty())
                vip::fatal("--ts-out= needs a file name");
        } else if (arg == "--checkpoint-on-steady") {
            cfg.ts.checkpointOnSteady = "steady.vips";
            cfg.ts.armed = true;
        } else if (arg.rfind("--checkpoint-on-steady=", 0) == 0) {
            cfg.ts.checkpointOnSteady = arg.substr(23);
            cfg.ts.armed = true;
            if (cfg.ts.checkpointOnSteady.empty())
                vip::fatal("--checkpoint-on-steady= needs a file "
                           "name");
        } else if (arg == "--postmortem-dir") {
            cfg.postmortemDir = next();
        } else if (arg.rfind("--postmortem-dir=", 0) == 0) {
            cfg.postmortemDir = arg.substr(17);
        } else if (arg == "--checkpoint-out") {
            cfg.checkpointOut = next();
        } else if (arg.rfind("--checkpoint-out=", 0) == 0) {
            cfg.checkpointOut = arg.substr(17);
        } else if (arg == "--checkpoint-every-ms") {
            const std::string v = next();
            char *end = nullptr;
            cfg.checkpointEveryMs = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0' ||
                !(cfg.checkpointEveryMs > 0.0))
                vip::fatal("--checkpoint-every-ms needs a "
                           "positive period, got '", v, "'");
        } else if (arg == "--restore") {
            cfg.restorePath = next();
        } else if (arg.rfind("--restore=", 0) == 0) {
            cfg.restorePath = arg.substr(10);
        } else if (arg == "--metrics-interval-ms") {
            const std::string v = next();
            cfg.metrics.intervalMs = std::atof(v.c_str());
            if (!(cfg.metrics.intervalMs > 0.0))
                vip::fatal("--metrics-interval-ms needs a positive "
                           "period, got '", v, "'");
        } else if (arg == "--list") {
            listWorkloads();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 1;
        }
    }

        cfg.system = parseConfig(config);
        if (!digestFile.empty() && !cfg.audit.enabled())
            cfg.audit = vip::AuditConfig::parse("periodic:1");
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        cfg.interruptFlag = &gSignal;
        vip::Simulation sim(cfg, parseWorkload(workload));
        auto s = sim.run();
        report(s);
        if (sim.interrupted()) {
            std::fprintf(stderr,
                         "interrupted : signal %d at %.3f simulated "
                         "ms; outputs flushed%s%s\n",
                         sim.interruptSignal(),
                         vip::toMs(sim.system().curTick()),
                         sim.checkpointsWritten() > 0
                             ? ", resume with --restore "
                             : " (no checkpoint ring armed)",
                         sim.checkpointsWritten() > 0
                             ? sim.lastCheckpointPath().c_str()
                             : "");
        }
        if (sim.checkpointsWritten() > 0) {
            std::printf("checkpoints : %llu snapshot(s) written%s%s\n",
                        static_cast<unsigned long long>(
                            sim.checkpointsWritten()),
                        cfg.checkpointOut.empty() ? "" : ", latest ",
                        cfg.checkpointOut.c_str());
        }
        if (cfg.audit.enabled()) {
            std::printf("audit       : %llu passes, %llu digest "
                        "records, %llu violations (%s), stream "
                        "%016llx\n",
                        static_cast<unsigned long long>(s.auditPasses),
                        static_cast<unsigned long long>(
                            s.auditRecords),
                        static_cast<unsigned long long>(
                            s.auditViolations),
                        vip::auditModeName(cfg.audit.mode),
                        static_cast<unsigned long long>(
                            s.digestStreamHash));
            for (const auto &v : sim.auditor().violations())
                std::printf("  %s\n", v.format().c_str());
        }
        if (wantStats)
            sim.dumpStats(std::cout);
        if (!cfg.statsOut.empty()) {
            std::ofstream out(cfg.statsOut);
            if (!out)
                vip::fatal("cannot write ", cfg.statsOut);
            sim.writeStatsJson(out);
            std::printf("stats written to %s (%zu stats)\n",
                        cfg.statsOut.c_str(),
                        sim.statsRegistry().size());
        }
        if (cfg.prof.enabled()) {
            std::ofstream out(cfg.prof.out);
            if (!out)
                vip::fatal("cannot write ", cfg.prof.out);
            sim.writeProfJson(out);
            std::printf("profile written to %s (%llu dispatches, "
                        "%llu sampled)\n",
                        cfg.prof.out.c_str(),
                        static_cast<unsigned long long>(
                            sim.profiler()->dispatches()),
                        static_cast<unsigned long long>(
                            sim.profiler()->sampledDispatches()));
        }
        if (cfg.ts.enabled() && !cfg.ts.out.empty()) {
            std::ofstream out(cfg.ts.out);
            if (!out)
                vip::fatal("cannot write ", cfg.ts.out);
            sim.writeSeriesJson(out);
            const vip::TimeSeries *ts = sim.timeseries();
            if (ts->steadyDetected()) {
                std::printf("series written to %s (%zu rows x %zu "
                            "stats; steady at %.3f ms)\n",
                            cfg.ts.out.c_str(), ts->rows(),
                            ts->selected(), ts->steadyTickMs());
            } else {
                std::printf("series written to %s (%zu rows x %zu "
                            "stats; steady state not reached)\n",
                            cfg.ts.out.c_str(), ts->rows(),
                            ts->selected());
            }
        }
        if (cfg.ts.enabled() &&
            !cfg.ts.checkpointOnSteady.empty()) {
            const vip::TimeSeries *ts = sim.timeseries();
            if (ts->steadyDetected()) {
                std::printf("steady      : detected at %.3f ms; "
                            "warm-start snapshot %s\n",
                            ts->steadyTickMs(),
                            cfg.ts.checkpointOnSteady.c_str());
            } else {
                std::fprintf(stderr,
                             "steady      : not reached; no snapshot "
                             "written to %s\n",
                             cfg.ts.checkpointOnSteady.c_str());
            }
        }
        if (!traceFile.empty()) {
            std::ofstream out(traceFile);
            s.trace.dumpCsv(out);
            std::printf("trace written to %s (%zu frames)\n",
                        traceFile.c_str(), s.trace.size());
        }
        if (!traceJson(sim, cfg, workload, config))
            return 1;
        if (!digestFile.empty()) {
            std::ofstream out(digestFile);
            if (!out)
                vip::fatal("cannot write ", digestFile);
            std::vector<std::string> meta{
                "workload=" + workload, "config=" + config,
                "seed=" + std::to_string(cfg.seed)};
            for (const auto &l : vip::provenanceMetaLines())
                meta.push_back(l);
            sim.auditor().writeDigestStream(out, meta);
            std::printf("digest stream written to %s (%zu records)\n",
                        digestFile.c_str(),
                        sim.auditor().stream().records.size());
        }
        if (sim.interrupted())
            return 128 + sim.interruptSignal();
        if (s.auditViolations > 0)
            return 1;
    } catch (const vip::SimFatal &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
