/**
 * @file
 * vip_sim: the command-line front-end of the simulator.
 *
 * Runs one (workload, configuration) pair with every knob exposed as
 * a flag and emits the results as a human-readable report, an
 * optional full stats dump, and an optional per-frame CSV trace.
 *
 *   vip_sim --workload W4 --config vip --seconds 0.5
 *   vip_sim --workload A5 --config baseline --ideal-memory
 *   vip_sim --workload W7 --config iptoip-fb --trace out.csv
 *   vip_sim --list
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/simulation.hh"

namespace
{

void
usage()
{
    std::printf(
        "usage: vip_sim [options]\n"
        "  --workload <A1..A7|W1..W8>   workload (default W4)\n"
        "  --config <name>              baseline | frameburst |\n"
        "                               iptoip | iptoip-fb | vip\n"
        "  --seconds <s>                simulated time (default 0.4)\n"
        "  --seed <n>                   RNG seed (default 1)\n"
        "  --burst <frames>             default burst size\n"
        "  --lanes <n>                  VIP buffer lanes per IP\n"
        "  --sched <fifo|rr|edf>        VIP hardware scheduler\n"
        "  --lane-bytes <n>             per-lane buffer bytes\n"
        "  --deadline <periods>         QoS deadline in frame periods\n"
        "  --ideal-memory               zero-latency DRAM (Fig 3)\n"
        "  --no-lowpower                disable DRAM sleep states\n"
        "  --dvfs                       ondemand CPU governor\n"
        "  --vsync                      judge QoS at vsync boundaries\n"
        "  --spill                      overflow full lanes to DRAM\n"
        "  --overload-policy <p>        reject | degrade | besteffort\n"
        "                               (admission control at open())\n"
        "  --admission-headroom <f>     IP capacity fraction admission\n"
        "                               keeps free (default 0.05)\n"
        "  --shed-after <frames>        degrade: shed a frame after N\n"
        "                               consecutive late frames\n"
        "  --fault-plan <spec>          fault plan: a preset name\n"
        "                               (none|light|moderate|heavy) or\n"
        "                               key=value pairs, e.g.\n"
        "                               hang=0.01,corrupt=0.01,seed=7\n"
        "  --fault-hang <p>             engine hang probability/unit\n"
        "  --fault-corrupt <p>          sub-frame corruption prob.\n"
        "  --fault-xfer <p>             SA transfer error probability\n"
        "  --fault-ecc <p>              correctable ECC prob./burst\n"
        "  --fault-ecc-fatal <p>        uncorrectable ECC probability\n"
        "  --fault-seed <n>             fault RNG seed (default 1)\n"
        "  --fault-watchdog-us <us>     IP watchdog timeout (0 = off)\n"
        "  --fault-retries <n>          per-unit retry budget\n"
        "  --guard-ms <ms>              no-progress guard interval\n"
        "                               (default 250, 0 disables)\n"
        "  --audit <mode>               invariant audits: off | final |\n"
        "                               periodic[:<ms>] | strict\n"
        "                               (default off)\n"
        "  --digest-out <file>          write the audit digest stream\n"
        "                               (for vip_diverge; implies\n"
        "                               --audit periodic:1 if off)\n"
        "  --stats                      dump component statistics\n"
        "  --trace <file.csv>           write the per-frame trace\n"
        "  --list                       list workloads and exit\n");
}

vip::SystemConfig
parseConfig(const std::string &name)
{
    if (name == "baseline")
        return vip::SystemConfig::Baseline;
    if (name == "frameburst")
        return vip::SystemConfig::FrameBurst;
    if (name == "iptoip")
        return vip::SystemConfig::IpToIp;
    if (name == "iptoip-fb")
        return vip::SystemConfig::IpToIpBurst;
    if (name == "vip")
        return vip::SystemConfig::VIP;
    vip::fatal("unknown config '", name, "'");
}

vip::Workload
parseWorkload(const std::string &name)
{
    if (name.size() >= 2 && (name[0] == 'A' || name[0] == 'a'))
        return vip::WorkloadCatalog::single(std::atoi(&name[1]));
    if (name.size() >= 2 && (name[0] == 'W' || name[0] == 'w'))
        return vip::WorkloadCatalog::byIndex(std::atoi(&name[1]));
    vip::fatal("unknown workload '", name, "' (use A1..A7 or W1..W8)");
}

void
listWorkloads()
{
    std::printf("single applications (Table 1):\n");
    for (int i = 1; i <= 7; ++i) {
        auto a = vip::AppCatalog::byIndex(i);
        std::printf("  A%d  %-14s (%s)\n", i, a.name.c_str(),
                    vip::appClassName(a.cls));
        for (const auto &f : a.flows) {
            std::printf("      %-26s ", f.name.c_str());
            for (auto s : f.stages)
                std::printf("%s-", vip::ipKindName(s));
            std::printf(" @%.0f FPS\n", f.fps);
        }
    }
    std::printf("multi-app workloads (Table 2):\n");
    for (const auto &w : vip::WorkloadCatalog::all()) {
        std::printf("  %-3s %s\n", w.name.c_str(),
                    w.useCase.c_str());
    }
}

void
report(const vip::RunStats &s)
{
    std::printf("==== %s / %s: %.2f simulated seconds ====\n",
                s.workloadName.c_str(), s.configName.c_str(),
                s.seconds);
    std::printf("frames      : %llu completed / %llu generated "
                "(%.1f FPS displayed)\n",
                static_cast<unsigned long long>(s.framesCompleted),
                static_cast<unsigned long long>(s.framesGenerated),
                s.achievedFps);
    std::printf("QoS         : %llu violations, %llu drops "
                "(%.1f%% / %.1f%%)\n",
                static_cast<unsigned long long>(s.violations),
                static_cast<unsigned long long>(s.drops),
                s.violationRate * 100.0, s.dropRate * 100.0);
    std::printf("latency     : %.3f ms from generation, %.3f ms "
                "pipeline transit\n",
                s.meanFlowTimeMs, s.meanTransitMs);
    std::printf("energy      : %.1f mJ total, %.3f mJ/frame "
                "(cpu %.1f, dram %.1f, sa %.1f, ip %.1f, buf %.2f)\n",
                s.totalEnergyMj, s.energyPerFrameMj, s.cpuEnergyMj,
                s.dramEnergyMj, s.saEnergyMj, s.ipEnergyMj,
                s.bufferEnergyMj);
    std::printf("CPU         : %.1f ms active, %llu interrupts "
                "(%.1f per 100 ms), %.0fM instructions, %.0f%% "
                "asleep\n",
                s.cpuActiveMs,
                static_cast<unsigned long long>(s.interrupts),
                s.interruptsPer100ms,
                static_cast<double>(s.instructions) / 1e6,
                s.cpuSleepFraction * 100.0);
    std::printf("memory      : %.2f GB/s avg (%.3f GB moved), "
                "row-hit %.0f%%, >80%% peak %.0f%% of time\n",
                s.avgMemBandwidthGBps, s.memBytesGB,
                s.memRowHitRate * 100.0,
                s.fracTimeAbove80PctBw * 100.0);
    std::printf("system agent: %.1f%% utilized\n",
                s.saUtilization * 100.0);
    if (s.faults.injected() > 0) {
        const auto &f = s.faults;
        std::printf("faults      : %llu injected (hang %llu, "
                    "corrupt %llu, xfer %llu, ecc %llu+%llu)\n",
                    static_cast<unsigned long long>(f.injected()),
                    static_cast<unsigned long long>(f.engineHangs),
                    static_cast<unsigned long long>(f.corruptions),
                    static_cast<unsigned long long>(f.transferErrors),
                    static_cast<unsigned long long>(f.eccCorrectable),
                    static_cast<unsigned long long>(
                        f.eccUncorrectable));
        std::printf("recovery    : %llu watchdog resets, %llu unit "
                    "retries, %llu retransmits, %llu frames "
                    "degraded, %.3f ms mean / %.3f ms max recovery\n",
                    static_cast<unsigned long long>(f.watchdogResets),
                    static_cast<unsigned long long>(f.unitRetries),
                    static_cast<unsigned long long>(
                        f.transferRetries),
                    static_cast<unsigned long long>(f.framesDegraded),
                    f.meanRecoveryMs(), f.recoveryMaxMs);
    }
    if (s.framesShed > 0 || s.flowsRejected > 0 ||
        s.flowsDownRated > 0 || s.laneOverflows > 0) {
        std::printf("overload    : %llu frames shed (%.1f%%), %u "
                    "flows rejected, %u down-rated, %llu lane "
                    "overflows\n",
                    static_cast<unsigned long long>(s.framesShed),
                    s.shedRate * 100.0, s.flowsRejected,
                    s.flowsDownRated,
                    static_cast<unsigned long long>(s.laneOverflows));
    }
    std::printf("per-flow:\n");
    for (const auto &f : s.flows) {
        std::printf("  %-28s %4llu/%llu frames, %llu viol, "
                    "%.2f ms, %.1f FPS%s%s\n",
                    f.name.c_str(),
                    static_cast<unsigned long long>(f.completed),
                    static_cast<unsigned long long>(f.generated),
                    static_cast<unsigned long long>(f.violations),
                    f.meanFlowTimeMs, f.achievedFps,
                    f.qosCritical ? "" : "  (non-critical)",
                    !f.admitted ? "  [rejected]"
                                : (f.fps != f.nominalFps
                                       ? "  [down-rated]"
                                       : ""));
        if (f.shed > 0) {
            std::printf("  %-28s %4llu frames shed at the chain "
                        "head\n", "",
                        static_cast<unsigned long long>(f.shed));
        }
    }
    std::printf("per-IP:\n");
    for (const auto &ip : s.ips) {
        std::printf("  %-5s active %7.2f ms, stall %7.2f ms, "
                    "util %.2f, %6.1f MB DRAM, %llu ctx switches\n",
                    ip.name.c_str(), ip.activeMs, ip.stallMs,
                    ip.utilization,
                    static_cast<double>(ip.memBytes) / 1e6,
                    static_cast<unsigned long long>(
                        ip.contextSwitches));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "W4";
    std::string config = "vip";
    std::string traceFile;
    std::string digestFile;
    bool wantStats = false;
    vip::SocConfig cfg;
    cfg.simSeconds = 0.4;

    try {
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                vip::fatal(arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--workload") {
            workload = next();
        } else if (arg == "--config") {
            config = next();
        } else if (arg == "--seconds") {
            cfg.simSeconds = std::atof(next().c_str());
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--burst") {
            cfg.burstFrames = std::atoi(next().c_str());
        } else if (arg == "--lanes") {
            cfg.vipLanes = std::atoi(next().c_str());
        } else if (arg == "--sched") {
            auto v = next();
            cfg.vipSched = v == "fifo" ? vip::SchedPolicy::FIFO
                : v == "rr" ? vip::SchedPolicy::RoundRobin
                : vip::SchedPolicy::EDF;
        } else if (arg == "--lane-bytes") {
            cfg.laneBytes = std::atoi(next().c_str());
        } else if (arg == "--deadline") {
            cfg.deadlineFrames = std::atof(next().c_str());
        } else if (arg == "--ideal-memory") {
            cfg.dram.ideal = true;
        } else if (arg == "--no-lowpower") {
            cfg.dram.enableLowPower = false;
        } else if (arg == "--dvfs") {
            cfg.cpu.governor = vip::CpuGovernor::OnDemand;
        } else if (arg == "--vsync") {
            cfg.vsyncAligned = true;
        } else if (arg == "--spill") {
            cfg.overflowToMemory = true;
        } else if (arg == "--overload-policy") {
            auto v = next();
            if (v == "reject")
                cfg.overloadPolicy = vip::OverloadPolicy::Reject;
            else if (v == "degrade")
                cfg.overloadPolicy = vip::OverloadPolicy::Degrade;
            else if (v == "besteffort")
                cfg.overloadPolicy = vip::OverloadPolicy::BestEffort;
            else
                vip::fatal("unknown overload policy '", v, "'");
        } else if (arg == "--admission-headroom") {
            cfg.admissionHeadroom = std::atof(next().c_str());
        } else if (arg == "--shed-after") {
            cfg.shedAfterLateFrames = std::atoi(next().c_str());
        } else if (arg == "--fault-plan") {
            cfg.fault = vip::FaultPlan::parse(next());
        } else if (arg == "--fault-hang") {
            cfg.fault.engineHangProb = std::atof(next().c_str());
        } else if (arg == "--fault-corrupt") {
            cfg.fault.subframeCorruptProb = std::atof(next().c_str());
        } else if (arg == "--fault-xfer") {
            cfg.fault.transferErrorProb = std::atof(next().c_str());
        } else if (arg == "--fault-ecc") {
            cfg.fault.eccCorrectableProb = std::atof(next().c_str());
        } else if (arg == "--fault-ecc-fatal") {
            cfg.fault.eccUncorrectableProb =
                std::atof(next().c_str());
        } else if (arg == "--fault-seed") {
            cfg.fault.seed =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--fault-watchdog-us") {
            cfg.fault.watchdogTimeout =
                vip::fromUs(std::atof(next().c_str()));
        } else if (arg == "--fault-retries") {
            cfg.fault.maxRetries = std::atoi(next().c_str());
        } else if (arg == "--guard-ms") {
            cfg.noProgressSec = std::atof(next().c_str()) / 1000.0;
        } else if (arg == "--audit") {
            cfg.audit = vip::AuditConfig::parse(next());
        } else if (arg.rfind("--audit=", 0) == 0) {
            cfg.audit = vip::AuditConfig::parse(arg.substr(8));
        } else if (arg == "--digest-out") {
            digestFile = next();
        } else if (arg.rfind("--digest-out=", 0) == 0) {
            digestFile = arg.substr(13);
        } else if (arg == "--stats") {
            wantStats = true;
        } else if (arg == "--trace") {
            traceFile = next();
            cfg.recordTrace = true;
        } else if (arg == "--list") {
            listWorkloads();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 1;
        }
    }

        cfg.system = parseConfig(config);
        if (!digestFile.empty() && !cfg.audit.enabled())
            cfg.audit = vip::AuditConfig::parse("periodic:1");
        vip::Simulation sim(cfg, parseWorkload(workload));
        auto s = sim.run();
        report(s);
        if (cfg.audit.enabled()) {
            std::printf("audit       : %llu passes, %llu digest "
                        "records, %llu violations (%s), stream "
                        "%016llx\n",
                        static_cast<unsigned long long>(s.auditPasses),
                        static_cast<unsigned long long>(
                            s.auditRecords),
                        static_cast<unsigned long long>(
                            s.auditViolations),
                        vip::auditModeName(cfg.audit.mode),
                        static_cast<unsigned long long>(
                            s.digestStreamHash));
            for (const auto &v : sim.auditor().violations())
                std::printf("  %s\n", v.format().c_str());
        }
        if (wantStats)
            sim.dumpStats(std::cout);
        if (!traceFile.empty()) {
            std::ofstream out(traceFile);
            s.trace.dumpCsv(out);
            std::printf("trace written to %s (%zu frames)\n",
                        traceFile.c_str(), s.trace.size());
        }
        if (!digestFile.empty()) {
            std::ofstream out(digestFile);
            if (!out)
                vip::fatal("cannot write ", digestFile);
            sim.auditor().writeDigestStream(
                out, {"workload=" + workload, "config=" + config,
                      "seed=" + std::to_string(cfg.seed)});
            std::printf("digest stream written to %s (%zu records)\n",
                        digestFile.c_str(),
                        sim.auditor().stream().records.size());
        }
        if (s.auditViolations > 0)
            return 1;
    } catch (const vip::SimFatal &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
