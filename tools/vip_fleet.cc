/**
 * @file
 * vip_fleet: crash-surviving sweep orchestrator.
 *
 * Expands a declarative JSON job spec (configs x workloads x seeds x
 * fault plans) into shards, runs them across N supervised workers,
 * and merges the per-shard stats into one percentile report.  Workers
 * that crash, hang, or get killed are retried with exponential
 * backoff, resuming from their flight-recorder checkpoint ring; jobs
 * that exhaust the attempt cap land in the report's failed_jobs
 * section instead of aborting the sweep.
 *
 *   vip_fleet --spec sweep.json --out runs/nightly
 *   vip_fleet --spec sweep.json --out runs/x --mode thread
 *   vip_fleet --spec sweep.json --out runs/x --kill vip-W4-s1@30
 *
 * Exit codes: 0 every job done, 1 completed with failed jobs,
 * 2 interrupted or fatal setup error.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fleet/supervisor.hh"
#include "fleet/transport/faulty_transport.hh"
#include "sim/logging.hh"

namespace
{

/** SIGINT/SIGTERM: the supervisor drains workers gracefully (each
 *  one writes its final ring checkpoint) and still writes the
 *  report, so an interrupted sweep is resumable shard by shard. */
std::atomic<int> gSignal{0};

extern "C" void
onSignal(int sig)
{
    gSignal.store(sig, std::memory_order_relaxed);
}

void
usage()
{
    std::printf(
        "usage: vip_fleet --spec <file> --out <dir> [options]\n"
        "  --spec <file>        JSON job spec (sweep axes + policy)\n"
        "  --out <dir>          output tree: report.json plus\n"
        "                       shards/<job>/{stats.json,metrics.csv,\n"
        "                       pm/,log.txt}\n"
        "  --vip-sim <path>     worker binary (default: vip_sim next\n"
        "                       to this executable)\n"
        "  --mode <m>           process (default; fork/exec, full\n"
        "                       crash isolation) | thread (in-process\n"
        "                       workers, graceful cancel only)\n"
        "  --workers <n>        override the spec's worker count\n"
        "  --max-attempts <n>   override the spec's attempt cap\n"
        "  --kill <job>@<ms>    chaos: SIGKILL the named job's first\n"
        "                       attempt once its heartbeat reaches\n"
        "                       <ms> simulated ms (process mode;\n"
        "                       exercises kill->backoff->resume)\n"
        "  --hosts <file>       JSON host roster (name, transport\n"
        "                       process|thread|ssh, slots, optional\n"
        "                       per-host fault spec).  Default: one\n"
        "                       local host with the spec's workers\n"
        "  --fault <spec>       deterministic transport fault\n"
        "                       injection on every host, e.g.\n"
        "                       'seed=7,drop=0.1,corrupt=0.05' or\n"
        "                       'partition@20+15' / 'die@40'\n"
        "  --heartbeat-grace-ms <ms>\n"
        "                       startup grace before the liveness\n"
        "                       watchdog may declare a worker hung\n"
        "                       (overrides the spec policy)\n"
        "  --status             one-shot: print <out>/fleet-status\n"
        "                       .json (the rolling snapshot a running\n"
        "                       sweep maintains) and exit\n"
        "  --status-interval-ms <ms>\n"
        "                       rolling fleet-status.json rewrite\n"
        "                       cadence (default 500; <= 0 disables\n"
        "                       the periodic write, the final snapshot\n"
        "                       is always written)\n"
        "  --print-jobs         list the expanded jobs and exit\n"
        "  --quiet              suppress supervision notes\n");
}

std::string
dirOf(const std::string &argv0)
{
    const std::size_t slash = argv0.find_last_of('/');
    return slash == std::string::npos ? std::string(".")
                                      : argv0.substr(0, slash);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string specPath;
    vip::fleet::FleetOptions opt;
    int workersOverride = 0;
    int attemptsOverride = 0;
    bool printJobs = false;
    bool statusOnly = false;

    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    vip::fatal(arg, " needs a value");
                return argv[++i];
            };
            if (arg == "--spec") {
                specPath = next();
            } else if (arg == "--out") {
                opt.outDir = next();
            } else if (arg == "--vip-sim") {
                opt.vipSimPath = next();
            } else if (arg == "--mode") {
                const std::string m = next();
                if (m == "process")
                    opt.mode = vip::fleet::WorkerMode::Process;
                else if (m == "thread")
                    opt.mode = vip::fleet::WorkerMode::Thread;
                else
                    vip::fatal("unknown worker mode '", m,
                               "' (process|thread)");
            } else if (arg == "--workers") {
                workersOverride = std::atoi(next().c_str());
                if (workersOverride < 1)
                    vip::fatal("--workers needs a positive count");
            } else if (arg == "--max-attempts") {
                attemptsOverride = std::atoi(next().c_str());
                if (attemptsOverride < 1)
                    vip::fatal("--max-attempts needs a positive "
                               "count");
            } else if (arg == "--kill") {
                const std::string v = next();
                const std::size_t at = v.find('@');
                if (at == std::string::npos || at == 0 ||
                    at + 1 >= v.size())
                    vip::fatal("--kill wants <jobid>@<sim-ms>, got '",
                               v, "'");
                opt.killJobId = v.substr(0, at);
                char *end = nullptr;
                const std::string ms = v.substr(at + 1);
                opt.killAtSimMs = std::strtod(ms.c_str(), &end);
                if (end == ms.c_str() || *end != '\0' ||
                    !(opt.killAtSimMs >= 0.0))
                    vip::fatal("--kill: bad sim-ms '", ms, "'");
            } else if (arg == "--hosts") {
                std::string err;
                if (!vip::fleet::parseHostsFile(next(), &opt.hosts,
                                                &err))
                    vip::fatal("--hosts: ", err);
            } else if (arg == "--fault") {
                opt.faultSpec = next();
                vip::fleet::FaultSpec parsed;
                std::string err;
                if (!vip::fleet::FaultSpec::parse(opt.faultSpec,
                                                  &parsed, &err))
                    vip::fatal("--fault: ", err);
            } else if (arg == "--heartbeat-grace-ms") {
                char *end = nullptr;
                const std::string ms = next();
                opt.heartbeatGraceMsOverride =
                    std::strtod(ms.c_str(), &end);
                if (end == ms.c_str() || *end != '\0' ||
                    !(opt.heartbeatGraceMsOverride >= 0.0))
                    vip::fatal("--heartbeat-grace-ms: bad value '",
                               ms, "'");
            } else if (arg == "--status") {
                statusOnly = true;
            } else if (arg == "--status-interval-ms") {
                char *end = nullptr;
                const std::string ms = next();
                opt.statusIntervalMs = std::strtod(ms.c_str(), &end);
                if (end == ms.c_str() || *end != '\0')
                    vip::fatal("--status-interval-ms: bad value '",
                               ms, "'");
            } else if (arg == "--print-jobs") {
                printJobs = true;
            } else if (arg == "--quiet") {
                opt.verbose = false;
            } else if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else {
                std::fprintf(stderr, "unknown option %s\n",
                             arg.c_str());
                usage();
                return 2;
            }
        }
        if (statusOnly) {
            // One-shot observer: no spec needed, just the out tree.
            if (opt.outDir.empty())
                vip::fatal("--status needs --out <dir>");
            const std::string path =
                opt.outDir + "/fleet-status.json";
            std::FILE *f = std::fopen(path.c_str(), "rb");
            if (!f)
                vip::fatal("no status snapshot at ", path,
                           " (sweep not started, or "
                           "--status-interval-ms <= 0)");
            char buf[4096];
            std::size_t n;
            while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
                std::fwrite(buf, 1, n, stdout);
            std::fclose(f);
            return 0;
        }
        if (specPath.empty())
            vip::fatal("--spec is required");

        vip::fleet::JobSpec spec =
            vip::fleet::JobSpec::parseFile(specPath);
        if (workersOverride > 0)
            spec.fleet.workers = workersOverride;
        if (attemptsOverride > 0)
            spec.fleet.maxAttempts = attemptsOverride;

        if (printJobs) {
            for (const auto &j : spec.jobs)
                std::printf("%s\n", j.id.c_str());
            return 0;
        }
        if (opt.outDir.empty())
            vip::fatal("--out is required");
        if (opt.vipSimPath.empty())
            opt.vipSimPath = dirOf(argv[0]) + "/vip_sim";

        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        opt.stopFlag = &gSignal;

        vip::fleet::FleetSupervisor sup(std::move(spec),
                                        std::move(opt));
        const vip::fleet::FleetOutcome out = sup.run();
        return out.exitCode();
    } catch (const vip::SimFatal &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 2;
    }
}
