/**
 * @file
 * vip_prof: summarize a vip_sim --prof report (prof.json).
 *
 * Prints the sim-vs-wall breakdown, the top-k event kinds by
 * estimated wall cost, and a queue-pressure report derived from the
 * sampled occupancy timeline.  Output is deterministic for a given
 * input file (golden-tested), so keep formatting stable.
 *
 *   vip_prof prof.json
 *   vip_prof --top 5 prof.json
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "sim/logging.hh"

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: vip_prof [--top <k>] <prof.json>\n"
        "\n"
        "  Summarize a vip_sim --prof report: sim-vs-wall breakdown,\n"
        "  top-k event kinds by estimated wall cost, and queue\n"
        "  pressure over the run.\n"
        "\n"
        "  --top <k>   kinds to list (default 10)\n");
}

struct KindRow
{
    std::string kind;
    double count = 0;
    double sampled = 0;
    double wallNs = 0;
    double estTotalNs = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string file;
    long topK = 10;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--top" || arg.rfind("--top=", 0) == 0) {
            std::string v;
            if (arg[5] == '=') {
                v = arg.substr(6);
            } else if (i + 1 < argc) {
                v = argv[++i];
            } else {
                usage();
                return 2;
            }
            topK = std::strtol(v.c_str(), nullptr, 10);
            if (topK <= 0) {
                std::fprintf(stderr,
                             "vip_prof: --top needs a positive "
                             "count, got '%s'\n", v.c_str());
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "vip_prof: unknown option '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        } else if (file.empty()) {
            file = arg;
        } else {
            usage();
            return 2;
        }
    }
    if (file.empty()) {
        usage();
        return 2;
    }

    std::ifstream in(file);
    if (!in) {
        std::fprintf(stderr, "vip_prof: cannot read %s\n",
                     file.c_str());
        return 1;
    }

    try {
        vip::json::JsonValue doc = vip::json::parse(in);
        if (vip::json::strField(doc, "kind") != "vip-prof") {
            std::fprintf(stderr,
                         "vip_prof: %s is not a vip-prof report\n",
                         file.c_str());
            return 1;
        }

        const double simMs = vip::json::numField(doc, "sim_ms");
        const double wallMs = vip::json::numField(doc, "wall_ms");
        const double events = vip::json::numField(doc, "events");
        const double sampled = vip::json::numField(doc, "sampled");
        const double every =
            vip::json::numField(doc, "sample_every");
        const double estCbMs =
            vip::json::numField(doc, "est_callback_ms");

        std::printf("profile     : %s\n", file.c_str());
        if (const vip::json::JsonValue *run = doc.find("run")) {
            std::string line;
            for (const auto &[k, v] : run->obj) {
                if (!line.empty())
                    line += " ";
                line += k + "=" + v.str;
            }
            std::printf("run         : %s\n", line.c_str());
        }
        std::printf("sim time    : %.3f ms\n", simMs);
        if (wallMs > 0.0) {
            std::printf("wall time   : %.3f ms (%.2fx real-time)\n",
                        wallMs, simMs / wallMs);
        } else {
            std::printf("wall time   : (not recorded)\n");
        }
        std::printf("events      : %.0f dispatched, %.0f sampled "
                    "(every %.0f)\n", events, sampled, every);
        if (wallMs > 0.0) {
            std::printf("est callback: %.3f ms (%.1f%% of wall; the "
                        "rest is the loop itself)\n", estCbMs,
                        100.0 * estCbMs / wallMs);
        } else {
            std::printf("est callback: %.3f ms\n", estCbMs);
        }

        // Queue pressure: maxima plus the sampled occupancy
        // timeline's shape.
        if (const vip::json::JsonValue *q = doc.find("eventq")) {
            const double maxPending =
                vip::json::numField(*q, "max_pending");
            const double maxHeap =
                vip::json::numField(*q, "max_heap");
            const double compactions =
                vip::json::numField(*q, "compactions");
            std::printf("queue       : max %.0f pending, max %.0f "
                        "heap, %.0f compactions\n",
                        maxPending, maxHeap, compactions);
            if (const vip::json::JsonValue *tl = q->find("timeline");
                tl && !tl->arr.empty()) {
                double sumP = 0, sumH = 0, peakDead = 0;
                for (const vip::json::JsonValue &s : tl->arr) {
                    const double p = vip::json::numField(s, "pending");
                    const double h = vip::json::numField(s, "heap");
                    sumP += p;
                    sumH += h;
                    peakDead = std::max(peakDead, h - p);
                }
                const double n =
                    static_cast<double>(tl->arr.size());
                std::printf("              %zu samples (stride %.0f):"
                            " mean %.1f pending, mean %.1f heap, "
                            "peak %.0f tombstones\n",
                            tl->arr.size(),
                            vip::json::numField(*q,
                                                "timeline_stride"),
                            sumP / n, sumH / n, peakDead);
            }
        }

        std::vector<KindRow> rows;
        if (const vip::json::JsonValue *kinds = doc.find("kinds")) {
            for (const vip::json::JsonValue &k : kinds->arr) {
                KindRow r;
                r.kind = vip::json::strField(k, "kind");
                r.count = vip::json::numField(k, "count");
                r.sampled = vip::json::numField(k, "sampled");
                r.wallNs = vip::json::numField(k, "wall_ns");
                r.estTotalNs =
                    vip::json::numField(k, "est_total_ns");
                rows.push_back(std::move(r));
            }
        }
        std::sort(rows.begin(), rows.end(),
                  [](const KindRow &a, const KindRow &b) {
                      if (a.estTotalNs != b.estTotalNs)
                          return a.estTotalNs > b.estTotalNs;
                      if (a.count != b.count)
                          return a.count > b.count;
                      return a.kind < b.kind;
                  });

        std::printf("\ntop kinds by estimated wall cost:\n");
        std::printf("  %4s %-12s %10s %10s %7s %9s\n", "rank",
                    "kind", "count", "est_ms", "%wall", "ns/event");
        const std::size_t shown = std::min<std::size_t>(
            rows.size(), static_cast<std::size_t>(topK));
        for (std::size_t i = 0; i < shown; ++i) {
            const KindRow &r = rows[i];
            const double estMs = r.estTotalNs / 1e6;
            const double pct =
                wallMs > 0.0 ? 100.0 * estMs / wallMs : 0.0;
            const double perEvent =
                r.count > 0 ? r.estTotalNs / r.count : 0.0;
            std::printf("  %4zu %-12s %10.0f %10.3f %6.1f%% %9.1f\n",
                        i + 1, r.kind.c_str(), r.count, estMs, pct,
                        perEvent);
        }
        if (rows.size() > shown) {
            double restMs = 0;
            for (std::size_t i = shown; i < rows.size(); ++i)
                restMs += rows[i].estTotalNs / 1e6;
            std::printf("  ...  %zu more kinds, %.3f ms\n",
                        rows.size() - shown, restMs);
        }
    } catch (const vip::SimFatal &e) {
        std::fprintf(stderr, "vip_prof: %s\n", e.what());
        return 1;
    }
    return 0;
}
