/**
 * @file
 * vip_stats_diff: compare two stats.json dumps under per-stat
 * tolerance rules (the CI perf-regression gate).
 *
 *   vip_stats_diff baseline.json candidate.json
 *   vip_stats_diff --tol 'dram.avg_bw_gbps=pct:10' base.json cand.json
 *   vip_stats_diff --tol 'latency.*=pct:15' base.json cand.json

 *   vip_stats_diff --list run.json          # print the parsed stats
 *   vip_stats_diff --json base.json cand.json   # machine-readable
 *
 * Exit status: 0 when every stat is within tolerance, 1 when any
 * violation is found (each is printed with the offending path), 2 on
 * usage or parse errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/stats_io.hh"
#include "sim/logging.hh"

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: vip_stats_diff [options] baseline.json candidate.json\n"
        "       vip_stats_diff --list stats.json\n"
        "  --tol <path>=<rule>   override a stat's tolerance; the path\n"
        "                        may end in '*' to match a prefix, the\n"
        "                        rule is 'exact' or 'pct:<band>'\n"
        "                        (repeatable; longest match wins)\n"
        "  --list                print the parsed stats and exit\n"
        "  --json                emit a machine-readable per-stat\n"
        "                        verdict report (path, values, delta,\n"
        "                        rule applied, pass/fail) on stdout\n"
        "  -q                    quiet: exit status only\n");
}

/** Longest-match tolerance override for @p path, or "" (mirrors the
 *  rule compareStats applies; kept in sync with stats_io.cc). */
std::string
overrideFor(const vip::ToleranceOverrides &overrides,
            const std::string &path)
{
    std::string best;
    std::size_t bestLen = 0;
    for (const auto &[key, rule] : overrides) {
        bool match;
        std::size_t len;
        if (!key.empty() && key.back() == '*') {
            std::string prefix = key.substr(0, key.size() - 1);
            match = path.rfind(prefix, 0) == 0;
            len = prefix.size();
        } else {
            match = path == key;
            len = key.size() + 1;
        }
        if (match && (best.empty() || len > bestLen)) {
            best = rule;
            bestLen = len;
        }
    }
    return best;
}

void
jsonEscape(std::string *s)
{
    std::string out;
    for (char c : *s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    *s = out;
}

/** The --json report: one row per union-of-paths stat, each with the
 *  rule that was applied and its verdict. */
void
writeJsonReport(const vip::StatsFile &baseline,
                const vip::StatsFile &candidate,
                const vip::ToleranceOverrides &overrides,
                const vip::StatsComparison &cmp)
{
    std::printf("{\n"
                "  \"kind\": \"vip-stats-diff\",\n"
                "  \"schemaVersion\": 1,\n"
                "  \"ok\": %s,\n"
                "  \"compared\": %zu,\n"
                "  \"violations\": %zu,\n"
                "  \"stats\": [\n",
                cmp.ok ? "true" : "false", cmp.compared,
                cmp.violations.size());
    bool first = true;
    auto row = [&](const std::string &path, const char *verdict,
                   const std::string &rule, const double *b,
                   const double *c) {
        std::string p = path;
        jsonEscape(&p);
        std::string r = rule;
        jsonEscape(&r);
        std::printf("%s    {\"path\": \"%s\", \"verdict\": "
                    "\"%s\", \"rule\": \"%s\"",
                    first ? "" : ",\n", p.c_str(), verdict,
                    r.c_str());
        if (b)
            std::printf(", \"baseline\": %.17g", *b);
        if (c)
            std::printf(", \"candidate\": %.17g", *c);
        if (b && c)
            std::printf(", \"delta\": %.17g", *c - *b);
        std::printf("}");
        first = false;
    };
    for (const vip::StatEntry &b : baseline.stats) {
        const vip::StatEntry *c = candidate.find(b.path);
        std::string rule = overrideFor(overrides, b.path);
        if (rule.empty())
            rule = b.tol;
        if (!c) {
            row(b.path, "missing", rule, &b.value, nullptr);
            continue;
        }
        const bool ok =
            vip::valuesWithinTolerance(rule, b.value, c->value);
        row(b.path, ok ? "pass" : "fail", rule, &b.value,
            &c->value);
    }
    for (const vip::StatEntry &c : candidate.stats) {
        if (!baseline.find(c.path))
            row(c.path, "extra", "", nullptr, &c.value);
    }
    std::printf("\n  ]\n}\n");
}

vip::StatsFile
load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        vip::fatal("cannot read ", path);
    return vip::parseStatsJson(in);
}

void
list(const vip::StatsFile &f)
{
    for (const auto &[k, v] : f.run)
        std::printf("# %s=%s\n", k.c_str(), v.c_str());
    for (const auto &s : f.stats) {
        std::printf("%-40s %.9g %s  [%s]  %s\n", s.path.c_str(),
                    s.value, s.unit.c_str(), s.tol.c_str(),
                    s.desc.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    vip::ToleranceOverrides overrides;
    std::vector<std::string> files;
    bool wantList = false;
    bool quiet = false;
    bool wantJson = false;

    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--tol" || arg.rfind("--tol=", 0) == 0) {
                std::string spec;
                if (arg == "--tol") {
                    if (i + 1 >= argc)
                        vip::fatal("--tol needs <path>=<rule>");
                    spec = argv[++i];
                } else {
                    spec = arg.substr(6);
                }
                auto eq = spec.find('=');
                if (eq == std::string::npos || eq == 0)
                    vip::fatal("--tol wants <path>=<rule>, got '",
                               spec, "'");
                overrides[spec.substr(0, eq)] = spec.substr(eq + 1);
            } else if (arg == "--list") {
                wantList = true;
            } else if (arg == "--json") {
                wantJson = true;
            } else if (arg == "-q" || arg == "--quiet") {
                quiet = true;
            } else if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else if (!arg.empty() && arg[0] == '-') {
                std::fprintf(stderr, "unknown option %s\n",
                             arg.c_str());
                usage();
                return 2;
            } else {
                files.push_back(arg);
            }
        }

        if (wantList) {
            if (files.size() != 1) {
                usage();
                return 2;
            }
            list(load(files[0]));
            return 0;
        }
        if (files.size() != 2) {
            usage();
            return 2;
        }

        vip::StatsFile baseline = load(files[0]);
        vip::StatsFile candidate = load(files[1]);
        vip::StatsComparison cmp =
            vip::compareStats(baseline, candidate, overrides);
        if (wantJson) {
            writeJsonReport(baseline, candidate, overrides, cmp);
            return cmp.ok ? 0 : 1;
        }
        if (!quiet) {
            for (const auto &v : cmp.violations)
                std::printf("VIOLATION %s\n", v.c_str());
            std::printf("%zu stats compared, %zu violations (%s)\n",
                        cmp.compared, cmp.violations.size(),
                        cmp.ok ? "PASS" : "FAIL");
        }
        return cmp.ok ? 0 : 1;
    } catch (const vip::SimFatal &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 2;
    }
}
