/**
 * @file
 * Versioned, provenance-stamped binary snapshots (checkpoint/restore).
 *
 * A snapshot captures the complete architectural state of a simulation
 * at a *quiescent point*: a tick at which every in-flight activity has
 * drained back into component-owned state (no frames in the pipeline,
 * no DMA or link transfers in flight, no CPU task running), so the only
 * pending events are the re-armable periodic ones each component knows
 * how to recreate.  At such a point the full platform state is the
 * union of every component's named fields plus the kernel's event-id
 * bookkeeping — all of it plain data, so a restored run replays the
 * exact event sequence and reproduces bit-identical digest streams and
 * stats.
 *
 * File layout (little-endian, length-prefixed):
 *
 *   u32 magic ("VIPS")      u32 formatVersion
 *   meta block              (provenance + run identity + tick + digest)
 *   u32 sectionCount
 *   per section: string name, u64 payloadBytes, payload
 *   u64 fileChecksum        (FNV-1a over everything before it)
 *
 * Every mismatch — magic, version, provenance, run identity, section
 * name or size, truncation, digest — is a clear SimFatal, never UB.
 *
 * Deliberately NOT serialized: the tracer ring (observational,
 * lossy by design), stat-registry getters (closures over component
 * fields; they read restored state), and probe closures of the
 * metrics sampler (rebuilt from restored counters).
 */

#ifndef VIP_SIM_SNAPSHOT_HH
#define VIP_SIM_SNAPSHOT_HH

#include <bit>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace vip
{

class SnapshotWriter;
class SnapshotReader;

/** Implemented by every stateful component of a simulation. */
class Serializable
{
  public:
    virtual ~Serializable() = default;

    /** Append this component's state to the open section of @p w. */
    virtual void saveState(SnapshotWriter &w) const = 0;

    /** Restore state previously written by saveState(). */
    virtual void loadState(SnapshotReader &r) = 0;
};

constexpr std::uint32_t kSnapshotMagic = 0x53504956; // "VIPS"
constexpr std::uint32_t kSnapshotVersion = 1;

/**
 * Snapshot header: build provenance plus the identity of the run the
 * snapshot belongs to.  Restoring under a different build or run
 * configuration is rejected up front — resumed state would silently
 * diverge otherwise.
 */
struct SnapshotMeta
{
    std::uint32_t version = kSnapshotVersion;
    /** @{ Build provenance (obs/provenance.hh). */
    std::string gitHash;
    std::string compiler;
    std::string buildType;
    /** @} */
    /** @{ Run identity. */
    std::string configName;
    std::string workloadName;
    std::uint64_t seed = 0;
    double simSeconds = 0.0;
    std::string faultPlan;   ///< FaultPlan::describe(), or empty
    std::string auditSpec;   ///< audit mode (+ period when periodic)
    std::string extraIdentity; ///< other behavior-relevant knobs
    /** @} */
    Tick tick = 0;             ///< quiescent tick the state was captured at
    std::uint64_t stateDigest = 0; ///< Auditor::snapshotDigest() at tick
};

/** Buffered snapshot builder; write primitives + named sections. */
class SnapshotWriter
{
  public:
    SnapshotWriter() = default;

    /** @{ Primitives. */
    void u8(std::uint8_t v) { _cur.push_back(v); }
    void b(bool v) { u8(v ? 1 : 0); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void tick(Tick v) { u64(static_cast<std::uint64_t>(v)); }
    /** Doubles are stored by bit pattern: restores are bit-exact. */
    void d(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
    void str(const std::string &s);
    /** @} */

    /** Open a named section; every write lands in it until the next
     *  beginSection().  Names are checked on load, in order. */
    void beginSection(const std::string &name);

    /** Number of sections opened so far. */
    std::size_t sections() const { return _sections.size(); }

    /**
     * Serialize to @p path atomically (tmp + rename).  When @p rotate
     * is set and @p path already exists, the previous snapshot is kept
     * as "<path>.prev" (a 2-deep ring for crash resumability).
     */
    void writeFile(const std::string &path, const SnapshotMeta &meta,
                   bool rotate = true);

  private:
    void flushSection();

    std::string _curName;
    std::vector<std::uint8_t> _cur;
    std::vector<std::pair<std::string, std::vector<std::uint8_t>>>
        _sections;
};

/** Bounds-checked reader over a loaded snapshot file. */
class SnapshotReader
{
  public:
    /** Load and validate @p path (magic, version, checksum). */
    explicit SnapshotReader(const std::string &path);

    const SnapshotMeta &meta() const { return _meta; }

    /**
     * Open the next section, which must be named @p name (the save and
     * load orders are the same fixed sequence by construction).
     */
    void openSection(const std::string &name);

    /** Close the current section; trailing unread bytes are fatal. */
    void closeSection();

    /** @{ Primitives (SimFatal past the end of the section). */
    std::uint8_t u8();
    bool b() { return u8() != 0; }
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    Tick tick() { return static_cast<Tick>(u64()); }
    double d() { return std::bit_cast<double>(u64()); }
    std::string str();
    /** @} */

    /**
     * Read only the header of @p path — cheap introspection for tools
     * (vip_trace --summary, vip_diverge --bisect) that need the
     * checkpoint tick and identity without loading component state.
     */
    static SnapshotMeta readMeta(const std::string &path);

  private:
    std::uint8_t rawU8();
    std::uint32_t rawU32();
    std::uint64_t rawU64();
    std::string rawStr();
    void need(std::size_t n, const char *what);

    std::string _path;
    std::vector<std::uint8_t> _data;
    std::size_t _pos = 0;
    SnapshotMeta _meta;
    /** Remaining sections as (name, payload offset, payload size). */
    struct Section
    {
        std::string name;
        std::size_t off;
        std::size_t size;
    };
    std::vector<Section> _sectionTab;
    std::size_t _nextSection = 0;
    std::size_t _secEnd = 0; ///< end offset of the open section
    bool _open = false;
};

} // namespace vip

#endif // VIP_SIM_SNAPSHOT_HH
