#include "sim/event_queue.hh"

namespace vip
{

bool
EventQueue::serviceOne()
{
    while (!_heap.empty()) {
        std::pop_heap(_heap.begin(), _heap.end(), Later{});
        Entry e = std::move(_heap.back());
        _heap.pop_back();
        if (!_live.erase(e.id))
            continue; // cancelled
        vip_assert(e.when >= _curTick, "time went backwards");
        if (e.when != _curTick) {
            _curTick = e.when;
            _tickServiced = 0;
        }
        if (++_tickServiced > _maxPerTick) {
            panic("event queue livelock: ", _tickServiced,
                  " events serviced at tick ", _curTick,
                  " without time advancing (", pending(),
                  " still pending)");
        }
        ++_serviced;
        maybeCompact();
        e.cb();
        return true;
    }
    return false;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!_heap.empty()) {
        // Purge dead entries at the top without advancing time.
        const Entry &top = _heap.front();
        if (!_live.contains(top.id)) {
            std::pop_heap(_heap.begin(), _heap.end(), Later{});
            _heap.pop_back();
            continue;
        }
        if (top.when > limit)
            break;
        serviceOne();
    }
    if (_curTick < limit && limit != MaxTick)
        _curTick = limit;
    return _curTick;
}

void
EventQueue::maybeCompact()
{
    // Compact once dead entries dominate the heap; the slack term
    // keeps small queues from compacting on every cancel.
    if (_heap.size() < 64 || _heap.size() < 2 * _live.size())
        return;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < _heap.size(); ++i) {
        if (_live.contains(_heap[i].id))
            _heap[kept++] = std::move(_heap[i]);
    }
    _heap.resize(kept);
    _heap.shrink_to_fit();
    std::make_heap(_heap.begin(), _heap.end(), Later{});
    ++_compactions;
}

void
EventQueue::auditInvariants(AuditContext &ctx) const
{
    // Every live id must have exactly one heap entry; the heap may
    // additionally hold dead (cancelled) entries, bounded by the
    // compaction policy.
    std::size_t liveInHeap = 0;
    for (const Entry &e : _heap) {
        if (_live.contains(e.id))
            ++liveInHeap;
    }
    ctx.checkEq("eventq.live_in_heap", liveInHeap, _live.size(),
                "live ids without a heap entry");
    ctx.checkLe("eventq.heap_bounded", _heap.size(),
                std::max<std::size_t>(2 * _live.size(), 64),
                "dead heap entries escaped compaction");
    _live.forEach([&](EventId id) {
        ctx.checkTrue("eventq.id_valid",
                      id != InvalidEventId && id < _nextId,
                      "live id outside issued range");
    });
}

void
EventQueue::stateDigest(StateDigest &d) const
{
    d.add(static_cast<std::uint64_t>(_curTick));
    d.add(_nextId);
    d.add(_serviced);
    d.add(static_cast<std::uint64_t>(_live.size()));
}

} // namespace vip
