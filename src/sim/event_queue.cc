#include "sim/event_queue.hh"

#include "obs/profiler.hh"
#include "sim/snapshot.hh"

namespace vip
{

bool
EventQueue::serviceOne()
{
    while (!_heap.empty()) {
        std::pop_heap(_heap.begin(), _heap.end(), Later{});
        Entry e = std::move(_heap.back());
        _heap.pop_back();
        if (!_live.erase(e.id))
            continue; // cancelled
        vip_assert(e.when >= _curTick, "time went backwards");
        if (e.when != _curTick) {
            _curTick = e.when;
            _tickServiced = 0;
        }
        if (++_tickServiced > _maxPerTick) {
            panic("event queue livelock: ", _tickServiced,
                  " events serviced at tick ", _curTick,
                  " without time advancing (", pending(),
                  " still pending)");
        }
        ++_serviced;
        maybeCompact();
        if (!_prof) {
            e.cb();
            return true;
        }
        // Profiled dispatch: the hooks are observational (count +
        // occasional steady_clock read); the callback itself runs
        // identically, so digests cannot diverge.
        if (_prof->beginDispatch(e.kind, _curTick, _live.size(),
                                 _heap.size())) {
            e.cb();
            _prof->endDispatch();
        } else {
            e.cb();
        }
        return true;
    }
    return false;
}

Tick
EventQueue::runUntil(Tick limit)
{
    return runUntil(limit, PreServiceHook{});
}

Tick
EventQueue::runUntil(Tick limit, const PreServiceHook &hook)
{
    while (!_heap.empty() && !_stopRequested) {
        // Purge dead entries at the top without advancing time.
        const Entry &top = _heap.front();
        if (!_live.contains(top.id)) {
            std::pop_heap(_heap.begin(), _heap.end(), Later{});
            _heap.pop_back();
            continue;
        }
        if (top.when > limit)
            break;
        // The hook observes the queue between events (checkpointing):
        // it must not schedule, cancel, or mutate simulated state.
        if (hook)
            hook(top.when);
        if (_stopRequested)
            break;
        serviceOne();
    }
    // A stopped run keeps its true last-serviced tick: the caller is
    // abandoning the remaining simulated time, not skipping it.
    if (!_stopRequested && _curTick < limit && limit != MaxTick)
        _curTick = limit;
    _stopRequested = false;
    return _curTick;
}

Tick
EventQueue::scheduledWhen(EventId id) const
{
    vip_assert(_live.contains(id),
               "scheduledWhen() on a dead event id ", id);
    for (const Entry &e : _heap) {
        if (e.id == id)
            return e.when;
    }
    panic("live event id ", id, " has no heap entry");
}

void
EventQueue::restoreEvent(EventId id, Tick when, Callback cb,
                         EventPriority prio, const char *kind)
{
    vip_assert(id != InvalidEventId && id < _nextId,
               "restoreEvent id ", id, " outside issued range");
    vip_assert(when >= _curTick, "restoreEvent in the past: when=",
               when, " cur=", _curTick);
    bool inserted = _live.insert(id);
    vip_assert(inserted, "restoreEvent id ", id, " already live");
    _heap.push_back(Entry{when, static_cast<int>(prio), id, kind,
                          std::move(cb)});
    std::push_heap(_heap.begin(), _heap.end(), Later{});
}

void
EventQueue::maybeCompact()
{
    // Compact once dead entries dominate the heap; the slack term
    // keeps small queues from compacting on every cancel.
    if (_heap.size() < 64 || _heap.size() < 2 * _live.size())
        return;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < _heap.size(); ++i) {
        if (_live.contains(_heap[i].id))
            _heap[kept++] = std::move(_heap[i]);
    }
    _heap.resize(kept);
    _heap.shrink_to_fit();
    std::make_heap(_heap.begin(), _heap.end(), Later{});
    ++_compactions;
}

void
EventQueue::auditInvariants(AuditContext &ctx) const
{
    // Every live id must have exactly one heap entry; the heap may
    // additionally hold dead (cancelled) entries, bounded by the
    // compaction policy.
    std::size_t liveInHeap = 0;
    for (const Entry &e : _heap) {
        if (_live.contains(e.id))
            ++liveInHeap;
    }
    ctx.checkEq("eventq.live_in_heap", liveInHeap, _live.size(),
                "live ids without a heap entry");
    ctx.checkLe("eventq.heap_bounded", _heap.size(),
                std::max<std::size_t>(2 * _live.size(), 64),
                "dead heap entries escaped compaction");
    _live.forEach([&](EventId id) {
        ctx.checkTrue("eventq.id_valid",
                      id != InvalidEventId && id < _nextId,
                      "live id outside issued range");
    });
}

void
EventQueue::saveState(SnapshotWriter &w) const
{
    w.tick(_curTick);
    w.u64(_nextId);
    w.u64(_serviced);
    w.u64(_tickServiced);
    // The live-id set, sorted: ids identify which periodic events are
    // pending.  Their (when, prio, callback) are re-created by the
    // owning components; restore is verified against this exact set.
    std::vector<EventId> ids;
    ids.reserve(_live.size());
    _live.forEach([&](EventId id) { ids.push_back(id); });
    std::sort(ids.begin(), ids.end());
    w.u64(ids.size());
    for (EventId id : ids)
        w.u64(id);
}

void
EventQueue::loadState(SnapshotReader &r)
{
    vip_assert(_live.empty() && _heap.empty(),
               "restoring into a non-empty event queue");
    _curTick = r.tick();
    _nextId = r.u64();
    _serviced = r.u64();
    _tickServiced = r.u64();
    std::uint64_t n = r.u64();
    _restoreIds.clear();
    _restoreIds.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        _restoreIds.push_back(r.u64());
}

void
EventQueue::verifyRestore() const
{
    std::vector<EventId> ids;
    ids.reserve(_live.size());
    _live.forEach([&](EventId id) { ids.push_back(id); });
    std::sort(ids.begin(), ids.end());
    if (ids != _restoreIds) {
        fatal("checkpoint restore re-armed ", ids.size(),
              " pending events where the snapshot recorded ",
              _restoreIds.size(),
              " (or with different ids) -- a component failed to "
              "re-create its pending events");
    }
}

void
EventQueue::stateDigest(StateDigest &d) const
{
    d.add(static_cast<std::uint64_t>(_curTick));
    d.add(_nextId);
    d.add(_serviced);
    d.add(static_cast<std::uint64_t>(_live.size()));
}

} // namespace vip
