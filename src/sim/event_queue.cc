#include "sim/event_queue.hh"

namespace vip
{

bool
EventQueue::serviceOne()
{
    while (!_heap.empty()) {
        Entry e = std::move(const_cast<Entry &>(_heap.top()));
        _heap.pop();
        auto it = _cancelled.find(e.id);
        if (it != _cancelled.end()) {
            _cancelled.erase(it);
            continue;
        }
        vip_assert(e.when >= _curTick, "time went backwards");
        if (e.when != _curTick) {
            _curTick = e.when;
            _tickServiced = 0;
        }
        if (++_tickServiced > _maxPerTick) {
            panic("event queue livelock: ", _tickServiced,
                  " events serviced at tick ", _curTick,
                  " without time advancing (", pending(),
                  " still pending)");
        }
        --_livePending;
        ++_serviced;
        e.cb();
        return true;
    }
    return false;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!_heap.empty()) {
        // Skip tombstoned entries without advancing time.
        const Entry &top = _heap.top();
        auto it = _cancelled.find(top.id);
        if (it != _cancelled.end()) {
            _cancelled.erase(it);
            _heap.pop();
            continue;
        }
        if (top.when > limit)
            break;
        serviceOne();
    }
    if (_curTick < limit && limit != MaxTick)
        _curTick = limit;
    return _curTick;
}

} // namespace vip
