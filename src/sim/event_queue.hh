/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The EventQueue owns simulated time.  Components schedule callbacks at
 * absolute ticks; the queue services them in (tick, priority, insertion
 * order) order, which makes simulations fully deterministic.
 */

#ifndef VIP_SIM_EVENT_QUEUE_HH
#define VIP_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/audit.hh"
#include "sim/flat_id_set.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace vip
{

/** Scheduling priority; lower value runs first within a tick. */
enum class EventPriority : int
{
    ClockTick = -10,   ///< clock/vsync edges fire before normal work
    Default = 0,
    Stats = 10,        ///< sampling events observe post-update state
    Audit = 20,        ///< invariant audits see fully settled state
    Teardown = 100,
};

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;
constexpr EventId InvalidEventId = 0;

/**
 * A deterministic discrete-event queue.
 *
 * Cancellation is tracked with a *live-id set*: schedule() inserts the
 * id, deschedule() erases it, and service skips heap entries whose id
 * is no longer live.  Unlike tombstoning cancelled ids (which
 * accumulate until their tick is serviced — unbounded when a sim stops
 * at a time limit or reschedules ahead of itself forever), the live
 * set is exactly the pending events, and the heap is compacted
 * whenever dead entries outnumber live ones, so memory stays O(live).
 */
class SnapshotWriter;
class SnapshotReader;
class Profiler;

class EventQueue : public Auditable
{
  public:
    using Callback = std::function<void()>;
    /** Observer invoked before each serviced event (checkpointing);
     *  receives the tick the next event will run at. */
    using PreServiceHook = std::function<void(Tick)>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /**
     * Schedule @p cb to run at absolute tick @p when.
     *
     * @p kind is an optional profiling tag: a string *literal* (the
     * profiler compares pointers on the hot path and merges aliases
     * by name at report time) naming the event's kind, ideally from
     * kProfKindCatalog.  Untagged events profile as "other".  Kinds
     * are purely observational — they enter no digest or snapshot.
     *
     * @return an id usable with deschedule().
     */
    EventId
    schedule(Tick when, Callback cb,
             EventPriority prio = EventPriority::Default,
             const char *kind = nullptr)
    {
        vip_assert(when >= _curTick,
                   "scheduling in the past: when=", when,
                   " cur=", _curTick);
        EventId id = _nextId++;
        _heap.push_back(Entry{when, static_cast<int>(prio), id, kind,
                              std::move(cb)});
        std::push_heap(_heap.begin(), _heap.end(), Later{});
        _live.insert(id);
        return id;
    }

    /** Schedule @p cb to run @p delta ticks from now. */
    EventId
    scheduleIn(Tick delta, Callback cb,
               EventPriority prio = EventPriority::Default,
               const char *kind = nullptr)
    {
        return schedule(_curTick + delta, std::move(cb), prio, kind);
    }

    /**
     * Cancel a previously scheduled event.  Harmless if the event
     * already ran (ids are unique and never reused).
     */
    void
    deschedule(EventId id)
    {
        if (id != InvalidEventId && _live.erase(id))
            maybeCompact();
    }

    /** Number of scheduled, not-yet-run, not-cancelled events. */
    std::size_t pending() const { return _live.size(); }

    /** True when no live events remain. */
    bool empty() const { return _live.empty(); }

    /**
     * Service the single next live event.
     * @return false when the queue is empty.
     */
    bool serviceOne();

    /**
     * Run until the queue drains or simulated time reaches @p limit.
     * Events scheduled exactly at @p limit do run.
     * @return the final current tick.
     */
    Tick runUntil(Tick limit);

    /**
     * As runUntil(Tick), with @p hook called before every serviced
     * event.  The hook must be purely observational — checkpointing
     * uses it to detect quiescent points without perturbing the run.
     */
    Tick runUntil(Tick limit, const PreServiceHook &hook);

    /** Run until the queue drains completely. */
    Tick run() { return runUntil(MaxTick); }

    /** @{ Checkpoint/restore (quiescent-point snapshots).
     *
     * saveState() records the kernel counters and the sorted live-id
     * set; loadState() restores the counters and remembers the ids.
     * Each component then re-arms its own pending events with
     * restoreEvent() using the id and scheduledWhen() it saved, and
     * verifyRestore() checks that the re-armed set matches the
     * snapshot exactly.
     */
    void saveState(SnapshotWriter &w) const;
    void loadState(SnapshotReader &r);

    /** True when @p id is scheduled and not yet run or cancelled. */
    bool isLive(EventId id) const { return _live.contains(id); }

    /** The tick a live event will run at (save-time lookup). */
    Tick scheduledWhen(EventId id) const;

    /**
     * Re-create a pending event with its original id.  Only valid
     * between loadState() and verifyRestore(); ids must come from the
     * snapshot (already issued, i.e. below the restored _nextId).
     */
    void restoreEvent(EventId id, Tick when, Callback cb,
                      EventPriority prio = EventPriority::Default,
                      const char *kind = nullptr);

    /** SimFatal unless re-armed events match the snapshot's id set. */
    void verifyRestore() const;
    /** @} */

    /** Total number of events ever serviced (for kernel stats). */
    std::uint64_t servicedEvents() const { return _serviced; }

    /**
     * Ask the current runUntil() to return between events, leaving
     * simulated time at the last serviced tick instead of
     * fast-forwarding to the limit.  One-shot: consumed when the run
     * loop returns.  Used for graceful SIGINT/SIGTERM handling — a
     * pre-service hook that has flushed its final checkpoint calls
     * this to end the run early.
     */
    void requestStop() { _stopRequested = true; }
    bool stopRequested() const { return _stopRequested; }

    /**
     * Same-tick livelock guard: cap on events serviced without
     * simulated time advancing.  Zero-latency callback cycles
     * (signal ping-pong, retry storms) never advance the clock, so
     * the time-limit backstop cannot catch them; crossing this cap
     * aborts with SimPanic instead of spinning forever.  The default
     * is far above anything a legitimate burst produces.
     */
    void setMaxEventsPerTick(std::uint64_t cap) { _maxPerTick = cap; }
    std::uint64_t maxEventsPerTick() const { return _maxPerTick; }

    /** @{ memory introspection (tombstone-growth regression test) */
    /** Heap entries including cancelled-but-not-yet-purged ones. */
    std::size_t heapSize() const { return _heap.size(); }
    /** Cancelled entries still occupying heap slots. */
    std::size_t deadEntries() const { return _heap.size() - _live.size(); }
    /** Times the heap was rebuilt to purge dead entries. */
    std::uint64_t compactions() const { return _compactions; }
    /** @} */

    /**
     * Attach (or detach, with nullptr) the hot-path self-profiler.
     * Purely observational: the profiler sees every dispatch's kind
     * tag and queue occupancy but cannot perturb the event stream,
     * so digests stay bit-identical with profiling on (see
     * obs/profiler.hh).
     */
    void setProfiler(Profiler *p) { _prof = p; }
    Profiler *profiler() const { return _prof; }

    /** @{ Auditable */
    void auditInvariants(AuditContext &ctx) const override;
    void stateDigest(StateDigest &d) const override;
    /** @} */

  private:
    struct Entry
    {
        Tick when;
        int prio;
        EventId id;
        /** Profiling tag (string literal or null); never ordered on,
         *  digested, or serialized. */
        const char *kind;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.id > b.id;
        }
    };

    /** Rebuild the heap without dead entries once they dominate. */
    void maybeCompact();

    Tick _curTick = 0;
    EventId _nextId = 1;
    std::uint64_t _serviced = 0;
    std::uint64_t _maxPerTick = 5'000'000;
    std::uint64_t _tickServiced = 0;
    std::uint64_t _compactions = 0;
    /** Transient graceful-stop request; never serialized. */
    bool _stopRequested = false;
    /** Nullable hot-path observer; never serialized. */
    Profiler *_prof = nullptr;
    /** Binary heap ordered by Later (std::push_heap/pop_heap). */
    std::vector<Entry> _heap;
    /** Ids scheduled and neither serviced nor cancelled. */
    FlatIdSet _live;
    /** Sorted live ids from the snapshot (verifyRestore()). */
    std::vector<EventId> _restoreIds;
};

} // namespace vip

#endif // VIP_SIM_EVENT_QUEUE_HH
