/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The EventQueue owns simulated time.  Components schedule callbacks at
 * absolute ticks; the queue services them in (tick, priority, insertion
 * order) order, which makes simulations fully deterministic.
 */

#ifndef VIP_SIM_EVENT_QUEUE_HH
#define VIP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace vip
{

/** Scheduling priority; lower value runs first within a tick. */
enum class EventPriority : int
{
    ClockTick = -10,   ///< clock/vsync edges fire before normal work
    Default = 0,
    Stats = 10,        ///< sampling events observe post-update state
    Teardown = 100,
};

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;
constexpr EventId InvalidEventId = 0;

/**
 * A deterministic discrete-event queue.
 *
 * Callbacks are plain std::function objects.  Cancellation is handled
 * by id-tombstoning so cancel is O(1) and service skips dead entries.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /**
     * Schedule @p cb to run at absolute tick @p when.
     * @return an id usable with deschedule().
     */
    EventId
    schedule(Tick when, Callback cb,
             EventPriority prio = EventPriority::Default)
    {
        vip_assert(when >= _curTick,
                   "scheduling in the past: when=", when,
                   " cur=", _curTick);
        EventId id = _nextId++;
        _heap.push(Entry{when, static_cast<int>(prio), id, std::move(cb)});
        ++_livePending;
        return id;
    }

    /** Schedule @p cb to run @p delta ticks from now. */
    EventId
    scheduleIn(Tick delta, Callback cb,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(_curTick + delta, std::move(cb), prio);
    }

    /**
     * Cancel a previously scheduled event.  Harmless if the event
     * already ran (ids are unique and never reused).
     */
    void
    deschedule(EventId id)
    {
        if (id != InvalidEventId && _cancelled.insert(id).second &&
            _livePending > 0) {
            --_livePending;
        }
    }

    /** Number of scheduled, not-yet-run, not-cancelled events. */
    std::size_t pending() const { return _livePending; }

    /** True when no live events remain. */
    bool empty() const { return _livePending == 0; }

    /**
     * Service the single next live event.
     * @return false when the queue is empty.
     */
    bool serviceOne();

    /**
     * Run until the queue drains or simulated time reaches @p limit.
     * Events scheduled exactly at @p limit do run.
     * @return the final current tick.
     */
    Tick runUntil(Tick limit);

    /** Run until the queue drains completely. */
    Tick run() { return runUntil(MaxTick); }

    /** Total number of events ever serviced (for kernel stats). */
    std::uint64_t servicedEvents() const { return _serviced; }

    /**
     * Same-tick livelock guard: cap on events serviced without
     * simulated time advancing.  Zero-latency callback cycles
     * (signal ping-pong, retry storms) never advance the clock, so
     * the time-limit backstop cannot catch them; crossing this cap
     * aborts with SimPanic instead of spinning forever.  The default
     * is far above anything a legitimate burst produces.
     */
    void setMaxEventsPerTick(std::uint64_t cap) { _maxPerTick = cap; }
    std::uint64_t maxEventsPerTick() const { return _maxPerTick; }

  private:
    struct Entry
    {
        Tick when;
        int prio;
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.id > b.id;
        }
    };

    Tick _curTick = 0;
    EventId _nextId = 1;
    std::uint64_t _serviced = 0;
    std::uint64_t _maxPerTick = 5'000'000;
    std::uint64_t _tickServiced = 0;
    std::size_t _livePending = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    // Tombstones for cancelled ids that are still in the heap.
    struct IdHash
    {
        std::size_t
        operator()(EventId v) const
        {
            // splitmix64 finalizer
            v += 0x9e3779b97f4a7c15ull;
            v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
            v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
            return static_cast<std::size_t>(v ^ (v >> 31));
        }
    };
    std::unordered_set<EventId, IdHash> _cancelled;
};

} // namespace vip

#endif // VIP_SIM_EVENT_QUEUE_HH
