#include "sim/audit.hh"

#include <bit>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace vip
{

void
StateDigest::add(double v)
{
    // Normalize the two zero representations so -0.0 == 0.0 states
    // digest identically.
    if (v == 0.0)
        v = 0.0;
    add(std::bit_cast<std::uint64_t>(v));
}

void
StateDigest::add(const std::string &s)
{
    add(static_cast<std::uint64_t>(s.size()));
    for (char c : s)
        addByte(static_cast<std::uint8_t>(c));
}

std::string
AuditViolation::format() const
{
    std::ostringstream os;
    os << "audit violation at tick " << tick << ": component "
       << component << " invariant " << invariant << ": lhs=" << lhs
       << " rhs=" << rhs;
    if (!detail.empty())
        os << " (" << detail << ")";
    return os.str();
}

void
AuditContext::fail(const char *id, std::uint64_t lhs,
                   std::uint64_t rhs, const std::string &detail)
{
    AuditViolation v;
    v.tick = _tick;
    v.component = _component;
    v.invariant = id;
    v.lhs = lhs;
    v.rhs = rhs;
    v.detail = detail;
    if (_strict)
        fatal(v.format());
    _sink.push_back(std::move(v));
}

const char *
auditModeName(AuditMode m)
{
    switch (m) {
      case AuditMode::Off: return "off";
      case AuditMode::Final: return "final";
      case AuditMode::Periodic: return "periodic";
      case AuditMode::Strict: return "strict";
    }
    return "?";
}

AuditConfig
AuditConfig::parse(const std::string &spec)
{
    AuditConfig cfg;
    if (spec == "off") {
        cfg.mode = AuditMode::Off;
    } else if (spec == "final") {
        cfg.mode = AuditMode::Final;
    } else if (spec == "strict") {
        cfg.mode = AuditMode::Strict;
    } else if (spec.rfind("periodic", 0) == 0) {
        cfg.mode = AuditMode::Periodic;
        if (spec.size() > 8) {
            if (spec[8] != ':')
                fatal("bad --audit spec '", spec,
                      "' (want periodic[:<ms>])");
            char *end = nullptr;
            double ms = std::strtod(spec.c_str() + 9, &end);
            if (end == spec.c_str() + 9 || *end != '\0' || ms <= 0.0)
                fatal("bad --audit period in '", spec, "'");
            cfg.periodMs = ms;
        }
    } else {
        fatal("bad --audit mode '", spec,
              "' (want off|final|periodic[:<ms>]|strict)");
    }
    return cfg;
}

void
Auditor::attach(std::string name, const Auditable *a)
{
    vip_assert(a != nullptr, "attaching null auditable '", name, "'");
    for (const auto &[n, p] : _components)
        vip_assert(n != name, "duplicate auditable name '", name, "'");
    _stream.components.push_back(name);
    _components.emplace_back(std::move(name), a);
}

void
Auditor::addCheck(std::string name,
                  std::function<void(AuditContext &)> fn)
{
    _checks.emplace_back(std::move(name), std::move(fn));
}

void
Auditor::runAudit(Tick now)
{
    ++_passes;
    for (std::uint32_t i = 0; i < _components.size(); ++i) {
        const auto &[name, comp] = _components[i];
        AuditContext ctx(name, now, _cfg.strict(), _violations);
        comp->auditInvariants(ctx);
        StateDigest d;
        comp->stateDigest(d);
        _stream.records.push_back(DigestRecord{now, i, d.value()});
    }
    for (const auto &[name, fn] : _checks) {
        AuditContext ctx(name, now, _cfg.strict(), _violations);
        fn(ctx);
    }
}

std::uint64_t
Auditor::snapshotDigest() const
{
    StateDigest d;
    for (const auto &[name, comp] : _components) {
        d.add(name);
        StateDigest c;
        comp->stateDigest(c);
        d.add(c.value());
    }
    return d.value();
}

std::uint64_t
Auditor::streamDigest() const
{
    StateDigest d;
    for (const auto &r : _stream.records) {
        d.add(static_cast<std::uint64_t>(r.tick));
        d.add(r.component);
        d.add(r.digest);
    }
    return d.value();
}

void
Auditor::writeDigestStream(std::ostream &os,
                           const std::vector<std::string> &meta) const
{
    os << "# vip-digest v" << kDigestSchemaVersion << "\n";
    os << "# schemaVersion=" << kDigestSchemaVersion << "\n";
    for (const auto &m : meta)
        os << "# " << m << "\n";
    char buf[64];
    for (const auto &r : _stream.records) {
        std::snprintf(buf, sizeof(buf), "%llu %s %016llx\n",
                      static_cast<unsigned long long>(r.tick),
                      _stream.componentName(r.component).c_str(),
                      static_cast<unsigned long long>(r.digest));
        os << buf;
    }
}

DigestStream
Auditor::loadDigestStream(std::istream &is)
{
    DigestStream s;
    std::string line;
    std::size_t lineno = 0;
    // component name -> index, preserving first-seen order
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        unsigned long long tick = 0, digest = 0;
        std::string comp, hex;
        if (!(ls >> tick >> comp >> hex))
            fatal("digest stream line ", lineno, " malformed: '",
                  line, "'");
        char *end = nullptr;
        digest = std::strtoull(hex.c_str(), &end, 16);
        if (end != hex.c_str() + hex.size())
            fatal("digest stream line ", lineno, " bad digest '",
                  hex, "'");
        std::uint32_t idx = 0;
        for (; idx < s.components.size(); ++idx) {
            if (s.components[idx] == comp)
                break;
        }
        if (idx == s.components.size())
            s.components.push_back(comp);
        s.records.push_back(DigestRecord{
            static_cast<Tick>(tick), idx,
            static_cast<std::uint64_t>(digest)});
    }
    return s;
}

DigestStream
Auditor::loadDigestFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open digest stream '", path, "'");
    return loadDigestStream(is);
}

void
Auditor::saveState(SnapshotWriter &w) const
{
    w.u64(_passes);
    w.u32(static_cast<std::uint32_t>(_violations.size()));
    for (const AuditViolation &v : _violations) {
        w.tick(v.tick);
        w.str(v.component);
        w.str(v.invariant);
        w.u64(v.lhs);
        w.u64(v.rhs);
        w.str(v.detail);
    }
    w.u32(static_cast<std::uint32_t>(_stream.components.size()));
    for (const std::string &name : _stream.components)
        w.str(name);
    w.u32(static_cast<std::uint32_t>(_stream.records.size()));
    for (const DigestRecord &rec : _stream.records) {
        w.tick(rec.tick);
        w.u32(rec.component);
        w.u64(rec.digest);
    }
}

void
Auditor::loadState(SnapshotReader &r)
{
    _passes = r.u64();
    std::uint32_t nViol = r.u32();
    _violations.clear();
    _violations.reserve(nViol);
    for (std::uint32_t i = 0; i < nViol; ++i) {
        AuditViolation v;
        v.tick = r.tick();
        v.component = r.str();
        v.invariant = r.str();
        v.lhs = r.u64();
        v.rhs = r.u64();
        v.detail = r.str();
        _violations.push_back(std::move(v));
    }
    std::uint32_t nComp = r.u32();
    if (nComp != _stream.components.size())
        fatal("auditor: snapshot has ", nComp,
              " components, platform attached ",
              _stream.components.size(), " (config mismatch)");
    for (const std::string &name : _stream.components) {
        std::string saved = r.str();
        if (saved != name)
            fatal("auditor: snapshot component '", saved,
                  "' != attached '", name, "' (config mismatch)");
    }
    std::uint32_t nRec = r.u32();
    _stream.records.clear();
    _stream.records.reserve(nRec);
    for (std::uint32_t i = 0; i < nRec; ++i) {
        DigestRecord rec;
        rec.tick = r.tick();
        rec.component = r.u32();
        rec.digest = r.u64();
        _stream.records.push_back(rec);
    }
}

Divergence
Auditor::firstDivergence(const DigestStream &a, const DigestStream &b)
{
    Divergence d;
    std::size_t n = std::min(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < n; ++i) {
        const DigestRecord &ra = a.records[i];
        const DigestRecord &rb = b.records[i];
        const std::string &ca = a.componentName(ra.component);
        const std::string &cb = b.componentName(rb.component);
        if (ra.tick != rb.tick || ca != cb ||
            ra.digest != rb.digest) {
            d.diverged = true;
            d.record = i;
            d.tick = ra.tick;
            d.component = ca != cb ? ca + "|" + cb : ca;
            d.digestA = ra.digest;
            d.digestB = rb.digest;
            return d;
        }
    }
    if (a.records.size() != b.records.size()) {
        d.diverged = true;
        d.truncated = true;
        d.record = n;
        const DigestStream &longer =
            a.records.size() > b.records.size() ? a : b;
        d.tick = longer.records[n].tick;
        d.component = longer.componentName(longer.records[n].component);
    }
    return d;
}

} // namespace vip
