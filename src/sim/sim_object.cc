#include "sim/sim_object.hh"

#include "sim/system.hh"

namespace vip
{

SimObject::SimObject(System &system, std::string name)
    : _system(system), _name(std::move(name))
{
    _system.registerObject(this);
}

SimObject::~SimObject()
{
    _system.unregisterObject(this);
}

Tick
SimObject::curTick() const
{
    return _system.curTick();
}

EventId
SimObject::schedule(Tick when, EventQueue::Callback cb,
                    EventPriority prio, const char *kind)
{
    return _system.eventq().schedule(when, std::move(cb), prio, kind);
}

EventId
SimObject::scheduleIn(Tick delta, EventQueue::Callback cb,
                      EventPriority prio, const char *kind)
{
    return _system.eventq().scheduleIn(delta, std::move(cb), prio,
                                       kind);
}

void
SimObject::deschedule(EventId id)
{
    _system.eventq().deschedule(id);
}

} // namespace vip
