/**
 * @file
 * Clock domains and clocked components.
 *
 * Each hardware block (CPU core, IP core, memory channel, System Agent)
 * runs in a ClockDomain; ClockedObject adds cycle<->tick conversion on
 * top of SimObject.
 */

#ifndef VIP_SIM_CLOCKED_HH
#define VIP_SIM_CLOCKED_HH

#include <string>

#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace vip
{

/** A fixed-frequency clock domain. */
class ClockDomain
{
  public:
    /** @param freq_hz Frequency in Hz. */
    explicit ClockDomain(double freq_hz = 1e9)
        : _freqHz(freq_hz), _period(periodFromFreq(freq_hz))
    {
        vip_assert(freq_hz > 0.0, "clock frequency must be positive");
        vip_assert(_period > 0, "clock period underflow");
    }

    double freqHz() const { return _freqHz; }
    Tick period() const { return _period; }

    /** Ticks taken by @p n cycles. */
    Tick cyclesToTicks(Cycles n) const { return n * _period; }

    /** Whole cycles elapsed by tick @p t (rounded down). */
    Cycles ticksToCycles(Tick t) const { return t / _period; }

  private:
    double _freqHz;
    Tick _period;
};

/** A SimObject that lives in a ClockDomain. */
class ClockedObject : public SimObject
{
  public:
    ClockedObject(System &system, std::string name, ClockDomain clock)
        : SimObject(system, std::move(name)), _clock(clock)
    {}

    const ClockDomain &clock() const { return _clock; }

    Tick cyclesToTicks(Cycles n) const { return _clock.cyclesToTicks(n); }

    /**
     * Ticks needed to stream @p bytes at @p bytes_per_cycle in this
     * clock domain (rounded up to whole cycles).
     */
    Tick
    streamTime(std::uint64_t bytes, double bytes_per_cycle) const
    {
        vip_assert(bytes_per_cycle > 0.0, "throughput must be positive");
        double cycles = static_cast<double>(bytes) / bytes_per_cycle;
        auto whole = static_cast<Cycles>(cycles);
        if (static_cast<double>(whole) < cycles)
            ++whole;
        return cyclesToTicks(whole);
    }

  private:
    ClockDomain _clock;
};

} // namespace vip

#endif // VIP_SIM_CLOCKED_HH
