/**
 * @file
 * Runtime invariant auditing and deterministic state digests.
 *
 * Every auditable component implements two hooks: auditInvariants()
 * asserts conservation laws (frames, lane credits, SA bytes, DRAM
 * bursts, energy monotonicity) against an AuditContext, and
 * stateDigest() folds its architectural state into a rolling FNV-1a
 * digest.  The Auditor visits all registered components from a
 * periodic Audit event, appending (tick, component, digest) records
 * to an in-memory stream.  Two same-seed runs must produce identical
 * streams; the first divergent record localizes a nondeterminism or
 * regression to a tick and a component (see tools/vip_diverge.cc).
 *
 * Modes (--audit=off|final|periodic:<ms>|strict):
 *  - off:      no auditing at all (zero overhead).
 *  - final:    one audit pass after the run completes.
 *  - periodic: audit every period plus a final pass; violations are
 *              collected and reported, the run continues.
 *  - strict:   periodic, but the first violation aborts the run with
 *              a SimFatal naming component, invariant id and values.
 */

#ifndef VIP_SIM_AUDIT_HH
#define VIP_SIM_AUDIT_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace vip
{

class SnapshotWriter;
class SnapshotReader;

/** Rolling FNV-1a (64-bit) over typed state words. */
class StateDigest
{
  public:
    /** Fold @p byte into the digest. */
    void
    addByte(std::uint8_t byte)
    {
        _h = (_h ^ byte) * 0x100000001b3ull;
    }

    /** Fold a 64-bit word (little-endian byte order). */
    void
    add(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            addByte(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void add(std::int64_t v) { add(static_cast<std::uint64_t>(v)); }
    void add(std::uint32_t v) { add(static_cast<std::uint64_t>(v)); }
    void add(std::int32_t v) { add(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(v))); }
    void add(bool v) { addByte(v ? 1 : 0); }

    /** Fold a double via its IEEE-754 bit pattern. */
    void add(double v);

    /** Fold a string (length-prefixed so concatenations differ). */
    void add(const std::string &s);

    std::uint64_t value() const { return _h; }

  private:
    std::uint64_t _h = 0xcbf29ce484222325ull; // FNV-1a offset basis
};

class AuditContext;

/**
 * Interface of an auditable component.  SimObject derives from this,
 * so every platform component gets the hooks; non-SimObject helpers
 * (ChainManager, FlowRuntime, CpuCluster, FaultInjector, EventQueue)
 * implement it directly and are attached under an explicit name.
 */
class Auditable
{
  public:
    virtual ~Auditable() = default;

    /** Assert local/cross-component invariants against @p ctx. */
    virtual void auditInvariants(AuditContext &ctx) const
    {
        (void)ctx;
    }

    /** Fold architectural state into @p d (must be deterministic). */
    virtual void stateDigest(StateDigest &d) const { (void)d; }
};

/** One failed invariant check. */
struct AuditViolation
{
    Tick tick = 0;
    std::string component;
    std::string invariant;   ///< stable id, e.g. "flow.conservation"
    std::uint64_t lhs = 0;
    std::uint64_t rhs = 0;
    std::string detail;

    /** "audit violation at tick T: comp invariant lhs=..rhs=..". */
    std::string format() const;
};

/**
 * Handed to auditInvariants(); accumulates violations (and under
 * strict mode turns the first one into a SimFatal).
 */
class AuditContext
{
  public:
    AuditContext(std::string component, Tick tick, bool strict,
                 std::vector<AuditViolation> &sink)
        : _component(std::move(component)), _tick(tick),
          _strict(strict), _sink(sink)
    {}

    const std::string &component() const { return _component; }
    Tick tick() const { return _tick; }

    /** Invariant @p id requires lhs == rhs. */
    void
    checkEq(const char *id, std::uint64_t lhs, std::uint64_t rhs,
            const std::string &detail = std::string())
    {
        if (lhs != rhs)
            fail(id, lhs, rhs, detail);
    }

    /** Invariant @p id requires lhs <= rhs. */
    void
    checkLe(const char *id, std::uint64_t lhs, std::uint64_t rhs,
            const std::string &detail = std::string())
    {
        if (lhs > rhs)
            fail(id, lhs, rhs, detail);
    }

    /** Invariant @p id requires @p ok. */
    void
    checkTrue(const char *id, bool ok,
              const std::string &detail = std::string())
    {
        if (!ok)
            fail(id, 0, 1, detail);
    }

  private:
    void fail(const char *id, std::uint64_t lhs, std::uint64_t rhs,
              const std::string &detail);

    std::string _component;
    Tick _tick;
    bool _strict;
    std::vector<AuditViolation> &_sink;
};

/** Audit activation mode. */
enum class AuditMode : std::uint8_t
{
    Off,      ///< no auditing
    Final,    ///< one pass at end of run
    Periodic, ///< every period + final; violations reported, not fatal
    Strict,   ///< periodic, first violation is a SimFatal
};

const char *auditModeName(AuditMode m);

/** Parsed --audit configuration. */
struct AuditConfig
{
    AuditMode mode = AuditMode::Off;
    /** Audit period for Periodic/Strict, milliseconds. */
    double periodMs = 1.0;

    bool enabled() const { return mode != AuditMode::Off; }
    bool periodic() const
    {
        return mode == AuditMode::Periodic || mode == AuditMode::Strict;
    }
    bool strict() const { return mode == AuditMode::Strict; }

    /** Parse "off|final|periodic[:<ms>]|strict" (fatal on junk). */
    static AuditConfig parse(const std::string &spec);
};

/** One digest record: a component's state digest at one audit tick. */
struct DigestRecord
{
    Tick tick = 0;
    std::uint32_t component = 0; ///< index into component names
    std::uint64_t digest = 0;
};

/** A loaded/recorded digest stream (see writeDigestStream()). */
struct DigestStream
{
    std::vector<std::string> components;
    std::vector<DigestRecord> records;

    const std::string &
    componentName(std::uint32_t idx) const
    {
        static const std::string unknown = "?";
        return idx < components.size() ? components[idx] : unknown;
    }
};

/** Where two digest streams first disagree. */
struct Divergence
{
    bool diverged = false;
    /** True when one stream is a strict prefix of the other. */
    bool truncated = false;
    Tick tick = 0;
    std::string component;
    std::uint64_t digestA = 0;
    std::uint64_t digestB = 0;
    std::size_t record = 0; ///< index of the first differing record
};

/**
 * Runs all registered auditors and records the digest stream.
 * Owned by Simulation; components are attached in build order, which
 * fixes the component indices of the stream deterministically.
 */
class Auditor
{
  public:
    explicit Auditor(AuditConfig cfg = {}) : _cfg(cfg) {}

    Auditor(const Auditor &) = delete;
    Auditor &operator=(const Auditor &) = delete;

    const AuditConfig &config() const { return _cfg; }

    /** Register @p a under @p name (audit order = attach order). */
    void attach(std::string name, const Auditable *a);

    /**
     * Register a cross-component check that is not tied to a single
     * Auditable (e.g. energy-ledger monotonicity).  Checks run after
     * the per-component passes; they contribute no digest.
     */
    void addCheck(std::string name,
                  std::function<void(AuditContext &)> fn);

    /**
     * Run one audit pass at @p now: every component's invariants and
     * digest, then the global checks.  Under strict the first
     * violation raises SimFatal.
     */
    void runAudit(Tick now);

    std::uint64_t auditPasses() const { return _passes; }
    const std::vector<AuditViolation> &violations() const
    {
        return _violations;
    }

    const DigestStream &stream() const { return _stream; }

    /** Digest of the whole record stream (quick equality check). */
    std::uint64_t streamDigest() const;

    /**
     * Fold every attached component's current state digest into one
     * value, without recording a stream entry or running invariant
     * checks.  Used by the flight recorder to stamp crash bundles
     * with the platform's state at the moment of death — works even
     * under --audit=off.
     */
    std::uint64_t snapshotDigest() const;

    /**
     * Write the stream as text: '#'-comment header (schema, optional
     * user metadata lines), then one "tick component hex-digest" line
     * per record.
     */
    void writeDigestStream(std::ostream &os,
                           const std::vector<std::string> &meta = {}) const;

    /** Parse a stream written by writeDigestStream() (fatal on junk). */
    static DigestStream loadDigestStream(std::istream &is);
    static DigestStream loadDigestFile(const std::string &path);

    /** First record where @p a and @p b disagree. */
    static Divergence firstDivergence(const DigestStream &a,
                                      const DigestStream &b);

    /** @{ checkpoint serialization (driven by the Simulation).
     *
     * The recorded digest stream and violation list are part of the
     * run's output, so a restored run must carry the prefix recorded
     * before the checkpoint; components must already be re-attached
     * (in build order) on load — a name mismatch is a config skew.
     */
    void saveState(SnapshotWriter &w) const;
    void loadState(SnapshotReader &r);
    /** @} */

  private:
    AuditConfig _cfg;
    std::vector<std::pair<std::string, const Auditable *>> _components;
    std::vector<std::pair<std::string,
                          std::function<void(AuditContext &)>>> _checks;
    std::vector<AuditViolation> _violations;
    DigestStream _stream;
    std::uint64_t _passes = 0;
};

/** Digest-stream text format version (see writeDigestStream()). */
constexpr int kDigestSchemaVersion = 1;

} // namespace vip

#endif // VIP_SIM_AUDIT_HH
