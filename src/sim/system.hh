/**
 * @file
 * System: owns the event queue, the SimObject registry and the RNG.
 *
 * One System corresponds to one simulated platform run.  All components
 * register with it on construction and are visited for startup() /
 * finalize() around the event loop.
 */

#ifndef VIP_SIM_SYSTEM_HH
#define VIP_SIM_SYSTEM_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace vip
{

class SimObject;
class Tracer;
class LatencyCollector;

/** The root container of a simulation. */
class System
{
  public:
    explicit System(std::uint64_t seed = 1);

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    EventQueue &eventq() { return _eventq; }
    const EventQueue &eventq() const { return _eventq; }

    Tick curTick() const { return _eventq.curTick(); }

    Random &random() { return _random; }

    /** @{ Registry; called by SimObject's ctor/dtor. */
    void registerObject(SimObject *obj);
    void unregisterObject(SimObject *obj);
    /** @} */

    /** Find a registered object by full name (nullptr if absent). */
    SimObject *find(const std::string &name) const;

    /** All registered objects in registration order. */
    const std::vector<SimObject *> &objects() const { return _objects; }

    /**
     * Run the simulation until @p limit (absolute tick).  Calls
     * startup() on first use and finalize() on every object after the
     * loop.  May be called repeatedly to extend a run; finalize() is
     * re-applied each time so stats are always consistent.
     */
    Tick run(Tick limit);

    /** As run(), threading a pre-service hook into the event loop
     *  (see EventQueue::runUntil; used for checkpointing). */
    Tick run(Tick limit, const EventQueue::PreServiceHook &hook);

    /** True once run() was called at least once. */
    bool started() const { return _started; }

    /**
     * Suppress the one-time startup() pass of the next run() call.
     * Used when restoring a checkpoint: the snapshot already contains
     * the events startup() would have scheduled.
     */
    void markStarted() { _started = true; }

    /**
     * @{ Observability hooks (see src/obs/).  Both are optional and
     * purely observational: a null pointer means "disabled", and
     * emission sites reduce to one pointer test.  The System does not
     * own either object; the Simulation wires them in before build.
     */
    Tracer *tracer() const { return _tracer; }
    void setTracer(Tracer *t) { _tracer = t; }
    LatencyCollector *latency() const { return _latency; }
    void setLatencyCollector(LatencyCollector *c) { _latency = c; }
    /** @} */

  private:
    EventQueue _eventq;
    Random _random;
    Tracer *_tracer = nullptr;
    LatencyCollector *_latency = nullptr;
    bool _started = false;
    std::vector<SimObject *> _objects;
    std::unordered_map<std::string, SimObject *> _byName;
};

} // namespace vip

#endif // VIP_SIM_SYSTEM_HH
