#include "sim/snapshot.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "sim/logging.hh"

namespace vip
{

namespace
{

/** FNV-1a over a byte range (same constants as StateDigest). */
std::uint64_t
fnv1a(const std::uint8_t *p, std::size_t n)
{
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

void
putU32(std::vector<std::uint8_t> &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putStr(std::vector<std::uint8_t> &buf, const std::string &s)
{
    putU32(buf, static_cast<std::uint32_t>(s.size()));
    buf.insert(buf.end(), s.begin(), s.end());
}

} // namespace

// --------------------------------------------------------------------
// SnapshotWriter
// --------------------------------------------------------------------

void
SnapshotWriter::u32(std::uint32_t v)
{
    putU32(_cur, v);
}

void
SnapshotWriter::u64(std::uint64_t v)
{
    putU64(_cur, v);
}

void
SnapshotWriter::str(const std::string &s)
{
    putStr(_cur, s);
}

void
SnapshotWriter::beginSection(const std::string &name)
{
    flushSection();
    _curName = name;
}

void
SnapshotWriter::flushSection()
{
    if (!_curName.empty()) {
        _sections.emplace_back(std::move(_curName), std::move(_cur));
        _curName.clear();
        _cur.clear();
    } else {
        vip_assert(_cur.empty(),
                   "snapshot data written outside any section");
    }
}

void
SnapshotWriter::writeFile(const std::string &path,
                          const SnapshotMeta &meta, bool rotate)
{
    flushSection();

    std::vector<std::uint8_t> out;
    putU32(out, kSnapshotMagic);
    putU32(out, meta.version);
    putStr(out, meta.gitHash);
    putStr(out, meta.compiler);
    putStr(out, meta.buildType);
    putStr(out, meta.configName);
    putStr(out, meta.workloadName);
    putU64(out, meta.seed);
    putU64(out, std::bit_cast<std::uint64_t>(meta.simSeconds));
    putStr(out, meta.faultPlan);
    putStr(out, meta.auditSpec);
    putStr(out, meta.extraIdentity);
    putU64(out, static_cast<std::uint64_t>(meta.tick));
    putU64(out, meta.stateDigest);

    putU32(out, static_cast<std::uint32_t>(_sections.size()));
    for (const auto &[name, payload] : _sections) {
        putStr(out, name);
        putU64(out, payload.size());
        out.insert(out.end(), payload.begin(), payload.end());
    }
    putU64(out, fnv1a(out.data(), out.size()));

    namespace fs = std::filesystem;
    fs::path p(path);
    std::error_code ec;
    if (p.has_parent_path())
        fs::create_directories(p.parent_path(), ec);

    std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            fatal("cannot write snapshot '", tmp, "'");
        os.write(reinterpret_cast<const char *>(out.data()),
                 static_cast<std::streamsize>(out.size()));
        if (!os)
            fatal("short write on snapshot '", tmp, "'");
    }
    if (rotate && fs::exists(p, ec))
        fs::rename(p, path + ".prev", ec); // best effort
    fs::rename(tmp, p, ec);
    if (ec)
        fatal("cannot rename snapshot '", tmp, "' -> '", path, "': ",
              ec.message());
}

// --------------------------------------------------------------------
// SnapshotReader
// --------------------------------------------------------------------

void
SnapshotReader::need(std::size_t n, const char *what)
{
    std::size_t limit = _open ? _secEnd : _data.size();
    if (_pos + n > limit) {
        if (_open) {
            fatal("snapshot '", _path, "': section out of data "
                  "reading ", what, " (corrupt or version skew)");
        }
        fatal("snapshot '", _path, "' is truncated (reading ", what,
              ")");
    }
}

std::uint8_t
SnapshotReader::rawU8()
{
    need(1, "u8");
    return _data[_pos++];
}

std::uint32_t
SnapshotReader::rawU32()
{
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(_data[_pos++]) << (8 * i);
    return v;
}

std::uint64_t
SnapshotReader::rawU64()
{
    need(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(_data[_pos++]) << (8 * i);
    return v;
}

std::string
SnapshotReader::rawStr()
{
    std::uint32_t n = rawU32();
    need(n, "string");
    std::string s(reinterpret_cast<const char *>(&_data[_pos]), n);
    _pos += n;
    return s;
}

std::uint8_t
SnapshotReader::u8()
{
    vip_assert(_open, "snapshot read outside a section");
    return rawU8();
}

std::uint32_t
SnapshotReader::u32()
{
    vip_assert(_open, "snapshot read outside a section");
    return rawU32();
}

std::uint64_t
SnapshotReader::u64()
{
    vip_assert(_open, "snapshot read outside a section");
    return rawU64();
}

std::string
SnapshotReader::str()
{
    vip_assert(_open, "snapshot read outside a section");
    return rawStr();
}

SnapshotReader::SnapshotReader(const std::string &path) : _path(path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open snapshot '", path, "'");
    _data.assign(std::istreambuf_iterator<char>(is),
                 std::istreambuf_iterator<char>());

    if (_data.size() < 16)
        fatal("snapshot '", path, "' is truncated (", _data.size(),
              " bytes)");
    // Validate the whole-file checksum before trusting any length
    // field inside.
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i) {
        stored |= static_cast<std::uint64_t>(
                      _data[_data.size() - 8 + i]) << (8 * i);
    }
    std::uint64_t computed = fnv1a(_data.data(), _data.size() - 8);
    std::uint32_t magic = rawU32();
    if (magic != kSnapshotMagic)
        fatal("'", path, "' is not a VIP snapshot (bad magic)");
    _meta.version = rawU32();
    if (_meta.version != kSnapshotVersion) {
        fatal("snapshot '", path, "' has format version ",
              _meta.version, ", this build reads version ",
              kSnapshotVersion, " (version skew)");
    }
    if (stored != computed) {
        fatal("snapshot '", path,
              "' failed its checksum (truncated or corrupt)");
    }
    _meta.gitHash = rawStr();
    _meta.compiler = rawStr();
    _meta.buildType = rawStr();
    _meta.configName = rawStr();
    _meta.workloadName = rawStr();
    _meta.seed = rawU64();
    _meta.simSeconds = std::bit_cast<double>(rawU64());
    _meta.faultPlan = rawStr();
    _meta.auditSpec = rawStr();
    _meta.extraIdentity = rawStr();
    _meta.tick = static_cast<Tick>(rawU64());
    _meta.stateDigest = rawU64();

    std::uint32_t nsec = rawU32();
    _sectionTab.reserve(nsec);
    for (std::uint32_t i = 0; i < nsec; ++i) {
        Section s;
        s.name = rawStr();
        std::uint64_t size = rawU64();
        need(static_cast<std::size_t>(size), "section payload");
        s.off = _pos;
        s.size = static_cast<std::size_t>(size);
        _pos += s.size;
        _sectionTab.push_back(std::move(s));
    }
    // _pos now sits at the checksum; nothing else to parse.
}

void
SnapshotReader::openSection(const std::string &name)
{
    vip_assert(!_open, "snapshot section '", name,
               "' opened while another is open");
    if (_nextSection >= _sectionTab.size()) {
        fatal("snapshot '", _path, "': expected section '", name,
              "' but the file has no more sections (version skew)");
    }
    const Section &s = _sectionTab[_nextSection];
    if (s.name != name) {
        fatal("snapshot '", _path, "': expected section '", name,
              "', found '", s.name, "' (version skew)");
    }
    _pos = s.off;
    _secEnd = s.off + s.size;
    _open = true;
    ++_nextSection;
}

void
SnapshotReader::closeSection()
{
    vip_assert(_open, "closeSection without an open section");
    if (_pos != _secEnd) {
        fatal("snapshot '", _path, "': section '",
              _sectionTab[_nextSection - 1].name, "' has ",
              _secEnd - _pos, " unread bytes (version skew)");
    }
    _open = false;
}

SnapshotMeta
SnapshotReader::readMeta(const std::string &path)
{
    SnapshotReader r(path);
    return r.meta();
}

} // namespace vip
