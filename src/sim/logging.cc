#include "sim/logging.hh"

#include <cstdio>

namespace vip
{
namespace logging
{

namespace
{
int gVerbosity = 1;
} // namespace

int
verbosity()
{
    return gVerbosity;
}

void
setVerbosity(int level)
{
    gVerbosity = level;
}

void
emit(const char *kind, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", kind, msg.c_str());
}

} // namespace logging
} // namespace vip
