#include "sim/logging.hh"

#include <atomic>
#include <cstdio>

namespace vip
{
namespace logging
{

namespace
{
/**
 * The one deliberate process-global in src/: output verbosity is a
 * property of the process (its terminal), not of a simulation run —
 * every System/Simulation instance is otherwise fully isolated, so
 * many can run concurrently in one process (see tests/
 * test_isolation.cc).  Atomic so fleet worker threads may read it
 * while a driver adjusts it.
 */
std::atomic<int> gVerbosity{1};
} // namespace

int
verbosity()
{
    return gVerbosity.load(std::memory_order_relaxed);
}

void
setVerbosity(int level)
{
    gVerbosity.store(level, std::memory_order_relaxed);
}

void
emit(const char *kind, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", kind, msg.c_str());
}

} // namespace logging
} // namespace vip
