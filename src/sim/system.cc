#include "sim/system.hh"

#include "sim/sim_object.hh"

namespace vip
{

System::System(std::uint64_t seed) : _random(seed) {}

void
System::registerObject(SimObject *obj)
{
    auto [it, inserted] = _byName.emplace(obj->name(), obj);
    if (!inserted)
        fatal("duplicate SimObject name: ", obj->name());
    _objects.push_back(obj);
}

void
System::unregisterObject(SimObject *obj)
{
    _byName.erase(obj->name());
    for (auto it = _objects.begin(); it != _objects.end(); ++it) {
        if (*it == obj) {
            _objects.erase(it);
            break;
        }
    }
}

SimObject *
System::find(const std::string &name) const
{
    auto it = _byName.find(name);
    return it == _byName.end() ? nullptr : it->second;
}

Tick
System::run(Tick limit)
{
    return run(limit, EventQueue::PreServiceHook{});
}

Tick
System::run(Tick limit, const EventQueue::PreServiceHook &hook)
{
    if (!_started) {
        _started = true;
        // startup() may create new objects; iterate by index.
        for (std::size_t i = 0; i < _objects.size(); ++i)
            _objects[i]->startup();
    }
    Tick t = _eventq.runUntil(limit, hook);
    for (std::size_t i = 0; i < _objects.size(); ++i)
        _objects[i]->finalize();
    return t;
}

} // namespace vip
