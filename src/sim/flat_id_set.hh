/**
 * @file
 * FlatIdSet: an open-addressing hash set of non-zero 64-bit ids.
 *
 * The event queue tracks its live event ids on the schedule/service
 * hot path, where std::unordered_set's per-node allocation costs
 * roughly a third of kernel throughput.  This set stores ids inline
 * in a power-of-two slot array (0 = empty sentinel, which is why ids
 * must be non-zero -- InvalidEventId is 0 by design), probes
 * linearly after a splitmix64 finalizer, and erases with
 * backward-shift deletion so no tombstones accumulate.  Memory is
 * O(peak live ids), independent of how many ids ever existed.
 */

#ifndef VIP_SIM_FLAT_ID_SET_HH
#define VIP_SIM_FLAT_ID_SET_HH

#include <cstdint>
#include <cstddef>
#include <vector>

#include "sim/logging.hh"

namespace vip
{

class FlatIdSet
{
  public:
    FlatIdSet() = default;

    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }
    std::size_t capacity() const { return _slots.size(); }

    bool
    contains(std::uint64_t id) const
    {
        if (_size == 0)
            return false;
        std::size_t i = home(id);
        while (_slots[i] != 0) {
            if (_slots[i] == id)
                return true;
            i = (i + 1) & _mask;
        }
        return false;
    }

    /** Insert @p id (must be non-zero). @return false if present. */
    bool
    insert(std::uint64_t id)
    {
        vip_assert(id != 0, "FlatIdSet cannot hold id 0");
        if (4 * (_size + 1) > 3 * _slots.size()) // load factor 3/4
            grow();
        std::size_t i = home(id);
        while (_slots[i] != 0) {
            if (_slots[i] == id)
                return false;
            i = (i + 1) & _mask;
        }
        _slots[i] = id;
        ++_size;
        return true;
    }

    /** Remove @p id. @return true when it was present. */
    bool
    erase(std::uint64_t id)
    {
        if (_size == 0)
            return false;
        std::size_t i = home(id);
        while (_slots[i] != id) {
            if (_slots[i] == 0)
                return false;
            i = (i + 1) & _mask;
        }
        // Backward-shift deletion: pull each subsequent chain member
        // into the hole when its home position permits, so lookups
        // never cross a tombstone.
        std::size_t hole = i;
        std::size_t j = (i + 1) & _mask;
        while (_slots[j] != 0) {
            std::size_t h = home(_slots[j]);
            if (((j - h) & _mask) >= ((j - hole) & _mask)) {
                _slots[hole] = _slots[j];
                hole = j;
            }
            j = (j + 1) & _mask;
        }
        _slots[hole] = 0;
        --_size;
        return true;
    }

    /** Visit every id (unspecified order). */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (std::uint64_t v : _slots) {
            if (v != 0)
                fn(v);
        }
    }

  private:
    std::size_t
    home(std::uint64_t v) const
    {
        // Fibonacci hashing: one multiply spreads the sequential ids
        // well enough for linear probing at our load factor.
        v *= 0x9e3779b97f4a7c15ull;
        return static_cast<std::size_t>(v >> 32) & _mask;
    }

    void
    grow()
    {
        // Grow 4x: the set is rebuilt element by element, so fewer,
        // larger rehashes keep the hot path cheap.
        std::vector<std::uint64_t> old = std::move(_slots);
        std::size_t cap = old.empty() ? 64 : 4 * old.size();
        _slots.assign(cap, 0);
        _mask = cap - 1;
        for (std::uint64_t v : old) {
            if (v == 0)
                continue;
            std::size_t i = home(v);
            while (_slots[i] != 0)
                i = (i + 1) & _mask;
            _slots[i] = v;
        }
    }

    std::vector<std::uint64_t> _slots;
    std::size_t _mask = 0;
    std::size_t _size = 0;
};

} // namespace vip

#endif // VIP_SIM_FLAT_ID_SET_HH
