/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic()  -- internal simulator bug; should never happen regardless of
 *             user input.  Throws SimPanic (tests catch it; main()
 *             aborts).
 * fatal()  -- the user asked for something the simulator cannot do
 *             (bad configuration).  Throws SimFatal.
 * warn()   -- something may not be modelled exactly; keep running.
 * inform() -- status messages.
 */

#ifndef VIP_SIM_LOGGING_HH
#define VIP_SIM_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace vip
{

/** Thrown by panic(): an internal invariant was violated. */
class SimPanic : public std::logic_error
{
  public:
    explicit SimPanic(const std::string &what) : std::logic_error(what) {}
};

/** Thrown by fatal(): the user configuration is invalid. */
class SimFatal : public std::runtime_error
{
  public:
    explicit SimFatal(const std::string &what) : std::runtime_error(what) {}
};

namespace logging
{

/** Global verbosity: 0 = silent, 1 = warn, 2 = inform. */
int verbosity();
void setVerbosity(int level);

void emit(const char *kind, const std::string &msg);

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace logging

/** Report an internal simulator bug and abort the simulation. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    auto msg = logging::format(std::forward<Args>(args)...);
    logging::emit("panic", msg);
    throw SimPanic(msg);
}

/** Report an invalid user configuration and abort the simulation. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    auto msg = logging::format(std::forward<Args>(args)...);
    logging::emit("fatal", msg);
    throw SimFatal(msg);
}

/** Warn about approximate or suspicious behaviour; keep running. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logging::verbosity() >= 1)
        logging::emit("warn", logging::format(std::forward<Args>(args)...));
}

/** Emit a status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logging::verbosity() >= 2)
        logging::emit("info", logging::format(std::forward<Args>(args)...));
}

/** panic() unless the condition holds. */
#define vip_assert(cond, ...)                                              \
    do {                                                                   \
        if (!(cond))                                                       \
            ::vip::panic("assertion '", #cond, "' failed: ",               \
                         ##__VA_ARGS__);                                   \
    } while (0)

} // namespace vip

#endif // VIP_SIM_LOGGING_HH
