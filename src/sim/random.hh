/**
 * @file
 * Deterministic random number generation for workload models.
 *
 * A small xoshiro-style generator plus the distributions the paper's
 * workload models need: uniform, exponential, normal, and empirical
 * (histogram-CDF) sampling for the user-study figures (Figs 5 and 6).
 */

#ifndef VIP_SIM_RANDOM_HH
#define VIP_SIM_RANDOM_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"

namespace vip
{

/** splitmix64/xorshift-based deterministic RNG. */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 1) { reseed(seed); }

    void
    reseed(std::uint64_t seed)
    {
        // splitmix64 to spread the seed into the state
        _state = seed + 0x9e3779b97f4a7c15ull;
        for (int i = 0; i < 4; ++i)
            next64();
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next64()
    {
        // xorshift64*
        _state ^= _state >> 12;
        _state ^= _state << 25;
        _state ^= _state >> 27;
        return _state * 0x2545f4914f6cdd1dull;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        vip_assert(hi >= lo, "bad uniformInt range");
        return lo + next64() % (hi - lo + 1);
    }

    /** Exponential with the given mean. */
    double
    exponential(double mean)
    {
        double u = uniform();
        if (u <= 0.0)
            u = 1e-12;
        return -mean * std::log(u);
    }

    /** Normal via Box-Muller. */
    double
    normal(double mean, double stddev)
    {
        double u1 = uniform(), u2 = uniform();
        if (u1 <= 0.0)
            u1 = 1e-12;
        double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * M_PI * u2);
        return mean + stddev * z;
    }

    /** Bernoulli trial. */
    bool chance(double p) { return uniform() < p; }

    /** @{ Raw generator state (state digests, save/restore). */
    std::uint64_t state() const { return _state; }
    void setState(std::uint64_t s) { _state = s; }
    /** @} */

  private:
    std::uint64_t _state = 0;
};

/**
 * An empirical distribution defined by (value, weight) points; samples
 * a value by inverse-CDF with linear interpolation between points.
 * Used to encode the histograms published in Figs 5 and 6.
 */
class EmpiricalDistribution
{
  public:
    struct Point
    {
        double value;
        double weight;
    };

    EmpiricalDistribution() = default;

    explicit EmpiricalDistribution(std::vector<Point> points)
    {
        setPoints(std::move(points));
    }

    void
    setPoints(std::vector<Point> points)
    {
        vip_assert(!points.empty(), "empirical distribution needs points");
        _points = std::move(points);
        _cdf.resize(_points.size());
        double total = 0.0;
        for (std::size_t i = 0; i < _points.size(); ++i) {
            vip_assert(_points[i].weight >= 0.0, "negative weight");
            total += _points[i].weight;
            _cdf[i] = total;
        }
        vip_assert(total > 0.0, "empirical distribution has zero mass");
        for (auto &c : _cdf)
            c /= total;
    }

    bool empty() const { return _points.empty(); }

    /** Sample a value; interpolates within the selected bin. */
    double
    sample(Random &rng) const
    {
        vip_assert(!_points.empty(), "sampling empty distribution");
        double u = rng.uniform();
        std::size_t i = 0;
        while (i + 1 < _cdf.size() && u > _cdf[i])
            ++i;
        double lo = i == 0 ? _points[i].value * 0.9 : _points[i - 1].value;
        double hi = _points[i].value;
        if (hi < lo)
            std::swap(lo, hi);
        return lo + (hi - lo) * rng.uniform();
    }

    /** Weighted mean of the distribution. */
    double
    mean() const
    {
        double num = 0.0, den = 0.0;
        for (const auto &p : _points) {
            num += p.value * p.weight;
            den += p.weight;
        }
        return den > 0.0 ? num / den : 0.0;
    }

    const std::vector<Point> &points() const { return _points; }

  private:
    std::vector<Point> _points;
    std::vector<double> _cdf;
};

} // namespace vip

#endif // VIP_SIM_RANDOM_HH
