/**
 * @file
 * SimObject: the common base of every named simulated component.
 *
 * A SimObject belongs to a System (see system.hh), through which it
 * reaches the shared event queue.  Names are hierarchical
 * ("soc.mem.ctrl0") and unique within a System.
 */

#ifndef VIP_SIM_SIM_OBJECT_HH
#define VIP_SIM_SIM_OBJECT_HH

#include <string>

#include "sim/audit.hh"
#include "sim/event_queue.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace vip
{

class StatRegistry;
class System;

/** Base class for all named simulation components. */
class SimObject : public Auditable, public Serializable
{
  public:
    /**
     * @param system Owning system (must outlive this object).
     * @param name   Hierarchical, unique instance name.
     */
    SimObject(System &system, std::string name);
    virtual ~SimObject();

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return _name; }
    System &system() const { return _system; }

    /** Current simulated time. */
    Tick curTick() const;

    /** Schedule a callback at an absolute tick.  @p kind is the
     *  optional profiling tag (see EventQueue::schedule). */
    EventId schedule(Tick when, EventQueue::Callback cb,
                     EventPriority prio = EventPriority::Default,
                     const char *kind = nullptr);

    /** Schedule a callback @p delta ticks from now. */
    EventId scheduleIn(Tick delta, EventQueue::Callback cb,
                       EventPriority prio = EventPriority::Default,
                       const char *kind = nullptr);

    /** Cancel a scheduled callback. */
    void deschedule(EventId id);

    /**
     * Hook called by System::run() just before the first event is
     * serviced; components start periodic activity here.
     */
    virtual void startup() {}

    /**
     * Hook called when simulation ends; components should fold any
     * in-progress accounting (e.g. energy integration) into stats.
     */
    virtual void finalize() {}

    /**
     * Register this component's counters with the unified stats
     * registry (dotted paths, units, descriptions; see
     * obs/stat_registry.hh).  Called once after the platform is
     * built; registered getters must stay valid for the component's
     * lifetime.  Purely observational — implementations must not
     * schedule events or touch architectural state.
     */
    virtual void registerStats(StatRegistry &registry)
    {
        (void)registry;
    }

    /**
     * @{ Serializable (checkpoint/restore; see sim/snapshot.hh).
     * Stateless components inherit the no-ops; every stateful
     * component overrides both.  loadState() runs against a freshly
     * built platform at a quiescent tick and must also re-arm any
     * pending events the component owns (EventQueue::restoreEvent).
     */
    void saveState(SnapshotWriter &w) const override { (void)w; }
    void loadState(SnapshotReader &r) override { (void)r; }
    /** @} */

  private:
    System &_system;
    std::string _name;
};

} // namespace vip

#endif // VIP_SIM_SIM_OBJECT_HH
