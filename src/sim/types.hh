/**
 * @file
 * Fundamental simulation types and time constants.
 *
 * One Tick is one picosecond of simulated time, following the gem5
 * convention.  All timing parameters in the platform (Table 3 of the
 * paper) are expressed through the helpers below so that call sites
 * never contain raw magic numbers.
 */

#ifndef VIP_SIM_TYPES_HH
#define VIP_SIM_TYPES_HH

#include <cstdint>

namespace vip
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** An integral number of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** Sentinel for "no event scheduled" / "never". */
constexpr Tick MaxTick = ~Tick(0);

/** @{ Time unit constants, in ticks. */
constexpr Tick onePs = 1;
constexpr Tick oneNs = 1000 * onePs;
constexpr Tick oneUs = 1000 * oneNs;
constexpr Tick oneMs = 1000 * oneUs;
constexpr Tick oneSec = 1000 * oneMs;
/** @} */

/** Convert nanoseconds (possibly fractional) to ticks. */
constexpr Tick
fromNs(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(oneNs));
}

/** Convert microseconds to ticks. */
constexpr Tick
fromUs(double us)
{
    return static_cast<Tick>(us * static_cast<double>(oneUs));
}

/** Convert milliseconds to ticks. */
constexpr Tick
fromMs(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(oneMs));
}

/** Convert seconds to ticks. */
constexpr Tick
fromSec(double sec)
{
    return static_cast<Tick>(sec * static_cast<double>(oneSec));
}

/** Convert ticks to (fractional) seconds. */
constexpr double
toSec(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(oneSec);
}

/** Convert ticks to (fractional) milliseconds. */
constexpr double
toMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(oneMs);
}

/** Convert ticks to (fractional) microseconds. */
constexpr double
toUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(oneUs);
}

/** Convert ticks to (fractional) nanoseconds. */
constexpr double
toNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(oneNs);
}

/** Convert a frequency in Hz to a clock period in ticks. */
constexpr Tick
periodFromFreq(double hz)
{
    return static_cast<Tick>(static_cast<double>(oneSec) / hz);
}

/** Bytes helpers. */
constexpr std::uint64_t operator"" _KiB(unsigned long long v)
{
    return v * 1024ull;
}

constexpr std::uint64_t operator"" _MiB(unsigned long long v)
{
    return v * 1024ull * 1024ull;
}

constexpr std::uint64_t operator"" _GiB(unsigned long long v)
{
    return v * 1024ull * 1024ull * 1024ull;
}

} // namespace vip

#endif // VIP_SIM_TYPES_HH
