/**
 * @file
 * Deterministic fault model: what can go wrong, how often, and how the
 * platform recovers.
 *
 * A FaultPlan describes the per-event fault probabilities and the
 * recovery parameters (watchdog timeout, retry budget, reset/backoff
 * penalty).  All probabilities are per *opportunity*: per compute unit
 * for engine hangs and sub-frame corruption, per SA payload transfer
 * for link errors, and per DRAM burst for ECC events.  Injection
 * decisions are drawn from a dedicated deterministic RNG seeded by the
 * plan, so two runs with the same plan, workload and seed experience
 * bit-identical fault sequences.
 *
 * The aggregate outcome of a run is carried in FaultStats, which the
 * FaultInjector accumulates and RunStats exposes.
 */

#ifndef VIP_FAULT_FAULT_PLAN_HH
#define VIP_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace vip
{

/** Probabilities and recovery knobs for one run's fault campaign. */
struct FaultPlan
{
    /** Seed of the injector's own RNG (independent of the workload). */
    std::uint64_t seed = 1;

    /** @{ Injection probabilities (0 disables the mechanism). */
    /** Engine wedges at the start of a compute unit (per unit). */
    double engineHangProb = 0.0;
    /** Output of a completed unit fails its CRC (per unit). */
    double subframeCorruptProb = 0.0;
    /** SA payload transfer is corrupted in flight (per transfer). */
    double transferErrorProb = 0.0;
    /** DRAM burst suffers a correctable ECC flip (per burst). */
    double eccCorrectableProb = 0.0;
    /** DRAM burst suffers an uncorrectable error (per burst). */
    double eccUncorrectableProb = 0.0;
    /** @} */

    /** @{ Recovery parameters. */
    /**
     * Extra silence (beyond the unit's nominal compute time) before
     * the per-IP watchdog declares the engine hung and resets it.
     * 0 disables the watchdog entirely: a hung engine then stays
     * wedged until the global no-progress guard aborts the run.
     */
    Tick watchdogTimeout = fromUs(100);
    /** Retries per work unit before the frame is dropped. */
    std::uint32_t maxRetries = 3;
    /** Engine reset cost; doubles per consecutive retry (backoff). */
    Tick resetPenalty = fromUs(10);
    /** Extra latency of an ECC-corrected DRAM burst. */
    Tick eccCorrectionLatency = fromNs(30);
    /** Retransmissions per SA transfer before delivering anyway. */
    std::uint32_t maxTransferRetries = 4;
    /** @} */

    /** True when any injection probability is non-zero. */
    bool enabled() const;

    /** fatal() on nonsense (probabilities outside [0,1], ...). */
    void validate() const;

    /** One-line human-readable description. */
    std::string describe() const;

    /**
     * Parse a plan from a spec string: either a preset name
     * ("none" | "light" | "moderate" | "heavy") or a comma-separated
     * key=value list, e.g.
     *   "hang=0.01,corrupt=0.005,xfer=0.002,ecc=1e-4,ecc-fatal=1e-6,
     *    watchdog-us=100,retries=3,reset-us=10,xfer-retries=4,seed=7"
     * Unknown keys are fatal().
     */
    static FaultPlan parse(const std::string &spec);

    /** Named presets used by the CLI and the degradation bench. */
    static FaultPlan preset(const std::string &name);
};

/** Aggregate fault/recovery counters of one run. */
struct FaultStats
{
    /** @{ Injections. */
    std::uint64_t engineHangs = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t transferErrors = 0;
    std::uint64_t eccCorrectable = 0;
    std::uint64_t eccUncorrectable = 0;
    /** @} */

    /** @{ Recovery actions. */
    std::uint64_t watchdogResets = 0;
    std::uint64_t unitRetries = 0;     ///< recomputes (reset or CRC)
    std::uint64_t transferRetries = 0; ///< SA retransmissions
    std::uint64_t framesDegraded = 0;  ///< retry budget exhausted
    /** @} */

    /** @{ Recovery latency (extra time beyond nominal compute). */
    std::uint64_t recoveries = 0; ///< units that needed >= 1 retry
    double recoverySumMs = 0.0;
    double recoveryMaxMs = 0.0;
    /** @} */

    std::uint64_t injected() const
    {
        return engineHangs + corruptions + transferErrors +
               eccCorrectable + eccUncorrectable;
    }

    double meanRecoveryMs() const
    {
        return recoveries
            ? recoverySumMs / static_cast<double>(recoveries) : 0.0;
    }

    bool operator==(const FaultStats &) const = default;
};

} // namespace vip

#endif // VIP_FAULT_FAULT_PLAN_HH
