/**
 * @file
 * FaultInjector: the single source of fault decisions for a run.
 *
 * One injector is shared by every component of a Simulation.  Each
 * inject*() call draws exactly one decision from the injector's own
 * deterministic RNG at a well-defined point of the (already
 * deterministic) event schedule, so a fixed (plan, workload, seed)
 * triple reproduces the same fault sequence bit for bit.
 *
 * The injector also centralizes the recovery bookkeeping: components
 * report watchdog resets, retries, retransmissions, degraded frames
 * and recovery latencies here, and Simulation::collect() folds the
 * totals into RunStats.
 */

#ifndef VIP_FAULT_FAULT_INJECTOR_HH
#define VIP_FAULT_FAULT_INJECTOR_HH

#include "fault/fault_plan.hh"
#include "sim/random.hh"

namespace vip
{

/** Draws fault decisions and accumulates fault/recovery counters. */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan)
        : _plan(plan), _rng(plan.seed)
    {
        _plan.validate();
    }

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    const FaultPlan &plan() const { return _plan; }

    /** Outcome of one DRAM burst's ECC check. */
    enum class EccOutcome
    {
        None,
        Corrected,    ///< single-bit flip, fixed for a latency penalty
        Uncorrected,  ///< burst must be replayed
    };

    /** @{ Decision draws (each consumes one RNG sample). */

    /** Engine wedges at the start of this compute unit. */
    bool
    injectEngineHang()
    {
        if (!_rng.chance(_plan.engineHangProb))
            return false;
        ++_stats.engineHangs;
        return true;
    }

    /** This completed unit's output fails its CRC. */
    bool
    injectSubframeCorruption()
    {
        if (!_rng.chance(_plan.subframeCorruptProb))
            return false;
        ++_stats.corruptions;
        return true;
    }

    /** This SA payload transfer is corrupted in flight. */
    bool
    injectTransferError()
    {
        if (!_rng.chance(_plan.transferErrorProb))
            return false;
        ++_stats.transferErrors;
        return true;
    }

    /** ECC outcome of one DRAM burst. */
    EccOutcome
    injectEccEvent()
    {
        double u = _rng.uniform();
        if (u < _plan.eccUncorrectableProb) {
            ++_stats.eccUncorrectable;
            return EccOutcome::Uncorrected;
        }
        if (u < _plan.eccUncorrectableProb + _plan.eccCorrectableProb) {
            ++_stats.eccCorrectable;
            return EccOutcome::Corrected;
        }
        return EccOutcome::None;
    }

    /** @} */

    /** @{ Recovery bookkeeping (reported by the components). */
    void noteWatchdogReset() { ++_stats.watchdogResets; }
    void noteUnitRetry() { ++_stats.unitRetries; }
    void noteTransferRetry() { ++_stats.transferRetries; }
    void noteFrameDegraded() { ++_stats.framesDegraded; }

    /** Extra time a recovered unit spent beyond its nominal compute. */
    void
    noteRecoveryLatency(Tick extra)
    {
        ++_stats.recoveries;
        double ms = toMs(extra);
        _stats.recoverySumMs += ms;
        if (ms > _stats.recoveryMaxMs)
            _stats.recoveryMaxMs = ms;
    }
    /** @} */

    const FaultStats &stats() const { return _stats; }

  private:
    FaultPlan _plan;
    Random _rng;
    FaultStats _stats;
};

} // namespace vip

#endif // VIP_FAULT_FAULT_INJECTOR_HH
