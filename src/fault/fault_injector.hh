/**
 * @file
 * FaultInjector: the single source of fault decisions for a run.
 *
 * One injector is shared by every component of a Simulation.  Each
 * inject*() call draws exactly one decision from the injector's own
 * deterministic RNG at a well-defined point of the (already
 * deterministic) event schedule, so a fixed (plan, workload, seed)
 * triple reproduces the same fault sequence bit for bit.
 *
 * The injector also centralizes the recovery bookkeeping: components
 * report watchdog resets, retries, retransmissions, degraded frames
 * and recovery latencies here, and Simulation::collect() folds the
 * totals into RunStats.
 */

#ifndef VIP_FAULT_FAULT_INJECTOR_HH
#define VIP_FAULT_FAULT_INJECTOR_HH

#include "fault/fault_plan.hh"
#include "sim/audit.hh"
#include "sim/random.hh"
#include "sim/snapshot.hh"

namespace vip
{

/** Draws fault decisions and accumulates fault/recovery counters. */
class FaultInjector : public Auditable
{
  public:
    explicit FaultInjector(const FaultPlan &plan)
        : _plan(plan), _rng(plan.seed)
    {
        _plan.validate();
    }

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    const FaultPlan &plan() const { return _plan; }

    /** Outcome of one DRAM burst's ECC check. */
    enum class EccOutcome
    {
        None,
        Corrected,    ///< single-bit flip, fixed for a latency penalty
        Uncorrected,  ///< burst must be replayed
    };

    /** @{ Decision draws (each consumes one RNG sample). */

    /** Engine wedges at the start of this compute unit. */
    bool
    injectEngineHang()
    {
        if (!_rng.chance(_plan.engineHangProb))
            return false;
        ++_stats.engineHangs;
        return true;
    }

    /** This completed unit's output fails its CRC. */
    bool
    injectSubframeCorruption()
    {
        if (!_rng.chance(_plan.subframeCorruptProb))
            return false;
        ++_stats.corruptions;
        return true;
    }

    /** This SA payload transfer is corrupted in flight. */
    bool
    injectTransferError()
    {
        if (!_rng.chance(_plan.transferErrorProb))
            return false;
        ++_stats.transferErrors;
        return true;
    }

    /** ECC outcome of one DRAM burst. */
    EccOutcome
    injectEccEvent()
    {
        double u = _rng.uniform();
        if (u < _plan.eccUncorrectableProb) {
            ++_stats.eccUncorrectable;
            return EccOutcome::Uncorrected;
        }
        if (u < _plan.eccUncorrectableProb + _plan.eccCorrectableProb) {
            ++_stats.eccCorrectable;
            return EccOutcome::Corrected;
        }
        return EccOutcome::None;
    }

    /** @} */

    /** @{ Recovery bookkeeping (reported by the components). */
    void noteWatchdogReset() { ++_stats.watchdogResets; }
    void noteUnitRetry() { ++_stats.unitRetries; }
    void noteTransferRetry() { ++_stats.transferRetries; }
    void noteFrameDegraded() { ++_stats.framesDegraded; }

    /** Extra time a recovered unit spent beyond its nominal compute. */
    void
    noteRecoveryLatency(Tick extra)
    {
        ++_stats.recoveries;
        double ms = toMs(extra);
        _stats.recoverySumMs += ms;
        if (ms > _stats.recoveryMaxMs)
            _stats.recoveryMaxMs = ms;
    }
    /** @} */

    const FaultStats &stats() const { return _stats; }

    /** @{ Auditable */
    void
    auditInvariants(AuditContext &ctx) const override
    {
        // A watchdog only fires on an injected hang, and every
        // injected CRC error is retransmitted in the same decision.
        ctx.checkLe("fault.resets_le_hangs", _stats.watchdogResets,
                    _stats.engineHangs,
                    "watchdog reset without an injected hang");
        ctx.checkEq("fault.transfer_retry_pairing",
                    _stats.transferErrors, _stats.transferRetries,
                    "injected CRC errors != retransmissions");
    }

    void
    stateDigest(StateDigest &d) const override
    {
        d.add(_rng.state());
        d.add(_stats.engineHangs);
        d.add(_stats.corruptions);
        d.add(_stats.transferErrors);
        d.add(_stats.eccCorrectable);
        d.add(_stats.eccUncorrectable);
        d.add(_stats.watchdogResets);
        d.add(_stats.unitRetries);
        d.add(_stats.transferRetries);
        d.add(_stats.framesDegraded);
        d.add(_stats.recoveries);
        d.add(_stats.recoverySumMs);
        d.add(_stats.recoveryMaxMs);
    }
    /** @} */

    /** @{ checkpoint serialization (driven by the Simulation) */
    void
    saveState(SnapshotWriter &w) const
    {
        w.u64(_rng.state());
        w.u64(_stats.engineHangs);
        w.u64(_stats.corruptions);
        w.u64(_stats.transferErrors);
        w.u64(_stats.eccCorrectable);
        w.u64(_stats.eccUncorrectable);
        w.u64(_stats.watchdogResets);
        w.u64(_stats.unitRetries);
        w.u64(_stats.transferRetries);
        w.u64(_stats.framesDegraded);
        w.u64(_stats.recoveries);
        w.d(_stats.recoverySumMs);
        w.d(_stats.recoveryMaxMs);
    }

    void
    loadState(SnapshotReader &r)
    {
        _rng.setState(r.u64());
        _stats.engineHangs = r.u64();
        _stats.corruptions = r.u64();
        _stats.transferErrors = r.u64();
        _stats.eccCorrectable = r.u64();
        _stats.eccUncorrectable = r.u64();
        _stats.watchdogResets = r.u64();
        _stats.unitRetries = r.u64();
        _stats.transferRetries = r.u64();
        _stats.framesDegraded = r.u64();
        _stats.recoveries = r.u64();
        _stats.recoverySumMs = r.d();
        _stats.recoveryMaxMs = r.d();
    }
    /** @} */

  private:
    FaultPlan _plan;
    Random _rng;
    FaultStats _stats;
};

} // namespace vip

#endif // VIP_FAULT_FAULT_INJECTOR_HH
