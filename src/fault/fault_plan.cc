#include "fault/fault_plan.hh"

#include <cstdlib>
#include <sstream>

#include "sim/logging.hh"

namespace vip
{

namespace
{

void
checkProb(double p, const char *what)
{
    if (p < 0.0 || p > 1.0)
        fatal("fault plan: ", what, " probability ", p,
              " outside [0, 1]");
}

} // namespace

bool
FaultPlan::enabled() const
{
    return engineHangProb > 0.0 || subframeCorruptProb > 0.0 ||
           transferErrorProb > 0.0 || eccCorrectableProb > 0.0 ||
           eccUncorrectableProb > 0.0;
}

void
FaultPlan::validate() const
{
    checkProb(engineHangProb, "engine-hang");
    checkProb(subframeCorruptProb, "sub-frame-corruption");
    checkProb(transferErrorProb, "transfer-error");
    checkProb(eccCorrectableProb, "ecc-correctable");
    checkProb(eccUncorrectableProb, "ecc-uncorrectable");
    if (eccCorrectableProb + eccUncorrectableProb > 1.0)
        fatal("fault plan: ECC probabilities sum above 1");
}

std::string
FaultPlan::describe() const
{
    std::ostringstream os;
    os << "hang=" << engineHangProb
       << " corrupt=" << subframeCorruptProb
       << " xfer=" << transferErrorProb
       << " ecc=" << eccCorrectableProb
       << " ecc-fatal=" << eccUncorrectableProb
       << " watchdog=" << toUs(watchdogTimeout) << "us"
       << " retries=" << maxRetries
       << " seed=" << seed;
    return os.str();
}

FaultPlan
FaultPlan::preset(const std::string &name)
{
    FaultPlan p;
    if (name == "none")
        return p;
    if (name == "light") {
        p.engineHangProb = 0.002;
        p.subframeCorruptProb = 0.002;
        p.transferErrorProb = 0.001;
        p.eccCorrectableProb = 5e-4;
        p.eccUncorrectableProb = 5e-5;
        return p;
    }
    if (name == "moderate") {
        p.engineHangProb = 0.01;
        p.subframeCorruptProb = 0.01;
        p.transferErrorProb = 0.005;
        p.eccCorrectableProb = 2e-3;
        p.eccUncorrectableProb = 2e-4;
        return p;
    }
    if (name == "heavy") {
        p.engineHangProb = 0.05;
        p.subframeCorruptProb = 0.05;
        p.transferErrorProb = 0.02;
        p.eccCorrectableProb = 1e-2;
        p.eccUncorrectableProb = 1e-3;
        return p;
    }
    fatal("unknown fault preset '", name,
          "' (use none | light | moderate | heavy)");
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    // A bare preset name is the common case.
    if (spec.find('=') == std::string::npos)
        return preset(spec);

    FaultPlan p;
    std::istringstream in(spec);
    std::string item;
    while (std::getline(in, item, ',')) {
        if (item.empty())
            continue;
        auto eq = item.find('=');
        if (eq == std::string::npos)
            fatal("fault plan: expected key=value, got '", item, "'");
        std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        double num = std::atof(val.c_str());
        if (key == "hang")
            p.engineHangProb = num;
        else if (key == "corrupt")
            p.subframeCorruptProb = num;
        else if (key == "xfer")
            p.transferErrorProb = num;
        else if (key == "ecc")
            p.eccCorrectableProb = num;
        else if (key == "ecc-fatal")
            p.eccUncorrectableProb = num;
        else if (key == "watchdog-us")
            p.watchdogTimeout = fromUs(num);
        else if (key == "retries")
            p.maxRetries = static_cast<std::uint32_t>(num);
        else if (key == "reset-us")
            p.resetPenalty = fromUs(num);
        else if (key == "xfer-retries")
            p.maxTransferRetries = static_cast<std::uint32_t>(num);
        else if (key == "seed")
            p.seed = std::strtoull(val.c_str(), nullptr, 10);
        else
            fatal("fault plan: unknown key '", key, "'");
    }
    p.validate();
    return p;
}

} // namespace vip
