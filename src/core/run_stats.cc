#include "core/run_stats.hh"

#include <sstream>

namespace vip
{

const IpResult *
RunStats::ip(const std::string &name) const
{
    for (const auto &r : ips) {
        if (r.name == name)
            return &r;
    }
    return nullptr;
}

std::string
RunStats::summary() const
{
    std::ostringstream os;
    os << workloadName << "/" << configName << ": "
       << "E/frame=" << energyPerFrameMj << " mJ"
       << ", flowTime=" << meanFlowTimeMs << " ms"
       << ", drops=" << drops << "/" << framesCompleted
       << ", irq/100ms=" << interruptsPer100ms
       << ", memBW=" << avgMemBandwidthGBps << " GB/s"
       << ", cpuActive=" << cpuActiveMs << " ms";
    if (framesShed > 0 || flowsRejected > 0 || flowsDownRated > 0) {
        os << ", overload(shed=" << framesShed
           << ", rejected=" << flowsRejected
           << ", downrated=" << flowsDownRated << ")";
    }
    if (faults.injected() > 0) {
        os << ", faults=" << faults.injected()
           << " (resets=" << faults.watchdogResets
           << ", degraded=" << faults.framesDegraded << ")";
    }
    return os.str();
}

} // namespace vip
