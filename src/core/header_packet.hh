/**
 * @file
 * The VIP header packet (Figure 12).
 *
 * The header packet carries the context a chain of IPs needs to run a
 * frame burst autonomously: the stage sequence, frame geometry, QoS
 * deadline, burst size, source/destination addresses, and one 1 KB
 * context blob per IP (pixel formats, codec state, ...).  It is sent
 * once per burst through the System Agent; its size is what the paper
 * argues is negligible next to the payload, and this class computes
 * it exactly so the simulator can charge for it.
 */

#ifndef VIP_CORE_HEADER_PACKET_HH
#define VIP_CORE_HEADER_PACKET_HH

#include <cstdint>
#include <vector>

#include "ip/ip_types.hh"
#include "mem/mem_types.hh"

namespace vip
{

/** The Fig 12 header packet. */
class HeaderPacket
{
  public:
    /** Fig 12 field widths, in bits. */
    static constexpr std::uint32_t kIpsFieldBits = 32;    // 4 bits/IP
    static constexpr std::uint32_t kBitsPerIp = 4;
    static constexpr std::uint32_t kFrameSizeBits = 16;   // in KB
    static constexpr std::uint32_t kFrameRateBits = 4;
    static constexpr std::uint32_t kBurstSizeBits = 4;
    static constexpr std::uint32_t kAddrBits = 32;
    static constexpr std::uint32_t kContextBytesPerIp = 1024;

    /** Maximum stages encodable in the 32-bit IPs-in-flow field. */
    static constexpr std::uint32_t kMaxIps =
        kIpsFieldBits / kBitsPerIp;

    HeaderPacket() = default;

    /** @{ Field setters (validated). */
    void setIps(const std::vector<IpKind> &ips);
    void setFrameSizeKb(std::uint32_t kb);
    void setFrameRate(std::uint32_t fps_code);
    void setBurstSize(std::uint32_t frames);
    void setSrcAddr(Addr a) { _src = static_cast<std::uint32_t>(a); }
    void setDestAddr(Addr a) { _dst = static_cast<std::uint32_t>(a); }
    /** @} */

    const std::vector<IpKind> &ips() const { return _ips; }
    std::uint32_t frameSizeKb() const { return _frameSizeKb; }
    std::uint32_t frameRate() const { return _frameRate; }
    std::uint32_t burstSize() const { return _burstSize; }
    std::uint32_t srcAddr() const { return _src; }
    std::uint32_t destAddr() const { return _dst; }

    /** Fixed-field bytes (everything except the per-IP contexts). */
    static std::uint32_t fixedBytes();

    /** Total wire size: fixed fields + 1 KB context per IP. */
    std::uint32_t sizeBytes() const;

    /** Pack into a byte vector (contexts zero-filled). */
    std::vector<std::uint8_t> serialize() const;

    /** Inverse of serialize(); throws SimFatal on malformed input. */
    static HeaderPacket deserialize(
        const std::vector<std::uint8_t> &bytes);

    bool operator==(const HeaderPacket &o) const;

  private:
    std::vector<IpKind> _ips;
    std::uint32_t _frameSizeKb = 0;
    std::uint32_t _frameRate = 0;
    std::uint32_t _burstSize = 0;
    std::uint32_t _src = 0;
    std::uint32_t _dst = 0;
};

} // namespace vip

#endif // VIP_CORE_HEADER_PACKET_HH
