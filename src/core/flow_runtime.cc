#include "core/flow_runtime.hh"

#include <algorithm>

#include "core/header_packet.hh"
#include "obs/latency.hh"
#include "obs/tracer.hh"

namespace vip
{

namespace
{
/** Instructions to process one touch/flick input in software. */
constexpr std::uint64_t kInputProcInstr = 500'000;
} // namespace

std::uint64_t
FlowRuntime::appWork()
{
    // Per-frame software cost varies in practice (garbage collection,
    // scheduler interference, codec work per frame): model it as a
    // uniform jitter around the nominal cost.  This is what gives the
    // baseline its deadline-miss tail.
    double scale = _p.sys->random().uniform(0.65, 1.45);
    return static_cast<std::uint64_t>(
        static_cast<double>(_spec.appInstrPerFrame) * scale);
}

FlowRuntime::FlowRuntime(PlatformRefs refs, FlowSpec spec, AppClass cls,
                         FlowId id, Tick phase, FrameTrace *trace)
    : _p(refs), _spec(std::move(spec)), _cls(cls), _id(id),
      _phase(phase), _trace(trace)
{
    vip_assert(_p.sys && _p.cfg && _p.stack && _p.chains && _p.sa &&
               _p.alloc && _p.ipFor, "incomplete platform refs");
    _spec.validate();
    _nominalFps = _spec.fps;
    _traits = traitsOf(_p.cfg->system);

    for (IpKind k : _spec.hwStages()) {
        IpCore *ip = _p.ipFor(k);
        vip_assert(ip, "no IP instance for ", ipKindName(k));
        _ips.push_back(ip);
    }
    _numStages = _ips.size();

    buildBurstPolicy();
    if (_cls == AppClass::Game && isInteractive())
        _touch = makeTouchModel(_spec.name);
}

void
FlowRuntime::buildBurstPolicy()
{
    if (!_traits.frameBurst)
        return;
    // Section 4.3's class-specific policy, applied per flow: only
    // the interactive render flow of a game is input-limited.
    // Rebuilt after admission down-rates the FPS, since the policies
    // size bursts from the flow spec.
    AppClass effective = _cls;
    if (!(_cls == AppClass::Game && isInteractive()))
        effective = _spec.hasGop ? AppClass::VideoPlayback
                                 : AppClass::AudioOnly;
    _burst = makeBurstPolicy(effective, _spec,
                             _p.cfg->burstFrames,
                             _p.cfg->gameBurstCap);
}

bool
FlowRuntime::isInteractive() const
{
    return _spec.qosCritical && !_ips.empty() &&
           _ips.front()->kind() == IpKind::GPU;
}

Tick
FlowRuntime::frameTick(std::uint64_t k) const
{
    return _phase + static_cast<Tick>(k) * _spec.period();
}

Tick
FlowRuntime::genSpan() const
{
    // Sensor readout occupies ~40% of the frame interval: camera
    // sensors read out at roughly twice line rate, and two flows of
    // the same app (preview + record) tap the same capture.
    return _spec.sourceGenerated()
        ? static_cast<Tick>(0.4 * static_cast<double>(_spec.period()))
        : 0;
}

FlowRuntime::FrameCtx &
FlowRuntime::makeCtx(std::uint64_t k)
{
    FrameCtx ctx;
    ctx.edges = _spec.frameEdges(k);
    ctx.addrs.reserve(ctx.edges.size());
    for (auto b : ctx.edges)
        ctx.addrs.push_back(_p.alloc->allocate(b));
    ctx.gen = frameTick(k);
    ctx.deadline = ctx.gen + static_cast<Tick>(
        _p.cfg->deadlineFrames * static_cast<double>(_spec.period()));
    ++_generated;
    auto [it, ok] = _frames.emplace(k, std::move(ctx));
    vip_assert(ok, "duplicate frame ", k, " in flow ", _spec.name);
    if (Tracer *tr = _p.sys->tracer();
        tr && tr->enabled(TraceCat::Frame)) {
        if (!_obsFrameNm)
            _obsFrameNm = tr->intern("frame " + _spec.name);
        tr->asyncBegin(TraceCat::Frame, _obsFrameNm, it->second.gen,
                       static_cast<std::int32_t>(_id),
                       static_cast<std::int64_t>(k));
    }
    return it->second;
}

bool
FlowRuntime::shouldShed() const
{
    if (_p.cfg->overloadPolicy != OverloadPolicy::Degrade)
        return false;
    // The pipeline is hopelessly behind: new frames could only queue.
    if (_frames.size() >=
        static_cast<std::size_t>(_p.cfg->overloadMaxInFlight)) {
        return true;
    }
    // EDF slack has been negative for K consecutive frames.
    return _consecLate >= _p.cfg->shedAfterLateFrames;
}

void
FlowRuntime::shedFrame(std::uint64_t k)
{
    // Drop the whole frame at the chain head -- the cheapest point:
    // no buffers, no app work, no driver call, no chain traffic.
    // Resetting the late counter sheds proportionally (every K-th
    // frame) instead of starving the flow outright.
    (void)k;
    ++_generated;
    ++_shed;
    _consecLate = 0;
    if (Tracer *tr = _p.sys->tracer();
        tr && tr->enabled(TraceCat::Fault)) {
        if (!_obsTrack)
            _obsTrack = tr->intern("flow." + _spec.name);
        tr->instant(TraceCat::Fault, _obsTrack,
                    tr->intern("frame-shed"), _p.sys->curTick(),
                    static_cast<std::int32_t>(_id),
                    static_cast<std::int64_t>(k));
    }
}

void
FlowRuntime::noteDegraded(std::uint64_t k)
{
    auto it = _frames.find(k);
    if (it != _frames.end())
        it->second.degraded = true;
    if (Tracer *tr = _p.sys->tracer();
        tr && tr->enabled(TraceCat::Fault)) {
        if (!_obsTrack)
            _obsTrack = tr->intern("flow." + _spec.name);
        tr->instant(TraceCat::Fault, _obsTrack,
                    tr->intern("frame-degraded"), _p.sys->curTick(),
                    static_cast<std::int32_t>(_id),
                    static_cast<std::int64_t>(k));
    }
}

void
FlowRuntime::recordStart(std::uint64_t k)
{
    auto it = _frames.find(k);
    if (it != _frames.end() && it->second.started == 0) {
        it->second.started = _p.sys->curTick();
        if (Tracer *tr = _p.sys->tracer();
            tr && tr->enabled(TraceCat::Frame)) {
            tr->asyncInstant(TraceCat::Frame, tr->intern("started"),
                             it->second.started,
                             static_cast<std::int32_t>(_id),
                             static_cast<std::int64_t>(k));
        }
    }
}

void
FlowRuntime::frameDone(std::uint64_t k)
{
    auto it = _frames.find(k);
    vip_assert(it != _frames.end(), "completion for unknown frame ", k,
               " in ", _spec.name);
    FrameCtx &ctx = it->second;
    Tick now = _p.sys->curTick();

    // Display-bound frames become visible at the next vsync scanout.
    Tick judged = now;
    if (_p.cfg->vsyncAligned && !_ips.empty() &&
        _ips.back()->kind() == IpKind::DC) {
        Tick vs = fromSec(1.0 / _p.cfg->vsyncHz);
        judged = (now + vs - 1) / vs * vs;
    }
    bool violated = ctx.degraded || judged > ctx.deadline;
    bool dropped = ctx.degraded ||
                   judged > ctx.deadline + _spec.period();
    if (violated)
        ++_consecLate;
    else
        _consecLate = 0;
    ++_completed;
    if (violated)
        ++_violations;
    if (dropped)
        ++_drops;
    // Two latency views (Fig 17 is ambiguous about which the paper
    // plots, so RunStats carries both):
    //  - flow time: from the frame's nominal generation instant (or
    //    later first-stage start) to completion -- burst modes that
    //    run the hardware ahead of the frame cadence score near zero;
    //  - transit: from the first stage touching the frame's data to
    //    completion -- the pure pipeline latency, queueing included.
    Tick startRef = ctx.started ? std::max(ctx.gen, ctx.started)
                                : ctx.gen;
    Tick flowTime = now > startRef ? now - startRef : 0;
    _flowTimeSumMs += toMs(flowTime);
    Tick transitRef = ctx.started ? ctx.started : ctx.gen;
    Tick transit = now > transitRef ? now - transitRef : 0;
    _transitSumMs += toMs(transit);

    if (LatencyCollector *lc = _p.sys->latency())
        lc->recordFrame(flowTime, transit);
    if (Tracer *tr = _p.sys->tracer();
        tr && tr->enabled(TraceCat::Frame)) {
        if (!_obsFrameNm)
            _obsFrameNm = tr->intern("frame " + _spec.name);
        tr->asyncEnd(TraceCat::Frame, _obsFrameNm, now,
                     static_cast<std::int32_t>(_id),
                     static_cast<std::int64_t>(k), ctx.deadline);
        if (violated || dropped) {
            if (!_obsTrack)
                _obsTrack = tr->intern("flow." + _spec.name);
            tr->instant(TraceCat::Frame, _obsTrack,
                        tr->intern(dropped ? "frame-dropped"
                                           : "deadline-miss"),
                        now, static_cast<std::int32_t>(_id),
                        static_cast<std::int64_t>(k));
        }
    }

    if (_trace) {
        FrameEvent ev;
        ev.flowId = _id;
        ev.flowName = _spec.name;
        ev.frameId = k;
        ev.generated = ctx.gen;
        ev.started = startRef;
        ev.completed = now;
        ev.deadline = ctx.deadline;
        ev.violated = violated;
        ev.dropped = dropped;
        _trace->record(std::move(ev));
    }
    _frames.erase(it);
    maybeTeardown();
}

Tick
FlowRuntime::inputHint() const
{
    if (!_touch)
        return MaxTick;
    Tick now = _p.sys->curTick();
    if (now < _inputBusyUntil)
        return now; // finger down right now
    return _nextInput;
}

// --------------------------------------------------------------------
// Startup
// --------------------------------------------------------------------

void
FlowRuntime::applyAdmission()
{
    _nominalFps = _spec.fps;
    if (_ips.empty())
        return;

    const double headroom = _p.cfg->admissionHeadroom;
    AdmissionCheck chk = _p.chains->checkAdmission(
        _ips, _spec.edgeBytes, _spec.fps, headroom);
    if (!chk.feasible) {
        switch (_p.cfg->overloadPolicy) {
          case OverloadPolicy::Reject:
            _rejected = true;
            warn("flow ", _spec.name, ": admission rejected (",
                 chk.bottleneck ? chk.bottleneck->name() : "?",
                 " would reach ", chk.worstLoad, " utilization)");
            break;
          case OverloadPolicy::Degrade:
            // Halve the target rate until the flow fits (bounded:
            // below 1/8 of nominal the flow is useless anyway and is
            // admitted as-is, shedding the rest at run time).
            for (int halvings = 0; halvings < 3 && !chk.feasible;
                 ++halvings) {
                _spec.fps /= 2.0;
                chk = _p.chains->checkAdmission(
                    _ips, _spec.edgeBytes, _spec.fps, headroom);
            }
            buildBurstPolicy();
            warn("flow ", _spec.name, ": admission down-rated ",
                 _nominalFps, " -> ", _spec.fps, " FPS");
            break;
          case OverloadPolicy::BestEffort:
            break;
        }
    }
    if (!_rejected) {
        _p.chains->recordAdmission(_ips, _spec.edgeBytes, _spec.fps);
        _admitted = true;
    }
    // The feasibility math is driver work at open() time.  Under the
    // legacy BestEffort default open() has no admission stage, so no
    // CPU time is charged (keeps the seed CPU profile bit-exact).
    if (_p.cfg->overloadPolicy != OverloadPolicy::BestEffort)
        _p.stack->runAdmissionCheck([] {});
}

void
FlowRuntime::start()
{
    applyAdmission();
    if (_rejected)
        return;

    if (_traits.ipToIp) {
        _chain = _p.chains->create(
            _id, _ips, _spec.edgeBytes,
            [this](FlowId, std::uint64_t k) { onChainExit(k); },
            [this](FlowId, std::uint64_t k) { recordStart(k); });
        _chainCreated = true;

        // open(): the one-time chain instantiation API call.
        _p.stack->runTask(_p.stack->costs().chainOpenInstr, [] {});

        // Every chained mode routes data through lane buffers; the
        // single-context constraint of non-virtualized IPs is
        // enforced by their switch granularity instead of exclusive
        // chain ownership.  When lanes are exhausted (more flows than
        // buffer lanes at some IP) the flow degrades to transactional
        // whole-chain acquisition -- the paper's "stall the sender"
        // option.
        if (!_p.chains->bindPersistent(_chain)) {
            warn("flow ", _spec.name,
                 ": lanes exhausted, falling back to transactional "
                 "chain acquisition");
            _vipFallback = true;
        }
    }

    if (_touch)
        scheduleNextInput();

    armGen(0);
}

void
FlowRuntime::armGen(std::uint64_t k)
{
    _genNextK = k;
    _genEvent = _p.sys->eventq().schedule(
        frameTick(k), [this, k] { dispatchGen(k); },
        EventPriority::Default, "flow.gen");
}

void
FlowRuntime::dispatchGen(std::uint64_t k)
{
    _genEvent = InvalidEventId;
    if (_traits.frameBurst) {
        if (!_traits.ipToIp)
            genBurstJobs(k);
        else if (_traits.virtualized && !_vipFallback)
            genBurstVip(k);
        else
            genBurstChained(k);
    } else {
        if (_traits.ipToIp)
            genFrameChained(k);
        else
            genFrameBaseline(k);
    }
}

void
FlowRuntime::stop()
{
    if (_stopping)
        return;
    _stopping = true;
    // The close() call costs software work like the open() did.
    _p.stack->runTask(_p.stack->costs().chainOpenInstr / 2, [] {});
    maybeTeardown();
}

void
FlowRuntime::maybeTeardown()
{
    if (!_stopping || _tornDown || !_frames.empty())
        return;
    _tornDown = true;
    if (_admitted) {
        _p.chains->releaseAdmission(_ips, _spec.edgeBytes, _spec.fps);
        _admitted = false;
    }
    if (_chainCreated && !_vipFallback && _p.chains->bound(_chain))
        _p.chains->close(_chain);
}

// --------------------------------------------------------------------
// User input (game flows)
// --------------------------------------------------------------------

void
FlowRuntime::scheduleNextInput()
{
    Tick gap = _touch->nextGap(_p.sys->random());
    Tick dur = _touch->inputDuration(_p.sys->random());
    _nextInput = _p.sys->curTick() + gap;
    _inputDur = dur;
    _inputEvent = _p.sys->eventq().schedule(_nextInput, [this, dur] {
        _inputEvent = InvalidEventId;
        onInputEvent(dur);
    }, EventPriority::Default, "flow.input");
}

void
FlowRuntime::onInputEvent(Tick duration)
{
    _inputBusyUntil = _p.sys->curTick() + duration;

    // Touch processing wakes the CPU in every configuration.
    _p.stack->runTask(kInputProcInstr, [] {});

    // Mid-burst input: pre-computed frames whose presentation time is
    // still ahead show stale game state; the rollback path re-computes
    // them in software (Fig 11's rollback branch).  The hardware may
    // already have rendered them -- the redo cost is what matters.
    if (_traits.frameBurst && _p.cfg->enableRollback &&
        _activeBurstSize > 0) {
        Tick now = _p.sys->curTick();
        Tick burstEnd = frameTick(_activeBurstFirst + _activeBurstSize);
        if (now < burstEnd) {
            std::uint64_t stale =
                (burstEnd - now + _spec.period() - 1) / _spec.period();
            stale = std::min<std::uint64_t>(stale, _activeBurstSize);
            _p.stack->runTask(_spec.appInstrPerFrame * stale, [] {});
        }
    }
    scheduleNextInput();
}

// --------------------------------------------------------------------
// Baseline: per-frame, per-stage CPU orchestration
// --------------------------------------------------------------------

void
FlowRuntime::genFrameBaseline(std::uint64_t k)
{
    if (_stopping)
        return;
    if (shouldShed()) {
        shedFrame(k);
    } else {
        makeCtx(k);
        _p.stack->runTask(
            appWork() + _p.stack->costs().driverSetupInstr,
            [this, k] { submitStage(k, 0, /*burst_mode=*/false); });
    }

    armGen(k + 1);
}

void
FlowRuntime::submitStage(std::uint64_t k, std::size_t i, bool burst_mode)
{
    auto it = _frames.find(k);
    vip_assert(it != _frames.end(), "stage for unknown frame");
    FrameCtx &ctx = it->second;

    StageJob j;
    j.flowId = _id;
    j.frameId = k;
    j.inputBytes = ctx.edges[i];
    j.outputBytes = i + 1 < _numStages ? ctx.edges[i + 1] : 0;
    j.inputAddr = ctx.addrs[i];
    j.outputAddr = i + 1 < _numStages ? ctx.addrs[i + 1] : 0;
    j.readsMemory = !(i == 0 && _spec.sourceGenerated());
    j.writesMemory = i + 1 < _numStages;
    j.deadline = ctx.deadline;
    if (i == 0)
        j.onStart = [this, k] { recordStart(k); };

    if (!burst_mode) {
        j.onComplete = [this, k, i] {
            _p.stack->raiseInterrupt([this, k, i] {
                if (i + 1 < _numStages) {
                    _p.stack->runTask(
                        _p.stack->costs().driverSetupInstr,
                        [this, k, i] {
                            submitStage(k, i + 1, false);
                        });
                } else {
                    frameDone(k);
                }
            });
        };
    } else {
        j.onComplete = [this, k, i] {
            if (i + 1 < _numStages) {
                // Hardware doorbell: next stage starts with no CPU.
                submitStage(k, i + 1, true);
            } else {
                auto left = _frames.at(k).burstLeft;
                frameDone(k);
                if (left && --*left == 0) {
                    // One interrupt per completed burst.
                    _p.stack->raiseInterrupt([] {});
                }
            }
        };
    }
    _p.stack->submitWithRetry(*_ips[i], std::move(j));
}

// --------------------------------------------------------------------
// FrameBurst over the memory-staged pipeline
// --------------------------------------------------------------------

void
FlowRuntime::burstPipeline(std::uint64_t k0, std::uint32_t n,
                           std::uint64_t k, BurstAction action)
{
    const auto &c = _p.stack->costs();

    // Interactive (game) frames must be *generated* by the CPU before
    // the hardware can consume them, so the pipeline gates each frame
    // on its software work.  Media frames already exist (a video's
    // compressed data is on disk): the Schedule_FrameBurst call hands
    // the whole burst to the hardware after one setup task and the
    // per-frame software bookkeeping runs alongside, off the critical
    // path — which is exactly why a burst can occupy an IP chain
    // continuously (Fig 7).
    bool gating = _cls == AppClass::Game && isInteractive();

    if (!gating) {
        vip_assert(k == k0, "non-gating burst re-entered");
        std::uint64_t setup =
            c.burstSetupBaseInstr + c.burstSetupPerFrameInstr;
        _p.stack->runTask(setup, [this, k0, n, action] {
            for (std::uint64_t kk = k0; kk < k0 + n; ++kk)
                action(kk, kk + 1 == k0 + n);
            // Account the remaining per-frame software work without
            // gating the hardware.
            const auto &cc = _p.stack->costs();
            std::uint64_t rest =
                (n - 1) * cc.burstSetupPerFrameInstr;
            for (std::uint32_t j = 0; j < n; ++j)
                rest += appWork();
            if (rest > 0)
                _p.stack->runTask(rest, [] {});
        });
        return;
    }

    std::uint64_t cost = c.burstSetupPerFrameInstr + appWork();
    if (k == k0)
        cost += c.burstSetupBaseInstr;
    _p.stack->runTask(cost, [this, k0, n, k, action] {
        action(k, k + 1 == k0 + n);
        if (k + 1 < k0 + n)
            burstPipeline(k0, n, k + 1, action);
    });
}

void
FlowRuntime::genBurstJobs(std::uint64_t k0)
{
    if (_stopping)
        return;
    Tick now = _p.sys->curTick();
    std::uint32_t n = _burst->nextBurst(k0, now, inputHint());
    if (shouldShed()) {
        for (std::uint64_t k = k0; k < k0 + n; ++k)
            shedFrame(k);
        armGen(k0 + n);
        return;
    }
    auto left = std::make_shared<std::uint32_t>(n);
    _activeBurstLeft = left;
    _activeBurstSize = n;
    _activeBurstFirst = k0;

    for (std::uint64_t k = k0; k < k0 + n; ++k)
        makeCtx(k).burstLeft = left;

    burstPipeline(k0, n, k0, [this](std::uint64_t k, bool) {
        submitStage(k, 0, /*burst_mode=*/true);
    });

    armGen(k0 + n);
}

// --------------------------------------------------------------------
// IP-to-IP: chained streaming
// --------------------------------------------------------------------

void
FlowRuntime::feedNow(std::uint64_t k, bool txn_end)
{
    auto it = _frames.find(k);
    vip_assert(it != _frames.end(), "feeding unknown frame");
    FrameCtx &ctx = it->second;
    _p.chains->feed(_chain, k, ctx.edges, ctx.addrs[0], ctx.deadline,
                    genSpan(), txn_end);
}

void
FlowRuntime::genFrameChained(std::uint64_t k)
{
    if (_stopping)
        return;
    if (shouldShed()) {
        shedFrame(k);
        armGen(k + 1);
        return;
    }
    makeCtx(k);
    _p.stack->runTask(
        appWork() + _p.stack->costs().chainSetupInstr,
        [this, k] {
            if (_vipFallback) {
                _p.chains->acquire(_chain,
                                   [this, k] { feedNow(k, true); });
            } else {
                feedNow(k, true);
            }
        });

    armGen(k + 1);
}

void
FlowRuntime::genBurstChained(std::uint64_t k0)
{
    if (_stopping)
        return;
    Tick now = _p.sys->curTick();
    std::uint32_t n = _burst->nextBurst(k0, now, inputHint());
    if (shouldShed()) {
        for (std::uint64_t k = k0; k < k0 + n; ++k)
            shedFrame(k);
        armGen(k0 + n);
        return;
    }
    auto left = std::make_shared<std::uint32_t>(n);
    _activeBurstLeft = left;
    _activeBurstSize = n;
    _activeBurstFirst = k0;

    for (std::uint64_t k = k0; k < k0 + n; ++k)
        makeCtx(k).burstLeft = left;

    // The burst occupies each single-context IP until its last frame
    // drains (the head-of-line blocking regime of Fig 7), expressed
    // through the Transaction switch granularity.
    auto feed = [this](std::uint64_t k, bool last) {
        feedNow(k, /*txn_end=*/last);
    };
    if (_vipFallback) {
        _p.chains->acquire(_chain, [this, k0, n, feed] {
            burstPipeline(k0, n, k0, feed);
        });
    } else {
        burstPipeline(k0, n, k0, feed);
    }

    armGen(k0 + n);
}

void
FlowRuntime::genBurstVip(std::uint64_t k0)
{
    if (_stopping)
        return;
    Tick now = _p.sys->curTick();
    std::uint32_t n = _burst->nextBurst(k0, now, inputHint());
    if (shouldShed()) {
        for (std::uint64_t k = k0; k < k0 + n; ++k)
            shedFrame(k);
        armGen(k0 + n);
        return;
    }
    auto left = std::make_shared<std::uint32_t>(n);
    _activeBurstLeft = left;
    _activeBurstSize = n;
    _activeBurstFirst = k0;

    for (std::uint64_t k = k0; k < k0 + n; ++k)
        makeCtx(k).burstLeft = left;

    burstPipeline(k0, n, k0, [this, k0, n](std::uint64_t k,
                                           bool last) {
        if (k == k0) {
            // Ship the header packet (Fig 12) through the SA ahead of
            // the burst's data; the chain then runs autonomously.
            HeaderPacket hp;
            std::vector<IpKind> kinds;
            kinds.reserve(_ips.size());
            for (auto *ip : _ips)
                kinds.push_back(ip->kind());
            hp.setIps(kinds);
            hp.setFrameSizeKb(static_cast<std::uint32_t>(
                std::min<std::uint64_t>(_spec.edgeBytes[0] / 1024,
                                        0xffff)));
            hp.setBurstSize(std::min(n, 15u));
            hp.setFrameRate(static_cast<std::uint32_t>(
                std::min(15.0, _spec.fps / 10.0)));
            auto it = _frames.find(k0);
            if (it != _frames.end()) {
                hp.setSrcAddr(it->second.addrs.front());
                hp.setDestAddr(it->second.addrs.back());
            }
            _p.sa->peerTransfer(hp.sizeBytes(), [] {});
        }
        feedNow(k, /*txn_end=*/last);
    });

    armGen(k0 + n);
}

void
FlowRuntime::onChainExit(std::uint64_t k)
{
    if (!_traits.frameBurst) {
        // Per-frame completion: interrupt the host.
        if (_vipFallback)
            _p.chains->release(_chain);
        _p.stack->raiseInterrupt([this, k] { frameDone(k); });
        return;
    }

    auto left = _frames.at(k).burstLeft;
    frameDone(k);
    if (left && --*left == 0) {
        if (_vipFallback)
            _p.chains->release(_chain);
        _p.stack->raiseInterrupt([] {});
    }
}

// --------------------------------------------------------------------
// Results
// --------------------------------------------------------------------

FlowResult
FlowRuntime::result(double seconds) const
{
    FlowResult r;
    r.name = _spec.name;
    r.qosCritical = _spec.qosCritical;
    r.fps = _spec.fps;
    r.nominalFps = _nominalFps;
    r.admitted = !_rejected;
    r.generated = _generated;
    r.completed = _completed;
    r.violations = _violations;
    r.drops = _drops;
    r.shed = _shed;
    r.inFlight = _frames.size();
    r.meanFlowTimeMs =
        _completed ? _flowTimeSumMs / static_cast<double>(_completed)
                   : 0.0;
    r.meanTransitMs =
        _completed ? _transitSumMs / static_cast<double>(_completed)
                   : 0.0;
    r.achievedFps = seconds > 0.0
        ? static_cast<double>(_completed - _drops) / seconds
        : 0.0;
    return r;
}

void
FlowRuntime::auditInvariants(AuditContext &ctx) const
{
    // Frame conservation: every generated frame is completed, shed at
    // the chain head, or still in flight -- continuously, not just at
    // teardown.
    ctx.checkEq("flow.conservation", _generated,
                _completed + _shed + _frames.size(),
                _spec.name + " leaks frames");
    ctx.checkLe("flow.violations_le_completed", _violations, _completed,
                _spec.name);
    ctx.checkLe("flow.drops_le_completed", _drops, _completed,
                _spec.name);
    ctx.checkTrue("flow.rejected_idle",
                  !_rejected || (_generated == 0 && _frames.empty()),
                  _spec.name + " generated frames while rejected");
}

void
FlowRuntime::stateDigest(StateDigest &d) const
{
    d.add(_spec.name);
    d.add(_generated);
    d.add(_completed);
    d.add(_violations);
    d.add(_drops);
    d.add(_shed);
    d.add(_flowTimeSumMs);
    d.add(_transitSumMs);
    d.add(_stopping);
    d.add(_tornDown);
    d.add(_rejected);
    d.add(_spec.fps);
    // In-flight frame contexts live in an unordered_map: walk the
    // keys sorted so the digest is independent of hash order.
    std::vector<std::uint64_t> keys;
    keys.reserve(_frames.size());
    for (const auto &[k, ctx] : _frames)
        keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    for (std::uint64_t k : keys) {
        const FrameCtx &f = _frames.at(k);
        d.add(k);
        d.add(static_cast<std::uint64_t>(f.gen));
        d.add(static_cast<std::uint64_t>(f.deadline));
        d.add(static_cast<std::uint64_t>(f.started));
        d.add(f.degraded);
    }
}

// --------------------------------------------------------------------
// Checkpoint / restore
// --------------------------------------------------------------------

ChainId
FlowRuntime::recreateChain()
{
    vip_assert(_chainCreated,
               "chain restore for flow ", _spec.name,
               " which never created one");
    ChainId id = _p.chains->create(
        _id, _ips, _spec.edgeBytes,
        [this](FlowId, std::uint64_t k) { onChainExit(k); },
        [this](FlowId, std::uint64_t k) { recordStart(k); });
    vip_assert(id == _chain, "chain ", _chain, " of flow ", _spec.name,
               " recreated out of order as ", id);
    return id;
}

void
FlowRuntime::saveState(SnapshotWriter &w) const
{
    vip_assert(quiescent(), "checkpointing flow ", _spec.name,
               " with frames in flight");
    w.d(_spec.fps);
    w.d(_nominalFps);
    w.u32(_chain);
    w.b(_chainCreated);
    w.b(_vipFallback);
    w.b(_stopping);
    w.b(_tornDown);
    w.b(_rejected);
    w.b(_admitted);
    w.u32(_consecLate);
    w.tick(_nextInput);
    w.tick(_inputBusyUntil);
    w.b(static_cast<bool>(_activeBurstLeft));
    w.u32(_activeBurstLeft ? *_activeBurstLeft : 0);
    w.u32(_activeBurstSize);
    w.u64(_activeBurstFirst);
    w.u64(_generated);
    w.u64(_completed);
    w.u64(_violations);
    w.u64(_drops);
    w.u64(_shed);
    w.d(_flowTimeSumMs);
    w.d(_transitSumMs);

    // Pending cadence events.  A stopped flow's generation event may
    // still be live as a no-op; it is saved and re-armed all the same
    // so the restored event queue matches the snapshot exactly.
    const EventQueue &eq = _p.sys->eventq();
    bool genLive = _genEvent != InvalidEventId && eq.isLive(_genEvent);
    w.b(genLive);
    if (genLive) {
        w.u64(_genEvent);
        w.tick(eq.scheduledWhen(_genEvent));
        w.u64(_genNextK);
    }
    bool inputLive =
        _inputEvent != InvalidEventId && eq.isLive(_inputEvent);
    w.b(inputLive);
    if (inputLive) {
        w.u64(_inputEvent);
        w.tick(eq.scheduledWhen(_inputEvent));
        w.tick(_inputDur);
    }
}

void
FlowRuntime::loadState(SnapshotReader &r)
{
    _spec.fps = r.d();
    _nominalFps = r.d();
    _chain = r.u32();
    _chainCreated = r.b();
    _vipFallback = r.b();
    _stopping = r.b();
    _tornDown = r.b();
    _rejected = r.b();
    _admitted = r.b();
    _consecLate = r.u32();
    _nextInput = r.tick();
    _inputBusyUntil = r.tick();
    bool haveBurst = r.b();
    std::uint32_t burstLeft = r.u32();
    _activeBurstLeft = haveBurst
        ? std::make_shared<std::uint32_t>(burstLeft) : nullptr;
    _activeBurstSize = r.u32();
    _activeBurstFirst = r.u64();
    _generated = r.u64();
    _completed = r.u64();
    _violations = r.u64();
    _drops = r.u64();
    _shed = r.u64();
    _flowTimeSumMs = r.d();
    _transitSumMs = r.d();
    // Burst policies size bursts from the (possibly down-rated) spec.
    buildBurstPolicy();

    auto &eq = _p.sys->eventq();
    if (r.b()) {
        _genEvent = r.u64();
        Tick when = r.tick();
        _genNextK = r.u64();
        std::uint64_t k = _genNextK;
        eq.restoreEvent(_genEvent, when,
                        [this, k] { dispatchGen(k); },
                        EventPriority::Default, "flow.gen");
    }
    if (r.b()) {
        _inputEvent = r.u64();
        Tick when = r.tick();
        _inputDur = r.tick();
        Tick dur = _inputDur;
        eq.restoreEvent(_inputEvent, when, [this, dur] {
            _inputEvent = InvalidEventId;
            onInputEvent(dur);
        }, EventPriority::Default, "flow.input");
    }
}

} // namespace vip
