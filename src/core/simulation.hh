/**
 * @file
 * Simulation: the library's top-level entry point.
 *
 * Builds the full platform (CPU cluster, System Agent, LPDDR3 memory,
 * one IP core per kind the workload touches) from a SocConfig,
 * instantiates a FlowRuntime per application flow, runs the event
 * loop for the configured duration and returns RunStats.
 *
 * Typical use:
 * @code
 *   vip::SocConfig cfg;
 *   cfg.system = vip::SystemConfig::VIP;
 *   vip::Simulation sim(cfg, vip::WorkloadCatalog::byIndex(4));
 *   vip::RunStats s = sim.run();
 * @endcode
 */

#ifndef VIP_CORE_SIMULATION_HH
#define VIP_CORE_SIMULATION_HH

#include <map>
#include <memory>

#include "app/workload.hh"
#include "core/chain_manager.hh"
#include "core/flow_runtime.hh"
#include "core/run_stats.hh"
#include "core/soc_config.hh"
#include "fault/fault_injector.hh"
#include "obs/latency.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "obs/stat_registry.hh"
#include "obs/timeseries.hh"
#include "obs/tracer.hh"
#include "sim/snapshot.hh"

namespace vip
{

/** One platform + workload + configuration run. */
class Simulation
{
  public:
    Simulation(SocConfig cfg, Workload workload);
    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Run for cfg.simSeconds and collect results (call once). */
    RunStats run();

    /** @{ Component access (tests, benches, custom analyses). */
    System &system() { return _sys; }
    MemoryController &memory() { return *_mem; }
    SystemAgent &systemAgent() { return *_sa; }
    CpuCluster &cpus() { return *_cpus; }
    ChainManager &chains() { return *_chains; }
    IpCore *ip(IpKind kind);
    /** The run's fault injector; null when the plan is all-zeros. */
    FaultInjector *faults() { return _faults.get(); }
    /** The run's invariant auditor (inactive under --audit=off). */
    Auditor &auditor() { return _auditor; }
    /** The run's tracer; null unless cfg.trace is enabled. */
    Tracer *tracer() { return _tracer.get(); }
    /** The metrics sampler; null unless cfg.metrics is enabled. */
    MetricsSampler *metrics() { return _metrics.get(); }
    /** The hot-path profiler; null unless cfg.prof is enabled. */
    Profiler *profiler() { return _profiler.get(); }
    /** The time-series plane; null unless cfg.ts is armed. */
    TimeSeries *timeseries() { return _ts.get(); }
    const TimeSeries *timeseries() const { return _ts.get(); }
    /** Always-on per-frame latency decomposition. */
    LatencyCollector &latencyCollector() { return *_latency; }
    /** The unified stats registry (always built, populated in ctor). */
    StatRegistry &statsRegistry() { return _registry; }
    const SocConfig &config() const { return _cfg; }
    const Workload &workload() const { return _wl; }
    const std::vector<std::unique_ptr<FlowRuntime>> &flows() const
    {
        return _flows;
    }
    /** @} */

    /**
     * Schedule an application to stop (the user closes it) at
     * @p when: its flows stop generating, drain, and release their
     * chain lanes.  Call before run().
     */
    void stopAppAt(const std::string &app_name, Tick when);

    /**
     * True when every component is at a checkpointable quiescent
     * point: no frames in any flow, no DMA/link transfers or CPU
     * tasks in flight, no queued chain acquisitions or software
     * submissions.  Only re-armable tracked events are pending then.
     */
    bool quiescent() const;

    /**
     * Write a snapshot of the current state to @p path (must be
     * quiescent).  Normally driven by cfg.checkpointOut /
     * cfg.checkpointEveryMs; exposed for tests and tools.
     */
    void saveCheckpoint(const std::string &path);

    /**
     * Arm a one-shot checkpoint, written to @p path at the first
     * quiescent point at or after tick @p when.  Call before run().
     * Checkpoint writes are observational: they never perturb the
     * event stream or digests.
     */
    void checkpointAt(Tick when, std::string path);

    /** Checkpoint files written so far (cadence + one-shots). */
    std::uint64_t checkpointsWritten() const
    {
        return _checkpointsWritten;
    }

    /** @{ Graceful interrupts (cfg.interruptFlag).
     *
     * interrupted() is true when the run stopped early because the
     * flag fired; interruptSignal() is the stored signal number.  The
     * newest checkpoint (written at the stopping quiescent point when
     * any checkpoint plan was armed) is lastCheckpointPath(). */
    bool interrupted() const { return _interrupted; }
    int interruptSignal() const { return _interruptSig; }
    const std::string &lastCheckpointPath() const
    {
        return _lastCheckpointPath;
    }
    Tick lastCheckpointTick() const { return _lastCheckpointTick; }
    /** @} */

    /**
     * Dump every component's statistics (gem5 stats.txt style) plus
     * the energy ledger to @p os.  Call after run().
     */
    void dumpStats(std::ostream &os);

    /**
     * Write the unified stats registry as self-describing JSON
     * (schemaVersion'd, provenance- and run-context-stamped); the
     * format vip_stats_diff compares.  Call after run().
     */
    void writeStatsJson(std::ostream &os) const;

    /**
     * Write the profiler report (--prof) as self-describing JSON;
     * the format tools/vip_prof summarizes.  Call after run();
     * requires cfg.prof to be enabled.
     */
    void writeProfJson(std::ostream &os) const;

    /**
     * Write the time-series report (--ts) as self-describing JSON;
     * the format tools/vip_top renders.  Call after run(); requires
     * cfg.ts to be armed.
     */
    void writeSeriesJson(std::ostream &os) const;

    /**
     * Convenience: build + run in one call.
     */
    static RunStats run(SocConfig cfg, Workload workload);

  private:
    void build();
    void buildMetrics();
    void attachAuditors();
    void buildStatsRegistry();
    void scheduleAudit();
    RunStats collect(double seconds);

    /** @{ checkpoint/restore internals */
    /** Schedule the stop events recorded by stopAppAt() (fresh runs
     *  only; restored runs re-arm them from the snapshot). */
    void scheduleStopEvents();
    /** Header identity + provenance for a snapshot written now. */
    SnapshotMeta checkpointMeta() const;
    /** --audit spec string stamped into snapshot identity. */
    std::string auditSpecString() const;
    /** Behavior-relevant knobs beyond config/workload/seed/seconds;
     *  any mismatch between snapshot and run is a restore SimFatal. */
    std::string identityString() const;
    /** Load @p path into the freshly built platform (run() entry). */
    void restoreFrom(const std::string &path);
    /** Run the event loop, threading the checkpoint hook when any
     *  cadence/one-shot checkpoints (or the probe) are armed. */
    void runEventLoop(Tick limit);
    /** @} */

    /** Run-context pairs stamped into stats.json / crash bundles. */
    std::vector<std::pair<std::string, std::string>> runMeta() const;

    /** Flight recorder: dump a crash bundle to cfg.postmortemDir. */
    void writePostmortem(const std::string &reason,
                         const char *kind) noexcept;

    /** @{ no-progress guard */
    /** Total units of retired work (frames, sub-frames, jobs). */
    std::uint64_t retiredWork() const;
    std::size_t framesInFlight() const;
    /** Multi-line occupancy dump for the abort diagnostic. */
    std::string progressDump() const;
    void checkProgress();
    /** @} */

    SocConfig _cfg;
    Workload _wl;
    System _sys;
    /** Constructed before build() so components can cache pointers. */
    std::unique_ptr<LatencyCollector> _latency;
    std::unique_ptr<Tracer> _tracer;
    std::unique_ptr<MetricsSampler> _metrics;
    /** Hot-path profiler (cfg.prof); observational, digest-neutral. */
    std::unique_ptr<Profiler> _profiler;
    /** Windowed time-series plane (cfg.ts); samples from the event
     *  loop's pre-service hook, so it is digest-neutral by
     *  construction. */
    std::unique_ptr<TimeSeries> _ts;
    StatRegistry _registry;
    Auditor _auditor;
    EnergyLedger _ledger;
    FrameAllocator _alloc;
    FrameTrace _trace;

    std::unique_ptr<FaultInjector> _faults;
    std::unique_ptr<MemoryController> _mem;
    std::unique_ptr<SystemAgent> _sa;
    std::unique_ptr<CpuCluster> _cpus;
    std::unique_ptr<SoftwareStack> _stack;
    std::unique_ptr<ChainManager> _chains;
    std::map<IpKind, std::unique_ptr<IpCore>> _ips;
    std::vector<std::unique_ptr<FlowRuntime>> _flows;
    std::uint64_t _lastRetired = 0;
    bool _ran = false;
    bool _interrupted = false;
    int _interruptSig = 0;

    /** @{ checkpoint/restore bookkeeping */
    /** stopAppAt() intent: part of the run identity, and scheduled
     *  (fresh runs) / re-armed (restores) at run() time so the event
     *  queue is empty when a snapshot is loaded. */
    struct StopIntent
    {
        std::string app;
        Tick when;
    };
    /** One tracked per-flow stop event. */
    struct StopEvent
    {
        std::size_t flow;
        EventId id = InvalidEventId;
        Tick when = 0;
    };
    /** An armed checkpoint: cadence (period > 0) or one-shot. */
    struct CheckpointPlan
    {
        std::string path;
        Tick next;
        Tick period; ///< 0 for one-shot
    };
    std::vector<StopIntent> _stopIntents;
    std::vector<StopEvent> _stopEvents;
    std::vector<CheckpointPlan> _plans;
    EventId _auditEvent = InvalidEventId;
    EventId _progressEvent = InvalidEventId;
    /** Baselines of the delta-style metrics probes (mem.bw_gbps,
     *  sa.utilization); serialized so resumed CSVs stay exact. */
    std::shared_ptr<std::uint64_t> _bwLastBytes;
    std::shared_ptr<Tick> _saLastBusy;
    std::uint64_t _checkpointsWritten = 0;
    std::string _lastCheckpointPath;
    Tick _lastCheckpointTick = 0;
    bool _restored = false;
    /** One-shot --checkpoint-on-steady plan already armed (or, on a
     *  restore, already written before the snapshot); serialized so a
     *  resumed run never re-writes the steady snapshot. */
    bool _steadyPlanArmed = false;
    /** @} */
};

} // namespace vip

#endif // VIP_CORE_SIMULATION_HH
