/**
 * @file
 * FlowRuntime: drives one application flow through the platform under
 * a chosen system configuration.
 *
 * This is where the five evaluated systems differ:
 *
 *  - Baseline: per frame, the CPU runs app work + driver setup for
 *    every stage, every IP stages data through DRAM, and every stage
 *    completion interrupts the CPU.
 *  - FrameBurst: the CPU schedules N frames at once; stages still
 *    stage through DRAM but chain via hardware doorbells; one
 *    interrupt per burst.
 *  - IP-to-IP: the CPU sends one super-request per frame; data
 *    streams through lane buffers; the single-lane chain is acquired
 *    exclusively per frame.
 *  - IP-to-IP + FrameBurst: as above but the chain is held for a
 *    whole burst (the Fig 7 head-of-line blocking regime).
 *  - VIP: persistent per-flow lanes, header packet per burst, EDF
 *    hardware scheduling, no exclusive acquisition.
 */

#ifndef VIP_CORE_FLOW_RUNTIME_HH
#define VIP_CORE_FLOW_RUNTIME_HH

#include <memory>
#include <unordered_map>

#include "app/application.hh"
#include "app/trace.hh"
#include "app/user_input.hh"
#include "core/burst_policy.hh"
#include "core/chain_manager.hh"
#include "core/run_stats.hh"
#include "core/soc_config.hh"
#include "driver/software_stack.hh"
#include "mem/mem_types.hh"
#include "sim/system.hh"

namespace vip
{

/** Shared references a FlowRuntime needs from the platform. */
struct PlatformRefs
{
    System *sys = nullptr;
    const SocConfig *cfg = nullptr;
    SoftwareStack *stack = nullptr;
    ChainManager *chains = nullptr;
    SystemAgent *sa = nullptr;
    FrameAllocator *alloc = nullptr;
    std::function<IpCore *(IpKind)> ipFor;
};

/** Runs one flow instance for the whole simulation. */
class FlowRuntime : public Auditable
{
  public:
    FlowRuntime(PlatformRefs refs, FlowSpec spec, AppClass cls,
                FlowId id, Tick phase, FrameTrace *trace);

    /** Arm the first generation/burst event; call before System::run. */
    void start();

    /**
     * Stop the flow (the user closes the app): no further frames are
     * generated; once the in-flight ones drain, the chain is closed
     * and its lanes are freed for other applications.
     */
    void stop();

    /** True once stop() has been called. */
    bool stopped() const { return _stopping; }

    /** QoS outcome after the run. */
    FlowResult result(double seconds) const;

    const FlowSpec &spec() const { return _spec; }
    FlowId id() const { return _id; }

    /** True when VIP lane binding failed and the flow fell back to
     *  transactional chain acquisition. */
    bool vipFallback() const { return _vipFallback; }

    /** @{ overload-protection outcome */
    /** False when admission control refused the flow (Reject). */
    bool admitted() const { return !_rejected; }
    /** True when admission halved the target FPS (Degrade). */
    bool downRated() const { return _spec.fps != _nominalFps; }
    /** Whole frames dropped unstarted at the chain head. */
    std::uint64_t shedFrames() const { return _shed; }
    /** @} */

    /**
     * Fault recovery gave up on frame @p k somewhere in the chain:
     * its payload is lost, so it is judged a deadline miss (and a
     * drop) when it drains, however fast the passthrough is.
     */
    void noteDegraded(std::uint64_t k);

    /** @{ progress snapshot for the no-progress guard */
    std::uint64_t completedFrames() const { return _completed; }
    std::size_t framesInFlight() const { return _frames.size(); }
    /** @} */

    /** @{ QoS accounting (stats registry) */
    std::uint64_t generatedFrames() const { return _generated; }
    std::uint64_t violations() const { return _violations; }
    std::uint64_t drops() const { return _drops; }
    /** @} */

    /** @{ Auditable */
    void auditInvariants(AuditContext &ctx) const override;
    void stateDigest(StateDigest &d) const override;
    /** @} */

    /**
     * TEST ONLY: skew the generated-frame counter without generating
     * a frame, deliberately breaking flow.conservation so tests can
     * prove a strict audit catches and localizes an accounting bug.
     */
    void corruptAccountingForTest() { ++_generated; }

    /** True when no frame is in flight (checkpointing). */
    bool quiescent() const { return _frames.empty(); }

    /**
     * Re-create this flow's chain during checkpoint restore,
     * mirroring the create() call start() issued.  Driven by
     * ChainManager::loadState in saved chain order so the ids come
     * out identical; returns the new ChainId.
     */
    ChainId recreateChain();

    /** @{ checkpoint serialization (driven by the Simulation) */
    void saveState(SnapshotWriter &w) const;
    void loadState(SnapshotReader &r);
    /** @} */

  private:
    struct FrameCtx
    {
        std::vector<std::uint64_t> edges;
        std::vector<Addr> addrs;
        Tick gen = 0;       ///< nominal generation time
        Tick deadline = 0;
        Tick started = 0;   ///< first stage began processing
        bool degraded = false; ///< payload lost to a fault
        std::shared_ptr<std::uint32_t> burstLeft;
    };

    /** @{ shared helpers */
    Tick frameTick(std::uint64_t k) const;
    FrameCtx &makeCtx(std::uint64_t k);
    void applyAdmission();
    bool shouldShed() const;
    void shedFrame(std::uint64_t k);
    void frameDone(std::uint64_t k);
    void recordStart(std::uint64_t k);
    void maybeTeardown();
    Tick genSpan() const;
    Tick inputHint() const;
    void buildBurstPolicy();
    bool isInteractive() const;
    std::uint64_t appWork();
    /** @} */

    /** Per-frame action of a pipelined burst (frame id, is-last). */
    using BurstAction = std::function<void(std::uint64_t, bool)>;

    /**
     * Run the burst's CPU preparation frame by frame, invoking
     * @p action for each frame as soon as its software work is done.
     */
    void burstPipeline(std::uint64_t k0, std::uint32_t n,
                       std::uint64_t k, BurstAction action);

    /** @{ job-mode paths (Baseline / FrameBurst) */
    void genFrameBaseline(std::uint64_t k);
    void genBurstJobs(std::uint64_t k0);
    void submitStage(std::uint64_t k, std::size_t i, bool burst_mode);
    /** @} */

    /** @{ stream-mode paths (IP-to-IP / +FB / VIP) */
    void genFrameChained(std::uint64_t k);
    void genBurstChained(std::uint64_t k0);
    void genBurstVip(std::uint64_t k0);
    void feedNow(std::uint64_t k, bool txn_end);
    void onChainExit(std::uint64_t k);
    /** @} */

    /** @{ user input (game flows) */
    void scheduleNextInput();
    void onInputEvent(Tick duration);
    /** @} */

    /** @{ frame-generation cadence (tracked for checkpointing) */
    /** Schedule generation of frame/burst @p k at its nominal tick. */
    void armGen(std::uint64_t k);
    /** The armed event fired: dispatch on the mode traits. */
    void dispatchGen(std::uint64_t k);
    /** @} */

    PlatformRefs _p;
    FlowSpec _spec;
    AppClass _cls;
    FlowId _id;
    Tick _phase;
    ConfigTraits _traits{};
    FrameTrace *_trace = nullptr;

    std::vector<IpCore *> _ips;
    std::size_t _numStages = 0;

    ChainId _chain = 0;
    bool _chainCreated = false;
    bool _vipFallback = false;
    bool _stopping = false;
    bool _tornDown = false;

    /** @{ overload protection */
    double _nominalFps = 0.0;  ///< requested rate before down-rating
    bool _rejected = false;    ///< admission refused the flow
    bool _admitted = false;    ///< demand recorded in the ledger
    std::uint32_t _consecLate = 0; ///< frames late in a row
    /** @} */

    /**
     * @{ observability (cached tracer string ids; excluded from
     * stateDigest so tracing never perturbs digest streams)
     */
    std::uint32_t _obsTrack = 0;   ///< "flow.<name>" track
    std::uint32_t _obsFrameNm = 0; ///< async lifecycle name
    /** @} */

    std::unique_ptr<BurstPolicy> _burst;
    std::unique_ptr<TouchModel> _touch;
    Tick _nextInput = MaxTick;
    Tick _inputBusyUntil = 0;
    /** @{ pending-event bookkeeping (checkpointing) */
    EventId _genEvent = InvalidEventId;   ///< next generation event
    std::uint64_t _genNextK = 0;          ///< frame/burst it fires for
    EventId _inputEvent = InvalidEventId; ///< next user-input event
    Tick _inputDur = 0;                   ///< its touch duration
    /** @} */
    std::shared_ptr<std::uint32_t> _activeBurstLeft;
    std::uint32_t _activeBurstSize = 0;
    std::uint64_t _activeBurstFirst = 0;

    std::unordered_map<std::uint64_t, FrameCtx> _frames;

    /** @{ QoS accounting */
    std::uint64_t _generated = 0;
    std::uint64_t _completed = 0;
    std::uint64_t _violations = 0;
    std::uint64_t _drops = 0;
    std::uint64_t _shed = 0;      ///< dropped whole at the chain head
    double _flowTimeSumMs = 0.0;
    double _transitSumMs = 0.0;
    /** @} */
};

} // namespace vip

#endif // VIP_CORE_FLOW_RUNTIME_HH
