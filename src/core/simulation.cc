#include "core/simulation.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iomanip>
#include <memory>
#include <ostream>
#include <set>
#include <sstream>

#include "obs/flight_recorder.hh"
#include "obs/provenance.hh"

namespace vip
{

namespace
{

/**
 * Flight-recorder checkpoint-ring cadence (simulated ms) when the
 * user gave no --checkpoint-every-ms.  Snapshots land at the first
 * quiescent point after each boundary and rotate 2-deep, so a killed
 * soak loses at most ~one ring period of progress.
 */
constexpr double kRecorderRingMs = 50.0;

} // namespace

Simulation::Simulation(SocConfig cfg, Workload workload)
    : _cfg(std::move(cfg)), _wl(std::move(workload)), _sys(_cfg.seed),
      _auditor(_cfg.audit)
{
    for (const auto &app : _wl.apps)
        app.validate();
    // Observability wiring happens before build() so every component
    // sees the pointers from its first tick.  Both objects are purely
    // observational: digests stay bit-identical with tracing on.
    _latency = std::make_unique<LatencyCollector>();
    _sys.setLatencyCollector(_latency.get());
    if (_cfg.trace.enabled()) {
        _tracer = std::make_unique<Tracer>(_cfg.trace.categories,
                                           _cfg.trace.bufferEvents);
        _sys.setTracer(_tracer.get());
    } else if (!_cfg.postmortemDir.empty()) {
        // The flight recorder wants a trace tail in its crash bundle:
        // run a small all-category ring even when the user asked for
        // no trace output.  Still digest-neutral (see tracer.hh).
        _tracer = std::make_unique<Tracer>(kAllTraceCats,
                                           std::size_t{32} << 10);
        _sys.setTracer(_tracer.get());
    }
    if (_cfg.prof.enabled()) {
        _profiler = std::make_unique<Profiler>(_cfg.prof);
        _sys.eventq().setProfiler(_profiler.get());
    }
    build();
    attachAuditors();
    buildStatsRegistry();
    // The time-series plane snapshots the registry's definitions at
    // construction, so it is built after buildStatsRegistry() -- and
    // its own ts.* stats, registered below, are therefore never part
    // of its selection.  Like prof.*, they only exist when armed, so
    // baseline stats files stay comparable.
    if (_cfg.ts.enabled()) {
        _ts = std::make_unique<TimeSeries>(
            _cfg.ts, _cfg.metrics.intervalMs, _registry);
        TimeSeries *t = _ts.get();
        _registry.addExact("sim.steady.tick", "steady-state detection "
                           "time (-1 while undetected)", "ms",
                           [t] { return t->steadyTickMs(); });
        _registry.addExact("ts.samples", "interval boundaries sampled "
                           "(pre-decimation)", "",
                           [t] { return double(t->samplesSeen()); });
        _registry.addExact("ts.rows", "rows held in the series ring",
                           "", [t] { return double(t->rows()); });
        _registry.addExact("ts.stride", "current decimation stride",
                           "", [t] { return double(t->stride()); });
    }
}

Simulation::~Simulation() = default;

void
Simulation::build()
{
    // One injector shared by every component keeps the fault
    // sequence a single deterministic stream.
    if (_cfg.fault.enabled())
        _faults = std::make_unique<FaultInjector>(_cfg.fault);

    _mem = std::make_unique<MemoryController>(
        _sys, "soc.mem", _cfg.dram, _ledger, _faults.get());
    _sa = std::make_unique<SystemAgent>(_sys, "soc.sa", _cfg.sa, *_mem,
                                        _ledger, _faults.get());
    _cpus = std::make_unique<CpuCluster>(_sys, "soc.cpu", _cfg.cpu,
                                         _cfg.cpuCores, _ledger);
    _stack = std::make_unique<SoftwareStack>(*_cpus, _cfg.drivers);
    _chains = std::make_unique<ChainManager>();

    // One hardware instance per IP kind the workload touches: this is
    // exactly the shared-resource contention the paper studies.
    std::set<IpKind> kinds;
    for (const auto &app : _wl.apps) {
        for (const auto &f : app.flows) {
            for (auto k : f.hwStages())
                kinds.insert(k);
        }
    }
    for (auto k : kinds) {
        auto [it, ok] = _ips.emplace(k, std::make_unique<IpCore>(
            _sys, std::string("soc.ip.") + ipKindName(k),
            _cfg.ipParamsFor(k), *_sa, _ledger, _faults.get()));
        // Flow ids are assigned densely below, so the id doubles as
        // an index into _flows.
        it->second->setDegradeNotifier(
            [this](FlowId f, std::uint64_t frame) {
                if (static_cast<std::size_t>(f) < _flows.size())
                    _flows[f]->noteDegraded(frame);
            });
    }

    PlatformRefs refs;
    refs.sys = &_sys;
    refs.cfg = &_cfg;
    refs.stack = _stack.get();
    refs.chains = _chains.get();
    refs.sa = _sa.get();
    refs.alloc = &_alloc;
    refs.ipFor = [this](IpKind k) { return ip(k); };

    // Small per-flow phase offsets de-synchronize the applications the
    // way independent app startup does on a real device.
    FlowId next = 0;
    for (const auto &app : _wl.apps) {
        for (const auto &f : app.flows) {
            Tick phase = (static_cast<Tick>(next) * fromMs(1.7)) %
                         f.period();
            _flows.push_back(std::make_unique<FlowRuntime>(
                refs, f, app.cls, next, phase,
                _cfg.recordTrace ? &_trace : nullptr));
            ++next;
        }
    }
}

void
Simulation::buildMetrics()
{
    _metrics = std::make_unique<MetricsSampler>(
        _sys, fromMs(_cfg.metrics.intervalMs));

    for (auto &[kind, ipPtr] : _ips) {
        IpCore *ip = ipPtr.get();
        std::string base = ipKindName(kind);
        _metrics->addProbe(base + ".state", [ip] {
            return static_cast<double>(ip->engineStateCode());
        });
        _metrics->addProbe(base + ".occupancy_bytes", [ip] {
            std::uint64_t occ = 0;
            for (std::uint32_t l = 0; l < ip->numLanes(); ++l)
                occ += ip->laneOccupancy(static_cast<int>(l));
            return static_cast<double>(occ);
        });
        _metrics->addProbe(base + ".lane_frames", [ip] {
            std::size_t depth = 0;
            for (std::uint32_t l = 0; l < ip->numLanes(); ++l)
                depth += ip->laneDepth(static_cast<int>(l));
            return static_cast<double>(depth);
        });
        _metrics->addProbe(base + ".credits_held", [ip] {
            return static_cast<double>(ip->creditsReserved()
                                       - ip->creditsReturned());
        });
    }

    MemoryController *mem = _mem.get();
    // The delta baselines live in Simulation-owned cells so a
    // checkpoint can carry them: the probes themselves are closures
    // and are rebuilt, but their windows must not restart on resume.
    _bwLastBytes = std::make_shared<std::uint64_t>(0);
    auto lastBytes = _bwLastBytes;
    Tick interval = fromMs(_cfg.metrics.intervalMs);
    _metrics->addProbe("mem.bw_gbps", [mem, lastBytes, interval] {
        std::uint64_t total = mem->bytesRead() + mem->bytesWritten();
        std::uint64_t delta = total - *lastBytes;
        *lastBytes = total;
        return static_cast<double>(delta) / toSec(interval) / 1e9;
    });
    _metrics->addProbe("mem.lp_state", [mem] {
        return static_cast<double>(static_cast<int>(mem->lpState()));
    });

    SystemAgent *sa = _sa.get();
    _saLastBusy = std::make_shared<Tick>(0);
    auto lastBusy = _saLastBusy;
    _metrics->addProbe("sa.utilization", [sa, lastBusy, interval] {
        Tick busy = sa->busyTicks();
        Tick delta = busy - *lastBusy;
        *lastBusy = busy;
        return static_cast<double>(delta)
               / static_cast<double>(interval);
    });

    for (std::uint32_t i = 0; i < _cpus->numCores(); ++i) {
        CpuCore *core = &_cpus->core(i);
        _metrics->addProbe("cpu" + std::to_string(i) + ".state",
                           [core] {
                               return static_cast<double>(
                                   static_cast<int>(core->state()));
                           });
    }

    for (auto &flowPtr : _flows) {
        FlowRuntime *f = flowPtr.get();
        _metrics->addProbe("flow." + f->spec().name + ".inflight",
                           [f] {
                               return static_cast<double>(
                                   f->framesInFlight());
                           });
    }

    // Steady-state verdict in the CSV: -1 until detected, then the
    // detection tick.  The ts arming state must match across
    // save/restore (checkpoint identity), so the CSV schema is stable
    // across resumes.
    if (_ts) {
        TimeSeries *t = _ts.get();
        _metrics->addProbe("steady_tick_ms",
                           [t] { return t->steadyTickMs(); });
    }

    // "(buffer)" is the test sentinel for "keep rows in memory only";
    // any real path gets incremental streaming so a killed run still
    // leaves a usable series behind.
    if (!_cfg.metrics.out.empty() && _cfg.metrics.out != "(buffer)")
        _metrics->streamTo(_cfg.metrics.out);
    // start() / loadState()+resume() is the caller's choice: a fresh
    // run schedules the first sample, a restore re-arms the pending
    // one from the snapshot.
}

void
Simulation::attachAuditors()
{
    // Attach order fixes the digest-stream component indices, so keep
    // it deterministic and stable: kernel, platform, flows.
    _auditor.attach("eventq", &_sys.eventq());
    _auditor.attach(_mem->name(), _mem.get());
    _auditor.attach(_sa->name(), _sa.get());
    _auditor.attach("soc.cpu", _cpus.get());
    _auditor.attach("soc.chains", _chains.get());
    for (auto &[kind, ip] : _ips)
        _auditor.attach(ip->name(), ip.get());
    if (_faults)
        _auditor.attach("fault", _faults.get());
    for (auto &f : _flows)
        _auditor.attach("flow." + f->spec().name, f.get());

    // Cross-component checks that no single Auditable owns.
    auto lastEnergy = std::make_shared<double>(0.0);
    _auditor.addCheck("energy", [this, lastEnergy](AuditContext &ctx) {
        double total = _ledger.totalNj();
        ctx.checkTrue("energy.monotone", total >= *lastEnergy,
                      "ledger total decreased between audits");
        ctx.checkTrue("energy.finite", std::isfinite(total),
                      "ledger total is not finite");
        *lastEnergy = total;
    });
    _auditor.addCheck("platform", [this](AuditContext &ctx) {
        // SA DMA traffic lands in DRAM accounting: the memory
        // controller can never have seen more transaction bytes than
        // crossed the SA plus CPU-free DMA (all traffic crosses the
        // SA in this platform, minus in-flight link payloads).
        std::uint64_t dram = _mem->bytesRead() + _mem->bytesWritten();
        ctx.checkLe("platform.dram_via_sa", dram,
                    _sa->bytesAccepted(),
                    "DRAM saw bytes that never crossed the SA");
    });
}

void
Simulation::buildStatsRegistry()
{
    // Component-owned stats: every SimObject hangs its counters under
    // its own prefix (ip.<kind>, dram, sa, cpu.<core>).
    for (SimObject *obj : _sys.objects())
        obj->registerStats(_registry);

    _latency->registerStats(_registry);

    // Per-flow QoS counters under flow.<id>.* — the dense flow id
    // rather than the spec name, which embeds '#' and '.'.
    for (const auto &fp : _flows) {
        const FlowRuntime *f = fp.get();
        std::string p = "flow." + std::to_string(f->id());
        _registry.addExact(p + ".generated",
                           "frames generated (" + f->spec().name + ")",
                           "frames",
                           [f] { return double(f->generatedFrames()); });
        _registry.addExact(p + ".completed", "frames completed",
                           "frames",
                           [f] { return double(f->completedFrames()); });
        _registry.addExact(p + ".violations", "QoS deadline misses",
                           "frames",
                           [f] { return double(f->violations()); });
        _registry.addExact(p + ".drops", "frames dropped (never "
                           "shown)", "frames",
                           [f] { return double(f->drops()); });
        _registry.addExact(p + ".frames_shed", "frames shed at the "
                           "chain head", "frames",
                           [f] { return double(f->shedFrames()); });
        _registry.addExact(p + ".admitted", "1 when admission let "
                           "the flow start", "bool",
                           [f] { return f->admitted() ? 1.0 : 0.0; });
        _registry.addExact(p + ".down_rated", "1 when admission "
                           "halved the target FPS", "bool",
                           [f] { return f->downRated() ? 1.0 : 0.0; });
    }

    // Overload-protection aggregates.
    _registry.addExact("overload.flows_rejected", "flows refused by "
                       "admission control", "flows", [this] {
                           double n = 0;
                           for (const auto &f : _flows)
                               n += f->admitted() ? 0 : 1;
                           return n;
                       });
    _registry.addExact("overload.flows_down_rated", "flows admitted "
                       "at reduced FPS", "flows", [this] {
                           double n = 0;
                           for (const auto &f : _flows)
                               n += f->downRated() ? 1 : 0;
                           return n;
                       });
    _registry.addExact("overload.frames_shed", "frames shed across "
                       "all flows", "frames", [this] {
                           double n = 0;
                           for (const auto &f : _flows)
                               n += double(f->shedFrames());
                           return n;
                       });
    _registry.addExact("overload.waiters", "chain acquisitions "
                       "waiting at end of run", "",
                       [this] { return double(_chains->waiters()); });

    // Fault-injection outcome (all zeros without an injector, so the
    // stats namespace is identical across configurations).
    const FaultInjector *fi = _faults.get();
    auto faultStat = [&](const char *leaf, const char *desc,
                         auto getter) {
        _registry.addExact(std::string("fault.") + leaf, desc, "",
                           [fi, getter] {
                               return fi ? getter(fi->stats()) : 0.0;
                           });
    };
    faultStat("engine_hangs", "injected engine hangs",
              [](const FaultStats &s) { return double(s.engineHangs); });
    faultStat("corruptions", "injected sub-frame corruptions",
              [](const FaultStats &s) { return double(s.corruptions); });
    faultStat("transfer_errors", "injected SA CRC errors",
              [](const FaultStats &s) {
                  return double(s.transferErrors);
              });
    faultStat("ecc_correctable", "injected correctable ECC events",
              [](const FaultStats &s) {
                  return double(s.eccCorrectable);
              });
    faultStat("ecc_uncorrectable", "injected uncorrectable ECC "
              "events",
              [](const FaultStats &s) {
                  return double(s.eccUncorrectable);
              });
    faultStat("watchdog_resets", "engine resets by watchdogs",
              [](const FaultStats &s) {
                  return double(s.watchdogResets);
              });
    faultStat("unit_retries", "work units recomputed",
              [](const FaultStats &s) { return double(s.unitRetries); });
    faultStat("transfer_retries", "SA retransmissions",
              [](const FaultStats &s) {
                  return double(s.transferRetries);
              });
    faultStat("frames_degraded", "frames past their retry budget",
              [](const FaultStats &s) {
                  return double(s.framesDegraded);
              });
    faultStat("recoveries", "units needing at least one retry",
              [](const FaultStats &s) { return double(s.recoveries); });

    // Energy by ledger category plus the platform total.
    for (const std::string &cat : _ledger.categories()) {
        _registry.addTiming("power." + cat + ".mj",
                            cat + " energy", "mJ", [this, cat] {
                                return _ledger.categoryNj(cat) * 1e-6;
                            });
    }
    _registry.addTiming("power.total.mj", "platform energy", "mJ",
                        [this] { return _ledger.totalNj() * 1e-6; });

    // Kernel / audit bookkeeping.
    _registry.addExact("sim.events_serviced", "event-queue callbacks "
                       "run", "events", [this] {
                           return double(_sys.eventq().servicedEvents());
                       });
    _registry.addTiming("sim.final_tick_ms", "simulated time at dump",
                        "ms",
                        [this] { return toMs(_sys.curTick()); });
    _registry.addExact("audit.passes", "invariant audit passes",
                       "",
                       [this] { return double(_auditor.auditPasses()); });
    _registry.addExact("audit.records", "digest-stream records", "",
                       [this] {
                           return double(
                               _auditor.stream().records.size());
                       });
    _registry.addExact("audit.violations", "invariant violations "
                       "collected", "", [this] {
                           return double(_auditor.violations().size());
                       });

    // Event-queue logical state: the live set is digest-covered and
    // survives checkpoint/restore bit for bit, so it is always
    // registered.
    _registry.addExact("sim.eventq.live", "live (pending) event ids",
                       "events", [this] {
                           return double(_sys.eventq().pending());
                       });

    // Profiler summary plus physical event-queue internals: only
    // present when --prof is on, so baseline stats files (profiler
    // off) stay comparable.  heap/tombstones/compactions are
    // execution history -- a restored run rebuilds a clean heap and
    // re-counts compactions from zero, so they must not enter
    // restore-compared stats.
    if (_profiler) {
        Profiler *p = _profiler.get();
        _registry.addExact("sim.eventq.heap", "heap entries incl. "
                           "tombstones", "events", [this] {
                               return double(_sys.eventq().heapSize());
                           });
        _registry.addExact("sim.eventq.tombstones", "dead heap entries "
                           "awaiting compaction", "events", [this] {
                               EventQueue &q = _sys.eventq();
                               return double(q.heapSize() - q.pending());
                           });
        _registry.addExact("sim.eventq.compactions", "heap compaction "
                           "passes", "", [this] {
                               return double(_sys.eventq().compactions());
                           });
        _registry.addExact("prof.events", "dispatches seen by the "
                           "profiler", "events",
                           [p] { return double(p->dispatches()); });
        _registry.addExact("prof.sampled", "dispatches with a "
                           "steady_clock sample", "events", [p] {
                               return double(p->sampledDispatches());
                           });
        _registry.addExact("prof.eventq.max_pending", "peak live-set "
                           "size at sample points", "events",
                           [p] { return double(p->maxPending()); });
        _registry.addExact("prof.eventq.max_heap", "peak heap size "
                           "at sample points", "events",
                           [p] { return double(p->maxHeap()); });
        for (std::size_t i = 0; i < kProfKindCatalogSize; ++i) {
            const char *kind = kProfKindCatalog[i];
            _registry.addExact(std::string("prof.kind.") + kind +
                               ".count", "dispatches of this kind",
                               "events", [p, kind] {
                                   return double(p->countFor(kind));
                               });
            _registry.addTiming(std::string("prof.kind.") + kind +
                                ".wall_ms", "sampled wall time in "
                                "this kind's callbacks", "ms",
                                [p, kind] {
                                    return p->wallNsFor(kind) * 1e-6;
                                });
        }
    }
}

void
Simulation::scheduleAudit()
{
    _auditEvent = _sys.eventq().scheduleIn(
        fromMs(_cfg.audit.periodMs),
        [this] {
            _auditor.runAudit(_sys.curTick());
            scheduleAudit();
        },
        EventPriority::Audit, "sim.audit");
}

IpCore *
Simulation::ip(IpKind kind)
{
    auto it = _ips.find(kind);
    return it == _ips.end() ? nullptr : it->second.get();
}

void
Simulation::stopAppAt(const std::string &app_name, Tick when)
{
    vip_assert(!_ran, "stopAppAt must be scheduled before run()");
    // App names look like "VideoPlay#1" (instance-suffixed in
    // multi-app workloads) and their flow names like
    // "VideoPlay.video#1": match the prefix before the '#' plus the
    // instance suffix.
    std::string prefix = app_name;
    std::string suffix;
    auto hash = app_name.find('#');
    if (hash != std::string::npos) {
        prefix = app_name.substr(0, hash);
        suffix = app_name.substr(hash);
    }
    bool found = false;
    for (std::size_t i = 0; i < _flows.size(); ++i) {
        const std::string &n = _flows[i]->spec().name;
        bool prefixOk = n.rfind(prefix + ".", 0) == 0;
        bool suffixOk = suffix.empty() ||
            (n.size() >= suffix.size() &&
             n.compare(n.size() - suffix.size(), suffix.size(),
                       suffix) == 0);
        if (prefixOk && suffixOk) {
            found = true;
            _stopEvents.push_back({i, InvalidEventId, when});
        }
    }
    if (!found)
        fatal("stopAppAt: no flows belong to app '", app_name, "'");
    _stopIntents.push_back({app_name, when});
}

void
Simulation::scheduleStopEvents()
{
    // Scheduled at the top of run(), before the flows start, so the
    // event-id sequence is unchanged and the queue stays empty until
    // a restoring run loads its snapshot.
    for (StopEvent &s : _stopEvents) {
        FlowRuntime *fr = _flows[s.flow].get();
        s.id = _sys.eventq().schedule(s.when, [fr] { fr->stop(); },
                                      EventPriority::Default,
                                      "sim.stop");
    }
}

std::uint64_t
Simulation::retiredWork() const
{
    // Any sign of forward progress counts: a frame leaving a flow, a
    // sub-frame or job leaving an engine, a frame exiting a chain.
    // A wedged platform freezes *all* of these at once.
    std::uint64_t n = 0;
    for (const auto &f : _flows)
        n += f->completedFrames();
    for (const auto &[kind, ip] : _ips) {
        n += ip->subframesProcessed() + ip->jobsCompleted() +
             ip->framesExited();
    }
    return n;
}

std::size_t
Simulation::framesInFlight() const
{
    std::size_t n = 0;
    for (const auto &f : _flows)
        n += f->framesInFlight();
    return n;
}

std::string
Simulation::progressDump() const
{
    std::ostringstream os;
    os << "  eventq: " << _sys.eventq().pending() << " pending, tick "
       << _sys.curTick() << "\n";
    os << "  mem: " << _mem->inFlight() << " transactions in flight\n";
    for (const auto &f : _flows) {
        os << "  flow " << f->spec().name << ": "
           << f->framesInFlight() << " frames in flight, "
           << f->completedFrames() << " completed\n";
    }
    for (const auto &[kind, ip] : _ips)
        os << "  " << ip->debugState() << "\n";
    return os.str();
}

void
Simulation::checkProgress()
{
    std::uint64_t now = retiredWork();
    if (now == _lastRetired && framesInFlight() > 0) {
        fatal("no progress for ", _cfg.noProgressSec,
              " simulated seconds with frames in flight; the "
              "platform is wedged.  Occupancy:\n", progressDump());
    }
    _lastRetired = now;
    _progressEvent = _sys.eventq().scheduleIn(
        fromSec(_cfg.noProgressSec), [this] { checkProgress(); },
        EventPriority::Teardown, "sim.guard");
}

RunStats
Simulation::run()
{
    if (_ran) {
        fatal("Simulation::run() may only be called once; construct "
              "a fresh Simulation per run");
    }
    _ran = true;

    try {
        if (!_cfg.restorePath.empty()) {
            // The sampler must exist (probes registered, stream path
            // set) before its section is loaded; its pending event is
            // re-armed by loadState() inside restoreFrom().
            if (_cfg.metrics.enabled())
                buildMetrics();
            restoreFrom(_cfg.restorePath);
            if (_metrics)
                _metrics->resume();
        } else {
            scheduleStopEvents();
            for (auto &f : _flows)
                f->start();
            if (_cfg.noProgressSec > 0.0) {
                _lastRetired = 0;
                _progressEvent = _sys.eventq().scheduleIn(
                    fromSec(_cfg.noProgressSec),
                    [this] { checkProgress(); },
                    EventPriority::Teardown, "sim.guard");
            }
            if (_cfg.audit.periodic())
                scheduleAudit();
            // The sampler schedules real events (digest-visible), so
            // it only exists when explicitly requested.
            if (_cfg.metrics.enabled()) {
                buildMetrics();
                _metrics->start();
            }
        }
        if (_profiler) {
            // Wall time of the event loop itself; everything outside
            // (build, stats dump) is deliberately excluded so the
            // sim-vs-wall figure reflects the hot path.
            auto w0 = std::chrono::steady_clock::now();
            runEventLoop(fromSec(_cfg.simSeconds));
            auto w1 = std::chrono::steady_clock::now();
            _profiler->setRunWallMs(
                std::chrono::duration<double, std::milli>(w1 - w0)
                    .count());
            _profiler->noteCompactions(_sys.eventq().compactions());
            _profiler->noteAllocCursor(_alloc.cursor());
        } else {
            runEventLoop(fromSec(_cfg.simSeconds));
        }
        // Flush the series up to the final tick.  Safe for
        // interrupted runs: their checkpoint was written from the
        // hook before this point, so a resumed run replays the same
        // tail boundaries and the two series stay byte-identical.
        if (_ts)
            _ts->finish(_sys.curTick());
        _ledger.closeAll(_sys.curTick());
        // Final audit pass under every enabled mode: catches
        // teardown-time leaks that a periodic pass between frames
        // cannot see.
        if (_cfg.audit.enabled())
            _auditor.runAudit(_sys.curTick());
        // Final snapshot: only valid at a quiescent point.  A run
        // that ends mid-frame still has its cadence checkpoints.
        if (!_cfg.checkpointOut.empty()) {
            if (quiescent())
                saveCheckpoint(_cfg.checkpointOut);
            else if (_checkpointsWritten == 0)
                warn("checkpoint: run ended mid-frame and no cadence "
                     "boundary was reached; no snapshot written to ",
                     _cfg.checkpointOut);
        }
    } catch (const SimFatal &e) {
        writePostmortem(e.what(), "fatal");
        throw;
    } catch (const SimPanic &e) {
        writePostmortem(e.what(), "panic");
        throw;
    }
    // An interrupted run's rates are judged over the time it actually
    // simulated, not the time it was asked for.
    return collect(_interrupted ? toSec(_sys.curTick())
                                : _cfg.simSeconds);
}

void
Simulation::runEventLoop(Tick limit)
{
    // Arm the configured checkpoint cadence.  The flight recorder
    // additionally keeps a snapshot ring next to its crash bundle, so
    // a SIGKILLed or crashed soak can be resumed from the last
    // quiescent point instead of restarting from zero.
    Tick start = _sys.curTick();
    auto firstBoundary = [start](Tick period) {
        return (start / period + 1) * period;
    };
    if (!_cfg.checkpointOut.empty() && _cfg.checkpointEveryMs > 0.0) {
        Tick period = fromMs(_cfg.checkpointEveryMs);
        _plans.push_back(
            {_cfg.checkpointOut, firstBoundary(period), period});
    }
    if (!_cfg.postmortemDir.empty()) {
        Tick period = _cfg.checkpointEveryMs > 0.0
                          ? fromMs(_cfg.checkpointEveryMs)
                          : fromMs(kRecorderRingMs);
        namespace fs = std::filesystem;
        std::string path =
            (fs::path(_cfg.postmortemDir) / "checkpoint.vips").string();
        _plans.push_back({path, firstBoundary(period), period});
    }
    bool probe = std::getenv("VIP_QUIESCENCE_PROBE") != nullptr;
    auto pendingSignal = [this] {
        return _cfg.interruptFlag
                   ? _cfg.interruptFlag->load(std::memory_order_relaxed)
                   : 0;
    };
    if (_plans.empty() && !probe && !_cfg.interruptFlag && !_ts) {
        _sys.run(limit);
        return;
    }

    std::uint64_t points = 0, quiet = 0;
    Tick lastQuiet = start, maxGap = 0;
    auto hook = [&](Tick next) {
        // Time-series sampling first: the sample must describe state
        // *before* the event at `next` services, and before any
        // checkpoint below snapshots the plane.  When the detector
        // latches steady, arm the one-shot --checkpoint-on-steady
        // plan; the due/save loops below pick it up in this same hook
        // invocation at the first quiescent point.
        if (_ts) {
            _ts->observe(next);
            if (!_steadyPlanArmed && _ts->steadyDetected() &&
                !_cfg.ts.checkpointOnSteady.empty()) {
                _steadyPlanArmed = true;
                _plans.push_back({_cfg.ts.checkpointOnSteady,
                                  _ts->steadyTick(), 0});
            }
        }
        // Graceful interrupt: stop at the first quiescent point,
        // after writing a final checkpoint to every armed plan so the
        // interrupted run leaves a resumable trail.  With no plans
        // armed there is nothing to flush — stop immediately.
        if (int sig = pendingSignal(); sig != 0 && !_interrupted &&
                                       (_plans.empty() || quiescent())) {
            for (CheckpointPlan &p : _plans)
                saveCheckpoint(p.path);
            _interrupted = true;
            _interruptSig = sig;
            _sys.eventq().requestStop();
            return;
        }
        ++points;
        bool due = probe;
        for (const CheckpointPlan &p : _plans)
            due = due || next >= p.next;
        if (!due || !quiescent())
            return;
        ++quiet;
        maxGap = std::max(maxGap, next - lastQuiet);
        lastQuiet = next;
        for (CheckpointPlan &p : _plans) {
            if (next < p.next)
                continue;
            saveCheckpoint(p.path);
            if (p.period > 0) {
                while (p.next <= next)
                    p.next += p.period;
            } else {
                p.next = MaxTick;
            }
        }
    };
    _sys.run(limit, hook);
    // A signal that never met a quiescent point (or landed after the
    // last event) still marks the run interrupted: the caller must
    // know the outputs cover less simulated time than asked for.
    if (int sig = pendingSignal(); sig != 0 && !_interrupted) {
        _interrupted = true;
        _interruptSig = sig;
    }
    if (probe) {
        maxGap = std::max(maxGap, _sys.curTick() - lastQuiet);
        // Explicitly requested via the environment, so bypass the
        // default verbosity gate.
        logging::emit("probe",
                      logging::format(
                          "quiescence: ", quiet, " of ", points,
                          " pre-service points quiescent; longest "
                          "dry gap ", toMs(maxGap), " ms"));
    }
}

bool
Simulation::quiescent() const
{
    for (const auto &f : _flows) {
        if (!f->quiescent())
            return false;
    }
    if (!_mem->quiescent() || !_sa->quiescent() || !_cpus->quiescent())
        return false;
    for (const auto &[kind, ip] : _ips) {
        if (!ip->quiescent())
            return false;
    }
    return _chains->waiters() == 0 && _stack->totalQueued() == 0;
}

std::string
Simulation::auditSpecString() const
{
    std::ostringstream os;
    os << auditModeName(_cfg.audit.mode);
    if (_cfg.audit.periodic())
        os << ":" << _cfg.audit.periodMs;
    return os.str();
}

std::string
Simulation::identityString() const
{
    // Every knob that alters component behavior (and therefore the
    // meaning of serialized state) beyond config/workload/seed/
    // seconds.  Purely observational settings (trace, stats-out,
    // postmortem dir, checkpoint cadence) are deliberately absent: a
    // resume may change them freely.
    std::ostringstream os;
    os << "overload=" << overloadPolicyName(_cfg.overloadPolicy)
       << " headroom=" << _cfg.admissionHeadroom
       << " shedAfter=" << _cfg.shedAfterLateFrames
       << " maxInFlight=" << _cfg.overloadMaxInFlight
       << " deadline=" << _cfg.deadlineFrames
       << " vsync=" << (_cfg.vsyncAligned ? 1 : 0) << "@"
       << _cfg.vsyncHz
       << " cpuCores=" << _cfg.cpuCores
       << " vipLanes=" << _cfg.vipLanes
       << " sched=" << schedPolicyName(_cfg.vipSched)
       << " laneBytes=" << _cfg.laneBytes
       << " subframeBytes=" << _cfg.subframeBytes
       << " csp=" << _cfg.contextSwitchPenalty
       << " spill=" << (_cfg.overflowToMemory ? 1 : 0)
       << " burst=" << _cfg.burstFrames << "/" << _cfg.gameBurstCap
       << "/" << (_cfg.enableRollback ? 1 : 0)
       << " noProgress=" << _cfg.noProgressSec
       << " recordTrace=" << (_cfg.recordTrace ? 1 : 0)
       << " metrics=";
    if (_cfg.metrics.enabled())
        os << _cfg.metrics.intervalMs;
    else
        os << "off";
    os << " stops=[";
    for (std::size_t i = 0; i < _stopIntents.size(); ++i) {
        os << (i ? "," : "") << _stopIntents[i].app << "@"
           << _stopIntents[i].when;
    }
    os << "]";
    return os.str();
}

SnapshotMeta
Simulation::checkpointMeta() const
{
    SnapshotMeta m;
    m.gitHash = buildGitHash();
    m.compiler = buildCompiler();
    m.buildType = buildType();
    m.configName = systemConfigName(_cfg.system);
    m.workloadName = _wl.name;
    m.seed = _cfg.seed;
    m.simSeconds = _cfg.simSeconds;
    m.faultPlan = _faults ? _cfg.fault.describe() : "";
    m.auditSpec = auditSpecString();
    m.extraIdentity = identityString();
    m.tick = _sys.curTick();
    m.stateDigest = _auditor.snapshotDigest();
    return m;
}

void
Simulation::saveCheckpoint(const std::string &path)
{
    vip_assert(quiescent(),
               "saveCheckpoint at a non-quiescent point (tick ",
               _sys.curTick(), ")");
    SnapshotWriter w;

    w.beginSection("kernel");
    _sys.eventq().saveState(w);
    w.u64(_sys.random().state());

    w.beginSection("mem");
    _mem->saveState(w);
    w.beginSection("sa");
    _sa->saveState(w);
    w.beginSection("cpu");
    _cpus->saveState(w);

    w.beginSection("ips");
    w.u32(static_cast<std::uint32_t>(_ips.size()));
    for (const auto &[kind, ip] : _ips) {
        w.str(ip->name());
        ip->saveState(w);
    }

    // Flows before chains: chain restore re-creates every chain
    // through FlowRuntime::recreateChain(), which checks the chain id
    // the flow restored in its own section.
    w.beginSection("flows");
    w.u32(static_cast<std::uint32_t>(_flows.size()));
    for (const auto &f : _flows)
        f->saveState(w);

    w.beginSection("chains");
    _chains->saveState(w);

    w.beginSection("fault");
    w.b(_faults != nullptr);
    if (_faults)
        _faults->saveState(w);

    w.beginSection("auditor");
    _auditor.saveState(w);
    w.beginSection("latency");
    _latency->saveState(w);
    w.beginSection("energy");
    _ledger.saveState(w);

    w.beginSection("metrics");
    w.b(_metrics != nullptr);
    if (_metrics) {
        _metrics->saveState(w);
        w.u64(*_bwLastBytes);
        w.tick(*_saLastBusy);
    }

    w.beginSection("timeseries");
    w.b(_ts != nullptr);
    if (_ts) {
        w.b(_steadyPlanArmed);
        _ts->saveState(w);
    }

    w.beginSection("sim");
    w.u64(_alloc.cursor());
    w.u64(_lastRetired);
    const EventQueue &eq = _sys.eventq();
    auto saveEvent = [&](EventId id) {
        bool live = id != InvalidEventId && eq.isLive(id);
        w.b(live);
        if (live) {
            w.u64(id);
            w.tick(eq.scheduledWhen(id));
        }
    };
    saveEvent(_auditEvent);
    saveEvent(_progressEvent);
    w.u32(static_cast<std::uint32_t>(_stopEvents.size()));
    for (const StopEvent &s : _stopEvents) {
        w.u64(s.flow);
        saveEvent(s.id);
    }
    w.b(_cfg.recordTrace);
    if (_cfg.recordTrace) {
        w.u64(_trace.size());
        for (const FrameEvent &ev : _trace.events()) {
            w.u32(ev.flowId);
            w.str(ev.flowName);
            w.u64(ev.frameId);
            w.tick(ev.generated);
            w.tick(ev.started);
            w.tick(ev.completed);
            w.tick(ev.deadline);
            w.b(ev.violated);
            w.b(ev.dropped);
        }
    }

    w.writeFile(path, checkpointMeta());
    ++_checkpointsWritten;
    _lastCheckpointPath = path;
    _lastCheckpointTick = _sys.curTick();
}

void
Simulation::checkpointAt(Tick when, std::string path)
{
    vip_assert(!_ran, "checkpointAt must be armed before run()");
    _plans.push_back({std::move(path), when, 0});
}

void
Simulation::restoreFrom(const std::string &path)
{
    SnapshotReader r(path);
    const SnapshotMeta &m = r.meta();
    auto check = [&](const char *what, const std::string &snap,
                     const std::string &run) {
        if (snap != run) {
            fatal("restore '", path, "': snapshot ", what, " '", snap,
                  "' does not match this run's '", run,
                  "' -- resumed state would silently diverge");
        }
    };
    check("git hash", m.gitHash, buildGitHash());
    check("compiler", m.compiler, buildCompiler());
    check("build type", m.buildType, buildType());
    check("config", m.configName, systemConfigName(_cfg.system));
    check("workload", m.workloadName, _wl.name);
    if (m.seed != _cfg.seed)
        fatal("restore '", path, "': snapshot seed ", m.seed,
              " != this run's ", _cfg.seed);
    if (m.simSeconds != _cfg.simSeconds)
        fatal("restore '", path, "': snapshot simulates ",
              m.simSeconds, " s, this run ", _cfg.simSeconds, " s");
    check("fault plan", m.faultPlan,
          _faults ? _cfg.fault.describe() : "");
    check("audit spec", m.auditSpec, auditSpecString());
    check("run knobs", m.extraIdentity, identityString());

    EventQueue &eq = _sys.eventq();
    r.openSection("kernel");
    eq.loadState(r);
    _sys.random().setState(r.u64());
    r.closeSection();

    r.openSection("mem");
    _mem->loadState(r);
    r.closeSection();
    r.openSection("sa");
    _sa->loadState(r);
    r.closeSection();
    r.openSection("cpu");
    _cpus->loadState(r);
    r.closeSection();

    r.openSection("ips");
    std::uint32_t nIps = r.u32();
    if (nIps != _ips.size())
        fatal("restore: snapshot has ", nIps, " IP cores, this run "
              "builds ", _ips.size(), " (config mismatch)");
    for (auto &[kind, ip] : _ips) {
        std::string name = r.str();
        if (name != ip->name())
            fatal("restore: snapshot IP '", name, "' != built '",
                  ip->name(), "' (config mismatch)");
        ip->loadState(r);
    }
    r.closeSection();

    r.openSection("flows");
    std::uint32_t nFlows = r.u32();
    if (nFlows != _flows.size())
        fatal("restore: snapshot has ", nFlows, " flows, this run "
              "builds ", _flows.size(), " (workload mismatch)");
    for (auto &f : _flows)
        f->loadState(r);
    r.closeSection();

    r.openSection("chains");
    _chains->loadState(
        r,
        [this](FlowId f) {
            vip_assert(static_cast<std::size_t>(f) < _flows.size(),
                       "chain restore references flow ", f);
            return _flows[f]->recreateChain();
        },
        [this](const std::string &n) -> IpCore * {
            for (auto &[kind, ip] : _ips) {
                if (ip->name() == n)
                    return ip.get();
            }
            return nullptr;
        });
    r.closeSection();

    r.openSection("fault");
    bool hadFaults = r.b();
    if (hadFaults != (_faults != nullptr))
        fatal("restore: snapshot ", hadFaults ? "had" : "had no",
              " fault injector, this run ",
              _faults ? "has one" : "has none", " (config mismatch)");
    if (_faults)
        _faults->loadState(r);
    r.closeSection();

    r.openSection("auditor");
    _auditor.loadState(r);
    r.closeSection();
    r.openSection("latency");
    _latency->loadState(r);
    r.closeSection();
    r.openSection("energy");
    _ledger.loadState(r);
    r.closeSection();

    r.openSection("metrics");
    bool hadMetrics = r.b();
    if (hadMetrics != (_metrics != nullptr))
        fatal("restore: snapshot ", hadMetrics ? "had" : "had no",
              " metrics sampler, this run ",
              _metrics ? "has one" : "has none", " (config mismatch)");
    if (_metrics) {
        _metrics->loadState(r);
        *_bwLastBytes = r.u64();
        *_saLastBusy = r.tick();
    }
    r.closeSection();

    r.openSection("timeseries");
    bool hadTs = r.b();
    if (hadTs != (_ts != nullptr))
        fatal("restore: snapshot ", hadTs ? "had" : "had no",
              " time-series plane, this run ",
              _ts ? "has one" : "has none", " (config mismatch)");
    if (_ts) {
        _steadyPlanArmed = r.b();
        _ts->loadState(r);
    }
    r.closeSection();

    r.openSection("sim");
    _alloc.setCursor(r.u64());
    _lastRetired = r.u64();
    if (r.b()) {
        _auditEvent = r.u64();
        Tick when = r.tick();
        eq.restoreEvent(
            _auditEvent, when,
            [this] {
                _auditor.runAudit(_sys.curTick());
                scheduleAudit();
            },
            EventPriority::Audit, "sim.audit");
    }
    if (r.b()) {
        _progressEvent = r.u64();
        Tick when = r.tick();
        eq.restoreEvent(_progressEvent, when,
                        [this] { checkProgress(); },
                        EventPriority::Teardown, "sim.guard");
    }
    std::uint32_t nStops = r.u32();
    if (nStops != _stopEvents.size())
        fatal("restore: snapshot has ", nStops, " app-stop events, "
              "this run scheduled ", _stopEvents.size(),
              " (stopAppAt mismatch)");
    for (StopEvent &s : _stopEvents) {
        std::uint64_t flow = r.u64();
        if (flow != s.flow)
            fatal("restore: app-stop event targets flow ", flow,
                  ", this run expects ", s.flow);
        if (r.b()) {
            s.id = r.u64();
            s.when = r.tick();
            FlowRuntime *fr = _flows[s.flow].get();
            eq.restoreEvent(s.id, s.when, [fr] { fr->stop(); },
                            EventPriority::Default, "sim.stop");
        }
    }
    bool hadTrace = r.b();
    if (hadTrace != _cfg.recordTrace)
        fatal("restore: snapshot ", hadTrace ? "recorded" : "did not "
              "record", " a frame trace, this run ",
              _cfg.recordTrace ? "does" : "does not",
              " (config mismatch)");
    if (hadTrace) {
        std::uint64_t n = r.u64();
        _trace.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            FrameEvent ev;
            ev.flowId = r.u32();
            ev.flowName = r.str();
            ev.frameId = r.u64();
            ev.generated = r.tick();
            ev.started = r.tick();
            ev.completed = r.tick();
            ev.deadline = r.tick();
            ev.violated = r.b();
            ev.dropped = r.b();
            _trace.record(std::move(ev));
        }
    }
    r.closeSection();

    eq.verifyRestore();
    std::uint64_t digest = _auditor.snapshotDigest();
    if (digest != m.stateDigest) {
        char a[32], b[32];
        std::snprintf(a, sizeof(a), "%016llx",
                      static_cast<unsigned long long>(digest));
        std::snprintf(b, sizeof(b), "%016llx",
                      static_cast<unsigned long long>(m.stateDigest));
        fatal("restore '", path, "': reloaded state digest 0x", a,
              " != snapshot header 0x", b,
              " -- the snapshot is corrupt or state was not restored "
              "faithfully");
    }
    // The snapshot already holds everything startup() would have
    // scheduled; suppress it for the coming run() call.
    _sys.markStarted();
    _restored = true;
    inform("restored checkpoint '", path, "': tick ", m.tick, " (",
           toMs(m.tick), " ms), ", eq.pending(), " pending events");
}

std::vector<std::pair<std::string, std::string>>
Simulation::runMeta() const
{
    return {
        { "config", systemConfigName(_cfg.system) },
        { "workload", _wl.name },
        { "seed", std::to_string(_cfg.seed) },
        { "seconds", std::to_string(_cfg.simSeconds) },
    };
}

void
Simulation::writeStatsJson(std::ostream &os) const
{
    _registry.writeJson(os, runMeta());
}

void
Simulation::writeProfJson(std::ostream &os) const
{
    vip_assert(_profiler, "writeProfJson() without --prof");
    _profiler->writeJson(os, toMs(_sys.curTick()), runMeta());
}

void
Simulation::writeSeriesJson(std::ostream &os) const
{
    vip_assert(_ts, "writeSeriesJson() without --ts");
    _ts->writeJson(os, runMeta());
}

void
Simulation::writePostmortem(const std::string &reason,
                            const char *kind) noexcept
{
    if (_cfg.postmortemDir.empty())
        return;
    try {
        PostmortemInfo info;
        info.reason = reason;
        info.kind = kind;
        info.tick = _sys.curTick();
        // snapshotDigest() hashes component state directly, so it
        // works even under --audit=off.
        info.stateDigest = _auditor.snapshotDigest();
        if (_faults)
            info.faultPlan = _cfg.fault.describe();
        info.meta = runMeta();
        if (_metrics)
            info.metricsPath = _metrics->streamPath();
        // Point at the newest snapshot of the checkpoint ring so the
        // bundle is resumable: rerun with --restore=<checkpointPath>.
        if (_checkpointsWritten > 0) {
            info.checkpointPath = _lastCheckpointPath;
            info.checkpointTick = _lastCheckpointTick;
        }
        writePostmortemBundle(_cfg.postmortemDir, info, &_registry,
                              _tracer.get());
    } catch (...) {
        // The original error is what the user needs to see; a broken
        // flight recorder must not replace it.
    }
}

RunStats
Simulation::collect(double seconds)
{
    RunStats r;
    r.configName = systemConfigName(_cfg.system);
    r.workloadName = _wl.name;
    r.seconds = seconds;

    // ---- energy ----
    r.cpuEnergyMj = _ledger.categoryNj("cpu") * 1e-6;
    r.dramEnergyMj = _ledger.categoryNj("dram") * 1e-6;
    r.saEnergyMj = _ledger.categoryNj("sa") * 1e-6;
    r.ipEnergyMj = _ledger.categoryNj("ip") * 1e-6;
    r.bufferEnergyMj = _ledger.categoryNj("buffer") * 1e-6;
    r.totalEnergyMj = _ledger.totalNj() * 1e-6;

    // ---- QoS / performance ----
    double flowTimeWeighted = 0.0;
    double transitWeighted = 0.0;
    double fpsSum = 0.0;
    std::uint32_t qosFlows = 0;
    bool anyQos = false;
    for (auto &f : _flows)
        anyQos |= f->spec().qosCritical;
    for (auto &f : _flows) {
        FlowResult fr = f->result(seconds);
        // Aggregate over the QoS-critical flows; when a workload has
        // none (pure audio), fall back to every flow so per-frame
        // metrics stay meaningful.
        if (fr.qosCritical || !anyQos) {
            r.framesGenerated += fr.generated;
            r.framesCompleted += fr.completed;
            r.violations += fr.violations;
            r.drops += fr.drops;
            r.framesShed += fr.shed;
            flowTimeWeighted +=
                fr.meanFlowTimeMs * static_cast<double>(fr.completed);
            transitWeighted +=
                fr.meanTransitMs * static_cast<double>(fr.completed);
            fpsSum += fr.achievedFps;
            ++qosFlows;
        }
        if (!fr.admitted)
            ++r.flowsRejected;
        else if (fr.fps != fr.nominalFps)
            ++r.flowsDownRated;
        r.flows.push_back(std::move(fr));
    }
    if (r.framesGenerated > 0) {
        r.shedRate = static_cast<double>(r.framesShed) /
                     static_cast<double>(r.framesGenerated);
    }
    if (r.framesCompleted > 0) {
        r.dropRate = static_cast<double>(r.drops) /
                     static_cast<double>(r.framesCompleted);
        r.violationRate = static_cast<double>(r.violations) /
                          static_cast<double>(r.framesCompleted);
        r.meanFlowTimeMs =
            flowTimeWeighted / static_cast<double>(r.framesCompleted);
        r.meanTransitMs =
            transitWeighted / static_cast<double>(r.framesCompleted);
        r.energyPerFrameMj =
            r.totalEnergyMj / static_cast<double>(r.framesCompleted);
    }
    if (qosFlows > 0)
        r.achievedFps = fpsSum / qosFlows;

    // ---- CPU ----
    r.interrupts = _cpus->totalInterrupts();
    r.interruptsPer100ms =
        seconds > 0.0 ? static_cast<double>(r.interrupts) /
                        (seconds * 10.0)
                      : 0.0;
    r.instructions = _cpus->totalInstructions();
    r.cpuActiveMs = toMs(_cpus->totalActiveTicks());
    if (r.framesCompleted > 0) {
        r.cpuActiveMsPerFrame =
            r.cpuActiveMs / static_cast<double>(r.framesCompleted);
    }
    Tick coreTicks = fromSec(seconds) * _cfg.cpuCores;
    if (coreTicks > 0) {
        r.cpuSleepFraction =
            static_cast<double>(_cpus->totalSleepTicks()) /
            static_cast<double>(coreTicks);
    }

    // ---- memory ----
    r.avgMemBandwidthGBps = _mem->averageBandwidthGBps();
    r.memBytesGB =
        static_cast<double>(_mem->bytesRead() + _mem->bytesWritten()) /
        (1024.0 * 1024.0 * 1024.0);
    r.fracTimeAbove80PctBw = _mem->fractionOfTimeAbove(0.8);
    std::uint64_t rowTotal = _mem->rowHits() + _mem->rowMisses();
    if (rowTotal > 0) {
        r.memRowHitRate = static_cast<double>(_mem->rowHits()) /
                          static_cast<double>(rowTotal);
    }

    r.saUtilization = _sa->utilization();

    // ---- IPs ----
    for (auto &[kind, ip] : _ips) {
        IpResult ir;
        ir.name = ipKindName(kind);
        ir.activeMs = toMs(ip->activeTicks());
        ir.stallMs = toMs(ip->stallTicks());
        ir.bpStallMs = toMs(ip->bpStallTicks());
        ir.utilization = ip->utilization();
        ir.dutyCycle = ip->dutyCycle();
        ir.laneOverflows = ip->laneOverflows();
        ir.creditStalls = ip->creditStalls();
        r.laneOverflows += ip->laneOverflows();
        ir.contextSwitches = ip->contextSwitches();
        ir.memBytes = _mem->bytesForRequester(
            static_cast<std::uint32_t>(kind));
        ir.watchdogResets = ip->watchdogResets();
        ir.unitRetries = ip->unitRetries();
        ir.framesDegraded = ip->framesDegraded();
        r.ips.push_back(std::move(ir));
    }

    if (_faults)
        r.faults = _faults->stats();

    r.auditPasses = _auditor.auditPasses();
    r.auditRecords = _auditor.stream().records.size();
    r.auditViolations = _auditor.violations().size();
    r.digestStreamHash =
        r.auditRecords > 0 ? _auditor.streamDigest() : 0;

    r.latency = _latency->summarize();

    if (_cfg.recordTrace)
        r.trace = _trace;
    return r;
}

void
Simulation::dumpStats(std::ostream &os)
{
    os << "---------- simulation stats: " << _wl.name << " / "
       << systemConfigName(_cfg.system) << " ----------\n";
    os << std::left << std::setw(44) << "sim.seconds"
       << toSec(_sys.curTick()) << "  # simulated time\n";
    os << std::left << std::setw(44) << "sim.events"
       << _sys.eventq().servicedEvents()
       << "  # events serviced\n";

    _mem->statsGroup().print(os);
    _sa->statsGroup().print(os);
    for (std::uint32_t i = 0; i < _cpus->numCores(); ++i)
        _cpus->core(i).statsGroup().print(os);
    for (auto &[kind, ip] : _ips)
        ip->statsGroup().print(os);

    os << "---------- energy (mJ) ----------\n";
    for (const auto &cat : _ledger.categories()) {
        os << std::left << std::setw(44) << ("energy." + cat)
           << _ledger.categoryNj(cat) * 1e-6 << "  # " << cat
           << " energy\n";
    }
    os << std::left << std::setw(44) << "energy.total"
       << _ledger.totalNj() * 1e-6 << "  # platform energy\n";
}

RunStats
Simulation::run(SocConfig cfg, Workload workload)
{
    Simulation sim(std::move(cfg), std::move(workload));
    return sim.run();
}

} // namespace vip
