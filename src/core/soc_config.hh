/**
 * @file
 * Full platform configuration (Table 3 defaults) and run settings.
 */

#ifndef VIP_CORE_SOC_CONFIG_HH
#define VIP_CORE_SOC_CONFIG_HH

#include <atomic>
#include <cstdint>
#include <map>

#include "core/system_config.hh"
#include "cpu/cpu_core.hh"
#include "driver/software_stack.hh"
#include "fault/fault_plan.hh"
#include "ip/ip_types.hh"
#include "mem/dram_config.hh"
#include "obs/prof_config.hh"
#include "obs/trace_config.hh"
#include "obs/ts_config.hh"
#include "sa/system_agent.hh"
#include "sim/audit.hh"

namespace vip
{

/**
 * What the driver does with a flow whose utilization demand does not
 * fit the remaining per-IP capacity (admission control at open()).
 */
enum class OverloadPolicy
{
    /** Refuse the open(): the flow never starts. */
    Reject,
    /**
     * Admit at a reduced rate: halve the target FPS until the flow
     * fits (bounded), and shed whole frames at the chain head when
     * the EDF slack stays negative at run time.
     */
    Degrade,
    /** Admit everything at full rate (the paper's open-loop mode). */
    BestEffort,
};

inline const char *
overloadPolicyName(OverloadPolicy p)
{
    switch (p) {
      case OverloadPolicy::Reject: return "reject";
      case OverloadPolicy::Degrade: return "degrade";
      case OverloadPolicy::BestEffort: return "besteffort";
    }
    return "?";
}

/** Everything needed to instantiate and run one platform. */
struct SocConfig
{
    /** Which of the five evaluated systems to model. */
    SystemConfig system = SystemConfig::Baseline;

    /** Simulated duration. */
    double simSeconds = 0.4;

    /** Deterministic seed (user-input models, phases). */
    std::uint64_t seed = 1;

    /** @{ Table 3 platform. */
    std::uint32_t cpuCores = 4;
    CpuConfig cpu{};
    DramConfig dram{};
    SaConfig sa{};
    /** @} */

    DriverCosts drivers{};

    /** @{ VIP hardware knobs (Section 5.5). */
    std::uint32_t vipLanes = 4;       ///< lanes when virtualized
    SchedPolicy vipSched = SchedPolicy::EDF;
    std::uint32_t laneBytes = 2048;   ///< 2 KB / 32 cache lines
    std::uint32_t subframeBytes = 1024;
    Tick contextSwitchPenalty = fromNs(500);
    /**
     * Handle full consumer lanes by spilling to DRAM instead of
     * stalling the producer (Section 5.5's rejected alternative;
     * exposed for the ablation study).
     */
    bool overflowToMemory = false;
    /** @} */

    /** @{ Frame-burst knobs (Section 4.3). */
    std::uint32_t burstFrames = 5;    ///< default/video burst size
    std::uint32_t gameBurstCap = 9;   ///< "<10 frames" for games
    bool enableRollback = true;       ///< recompute on mid-burst input
    /** @} */

    /**
     * QoS deadline in frame periods after nominal generation.  Display
     * pipelines double-buffer, so a frame is on time when it completes
     * within two periods; it is *dropped* (never shown) one further
     * period later.
     */
    double deadlineFrames = 1.25;

    /**
     * Judge display-bound frames at vsync boundaries: a frame is only
     * visible at the next 60 Hz scanout after it completes, so QoS is
     * evaluated against that instant (off by default; the paper's
     * deadline bookkeeping uses completion time).
     */
    bool vsyncAligned = false;
    double vsyncHz = 60.0;

    /** Record the full per-frame trace into RunStats. */
    bool recordTrace = false;

    /**
     * Execution tracing (--trace-out / --trace).  Disabled by
     * default; when enabled, the run is still bit-identical (the
     * tracer is purely observational and digest-neutral).
     */
    TraceConfig trace{};

    /** Periodic metrics sampling (--metrics-out). */
    MetricsConfig metrics{};

    /**
     * Hot-path self-profiling (--prof[=out.json]).  Samples wall time
     * per event kind and queue occupancy; observational only, so an
     * enabled profiler leaves state digests bit-identical.
     */
    ProfConfig prof{};

    /**
     * Windowed time-series telemetry (--ts[=<glob>], --ts-out,
     * --checkpoint-on-steady).  Samples glob-selected stats at the
     * metrics cadence from the event loop's pre-service hook into
     * bounded decimating ring buffers and runs the steady-state
     * detector; purely observational, so arming it leaves state
     * digests bit-identical.
     */
    TsConfig ts{};

    /**
     * Unified stats registry dump (--stats-out): after the run, every
     * registered counter is written as self-describing JSON.  The
     * registry itself is always built and purely observational, so
     * setting this leaves state digests bit-identical.
     */
    std::string statsOut;

    /**
     * Postmortem flight recorder (--postmortem-dir): when the run
     * dies (SimFatal/SimPanic, including the no-progress guard and
     * strict-audit violations), a crash bundle — crash.json,
     * stats.json, trace-tail.json — is written here before the error
     * propagates.  Enables an internal trace ring when tracing is
     * otherwise off (digest-neutral).
     */
    std::string postmortemDir;

    /** @{ Checkpoint/restore (--checkpoint-out / --restore).
     *
     * checkpointOut names the snapshot file written at the end of the
     * run (and, with checkpointEveryMs > 0, periodically at the first
     * quiescent point after each cadence boundary; each write rotates
     * the previous file to <file>.prev).  restorePath resumes a run
     * from a snapshot; the restored run must be started with the same
     * config/workload/seed — any skew is a SimFatal at load.  A
     * restored run's digest stream and stats output are bit-identical
     * to the uninterrupted run's.
     */
    std::string checkpointOut;
    double checkpointEveryMs = 0.0;
    std::string restorePath;
    /** @} */

    /**
     * Graceful-interrupt flag: when non-null and it becomes nonzero
     * (a signal number, stored by a SIGINT/SIGTERM handler or a fleet
     * supervisor), the run stops early at the first quiescent point —
     * after writing a final checkpoint to every armed checkpoint plan
     * (the flight-recorder ring included), so interrupted runs always
     * leave a resumable trail.  Simulation::interrupted() reports
     * whether the run was cut short; streamed outputs (metrics CSV)
     * are already flushed row-by-row and --stats-out is written by
     * the driver afterwards as usual.
     */
    const std::atomic<int> *interruptFlag = nullptr;

    /**
     * Fault-injection plan.  All probabilities default to zero, so a
     * plain config runs fault-free; a non-trivial plan instantiates a
     * FaultInjector shared by the IPs, the SA and the memory
     * controller.
     */
    FaultPlan fault{};

    /** @{ Overload protection (admission + run-time shedding). */
    OverloadPolicy overloadPolicy = OverloadPolicy::BestEffort;
    /**
     * Capacity fraction admission keeps free on every IP: a flow is
     * admitted only while the accumulated demand stays below
     * (1 - headroom) of the engine's byte throughput.
     */
    double admissionHeadroom = 0.05;
    /**
     * Under Degrade, shed the next frame at the chain head once this
     * many consecutive frames completed past their deadline.
     */
    std::uint32_t shedAfterLateFrames = 3;
    /**
     * Under Degrade, also shed when this many frames of the flow are
     * already in flight (the pipeline is hopelessly behind).
     */
    std::uint32_t overloadMaxInFlight = 32;
    /** @} */

    /**
     * Invariant-audit configuration (--audit).  Off by default: no
     * audit events are scheduled and no digest stream is recorded.
     */
    AuditConfig audit{};

    /**
     * No-progress guard interval in simulated seconds (0 disables).
     * If frames are in flight and no flow or IP retires any work for
     * a whole interval, the run aborts with a diagnostic occupancy
     * dump instead of spinning to the time limit.  The default is
     * generous: healthy pipelines retire sub-frames every few
     * milliseconds, so a quarter second of silence means a wedge.
     */
    double noProgressSec = 0.25;

    /** Per-kind IP parameter overrides (else defaultIpParams()). */
    std::map<IpKind, IpParams> ipOverrides;

    /** Resolve IP parameters for @p kind under this configuration. */
    IpParams
    ipParamsFor(IpKind kind) const
    {
        auto it = ipOverrides.find(kind);
        IpParams p =
            it != ipOverrides.end() ? it->second : defaultIpParams(kind);
        const ConfigTraits t = traitsOf(system);
        // Chained modes route per-flow data through lane buffers; a
        // non-virtualized IP still has a *single context*, expressed
        // as a coarse switch granularity (frame, or whole burst) and
        // a costlier reconfiguration penalty.
        p.numLanes = t.ipToIp ? vipLanes : 1;
        p.sched = t.virtualized ? vipSched : SchedPolicy::FIFO;
        if (t.virtualized) {
            p.switchGranularity = SwitchGranularity::Subframe;
            p.contextSwitchPenalty = contextSwitchPenalty;
        } else if (t.ipToIp) {
            p.switchGranularity = t.frameBurst
                ? SwitchGranularity::Transaction
                : SwitchGranularity::Frame;
            p.contextSwitchPenalty = 4 * contextSwitchPenalty;
        }
        p.laneBytes = laneBytes;
        p.subframeBytes = subframeBytes;
        p.overflowToMemory = t.ipToIp && overflowToMemory;
        return p;
    }
};

} // namespace vip

#endif // VIP_CORE_SOC_CONFIG_HH
