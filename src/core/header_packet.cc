#include "core/header_packet.hh"

#include "sim/logging.hh"

namespace vip
{

void
HeaderPacket::setIps(const std::vector<IpKind> &ips)
{
    if (ips.size() > kMaxIps)
        fatal("header packet supports at most ", kMaxIps, " IPs, got ",
              ips.size());
    for (auto ip : ips) {
        if (ip == IpKind::CPU)
            fatal("CPU is not an encodable chain stage");
        if (static_cast<std::uint32_t>(ip) >= (1u << kBitsPerIp))
            fatal("IP kind does not fit in ", kBitsPerIp, " bits");
    }
    _ips = ips;
}

void
HeaderPacket::setFrameSizeKb(std::uint32_t kb)
{
    if (kb >= (1u << kFrameSizeBits))
        fatal("frame size ", kb, " KB exceeds the 16-bit field");
    _frameSizeKb = kb;
}

void
HeaderPacket::setFrameRate(std::uint32_t fps_code)
{
    if (fps_code >= (1u << kFrameRateBits))
        fatal("frame-rate code exceeds the 4-bit field");
    _frameRate = fps_code;
}

void
HeaderPacket::setBurstSize(std::uint32_t frames)
{
    if (frames >= (1u << kBurstSizeBits))
        fatal("burst size ", frames, " exceeds the 4-bit field");
    _burstSize = frames;
}

std::uint32_t
HeaderPacket::fixedBytes()
{
    std::uint32_t bits = kIpsFieldBits + kFrameSizeBits +
                         kFrameRateBits + kBurstSizeBits +
                         2 * kAddrBits;
    return (bits + 7) / 8;
}

std::uint32_t
HeaderPacket::sizeBytes() const
{
    return fixedBytes() +
           kContextBytesPerIp *
               static_cast<std::uint32_t>(_ips.size());
}

std::vector<std::uint8_t>
HeaderPacket::serialize() const
{
    std::vector<std::uint8_t> out;
    out.reserve(sizeBytes());

    // IPs-in-flow field: 8 nibbles, low stage first, 0xF = unused.
    std::uint32_t ipsField = 0xffffffffu;
    for (std::size_t i = 0; i < _ips.size(); ++i) {
        ipsField &= ~(0xfu << (4 * i));
        ipsField |= static_cast<std::uint32_t>(_ips[i]) << (4 * i);
    }
    auto put32 = [&out](std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    put32(ipsField);
    out.push_back(static_cast<std::uint8_t>(_frameSizeKb));
    out.push_back(static_cast<std::uint8_t>(_frameSizeKb >> 8));
    out.push_back(static_cast<std::uint8_t>(
        (_frameRate & 0xf) | ((_burstSize & 0xf) << 4)));
    put32(_src);
    put32(_dst);
    // Per-IP contexts (zero-filled placeholders in the model).
    out.resize(out.size() +
               kContextBytesPerIp * _ips.size(), 0);
    return out;
}

HeaderPacket
HeaderPacket::deserialize(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < fixedBytes())
        fatal("header packet truncated: ", bytes.size(), " bytes");

    auto get32 = [&bytes](std::size_t off) {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(bytes[off + i]) << (8 * i);
        return v;
    };

    HeaderPacket h;
    std::uint32_t ipsField = get32(0);
    std::vector<IpKind> ips;
    for (std::uint32_t i = 0; i < kMaxIps; ++i) {
        std::uint32_t nib = (ipsField >> (4 * i)) & 0xf;
        if (nib == 0xf)
            break;
        if (nib >= static_cast<std::uint32_t>(IpKind::NumKinds))
            fatal("invalid IP kind nibble ", nib);
        ips.push_back(static_cast<IpKind>(nib));
    }
    h.setIps(ips);
    h.setFrameSizeKb(bytes[4] |
                     (static_cast<std::uint32_t>(bytes[5]) << 8));
    h.setFrameRate(bytes[6] & 0xf);
    h.setBurstSize((bytes[6] >> 4) & 0xf);
    h.setSrcAddr(get32(7));
    h.setDestAddr(get32(11));

    std::size_t expect =
        fixedBytes() + kContextBytesPerIp * ips.size();
    if (bytes.size() != expect)
        fatal("header packet size mismatch: ", bytes.size(), " vs ",
              expect);
    return h;
}

bool
HeaderPacket::operator==(const HeaderPacket &o) const
{
    return _ips == o._ips && _frameSizeKb == o._frameSizeKb &&
           _frameRate == o._frameRate && _burstSize == o._burstSize &&
           _src == o._src && _dst == o._dst;
}

} // namespace vip
