/**
 * @file
 * Virtual IP chain construction and arbitration (Sections 4.4, 5).
 *
 * A chain is the hardware realization of one flow: an ordered list of
 * IP cores with a buffer lane at each.  The manager supports two
 * binding disciplines:
 *
 *  - **Persistent** (VIP): every flow binds its own lane at every
 *    stage when the application open()s the chain; flows then share
 *    IPs concurrently under the hardware scheduler.
 *  - **Transactional** (IP-to-IP without virtualization): IPs have a
 *    single lane, so a flow must acquire the whole chain exclusively
 *    for each frame (or each burst).  Acquisition is all-or-nothing
 *    and FIFO, which is precisely the head-of-line blocking mechanism
 *    of Figure 7.
 */

#ifndef VIP_CORE_CHAIN_MANAGER_HH
#define VIP_CORE_CHAIN_MANAGER_HH

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "ip/ip_core.hh"

namespace vip
{

/** Handle to an instantiated chain. */
using ChainId = std::uint32_t;

/** Outcome of an admission-control feasibility check. */
struct AdmissionCheck
{
    /** Every stage fits under (1 - headroom) of its IP's capacity. */
    bool feasible = true;
    /** Highest per-IP load (existing + new demand) over the stages. */
    double worstLoad = 0.0;
    /** The stage IP that sets worstLoad. */
    const IpCore *bottleneck = nullptr;
};

/** Builds, binds and feeds virtual IP chains. */
class ChainManager : public Auditable
{
  public:
    using Granted = std::function<void()>;

    /**
     * Describe a chain for @p flow through @p ips.
     * @param nominal_edges  bytes entering each stage for a nominal
     *                       frame (per-frame overrides via feed()).
     */
    ChainId create(FlowId flow, std::vector<IpCore *> ips,
                   std::vector<std::uint64_t> nominal_edges,
                   IpCore::FrameExitFn on_exit,
                   IpCore::FrameStartFn on_start);

    /**
     * Bind lanes at every stage persistently (VIP open()).
     * @return false when some IP has no free lane.
     */
    bool bindPersistent(ChainId id);

    /**
     * Acquire the chain exclusively (transactional modes); @p granted
     * runs once every stage lane is bound.  FIFO across requesters.
     */
    void acquire(ChainId id, Granted granted);

    /** Release a transactional acquisition (after the last exit). */
    void release(ChainId id);

    /**
     * Tear a chain down for good (close() of the virtual device):
     * unbinds its lanes whatever the binding discipline was.  The
     * chain must be drained (no in-flight frames).
     */
    void close(ChainId id);

    /**
     * Feed one frame into the head of a bound chain.
     * @param edges     per-stage input bytes for this frame.
     * @param gen_span  sensor readout span for generated sources.
     * @param txn_end   this frame closes the flow's transaction (true
     *                  per frame, or only for a burst's last frame).
     */
    void feed(ChainId id, std::uint64_t frame_id,
              const std::vector<std::uint64_t> &edges, Addr addr,
              Tick deadline, Tick gen_span, bool txn_end = true);

    /** True while the chain's lanes are bound. */
    bool bound(ChainId id) const;

    /** Stage IPs of a chain. */
    const std::vector<IpCore *> &stages(ChainId id) const;

    /** Requesters queued behind busy chains right now. */
    std::size_t waiters() const { return _waiters.size(); }

    /** @{ -------------- Admission control ----------------
     * The driver's open()-time feasibility math: a flow at F frames/s
     * whose stage moves max(in, out) bytes per frame demands
     * F * max(in, out) / (clockHz * bytesPerCycle) of that IP.  The
     * manager keeps a per-IP load ledger; a flow is admitted while
     * every stage stays at or below (1 - headroom).
     */

    /** Capacity fraction of @p ip one flow's stage demands. */
    static double stageDemand(const IpCore &ip, std::uint64_t in_bytes,
                              std::uint64_t out_bytes, double fps);

    /**
     * Check whether a flow through @p ips (per-stage input bytes
     * @p edges, stage i's output = edges[i+1]) fits at @p fps on top
     * of the recorded load, keeping @p headroom of each IP free.
     */
    AdmissionCheck checkAdmission(const std::vector<IpCore *> &ips,
                                  const std::vector<std::uint64_t> &edges,
                                  double fps, double headroom) const;

    /** Charge an admitted flow's demand to the ledger. */
    void recordAdmission(const std::vector<IpCore *> &ips,
                         const std::vector<std::uint64_t> &edges,
                         double fps);

    /** Refund a closed flow's demand. */
    void releaseAdmission(const std::vector<IpCore *> &ips,
                          const std::vector<std::uint64_t> &edges,
                          double fps);

    /** Recorded utilization demand on @p ip (0 when unknown). */
    double ipLoad(const IpCore *ip) const;

    /** @} */

    /** @{ Auditable */
    void auditInvariants(AuditContext &ctx) const override;
    void stateDigest(StateDigest &d) const override;
    /** @} */

    /** @{ checkpoint serialization (driven by the Simulation).
     *
     * Chains hold continuation lambdas and IpCore pointers, so the
     * snapshot stores only their POD identity (flow, binding, lane
     * indices) in creation order plus the admission ledger by IP
     * name.  loadState() re-creates every chain through @p recreate
     * (the owning FlowRuntime re-issues its create() call, minting
     * identical ids) and rewires bound chains exactly as tryBind()
     * did, against lane bindings the IPs restored beforehand.
     */
    void saveState(SnapshotWriter &w) const;
    void loadState(SnapshotReader &r,
                   const std::function<ChainId(FlowId)> &recreate,
                   const std::function<IpCore *(const std::string &)>
                       &ip_by_name);
    /** @} */

  private:
    struct Chain
    {
        FlowId flow = 0;
        std::vector<IpCore *> ips;
        std::vector<std::uint64_t> nominalEdges;
        std::vector<int> lanes;
        bool isBound = false;
        bool persistent = false;
        bool sourceGenerated = false;
        IpCore::FrameExitFn onExit;
        IpCore::FrameStartFn onStart;
    };

    bool tryBind(Chain &c);
    void unbind(Chain &c);
    void retryWaiters();
    bool overlapsWaiter(const Chain &c) const;

    std::vector<Chain> _chains;
    std::deque<std::pair<ChainId, Granted>> _waiters;
    /** Admission ledger: accumulated demand fraction per IP. */
    std::map<const IpCore *, double> _ipLoad;
};

} // namespace vip

#endif // VIP_CORE_CHAIN_MANAGER_HH
