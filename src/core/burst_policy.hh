/**
 * @file
 * Frame-burst sizing policies (Section 4.3).
 *
 * - FixedBurstPolicy: a constant burst size (the paper's running
 *   example uses 5 frames).
 * - GopBurstPolicy: video playback/encode — bursts align to the GOP
 *   structure so one burst covers the predicted frames between
 *   independent frames.
 * - GameHybridBurstPolicy: games — long bursts (capped below 10
 *   frames, ~160 ms) while the user is not touching the screen, and
 *   single-frame scheduling while input is active, driven by the
 *   measured touch models of Figs 5/6.
 */

#ifndef VIP_CORE_BURST_POLICY_HH
#define VIP_CORE_BURST_POLICY_HH

#include <algorithm>
#include <memory>

#include "app/application.hh"
#include "app/user_input.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace vip
{

/** Decides how many frames the next burst schedules. */
class BurstPolicy
{
  public:
    virtual ~BurstPolicy() = default;

    /**
     * @param next_frame  id of the first frame of the burst.
     * @param now         current tick.
     * @param next_input  tick of the next expected user input, or
     *                    MaxTick when the flow has no input.
     * @return burst size in frames, >= 1.
     */
    virtual std::uint32_t nextBurst(std::uint64_t next_frame, Tick now,
                                    Tick next_input) = 0;

    virtual const char *name() const = 0;
};

/** Constant burst size. */
class FixedBurstPolicy : public BurstPolicy
{
  public:
    explicit FixedBurstPolicy(std::uint32_t frames)
        : _frames(std::max(1u, frames))
    {}

    std::uint32_t
    nextBurst(std::uint64_t, Tick, Tick) override
    {
        return _frames;
    }

    const char *name() const override { return "fixed"; }

  private:
    std::uint32_t _frames;
};

/** GOP-aligned bursts for video playback/encoding. */
class GopBurstPolicy : public BurstPolicy
{
  public:
    GopBurstPolicy(GopParams gop, std::uint32_t max_frames)
        : _gop(gop), _max(std::max(1u, max_frames))
    {}

    std::uint32_t
    nextBurst(std::uint64_t next_frame, Tick, Tick) override
    {
        // Burst up to (and not across) the next independent frame so
        // a burst never splits a GOP's prediction chain.
        std::uint32_t g = _gop.gopSize ? _gop.gopSize : _max;
        std::uint32_t toNextI =
            static_cast<std::uint32_t>(g - (next_frame % g));
        return std::min(toNextI, _max);
    }

    const char *name() const override { return "gop"; }

  private:
    GopParams _gop;
    std::uint32_t _max;
};

/**
 * Hybrid policy for games: burst while idle, frame-at-a-time while
 * the user interacts (Section 4.3's <10 frame cap keeps worst-case
 * touch response below perception).
 */
class GameHybridBurstPolicy : public BurstPolicy
{
  public:
    GameHybridBurstPolicy(double fps, std::uint32_t max_frames = 9)
        : _period(fromSec(1.0 / fps)), _max(std::max(1u, max_frames))
    {}

    std::uint32_t
    nextBurst(std::uint64_t, Tick now, Tick next_input) override
    {
        if (next_input == MaxTick)
            return _max;
        if (next_input <= now)
            return 1; // input in flight: maximum responsiveness
        Tick gap = next_input - now;
        auto frames = static_cast<std::uint32_t>(gap / _period);
        return std::clamp(frames, 1u, _max);
    }

    const char *name() const override { return "game-hybrid"; }

  private:
    Tick _period;
    std::uint32_t _max;
};

/** Pick the policy Section 4.3 prescribes for an application class. */
std::unique_ptr<BurstPolicy>
makeBurstPolicy(AppClass cls, const FlowSpec &flow,
                std::uint32_t default_burst, std::uint32_t game_cap);

} // namespace vip

#endif // VIP_CORE_BURST_POLICY_HH
