#include "core/burst_policy.hh"

#include "core/header_packet.hh"

namespace vip
{

std::unique_ptr<BurstPolicy>
makeBurstPolicy(AppClass cls, const FlowSpec &flow,
                std::uint32_t default_burst, std::uint32_t game_cap)
{
    // Burst sizes must fit the header packet's 4-bit field.
    const std::uint32_t hw_cap = (1u << HeaderPacket::kBurstSizeBits) - 1;
    default_burst = std::min(default_burst, hw_cap);
    game_cap = std::min(game_cap, hw_cap);

    switch (cls) {
      case AppClass::Game:
        return std::make_unique<GameHybridBurstPolicy>(flow.fps,
                                                       game_cap);
      case AppClass::VideoPlayback:
      case AppClass::VideoEncode:
        if (flow.hasGop) {
            return std::make_unique<GopBurstPolicy>(
                flow.gop, std::min(default_burst, hw_cap));
        }
        return std::make_unique<FixedBurstPolicy>(default_burst);
      case AppClass::AudioOnly:
      default:
        return std::make_unique<FixedBurstPolicy>(default_burst);
    }
}

} // namespace vip
