/**
 * @file
 * The five system configurations compared in the evaluation
 * (Section 6.2): Baseline, FrameBurst, IP-to-IP, IP-to-IP with
 * FrameBurst, and VIP.
 */

#ifndef VIP_CORE_SYSTEM_CONFIG_HH
#define VIP_CORE_SYSTEM_CONFIG_HH

#include <cstdint>

namespace vip
{

/** Evaluated system configurations. */
enum class SystemConfig : std::uint8_t
{
    Baseline,     ///< today's per-frame, memory-staged system
    FrameBurst,   ///< bursts only, data still staged through DRAM
    IpToIp,       ///< chained IPs, per-frame CPU involvement
    IpToIpBurst,  ///< chained + bursts, no virtualization
    VIP,          ///< chained + bursts + virtualized lanes + EDF
};

/** Mechanism flags implied by a configuration. */
struct ConfigTraits
{
    bool ipToIp = false;       ///< IP-to-IP sub-frame forwarding
    bool frameBurst = false;   ///< CPU schedules bursts of frames
    bool virtualized = false;  ///< multi-lane buffers + HW scheduler
};

constexpr ConfigTraits
traitsOf(SystemConfig c)
{
    switch (c) {
      case SystemConfig::Baseline:
        return {false, false, false};
      case SystemConfig::FrameBurst:
        return {false, true, false};
      case SystemConfig::IpToIp:
        return {true, false, false};
      case SystemConfig::IpToIpBurst:
        return {true, true, false};
      case SystemConfig::VIP:
        return {true, true, true};
    }
    return {};
}

constexpr const char *
systemConfigName(SystemConfig c)
{
    switch (c) {
      case SystemConfig::Baseline: return "Baseline";
      case SystemConfig::FrameBurst: return "FrameBurst";
      case SystemConfig::IpToIp: return "IP-to-IP";
      case SystemConfig::IpToIpBurst: return "IP-to-IP+FB";
      case SystemConfig::VIP: return "VIP";
    }
    return "?";
}

/** All five configurations in the paper's plotting order. */
constexpr SystemConfig kAllConfigs[] = {
    SystemConfig::Baseline,
    SystemConfig::FrameBurst,
    SystemConfig::IpToIp,
    SystemConfig::IpToIpBurst,
    SystemConfig::VIP,
};

} // namespace vip

#endif // VIP_CORE_SYSTEM_CONFIG_HH
