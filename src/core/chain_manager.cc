#include "core/chain_manager.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vip
{

ChainId
ChainManager::create(FlowId flow, std::vector<IpCore *> ips,
                     std::vector<std::uint64_t> nominal_edges,
                     IpCore::FrameExitFn on_exit,
                     IpCore::FrameStartFn on_start)
{
    vip_assert(!ips.empty(), "chain needs at least one IP");
    vip_assert(ips.size() == nominal_edges.size(),
               "edges/stages size mismatch");
    for (std::size_t i = 0; i < ips.size(); ++i) {
        for (std::size_t j = i + 1; j < ips.size(); ++j) {
            if (ips[i] == ips[j])
                fatal("chain visits IP ", ips[i]->name(), " twice");
        }
    }

    Chain c;
    c.flow = flow;
    c.ips = std::move(ips);
    c.nominalEdges = std::move(nominal_edges);
    c.onExit = std::move(on_exit);
    c.onStart = std::move(on_start);
    c.lanes.assign(c.ips.size(), -1);
    c.sourceGenerated = ipIsSource(c.ips.front()->kind());
    _chains.push_back(std::move(c));
    return static_cast<ChainId>(_chains.size() - 1);
}

bool
ChainManager::tryBind(Chain &c)
{
    vip_assert(!c.isBound, "double bind");
    // All-or-nothing: check availability first so a partial failure
    // never holds lanes (which could deadlock crossing chains).
    for (auto *ip : c.ips) {
        if (ip->boundLanes() >= ip->numLanes())
            return false;
    }
    const std::size_t n = c.ips.size();
    for (std::size_t i = 0; i < n; ++i) {
        int lane = c.ips[i]->bindLane(c.flow);
        vip_assert(lane >= 0, "lane vanished between check and bind");
        c.lanes[i] = lane;
    }
    for (std::size_t i = 0; i + 1 < n; ++i)
        c.ips[i]->connectLane(c.lanes[i], c.ips[i + 1], c.lanes[i + 1]);
    c.ips[n - 1]->makeLaneSink(c.lanes[n - 1], c.onExit);
    if (c.onStart)
        c.ips[0]->setLaneFrameStartCb(c.lanes[0], c.onStart);
    c.isBound = true;
    return true;
}

void
ChainManager::unbind(Chain &c)
{
    vip_assert(c.isBound, "unbinding unbound chain");
    for (std::size_t i = 0; i < c.ips.size(); ++i) {
        c.ips[i]->unbindLane(c.lanes[i]);
        c.lanes[i] = -1;
    }
    c.isBound = false;
}

bool
ChainManager::bindPersistent(ChainId id)
{
    Chain &c = _chains.at(id);
    if (!tryBind(c))
        return false;
    c.persistent = true;
    return true;
}

bool
ChainManager::overlapsWaiter(const Chain &c) const
{
    for (const auto &[wid, g] : _waiters) {
        const Chain &w = _chains.at(wid);
        for (auto *ip : c.ips) {
            for (auto *wip : w.ips) {
                if (ip == wip)
                    return true;
            }
        }
    }
    return false;
}

void
ChainManager::acquire(ChainId id, Granted granted)
{
    Chain &c = _chains.at(id);
    vip_assert(!c.persistent, "acquire on a persistent chain");
    // Grant immediately only when the chain is free AND no earlier
    // waiter contends for any of its IPs (bounded unfairness).
    if (!c.isBound && !overlapsWaiter(c) && tryBind(c)) {
        granted();
        return;
    }
    _waiters.emplace_back(id, std::move(granted));
}

void
ChainManager::release(ChainId id)
{
    Chain &c = _chains.at(id);
    vip_assert(!c.persistent, "release on a persistent chain");
    unbind(c);
    retryWaiters();
}

void
ChainManager::close(ChainId id)
{
    Chain &c = _chains.at(id);
    if (c.isBound)
        unbind(c);
    c.persistent = false;
    retryWaiters();
}

void
ChainManager::retryWaiters()
{
    // FIFO with passing: scan in arrival order and admit every waiter
    // whose whole chain can bind.  Waiters on still-busy IPs keep
    // their queue position, so same-resource requesters stay FIFO
    // while disjoint chains never block each other.
    std::vector<Granted> admitted;
    for (auto it = _waiters.begin(); it != _waiters.end();) {
        Chain &c = _chains.at(it->first);
        if (!c.isBound && tryBind(c)) {
            admitted.push_back(std::move(it->second));
            it = _waiters.erase(it);
        } else {
            ++it;
        }
    }
    for (auto &g : admitted)
        g();
}

void
ChainManager::feed(ChainId id, std::uint64_t frame_id,
                   const std::vector<std::uint64_t> &edges, Addr addr,
                   Tick deadline, Tick gen_span, bool txn_end)
{
    Chain &c = _chains.at(id);
    vip_assert(c.isBound, "feeding an unbound chain");
    vip_assert(edges.size() == c.ips.size(), "edge vector mismatch");

    // Distribute the per-frame context (header packet contents) to
    // every stage: per-stage input/output bytes, deadline, and the
    // transaction boundary; then stream the data in at the head.
    const std::size_t n = c.ips.size();
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t out = i + 1 < n ? edges[i + 1] : 0;
        c.ips[i]->announceFrame(c.lanes[i], frame_id, edges[i], out,
                                deadline, txn_end);
    }
    c.ips[0]->feedFrame(c.lanes[0], frame_id, edges[0], addr,
                        c.sourceGenerated, gen_span);
}

// --------------------------------------------------------------------
// Admission control
// --------------------------------------------------------------------

double
ChainManager::stageDemand(const IpCore &ip, std::uint64_t in_bytes,
                          std::uint64_t out_bytes, double fps)
{
    const IpParams &p = ip.params();
    double cap = p.clockHz * p.bytesPerCycle; // engine bytes/second
    if (cap <= 0.0)
        return 1.0;
    double work = static_cast<double>(
        std::max<std::uint64_t>({in_bytes, out_bytes, 1}));
    return fps * work / cap;
}

AdmissionCheck
ChainManager::checkAdmission(const std::vector<IpCore *> &ips,
                             const std::vector<std::uint64_t> &edges,
                             double fps, double headroom) const
{
    vip_assert(ips.size() == edges.size(),
               "admission edge/stage mismatch");
    AdmissionCheck r;
    const double limit = 1.0 - headroom;
    for (std::size_t i = 0; i < ips.size(); ++i) {
        std::uint64_t out = i + 1 < ips.size() ? edges[i + 1] : 0;
        double load = ipLoad(ips[i]) +
                      stageDemand(*ips[i], edges[i], out, fps);
        if (load > r.worstLoad) {
            r.worstLoad = load;
            r.bottleneck = ips[i];
        }
        // Tolerate fp rounding right at the boundary.
        if (load > limit * (1.0 + 1e-12))
            r.feasible = false;
    }
    return r;
}

void
ChainManager::recordAdmission(const std::vector<IpCore *> &ips,
                              const std::vector<std::uint64_t> &edges,
                              double fps)
{
    vip_assert(ips.size() == edges.size(),
               "admission edge/stage mismatch");
    for (std::size_t i = 0; i < ips.size(); ++i) {
        std::uint64_t out = i + 1 < ips.size() ? edges[i + 1] : 0;
        _ipLoad[ips[i]] += stageDemand(*ips[i], edges[i], out, fps);
    }
}

void
ChainManager::releaseAdmission(const std::vector<IpCore *> &ips,
                               const std::vector<std::uint64_t> &edges,
                               double fps)
{
    vip_assert(ips.size() == edges.size(),
               "admission edge/stage mismatch");
    for (std::size_t i = 0; i < ips.size(); ++i) {
        std::uint64_t out = i + 1 < ips.size() ? edges[i + 1] : 0;
        auto it = _ipLoad.find(ips[i]);
        vip_assert(it != _ipLoad.end(),
                   "admission refund for unknown IP");
        it->second -= stageDemand(*ips[i], edges[i], out, fps);
        if (it->second < 1e-12)
            it->second = 0.0;
    }
}

double
ChainManager::ipLoad(const IpCore *ip) const
{
    auto it = _ipLoad.find(ip);
    return it == _ipLoad.end() ? 0.0 : it->second;
}

bool
ChainManager::bound(ChainId id) const
{
    return _chains.at(id).isBound;
}

const std::vector<IpCore *> &
ChainManager::stages(ChainId id) const
{
    return _chains.at(id).ips;
}

void
ChainManager::auditInvariants(AuditContext &ctx) const
{
    for (std::size_t i = 0; i < _chains.size(); ++i) {
        const Chain &c = _chains[i];
        std::string which = "chain " + std::to_string(i);
        if (c.isBound) {
            ctx.checkEq("chain.bound_lanes", c.lanes.size(),
                        c.ips.size(), which);
            for (int lane : c.lanes) {
                ctx.checkTrue("chain.lane_valid", lane >= 0,
                              which + " bound with an invalid lane");
            }
        } else {
            // unbind() resets every slot to -1 but keeps the vector
            // sized to the stage count.
            for (int lane : c.lanes) {
                ctx.checkTrue("chain.unbound_lanes", lane == -1,
                              which + " holds a lane while unbound");
            }
        }
    }
    for (const auto &[id, granted] : _waiters) {
        ctx.checkTrue("chain.waiter_valid", id < _chains.size(),
                      "waiter references unknown chain");
    }
    // The admission ledger never goes negative (releases are clamped
    // at zero only against rounding noise).
    for (const auto &[ip, load] : _ipLoad) {
        ctx.checkTrue("chain.load_nonnegative", load >= 0.0,
                      "negative admission demand on " + ip->name());
    }
}

void
ChainManager::stateDigest(StateDigest &d) const
{
    d.add(static_cast<std::uint64_t>(_chains.size()));
    for (const Chain &c : _chains) {
        d.add(static_cast<std::uint64_t>(c.flow));
        d.add(c.isBound);
        d.add(c.persistent);
        d.add(static_cast<std::uint64_t>(c.lanes.size()));
        for (int lane : c.lanes)
            d.add(static_cast<std::int64_t>(lane));
    }
    d.add(static_cast<std::uint64_t>(_waiters.size()));
    // The ledger is keyed by IpCore pointer; digest by component name
    // in sorted order so the value is stable across runs.
    std::vector<std::pair<std::string, double>> loads;
    loads.reserve(_ipLoad.size());
    for (const auto &[ip, load] : _ipLoad)
        loads.emplace_back(ip->name(), load);
    std::sort(loads.begin(), loads.end());
    for (const auto &[name, load] : loads) {
        d.add(name);
        d.add(load);
    }
}

void
ChainManager::saveState(SnapshotWriter &w) const
{
    vip_assert(_waiters.empty(),
               "checkpointing with chain acquisitions queued");
    w.u32(static_cast<std::uint32_t>(_chains.size()));
    for (const Chain &c : _chains) {
        w.u64(static_cast<std::uint64_t>(c.flow));
        w.b(c.isBound);
        w.b(c.persistent);
        w.u32(static_cast<std::uint32_t>(c.lanes.size()));
        for (int lane : c.lanes)
            w.i64(lane);
    }
    // The admission ledger accumulates doubles in call order, so the
    // values are not reproducible by replaying recordAdmission();
    // store the exact bits keyed by IP name, sorted for stability.
    std::vector<std::pair<std::string, double>> loads;
    loads.reserve(_ipLoad.size());
    for (const auto &[ip, load] : _ipLoad)
        loads.emplace_back(ip->name(), load);
    std::sort(loads.begin(), loads.end());
    w.u32(static_cast<std::uint32_t>(loads.size()));
    for (const auto &[name, load] : loads) {
        w.str(name);
        w.d(load);
    }
}

void
ChainManager::loadState(SnapshotReader &r,
                        const std::function<ChainId(FlowId)> &recreate,
                        const std::function<IpCore *(const std::string &)>
                            &ip_by_name)
{
    vip_assert(_chains.empty(),
               "restoring into a non-empty chain manager");
    std::uint32_t nChains = r.u32();
    for (std::uint32_t i = 0; i < nChains; ++i) {
        FlowId flow = static_cast<FlowId>(r.u64());
        bool isBound = r.b();
        bool persistent = r.b();
        ChainId id = recreate(flow);
        if (id != i)
            fatal("chain restore out of order: flow ", flow,
                  " recreated chain ", id, ", snapshot expects ", i);
        Chain &c = _chains.at(id);
        std::uint32_t nLanes = r.u32();
        if (nLanes != c.lanes.size())
            fatal("chain ", id, ": snapshot has ", nLanes,
                  " stages, flow rebuilds ", c.lanes.size(),
                  " (config mismatch)");
        for (std::uint32_t j = 0; j < nLanes; ++j)
            c.lanes[j] = static_cast<int>(r.i64());
        c.isBound = isBound;
        c.persistent = persistent;
        if (!c.isBound)
            continue;
        // Rewire the stages exactly as tryBind() did, against the
        // lane bindings the IPs restored in their own sections.
        const std::size_t n = c.ips.size();
        for (std::size_t s = 0; s + 1 < n; ++s) {
            c.ips[s]->connectLane(c.lanes[s], c.ips[s + 1],
                                  c.lanes[s + 1]);
        }
        c.ips[n - 1]->makeLaneSink(c.lanes[n - 1], c.onExit);
        if (c.onStart)
            c.ips[0]->setLaneFrameStartCb(c.lanes[0], c.onStart);
    }
    std::uint32_t nLoads = r.u32();
    for (std::uint32_t i = 0; i < nLoads; ++i) {
        std::string name = r.str();
        double load = r.d();
        IpCore *ip = ip_by_name(name);
        if (!ip)
            fatal("admission ledger references unknown IP '", name,
                  "' (config mismatch)");
        _ipLoad[ip] = load;
    }
}

} // namespace vip
