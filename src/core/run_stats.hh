/**
 * @file
 * Results of one platform run: everything the paper's figures plot.
 */

#ifndef VIP_CORE_RUN_STATS_HH
#define VIP_CORE_RUN_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "app/trace.hh"
#include "fault/fault_plan.hh"
#include "obs/latency.hh"

namespace vip
{

/** Per-flow QoS outcome. */
struct FlowResult
{
    std::string name;
    bool qosCritical = true;
    double fps = 0.0;
    std::uint64_t generated = 0;
    std::uint64_t completed = 0;
    std::uint64_t violations = 0; ///< completed after deadline
    std::uint64_t drops = 0;      ///< missed by > one period
    /** @{ Overload protection. */
    std::uint64_t shed = 0;       ///< dropped whole at the chain head
    std::uint64_t inFlight = 0;   ///< still in the pipeline at run end
    bool admitted = true;         ///< false: rejected by admission
    double nominalFps = 0.0;      ///< requested rate before down-rating
    /** @} */
    double meanFlowTimeMs = 0.0;  ///< latency from nominal generation
    double meanTransitMs = 0.0;   ///< pipeline transit (start->done)
    double achievedFps = 0.0;     ///< displayed (non-dropped) rate
};

/** Per-IP activity. */
struct IpResult
{
    std::string name;
    double activeMs = 0.0;
    double stallMs = 0.0;
    /** Backpressured (input ready, no downstream credit): idle power. */
    double bpStallMs = 0.0;
    double utilization = 0.0;     ///< active / (active + stall)
    double dutyCycle = 0.0;
    /** Input reservations past lane capacity (0 = credits honored). */
    std::uint64_t laneOverflows = 0;
    /** Producer pushes deferred waiting on a downstream credit. */
    std::uint64_t creditStalls = 0;
    std::uint64_t contextSwitches = 0;
    /** DRAM bytes this IP moved (its DMA traffic attribution). */
    std::uint64_t memBytes = 0;
    /** @{ Fault recovery (all zero without a fault plan). */
    std::uint64_t watchdogResets = 0;
    std::uint64_t unitRetries = 0;
    std::uint64_t framesDegraded = 0;
    /** @} */
};

/** Aggregate results of one run. */
struct RunStats
{
    std::string configName;
    std::string workloadName;
    double seconds = 0.0;

    /** @{ Energy, millijoules, by category. */
    double cpuEnergyMj = 0.0;
    double dramEnergyMj = 0.0;
    double saEnergyMj = 0.0;
    double ipEnergyMj = 0.0;
    double bufferEnergyMj = 0.0;
    double totalEnergyMj = 0.0;
    /** Total energy / QoS-critical frames completed. */
    double energyPerFrameMj = 0.0;
    /** @} */

    /** @{ QoS (Fig 18) and performance (Fig 17). */
    std::uint64_t framesGenerated = 0; ///< QoS-critical flows
    std::uint64_t framesCompleted = 0;
    std::uint64_t violations = 0;
    std::uint64_t drops = 0;
    double dropRate = 0.0;       ///< drops / completed
    double violationRate = 0.0;
    /** @{ Overload protection (all zero under BestEffort and no load). */
    std::uint64_t framesShed = 0;    ///< dropped at the chain head
    double shedRate = 0.0;           ///< shed / generated
    std::uint32_t flowsRejected = 0; ///< refused by admission
    std::uint32_t flowsDownRated = 0;///< FPS halved by admission
    std::uint64_t laneOverflows = 0; ///< summed over IPs (must be 0)
    /** @} */
    double meanFlowTimeMs = 0.0; ///< across QoS-critical frames
    double meanTransitMs = 0.0;  ///< pipeline transit view
    double achievedFps = 0.0;    ///< mean per-flow displayed FPS
    /** @} */

    /** @{ CPU (Figs 2, 16). */
    std::uint64_t interrupts = 0;
    double interruptsPer100ms = 0.0;
    std::uint64_t instructions = 0;
    double cpuActiveMs = 0.0;          ///< summed over cores
    double cpuActiveMsPerFrame = 0.0;
    double cpuSleepFraction = 0.0;     ///< of core-time asleep
    /** @} */

    /** @{ Memory (Fig 3). */
    double avgMemBandwidthGBps = 0.0;
    double memBytesGB = 0.0;
    double fracTimeAbove80PctBw = 0.0;
    double memRowHitRate = 0.0;
    /** @} */

    double saUtilization = 0.0;

    /**
     * Aggregate fault-injection and recovery counters for the run
     * (all zero when no fault plan was configured).
     */
    FaultStats faults;

    /** @{ Invariant audit (all zero under --audit=off). */
    std::uint64_t auditPasses = 0;
    std::uint64_t auditRecords = 0;
    std::uint64_t auditViolations = 0;
    /** FNV-1a over the whole digest stream (run fingerprint). */
    std::uint64_t digestStreamHash = 0;
    /** @} */

    /**
     * Per-frame latency decomposition: end-to-end/transit plus
     * wait/compute/blocked/total per chain stage, as p50/p95/p99
     * (always collected; see src/obs/latency.hh).
     */
    LatencySummary latency;

    std::vector<FlowResult> flows;
    std::vector<IpResult> ips;

    /** Full frame trace (when SocConfig::recordTrace). */
    FrameTrace trace;

    /** The IpResult for a named IP kind ("VD"...), nullptr if absent. */
    const IpResult *ip(const std::string &name) const;

    /** Human-readable one-line summary. */
    std::string summary() const;
};

} // namespace vip

#endif // VIP_CORE_RUN_STATS_HH
