/**
 * @file
 * Platform power parameters.
 *
 * One struct per component class.  Defaults are calibrated to a
 * handheld SoC of the Nexus-7 era so that the *proportions* of the
 * energy breakdown match published measurements; the paper (and this
 * reproduction) reports normalized energy, so proportions are what
 * matter.
 */

#ifndef VIP_POWER_POWER_PARAMS_HH
#define VIP_POWER_POWER_PARAMS_HH

namespace vip
{

/** CPU core power, one in-order core. */
struct CpuPowerParams
{
    double activeWatts = 1.00;    ///< running driver/app code
    double idleWatts = 0.12;      ///< clock-gated, can wake instantly
    double sleepWatts = 0.008;    ///< deep sleep (power gated)
    /** Extra dynamic energy per instruction (nJ). */
    double energyPerInstrNj = 0.25;
};

/** IP core power. */
struct IpPowerParams
{
    double activeWatts = 0.40;    ///< computing on a sub-frame
    double stallWatts = 0.15;     ///< powered, waiting on memory/credits
    double idleWatts = 0.004;     ///< power-gated between frames
    /** Context-switch energy between lanes (nJ). */
    double contextSwitchNj = 8.0;
};

/**
 * LPDDR3 DRAM + controller power.  ~40 pJ/bit (device + I/O +
 * controller) is the accepted LPDDR3-class figure, i.e. ~0.32 nJ/B;
 * this is what makes staging frames through DRAM expensive and gives
 * IP-to-IP communication its energy win (Fig 15).
 */
struct DramPowerParams
{
    /** Dynamic energy per byte read or written (nJ/B), incl. I/O. */
    double energyPerByteNj = 0.17;
    /** Background power per channel (W) while powered up. */
    double backgroundWattsPerChannel = 0.030;
    /** Background power fraction in fast power-down. */
    double powerDownFraction = 0.25;
    /** Background power fraction in self-refresh. */
    double selfRefreshFraction = 0.06;
    /** Extra energy per row activation (nJ). */
    double activateNj = 3.0;
};

/** System Agent (central interconnect) power. */
struct SaPowerParams
{
    /** Energy per byte crossing the SA (nJ/B). */
    double energyPerByteNj = 0.02;
    /** Static power (W). */
    double staticWatts = 0.020;
};

} // namespace vip

#endif // VIP_POWER_POWER_PARAMS_HH
