#include "power/sram_model.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace vip
{

namespace
{

// Coefficients fit to the CACTI curve plotted in Fig 14b.
constexpr double kReadE0Nj = 0.0035;   // fixed decode/sense overhead
constexpr double kReadE1Nj = 0.0077;   // * sqrt(KB)
constexpr double kWriteScale = 1.10;   // writes slightly costlier
constexpr double kAreaA0Mm2 = 0.0006;  // periphery floor
constexpr double kAreaA1Mm2 = 0.0055;  // * KB (cell array)
constexpr double kLeakW0 = 2.0e-5;     // periphery leakage floor
constexpr double kLeakW1 = 5.5e-5;     // * KB
constexpr double kAccessBytes = 64.0;  // modelled access width

} // namespace

SramModel::Estimate
SramModel::forCapacity(std::uint64_t bytes)
{
    vip_assert(bytes > 0, "SRAM capacity must be positive");
    double kb = static_cast<double>(bytes) / 1024.0;
    Estimate e;
    e.readEnergyNj = kReadE0Nj + kReadE1Nj * std::sqrt(kb);
    e.writeEnergyNj = e.readEnergyNj * kWriteScale;
    e.areaMm2 = kAreaA0Mm2 + kAreaA1Mm2 * kb;
    e.leakageWatts = kLeakW0 + kLeakW1 * kb;
    return e;
}

double
SramModel::readEnergyNj(std::uint64_t capacity, std::uint64_t bytes)
{
    auto est = forCapacity(capacity);
    double accesses =
        std::ceil(static_cast<double>(bytes) / kAccessBytes);
    return est.readEnergyNj * std::max(1.0, accesses);
}

double
SramModel::writeEnergyNj(std::uint64_t capacity, std::uint64_t bytes)
{
    auto est = forCapacity(capacity);
    double accesses =
        std::ceil(static_cast<double>(bytes) / kAccessBytes);
    return est.writeEnergyNj * std::max(1.0, accesses);
}

} // namespace vip
