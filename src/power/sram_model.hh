/**
 * @file
 * Analytical SRAM energy/area model standing in for CACTI.
 *
 * The paper sizes the per-lane flow buffers using CACTI's dynamic
 * read energy and area for 0.5 KB .. 64 KB SRAMs (Fig 14b).  CACTI is
 * not available offline, so this model reproduces the published curve:
 *
 *   read energy (nJ) ~= e0 + e1 * sqrt(KB)     (wordline/bitline term)
 *   area (mm^2)      ~= a0 + a1 * KB           (cell-array dominated)
 *
 * with coefficients fit to the Fig 14b endpoints (64 KB: ~0.065 nJ,
 * ~0.35 mm^2; 0.5 KB: ~0.005 nJ, ~0.003 mm^2).
 */

#ifndef VIP_POWER_SRAM_MODEL_HH
#define VIP_POWER_SRAM_MODEL_HH

#include <cstdint>

namespace vip
{

/** CACTI-like buffer energy/area estimator (32 nm-class process). */
class SramModel
{
  public:
    struct Estimate
    {
        double readEnergyNj;  ///< dynamic energy per 64 B read
        double writeEnergyNj; ///< dynamic energy per 64 B write
        double areaMm2;       ///< total macro area
        double leakageWatts;  ///< standby leakage
    };

    /** Estimate for a buffer of @p bytes capacity. */
    static Estimate forCapacity(std::uint64_t bytes);

    /** Energy (nJ) to read @p bytes from a buffer of @p capacity. */
    static double readEnergyNj(std::uint64_t capacity,
                               std::uint64_t bytes);

    /** Energy (nJ) to write @p bytes into a buffer of @p capacity. */
    static double writeEnergyNj(std::uint64_t capacity,
                                std::uint64_t bytes);
};

} // namespace vip

#endif // VIP_POWER_SRAM_MODEL_HH
