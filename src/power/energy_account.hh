/**
 * @file
 * Per-component energy accounting.
 *
 * An EnergyAccount integrates power over simulated time (for
 * state-machine components: active/idle/sleep) and accumulates
 * per-event energies (per byte, per instruction, per access).
 * Accounts register with an EnergyLedger so the platform can produce
 * the per-component breakdown used by Figs 15 and 16.
 */

#ifndef VIP_POWER_ENERGY_ACCOUNT_HH
#define VIP_POWER_ENERGY_ACCOUNT_HH

#include <map>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace vip
{

/** Energy bookkeeping for one component. */
class EnergyAccount
{
  public:
    EnergyAccount() = default;
    explicit EnergyAccount(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }

    /**
     * The component's power changed to @p watts at @p now.  Integrates
     * the previous power level over the elapsed interval.
     */
    void
    setPower(double watts, Tick now)
    {
        vip_assert(now >= _lastTick, "energy time went backwards in ",
                   _name);
        _staticNj += _watts * toSec(now - _lastTick) * 1e9;
        _watts = watts;
        _lastTick = now;
    }

    /** Add a one-off dynamic energy amount (nanojoules). */
    void addDynamicNj(double nj) { _dynamicNj += nj; }

    /** Close the integration interval (idempotent). */
    void close(Tick now) { setPower(_watts, now); }

    /** Integrated state/static energy so far (nJ). */
    double staticNj() const { return _staticNj; }

    /** Accumulated per-event energy so far (nJ). */
    double dynamicNj() const { return _dynamicNj; }

    /** Total energy (nJ). Call close() first for exact values. */
    double totalNj() const { return _staticNj + _dynamicNj; }

    /** Total energy in millijoules. */
    double totalMj() const { return totalNj() * 1e-6; }

    double currentWatts() const { return _watts; }

    /** @{ checkpoint serialization.
     *
     * The integrals accumulate doubles in event order and cannot be
     * reproduced by replay, so the exact bits are stored.  Component
     * loadState() must therefore never call setPower() — the ledger
     * section restores the whole integration state, including the
     * current power level, after every component's section.
     */
    void
    saveState(SnapshotWriter &w) const
    {
        w.d(_watts);
        w.d(_staticNj);
        w.d(_dynamicNj);
        w.tick(_lastTick);
    }

    void
    loadState(SnapshotReader &r)
    {
        _watts = r.d();
        _staticNj = r.d();
        _dynamicNj = r.d();
        _lastTick = r.tick();
    }
    /** @} */

  private:
    std::string _name;
    double _watts = 0.0;
    double _staticNj = 0.0;
    double _dynamicNj = 0.0;
    Tick _lastTick = 0;
};

/**
 * The platform-wide registry of energy accounts, grouped by category
 * ("cpu", "dram", "sa", "ip", "buffer").
 */
class EnergyLedger
{
  public:
    /** Create (or look up) the account for @p category / @p name. */
    EnergyAccount &
    account(const std::string &category, const std::string &name)
    {
        auto key = category + "." + name;
        auto it = _accounts.find(key);
        if (it == _accounts.end()) {
            it = _accounts.emplace(key, EnergyAccount(key)).first;
            _byCategory[category].push_back(&it->second);
        }
        return it->second;
    }

    /** Close all accounts at @p now. */
    void
    closeAll(Tick now)
    {
        for (auto &[k, acc] : _accounts)
            acc.close(now);
    }

    /** Total energy in a category (nJ). */
    double
    categoryNj(const std::string &category) const
    {
        auto it = _byCategory.find(category);
        if (it == _byCategory.end())
            return 0.0;
        double sum = 0.0;
        for (const auto *acc : it->second)
            sum += acc->totalNj();
        return sum;
    }

    /** Total platform energy (nJ). */
    double
    totalNj() const
    {
        double sum = 0.0;
        for (const auto &[k, acc] : _accounts)
            sum += acc.totalNj();
        return sum;
    }

    /** All category names present. */
    std::vector<std::string>
    categories() const
    {
        std::vector<std::string> out;
        out.reserve(_byCategory.size());
        for (const auto &[k, v] : _byCategory)
            out.push_back(k);
        return out;
    }

    /** @{ checkpoint serialization.
     *
     * Accounts live in an ordered map, so iteration order is stable;
     * every account must already exist on load (they are created by
     * component constructors), making a name mismatch a config skew.
     */
    void
    saveState(SnapshotWriter &w) const
    {
        w.u32(static_cast<std::uint32_t>(_accounts.size()));
        for (const auto &[key, acc] : _accounts) {
            w.str(key);
            acc.saveState(w);
        }
    }

    void
    loadState(SnapshotReader &r)
    {
        std::uint32_t n = r.u32();
        if (n != _accounts.size())
            fatal("energy ledger: snapshot has ", n,
                  " accounts, platform built ", _accounts.size(),
                  " (config mismatch)");
        for (auto &[key, acc] : _accounts) {
            std::string name = r.str();
            if (name != key)
                fatal("energy ledger: snapshot account '", name,
                      "' != expected '", key, "' (config mismatch)");
            acc.loadState(r);
        }
    }
    /** @} */

  private:
    std::map<std::string, EnergyAccount> _accounts;
    std::map<std::string, std::vector<EnergyAccount *>> _byCategory;
};

} // namespace vip

#endif // VIP_POWER_ENERGY_ACCOUNT_HH
