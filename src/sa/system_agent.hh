/**
 * @file
 * System Agent: the centralized interconnect of the handheld SoC.
 *
 * Every byte that moves on the platform crosses the SA: CPU/IP DMA to
 * DRAM, and (in chained modes) IP-to-IP sub-frame forwarding plus the
 * low-bandwidth flow-control credit signals.  The SA is modelled as a
 * single shared link with a fixed bandwidth and per-hop latency;
 * transfers serialize on it, which is exactly the shared-conduit
 * contention the paper describes.
 */

#ifndef VIP_SA_SYSTEM_AGENT_HH
#define VIP_SA_SYSTEM_AGENT_HH

#include <functional>

#include "fault/fault_injector.hh"
#include "mem/memory_controller.hh"
#include "power/energy_account.hh"
#include "sim/sim_object.hh"
#include "stats/stats.hh"

namespace vip
{

/** System Agent configuration. */
struct SaConfig
{
    /** Link bandwidth, bytes per ns (default 32 GB/s). */
    double bytesPerNs = 32.0;
    /** Per-hop latency added to every transfer. */
    Tick hopLatency = fromNs(40);
    /** Latency of a credit/doorbell signal (no bandwidth charged). */
    Tick signalLatency = fromNs(20);
    SaPowerParams power{};
};

/** The central interconnect and controller. */
class SystemAgent : public SimObject
{
  public:
    using Callback = std::function<void()>;

    SystemAgent(System &system, std::string name, const SaConfig &cfg,
                MemoryController &mem, EnergyLedger &ledger,
                FaultInjector *faults = nullptr);

    /**
     * DMA a transaction to/from DRAM.  Charges SA occupancy for the
     * payload, then issues the DRAM access; req.onComplete fires when
     * the DRAM transaction finishes.
     */
    void memoryAccess(MemRequest req);

    /**
     * Forward @p bytes from one IP's output to another IP's input
     * lane (IP-to-IP communication).  @p on_delivered fires when the
     * payload has crossed the SA.  No DRAM involvement.
     */
    void peerTransfer(std::uint32_t bytes, Callback on_delivered);

    /**
     * Deliver a low-bandwidth signal (flow-control credit, hardware
     * doorbell between chained IPs).  Only latency, no occupancy.
     */
    void signal(Callback on_delivered);

    const SaConfig &config() const { return _cfg; }
    MemoryController &memory() { return _mem; }

    std::uint64_t bytesMoved() const { return _bytesMoved; }
    std::uint64_t peerBytes() const { return _peerBytes; }
    std::uint64_t signalsSent() const { return _signals; }

    /** CRC-failed payload crossings that were retransmitted. */
    std::uint64_t transferRetries() const { return _xferRetries; }

    /** @{ Byte ledger: accepted == delivered + in flight. */
    /** Payload bytes handed to the SA for transfer. */
    std::uint64_t bytesAccepted() const { return _bytesAccepted; }
    /** Payload bytes whose delivery callback has fired. */
    std::uint64_t bytesDelivered() const { return _bytesDelivered; }
    /** Payload bytes currently crossing the link. */
    std::uint64_t bytesInFlight() const { return _bytesInFlight; }
    /** Bytes re-serialized on the link by CRC retransmissions. */
    std::uint64_t bytesRetransmitted() const
    {
        return _bytesRetransmitted;
    }
    /** @} */

    /** Fraction of elapsed time the link was busy. */
    double utilization() const;

    /** Cumulative link-busy time (metrics sampler). */
    Tick busyTicks() const { return _busyTicks; }

    stats::Group &statsGroup() { return _stats; }

    void finalize() override;
    void registerStats(StatRegistry &registry) override;

    /** @{ Auditable */
    void auditInvariants(AuditContext &ctx) const override;
    void stateDigest(StateDigest &d) const override;
    /** @} */

    /**
     * True when no payload is crossing the link and no signal
     * delivery is pending — the SA owns no re-creatable events, so a
     * checkpoint here captures it with plain counters.
     */
    bool
    quiescent() const
    {
        return _bytesInFlight == 0 && _signalsInFlight == 0;
    }

    /** @{ Serializable */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

  private:
    /** Charge occupancy for @p bytes; returns the delivery tick. */
    Tick occupy(std::uint32_t bytes);

    /**
     * Move @p bytes across the link, retransmitting (each attempt
     * re-serializes on the link and re-charges energy) while the
     * injector flags the payload's CRC bad, bounded by the plan's
     * transfer retry budget; then invoke @p done.
     */
    void transferAttempt(std::uint32_t bytes, Callback done,
                         std::uint32_t attempt);

    SaConfig _cfg;
    MemoryController &_mem;
    EnergyAccount &_energy;
    FaultInjector *_faults;

    Tick _busyUntil = 0;
    Tick _busyTicks = 0;

    std::uint64_t _bytesMoved = 0;
    std::uint64_t _peerBytes = 0;
    std::uint64_t _signals = 0;
    std::uint64_t _xferRetries = 0;
    std::uint64_t _bytesAccepted = 0;
    std::uint64_t _bytesDelivered = 0;
    std::uint64_t _bytesInFlight = 0;
    std::uint64_t _bytesRetransmitted = 0;
    /** Signal deliveries scheduled but not yet fired (not digested —
     *  purely a quiescence gate; always 0 at a checkpoint). */
    std::uint64_t _signalsInFlight = 0;

    // ---- observability (tracer string ids; never digested) ----
    std::uint32_t _obsTrkLink = 0;
    std::uint32_t _obsNmXfer = 0;
    std::uint32_t _obsNmRetx = 0;

    stats::Group _stats;
    stats::Scalar _statMemXfers;
    stats::Scalar _statPeerXfers;
    stats::Scalar _statXferRetries;
};

} // namespace vip

#endif // VIP_SA_SYSTEM_AGENT_HH
