#include "sa/system_agent.hh"

#include <algorithm>
#include <memory>

#include "obs/latency.hh"
#include "obs/stat_registry.hh"
#include "obs/tracer.hh"
#include "sim/system.hh"

namespace vip
{

SystemAgent::SystemAgent(System &system, std::string name,
                         const SaConfig &cfg, MemoryController &mem,
                         EnergyLedger &ledger, FaultInjector *faults)
    : SimObject(system, std::move(name)),
      _cfg(cfg),
      _mem(mem),
      _energy(ledger.account("sa", this->name())),
      _faults(faults),
      _stats(this->name()),
      _statMemXfers(_stats, "memTransfers", "DMA transactions routed"),
      _statPeerXfers(_stats, "peerTransfers",
                     "IP-to-IP sub-frames routed"),
      _statXferRetries(_stats, "transferRetries",
                       "CRC-failed transfers retransmitted")
{
    vip_assert(cfg.bytesPerNs > 0.0, "SA bandwidth must be positive");
    _energy.setPower(cfg.power.staticWatts, 0);
}

Tick
SystemAgent::occupy(std::uint32_t bytes)
{
    Tick now = curTick();
    Tick start = std::max(now, _busyUntil);
    Tick duration =
        fromNs(static_cast<double>(bytes) / _cfg.bytesPerNs);
    _busyUntil = start + duration;
    _busyTicks += duration;
    _bytesMoved += bytes;
    _energy.addDynamicNj(_cfg.power.energyPerByteNj * bytes);
    return _busyUntil + _cfg.hopLatency;
}

void
SystemAgent::transferAttempt(std::uint32_t bytes, Callback done,
                             std::uint32_t attempt)
{
    if (attempt == 0) {
        _bytesAccepted += bytes;
        _bytesInFlight += bytes;
    } else {
        _bytesRetransmitted += bytes;
    }
    Tick ob_start = std::max(curTick(), _busyUntil);
    Tick delivered = occupy(bytes);
    // The link-serialization window is [ob_start, _busyUntil]; the
    // hop latency after it is propagation, not occupancy.
    Tick ob_end = delivered - _cfg.hopLatency;
    if (Tracer *tr = system().tracer();
        tr && tr->enabled(TraceCat::Sa)) {
        if (!_obsTrkLink) {
            _obsTrkLink = tr->intern(name() + ".link");
            _obsNmXfer = tr->intern("xfer");
            _obsNmRetx = tr->intern("retransmit");
        }
        tr->complete(TraceCat::Sa, _obsTrkLink,
                     attempt == 0 ? _obsNmXfer : _obsNmRetx,
                     ob_start, ob_end, -1, -1, -1,
                     static_cast<double>(bytes));
    }
    if (LatencyCollector *lc = system().latency())
        lc->recordSaTransfer(ob_end > ob_start ? ob_end - ob_start : 0);
    schedule(delivered,
             [this, bytes, done = std::move(done), attempt]() mutable {
        // CRC over the payload is checked at the receiving end; a bad
        // transfer is retransmitted (serializing on the link again)
        // until the retry budget runs out, after which the payload is
        // passed along anyway -- the damage then surfaces as a
        // sub-frame corruption at the consuming IP.
        if (_faults &&
            attempt < _faults->plan().maxTransferRetries &&
            _faults->injectTransferError()) {
            ++_xferRetries;
            ++_statXferRetries;
            _faults->noteTransferRetry();
            transferAttempt(bytes, std::move(done), attempt + 1);
            return;
        }
        _bytesDelivered += bytes;
        vip_assert(_bytesInFlight >= bytes,
                   "SA byte ledger underflow on ", name());
        _bytesInFlight -= bytes;
        done();
    }, EventPriority::Default, "sa.transfer");
}

void
SystemAgent::memoryAccess(MemRequest req)
{
    ++_statMemXfers;
    auto r = std::make_shared<MemRequest>(std::move(req));
    transferAttempt(r->bytes,
                    [this, r] { _mem.access(std::move(*r)); }, 0);
}

void
SystemAgent::peerTransfer(std::uint32_t bytes, Callback on_delivered)
{
    ++_statPeerXfers;
    _peerBytes += bytes;
    transferAttempt(bytes, std::move(on_delivered), 0);
}

void
SystemAgent::signal(Callback on_delivered)
{
    ++_signals;
    ++_signalsInFlight;
    scheduleIn(_cfg.signalLatency,
               [this, cb = std::move(on_delivered)] {
        --_signalsInFlight;
        cb();
    }, EventPriority::Default, "sa.signal");
}

double
SystemAgent::utilization() const
{
    Tick now = curTick();
    if (now == 0)
        return 0.0;
    Tick busy = std::min(_busyTicks, now);
    return static_cast<double>(busy) / static_cast<double>(now);
}

void
SystemAgent::finalize()
{
    _energy.close(curTick());
}

void
SystemAgent::registerStats(StatRegistry &r)
{
    r.addExact("sa.bytes_moved", "payload bytes serialized on the "
               "link (incl. retransmissions)", "bytes",
               [this] { return double(_bytesMoved); });
    r.addExact("sa.bytes_forwarded", "IP-to-IP peer-transfer bytes",
               "bytes", [this] { return double(_peerBytes); });
    r.addExact("sa.bytes_accepted", "payload bytes handed to the SA",
               "bytes", [this] { return double(_bytesAccepted); });
    r.addExact("sa.bytes_delivered", "payload bytes delivered",
               "bytes", [this] { return double(_bytesDelivered); });
    r.addExact("sa.bytes_retransmitted", "bytes re-serialized by CRC "
               "retransmissions", "bytes",
               [this] { return double(_bytesRetransmitted); });
    r.addExact("sa.signals", "low-bandwidth signals delivered", "",
               [this] { return double(_signals); });
    r.addExact("sa.transfer_retries", "CRC-failed crossings "
               "retransmitted", "",
               [this] { return double(_xferRetries); });
    r.addTiming("sa.busy_ms", "link-busy time", "ms",
                [this] { return toMs(_busyTicks); });
    r.addTiming("sa.utilization", "fraction of time the link was "
                "busy", "ratio", [this] { return utilization(); });
}

void
SystemAgent::auditInvariants(AuditContext &ctx) const
{
    // Payload conservation across the link.
    ctx.checkEq("sa.byte_conservation", _bytesAccepted,
                _bytesDelivered + _bytesInFlight,
                "accepted != delivered + in flight");
    // Every byte charged to the link is a first attempt or a
    // retransmission -- nothing moves uncounted.
    ctx.checkEq("sa.link_accounting", _bytesMoved,
                _bytesAccepted + _bytesRetransmitted,
                "link bytes != accepted + retransmitted");
    ctx.checkLe("sa.peer_subset", _peerBytes, _bytesAccepted,
                "peer bytes exceed total accepted");
}

void
SystemAgent::stateDigest(StateDigest &d) const
{
    d.add(name());
    d.add(static_cast<std::uint64_t>(_busyUntil));
    d.add(static_cast<std::uint64_t>(_busyTicks));
    d.add(_bytesMoved);
    d.add(_peerBytes);
    d.add(_signals);
    d.add(_xferRetries);
    d.add(_bytesAccepted);
    d.add(_bytesDelivered);
    d.add(_bytesInFlight);
    d.add(_bytesRetransmitted);
}

void
SystemAgent::saveState(SnapshotWriter &w) const
{
    vip_assert(quiescent(),
               "checkpointing the SA with payload or signals in "
               "flight");
    w.tick(_busyUntil);
    w.tick(_busyTicks);
    w.u64(_bytesMoved);
    w.u64(_peerBytes);
    w.u64(_signals);
    w.u64(_xferRetries);
    w.u64(_bytesAccepted);
    w.u64(_bytesDelivered);
    w.u64(_bytesInFlight);
    w.u64(_bytesRetransmitted);
    _stats.saveState(w);
}

void
SystemAgent::loadState(SnapshotReader &r)
{
    _busyUntil = r.tick();
    _busyTicks = r.tick();
    _bytesMoved = r.u64();
    _peerBytes = r.u64();
    _signals = r.u64();
    _xferRetries = r.u64();
    _bytesAccepted = r.u64();
    _bytesDelivered = r.u64();
    _bytesInFlight = r.u64();
    _bytesRetransmitted = r.u64();
    _stats.loadState(r);
}

} // namespace vip
