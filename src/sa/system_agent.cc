#include "sa/system_agent.hh"

#include <algorithm>

namespace vip
{

SystemAgent::SystemAgent(System &system, std::string name,
                         const SaConfig &cfg, MemoryController &mem,
                         EnergyLedger &ledger)
    : SimObject(system, std::move(name)),
      _cfg(cfg),
      _mem(mem),
      _energy(ledger.account("sa", this->name())),
      _stats(this->name()),
      _statMemXfers(_stats, "memTransfers", "DMA transactions routed"),
      _statPeerXfers(_stats, "peerTransfers",
                     "IP-to-IP sub-frames routed")
{
    vip_assert(cfg.bytesPerNs > 0.0, "SA bandwidth must be positive");
    _energy.setPower(cfg.power.staticWatts, 0);
}

Tick
SystemAgent::occupy(std::uint32_t bytes)
{
    Tick now = curTick();
    Tick start = std::max(now, _busyUntil);
    Tick duration =
        fromNs(static_cast<double>(bytes) / _cfg.bytesPerNs);
    _busyUntil = start + duration;
    _busyTicks += duration;
    _bytesMoved += bytes;
    _energy.addDynamicNj(_cfg.power.energyPerByteNj * bytes);
    return _busyUntil + _cfg.hopLatency;
}

void
SystemAgent::memoryAccess(MemRequest req)
{
    ++_statMemXfers;
    Tick delivered = occupy(req.bytes);
    schedule(delivered, [this, req = std::move(req)]() mutable {
        _mem.access(std::move(req));
    });
}

void
SystemAgent::peerTransfer(std::uint32_t bytes, Callback on_delivered)
{
    ++_statPeerXfers;
    _peerBytes += bytes;
    Tick delivered = occupy(bytes);
    schedule(delivered, std::move(on_delivered));
}

void
SystemAgent::signal(Callback on_delivered)
{
    ++_signals;
    scheduleIn(_cfg.signalLatency, std::move(on_delivered));
}

double
SystemAgent::utilization() const
{
    Tick now = curTick();
    if (now == 0)
        return 0.0;
    Tick busy = std::min(_busyTicks, now);
    return static_cast<double>(busy) / static_cast<double>(now);
}

void
SystemAgent::finalize()
{
    _energy.close(curTick());
}

} // namespace vip
