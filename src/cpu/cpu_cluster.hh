/**
 * @file
 * CPU cluster: the 4-core host processor (Table 3).
 *
 * Tasks are load-balanced across cores the way the Android scheduler
 * spreads driver threads; interrupts go to the least-loaded awake core
 * (waking a sleeping core only when all are asleep), mimicking IRQ
 * balancing.
 */

#ifndef VIP_CPU_CPU_CLUSTER_HH
#define VIP_CPU_CPU_CLUSTER_HH

#include <memory>
#include <vector>

#include "cpu/cpu_core.hh"

namespace vip
{

/** The host CPU complex. */
class CpuCluster : public Auditable
{
  public:
    CpuCluster(System &system, const std::string &name,
               const CpuConfig &cfg, std::uint32_t cores,
               EnergyLedger &ledger);

    /** Run @p task on the least-loaded core. */
    void dispatch(CpuTask task);

    /** Deliver an interrupt. */
    void interrupt(CpuTask isr);

    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(_cores.size());
    }

    CpuCore &core(std::uint32_t i) { return *_cores.at(i); }

    /** @{ Aggregates across cores. */
    Tick totalActiveTicks() const;
    Tick totalSleepTicks() const;
    std::uint64_t totalInstructions() const;
    std::uint64_t totalInterrupts() const;
    /** @} */

    /** @{ Auditable (delegates to every core) */
    void auditInvariants(AuditContext &ctx) const override;
    void stateDigest(StateDigest &d) const override;
    /** @} */

    /** True when every core is quiescent (checkpointing). */
    bool
    quiescent() const
    {
        for (const auto &c : _cores) {
            if (!c->quiescent())
                return false;
        }
        return true;
    }

    /** @{ Serializable: the round-robin cursor plus every core. */
    void
    saveState(SnapshotWriter &w) const
    {
        w.u64(_rr);
        for (const auto &c : _cores)
            c->saveState(w);
    }

    void
    loadState(SnapshotReader &r)
    {
        _rr = r.u64();
        for (auto &c : _cores)
            c->loadState(r);
    }
    /** @} */

  private:
    CpuCore &pickForTask();
    CpuCore &pickForInterrupt();

    std::vector<std::unique_ptr<CpuCore>> _cores;
    std::size_t _rr = 0;
};

} // namespace vip

#endif // VIP_CPU_CPU_CLUSTER_HH
