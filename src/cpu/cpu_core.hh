/**
 * @file
 * Activity-based in-order CPU core model.
 *
 * The paper's CPU involvement is software-stack work: driver setup per
 * frame, interrupt service routines, app-level frame preparation.  We
 * model the core at task granularity: a task is a number of
 * instructions executed at a fixed IPC.  The core has a three-state
 * power model (active / idle / deep-sleep) with a timeout-driven sleep
 * governor and a wake latency — which is exactly the mechanism frame
 * bursts exploit to save energy (Fig 16).
 */

#ifndef VIP_CPU_CPU_CORE_HH
#define VIP_CPU_CPU_CORE_HH

#include <deque>
#include <functional>
#include <vector>

#include "power/energy_account.hh"
#include "power/power_params.hh"
#include "sim/clocked.hh"
#include "stats/stats.hh"

namespace vip
{

class Tracer;

/** DVFS governor selection. */
enum class CpuGovernor : std::uint8_t
{
    None,     ///< fixed frequency (the paper's platform)
    OnDemand, ///< Linux ondemand-style: scale with utilization
};

/** CPU core configuration (Table 3: ARM, in-order, 1-issue). */
struct CpuConfig
{
    double freqHz = 1.3e9;
    double ipc = 1.0;
    /** Idle time after which the core enters deep sleep. */
    Tick sleepThreshold = fromUs(300);
    /** Latency to wake from deep sleep. */
    Tick wakeLatency = fromUs(60);
    /** Fixed interrupt-entry overhead (context save, vectoring). */
    Tick irqEntryLatency = fromUs(2);

    /** @{ DVFS (extension; CpuGovernor::None reproduces the paper). */
    CpuGovernor governor = CpuGovernor::None;
    /** Frequency steps as fractions of freqHz, ascending. */
    std::vector<double> freqSteps{0.5, 0.75, 1.0, 1.3};
    Tick governorPeriod = fromMs(10);
    double upThreshold = 0.70;   ///< utilization to raise a step
    double downThreshold = 0.25; ///< utilization to drop a step
    /** Active power scales ~ f * V^2 ~ f^powerExponent. */
    double powerExponent = 2.4;
    /** @} */

    CpuPowerParams power{};
};

/** A unit of software work. */
struct CpuTask
{
    std::uint64_t instructions = 0;
    /** True for interrupt service routines (run before queued tasks). */
    bool isr = false;
    std::function<void()> onComplete;
};

/** One in-order core with a task queue and a sleep governor. */
class CpuCore : public ClockedObject
{
  public:
    enum class State
    {
        Active,
        Idle,
        Sleep,
        Waking,
    };

    CpuCore(System &system, std::string name, const CpuConfig &cfg,
            EnergyLedger &ledger);

    /** Enqueue a task; wakes the core if necessary. */
    void dispatch(CpuTask task);

    /**
     * Deliver an interrupt: wakes the core and runs @p isr before any
     * queued normal task.
     */
    void interrupt(CpuTask isr);

    State state() const { return _state; }

    /** Queued + running task count (load metric for the cluster). */
    std::size_t load() const;

    /** @{ Accounting for the evaluation figures. */
    Tick activeTicks() const { return _activeTicks; }
    std::uint64_t instructions() const { return _instructions; }
    std::uint64_t interrupts() const { return _interrupts; }
    Tick sleepTicks() const;
    /** @} */

    const CpuConfig &config() const { return _cfg; }

    stats::Group &statsGroup() { return _stats; }

    /** Current DVFS frequency (Hz). */
    double currentFreqHz() const { return _curFreqHz; }
    /** DVFS steps taken (up + down). */
    std::uint64_t dvfsTransitions() const { return _dvfsTransitions; }

    void startup() override;
    void finalize() override;
    void registerStats(StatRegistry &registry) override;

    /** @{ Auditable */
    void auditInvariants(AuditContext &ctx) const override;
    void stateDigest(StateDigest &d) const override;
    /** @} */

    /**
     * True when the core holds no work: nothing running or queued and
     * not mid-wake.  At such a point its only pending events are the
     * re-armable sleep/governor timers (checkpointing).
     */
    bool
    quiescent() const
    {
        return !_running && _queue.empty() &&
               (_state == State::Idle || _state == State::Sleep);
    }

    /** @{ Serializable */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

  private:
    void enterState(State s);
    void tryStart();
    void finishTask();
    void maybeSleep();
    void sleepTimerFired();
    void governorTick();
    double freqScale() const { return _curFreqHz / _cfg.freqHz; }

    CpuConfig _cfg;
    EnergyAccount &_energy;

    State _state = State::Idle;
    Tick _stateSince = 0;
    std::deque<CpuTask> _queue;
    bool _running = false;
    CpuTask _current;
    EventId _sleepEvent = InvalidEventId;

    Tick _activeTicks = 0;
    Tick _sleepTicks = 0;
    std::uint64_t _instructions = 0;
    std::uint64_t _interrupts = 0;

    // ---- observability (tracer string ids + task start tick;
    //      never digested, never affects behaviour) ----
    Tick _obsTaskStart = 0;
    std::uint32_t _obsTrk = 0;
    std::uint32_t _obsNmTask = 0;
    std::uint32_t _obsNmIsr = 0;
    std::uint32_t _obsNmIrq = 0;
    std::uint32_t _obsNmSleep = 0;
    std::uint32_t _obsNmWake = 0;
    void obsIntern(Tracer *tr);

    // DVFS state
    double _curFreqHz = 0.0;
    std::size_t _curStep = 0;
    Tick _lastGovActive = 0;
    std::uint64_t _dvfsTransitions = 0;
    EventId _govEvent = InvalidEventId;

    stats::Group _stats;
    stats::Scalar _statTasks;
    stats::Scalar _statInterrupts;
    stats::TimeWeighted _statUtil;
};

} // namespace vip

#endif // VIP_CPU_CPU_CORE_HH
