#include "cpu/cpu_cluster.hh"

#include <limits>

namespace vip
{

CpuCluster::CpuCluster(System &system, const std::string &name,
                       const CpuConfig &cfg, std::uint32_t cores,
                       EnergyLedger &ledger)
{
    vip_assert(cores > 0, "cluster needs at least one core");
    _cores.reserve(cores);
    for (std::uint32_t i = 0; i < cores; ++i) {
        _cores.push_back(std::make_unique<CpuCore>(
            system, name + ".core" + std::to_string(i), cfg, ledger));
    }
}

CpuCore &
CpuCluster::pickForTask()
{
    // Least-loaded; ties broken round-robin so single-task workloads
    // do not always hammer core 0.
    std::size_t best = 0;
    std::size_t bestLoad = std::numeric_limits<std::size_t>::max();
    for (std::size_t k = 0; k < _cores.size(); ++k) {
        std::size_t i = (_rr + k) % _cores.size();
        std::size_t l = _cores[i]->load();
        if (l < bestLoad) {
            bestLoad = l;
            best = i;
        }
    }
    _rr = (best + 1) % _cores.size();
    return *_cores[best];
}

CpuCore &
CpuCluster::pickForInterrupt()
{
    // Prefer an awake core (no wake latency); among those, least load.
    CpuCore *awake = nullptr;
    std::size_t awakeLoad = std::numeric_limits<std::size_t>::max();
    for (auto &c : _cores) {
        if (c->state() != CpuCore::State::Sleep &&
            c->load() < awakeLoad) {
            awakeLoad = c->load();
            awake = c.get();
        }
    }
    if (awake)
        return *awake;
    return *_cores[0];
}

void
CpuCluster::dispatch(CpuTask task)
{
    pickForTask().dispatch(std::move(task));
}

void
CpuCluster::interrupt(CpuTask isr)
{
    pickForInterrupt().interrupt(std::move(isr));
}

Tick
CpuCluster::totalActiveTicks() const
{
    Tick t = 0;
    for (const auto &c : _cores)
        t += c->activeTicks();
    return t;
}

Tick
CpuCluster::totalSleepTicks() const
{
    Tick t = 0;
    for (const auto &c : _cores)
        t += c->sleepTicks();
    return t;
}

std::uint64_t
CpuCluster::totalInstructions() const
{
    std::uint64_t n = 0;
    for (const auto &c : _cores)
        n += c->instructions();
    return n;
}

std::uint64_t
CpuCluster::totalInterrupts() const
{
    std::uint64_t n = 0;
    for (const auto &c : _cores)
        n += c->interrupts();
    return n;
}

void
CpuCluster::auditInvariants(AuditContext &ctx) const
{
    for (const auto &c : _cores)
        c->auditInvariants(ctx);
}

void
CpuCluster::stateDigest(StateDigest &d) const
{
    d.add(static_cast<std::uint64_t>(_cores.size()));
    for (const auto &c : _cores)
        c->stateDigest(d);
}

} // namespace vip
