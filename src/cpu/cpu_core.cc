#include "cpu/cpu_core.hh"

#include <algorithm>
#include <cmath>

#include "obs/stat_registry.hh"
#include "obs/tracer.hh"
#include "sim/system.hh"

namespace vip
{

void
CpuCore::obsIntern(Tracer *tr)
{
    if (_obsTrk)
        return;
    _obsTrk = tr->intern(name());
    _obsNmTask = tr->intern("task");
    _obsNmIsr = tr->intern("isr");
    _obsNmIrq = tr->intern("irq");
    _obsNmSleep = tr->intern("sleep");
    _obsNmWake = tr->intern("wake");
}

CpuCore::CpuCore(System &system, std::string name, const CpuConfig &cfg,
                 EnergyLedger &ledger)
    : ClockedObject(system, std::move(name), ClockDomain(cfg.freqHz)),
      _cfg(cfg),
      _energy(ledger.account("cpu", this->name())),
      _stats(this->name()),
      _statTasks(_stats, "tasks", "software tasks executed"),
      _statInterrupts(_stats, "interrupts", "interrupts serviced"),
      _statUtil(_stats, "utilization", "1 while running a task")
{
    _energy.setPower(_cfg.power.idleWatts, 0);
    // Start at the nominal step (scale 1.0) when governed, else fixed.
    _curStep = 0;
    _curFreqHz = _cfg.freqHz;
    if (_cfg.governor != CpuGovernor::None) {
        vip_assert(!_cfg.freqSteps.empty(), "governor needs steps");
        for (std::size_t i = 0; i < _cfg.freqSteps.size(); ++i) {
            if (_cfg.freqSteps[i] <= 1.0)
                _curStep = i;
        }
        _curFreqHz = _cfg.freqHz * _cfg.freqSteps[_curStep];
    }
}

void
CpuCore::enterState(State s)
{
    Tick now = curTick();
    if (_state == State::Active)
        _activeTicks += now - _stateSince;
    else if (_state == State::Sleep)
        _sleepTicks += now - _stateSince;

    if (Tracer *tr = system().tracer();
        tr && tr->enabled(TraceCat::Power) && s != _state) {
        obsIntern(tr);
        if (s == State::Sleep)
            tr->instant(TraceCat::Power, _obsTrk, _obsNmSleep, now);
        else if (_state == State::Sleep)
            tr->instant(TraceCat::Power, _obsTrk, _obsNmWake, now);
    }

    _state = s;
    _stateSince = now;

    double watts = 0.0;
    double activeW = _cfg.power.activeWatts *
                     std::pow(freqScale(), _cfg.powerExponent);
    switch (s) {
      case State::Active:
        watts = activeW;
        break;
      case State::Idle:
        watts = _cfg.power.idleWatts;
        break;
      case State::Sleep:
        watts = _cfg.power.sleepWatts;
        break;
      case State::Waking:
        // Waking burns near-active power restoring state.
        watts = activeW;
        break;
    }
    _energy.setPower(watts, now);
    _statUtil.set(s == State::Active ? 1.0 : 0.0, now);
}

std::size_t
CpuCore::load() const
{
    return _queue.size() + (_running ? 1 : 0);
}

void
CpuCore::dispatch(CpuTask task)
{
    if (task.isr)
        _queue.push_front(std::move(task));
    else
        _queue.push_back(std::move(task));

    if (_sleepEvent != InvalidEventId) {
        deschedule(_sleepEvent);
        _sleepEvent = InvalidEventId;
    }

    if (_state == State::Sleep) {
        enterState(State::Waking);
        scheduleIn(_cfg.wakeLatency, [this] {
            vip_assert(_state == State::Waking, "wake from wrong state");
            enterState(State::Idle);
            tryStart();
        }, EventPriority::Default, "cpu.wake");
        return;
    }
    if (_state == State::Waking)
        return; // will start when awake
    tryStart();
}

void
CpuCore::interrupt(CpuTask isr)
{
    ++_interrupts;
    ++_statInterrupts;
    if (Tracer *tr = system().tracer();
        tr && tr->enabled(TraceCat::Cpu)) {
        obsIntern(tr);
        tr->instant(TraceCat::Cpu, _obsTrk, _obsNmIrq, curTick());
    }
    isr.isr = true;
    isr.instructions += static_cast<std::uint64_t>(
        toSec(_cfg.irqEntryLatency) * _cfg.freqHz * _cfg.ipc);
    dispatch(std::move(isr));
}

void
CpuCore::tryStart()
{
    if (_running || _queue.empty() || _state == State::Waking ||
        _state == State::Sleep) {
        if (!_running && _queue.empty())
            maybeSleep();
        return;
    }

    _running = true;
    _current = std::move(_queue.front());
    _queue.pop_front();
    _obsTaskStart = curTick();
    enterState(State::Active);

    double ips = _curFreqHz * _cfg.ipc;
    Tick duration = fromSec(
        static_cast<double>(_current.instructions) / ips);
    // Even a trivial task costs one cycle.
    duration = std::max<Tick>(duration, clock().period());

    scheduleIn(duration, [this] { finishTask(); },
               EventPriority::Default, "cpu.task");
}

void
CpuCore::finishTask()
{
    vip_assert(_running, "finishTask with no running task");
    _instructions += _current.instructions;
    _energy.addDynamicNj(_cfg.power.energyPerInstrNj *
                         static_cast<double>(_current.instructions));
    ++_statTasks;

    if (Tracer *tr = system().tracer();
        tr && tr->enabled(TraceCat::Cpu)) {
        obsIntern(tr);
        tr->complete(TraceCat::Cpu, _obsTrk,
                     _current.isr ? _obsNmIsr : _obsNmTask,
                     _obsTaskStart, curTick(), -1, -1, -1,
                     static_cast<double>(_current.instructions));
    }

    auto cb = std::move(_current.onComplete);
    _running = false;
    enterState(State::Idle);

    if (cb)
        cb();

    if (!_queue.empty())
        tryStart();
    else
        maybeSleep();
}

void
CpuCore::startup()
{
    // A core that never received work still enters deep sleep after
    // the governor threshold.
    maybeSleep();
    if (_cfg.governor == CpuGovernor::OnDemand) {
        _lastGovActive = _activeTicks;
        _govEvent = scheduleIn(_cfg.governorPeriod,
                               [this] { governorTick(); },
                               EventPriority::Stats, "cpu.gov");
    }
}

void
CpuCore::governorTick()
{
    // Utilization over the last window (include the running segment).
    Tick active = _activeTicks;
    if (_state == State::Active)
        active += curTick() - _stateSince;
    double util = static_cast<double>(active - _lastGovActive) /
                  static_cast<double>(_cfg.governorPeriod);
    _lastGovActive = active;

    std::size_t step = _curStep;
    if (util > _cfg.upThreshold &&
        step + 1 < _cfg.freqSteps.size()) {
        ++step;
    } else if (util < _cfg.downThreshold && step > 0) {
        --step;
    }
    if (step != _curStep) {
        _curStep = step;
        _curFreqHz = _cfg.freqHz * _cfg.freqSteps[step];
        ++_dvfsTransitions;
        // Re-apply the current state's power at the new voltage/freq.
        enterState(_state);
    }
    _govEvent = scheduleIn(_cfg.governorPeriod,
                           [this] { governorTick(); },
                           EventPriority::Stats, "cpu.gov");
}

void
CpuCore::maybeSleep()
{
    if (_state != State::Idle || _sleepEvent != InvalidEventId)
        return;
    _sleepEvent = scheduleIn(_cfg.sleepThreshold,
                             [this] { sleepTimerFired(); },
                             EventPriority::Default, "cpu.sleep");
}

void
CpuCore::sleepTimerFired()
{
    _sleepEvent = InvalidEventId;
    if (_state == State::Idle && !_running && _queue.empty())
        enterState(State::Sleep);
}

Tick
CpuCore::sleepTicks() const
{
    Tick total = _sleepTicks;
    if (_state == State::Sleep)
        total += curTick() - _stateSince;
    return total;
}

void
CpuCore::finalize()
{
    Tick now = curTick();
    if (_state == State::Active)
        _activeTicks += now - _stateSince;
    else if (_state == State::Sleep)
        _sleepTicks += now - _stateSince;
    _stateSince = now;
    _energy.close(now);
    _statUtil.close(now);
}

void
CpuCore::registerStats(StatRegistry &r)
{
    // "soc.cpu.core0" -> "cpu.core0.*"
    std::string p = "cpu." + name().substr(name().rfind('.') + 1);
    r.addExact(p + ".instructions", "instructions retired", "",
               [this] { return double(_instructions); });
    r.addExact(p + ".interrupts", "interrupts serviced", "",
               [this] { return double(_interrupts); });
    r.addExact(p + ".dvfs_transitions", "DVFS steps taken (up+down)",
               "", [this] { return double(_dvfsTransitions); });
    r.addTiming(p + ".active_ms", "time executing tasks", "ms",
                [this] { return toMs(_activeTicks); });
    r.addTiming(p + ".sleep_ms", "time in the sleep state", "ms",
                [this] { return toMs(sleepTicks()); });
}

void
CpuCore::auditInvariants(AuditContext &ctx) const
{
    // Accumulated state time plus the open interval never exceeds
    // elapsed simulated time.
    Tick open = curTick() - _stateSince;
    ctx.checkLe("cpu.time_accounting",
                static_cast<std::uint64_t>(_activeTicks + _sleepTicks +
                                           open),
                static_cast<std::uint64_t>(curTick()),
                "state buckets exceed elapsed time");
    ctx.checkTrue("cpu.run_queue", !_running || _state == State::Active,
                  "task running on a non-active core");
}

void
CpuCore::saveState(SnapshotWriter &w) const
{
    vip_assert(quiescent(), "checkpointing a non-quiescent core ",
               name());
    EventQueue &eq = system().eventq();
    w.u8(static_cast<std::uint8_t>(_state));
    w.tick(_stateSince);
    w.tick(_activeTicks);
    w.tick(_sleepTicks);
    w.u64(_instructions);
    w.u64(_interrupts);
    w.d(_curFreqHz);
    w.u64(_curStep);
    w.tick(_lastGovActive);
    w.u64(_dvfsTransitions);
    // Pending timers: the sleep countdown (idle cores) and the DVFS
    // governor tick.  Ids + fire times; callbacks are re-created.
    bool sleepLive =
        _sleepEvent != InvalidEventId && eq.isLive(_sleepEvent);
    w.b(sleepLive);
    if (sleepLive) {
        w.u64(_sleepEvent);
        w.tick(eq.scheduledWhen(_sleepEvent));
    }
    bool govLive = _govEvent != InvalidEventId && eq.isLive(_govEvent);
    w.b(govLive);
    if (govLive) {
        w.u64(_govEvent);
        w.tick(eq.scheduledWhen(_govEvent));
    }
    _stats.saveState(w);
}

void
CpuCore::loadState(SnapshotReader &r)
{
    EventQueue &eq = system().eventq();
    _state = static_cast<State>(r.u8());
    _stateSince = r.tick();
    _activeTicks = r.tick();
    _sleepTicks = r.tick();
    _instructions = r.u64();
    _interrupts = r.u64();
    _curFreqHz = r.d();
    _curStep = r.u64();
    _lastGovActive = r.tick();
    _dvfsTransitions = r.u64();
    if (r.b()) {
        EventId id = r.u64();
        Tick when = r.tick();
        eq.restoreEvent(id, when, [this] { sleepTimerFired(); },
                        EventPriority::Default, "cpu.sleep");
        _sleepEvent = id;
    } else {
        _sleepEvent = InvalidEventId;
    }
    if (r.b()) {
        EventId id = r.u64();
        Tick when = r.tick();
        eq.restoreEvent(id, when, [this] { governorTick(); },
                        EventPriority::Stats, "cpu.gov");
        _govEvent = id;
    } else {
        _govEvent = InvalidEventId;
    }
    _stats.loadState(r);
    // The restored power level is re-integrated by the energy ledger
    // (serialized separately); nothing to re-apply here.
}

void
CpuCore::stateDigest(StateDigest &d) const
{
    d.add(name());
    d.add(static_cast<std::uint64_t>(_state));
    d.add(static_cast<std::uint64_t>(_stateSince));
    d.add(static_cast<std::uint64_t>(_activeTicks));
    d.add(static_cast<std::uint64_t>(_sleepTicks));
    d.add(_instructions);
    d.add(_interrupts);
    d.add(static_cast<std::uint64_t>(_queue.size()));
    d.add(_running);
    d.add(_curFreqHz);
    d.add(_dvfsTransitions);
}

} // namespace vip
