/**
 * @file
 * The Android-style software stack cost model.
 *
 * All CPU-side work of the frame pipeline funnels through this class:
 * app-level frame preparation, per-IP driver setup, interrupt service
 * routines, chain instantiation and frame-burst scheduling.  Costs
 * are expressed in instructions and executed on the CpuCluster, so
 * they consume real simulated time and energy and contend with each
 * other — which is precisely the overhead the paper measures in
 * Figs 2 and 16.
 *
 * The stack also owns the software-visible per-IP request queues: the
 * hardware queue is depth-limited (7 on the Nexus 7, Section 2.2), so
 * submissions that find it full wait here and retry on drain.
 */

#ifndef VIP_DRIVER_SOFTWARE_STACK_HH
#define VIP_DRIVER_SOFTWARE_STACK_HH

#include <deque>
#include <functional>
#include <unordered_map>

#include "cpu/cpu_cluster.hh"
#include "ip/ip_core.hh"

namespace vip
{

/** Software cost model (instructions per operation). */
struct DriverCosts
{
    /** One driver invocation: buffers, pointers, IP doorbell. */
    std::uint64_t driverSetupInstr = 800'000;
    /** Interrupt service routine + callback into the framework. */
    std::uint64_t isrInstr = 350'000;
    /** open(): instantiate a virtual IP chain (once per flow). */
    std::uint64_t chainOpenInstr = 1'500'000;
    /** Per-frame super-request setup (IP-to-IP without bursts). */
    std::uint64_t chainSetupInstr = 1'400'000;
    /** Schedule_FrameBurst() fixed part. */
    std::uint64_t burstSetupBaseInstr = 1'000'000;
    /** Schedule_FrameBurst() per-frame part (chunk/time arrays). */
    std::uint64_t burstSetupPerFrameInstr = 150'000;
    /** Admission control at open(): per-IP capacity bookkeeping. */
    std::uint64_t admissionInstr = 200'000;
};

/** The host software stack. */
class SoftwareStack
{
  public:
    using Callback = std::function<void()>;

    SoftwareStack(CpuCluster &cpus, const DriverCosts &costs)
        : _cpus(cpus), _costs(costs)
    {}

    const DriverCosts &costs() const { return _costs; }
    CpuCluster &cpus() { return _cpus; }

    /** Run @p instructions of software work, then @p done. */
    void
    runTask(std::uint64_t instructions, Callback done)
    {
        CpuTask t;
        t.instructions = instructions;
        t.onComplete = std::move(done);
        _cpus.dispatch(std::move(t));
    }

    /**
     * Charge the admission-control bookkeeping the driver runs at
     * open() before any chain is instantiated (the feasibility math
     * itself lives in ChainManager::checkAdmission).
     */
    void
    runAdmissionCheck(Callback done)
    {
        runTask(_costs.admissionInstr, std::move(done));
    }

    /** Deliver an IP completion interrupt; ISR runs, then @p done. */
    void
    raiseInterrupt(Callback done)
    {
        CpuTask t;
        t.instructions = _costs.isrInstr;
        t.onComplete = std::move(done);
        _cpus.interrupt(std::move(t));
    }

    /**
     * Submit a job to an IP's hardware queue, waiting in the software
     * queue when the hardware one is full.  Per-IP order preserved.
     */
    void submitWithRetry(IpCore &ip, StageJob job);

    /** Jobs waiting in software for @p ip's hardware queue. */
    std::size_t softwareQueueLength(const IpCore &ip) const;

    /** Jobs waiting in software across every IP (checkpointing). */
    std::size_t
    totalQueued() const
    {
        std::size_t n = 0;
        for (const auto &[ip, q] : _waiting)
            n += q.size();
        return n;
    }

  private:
    void drain(IpCore *ip);

    CpuCluster &_cpus;
    DriverCosts _costs;
    std::unordered_map<IpCore *, std::deque<StageJob>> _waiting;
};

} // namespace vip

#endif // VIP_DRIVER_SOFTWARE_STACK_HH
