#include "driver/software_stack.hh"

namespace vip
{

void
SoftwareStack::submitWithRetry(IpCore &ip, StageJob job)
{
    auto &q = _waiting[&ip];
    if (q.empty() && !ip.queueFull()) {
        bool ok = ip.submitJob(std::move(job));
        vip_assert(ok, "submit failed on non-full queue");
        return;
    }

    if (q.empty()) {
        // First waiter for this IP: hook the drain callback.
        ip.setQueueDrainCb([this, ipp = &ip] { drain(ipp); });
    }
    q.push_back(std::move(job));
}

std::size_t
SoftwareStack::softwareQueueLength(const IpCore &ip) const
{
    auto it = _waiting.find(const_cast<IpCore *>(&ip));
    return it == _waiting.end() ? 0 : it->second.size();
}

void
SoftwareStack::drain(IpCore *ip)
{
    auto it = _waiting.find(ip);
    if (it == _waiting.end())
        return;
    auto &q = it->second;
    while (!q.empty() && !ip->queueFull()) {
        StageJob j = std::move(q.front());
        q.pop_front();
        bool ok = ip->submitJob(std::move(j));
        vip_assert(ok, "submit failed on non-full queue");
    }
}

} // namespace vip
