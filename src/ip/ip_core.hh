/**
 * @file
 * The IP core model — an accelerator with two operating interfaces.
 *
 * **Job mode** (Baseline / FrameBurst): the driver enqueues StageJobs
 * into a depth-limited hardware queue.  The engine processes one job
 * at a time as a pipeline of DMA-chunk work units: prefetch reads from
 * DRAM (bounded outstanding), compute, write back to DRAM, then fire
 * the job's completion continuation (CPU interrupt or hardware
 * doorbell).
 *
 * **Stream mode** (IP-to-IP / VIP): the IP exposes lane buffers — an
 * input and an output buffer per lane, as in Fig 13.  Each lane is
 * bound to one flow and connected to a downstream IP's lane.  Frames
 * are *announced* per stage (the header-packet context: input bytes,
 * output bytes, deadline, transaction boundary) and then their data
 * streams through as anonymous in-order bytes.  The engine consumes
 * sub-frame-sized work units: a unit needs its share of input bytes
 * available and space in the lane's output buffer; an independent
 * per-lane pusher forwards output chunks across the System Agent into
 * the downstream lane under credit-based flow control.  The hardware
 * scheduler picks the next runnable lane (FIFO / RR / EDF); a
 * non-virtualized IP has a single context and may only switch lanes
 * at frame or transaction (burst) boundaries — the head-of-line
 * blocking regime of Fig 7 — while a virtualized IP switches at
 * sub-frame granularity with a small context-switch penalty.
 *
 * The same object integrates its three-state power model (active /
 * stalled / idle) and the lane-buffer access energy through the
 * CACTI-like SramModel.
 *
 * **Fault tolerance**: when a FaultInjector is attached, every compute
 * unit (both modes) may hang the engine or produce a corrupted
 * sub-frame.  A per-IP watchdog detects the silence, resets the
 * engine and retries the unit with exponential backoff; corrupted
 * units are recomputed.  When the retry budget is exhausted the
 * current frame's payload is dropped: the rest of the frame drains as
 * zero-cost passthrough so the chain resynchronizes at the next frame
 * boundary, and the damage surfaces downstream as a late/degraded
 * frame in the QoS stats.
 */

#ifndef VIP_IP_IP_CORE_HH
#define VIP_IP_IP_CORE_HH

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fault/fault_injector.hh"
#include "ip/ip_types.hh"
#include "ip/work.hh"
#include "power/energy_account.hh"
#include "power/sram_model.hh"
#include "sa/system_agent.hh"
#include "sim/clocked.hh"
#include "stats/stats.hh"

namespace vip
{

class Tracer;

/** One accelerator of the SoC. */
class IpCore : public ClockedObject
{
  public:
    /** Callback for sink lanes: (flowId, frameId) fully consumed. */
    using FrameExitFn = std::function<void(FlowId, std::uint64_t)>;
    /** Callback when a fed frame's first chunk arrives. */
    using FrameStartFn = std::function<void(FlowId, std::uint64_t)>;

    IpCore(System &system, std::string name, const IpParams &params,
           SystemAgent &sa, EnergyLedger &ledger,
           FaultInjector *faults = nullptr);

    const IpParams &params() const { return _p; }
    IpKind kind() const { return _p.kind; }

    /** @{ -------------------- Job mode -------------------- */

    /**
     * Enqueue a job.
     * @return false when the hardware queue is full (the Nexus-7
     *         depth-7 limit); the driver must retry later.
     */
    bool submitJob(StageJob job);

    /** Queued (not yet started) jobs. */
    std::size_t queueLength() const { return _jobs.size(); }

    bool queueFull() const { return _jobs.size() >= _p.hwQueueDepth; }

    /**
     * Register a callback invoked whenever a job completes; the driver
     * uses it to retry blocked submissions.
     */
    void setQueueDrainCb(std::function<void()> cb)
    {
        _queueDrainCb = std::move(cb);
    }

    /** @} */

    /** @{ ------------------- Stream mode ------------------ */

    /**
     * Bind a free lane to @p flow.
     * @return lane index, or -1 when every lane is taken.
     */
    int bindLane(FlowId flow);

    /** Release a lane (chain teardown); the lane must be drained. */
    void unbindLane(int lane);

    /** Number of lanes currently bound. */
    std::uint32_t boundLanes() const;

    std::uint32_t numLanes() const
    {
        return static_cast<std::uint32_t>(_lanes.size());
    }

    /** Route a lane's output into @p next's lane @p next_lane. */
    void connectLane(int lane, IpCore *next, int next_lane);

    /** Mark a lane as terminal: data is consumed here (sink IP). */
    void makeLaneSink(int lane, FrameExitFn on_exit);

    /** Observe the first fed chunk of every frame on @p lane. */
    void setLaneFrameStartCb(int lane, FrameStartFn cb);

    /**
     * Announce a frame's per-stage context (distributed via the
     * header packet): how many bytes enter this stage, how many it
     * produces, the QoS deadline (EDF key) and whether the frame
     * closes its transaction (single frame, or last frame of a
     * burst — the boundary at which a single-context IP may switch).
     * Frames on a lane are processed in announcement order.
     */
    void announceFrame(int lane, std::uint64_t frame_id,
                       std::uint64_t in_bytes, std::uint64_t out_bytes,
                       Tick deadline, bool txn_end);

    /**
     * Feed a frame's input data into a head-of-chain lane.  The frame
     * must have been announced first.
     * @param generate  true for sensor sources (camera/mic).
     * @param gen_span  sensor readout span for generated frames.
     */
    void feedFrame(int lane, std::uint64_t frame_id,
                   std::uint64_t bytes, Addr addr, bool generate,
                   Tick gen_span = 0);

    /** True when @p bytes can be accepted into @p lane's input now. */
    bool laneHasSpace(int lane, std::uint32_t bytes) const;

    /** Reserve input space ahead of an SA transfer (producer side). */
    void reserveLaneSpace(int lane, std::uint32_t bytes);

    /** Deliver data into a lane (called after the SA transfer). */
    void deliverBytes(int lane, std::uint32_t bytes);

    /**
     * Register the upstream's retry callback, invoked (via an SA
     * credit signal) when input space frees up in @p lane.
     */
    void setCreditWaiter(int lane, std::function<void()> cb);

    /** Frames announced but not yet fully processed on @p lane. */
    std::size_t laneDepth(int lane) const;

    /** @{ lane-credit introspection (tests, diagnostics) */
    /** Total reserved input bytes (buffered + in-flight + in-use). */
    std::uint64_t laneOccupancy(int lane) const;
    /** Input bytes buffered and ready to consume. */
    std::uint64_t laneInAvail(int lane) const;
    /** @} */

    /** @} */

    /** @{ ------------------- Accounting ------------------- */

    Tick activeTicks() const { return _activeTicks; }
    Tick stallTicks() const { return _stallTicks; }
    /**
     * Time spent backpressured: input ready but no downstream credit.
     * The engine clock-gates (idle power); excluded from both terms
     * of utilization() so memory stalls stay distinguishable.
     */
    Tick bpStallTicks() const { return _bpStallTicks; }

    /**
     * Utilization while busy: active / (active + stalled), the Fig 3b
     * metric (1.0 under ideal memory).
     */
    double utilization() const;

    /** Busy fraction of total time: (active + stall) / elapsed. */
    double dutyCycle() const;

    std::uint64_t jobsCompleted() const { return _jobsCompleted; }
    std::uint64_t subframesProcessed() const { return _subframes; }
    std::uint64_t framesExited() const { return _framesExited; }
    std::uint64_t contextSwitches() const { return _contextSwitches; }
    std::uint64_t bytesProcessed() const { return _bytesProcessed; }
    /** Bytes detoured through DRAM by the overflow-to-memory path. */
    std::uint64_t bytesSpilled() const { return _bytesSpilled; }
    /** Reservations that overran a lane's capacity (must stay 0). */
    std::uint64_t laneOverflows() const { return _laneOverflows; }
    /** Producer pushes deferred for a downstream credit. */
    std::uint64_t creditStalls() const { return _creditStalls; }
    /** @{ Credit ledger: reserved == returned + Σ lane occupancy. */
    std::uint64_t creditsReserved() const { return _creditsReserved; }
    std::uint64_t creditsReturned() const { return _creditsReturned; }
    /** @} */

    /** @{ Fault recovery counters (0 without a FaultInjector). */
    std::uint64_t watchdogResets() const { return _watchdogResets; }
    std::uint64_t unitRetries() const { return _unitRetries; }
    std::uint64_t framesDegraded() const { return _framesDegraded; }

    /**
     * Register a callback fired when a unit's retry budget runs out
     * and the frame's payload is dropped; the platform routes it to
     * the owning flow so the frame counts as a QoS miss.
     */
    using DegradeNotifier = std::function<void(FlowId, std::uint64_t)>;
    void setDegradeNotifier(DegradeNotifier cb)
    {
        _onDegrade = std::move(cb);
    }
    /** @} */

    stats::Group &statsGroup() { return _stats; }

    /**
     * Engine state as a stable numeric code (0 idle, 1 active,
     * 2 stalled, 3 backpressured) for the metrics sampler.
     */
    std::uint32_t
    engineStateCode() const
    {
        return static_cast<std::uint32_t>(_engineState);
    }

    /**
     * One-line occupancy snapshot (engine state, lane depths and
     * buffer fill) for the no-progress guard's diagnostic dump.
     */
    std::string debugState() const;

    /** @} */

    void finalize() override;
    void registerStats(StatRegistry &registry) override;

    /** @{ Auditable */
    void auditInvariants(AuditContext &ctx) const override;
    void stateDigest(StateDigest &d) const override;
    /** @} */

    /**
     * True when the engine holds no job or unit in flight and every
     * lane is drained (no frames, feeds, buffered bytes, outstanding
     * DMA, spills or armed credit waiter) — the IP owns no pending
     * events, so a checkpoint captures it with plain counters plus
     * the lane-binding topology.
     */
    bool quiescent() const;

    /** @{ Serializable */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

  private:
    /** Occupancy/power accounting state. */
    enum class EngineState
    {
        Idle,
        Active,
        Stalled,
        /** Work is input-ready but waits on downstream lane credits. */
        Backpressured,
    };

    /** Announced per-stage frame context (header-packet contents). */
    struct StreamFrame
    {
        std::uint64_t frameId = 0;
        std::uint64_t inBytes = 0;
        std::uint64_t outBytes = 0;
        Tick deadline = MaxTick;
        bool txnEnd = true;
        std::uint64_t units = 1;
        std::uint64_t unitsDone = 0;
        /**
         * Retry budget exhausted on some unit: the payload is lost
         * and the remaining units drain as zero-cost passthrough.
         */
        bool faulted = false;

        /**
         * @{ observability only (latency decomposition); written by
         * the tracing/latency hooks, excluded from stateDigest.
         */
        Tick obsAnnounce = 0;     ///< announceFrame() time
        Tick obsFirstStart = 0;   ///< first unit entered compute
        Tick obsComputeAccum = 0; ///< nominal compute time consumed
        /** @} */

        /** Input bytes unit @p u consumes (fractional distribution). */
        std::uint64_t
        unitIn(std::uint64_t u) const
        {
            return inBytes * (u + 1) / units - inBytes * u / units;
        }

        /** Output bytes unit @p u produces. */
        std::uint64_t
        unitOut(std::uint64_t u) const
        {
            return outBytes * (u + 1) / units - outBytes * u / units;
        }
    };

    /** A head-of-chain input feed (DMA or sensor). */
    struct Feed
    {
        std::uint64_t frameId = 0;
        Addr addr = 0;
        std::uint64_t total = 0;      ///< frame bytes at this stage
        std::uint64_t issued = 0;     ///< bytes issued to DMA/sensor
        std::uint64_t delivered = 0;  ///< bytes delivered, in order
        /** Out-of-order DMA completions awaiting in-order delivery. */
        std::map<std::uint64_t, std::uint32_t> ready;
        bool generate = false;
        Tick genInterval = 0;   ///< sensor pacing between chunks
        bool genArmed = false;  ///< a generation event is scheduled
    };

    struct Lane
    {
        bool bound = false;
        FlowId flow = 0;

        /** @{ input side */
        std::uint64_t occupancy = 0; ///< avail + reserved in-flight
        std::uint64_t inAvail = 0;   ///< bytes ready to consume
        Tick headArrival = MaxTick;  ///< FIFO scheduling key
        std::deque<Feed> feeds;
        std::uint32_t outstandingDma = 0;
        std::function<void()> creditWaiter;
        /** @} */

        /** @{ frame contexts, in order */
        std::deque<StreamFrame> frames;
        /** @} */

        /** @{ output side */
        std::uint64_t outAccum = 0;       ///< partial chunk
        std::deque<std::uint32_t> outQueue;
        std::uint64_t outQueueBytes = 0;
        /** @} */

        /** @{ memory-overflow path (IpParams::overflowToMemory) */
        struct Spill
        {
            Addr addr = 0;
            std::uint32_t bytes = 0;
            bool writeDone = false;
        };
        std::deque<Spill> spillQueue;
        std::uint64_t spillBytes = 0;   ///< queued + in-flight
        bool refillInFlight = false;
        /** @} */

        IpCore *next = nullptr;
        int nextLane = -1;
        bool sink = false;
        FrameExitFn onExit;
        FrameStartFn onFrameStart;

        /** Work exists somewhere (for teardown checks).  Occupancy
         *  covers reserved in-flight deliveries and input held by the
         *  unit in compute, so an unbind cannot race either. */
        bool
        active() const
        {
            return !frames.empty() || !feeds.empty() || inAvail > 0 ||
                   occupancy > 0 || outQueueBytes > 0 || outAccum > 0 ||
                   spillBytes > 0;
        }

        /**
         * Data is buffered and actionable: this burns stall power.
         * Merely waiting for upstream data (empty input) or holding a
         * partial chunk in the output accumulation register lets the
         * engine clock-gate (idle power).
         */
        bool
        hasBufferedWork() const
        {
            return inAvail > 0 || outQueueBytes > 0;
        }
    };

    /** @{ job-mode engine */
    void tryStartJob();
    void issueJobReads();
    void tryComputeJobUnit();
    void onJobUnitComputed();
    void checkJobDone();
    /** @} */

    /** @{ stream-mode engine */
    void pumpFeeds(int lane);
    void onFeedChunkReady(int lane, std::uint64_t offset,
                          std::uint32_t bytes);
    void deliverInOrder(int lane);
    bool laneRunnable(const Lane &l) const;
    int pickLane() const;
    void kickStream();
    void onUnitComputed(int lane);
    void pushOutput(int lane);
    void spillChunk(int lane, std::uint32_t bytes);
    void pumpSpills(int lane);
    /**
     * Consume buffered input for the unit entering compute.  The
     * bytes stay *reserved* (occupancy) until the unit completes or
     * gives up, so a watchdog retry recomputes from input whose
     * buffer space upstream cannot have overwritten.
     */
    void consumeInput(int lane, std::uint64_t bytes);
    /**
     * Return a finished unit's input-buffer credits: drop the
     * reservation, wake the upstream credit waiter (via the SA's
     * latency-modeled signal path) and re-pump head-of-chain feeds.
     */
    void returnLaneCredits(int lane, std::uint64_t bytes);
    /** @} */

    /** @{ fault injection + watchdog recovery (both modes) */
    /**
     * Begin the compute of one unit: the single place every work unit
     * passes through, where hangs are injected and the watchdog is
     * armed.  @p degraded units (frames past their retry budget)
     * complete in zero time with no injection.
     */
    void startUnit(bool stream, int lane, Tick time, bool degraded);
    void armComputeAttempt(Tick extra_delay);
    void armWatchdog(Tick extra_delay);
    void cancelWatchdog();
    void onComputeAttemptDone();
    void onWatchdogTimeout();
    void retryUnit(bool from_reset);
    void giveUpUnit();
    void finishUnit();
    /** @} */

    void updateEngineState();
    void accumulateState(Tick now);
    bool anyWorkPending() const;
    bool outputBlocked(const Lane &l) const;
    bool backpressured() const;

    Tick computeTime(std::uint64_t in_bytes,
                     std::uint64_t out_bytes) const;

    IpParams _p;
    SystemAgent &_sa;
    EnergyAccount &_energy;
    EnergyAccount &_bufferEnergy;
    FaultInjector *_faults;

    // ---- unit-in-flight fault/watchdog state (either mode) ----
    bool _unitStream = false;     ///< stream vs job mode unit
    int _unitLane = -1;           ///< lane of a stream unit
    Tick _unitTime = 0;           ///< nominal compute time
    Tick _unitStart = 0;          ///< first attempt began
    std::uint32_t _unitAttempts = 0; ///< retries so far
    bool _unitDegraded = false;   ///< passthrough drain, no injection
    std::uint64_t _unitInBytes = 0; ///< input credits held by the unit
    EventId _computeEvent = InvalidEventId;
    EventId _watchdogEvent = InvalidEventId;
    bool _jobFaulted = false;     ///< current job past its budget
    DegradeNotifier _onDegrade;

    // ---- job mode state ----
    std::deque<StageJob> _jobs;
    bool _jobActive = false;
    StageJob _job;
    std::uint64_t _unitsTotal = 0;
    std::uint64_t _unitsIssued = 0;   ///< reads issued
    std::uint64_t _unitsReady = 0;    ///< reads completed, compute pending
    std::uint64_t _unitsComputed = 0;
    std::uint64_t _writesDone = 0;
    std::uint32_t _readsOutstanding = 0;
    Tick _jobStartTick = 0;
    bool _computing = false;          ///< engine busy (either mode)
    std::function<void()> _queueDrainCb;

    // ---- stream mode state ----
    std::vector<Lane> _lanes;
    int _currentLane = -1;
    /**
     * Lane the single context is committed to until the boundary of
     * its current frame/transaction (-1 when free to switch).
     * Always -1 for Subframe granularity.
     */
    int _stickyLane = -1;

    // ---- accounting ----
    EngineState _engineState = EngineState::Idle;
    Tick _stateSince = 0;
    Tick _activeTicks = 0;
    Tick _stallTicks = 0;
    Tick _bpStallTicks = 0;
    std::uint64_t _jobsCompleted = 0;
    std::uint64_t _subframes = 0;
    std::uint64_t _framesExited = 0;
    std::uint64_t _contextSwitches = 0;
    std::uint64_t _bytesProcessed = 0;
    std::uint64_t _bytesSpilled = 0;
    std::uint64_t _laneOverflows = 0;
    std::uint64_t _creditStalls = 0;
    std::uint64_t _creditsReserved = 0;
    std::uint64_t _creditsReturned = 0;
    std::uint64_t _watchdogResets = 0;
    std::uint64_t _unitRetries = 0;
    std::uint64_t _framesDegraded = 0;
    Addr _spillNext = 0; ///< bump pointer into the spill region

    // ---- observability (tracer string ids + latency accumulation;
    //      never digested, never affects behaviour) ----
    std::uint32_t _obsTrkEngine = 0; ///< "<name>.engine" state track
    std::uint32_t _obsTrkExec = 0;   ///< "<name>.exec" unit track
    std::uint32_t _obsNmActive = 0;
    std::uint32_t _obsNmStalled = 0;
    std::uint32_t _obsNmBp = 0;
    std::uint32_t _obsNmUnit = 0;
    std::uint32_t _obsNmStageDone = 0;
    std::uint32_t _obsNmStageAnnounce = 0;
    std::uint32_t _obsNmGrant = 0;
    std::uint32_t _obsNmCtxSwitch = 0;
    Tick _obsJobComputeAccum = 0; ///< nominal compute of current job

    /** Lazily intern this IP's track/name ids (tracer non-null). */
    void obsInternIds(Tracer *tr);

    /** Flow/frame of the unit in flight (stream or job), or -1/-1. */
    std::pair<std::int32_t, std::int64_t> obsUnitIdentity() const;

    /** Emit a fault-category instant on this engine's track. */
    void obsFaultInstant(const char *what);

    stats::Group _stats;
    stats::Scalar _statJobs;
    stats::Scalar _statSubframes;
    stats::Scalar _statCtxSwitches;
    stats::Scalar _statResets;
    stats::Scalar _statRetries;
    stats::Scalar _statDegraded;
    stats::Accumulator _statJobLatencyMs;
};

} // namespace vip

#endif // VIP_IP_IP_CORE_HH
