#include "ip/ip_types.hh"

#include "sim/logging.hh"

namespace vip
{

const char *
ipKindName(IpKind k)
{
    switch (k) {
      case IpKind::CPU: return "CPU";
      case IpKind::VD:  return "VD";
      case IpKind::VE:  return "VE";
      case IpKind::GPU: return "GPU";
      case IpKind::DC:  return "DC";
      case IpKind::AD:  return "AD";
      case IpKind::AE:  return "AE";
      case IpKind::CAM: return "CAM";
      case IpKind::MIC: return "MIC";
      case IpKind::IMG: return "IMG";
      case IpKind::NW:  return "NW";
      case IpKind::SND: return "SND";
      case IpKind::MMC: return "MMC";
      default: return "?";
    }
}

bool
ipIsSource(IpKind k)
{
    return k == IpKind::CAM || k == IpKind::MIC;
}

bool
ipIsSink(IpKind k)
{
    return k == IpKind::DC || k == IpKind::NW || k == IpKind::SND ||
           k == IpKind::MMC;
}

const char *
switchGranularityName(SwitchGranularity g)
{
    switch (g) {
      case SwitchGranularity::Subframe: return "subframe";
      case SwitchGranularity::Frame: return "frame";
      case SwitchGranularity::Transaction: return "transaction";
      default: return "?";
    }
}

const char *
schedPolicyName(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::FIFO: return "fifo";
      case SchedPolicy::RoundRobin: return "rr";
      case SchedPolicy::EDF: return "edf";
      default: return "?";
    }
}

IpParams
defaultIpParams(IpKind k)
{
    IpParams p;
    p.kind = k;
    switch (k) {
      case IpKind::VD:
        p.clockHz = 700e6;
        p.bytesPerCycle = 3.5;   // ~2.45 GB/s: 4K YUV in ~5 ms
        p.power.activeWatts = 0.45;
        break;
      case IpKind::VE:
        p.clockHz = 700e6;
        p.bytesPerCycle = 1.8;
        p.power.activeWatts = 0.45;
        break;
      case IpKind::GPU:
        p.clockHz = 520e6;
        p.bytesPerCycle = 3.2;   // ~1.7 GB/s on the output surface
        p.power.activeWatts = 0.55;
        break;
      case IpKind::DC:
        p.clockHz = 400e6;
        p.bytesPerCycle = 6.5;   // ~2.6 GB/s composition + scanout
        break;
      case IpKind::AD:
      case IpKind::AE:
        p.clockHz = 200e6;
        p.bytesPerCycle = 1.0;   // 200 MB/s, audio frames are 16 KB
        break;
      case IpKind::CAM:
        p.clockHz = 500e6;
        p.bytesPerCycle = 2.0;   // sensor readout ~1 GB/s
        break;
      case IpKind::MIC:
        p.clockHz = 100e6;
        p.bytesPerCycle = 1.0;
        break;
      case IpKind::IMG:
        p.clockHz = 600e6;
        p.bytesPerCycle = 2.5;   // ISP ~1.5 GB/s
        break;
      case IpKind::NW:
        p.clockHz = 200e6;
        p.bytesPerCycle = 0.3;   // ~60 MB/s radio
        break;
      case IpKind::SND:
        p.clockHz = 100e6;
        p.bytesPerCycle = 1.0;
        break;
      case IpKind::MMC:
        p.clockHz = 200e6;
        p.bytesPerCycle = 1.0;   // ~200 MB/s eMMC
        break;
      case IpKind::CPU:
      default:
        panic("no hardware params for IP kind ", ipKindName(k));
    }
    // Sinks and sources are lighter engines.
    if (ipIsSink(k) || ipIsSource(k)) {
        p.power.activeWatts = 0.15;
        p.power.stallWatts = 0.06;
    }
    return p;
}

} // namespace vip
