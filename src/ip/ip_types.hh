/**
 * @file
 * IP core taxonomy and per-IP hardware parameters.
 *
 * The IP kinds follow the abbreviations of Table 1 (and GemDroid):
 * VD/VE video decode/encode, GPU, DC display controller, AD/AE audio
 * decode/encode, CAM camera, MIC microphone, IMG imaging/ISP, NW
 * network, SND speaker, MMC flash storage.  "CPU" appears in flow
 * descriptions as the software producer stage and is not a hardware IP.
 */

#ifndef VIP_IP_IP_TYPES_HH
#define VIP_IP_IP_TYPES_HH

#include <cstdint>
#include <string>

#include "power/power_params.hh"
#include "sim/types.hh"

namespace vip
{

/** The IP cores of the platform (Table 1 abbreviations). */
enum class IpKind : std::uint8_t
{
    CPU,  ///< software stage (not a hardware IP)
    VD,   ///< video decoder
    VE,   ///< video encoder
    GPU,  ///< graphics
    DC,   ///< display controller (sink)
    AD,   ///< audio decoder
    AE,   ///< audio encoder
    CAM,  ///< camera sensor + readout (source)
    MIC,  ///< microphone (source)
    IMG,  ///< imaging / ISP
    NW,   ///< network interface (sink)
    SND,  ///< speaker / audio out (sink)
    MMC,  ///< flash storage (sink)
    NumKinds,
};

/** Short name, e.g. "VD". */
const char *ipKindName(IpKind k);

/** True for IPs that generate data without an upstream producer. */
bool ipIsSource(IpKind k);

/** True for IPs that consume data with no downstream consumer. */
bool ipIsSink(IpKind k);

/** Lane scheduling policy of a virtualized IP. */
enum class SchedPolicy : std::uint8_t
{
    FIFO,        ///< oldest queued data first (arrival order)
    RoundRobin,  ///< rotate across lanes
    EDF,         ///< earliest deadline first (the paper's choice)
};

const char *schedPolicyName(SchedPolicy p);

/**
 * How often a stream-mode IP may switch between lanes.  A single-
 * context IP (no virtualization) must drain its current frame -- or,
 * with frame bursts, the whole burst -- before reconfiguring for
 * another flow; this is the head-of-line blocking of Figure 7.  A
 * virtualized IP context-switches at sub-frame granularity.
 */
enum class SwitchGranularity : std::uint8_t
{
    Subframe,     ///< virtualized: switch any time (VIP)
    Frame,        ///< single context, switch between frames
    Transaction,  ///< single context, switch between bursts
};

const char *switchGranularityName(SwitchGranularity g);

/** Hardware parameters of one IP core. */
struct IpParams
{
    IpKind kind = IpKind::VD;
    /** IP clock frequency. */
    double clockHz = 600e6;
    /**
     * Compute throughput, bytes per cycle, applied to the larger of a
     * work unit's input and output footprint.
     */
    double bytesPerCycle = 2.0;

    /** @{ Virtualization (Section 5.5). */
    std::uint32_t numLanes = 1;        ///< buffer lanes (max 4)
    std::uint32_t laneBytes = 2048;    ///< 2 KB = 32 cache lines
    std::uint32_t subframeBytes = 1024;///< forwarding granularity
    Tick contextSwitchPenalty = fromNs(500);
    SchedPolicy sched = SchedPolicy::FIFO;
    SwitchGranularity switchGranularity = SwitchGranularity::Subframe;
    /**
     * Section 5.5's alternative to stalling the producer when the
     * consumer lane is full: spill the output to DRAM and let the
     * consumer pick it up later.  The paper rejects this for its
     * extra traffic and protocol complexity; modelling it lets the
     * ablation bench quantify that choice.
     */
    bool overflowToMemory = false;
    /** @} */

    /** @{ Job (memory) mode. */
    std::uint32_t dmaChunkBytes = 4096;   ///< DMA burst granularity
    std::uint32_t maxOutstandingDma = 4;  ///< read prefetch depth
    std::uint32_t hwQueueDepth = 7;       ///< request queue (Nexus 7)
    /** @} */

    IpPowerParams power{};
};

/** Reference throughput presets for each IP kind (see DESIGN.md). */
IpParams defaultIpParams(IpKind k);

} // namespace vip

#endif // VIP_IP_IP_TYPES_HH
