/**
 * @file
 * Units of IP work: sub-frames (stream mode) and stage jobs (job mode).
 */

#ifndef VIP_IP_WORK_HH
#define VIP_IP_WORK_HH

#include <cstdint>
#include <functional>

#include "mem/mem_types.hh"
#include "sim/types.hh"

namespace vip
{

/** Globally unique flow identifier. */
using FlowId = std::uint32_t;

/**
 * A sub-frame: the unit of IP-to-IP forwarding and of hardware
 * scheduling (Section 5.5; analogous to a flit).
 */
struct SubFrame
{
    FlowId flowId = 0;
    std::uint64_t frameId = 0;
    std::uint32_t bytes = 0;
    /** Last sub-frame of its frame at this hop. */
    bool last = false;
    /**
     * Last sub-frame of its *transaction* (frame or burst) — the
     * boundary at which a non-virtualized IP may switch context.
     */
    bool txnEnd = false;
    /** QoS deadline of the carrying frame (EDF key). */
    Tick deadline = MaxTick;
    /** Tick the sub-frame entered its current lane (FIFO key). */
    Tick arrival = 0;
};

/**
 * One IP invocation for one frame, in job (memory staged) mode: read
 * the input from DRAM, process, write the output to DRAM, signal.
 * This is how the Baseline and FrameBurst configurations drive IPs.
 */
struct StageJob
{
    FlowId flowId = 0;
    std::uint64_t frameId = 0;
    std::uint64_t inputBytes = 0;
    std::uint64_t outputBytes = 0;
    Addr inputAddr = 0;
    Addr outputAddr = 0;
    /** False for source IPs (camera) whose input is the sensor. */
    bool readsMemory = true;
    /** False for sink IPs (display) that consume the data. */
    bool writesMemory = true;
    /** QoS deadline of the frame. */
    Tick deadline = MaxTick;
    /**
     * Continuation: the driver's interrupt path (Baseline) or the
     * hardware doorbell to the next stage (FrameBurst).
     */
    std::function<void()> onComplete;
    /** Fired when the engine begins this job (flow-time metric). */
    std::function<void()> onStart;
    /** Tick the job was queued (observability only, never digested). */
    Tick obsEnqueue = 0;
};

} // namespace vip

#endif // VIP_IP_WORK_HH
