#include "ip/ip_core.hh"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <utility>

#include "obs/latency.hh"
#include "obs/stat_registry.hh"
#include "obs/tracer.hh"
#include "sim/system.hh"

namespace vip
{

namespace
{

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

void
IpCore::obsInternIds(Tracer *tr)
{
    if (_obsTrkEngine)
        return;
    _obsTrkEngine = tr->intern(name() + ".engine");
    _obsTrkExec = tr->intern(name() + ".exec");
    _obsNmActive = tr->intern("active");
    _obsNmStalled = tr->intern("stalled");
    _obsNmBp = tr->intern("backpressured");
    _obsNmUnit = tr->intern("unit");
    std::string stage = ipKindName(_p.kind);
    _obsNmStageAnnounce = tr->intern(stage + ":announce");
    _obsNmStageDone = tr->intern(stage + ":done");
    _obsNmGrant = tr->intern("grant");
    _obsNmCtxSwitch = tr->intern("ctx-switch");
}

std::pair<std::int32_t, std::int64_t>
IpCore::obsUnitIdentity() const
{
    if (_unitStream && _unitLane >= 0 &&
        _unitLane < static_cast<int>(_lanes.size())) {
        const Lane &l = _lanes[_unitLane];
        if (!l.frames.empty())
            return {static_cast<std::int32_t>(l.flow),
                    static_cast<std::int64_t>(l.frames.front().frameId)};
    } else if (_jobActive) {
        return {static_cast<std::int32_t>(_job.flowId),
                static_cast<std::int64_t>(_job.frameId)};
    }
    return {-1, -1};
}

void
IpCore::obsFaultInstant(const char *what)
{
    Tracer *tr = system().tracer();
    if (!tr || !tr->enabled(TraceCat::Fault))
        return;
    obsInternIds(tr);
    auto [flow, frame] = obsUnitIdentity();
    tr->instant(TraceCat::Fault, _obsTrkEngine, tr->intern(what),
                curTick(), flow, frame, _unitLane);
}

IpCore::IpCore(System &system, std::string name, const IpParams &params,
               SystemAgent &sa, EnergyLedger &ledger,
               FaultInjector *faults)
    : ClockedObject(system, std::move(name), ClockDomain(params.clockHz)),
      _p(params),
      _sa(sa),
      _energy(ledger.account("ip", this->name())),
      _bufferEnergy(ledger.account("buffer", this->name())),
      _faults(faults),
      _lanes(params.numLanes),
      _stats(this->name()),
      _statJobs(_stats, "jobs", "stage jobs completed"),
      _statSubframes(_stats, "subframes", "work units processed"),
      _statCtxSwitches(_stats, "ctxSwitches", "lane context switches"),
      _statResets(_stats, "watchdogResets", "engine watchdog resets"),
      _statRetries(_stats, "unitRetries", "work units recomputed"),
      _statDegraded(_stats, "framesDegraded",
                    "frames dropped after retry exhaustion"),
      _statJobLatencyMs(_stats, "jobLatencyMs", "job latency (ms)")
{
    vip_assert(params.numLanes >= 1 && params.numLanes <= 8,
               "lane count out of range");
    vip_assert(params.subframeBytes > 0 && params.laneBytes > 0,
               "bad buffer geometry");
    // Input + output buffer leakage scales with total capacity.
    auto est = SramModel::forCapacity(
        std::max<std::uint64_t>(1, _p.laneBytes) * 2 * _p.numLanes);
    _bufferEnergy.setPower(est.leakageWatts, 0);
    _energy.setPower(_p.power.idleWatts, 0);
}

Tick
IpCore::computeTime(std::uint64_t in_bytes, std::uint64_t out_bytes) const
{
    std::uint64_t work = std::max<std::uint64_t>(
        {in_bytes, out_bytes, 1});
    return streamTime(work, _p.bytesPerCycle);
}

// --------------------------------------------------------------------
// Engine state & power accounting
// --------------------------------------------------------------------

bool
IpCore::anyWorkPending() const
{
    if (_jobActive || !_jobs.empty())
        return true;
    for (const auto &l : _lanes) {
        if (l.bound && l.hasBufferedWork())
            return true;
    }
    return false;
}

void
IpCore::accumulateState(Tick now)
{
    Tick dt = now - _stateSince;
    if (_engineState == EngineState::Active)
        _activeTicks += dt;
    else if (_engineState == EngineState::Stalled)
        _stallTicks += dt;
    else if (_engineState == EngineState::Backpressured)
        _bpStallTicks += dt;
    _stateSince = now;
}

bool
IpCore::outputBlocked(const Lane &l) const
{
    if (!l.bound || l.frames.empty())
        return false;
    const StreamFrame &f = l.frames.front();
    if (f.unitsDone >= f.units)
        return false;
    if (l.inAvail < f.unitIn(f.unitsDone))
        return false;
    if (l.sink || !l.next || _p.overflowToMemory)
        return false;
    return l.outAccum + l.outQueueBytes + f.unitOut(f.unitsDone) >
           _p.laneBytes;
}

bool
IpCore::backpressured() const
{
    // Stream engine with a unit ready on the input side but no room
    // on the output side: the only missing resource is a downstream
    // credit.  A single-context IP committed to a transaction is
    // judged on its sticky lane alone.
    if (_jobActive || !_jobs.empty())
        return false;
    if (_stickyLane >= 0)
        return outputBlocked(_lanes[_stickyLane]);
    for (const auto &l : _lanes) {
        if (outputBlocked(l))
            return true;
    }
    return false;
}

void
IpCore::updateEngineState()
{
    EngineState next;
    if (_computing)
        next = EngineState::Active;
    else if (!anyWorkPending())
        next = EngineState::Idle;
    else if (backpressured())
        next = EngineState::Backpressured;
    else
        next = EngineState::Stalled;
    if (next == _engineState)
        return;
    Tick now = curTick();
    accumulateState(now);
    if (Tracer *tr = system().tracer();
        tr && tr->enabled(TraceCat::Ip)) {
        obsInternIds(tr);
        // Non-idle states render as back-to-back spans on the engine
        // track; idle is the gap between them.
        if (_engineState != EngineState::Idle)
            tr->end(TraceCat::Ip, _obsTrkEngine, now);
        if (next != EngineState::Idle) {
            std::uint32_t nm = next == EngineState::Active
                                   ? _obsNmActive
                                   : next == EngineState::Stalled
                                         ? _obsNmStalled
                                         : _obsNmBp;
            tr->begin(TraceCat::Ip, _obsTrkEngine, nm, now);
        }
    }
    _engineState = next;
    double watts = 0.0;
    switch (next) {
      case EngineState::Active:
        watts = _p.power.activeWatts;
        break;
      case EngineState::Stalled:
        watts = _p.power.stallWatts;
        break;
      case EngineState::Idle:
      case EngineState::Backpressured:
        // A backpressured engine has nothing to execute: it
        // clock-gates exactly like an idle one, so overload does not
        // inflate the energy numbers (Fig 15 stays honest).
        watts = _p.power.idleWatts;
        break;
    }
    _energy.setPower(watts, now);
}

double
IpCore::utilization() const
{
    Tick busy = _activeTicks + _stallTicks;
    if (busy == 0)
        return 0.0;
    return static_cast<double>(_activeTicks) /
           static_cast<double>(busy);
}

double
IpCore::dutyCycle() const
{
    Tick now = curTick();
    if (now == 0)
        return 0.0;
    return static_cast<double>(_activeTicks + _stallTicks) /
           static_cast<double>(now);
}

void
IpCore::finalize()
{
    accumulateState(curTick());
    _energy.close(curTick());
    _bufferEnergy.close(curTick());
}

void
IpCore::registerStats(StatRegistry &r)
{
    // "VD" -> "ip.vd.*"
    std::string p = "ip.";
    for (const char *k = ipKindName(kind()); *k; ++k)
        p += static_cast<char>(std::tolower(
            static_cast<unsigned char>(*k)));
    r.addExact(p + ".jobs", "job-mode jobs completed", "jobs",
               [this] { return double(_jobsCompleted); });
    r.addExact(p + ".subframes", "stream-mode work units processed",
               "units", [this] { return double(_subframes); });
    r.addExact(p + ".frames_exited", "frames consumed at sink lanes",
               "frames", [this] { return double(_framesExited); });
    r.addExact(p + ".context_switches", "hardware context switches",
               "", [this] { return double(_contextSwitches); });
    r.addExact(p + ".bytes_processed", "input bytes consumed by "
               "compute", "bytes",
               [this] { return double(_bytesProcessed); });
    r.addExact(p + ".bytes_spilled", "bytes detoured through DRAM by "
               "the overflow path", "bytes",
               [this] { return double(_bytesSpilled); });
    r.addExact(p + ".lane_overflows", "reservations that overran a "
               "lane (must stay 0)", "",
               [this] { return double(_laneOverflows); });
    r.addExact(p + ".credit_stalls", "producer pushes deferred for a "
               "downstream credit", "",
               [this] { return double(_creditStalls); });
    r.addExact(p + ".credits_reserved", "input-buffer bytes reserved",
               "bytes", [this] { return double(_creditsReserved); });
    r.addExact(p + ".credits_returned", "input-buffer bytes returned",
               "bytes", [this] { return double(_creditsReturned); });
    r.addExact(p + ".watchdog_resets", "engine resets by the "
               "watchdog", "",
               [this] { return double(_watchdogResets); });
    r.addExact(p + ".unit_retries", "work units retried after a "
               "fault", "",
               [this] { return double(_unitRetries); });
    r.addExact(p + ".frames_degraded", "frames drained as passthrough "
               "after retry exhaustion", "frames",
               [this] { return double(_framesDegraded); });
    r.addTiming(p + ".busy_ms", "time actively computing", "ms",
                [this] { return toMs(_activeTicks); });
    r.addTiming(p + ".stall_ms", "time stalled on memory", "ms",
                [this] { return toMs(_stallTicks); });
    r.addTiming(p + ".bp_stall_ms", "time backpressured on "
                "downstream credits", "ms",
                [this] { return toMs(_bpStallTicks); });
    r.addTiming(p + ".utilization", "active / (active + stalled)",
                "ratio", [this] { return utilization(); });
    r.addTiming(p + ".duty_cycle", "busy fraction of elapsed time",
                "ratio", [this] { return dutyCycle(); });
    r.addAccumulator(p + ".job_latency_ms", "ms", _statJobLatencyMs);
}

std::string
IpCore::debugState() const
{
    std::ostringstream os;
    os << name() << ": "
       << (_computing
               ? "computing"
               : (!anyWorkPending()
                      ? "idle"
                      : (backpressured() ? "backpressured"
                                         : "stalled")));
    if (_laneOverflows > 0)
        os << " (!" << _laneOverflows << " lane overflows)";
    if (_computing && _unitAttempts > 0)
        os << " (unit retried " << _unitAttempts << "x)";
    if (_computing && _computeEvent == InvalidEventId &&
        _watchdogEvent == InvalidEventId) {
        os << " (engine wedged, no watchdog armed)";
    }
    if (_jobActive || !_jobs.empty()) {
        os << " job=" << _unitsComputed << "/" << _unitsTotal
           << " queued=" << _jobs.size();
    }
    os << " curLane=" << _currentLane << " sticky=" << _stickyLane;
    for (std::size_t i = 0; i < _lanes.size(); ++i) {
        const Lane &l = _lanes[i];
        if (!l.bound)
            continue;
        os << " L" << i << "[flow=" << l.flow
           << " frames=" << l.frames.size()
           << " in=" << l.inAvail << "/" << l.occupancy
           << " out=" << l.outQueueBytes
           << " feeds=" << l.feeds.size()
           << " dma=" << l.outstandingDma << "]";
    }
    return os.str();
}

// --------------------------------------------------------------------
// Fault injection + watchdog recovery
//
// Every compute unit of either mode funnels through startUnit(): the
// injector may wedge the engine (completion never fires) or corrupt
// the result (detected by CRC at completion); the watchdog detects
// wedges and recovery retries the unit with exponential backoff until
// the budget runs out, at which point the frame's payload is dropped
// and the remainder drains as zero-cost passthrough.
// --------------------------------------------------------------------

void
IpCore::startUnit(bool stream, int lane, Tick time, bool degraded)
{
    vip_assert(!_computing, "unit started while engine busy on ",
               name());
    _computing = true;
    _unitStream = stream;
    _unitLane = lane;
    _unitDegraded = degraded;
    _unitTime = degraded ? 0 : time;
    _unitStart = curTick();
    _unitAttempts = 0;
    armComputeAttempt(0);
}

void
IpCore::armComputeAttempt(Tick extra_delay)
{
    if (!_unitDegraded && _faults && _faults->injectEngineHang()) {
        // The engine wedges: no completion is scheduled.  Only the
        // watchdog (when configured) gets it moving again; without
        // one the IP stays stuck until the global no-progress guard
        // aborts the run.
        armWatchdog(extra_delay);
        return;
    }
    _computeEvent = scheduleIn(extra_delay + _unitTime,
                               [this] { onComputeAttemptDone(); },
                               EventPriority::Default, "ip.unit");
    if (!_unitDegraded && _faults)
        armWatchdog(extra_delay);
}

void
IpCore::armWatchdog(Tick extra_delay)
{
    if (!_faults || _faults->plan().watchdogTimeout == 0)
        return;
    _watchdogEvent =
        scheduleIn(extra_delay + _unitTime +
                       _faults->plan().watchdogTimeout,
                   [this] { onWatchdogTimeout(); },
                   EventPriority::Default, "ip.watchdog");
}

void
IpCore::cancelWatchdog()
{
    if (_watchdogEvent != InvalidEventId) {
        deschedule(_watchdogEvent);
        _watchdogEvent = InvalidEventId;
    }
}

void
IpCore::onComputeAttemptDone()
{
    vip_assert(_computing, "spurious unit completion on ", name());
    _computeEvent = InvalidEventId;
    cancelWatchdog();
    // The CRC over the unit's output is checked at completion; a
    // corrupted sub-frame is recomputed from the (still buffered)
    // input.
    if (!_unitDegraded && _faults &&
        _faults->injectSubframeCorruption()) {
        retryUnit(/*from_reset=*/false);
        return;
    }
    finishUnit();
}

void
IpCore::onWatchdogTimeout()
{
    vip_assert(_computing, "watchdog fired on idle engine of ", name());
    _watchdogEvent = InvalidEventId;
    if (_computeEvent != InvalidEventId) {
        deschedule(_computeEvent);
        _computeEvent = InvalidEventId;
    }
    ++_watchdogResets;
    ++_statResets;
    _faults->noteWatchdogReset();
    obsFaultInstant("watchdog-reset");
    retryUnit(/*from_reset=*/true);
}

void
IpCore::retryUnit(bool from_reset)
{
    ++_unitAttempts;
    ++_unitRetries;
    ++_statRetries;
    _faults->noteUnitRetry();
    obsFaultInstant("unit-retry");
    if (_unitAttempts > _faults->plan().maxRetries) {
        giveUpUnit();
        return;
    }
    // A reset pays the engine reset penalty, doubling per consecutive
    // retry (backoff); a CRC retry recomputes immediately.
    Tick backoff = from_reset
        ? _faults->plan().resetPenalty << (_unitAttempts - 1)
        : 0;
    armComputeAttempt(backoff);
}

void
IpCore::giveUpUnit()
{
    // Retry budget exhausted: the frame's payload is lost.  The unit
    // (and the frame's remaining units) complete as zero-cost
    // passthrough so byte accounting and downstream credits stay
    // consistent and the chain resynchronizes at the next frame
    // boundary; the display end sees a degraded frame.
    ++_framesDegraded;
    ++_statDegraded;
    _faults->noteFrameDegraded();
    obsFaultInstant("unit-giveup");
    if (_unitStream) {
        Lane &l = _lanes[_unitLane];
        vip_assert(!l.frames.empty(), "give-up on empty lane");
        l.frames.front().faulted = true;
        if (_onDegrade)
            _onDegrade(l.flow, l.frames.front().frameId);
    } else {
        _jobFaulted = true;
        if (_onDegrade)
            _onDegrade(_job.flowId, _job.frameId);
    }
    finishUnit();
}

void
IpCore::finishUnit()
{
    if (_unitAttempts > 0) {
        Tick elapsed = curTick() - _unitStart;
        Tick extra = elapsed > _unitTime ? elapsed - _unitTime : 0;
        _faults->noteRecoveryLatency(extra);
    }
    if (Tracer *tr = system().tracer();
        tr && tr->enabled(TraceCat::Ip)) {
        obsInternIds(tr);
        auto [flow, frame] = obsUnitIdentity();
        tr->complete(TraceCat::Ip, _obsTrkExec, _obsNmUnit, _unitStart,
                     curTick(), flow, frame, _unitLane,
                     static_cast<double>(_unitInBytes));
    }
    if (_unitStream) {
        // The unit held its input-buffer reservation across every
        // retry/reset; the credits go back upstream exactly once,
        // now that the input can no longer be needed.  Before the
        // completion handler: it may retire the frame and tear the
        // lane down.
        std::uint64_t held = std::exchange(_unitInBytes, 0);
        if (held > 0)
            returnLaneCredits(_unitLane, held);
        onUnitComputed(_unitLane);
    } else {
        onJobUnitComputed();
    }
}

// --------------------------------------------------------------------
// Job mode
// --------------------------------------------------------------------

bool
IpCore::submitJob(StageJob job)
{
    if (queueFull())
        return false;
    job.obsEnqueue = curTick();
    if (Tracer *tr = system().tracer();
        tr && tr->enabled(TraceCat::Frame)) {
        obsInternIds(tr);
        tr->asyncInstant(TraceCat::Frame, _obsNmStageAnnounce,
                         curTick(),
                         static_cast<std::int32_t>(job.flowId),
                         static_cast<std::int64_t>(job.frameId));
    }
    _jobs.push_back(std::move(job));
    tryStartJob();
    updateEngineState();
    return true;
}

void
IpCore::tryStartJob()
{
    if (_jobActive || _jobs.empty())
        return;

    // Pick by the configured hardware policy.
    std::size_t idx = 0;
    if (_p.sched == SchedPolicy::EDF) {
        for (std::size_t i = 1; i < _jobs.size(); ++i) {
            if (_jobs[i].deadline < _jobs[idx].deadline)
                idx = i;
        }
    }
    _job = std::move(_jobs[idx]);
    _jobs.erase(_jobs.begin() + idx);
    _jobActive = true;
    _jobStartTick = curTick();
    _obsJobComputeAccum = 0;
    if (_job.onStart)
        _job.onStart();

    std::uint64_t span =
        std::max<std::uint64_t>({_job.inputBytes, _job.outputBytes, 1});
    _unitsTotal = ceilDiv(span, _p.dmaChunkBytes);
    _unitsIssued = 0;
    _unitsReady = 0;
    _unitsComputed = 0;
    _writesDone = 0;
    _readsOutstanding = 0;

    if (!_job.readsMemory || _job.inputBytes == 0) {
        _unitsIssued = _unitsTotal;
        _unitsReady = _unitsTotal;
    }
    issueJobReads();
    tryComputeJobUnit();
    updateEngineState();
}

void
IpCore::issueJobReads()
{
    if (!_jobActive || !_job.readsMemory || _job.inputBytes == 0)
        return;
    std::uint64_t in_unit =
        std::max<std::uint64_t>(1, ceilDiv(_job.inputBytes, _unitsTotal));
    while (_unitsIssued < _unitsTotal &&
           _readsOutstanding < _p.maxOutstandingDma) {
        std::uint64_t k = _unitsIssued++;
        ++_readsOutstanding;
        MemRequest req;
        req.addr = _job.inputAddr + k * in_unit;
        req.bytes = static_cast<std::uint32_t>(in_unit);
        req.write = false;
        req.requesterId = static_cast<std::uint32_t>(_p.kind);
        req.onComplete = [this] {
            --_readsOutstanding;
            ++_unitsReady;
            tryComputeJobUnit();
            issueJobReads();
        };
        _sa.memoryAccess(std::move(req));
    }
}

void
IpCore::tryComputeJobUnit()
{
    if (!_jobActive || _computing || _unitsReady == 0) {
        updateEngineState();
        return;
    }
    --_unitsReady;
    std::uint64_t in_unit = ceilDiv(_job.inputBytes, _unitsTotal);
    std::uint64_t out_unit = ceilDiv(_job.outputBytes, _unitsTotal);
    if (!_jobFaulted)
        _obsJobComputeAccum += computeTime(in_unit, out_unit);
    startUnit(/*stream=*/false, /*lane=*/-1,
              computeTime(in_unit, out_unit), _jobFaulted);
    updateEngineState();
}

void
IpCore::onJobUnitComputed()
{
    vip_assert(_jobActive && _computing, "spurious job unit completion");
    _computing = false;
    std::uint64_t k = _unitsComputed++;
    std::uint64_t out_unit = ceilDiv(_job.outputBytes, _unitsTotal);
    _bytesProcessed += std::max(ceilDiv(_job.inputBytes, _unitsTotal),
                                out_unit);

    if (_job.writesMemory && _job.outputBytes > 0) {
        MemRequest req;
        req.addr = _job.outputAddr + k * out_unit;
        req.bytes = static_cast<std::uint32_t>(
            std::max<std::uint64_t>(1, out_unit));
        req.write = true;
        req.requesterId = static_cast<std::uint32_t>(_p.kind);
        req.onComplete = [this] {
            ++_writesDone;
            checkJobDone();
        };
        _sa.memoryAccess(std::move(req));
    } else {
        ++_writesDone;
    }

    issueJobReads();
    tryComputeJobUnit();
    checkJobDone();
    updateEngineState();
}

void
IpCore::checkJobDone()
{
    if (!_jobActive || _unitsComputed < _unitsTotal ||
        _writesDone < _unitsTotal) {
        return;
    }
    _jobActive = false;
    _jobFaulted = false;
    ++_jobsCompleted;
    ++_statJobs;
    _statJobLatencyMs.sample(toMs(curTick() - _jobStartTick));

    // Latency decomposition + lifecycle mark, before tryStartJob()
    // below replaces _job with the next queued one.
    Tick ob_wait = _jobStartTick > _job.obsEnqueue
        ? _jobStartTick - _job.obsEnqueue : 0;
    Tick ob_total = curTick() > _job.obsEnqueue
        ? curTick() - _job.obsEnqueue : 0;
    Tick ob_comp = std::min(_obsJobComputeAccum, ob_total);
    Tick ob_blocked = ob_total > ob_wait + ob_comp
        ? ob_total - ob_wait - ob_comp : 0;
    if (LatencyCollector *lc = system().latency())
        lc->recordStage(ipKindName(_p.kind), ob_wait, ob_comp,
                        ob_blocked, ob_total);
    if (Tracer *tr = system().tracer();
        tr && tr->enabled(TraceCat::Frame)) {
        obsInternIds(tr);
        tr->asyncInstant(TraceCat::Frame, _obsNmStageDone,
                         curTick(),
                         static_cast<std::int32_t>(_job.flowId),
                         static_cast<std::int64_t>(_job.frameId));
    }

    auto cb = std::move(_job.onComplete);
    auto drain = _queueDrainCb;
    tryStartJob();
    updateEngineState();
    if (drain)
        drain();
    if (cb)
        cb();
}

// --------------------------------------------------------------------
// Stream mode: lane management
// --------------------------------------------------------------------

int
IpCore::bindLane(FlowId flow)
{
    for (std::size_t i = 0; i < _lanes.size(); ++i) {
        Lane &l = _lanes[i];
        if (l.bound)
            continue;
        l = Lane{};
        l.bound = true;
        l.flow = flow;
        return static_cast<int>(i);
    }
    return -1;
}

void
IpCore::unbindLane(int lane)
{
    Lane &l = _lanes.at(lane);
    vip_assert(l.bound, "unbinding unbound lane on ", name());
    vip_assert(!l.active(), "unbinding active lane on ", name());
    if (_stickyLane == lane)
        _stickyLane = -1;
    if (_currentLane == lane)
        _currentLane = -1;
    l = Lane{};
}

std::uint32_t
IpCore::boundLanes() const
{
    std::uint32_t n = 0;
    for (const auto &l : _lanes)
        n += l.bound ? 1 : 0;
    return n;
}

void
IpCore::connectLane(int lane, IpCore *next, int next_lane)
{
    Lane &l = _lanes.at(lane);
    vip_assert(l.bound, "connecting unbound lane");
    l.next = next;
    l.nextLane = next_lane;
    l.sink = false;
}

void
IpCore::makeLaneSink(int lane, FrameExitFn on_exit)
{
    Lane &l = _lanes.at(lane);
    vip_assert(l.bound, "sink on unbound lane");
    l.sink = true;
    l.next = nullptr;
    l.onExit = std::move(on_exit);
}

void
IpCore::setLaneFrameStartCb(int lane, FrameStartFn cb)
{
    _lanes.at(lane).onFrameStart = std::move(cb);
}

void
IpCore::announceFrame(int lane, std::uint64_t frame_id,
                      std::uint64_t in_bytes, std::uint64_t out_bytes,
                      Tick deadline, bool txn_end)
{
    Lane &l = _lanes.at(lane);
    vip_assert(l.bound, "announcing on unbound lane of ", name());
    vip_assert(in_bytes > 0, "frame with no input at ", name());

    StreamFrame f;
    f.frameId = frame_id;
    f.inBytes = in_bytes;
    f.outBytes = out_bytes;
    f.deadline = deadline;
    f.txnEnd = txn_end;
    f.units = ceilDiv(std::max(in_bytes, out_bytes), _p.subframeBytes);
    f.obsAnnounce = curTick();
    if (Tracer *tr = system().tracer();
        tr && tr->enabled(TraceCat::Frame)) {
        obsInternIds(tr);
        tr->asyncInstant(TraceCat::Frame, _obsNmStageAnnounce,
                         curTick(),
                         static_cast<std::int32_t>(l.flow),
                         static_cast<std::int64_t>(frame_id));
    }
    l.frames.push_back(f);
    kickStream();
    updateEngineState();
}

std::size_t
IpCore::laneDepth(int lane) const
{
    return _lanes.at(lane).frames.size();
}

std::uint64_t
IpCore::laneOccupancy(int lane) const
{
    return _lanes.at(lane).occupancy;
}

std::uint64_t
IpCore::laneInAvail(int lane) const
{
    return _lanes.at(lane).inAvail;
}

bool
IpCore::laneHasSpace(int lane, std::uint32_t bytes) const
{
    const Lane &l = _lanes.at(lane);
    return l.occupancy + bytes <= _p.laneBytes;
}

void
IpCore::reserveLaneSpace(int lane, std::uint32_t bytes)
{
    Lane &l = _lanes.at(lane);
    l.occupancy += bytes;
    _creditsReserved += bytes;
    // Producers must check laneHasSpace() first; a reservation past
    // capacity means the credit protocol was violated.  Counted (not
    // asserted) so sweeps can prove "zero overflows at any load".
    if (l.occupancy > _p.laneBytes)
        ++_laneOverflows;
}

void
IpCore::setCreditWaiter(int lane, std::function<void()> cb)
{
    _lanes.at(lane).creditWaiter = std::move(cb);
}

void
IpCore::deliverBytes(int lane, std::uint32_t bytes)
{
    Lane &l = _lanes.at(lane);
    vip_assert(l.bound, "bytes delivered to unbound lane on ", name());
    if (l.inAvail == 0)
        l.headArrival = curTick();
    l.inAvail += bytes;
    _bufferEnergy.addDynamicNj(
        SramModel::writeEnergyNj(_p.laneBytes, bytes));
    kickStream();
    updateEngineState();
}

void
IpCore::consumeInput(int lane, std::uint64_t bytes)
{
    Lane &l = _lanes[lane];
    vip_assert(l.inAvail >= bytes,
               "input buffer underflow on ", name());
    l.inAvail -= bytes;
}

void
IpCore::returnLaneCredits(int lane, std::uint64_t bytes)
{
    Lane &l = _lanes[lane];
    vip_assert(l.occupancy >= bytes,
               "credit double-release on ", name());
    l.occupancy -= bytes;
    _creditsReturned += bytes;
    if (l.creditWaiter) {
        auto cb = std::exchange(l.creditWaiter, nullptr);
        _sa.signal(std::move(cb));
    }
    pumpFeeds(lane);
}

// --------------------------------------------------------------------
// Stream mode: head-of-chain feeds
// --------------------------------------------------------------------

void
IpCore::feedFrame(int lane, std::uint64_t frame_id, std::uint64_t bytes,
                  Addr addr, bool generate, Tick gen_span)
{
    Lane &l = _lanes.at(lane);
    vip_assert(l.bound, "feeding unbound lane on ", name());
    vip_assert(bytes > 0, "feeding empty frame");

    Feed f;
    f.frameId = frame_id;
    f.addr = addr;
    f.total = bytes;
    f.generate = generate;
    if (generate && gen_span > 0) {
        std::uint64_t chunks = ceilDiv(bytes, _p.subframeBytes);
        f.genInterval = gen_span / chunks;
    }
    l.feeds.push_back(std::move(f));
    pumpFeeds(lane);
    updateEngineState();
}

void
IpCore::pumpFeeds(int lane)
{
    Lane &l = _lanes[lane];
    if (l.feeds.empty())
        return;
    Feed &f = l.feeds.front();
    const std::uint32_t chunk = _p.subframeBytes;

    if (f.generate) {
        if (f.genArmed || f.issued >= f.total)
            return;
        std::uint32_t sz = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(chunk, f.total - f.issued));
        if (l.occupancy + sz > _p.laneBytes)
            return; // wait for credit; releaseInputBytes re-pumps
        f.genArmed = true;
        reserveLaneSpace(lane, sz);
        std::uint64_t offset = f.issued;
        f.issued += sz;
        scheduleIn(f.genInterval, [this, lane, offset, sz] {
            Lane &ll = _lanes[lane];
            if (!ll.feeds.empty())
                ll.feeds.front().genArmed = false;
            onFeedChunkReady(lane, offset, sz);
        }, EventPriority::Default, "ip.gen");
        return;
    }

    while (f.issued < f.total &&
           l.outstandingDma < _p.maxOutstandingDma) {
        std::uint32_t sz = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(chunk, f.total - f.issued));
        if (l.occupancy + sz > _p.laneBytes)
            break; // wait for credit
        reserveLaneSpace(lane, sz);
        ++l.outstandingDma;
        std::uint64_t offset = f.issued;
        f.issued += sz;

        MemRequest req;
        req.addr = f.addr + offset;
        req.bytes = sz;
        req.write = false;
        req.requesterId = static_cast<std::uint32_t>(_p.kind);
        req.onComplete = [this, lane, offset, sz] {
            --_lanes[lane].outstandingDma;
            onFeedChunkReady(lane, offset, sz);
        };
        _sa.memoryAccess(std::move(req));
    }
}

void
IpCore::onFeedChunkReady(int lane, std::uint64_t offset,
                         std::uint32_t bytes)
{
    Lane &l = _lanes[lane];
    vip_assert(!l.feeds.empty(), "feed chunk for retired feed on ",
               name());
    l.feeds.front().ready.emplace(offset, bytes);
    deliverInOrder(lane);
}

void
IpCore::deliverInOrder(int lane)
{
    Lane &l = _lanes[lane];
    bool deliveredAny = false;
    bool retired = false;
    while (!l.feeds.empty()) {
        Feed &f = l.feeds.front();
        auto it = f.ready.begin();
        if (it == f.ready.end() || it->first != f.delivered)
            break;
        std::uint32_t sz = it->second;
        f.ready.erase(it);
        bool first = f.delivered == 0;
        f.delivered += sz;
        bool last = f.delivered >= f.total;

        if (first && l.onFrameStart)
            l.onFrameStart(l.flow, f.frameId);

        if (l.inAvail == 0)
            l.headArrival = curTick();
        l.inAvail += sz;
        _bufferEnergy.addDynamicNj(
            SramModel::writeEnergyNj(_p.laneBytes, sz));
        deliveredAny = true;

        if (last) {
            vip_assert(f.ready.empty(), "stray chunks past frame end");
            l.feeds.pop_front();
            retired = true;
        }
    }
    if (deliveredAny || retired)
        pumpFeeds(lane);
    if (deliveredAny) {
        kickStream();
        updateEngineState();
    }
}

// --------------------------------------------------------------------
// Stream mode: engine
// --------------------------------------------------------------------

bool
IpCore::laneRunnable(const Lane &l) const
{
    if (!l.bound || l.frames.empty())
        return false;
    const StreamFrame &f = l.frames.front();
    if (f.unitsDone >= f.units)
        return false;
    if (l.inAvail < f.unitIn(f.unitsDone))
        return false;
    // Output must fit the lane's output buffer (sinks produce none).
    // With the overflow-to-memory option the output buffer drains to
    // DRAM instead, so it never gates the engine.
    if (!l.sink && l.next && !_p.overflowToMemory) {
        std::uint64_t pendingOut =
            l.outAccum + l.outQueueBytes + f.unitOut(f.unitsDone);
        if (pendingOut > _p.laneBytes)
            return false;
    }
    return true;
}

int
IpCore::pickLane() const
{
    int best = -1;
    switch (_p.sched) {
      case SchedPolicy::FIFO: {
        Tick bestKey = MaxTick;
        for (std::size_t i = 0; i < _lanes.size(); ++i) {
            const Lane &l = _lanes[i];
            if (!laneRunnable(l))
                continue;
            if (best < 0 || l.headArrival < bestKey) {
                best = static_cast<int>(i);
                bestKey = l.headArrival;
            }
        }
        break;
      }
      case SchedPolicy::RoundRobin: {
        std::size_t n = _lanes.size();
        for (std::size_t k = 1; k <= n; ++k) {
            std::size_t i = (_currentLane + k) % n;
            if (laneRunnable(_lanes[i])) {
                best = static_cast<int>(i);
                break;
            }
        }
        break;
      }
      case SchedPolicy::EDF: {
        Tick bestKey = MaxTick;
        for (std::size_t i = 0; i < _lanes.size(); ++i) {
            const Lane &l = _lanes[i];
            if (!laneRunnable(l))
                continue;
            Tick d = l.frames.front().deadline;
            if (best < 0 || d < bestKey) {
                best = static_cast<int>(i);
                bestKey = d;
            }
        }
        break;
      }
    }
    return best;
}

void
IpCore::kickStream()
{
    if (_computing || _jobActive)
        return;
    int lane;
    if (_stickyLane >= 0) {
        // Single-context IP committed to a transaction: it may only
        // continue that lane; while the lane is not runnable the
        // engine waits, blocking other flows (Fig 7).
        if (!laneRunnable(_lanes[_stickyLane])) {
            updateEngineState();
            return;
        }
        lane = _stickyLane;
    } else {
        lane = pickLane();
    }
    if (lane < 0) {
        updateEngineState();
        return;
    }
    Lane &l = _lanes[lane];
    StreamFrame &f = l.frames.front();

    bool cs = _currentLane >= 0 && _currentLane != lane;
    if (cs) {
        ++_contextSwitches;
        ++_statCtxSwitches;
        _energy.addDynamicNj(_p.power.contextSwitchNj);
    }
    _currentLane = lane;

    // Commit the single context until the frame/transaction boundary.
    if (_p.switchGranularity != SwitchGranularity::Subframe)
        _stickyLane = lane;

    std::uint64_t uIn = f.unitIn(f.unitsDone);
    std::uint64_t uOut = f.unitOut(f.unitsDone);

    if (Tracer *tr = system().tracer();
        tr && tr->enabled(TraceCat::Sched)) {
        obsInternIds(tr);
        if (cs)
            tr->instant(TraceCat::Sched, _obsTrkEngine, _obsNmCtxSwitch,
                        curTick(), static_cast<std::int32_t>(l.flow),
                        static_cast<std::int64_t>(f.frameId), lane);
        if (f.unitsDone == 0 && f.obsFirstStart == 0)
            tr->instant(TraceCat::Sched, _obsTrkEngine, _obsNmGrant,
                        curTick(), static_cast<std::int32_t>(l.flow),
                        static_cast<std::int64_t>(f.frameId), lane);
    }
    if (f.unitsDone == 0 && f.obsFirstStart == 0)
        f.obsFirstStart = curTick();
    if (!f.faulted)
        f.obsComputeAccum += computeTime(uIn, uOut);

    if (uIn > 0) {
        _bufferEnergy.addDynamicNj(
            SramModel::readEnergyNj(_p.laneBytes, uIn));
        consumeInput(lane, uIn);
    }
    _unitInBytes = uIn;

    startUnit(/*stream=*/true, lane,
              computeTime(uIn, uOut) +
                  (cs ? _p.contextSwitchPenalty : 0),
              f.faulted);
    updateEngineState();
}

void
IpCore::onUnitComputed(int lane)
{
    vip_assert(_computing, "spurious unit completion");
    _computing = false;
    ++_subframes;
    ++_statSubframes;

    Lane &l = _lanes[lane];
    vip_assert(!l.frames.empty(), "unit completed on empty lane");
    StreamFrame &f = l.frames.front();

    std::uint64_t uIn = f.unitIn(f.unitsDone);
    std::uint64_t uOut = f.unitOut(f.unitsDone);
    _bytesProcessed += std::max(uIn, uOut);
    ++f.unitsDone;
    bool frameDone = f.unitsDone >= f.units;

    if (!l.sink && l.next) {
        l.outAccum += uOut;
        while (l.outAccum >= _p.subframeBytes) {
            l.outQueue.push_back(_p.subframeBytes);
            l.outQueueBytes += _p.subframeBytes;
            l.outAccum -= _p.subframeBytes;
        }
        if (frameDone && l.outAccum > 0) {
            l.outQueue.push_back(
                static_cast<std::uint32_t>(l.outAccum));
            l.outQueueBytes += l.outAccum;
            l.outAccum = 0;
        }
    }

    if (frameDone) {
        // Latency decomposition + lifecycle mark, before the frame
        // context is retired below.  Wait = visible-to-started,
        // compute = nominal unit time (retries land in "blocked").
        Tick ob_total = curTick() > f.obsAnnounce
            ? curTick() - f.obsAnnounce : 0;
        Tick ob_wait = f.obsFirstStart > f.obsAnnounce
            ? f.obsFirstStart - f.obsAnnounce : 0;
        if (ob_wait > ob_total)
            ob_wait = ob_total;
        Tick ob_comp = std::min(f.obsComputeAccum, ob_total - ob_wait);
        Tick ob_blocked = ob_total - ob_wait - ob_comp;
        if (LatencyCollector *lc = system().latency())
            lc->recordStage(ipKindName(_p.kind), ob_wait, ob_comp,
                            ob_blocked, ob_total);
        if (Tracer *tr = system().tracer();
            tr && tr->enabled(TraceCat::Frame)) {
            obsInternIds(tr);
            tr->asyncInstant(TraceCat::Frame, _obsNmStageDone,
                             curTick(),
                             static_cast<std::int32_t>(l.flow),
                             static_cast<std::int64_t>(f.frameId));
        }
        // Release the single context at the configured boundary.
        if ((_p.switchGranularity == SwitchGranularity::Frame) ||
            (_p.switchGranularity == SwitchGranularity::Transaction &&
             f.txnEnd)) {
            _stickyLane = -1;
        }
        bool sink = l.sink;
        FlowId flow = l.flow;
        std::uint64_t frame_id = f.frameId;
        auto onExit = l.onExit;
        // Retire the frame context *before* signalling the exit: the
        // callback may tear the (now drained) chain down, which
        // unbinds this very lane; the local copies survive the reset.
        l.frames.pop_front();
        if (sink) {
            ++_framesExited;
            if (onExit)
                onExit(flow, frame_id);
            // The lane (and this reference) may be gone now.
            kickStream();
            updateEngineState();
            return;
        }
    }

    pushOutput(lane);
    kickStream();
    updateEngineState();
}

void
IpCore::pushOutput(int lane)
{
    Lane &l = _lanes[lane];
    if (!l.next)
        return;
    bool pushed = false;
    while (!l.outQueue.empty()) {
        std::uint32_t sz = l.outQueue.front();
        // Ordering: while spilled data awaits the consumer, direct
        // pushes must follow it through memory.
        bool blocked = !l.spillQueue.empty() ||
                       !l.next->laneHasSpace(l.nextLane, sz);
        if (blocked && _p.overflowToMemory) {
            l.outQueue.pop_front();
            l.outQueueBytes -= sz;
            spillChunk(lane, sz);
            pushed = true;
            continue;
        }
        if (blocked) {
            ++_creditStalls;
            IpCore *next = l.next;
            int nl = l.nextLane;
            next->setCreditWaiter(nl, [this, lane] {
                pushOutput(lane);
                kickStream();
                updateEngineState();
            });
            break;
        }
        l.next->reserveLaneSpace(l.nextLane, sz);
        l.outQueue.pop_front();
        l.outQueueBytes -= sz;
        _bufferEnergy.addDynamicNj(
            SramModel::readEnergyNj(_p.laneBytes, sz));
        IpCore *next = l.next;
        int nl = l.nextLane;
        _sa.peerTransfer(sz, [next, nl, sz] {
            next->deliverBytes(nl, sz);
        });
        pushed = true;
    }
    if (pushed) {
        kickStream();
        updateEngineState();
    }
}

void
IpCore::spillChunk(int lane, std::uint32_t bytes)
{
    Lane &l = _lanes[lane];
    // Stage the chunk in a per-IP DRAM spill region (bump pointer
    // over a wrapping window; the data is transient).
    constexpr Addr kSpillBase = Addr(1) << 40;
    constexpr Addr kSpillWindow = 16_MiB;
    Addr addr = kSpillBase + (_spillNext % kSpillWindow);
    _spillNext += bytes;
    _bytesSpilled += bytes;
    l.spillBytes += bytes;

    l.spillQueue.push_back(Lane::Spill{addr, bytes, false});
    auto *entry = &l.spillQueue.back();

    MemRequest req;
    req.addr = addr;
    req.bytes = bytes;
    req.write = true;
    req.requesterId = static_cast<std::uint32_t>(_p.kind);
    req.onComplete = [this, lane, addr] {
        Lane &ll = _lanes[lane];
        for (auto &sp : ll.spillQueue) {
            if (sp.addr == addr && !sp.writeDone) {
                sp.writeDone = true;
                break;
            }
        }
        pumpSpills(lane);
    };
    (void)entry;
    _sa.memoryAccess(std::move(req));
}

void
IpCore::pumpSpills(int lane)
{
    Lane &l = _lanes[lane];
    if (l.refillInFlight || l.spillQueue.empty() || !l.next)
        return;
    Lane::Spill &sp = l.spillQueue.front();
    if (!sp.writeDone)
        return; // read-after-write hazard: wait for the store
    if (!l.next->laneHasSpace(l.nextLane, sp.bytes)) {
        ++_creditStalls;
        l.next->setCreditWaiter(l.nextLane,
                                [this, lane] { pumpSpills(lane); });
        return;
    }
    l.next->reserveLaneSpace(l.nextLane, sp.bytes);
    l.refillInFlight = true;

    MemRequest req;
    req.addr = sp.addr;
    req.bytes = sp.bytes;
    req.write = false;
    req.requesterId = static_cast<std::uint32_t>(_p.kind);
    std::uint32_t bytes = sp.bytes;
    IpCore *next = l.next;
    int nl = l.nextLane;
    req.onComplete = [this, lane, next, nl, bytes] {
        Lane &ll = _lanes[lane];
        vip_assert(!ll.spillQueue.empty(), "spill queue underflow");
        ll.spillQueue.pop_front();
        ll.spillBytes -= bytes;
        ll.refillInFlight = false;
        next->deliverBytes(nl, bytes);
        pumpSpills(lane);
        pushOutput(lane);
    };
    _sa.memoryAccess(std::move(req));
}

void
IpCore::auditInvariants(AuditContext &ctx) const
{
    // Credit conservation: every reserved input byte is either still
    // occupying a lane or was returned upstream, exactly once.
    std::uint64_t occupied = 0;
    for (const Lane &l : _lanes)
        occupied += l.occupancy;
    ctx.checkEq("ip.credit_ledger", _creditsReserved,
                _creditsReturned + occupied,
                "reserved != returned + occupied");
    ctx.checkEq("ip.lane_overflows", _laneOverflows, 0,
                "reservation overran lane capacity");

    for (std::size_t i = 0; i < _lanes.size(); ++i) {
        const Lane &l = _lanes[i];
        std::string lane = "lane " + std::to_string(i);
        // Buffered input is covered by the lane's reservation.
        ctx.checkLe("ip.inavail_le_occupancy", l.inAvail, l.occupancy,
                    lane);
        std::uint64_t outq = 0;
        for (std::uint32_t c : l.outQueue)
            outq += c;
        ctx.checkEq("ip.outqueue_bytes", outq, l.outQueueBytes, lane);
        std::uint64_t spillq = 0;
        for (const Lane::Spill &sp : l.spillQueue)
            spillq += sp.bytes;
        ctx.checkLe("ip.spill_bytes", spillq, l.spillBytes, lane);
        for (const StreamFrame &f : l.frames) {
            ctx.checkLe("ip.units_done", f.unitsDone, f.units,
                        lane + " frame " + std::to_string(f.frameId));
        }
        if (!l.bound) {
            ctx.checkTrue("ip.unbound_lane_empty", !l.active(),
                          lane + " holds work while unbound");
        }
    }

    // Time accounting never exceeds elapsed simulated time.
    ctx.checkLe("ip.time_accounting",
                static_cast<std::uint64_t>(_activeTicks + _stallTicks +
                                           _bpStallTicks),
                static_cast<std::uint64_t>(curTick()),
                "state buckets exceed elapsed time");
}

void
IpCore::stateDigest(StateDigest &d) const
{
    d.add(name());
    d.add(static_cast<std::uint64_t>(_engineState));
    d.add(static_cast<std::uint64_t>(_activeTicks));
    d.add(static_cast<std::uint64_t>(_stallTicks));
    d.add(static_cast<std::uint64_t>(_bpStallTicks));
    d.add(_jobsCompleted);
    d.add(_subframes);
    d.add(_framesExited);
    d.add(_contextSwitches);
    d.add(_bytesProcessed);
    d.add(_bytesSpilled);
    d.add(_laneOverflows);
    d.add(_creditStalls);
    d.add(_creditsReserved);
    d.add(_creditsReturned);
    d.add(_watchdogResets);
    d.add(_unitRetries);
    d.add(_framesDegraded);
    d.add(static_cast<std::uint64_t>(_jobs.size()));
    d.add(_jobActive);
    d.add(_computing);
    d.add(_unitInBytes);
    d.add(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(_currentLane)));
    d.add(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(_stickyLane)));
    for (const Lane &l : _lanes) {
        d.add(l.bound);
        d.add(static_cast<std::uint64_t>(l.flow));
        d.add(l.occupancy);
        d.add(l.inAvail);
        d.add(static_cast<std::uint64_t>(l.frames.size()));
        d.add(static_cast<std::uint64_t>(l.feeds.size()));
        d.add(static_cast<std::uint64_t>(l.outstandingDma));
        d.add(l.outAccum);
        d.add(l.outQueueBytes);
        d.add(l.spillBytes);
        for (const StreamFrame &f : l.frames) {
            d.add(f.frameId);
            d.add(f.unitsDone);
            d.add(f.faulted);
        }
    }
}

bool
IpCore::quiescent() const
{
    if (_jobActive || _computing || !_jobs.empty() ||
        _computeEvent != InvalidEventId ||
        _watchdogEvent != InvalidEventId)
        return false;
    for (const Lane &l : _lanes) {
        if (l.active() || l.outstandingDma > 0 || l.refillInFlight ||
            l.creditWaiter)
            return false;
    }
    return true;
}

void
IpCore::saveState(SnapshotWriter &w) const
{
    vip_assert(quiescent(),
               "checkpointing ", name(), " with work in flight");
    w.u8(static_cast<std::uint8_t>(_engineState));
    w.tick(_stateSince);
    w.tick(_activeTicks);
    w.tick(_stallTicks);
    w.tick(_bpStallTicks);
    w.u64(_jobsCompleted);
    w.u64(_subframes);
    w.u64(_framesExited);
    w.u64(_contextSwitches);
    w.u64(_bytesProcessed);
    w.u64(_bytesSpilled);
    w.u64(_laneOverflows);
    w.u64(_creditStalls);
    w.u64(_creditsReserved);
    w.u64(_creditsReturned);
    w.u64(_watchdogResets);
    w.u64(_unitRetries);
    w.u64(_framesDegraded);
    w.u64(_spillNext);
    w.i64(_currentLane);
    w.i64(_stickyLane);
    // Lane topology: bindings are restored here; the inter-IP wiring
    // (next/nextLane/sink/callbacks) is structural and re-created by
    // ChainManager::loadState, which runs after every IP's section.
    w.u32(static_cast<std::uint32_t>(_lanes.size()));
    for (const Lane &l : _lanes) {
        w.b(l.bound);
        w.u64(static_cast<std::uint64_t>(l.flow));
        w.tick(l.headArrival);
    }
    _stats.saveState(w);
}

void
IpCore::loadState(SnapshotReader &r)
{
    _engineState = static_cast<EngineState>(r.u8());
    _stateSince = r.tick();
    _activeTicks = r.tick();
    _stallTicks = r.tick();
    _bpStallTicks = r.tick();
    _jobsCompleted = r.u64();
    _subframes = r.u64();
    _framesExited = r.u64();
    _contextSwitches = r.u64();
    _bytesProcessed = r.u64();
    _bytesSpilled = r.u64();
    _laneOverflows = r.u64();
    _creditStalls = r.u64();
    _creditsReserved = r.u64();
    _creditsReturned = r.u64();
    _watchdogResets = r.u64();
    _unitRetries = r.u64();
    _framesDegraded = r.u64();
    _spillNext = r.u64();
    _currentLane = static_cast<int>(r.i64());
    _stickyLane = static_cast<int>(r.i64());
    std::uint32_t nLanes = r.u32();
    if (nLanes != _lanes.size())
        fatal(name(), ": snapshot has ", nLanes, " lanes, config has ",
              _lanes.size(), " (config mismatch)");
    for (Lane &l : _lanes) {
        l.bound = r.b();
        l.flow = static_cast<FlowId>(r.u64());
        l.headArrival = r.tick();
    }
    _stats.loadState(r);
    // The restored power level is re-integrated by the energy ledger
    // (serialized separately); nothing to re-apply here.
}

} // namespace vip
