/**
 * @file
 * Per-frame latency decomposition.
 *
 * Components feed a LatencyCollector as frames move through the chain:
 * each IP stage records queue-wait / compute / blocked / total per
 * frame, the flow runtime records end-to-end and transit latency, and
 * the SA / DRAM models record transfer and burst service times.
 * Samples land in log-bucketed histograms (HdrHistogram-style
 * log-linear buckets, <= 6.25% relative error) so p50/p95/p99 come out
 * in O(buckets) with O(1) memory per stage.
 *
 * The collector is purely observational — it never schedules events or
 * perturbs digests — so it is always attached.
 */

#ifndef VIP_OBS_LATENCY_HH
#define VIP_OBS_LATENCY_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace vip
{

class SnapshotWriter;
class SnapshotReader;

/**
 * Log-linear histogram over non-negative tick values.  Values below
 * 2^kSubBits are exact; above that, each power-of-two range is split
 * into 2^kSubBits linear sub-buckets, bounding relative error by
 * 2^-kSubBits.
 */
class LogHistogram
{
  public:
    static constexpr unsigned kSubBits = 4;
    static constexpr unsigned kSubBuckets = 1u << kSubBits;

    void sample(Tick v);

    std::uint64_t count() const { return _count; }
    Tick min() const { return _count ? _min : 0; }
    Tick max() const { return _max; }
    double mean() const;
    /** Value at percentile @p p in [0, 100]. */
    Tick percentile(double p) const;

    /** @{ checkpoint serialization */
    void saveState(SnapshotWriter &w) const;
    void loadState(SnapshotReader &r);
    /** @} */

  private:
    static std::size_t bucketOf(Tick v);
    static Tick bucketMid(std::size_t b);

    std::vector<std::uint64_t> _bins;
    std::uint64_t _count = 0;
    Tick _min = MaxTick;
    Tick _max = 0;
    double _sum = 0.0;
};

/** Summary of one histogram, in milliseconds. */
struct LatencyBreakdown
{
    std::uint64_t count = 0;
    double meanMs = 0.0;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double maxMs = 0.0;
};

/** One chain stage's wait/compute/blocked/total decomposition. */
struct StageLatency
{
    std::string stage;
    LatencyBreakdown wait;    ///< announce -> first unit start
    LatencyBreakdown compute; ///< nominal busy time of all units
    LatencyBreakdown blocked; ///< total - wait - compute (HOL, input
                              ///< starvation, SA/DRAM round-trips,
                              ///< retries, context switches)
    LatencyBreakdown total;   ///< announce -> stage completion
};

/** Whole-run latency decomposition, reported in RunStats. */
struct LatencySummary
{
    LatencyBreakdown endToEnd;   ///< generation -> sink (QoS clock)
    LatencyBreakdown transit;    ///< first start -> sink
    LatencyBreakdown saTransfer; ///< per-transfer SA link occupancy
    LatencyBreakdown dramBurst;  ///< per-burst DRAM service time
    std::vector<StageLatency> stages;
};

class StatRegistry;

class LatencyCollector
{
  public:
    void recordFrame(Tick endToEnd, Tick transit);
    void recordStage(const std::string &stage, Tick wait, Tick compute,
                     Tick blocked, Tick total);
    void recordSaTransfer(Tick duration);
    void recordDramBurst(Tick service);

    LatencySummary summarize() const;

    /**
     * Register the four run-level histograms under latency.*.  The
     * per-stage map grows lazily as frames move, so stage breakdowns
     * stay summarize()-only: their histograms have no stable address
     * at registration time.
     */
    void registerStats(StatRegistry &registry) const;

    /** @{ checkpoint serialization (stage map re-grown on load) */
    void saveState(SnapshotWriter &w) const;
    void loadState(SnapshotReader &r);
    /** @} */

  private:
    struct StageHists
    {
        LogHistogram wait, compute, blocked, total;
    };

    LogHistogram _endToEnd, _transit, _sa, _dram;
    std::map<std::string, StageHists> _stages;
};

} // namespace vip

#endif // VIP_OBS_LATENCY_HH
