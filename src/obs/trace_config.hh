/**
 * @file
 * Configuration for the execution-observability subsystem.
 *
 * TraceConfig selects which event categories the Tracer records and
 * where the Chrome trace_event JSON goes; MetricsConfig controls the
 * periodic time-series sampler.  Both live here (not in tracer.hh) so
 * SocConfig can embed them without pulling in the tracer machinery.
 */

#ifndef VIP_OBS_TRACE_CONFIG_HH
#define VIP_OBS_TRACE_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace vip
{

/**
 * Trace event categories (bitmask).  Every emission site names one
 * category; the Tracer drops events whose category is filtered out
 * before they touch the ring buffer.
 */
enum class TraceCat : std::uint32_t
{
    Ip = 1u << 0,    ///< engine busy/stall/backpressure spans, unit spans
    Frame = 1u << 1, ///< per-frame lifecycle flow events across the chain
    Sa = 1u << 2,    ///< system-agent link transfers / retransmissions
    Dram = 1u << 3,  ///< DRAM channel bursts and bandwidth counters
    Cpu = 1u << 4,   ///< CPU task/ISR spans and interrupt instants
    Sched = 1u << 5, ///< lane grants, EDF decisions, context switches
    Fault = 1u << 6, ///< watchdog resets, retries, degradation, shedding
    Power = 1u << 7, ///< sleep/wake and DRAM low-power transitions
};

constexpr std::uint32_t kAllTraceCats = 0xffu;

/** Lower-case category name ("ip", "frame", ...). */
const char *traceCatName(TraceCat cat);

/**
 * Parse "cat,cat,..." (or "all") into a category mask.
 * Fatals on an unknown category name.
 */
std::uint32_t parseTraceCats(const std::string &spec);

/** Render a mask back to "cat,cat,..." (or "all"). */
std::string traceCatsToString(std::uint32_t mask);

/** Span/instant tracer configuration (--trace-out / --trace). */
struct TraceConfig
{
    /** Output file for trace_event JSON; empty disables tracing. */
    std::string out;
    /** Enabled category mask; defaults to everything. */
    std::uint32_t categories = kAllTraceCats;
    /** Ring-buffer capacity in events (oldest dropped on overflow). */
    std::size_t bufferEvents = std::size_t{1} << 19;

    bool enabled() const { return !out.empty(); }
};

/** Periodic metrics sampler configuration (--metrics-out). */
struct MetricsConfig
{
    /** Output CSV file; empty disables the sampler. */
    std::string out;
    /** Sampling interval in simulated milliseconds. */
    double intervalMs = 1.0;

    bool enabled() const { return !out.empty(); }
};

} // namespace vip

#endif // VIP_OBS_TRACE_CONFIG_HH
