/**
 * @file
 * Merging per-shard stats.json dumps into an aggregate percentile
 * view — the reduction step behind vip_fleet's merged report.
 *
 * Every completed shard of a sweep contributes one StatsFile (the
 * --stats-out dump of its run).  The merge walks the union of stat
 * paths and summarizes each path's value distribution across shards:
 * count, min/max, mean, and nearest-rank percentiles.  Shards are
 * heterogeneous on purpose (different configs build different IP
 * sets), so a path absent from some shards simply aggregates over the
 * shards that have it — the per-path count says how many that was.
 */

#ifndef VIP_OBS_STATS_MERGE_HH
#define VIP_OBS_STATS_MERGE_HH

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/stats_io.hh"

namespace vip
{

/** Distribution of one stat path across shards. */
struct StatAggregate
{
    std::size_t count = 0; ///< shards contributing the path
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p25 = 0.0;
    double p50 = 0.0;
    double p75 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    std::string unit; ///< from the first contributing shard
};

/**
 * Nearest-rank percentile of an ascending-sorted, non-empty vector;
 * @p pct in [0, 100].  Exposed for tests.
 */
double percentileSorted(const std::vector<double> &sorted, double pct);

/** Aggregate the union of stat paths across @p shards. */
std::map<std::string, StatAggregate>
aggregateStats(const std::vector<const StatsFile *> &shards);

/**
 * Write one aggregate map as a JSON object keyed by stat path.
 * @p indent prefixes every line (report embedding).
 */
void writeAggregateJson(std::ostream &os,
                        const std::map<std::string, StatAggregate> &agg,
                        const char *indent = "  ");

/**
 * Write a complete standalone aggregate document (the fleet's
 * aggregate.json): a self-describing wrapper around the aggregate
 * map, so downstream tooling can consume the cross-shard view
 * without parsing the full report.
 */
void writeAggregateDocument(
    std::ostream &os, const std::map<std::string, StatAggregate> &agg,
    std::size_t shardCount, const std::string &sweepName);

} // namespace vip

#endif // VIP_OBS_STATS_MERGE_HH
