#include "obs/metrics.hh"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "obs/provenance.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "sim/system.hh"

namespace vip
{

MetricsSampler::MetricsSampler(System &sys, Tick interval)
    : _sys(sys), _interval(interval)
{
    vip_assert(interval > 0, "metrics interval must be positive");
}

MetricsSampler::~MetricsSampler() = default;

void
MetricsSampler::addProbe(std::string name, Probe fn)
{
    _probes.emplace_back(std::move(name), std::move(fn));
}

void
MetricsSampler::streamTo(std::string path)
{
    _path = std::move(path);
}

void
MetricsSampler::start()
{
    if (!_path.empty()) {
        _stream = std::make_unique<std::ofstream>(_path);
        if (!*_stream) {
            warn("metrics: cannot open ", _path,
                 "; falling back to in-memory only");
            _stream.reset();
        } else {
            writeHeader(*_stream);
            _stream->flush();
        }
    }
    _sampleEvent = _sys.eventq().scheduleIn(
        _interval, [this] { sampleNow(); }, EventPriority::Stats,
        "obs.metrics");
}

void
MetricsSampler::resume()
{
    if (!_path.empty()) {
        _stream = std::make_unique<std::ofstream>(_path,
                                                  std::ios::app);
        if (!*_stream) {
            warn("metrics: cannot reopen ", _path,
                 "; falling back to in-memory only");
            _stream.reset();
        } else {
            *_stream << "# resumed-at-tick=" << _sys.curTick()
                     << "\n";
            _stream->flush();
        }
    }
}

void
MetricsSampler::sampleNow()
{
    _ticks.push_back(_sys.curTick());
    for (const auto &[name, fn] : _probes)
        _data.push_back(fn());
    if (_stream) {
        // One row per flush: a killed run loses at most the sample
        // being taken when the axe fell.
        writeRow(*_stream, _ticks.size() - 1);
        _stream->flush();
    }
    _sampleEvent = _sys.eventq().scheduleIn(
        _interval, [this] { sampleNow(); }, EventPriority::Stats,
        "obs.metrics");
}

void
MetricsSampler::writeHeader(std::ostream &os) const
{
    os << "# vip-metrics v1\n";
    for (const auto &line : provenanceMetaLines())
        os << "# " << line << "\n";
    os << "# intervalMs=" << toMs(_interval) << "\n";
    os << "tick_ms";
    for (const auto &[name, fn] : _probes)
        os << "," << name;
    os << "\n";
}

void
MetricsSampler::writeRow(std::ostream &os, std::size_t r) const
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6f", toMs(_ticks[r]));
    os << buf;
    for (std::size_t c = 0; c < _probes.size(); ++c) {
        std::snprintf(buf, sizeof(buf), "%.6g",
                      _data[r * _probes.size() + c]);
        os << "," << buf;
    }
    os << "\n";
}

void
MetricsSampler::writeCsv(std::ostream &os) const
{
    writeHeader(os);
    for (std::size_t r = 0; r < _ticks.size(); ++r)
        writeRow(os, r);
}

void
MetricsSampler::saveState(SnapshotWriter &w) const
{
    EventQueue &eq = _sys.eventq();
    bool live = eq.isLive(_sampleEvent);
    w.b(live);
    if (live) {
        w.u64(_sampleEvent);
        w.tick(eq.scheduledWhen(_sampleEvent));
    }
    // The in-memory rows are restored too, so a post-run writeCsv()
    // is bit-identical to an uninterrupted run's.
    w.u32(static_cast<std::uint32_t>(_probes.size()));
    w.u64(_ticks.size());
    for (Tick t : _ticks)
        w.tick(t);
    for (double v : _data)
        w.d(v);
}

void
MetricsSampler::loadState(SnapshotReader &r)
{
    EventQueue &eq = _sys.eventq();
    if (r.b()) {
        _sampleEvent = r.u64();
        Tick when = r.tick();
        eq.restoreEvent(_sampleEvent, when, [this] { sampleNow(); },
                        EventPriority::Stats, "obs.metrics");
    }
    std::uint32_t nProbes = r.u32();
    if (nProbes != _probes.size())
        fatal("metrics: snapshot has ", nProbes,
              " probes, this run registered ", _probes.size(),
              " (config mismatch)");
    std::uint64_t nRows = r.u64();
    _ticks.assign(nRows, 0);
    for (std::uint64_t i = 0; i < nRows; ++i)
        _ticks[i] = r.tick();
    _data.assign(nRows * _probes.size(), 0.0);
    for (double &v : _data)
        v = r.d();
}

} // namespace vip
