#include "obs/metrics.hh"

#include <cstdio>
#include <ostream>

#include "obs/provenance.hh"
#include "sim/logging.hh"
#include "sim/system.hh"

namespace vip
{

MetricsSampler::MetricsSampler(System &sys, Tick interval)
    : _sys(sys), _interval(interval)
{
    vip_assert(interval > 0, "metrics interval must be positive");
}

void
MetricsSampler::addProbe(std::string name, Probe fn)
{
    _probes.emplace_back(std::move(name), std::move(fn));
}

void
MetricsSampler::start()
{
    _sys.eventq().scheduleIn(
        _interval, [this] { sampleNow(); }, EventPriority::Stats);
}

void
MetricsSampler::sampleNow()
{
    _ticks.push_back(_sys.curTick());
    for (const auto &[name, fn] : _probes)
        _data.push_back(fn());
    _sys.eventq().scheduleIn(
        _interval, [this] { sampleNow(); }, EventPriority::Stats);
}

void
MetricsSampler::writeCsv(std::ostream &os) const
{
    os << "# vip-metrics v1\n";
    for (const auto &line : provenanceMetaLines())
        os << "# " << line << "\n";
    os << "# intervalMs=" << toMs(_interval) << "\n";
    os << "tick_ms";
    for (const auto &[name, fn] : _probes)
        os << "," << name;
    os << "\n";
    char buf[48];
    for (std::size_t r = 0; r < _ticks.size(); ++r) {
        std::snprintf(buf, sizeof(buf), "%.6f", toMs(_ticks[r]));
        os << buf;
        for (std::size_t c = 0; c < _probes.size(); ++c) {
            std::snprintf(buf, sizeof(buf), "%.6g",
                          _data[r * _probes.size() + c]);
            os << "," << buf;
        }
        os << "\n";
    }
}

} // namespace vip
