/**
 * @file
 * Bounded, category-filtered span/instant tracer.
 *
 * Components emit spans (B/E or complete X), instants (i), counters
 * (C) and async frame-lifecycle events (b/n/e) into a fixed-capacity
 * ring buffer; the buffer is exported as Chrome/Perfetto trace_event
 * JSON after the run.  The tracer is purely observational: it never
 * schedules events, never consumes randomness, and none of its state
 * enters any component's stateDigest(), so enabling it leaves the
 * simulation (and its audit digest streams) bit-identical.
 *
 * When tracing is disabled the System's tracer pointer is null and
 * every emission site reduces to one pointer test.
 */

#ifndef VIP_OBS_TRACER_HH
#define VIP_OBS_TRACER_HH

#include <array>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/trace_config.hh"
#include "sim/types.hh"

namespace vip
{

/**
 * One recorded trace event.  Field use depends on the phase:
 *  - 'B'/'E': begin/end of a nested span on @c track
 *  - 'X':     complete span, @c dur is the duration
 *  - 'i':     instant on @c track
 *  - 'C':     counter sample, @c value is the sample
 *  - 'b'/'n'/'e': async (frame-lifecycle) events grouped by the pair
 *                 (flow, frame); for 'e', @c dur carries the QoS
 *                 deadline tick
 *
 * Kept to 40 bytes: a busy run records hundreds of thousands of
 * events, so event size is directly trace memory bandwidth.
 */
struct TraceEvent
{
    Tick ts = 0;
    Tick dur = 0;
    double value = 0.0;
    std::int32_t flow = -1;
    std::int32_t frame = -1;
    std::uint16_t name = 0;  ///< string table index + 1 (0 = none)
    std::uint16_t track = 0; ///< string table index + 1 (0 = process)
    std::int16_t lane = -1;
    char ph = '?';
    std::uint8_t cat = 0; ///< bit index into TraceCat
};

/**
 * Async id for a frame: groups all its lifecycle events.  Derived
 * from (flow, frame) at export time rather than stored per event.
 */
inline std::uint64_t
frameAsyncId(std::uint32_t flow, std::uint64_t frame)
{
    return (std::uint64_t{flow} << 32) | (frame & 0xffffffffull);
}

class Tracer
{
  public:
    Tracer(std::uint32_t categories, std::size_t capacity);

    /** Fast per-emission gate. */
    bool
    enabled(TraceCat cat) const
    {
        return (_categories & static_cast<std::uint32_t>(cat)) != 0;
    }

    std::uint32_t categories() const { return _categories; }

    /**
     * Intern a track/name string; returns a stable nonzero id.
     * Emission sites cache the id (0 means "not interned yet").
     */
    std::uint32_t intern(const std::string &s);

    /**
     * @{ Emission API.  All timestamps are absolute ticks.  Inline:
     * an emission is a branch, a ring-slot write, and an index bump.
     */
    void
    begin(TraceCat cat, std::uint32_t track, std::uint32_t name,
          Tick ts)
    {
        TraceEvent &ev = alloc('B', cat);
        ev.track = static_cast<std::uint16_t>(track);
        ev.name = static_cast<std::uint16_t>(name);
        ev.ts = ts;
    }

    void
    end(TraceCat cat, std::uint32_t track, Tick ts)
    {
        TraceEvent &ev = alloc('E', cat);
        ev.track = static_cast<std::uint16_t>(track);
        ev.ts = ts;
    }

    void
    complete(TraceCat cat, std::uint32_t track, std::uint32_t name,
             Tick start, Tick finish, std::int32_t flow = -1,
             std::int64_t frame = -1, std::int32_t lane = -1,
             double bytes = 0.0)
    {
        TraceEvent &ev = alloc('X', cat);
        ev.track = static_cast<std::uint16_t>(track);
        ev.name = static_cast<std::uint16_t>(name);
        ev.ts = start;
        ev.dur = finish >= start ? finish - start : 0;
        ev.flow = flow;
        ev.frame = static_cast<std::int32_t>(frame);
        ev.lane = static_cast<std::int16_t>(lane);
        ev.value = bytes;
    }

    void
    instant(TraceCat cat, std::uint32_t track, std::uint32_t name,
            Tick ts, std::int32_t flow = -1, std::int64_t frame = -1,
            std::int32_t lane = -1)
    {
        TraceEvent &ev = alloc('i', cat);
        ev.track = static_cast<std::uint16_t>(track);
        ev.name = static_cast<std::uint16_t>(name);
        ev.ts = ts;
        ev.flow = flow;
        ev.frame = static_cast<std::int32_t>(frame);
        ev.lane = static_cast<std::int16_t>(lane);
    }

    void
    counter(TraceCat cat, std::uint32_t track, std::uint32_t name,
            Tick ts, double value)
    {
        TraceEvent &ev = alloc('C', cat);
        ev.track = static_cast<std::uint16_t>(track);
        ev.name = static_cast<std::uint16_t>(name);
        ev.ts = ts;
        ev.value = value;
    }

    void
    asyncBegin(TraceCat cat, std::uint32_t name, Tick ts,
               std::int32_t flow, std::int64_t frame)
    {
        TraceEvent &ev = alloc('b', cat);
        ev.name = static_cast<std::uint16_t>(name);
        ev.ts = ts;
        ev.flow = flow;
        ev.frame = static_cast<std::int32_t>(frame);
    }

    void
    asyncInstant(TraceCat cat, std::uint32_t name, Tick ts,
                 std::int32_t flow, std::int64_t frame)
    {
        TraceEvent &ev = alloc('n', cat);
        ev.name = static_cast<std::uint16_t>(name);
        ev.ts = ts;
        ev.flow = flow;
        ev.frame = static_cast<std::int32_t>(frame);
    }

    void
    asyncEnd(TraceCat cat, std::uint32_t name, Tick ts,
             std::int32_t flow, std::int64_t frame, Tick deadline)
    {
        TraceEvent &ev = alloc('e', cat);
        ev.name = static_cast<std::uint16_t>(name);
        ev.ts = ts;
        ev.flow = flow;
        ev.frame = static_cast<std::int32_t>(frame);
        ev.dur = deadline;
    }
    /** @} */

    /** Events currently held (<= capacity). */
    std::size_t size() const { return _count; }
    /** Events evicted because the ring filled. */
    std::uint64_t dropped() const { return _dropped; }
    /** Requested capacity rounded up to whole blocks. */
    std::size_t capacity() const { return _nBlocks * kBlockEvents; }

    /** Visit events oldest-first. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        const std::size_t cap = capacity();
        // While filling, events live at linear [0, _count); once
        // wrapped, the write cursor is also the oldest event.
        std::size_t start = 0;
        if (_count == cap) {
            start = _wb * kBlockEvents + _wi;
            if (start >= cap)
                start -= cap;
        }
        for (std::size_t i = 0; i < _count; ++i) {
            std::size_t idx = start + i;
            if (idx >= cap)
                idx -= cap;
            fn((*_blocks[idx / kBlockEvents])[idx % kBlockEvents]);
        }
    }

    /**
     * Write Chrome trace_event JSON.  otherData automatically carries
     * build provenance, the trace schema version, the enabled
     * categories and the dropped-event count; @p meta adds run
     * context (workload, config, seed).
     */
    void writeJson(
        std::ostream &os,
        const std::vector<std::pair<std::string, std::string>> &meta
        = {}) const;

  private:
    /**
     * The ring is a list of fixed blocks rather than one flat array:
     * blocks are allocated on first touch (an idle or filtered tracer
     * costs almost nothing), there is no reallocation copying as the
     * trace grows, and each block is small enough that the heap
     * recycles it across Tracer lifetimes — repeated runs in one
     * process write into warm pages instead of faulting fresh ones.
     */
    static constexpr std::size_t kBlockEvents = 2048;
    using Block = std::array<TraceEvent, kBlockEvents>;

    /**
     * Claim the next ring slot as a fresh event with phase and
     * category set.  Grows block-by-block up to capacity, then wraps,
     * dropping the oldest.
     */
    TraceEvent &
    alloc(char ph, TraceCat cat)
    {
        if (_wi == kBlockEvents) {
            _wi = 0;
            if (++_wb == _nBlocks)
                _wb = 0;
        }
        if (_wb == _blocks.size())
            _blocks.push_back(std::make_unique<Block>());
        TraceEvent &ev = (*_blocks[_wb])[_wi++];
        if (_count == capacity()) {
            ++_dropped;
            ev = TraceEvent{};
        } else {
            ++_count;
        }
        ev.ph = ph;
        ev.cat = static_cast<std::uint8_t>(
            std::countr_zero(static_cast<std::uint32_t>(cat)));
        return ev;
    }

    std::uint32_t _categories;
    std::size_t _nBlocks;   ///< capacity in blocks
    std::size_t _wb = 0;    ///< write block
    std::size_t _wi = 0;    ///< write index within block
    std::size_t _count = 0; ///< live events
    std::uint64_t _dropped = 0;
    std::vector<std::unique_ptr<Block>> _blocks;
    std::vector<std::string> _strings;
    std::unordered_map<std::string, std::uint32_t> _index;
};

} // namespace vip

#endif // VIP_OBS_TRACER_HH
