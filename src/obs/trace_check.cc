#include "obs/trace_check.hh"

#include <algorithm>
#include <istream>
#include <iterator>
#include <memory>

#include "obs/json.hh"
#include "sim/logging.hh"

namespace vip
{

namespace
{

using json::JsonValue;
using json::numField;
using json::strField;

} // namespace

TraceFile
parseTraceJson(std::istream &is)
{
    // The DOM of a large trace is heavy; parse on the heap.
    auto root = std::make_unique<JsonValue>(json::parse(is));
    if (root->kind != JsonValue::Kind::Object)
        fatal("trace root is not a JSON object");
    const JsonValue *events = root->find("traceEvents");
    if (!events || events->kind != JsonValue::Kind::Array)
        fatal("trace has no traceEvents array");

    TraceFile out;
    for (const JsonValue &e : events->arr) {
        if (e.kind != JsonValue::Kind::Object)
            fatal("traceEvents entry is not an object");
        std::string ph = strField(e, "ph");
        if (ph == "M") {
            if (strField(e, "name") == "thread_name") {
                const JsonValue *args = e.find("args");
                if (args)
                    out.threadNames[static_cast<long long>(
                        numField(e, "tid"))] = strField(*args, "name");
            }
            continue;
        }
        TraceEventView ev;
        ev.ph = ph;
        ev.name = strField(e, "name");
        ev.cat = strField(e, "cat");
        ev.id = strField(e, "id");
        ev.tid = static_cast<long long>(numField(e, "tid"));
        ev.ts = numField(e, "ts");
        ev.dur = numField(e, "dur");
        if (const JsonValue *args = e.find("args")) {
            for (const auto &[k, v] : args->obj) {
                if (v.kind == JsonValue::Kind::Number)
                    ev.numArgs[k] = v.num;
                else if (v.kind == JsonValue::Kind::String)
                    ev.strArgs[k] = v.str;
            }
        }
        out.events.push_back(std::move(ev));
    }
    if (const JsonValue *other = root->find("otherData")) {
        for (const auto &[k, v] : other->obj) {
            if (v.kind == JsonValue::Kind::String)
                out.otherData[k] = v.str;
            else if (v.kind == JsonValue::Kind::Number)
                out.otherData[k] = std::to_string(
                    static_cast<long long>(v.num));
        }
        auto it = out.otherData.find("droppedEvents");
        if (it != out.otherData.end())
            out.droppedEvents = std::stoull(it->second);
    }
    return out;
}

TraceCheckResult
checkTrace(const TraceFile &f)
{
    TraceCheckResult res;
    res.events = f.events.size();
    bool lossless = f.droppedEvents == 0;

    auto err = [&](std::string msg) {
        if (res.errors.size() < 20)
            res.errors.push_back(std::move(msg));
        res.ok = false;
    };

    // Per-track B/E stacks.
    std::map<long long, std::vector<std::uint64_t>> stacks;
    // Async open counts per (cat, id).
    std::map<std::string, int> asyncNest;

    for (const TraceEventView &ev : f.events) {
        std::uint64_t tick = ev.tickArg("tick");
        if (ev.ph == "B") {
            stacks[ev.tid].push_back(tick);
        } else if (ev.ph == "E") {
            auto &st = stacks[ev.tid];
            if (st.empty()) {
                if (lossless)
                    err("E without matching B on tid "
                        + std::to_string(ev.tid) + " at tick "
                        + std::to_string(tick));
            } else {
                if (tick < st.back())
                    err("span ends before it begins on tid "
                        + std::to_string(ev.tid) + " ("
                        + std::to_string(st.back()) + " -> "
                        + std::to_string(tick) + ")");
                st.pop_back();
                ++res.spans;
            }
        } else if (ev.ph == "X") {
            if (ev.dur < 0)
                err("X event with negative dur at tick "
                    + std::to_string(tick));
            ++res.spans;
        } else if (ev.ph == "b") {
            ++asyncNest[ev.cat + "/" + ev.id];
        } else if (ev.ph == "e") {
            auto &n = asyncNest[ev.cat + "/" + ev.id];
            if (n <= 0 && lossless)
                err("async end without begin for id " + ev.id);
            else
                --n;
        } else if (ev.ph == "n") {
            // instant within an async group; nothing to pair
        } else if (ev.ph == "i") {
            ++res.instants;
        } else if (ev.ph == "C") {
            ++res.counters;
        } else {
            err("unknown phase '" + ev.ph + "'");
        }
    }

    for (const auto &[tid, st] : stacks)
        res.openAtEof += st.size();
    for (const auto &[key, n] : asyncNest)
        if (n > 0)
            res.asyncOpen += static_cast<std::size_t>(n);
    return res;
}

std::vector<FrameLifecycle>
frameLifecycles(const TraceFile &f)
{
    std::map<std::string, FrameLifecycle> byId;
    std::map<std::string, bool> sawBegin;
    for (const TraceEventView &ev : f.events) {
        if (ev.cat != "frame" || ev.id.empty())
            continue;
        if (ev.ph != "b" && ev.ph != "n" && ev.ph != "e")
            continue;
        FrameLifecycle &lc = byId[ev.id];
        lc.asyncId = ev.id;
        auto flowIt = ev.numArgs.find("flow");
        if (flowIt != ev.numArgs.end())
            lc.flow = static_cast<std::int64_t>(flowIt->second);
        auto frameIt = ev.numArgs.find("frame");
        if (frameIt != ev.numArgs.end())
            lc.frame = static_cast<std::int64_t>(frameIt->second);
        std::uint64_t tick = ev.tickArg("tick");
        if (ev.ph == "b") {
            lc.genTick = tick;
            sawBegin[ev.id] = true;
        } else if (ev.ph == "e") {
            lc.endTick = tick;
            lc.deadlineTick = ev.tickArg("deadlineTick");
            lc.complete = true;
        } else if (ev.name == "started") {
            lc.startTick = tick;
        } else {
            lc.stageMarks.emplace_back(tick, ev.name);
        }
    }
    std::vector<FrameLifecycle> out;
    out.reserve(byId.size());
    for (auto &[id, lc] : byId) {
        std::sort(lc.stageMarks.begin(), lc.stageMarks.end());
        // 'b' must have been seen for "complete" to mean anything
        // (a burst-scheduled frame may legitimately end before its
        // nominal generation tick, so ticks cannot be compared).
        lc.complete = lc.complete && sawBegin[id];
        out.push_back(std::move(lc));
    }
    return out;
}

} // namespace vip
